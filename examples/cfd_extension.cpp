// Conditional FDs (CFD) extension: the paper's §9 names "other ICs beyond
// FDs" as the first future-work direction. This example shows the CFD
// module catching errors that no plain FD can see: a dependency that only
// holds inside a region of the data.
//
// Scenario: a customs dataset where postal codes determine the city inside
// country "DE" but are freely reused in country "XX" (a federation without
// a unified postal system). zip -> city fails globally, so plain-FD
// detection is blind to German postal errors; the mined CFD
// country=DE, zip -> city recovers them.
//
// Build & run:  ./build/examples/cfd_extension

#include <cstdio>

#include "core/uguide.h"

using namespace uguide;

int main() {
  Relation rel(
      Schema::Make({"country", "zip", "city", "currency"}).ValueOrDie());
  Rng rng(17);
  const char* kXxCurrencies[] = {"USD", "CAD", "MXN"};
  for (int i = 0; i < 400; ++i) {
    const int zip = static_cast<int>(rng.NextBounded(25));
    // Germany: zip determines city, and the currency is always EUR.
    rel.AddRow({"DE", "Z" + std::to_string(zip),
                "City" + std::to_string(zip), "EUR"});
  }
  for (int i = 0; i < 400; ++i) {
    // Federation XX: zips are reused freely and members keep their own
    // currencies, so neither dependency holds there.
    rel.AddRow({"XX", "Z" + std::to_string(rng.NextBounded(25)),
                "Town" + std::to_string(rng.NextBounded(40)),
                kXxCurrencies[rng.NextBounded(3)]});
  }

  // Plain discovery: zip -> city cannot hold.
  const Fd zip_city({1}, 2);
  const Fd country_zip_city({0, 1}, 2);
  const Fd country_currency({0}, 3);
  std::printf("zip -> city holds globally?            %s\n",
              FdHoldsOn(rel, zip_city) ? "yes" : "no");
  std::printf("country,zip -> city holds globally?    %s\n",
              FdHoldsOn(rel, country_zip_city) ? "yes" : "no");
  std::printf("country -> currency holds globally?    %s\n",
              FdHoldsOn(rel, country_currency) ? "yes" : "no");

  // Mine conditions under which the broken FD becomes exact.
  CfdDiscoveryOptions opts;
  opts.min_support = 50;
  std::vector<Cfd> cfds =
      DiscoverVariableCfds(rel, FdSet({country_zip_city}), opts);
  std::printf("mined variable CFDs:\n");
  for (const Cfd& cfd : cfds) {
    std::printf("  %-28s (support-checked, exact)\n",
                cfd.ToString(rel.schema()).c_str());
  }

  // The same conditions grouped as a pattern tableau (the classical CFD
  // notation of Fan et al.).
  auto tableau = MineTableau(rel, country_zip_city, opts);
  if (tableau.ok()) {
    std::printf("as a tableau: %s\n",
                tableau->ToString(rel.schema()).c_str());
  }

  // Inject a German postal error and show only the CFD flags it.
  rel.SetValue(0, 2, "Muenchen??");
  std::printf("\nafter corrupting row 0 (a DE tuple):\n");
  for (const Cfd& cfd : cfds) {
    std::vector<Cell> cells = ViolatingCells(rel, cfd);
    bool flags_row0 = false;
    for (const Cell& cell : cells) flags_row0 |= cell.row == 0;
    std::printf("  %-28s flags %zu cells%s\n",
                cfd.ToString(rel.schema()).c_str(), cells.size(),
                flags_row0 ? " (including the corrupted one)" : "");
  }

  // Constant CFDs: association-style rules the data carries.
  std::vector<Cfd> constants = DiscoverConstantCfds(rel, opts);
  std::printf("\nconstant CFDs mined: %zu, e.g.:\n", constants.size());
  for (size_t i = 0; i < constants.size() && i < 4; ++i) {
    std::printf("  %s\n", constants[i].ToString(rel.schema()).c_str());
  }
  return 0;
}
