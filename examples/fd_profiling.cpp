// FD profiling walkthrough: exercises the discovery substrate directly --
// exact TANE, approximate TANE, candidate relaxation, saturated sets, and
// Armstrong relations -- on a generated Tax table. This is the "data
// profiling" half of the paper, usable standalone as a Metanome-style
// profiler.
//
// Build & run:  ./build/examples/fd_profiling [rows]

#include <cstdio>
#include <cstdlib>

#include "core/uguide.h"

using namespace uguide;

int main(int argc, char** argv) {
  const int rows = argc > 1 ? std::atoi(argv[1]) : 3000;

  Relation tax = GenerateTax({.rows = rows, .seed = 7});
  const Schema& schema = tax.schema();
  std::printf("Tax table: %d rows x %d attributes\n\n", tax.NumRows(),
              tax.NumAttributes());

  // Exact minimal FDs (LHS capped at 3 attributes for readability).
  TaneOptions tane;
  tane.max_lhs_size = 3;
  FdSet exact = DiscoverFds(tax, tane).ValueOrDie();
  std::printf("exact minimal FDs (max LHS 3): %zu\n", exact.Size());
  int shown = 0;
  for (const Fd& fd : exact) {
    if (fd.lhs.Size() <= 1 && shown < 12) {
      std::printf("  %s\n", fd.ToString(schema).c_str());
      ++shown;
    }
  }
  std::printf("  ... (%zu total)\n\n", exact.Size());

  // Approximate FDs after corrupting a few cells: zip -> city no longer
  // holds exactly, but survives as an AFD within a 10% g3 budget.
  Relation dirty = tax;
  const int city = *schema.IndexOf("city");
  dirty.SetValue(0, city, "Sprungfield");
  dirty.SetValue(1, city, "Shelbyville?");
  FdSet exact_dirty = DiscoverFds(dirty, tane).ValueOrDie();
  TaneOptions approx = tane;
  approx.max_error = 0.10;
  FdSet afds = DiscoverFds(dirty, approx).ValueOrDie();
  const Fd zip_city(AttributeSet::Single(*schema.IndexOf("zip")), city);
  std::printf("after corrupting two city cells:\n");
  std::printf("  zip->city exact?        %s\n",
              exact_dirty.Contains(zip_city) ? "yes" : "no");
  std::printf("  zip->city as 10%% AFD?   %s\n",
              afds.Contains(zip_city) ? "yes" : "no");

  PartitionCache cache(&dirty);
  std::printf("  g3 error of zip->city:  %.5f\n\n", cache.FdError(zip_city));

  // Saturated sets and an Armstrong relation over a compact sub-schema.
  // (Over the full 16 attributes, the closed-set family -- and hence the
  // Armstrong relation -- explodes; a sub-schema keeps it legible.)
  Schema mini = Schema::Make({"zip", "city", "state", "areacode", "exemp"})
                    .ValueOrDie();
  FdSet mini_fds({Fd({0}, 1),    // zip -> city
                  Fd({0}, 2),    // zip -> state
                  Fd({3}, 2),    // areacode -> state
                  Fd({2}, 4)});  // state -> exemp
  std::vector<AttributeSet> closed =
      SaturatedSets(mini_fds, mini.NumAttributes());
  std::printf("saturated sets of the %d-attribute sub-schema: %zu\n",
              mini.NumAttributes(), closed.size());
  Relation armstrong = BuildArmstrongRelation(mini, mini_fds);
  std::printf("Armstrong relation for those FDs: %d tuples\n",
              armstrong.NumRows());
  std::printf("  satisfies exactly the implied FDs? %s\n",
              IsArmstrongRelation(armstrong, mini_fds) ? "yes" : "no");
  return 0;
}
