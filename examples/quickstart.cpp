// Quickstart: the complete UGuide loop in ~50 lines.
//
// 1. Generate a clean Hospital-style table and discover its true FDs.
// 2. Inject FD-violating errors (the dirty table a user would start from).
// 3. Build a session (candidate AFDs + simulated expert) and spend a budget
//    of FD-based questions.
// 4. Report how many of the FD-detectable errors were found.
//
// Build & run:  ./build/examples/quickstart [rows]

#include <cstdio>
#include <cstdlib>

#include "core/uguide.h"

using namespace uguide;

int main(int argc, char** argv) {
  const int rows = argc > 1 ? std::atoi(argv[1]) : 4000;

  // 1. A clean dataset and its dependencies.
  Relation clean = GenerateHospital({.rows = rows, .seed = 42});
  TaneOptions tane;
  tane.max_lhs_size = 3;
  FdSet true_fds = DiscoverFds(clean, tane).ValueOrDie();
  std::printf("clean table: %d rows, %d attributes, %zu minimal FDs\n",
              clean.NumRows(), clean.NumAttributes(), true_fds.Size());

  // 2. Make it dirty (systematic model: a few FDs carry most errors).
  ErrorGenOptions errors;
  errors.model = ErrorModel::kSystematic;
  errors.error_rate = 0.20;
  DirtyDataset dirty = InjectErrors(clean, true_fds, errors).ValueOrDie();
  std::printf("injected %zu erroneous cells\n", dirty.truth.NumChanged());

  // 3. An interactive session with a simulated expert.
  SessionConfig config;
  config.candidate_options.max_lhs_size = 3;
  config.budget = 300;
  Session session =
      Session::Create(clean, std::move(dirty), config).ValueOrDie();
  std::printf("candidate FDs to validate: %zu (true violations to find: "
              "%zu)\n",
              session.candidates().Size(), session.true_violations().Size());

  auto strategy = MakeFdQBudgetedMaxCoverage();
  SessionReport report = session.Run(*strategy);

  // 4. The verdict.
  std::printf("\n%s asked %d questions (cost %.0f / budget %.0f)\n",
              report.strategy_name.c_str(), report.result.questions_asked,
              report.result.cost_spent, config.budget);
  std::printf("accepted %zu FDs; detections: %s\n",
              report.result.accepted_fds.Size(),
              report.metrics.ToString().c_str());
  std::printf("=> %.1f%% of true violations found, %.1f%% false rate\n",
              report.metrics.TrueViolationPct(),
              report.metrics.FalseViolationPct());
  return 0;
}
