// Detect-then-repair pipeline: the paper positions UGuide as the error-
// detection front end that "bootstraps the end-to-end data cleaning
// pipeline" (§8). This example closes the loop: validate FDs with a
// budgeted session, hand them to the majority-vote repairer, and score
// the corrections against the ground truth.
//
// Build & run:  ./build/examples/repair_pipeline [rows]

#include <cstdio>
#include <cstdlib>

#include "core/uguide.h"

using namespace uguide;

int main(int argc, char** argv) {
  const int rows = argc > 1 ? std::atoi(argv[1]) : 4000;

  Relation clean = GenerateTax({.rows = rows, .seed = 21});
  TaneOptions tane;
  tane.max_lhs_size = 3;
  FdSet true_fds = DiscoverFds(clean, tane).ValueOrDie();

  ErrorGenOptions errors;
  errors.model = ErrorModel::kSystematic;
  errors.error_rate = 0.15;
  DirtyDataset dataset = InjectErrors(clean, true_fds, errors).ValueOrDie();
  const GroundTruth truth = dataset.truth;  // keep a copy for scoring
  std::printf("Tax table: %d rows, %zu injected errors\n", rows,
              truth.NumChanged());

  SessionConfig config;
  config.candidate_options.max_lhs_size = 3;
  Session session =
      Session::Create(clean, std::move(dataset), config).ValueOrDie();

  // Step 1: detect -- validate FDs with the expert under a budget.
  auto strategy = MakeFdQBudgetedMaxCoverage();
  SessionReport report = session.Run(*strategy, 400.0);
  std::printf("detection: %zu FDs validated, %.1f%% of true violations "
              "flagged, %.1f%% false rate\n",
              report.result.accepted_fds.Size(),
              report.metrics.TrueViolationPct(),
              report.metrics.FalseViolationPct());

  // Step 2: repair -- rewrite minority cells to their group majority.
  RepairResult repair =
      RepairWithFds(session.dirty(), report.result.accepted_fds);
  RepairMetrics quality = EvaluateRepairs(clean, truth, repair);
  std::printf("repair: %zu corrections proposed\n", quality.repairs);
  std::printf("  precision (restored the clean value): %.1f%%\n",
              100.0 * quality.Precision());
  std::printf("  recall (injected errors fixed):       %.1f%%\n",
              100.0 * quality.Recall());

  // A taste of the edits.
  std::printf("sample corrections:\n");
  for (size_t i = 0; i < repair.repairs.size() && i < 5; ++i) {
    const CellRepair& r = repair.repairs[i];
    std::printf("  row %-6d %-14s '%s' -> '%s'\n", r.cell.row,
                session.dirty().schema().Name(r.cell.col).c_str(),
                r.old_value.c_str(), r.new_value.c_str());
  }
  return 0;
}
