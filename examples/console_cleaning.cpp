// Console cleaning: UGuide with a HUMAN expert. Loads a CSV file (or
// generates a dirty Hospital sample when no path is given), discovers the
// candidate FDs, and walks you through FD-based questions on your own
// terminal -- the real deployment mode the paper targets, where no ground
// truth exists.
//
//   ./build/examples/console_cleaning mydata.csv [budget]
//   ./build/examples/console_cleaning --demo            # generated sample
//   ./build/examples/console_cleaning --yes mydata.csv  # auto-affirm (CI)
//
// Answer each question with y / n / d (don't know). At the end the tool
// lists the cells flagged by the FDs you validated.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

#include "core/uguide.h"

using namespace uguide;

namespace {

/// A human expert on stdin. Only FD questions are used by this example;
/// cell/tuple prompts are implemented for completeness.
class ConsoleExpert : public Expert {
 public:
  ConsoleExpert(const Relation* relation, bool auto_yes)
      : relation_(relation), auto_yes_(auto_yes) {}

  Answer IsCellErroneous(const Cell& cell) override {
    std::printf("Is this value wrong?  %s = '%s'\n  in row: [%s]\n",
                relation_->schema().Name(cell.col).c_str(),
                relation_->Value(cell).c_str(),
                relation_->RowToString(cell.row).c_str());
    return Prompt();
  }

  Answer IsTupleClean(TupleId row) override {
    std::printf("Is this whole row correct?\n  [%s]\n",
                relation_->RowToString(row).c_str());
    return Prompt();
  }

  Answer IsFdValid(const Fd& fd) override {
    std::printf("\nShould '%s' always determine '%s'?  (rule: %s)\n",
                fd.lhs.ToString(relation_->schema().Names()).c_str(),
                relation_->schema().Name(fd.rhs).c_str(),
                fd.ToString(relation_->schema()).c_str());
    // Context: one conflicting pair, as the paper suggests (§2.1).
    std::vector<Cell> cells = ViolatingCells(*relation_, fd);
    if (!cells.empty()) {
      std::printf("  e.g. conflicting row: [%s]\n",
                  relation_->RowToString(cells.front().row).c_str());
    }
    return Prompt();
  }

 private:
  Answer Prompt() {
    if (auto_yes_) {
      std::printf("  [y/n/d] y (auto)\n");
      return Answer::kYes;
    }
    std::printf("  [y/n/d] ");
    std::fflush(stdout);
    std::string line;
    if (!std::getline(std::cin, line)) return Answer::kIdk;  // EOF
    if (!line.empty() && (line[0] == 'y' || line[0] == 'Y')) {
      return Answer::kYes;
    }
    if (!line.empty() && (line[0] == 'n' || line[0] == 'N')) {
      return Answer::kNo;
    }
    return Answer::kIdk;
  }

  const Relation* relation_;
  bool auto_yes_;
};

Relation LoadOrGenerate(const char* path) {
  if (path != nullptr) {
    auto rel = Relation::FromCsvFile(path);
    if (!rel.ok()) {
      std::fprintf(stderr, "failed to load %s: %s\n", path,
                   rel.status().ToString().c_str());
      std::exit(1);
    }
    return std::move(rel).ValueOrDie();
  }
  // Demo: a dirty Hospital sample.
  Relation clean = GenerateHospital({.rows = 1200, .seed = 3});
  TaneOptions tane;
  tane.max_lhs_size = 3;
  FdSet true_fds = DiscoverFds(clean, tane).ValueOrDie();
  ErrorGenOptions errors;
  errors.error_rate = 0.10;
  return InjectErrors(clean, true_fds, errors).ValueOrDie().dirty;
}

}  // namespace

int main(int argc, char** argv) {
  bool auto_yes = false;
  const char* path = nullptr;
  double budget = 60.0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--yes") == 0) {
      auto_yes = true;
    } else if (std::strcmp(argv[i], "--demo") == 0) {
      // keep path null
    } else if (argv[i][0] != '-' && path == nullptr) {
      path = argv[i];
    } else if (argv[i][0] != '-') {
      budget = std::atof(argv[i]);
    }
  }

  Relation dirty = LoadOrGenerate(path);
  std::printf("table: %d rows x %d attributes\n", dirty.NumRows(),
              dirty.NumAttributes());

  std::printf("profiling candidate dependencies...\n");
  CandidateGenOptions cand_opts;
  cand_opts.max_lhs_size = 3;
  CandidateSet candidates = GenerateCandidates(dirty, cand_opts).ValueOrDie();
  std::printf("found %zu candidate FDs; you have a question budget of %.0f "
              "(cost of an FD question = its LHS size)\n",
              candidates.candidates.Size(), budget);

  ConsoleExpert expert(&dirty, auto_yes);
  QuestionContext ctx;
  ctx.dirty = &dirty;
  ctx.candidates = &candidates.candidates;
  ctx.exact_fds = &candidates.exact;
  ctx.expert = &expert;
  ctx.budget = budget;

  auto strategy = MakeFdQBudgetedMaxCoverage();
  StrategyResult result = strategy->Run(ctx);

  std::printf("\nYou validated %zu rule(s).\n", result.accepted_fds.Size());
  std::vector<Cell> detections = AllDetections(dirty, result.accepted_fds);
  std::printf("They flag %zu suspect cell(s)", detections.size());
  if (!detections.empty()) {
    std::printf("; the first few:\n");
    for (size_t i = 0; i < detections.size() && i < 10; ++i) {
      const Cell& cell = detections[i];
      std::printf("  row %-6d %s = '%s'\n", cell.row,
                  dirty.schema().Name(cell.col).c_str(),
                  dirty.Value(cell).c_str());
    }
  } else {
    std::printf(".\n");
  }
  return 0;
}
