// Interactive cleaning walkthrough: narrates one budgeted session over a
// dirty Stock table, showing what the framework would actually put in
// front of an expert -- the candidate FDs with sample violations as
// context, the questions asked by each strategy family, and the final
// detection report. This mirrors Figure 1 of the paper end to end.
//
// Build & run:  ./build/examples/interactive_cleaning [rows]

#include <cstdio>
#include <cstdlib>

#include "core/uguide.h"

using namespace uguide;

namespace {

void ShowCandidateContext(const Session& session, size_t max_fds) {
  const Relation& dirty = session.dirty();
  std::printf("candidate FDs (with one flagged cell as context):\n");
  size_t shown = 0;
  for (const Fd& fd : session.candidates()) {
    if (shown >= max_fds) break;
    std::vector<Cell> cells = ViolatingCells(dirty, fd);
    if (cells.empty()) {
      std::printf("  %-28s no violations\n",
                  fd.ToString(dirty.schema()).c_str());
    } else {
      const Cell& cell = cells.front();
      std::printf("  %-28s %zu violations, e.g. row %d: [%s]\n",
                  fd.ToString(dirty.schema()).c_str(), cells.size(),
                  cell.row, dirty.RowToString(cell.row).c_str());
    }
    ++shown;
  }
  std::printf("  ... (%zu candidates total)\n\n",
              session.candidates().Size());
}

void RunAndReport(const Session& session, Strategy& strategy,
                  double budget) {
  SessionReport report = session.Run(strategy, budget);
  std::printf("  %-22s %3d questions, cost %6.0f -> accepted %3zu FDs, "
              "true %5.1f%%, false %5.1f%%\n",
              report.strategy_name.c_str(), report.result.questions_asked,
              report.result.cost_spent, report.result.accepted_fds.Size(),
              report.metrics.TrueViolationPct(),
              report.metrics.FalseViolationPct());
}

}  // namespace

int main(int argc, char** argv) {
  const int rows = argc > 1 ? std::atoi(argv[1]) : 3000;

  std::printf("=== UGuide interactive cleaning session (Stock, %d rows) "
              "===\n\n", rows);

  Relation clean = GenerateStock({.rows = rows, .seed = 13});
  TaneOptions tane;
  tane.max_lhs_size = 3;
  FdSet true_fds = DiscoverFds(clean, tane).ValueOrDie();

  ErrorGenOptions errors;
  errors.model = ErrorModel::kSystematic;
  errors.error_rate = 0.15;
  DirtyDataset dirty = InjectErrors(clean, true_fds, errors).ValueOrDie();
  std::printf("dirty table has %zu corrupted cells; %zu cells participate "
              "in true-FD violations\n\n",
              dirty.truth.NumChanged(),
              TrueViolationSet::Compute(dirty.dirty, true_fds).Size());

  SessionConfig config;
  config.candidate_options.max_lhs_size = 3;
  Session session =
      Session::Create(clean, std::move(dirty), config).ValueOrDie();

  ShowCandidateContext(session, 8);

  const double budget = 400;
  std::printf("spending a budget of %.0f with each strategy family:\n",
              budget);
  auto fdq = MakeFdQBudgetedMaxCoverage();
  auto cell_hs = MakeCellQHittingSet();
  auto cell_sums = MakeCellQSums();
  auto tuple_sat = MakeTupleSamplingSaturationSets();
  RunAndReport(session, *fdq, budget);
  RunAndReport(session, *cell_hs, budget);
  RunAndReport(session, *cell_sums, budget);
  RunAndReport(session, *tuple_sat, budget);

  std::printf("\n(the FD strategy trades recall for zero false positives; "
              "tuple sampling trades false positives for full recall)\n");
  return 0;
}
