# Smoke test for the uguide CLI, run via `cmake -P` so it works anywhere
# ctest does. Asserts the argument-parsing contract: bad usage is exit 2
# with a one-line error plus usage on stderr (never an abort, never a
# silent default), and good usage exits 0 with the expected report.
#
# Inputs: -DUGUIDE_CLI=<binary> -DWORK_DIR=<scratch dir>

if(NOT UGUIDE_CLI OR NOT WORK_DIR)
  message(FATAL_ERROR "cli_smoke: UGUIDE_CLI and WORK_DIR are required")
endif()

file(REMOVE_RECURSE "${WORK_DIR}")
file(MAKE_DIRECTORY "${WORK_DIR}")

file(WRITE "${WORK_DIR}/data.csv"
"zip,city,state
10001,new york,NY
10001,new york,NY
60601,chicago,IL
60601,chicago,IL
94105,san francisco,CA
94105,san francisco,CA
73301,austin,TX
73301,austin,TX
")

set(FAILURES 0)

# run(<name> <expected-exit> <must-match-regex> <stream> <args...>)
#   stream is OUT or ERR: which stream the regex must match against.
function(run name expected_exit pattern stream)
  execute_process(
    COMMAND "${UGUIDE_CLI}" ${ARGN}
    WORKING_DIRECTORY "${WORK_DIR}"
    RESULT_VARIABLE exit_code
    OUTPUT_VARIABLE out
    ERROR_VARIABLE err)
  set(ok TRUE)
  if(NOT exit_code STREQUAL "${expected_exit}")
    message(WARNING "${name}: expected exit ${expected_exit}, got "
                    "'${exit_code}'\nstdout: ${out}\nstderr: ${err}")
    set(ok FALSE)
  endif()
  if(pattern)
    if(stream STREQUAL "ERR")
      set(haystack "${err}")
    else()
      set(haystack "${out}")
    endif()
    if(NOT haystack MATCHES "${pattern}")
      message(WARNING "${name}: ${stream} does not match '${pattern}'\n"
                      "stdout: ${out}\nstderr: ${err}")
      set(ok FALSE)
    endif()
  endif()
  if(ok)
    message(STATUS "${name}: ok")
  else()
    math(EXPR n "${FAILURES} + 1")
    set(FAILURES ${n} PARENT_SCOPE)
  endif()
endfunction()

# -- Usage errors: exit 2, one-line diagnostic + usage on stderr. ------------
run(no_args 2 "usage:" ERR)
run(unknown_command 2 "unknown command" ERR nonsense data.csv)
run(unknown_flag 2 "unknown flag" ERR profile data.csv --bogus=1)
run(non_numeric_threads 2 "invalid value 'two' for --threads" ERR
    profile data.csv --threads=two)
run(non_numeric_budget 2 "invalid value 'abc' for --budget" ERR
    session data.csv --budget=abc)
run(missing_flag_value 2 "invalid value '' for --max-lhs" ERR
    profile data.csv --max-lhs=)
run(out_of_range_error_rate 2 "invalid value '1.5' for --error-rate" ERR
    session data.csv --error-rate=1.5)
run(negative_threads 2 "invalid value '-1' for --threads" ERR
    profile data.csv --threads=-1)

# -- Happy paths. ------------------------------------------------------------
run(profile_ok 0 "minimal" OUT profile data.csv --max-lhs=2)
run(profile_budgeted 0 "peak partition memory" OUT
    profile data.csv --max-lhs=2 --memory-budget-mb=64)
run(detect_budgeted 0 "suspect cell" OUT
    detect data.csv --memory-budget-mb=64)

if(FAILURES GREATER 0)
  message(FATAL_ERROR "cli_smoke: ${FAILURES} check(s) failed")
endif()
