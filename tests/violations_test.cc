#include <gtest/gtest.h>

#include "common/rng.h"
#include "discovery/partition.h"
#include "violations/bipartite_graph.h"
#include "violations/violation_detector.h"

namespace uguide {
namespace {

Relation MakeRelation(const std::vector<std::string>& attrs,
                      const std::vector<std::vector<std::string>>& rows) {
  Relation rel(Schema::Make(attrs).ValueOrDie());
  for (const auto& row : rows) rel.AddRow(row);
  return rel;
}

TEST(ViolationDetectorTest, ImpureClassCellsAreFlagged) {
  Relation rel = MakeRelation(
      {"zip", "city"},
      {{"1", "ny"}, {"1", "ny"}, {"1", "boston"}, {"2", "la"}});
  // Participation semantics: every cell of the impure zip=1 class.
  std::vector<Cell> cells = ViolatingCells(rel, Fd({0}, 1));
  ASSERT_EQ(cells.size(), 3u);
  EXPECT_EQ(cells[0], (Cell{0, 1}));
  EXPECT_EQ(cells[1], (Cell{1, 1}));
  EXPECT_EQ(cells[2], (Cell{2, 1}));
}

TEST(ViolationDetectorTest, G3RemovalFlagsMinorityOnly) {
  Relation rel = MakeRelation(
      {"zip", "city"},
      {{"1", "ny"}, {"1", "ny"}, {"1", "boston"}, {"2", "la"}});
  std::vector<Cell> cells = G3RemovalCells(rel, Fd({0}, 1));
  ASSERT_EQ(cells.size(), 1u);
  EXPECT_EQ(cells[0], (Cell{2, 1}));
  EXPECT_EQ(G3RemovalTuples(rel, Fd({0}, 1)), (std::vector<TupleId>{2}));
}

TEST(ViolationDetectorTest, NoViolationsWhenFdHolds) {
  Relation rel = MakeRelation({"zip", "city"},
                              {{"1", "ny"}, {"1", "ny"}, {"2", "la"}});
  EXPECT_TRUE(ViolatingCells(rel, Fd({0}, 1)).empty());
  EXPECT_FALSE(HasViolations(rel, Fd({0}, 1)));
}

TEST(ViolationDetectorTest, HasViolationsAgreesWithCells) {
  Rng rng(21);
  Relation rel(Schema::Make({"a", "b", "c"}).ValueOrDie());
  for (int i = 0; i < 100; ++i) {
    rel.AddRow({std::to_string(rng.NextBounded(5)),
                std::to_string(rng.NextBounded(4)),
                std::to_string(rng.NextBounded(3))});
  }
  for (int lhs = 0; lhs < 3; ++lhs) {
    for (int rhs = 0; rhs < 3; ++rhs) {
      if (lhs == rhs) continue;
      Fd fd(AttributeSet::Single(lhs), rhs);
      EXPECT_EQ(HasViolations(rel, fd), !ViolatingCells(rel, fd).empty());
    }
  }
}

TEST(ViolationDetectorTest, ViolationCountMatchesG3) {
  // |removal set| / n must equal the partition-based g3 error.
  Rng rng(22);
  Relation rel(Schema::Make({"a", "b", "c"}).ValueOrDie());
  for (int i = 0; i < 150; ++i) {
    rel.AddRow({std::to_string(rng.NextBounded(6)),
                std::to_string(rng.NextBounded(5)),
                std::to_string(rng.NextBounded(2))});
  }
  PartitionCache cache(&rel);
  for (int lhs = 0; lhs < 3; ++lhs) {
    for (int rhs = 0; rhs < 3; ++rhs) {
      if (lhs == rhs) continue;
      Fd fd(AttributeSet::Single(lhs), rhs);
      const double g3 = cache.FdError(fd);
      const double ratio =
          static_cast<double>(G3RemovalTuples(rel, fd).size()) /
          rel.NumRows();
      EXPECT_NEAR(ratio, g3, 1e-12) << fd.ToString();
    }
  }
}

TEST(ViolationDetectorTest, EmptyLhsSemantics) {
  Relation rel = MakeRelation({"a"}, {{"x"}, {"x"}, {"x"}, {"y"}, {"z"}});
  // Participation: the whole column is one impure class.
  EXPECT_EQ(ViolatingCells(rel, Fd(AttributeSet(), 0)).size(), 5u);
  // g3 removal: only the two non-majority cells.
  std::vector<Cell> removal = G3RemovalCells(rel, Fd(AttributeSet(), 0));
  ASSERT_EQ(removal.size(), 2u);
  EXPECT_EQ(removal[0].row, 3);
  EXPECT_EQ(removal[1].row, 4);
}

TEST(ViolationDetectorTest, PerTupleCounts) {
  Relation rel = MakeRelation(
      {"zip", "city", "state"},
      {{"1", "ny", "NY"}, {"1", "ny", "NY"}, {"1", "boston", "MA"}});
  FdSet fds({Fd({0}, 1), Fd({0}, 2)});
  std::vector<int> counts = ViolationCountPerTuple(rel, fds);
  EXPECT_EQ(counts, (std::vector<int>{0, 0, 2}));
}

// --- ViolationGraph ---------------------------------------------------------

ViolationGraph SmallGraph() {
  // fd0: zip->city flags all three city cells (one impure class); fd1 and
  // fd2 flag nothing (state is constant).
  Relation rel = MakeRelation(
      {"zip", "city", "state"},
      {{"1", "ny", "NY"}, {"1", "ny", "NY"}, {"1", "boston", "NY"}});
  FdSet fds({Fd({0}, 1), Fd({1}, 2), Fd({0}, 2)});
  return ViolationGraph::Build(rel, fds);
}

TEST(ViolationGraphTest, BuildAlignsFdIds) {
  ViolationGraph g = SmallGraph();
  EXPECT_EQ(g.NumFds(), 3);
  EXPECT_EQ(g.fd(0), Fd({0}, 1));
  EXPECT_EQ(g.fd(1), Fd({1}, 2));
  // zip->city flags every city cell of the impure class.
  ASSERT_EQ(g.CellsOfFd(0).size(), 3u);
  EXPECT_EQ(g.cell(g.CellsOfFd(0)[2]), (Cell{2, 1}));
  // city->state and zip->state flag nothing (state is constant).
  EXPECT_TRUE(g.CellsOfFd(1).empty());
  EXPECT_TRUE(g.CellsOfFd(2).empty());
}

TEST(ViolationGraphTest, SharedCellHasTwoFds) {
  Relation rel = MakeRelation(
      {"zip", "area", "city"},
      {{"1", "a", "ny"}, {"1", "a", "ny"}, {"1", "a", "boston"}});
  // Both zip->city and area->city flag the same three cells.
  ViolationGraph g =
      ViolationGraph::Build(rel, FdSet({Fd({0}, 2), Fd({1}, 2)}));
  ASSERT_EQ(g.NumCells(), 3);
  for (CellId c = 0; c < g.NumCells(); ++c) {
    EXPECT_EQ(g.FdsOfCell(c).size(), 2u);
    EXPECT_EQ(g.ActiveDegreeOfCell(c), 2);
  }
}

TEST(ViolationGraphTest, DeactivateFdCascadesToOrphanCells) {
  Relation rel = MakeRelation(
      {"zip", "area", "city"},
      {{"1", "a", "ny"}, {"1", "a", "ny"}, {"1", "b", "boston"}});
  // zip->city flags its impure class; area->city flags nothing (area
  // splits the groups into pure classes).
  ViolationGraph g =
      ViolationGraph::Build(rel, FdSet({Fd({0}, 2), Fd({1}, 2)}));
  ASSERT_EQ(g.NumCells(), 3);
  EXPECT_TRUE(g.CellActive(0));
  g.DeactivateFd(0);
  EXPECT_FALSE(g.FdActive(0));
  for (CellId c = 0; c < g.NumCells(); ++c) {
    EXPECT_FALSE(g.CellActive(c));  // all orphaned
  }
  EXPECT_EQ(g.ActiveFds(), std::vector<FdId>{1});
  EXPECT_TRUE(g.ActiveCells().empty());
}

TEST(ViolationGraphTest, DeactivateFdKeepsSharedCells) {
  Relation rel = MakeRelation(
      {"zip", "area", "city"},
      {{"1", "a", "ny"}, {"1", "a", "ny"}, {"1", "a", "boston"}});
  ViolationGraph g =
      ViolationGraph::Build(rel, FdSet({Fd({0}, 2), Fd({1}, 2)}));
  g.DeactivateFd(0);
  EXPECT_TRUE(g.CellActive(0));  // still flagged by area->city
  EXPECT_EQ(g.ActiveDegreeOfCell(0), 1);
}

TEST(ViolationGraphTest, FindCell) {
  ViolationGraph g = SmallGraph();
  EXPECT_GE(g.FindCell(Cell{2, 1}), 0);
  EXPECT_EQ(g.FindCell(Cell{0, 0}), -1);
}

TEST(ViolationGraphTest, DeactivateCellIsIdempotent) {
  ViolationGraph g = SmallGraph();
  g.DeactivateCell(0);
  g.DeactivateCell(0);
  EXPECT_FALSE(g.CellActive(0));
  EXPECT_EQ(g.ActiveDegreeOfCell(0), 0);
}

}  // namespace
}  // namespace uguide
