#include <gtest/gtest.h>

#include <atomic>
#include <fstream>
#include <set>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "common/attribute_set.h"
#include "common/csv.h"
#include "common/hash.h"
#include "common/result.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/string_pool.h"
#include "common/thread_pool.h"

namespace uguide {
namespace {

// --- Status / Result -------------------------------------------------------

TEST(StatusTest, DefaultIsOk) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kOk);
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status st = Status::InvalidArgument("bad input");
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(st.message(), "bad input");
  EXPECT_EQ(st.ToString(), "Invalid argument: bad input");
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("x"), Status::NotFound("x"));
  EXPECT_FALSE(Status::NotFound("x") == Status::NotFound("y"));
  EXPECT_FALSE(Status::NotFound("x") == Status::IoError("x"));
}

TEST(StatusTest, EveryCodeHasName) {
  for (int code = 0; code <= 9; ++code) {
    EXPECT_STRNE(StatusCodeToString(static_cast<StatusCode>(code)),
                 "Unknown");
  }
}

Result<int> ParsePositive(int x) {
  if (x <= 0) return Status::InvalidArgument("not positive");
  return x;
}

Result<int> DoublePositive(int x) {
  UGUIDE_ASSIGN_OR_RETURN(int value, ParsePositive(x));
  return value * 2;
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 7;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 7);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("missing");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, AssignOrReturnPropagates) {
  EXPECT_EQ(*DoublePositive(4), 8);
  EXPECT_FALSE(DoublePositive(-1).ok());
  EXPECT_EQ(DoublePositive(-1).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r = std::string("payload");
  std::string moved = std::move(r).ValueOrDie();
  EXPECT_EQ(moved, "payload");
}

// --- AttributeSet -----------------------------------------------------------

TEST(AttributeSetTest, EmptyByDefault) {
  AttributeSet s;
  EXPECT_TRUE(s.Empty());
  EXPECT_EQ(s.Size(), 0);
}

TEST(AttributeSetTest, AddRemoveContains) {
  AttributeSet s;
  s.Add(3);
  s.Add(5);
  EXPECT_TRUE(s.Contains(3));
  EXPECT_TRUE(s.Contains(5));
  EXPECT_FALSE(s.Contains(4));
  EXPECT_EQ(s.Size(), 2);
  s.Remove(3);
  EXPECT_FALSE(s.Contains(3));
  EXPECT_EQ(s.Size(), 1);
}

TEST(AttributeSetTest, InitializerListAndFull) {
  AttributeSet s = {0, 2, 4};
  EXPECT_EQ(s.Size(), 3);
  EXPECT_EQ(AttributeSet::Full(5).Size(), 5);
  EXPECT_EQ(AttributeSet::Full(64).Size(), 64);
  EXPECT_EQ(AttributeSet::Full(0).Size(), 0);
}

TEST(AttributeSetTest, SetAlgebra) {
  AttributeSet a = {0, 1, 2};
  AttributeSet b = {2, 3};
  EXPECT_EQ(a.Union(b), AttributeSet({0, 1, 2, 3}));
  EXPECT_EQ(a.Intersect(b), AttributeSet({2}));
  EXPECT_EQ(a.Minus(b), AttributeSet({0, 1}));
  EXPECT_TRUE(AttributeSet({1}).IsSubsetOf(a));
  EXPECT_TRUE(AttributeSet({1}).IsStrictSubsetOf(a));
  EXPECT_FALSE(a.IsStrictSubsetOf(a));
  EXPECT_TRUE(a.IsSubsetOf(a));
  EXPECT_TRUE(a.Intersects(b));
  EXPECT_FALSE(AttributeSet({0}).Intersects(b));
}

TEST(AttributeSetTest, WithWithoutAreNonMutating) {
  const AttributeSet a = {1};
  EXPECT_EQ(a.With(2), AttributeSet({1, 2}));
  EXPECT_EQ(a.Without(1), AttributeSet());
  EXPECT_EQ(a, AttributeSet({1}));
}

TEST(AttributeSetTest, LowestHighestIteration) {
  AttributeSet s = {5, 9, 63};
  EXPECT_EQ(s.Lowest(), 5);
  EXPECT_EQ(s.Highest(), 63);
  EXPECT_EQ(s.ToVector(), (std::vector<int>{5, 9, 63}));
  std::vector<int> seen;
  for (int a : s) seen.push_back(a);
  EXPECT_EQ(seen, s.ToVector());
}

TEST(AttributeSetTest, ToStringForms) {
  AttributeSet s = {0, 2};
  EXPECT_EQ(s.ToString(), "{0,2}");
  EXPECT_EQ(s.ToString({"zip", "city", "state"}), "zip,state");
  EXPECT_EQ(AttributeSet().ToString(), "{}");
}

TEST(AttributeSetTest, HashDistinguishesNearbyMasks) {
  AttributeSetHash hash;
  std::set<size_t> values;
  for (uint64_t mask = 0; mask < 128; ++mask) {
    values.insert(hash(AttributeSet(mask)));
  }
  EXPECT_EQ(values.size(), 128u);
}

// Property sweep: subset/union/minus laws over a range of masks.
class AttributeSetLawsTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(AttributeSetLawsTest, AlgebraLaws) {
  const AttributeSet a(GetParam());
  const AttributeSet b(GetParam() * 0x9e3779b97f4a7c15ULL >> 32);
  EXPECT_TRUE(a.Intersect(b).IsSubsetOf(a));
  EXPECT_TRUE(a.IsSubsetOf(a.Union(b)));
  EXPECT_EQ(a.Minus(b).Intersect(b), AttributeSet());
  EXPECT_EQ(a.Minus(b).Union(a.Intersect(b)), a);
  EXPECT_EQ(a.Union(b).Size() + a.Intersect(b).Size(),
            a.Size() + b.Size());
}

INSTANTIATE_TEST_SUITE_P(Masks, AttributeSetLawsTest,
                         ::testing::Values(0ULL, 1ULL, 0b1010ULL, 0xffULL,
                                           0xdeadbeefULL, 0x8000000000000000ULL,
                                           ~0ULL, 0x5555555555555555ULL));

// --- Rng --------------------------------------------------------------------

TEST(RngTest, DeterministicFromSeed) {
  Rng a(123), b(123), c(124);
  std::vector<uint64_t> va, vb, vc;
  for (int i = 0; i < 32; ++i) {
    va.push_back(a.Next());
    vb.push_back(b.Next());
    vc.push_back(c.Next());
  }
  EXPECT_EQ(va, vb);
  EXPECT_NE(va, vc);
}

TEST(RngTest, BoundedStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBounded(10), 10u);
    int64_t v = rng.NextInt(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, BoundedCoversAllValues) {
  Rng rng(99);
  std::set<uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.NextBounded(5));
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RngTest, WeightedRespectsZeroWeights) {
  Rng rng(5);
  std::vector<double> weights = {0.0, 1.0, 0.0, 3.0};
  for (int i = 0; i < 200; ++i) {
    size_t pick = rng.NextWeighted(weights);
    EXPECT_TRUE(pick == 1 || pick == 3);
  }
}

TEST(RngTest, WeightedIsRoughlyProportional) {
  Rng rng(6);
  std::vector<double> weights = {1.0, 9.0};
  int heavy = 0;
  for (int i = 0; i < 5000; ++i) {
    if (rng.NextWeighted(weights) == 1) ++heavy;
  }
  EXPECT_GT(heavy, 4200);
  EXPECT_LT(heavy, 4800);
}

TEST(RngTest, ZipfSkewsTowardLowRanks) {
  Rng rng(8);
  int first = 0, last = 0;
  for (int i = 0; i < 3000; ++i) {
    size_t r = rng.NextZipf(10, 1.5);
    if (r == 0) ++first;
    if (r == 9) ++last;
  }
  EXPECT_GT(first, 10 * last);
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(9);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.NextBool(0.0));
    EXPECT_TRUE(rng.NextBool(1.0));
  }
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(10);
  std::vector<int> items = {1, 2, 3, 4, 5, 6, 7};
  std::vector<int> shuffled = items;
  rng.Shuffle(shuffled);
  std::multiset<int> a(items.begin(), items.end());
  std::multiset<int> b(shuffled.begin(), shuffled.end());
  EXPECT_EQ(a, b);
}

// --- StringPool -------------------------------------------------------------

TEST(StringPoolTest, InternIsIdempotent) {
  StringPool pool;
  ValueCode a = pool.Intern("alpha");
  ValueCode b = pool.Intern("beta");
  EXPECT_NE(a, b);
  EXPECT_EQ(pool.Intern("alpha"), a);
  EXPECT_EQ(pool.Size(), 2u);
}

TEST(StringPoolTest, LookupRoundTrips) {
  StringPool pool;
  ValueCode a = pool.Intern("value");
  EXPECT_EQ(pool.Lookup(a), "value");
}

TEST(StringPoolTest, FindWithoutIntern) {
  StringPool pool;
  pool.Intern("present");
  EXPECT_EQ(pool.Find("present"), 0);
  EXPECT_EQ(pool.Find("absent"), kNullValueCode);
}

TEST(StringPoolTest, EmptyStringIsAValue) {
  StringPool pool;
  ValueCode e = pool.Intern("");
  EXPECT_EQ(pool.Lookup(e), "");
}

// --- CSV --------------------------------------------------------------------

TEST(CsvTest, ParsesSimpleTable) {
  auto r = ParseCsv("a,b\n1,2\n3,4\n");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->header, (std::vector<std::string>{"a", "b"}));
  ASSERT_EQ(r->rows.size(), 2u);
  EXPECT_EQ(r->rows[1], (std::vector<std::string>{"3", "4"}));
}

TEST(CsvTest, HandlesQuotedFields) {
  auto r = ParseCsv("a,b\n\"x,y\",\"say \"\"hi\"\"\"\n");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->rows[0][0], "x,y");
  EXPECT_EQ(r->rows[0][1], "say \"hi\"");
}

TEST(CsvTest, HandlesCrLfAndMissingTrailingNewline) {
  auto r = ParseCsv("a,b\r\n1,2\r\n3,4");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->rows.size(), 2u);
  EXPECT_EQ(r->rows[1][1], "4");
}

TEST(CsvTest, RejectsRaggedRows) {
  auto r = ParseCsv("a,b\n1\n");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  // The message names the 1-based physical line and both field counts.
  EXPECT_NE(r.status().message().find("line 2"), std::string::npos)
      << r.status().message();
  EXPECT_NE(r.status().message().find("expected 2 fields, got 1"),
            std::string::npos)
      << r.status().message();
}

TEST(CsvTest, RaggedRowReportsPhysicalLineAcrossQuotedNewlines) {
  // The quoted field on line 2 spans two physical lines, so the ragged
  // row is record #3 but starts on physical line 4.
  auto r = ParseCsv("a,b\n\"x\ny\",2\n1,2,3\n");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("line 4"), std::string::npos)
      << r.status().message();
  EXPECT_NE(r.status().message().find("expected 2 fields, got 3"),
            std::string::npos)
      << r.status().message();
}

TEST(CsvTest, RejectsUnterminatedQuote) {
  auto r = ParseCsv("a\n\"oops\n");
  ASSERT_FALSE(r.ok());
  // Points at the line the quote opened on, not the end of input.
  EXPECT_NE(r.status().message().find("line 2"), std::string::npos)
      << r.status().message();
  EXPECT_NE(r.status().message().find("unterminated quoted field"),
            std::string::npos)
      << r.status().message();
}

TEST(CsvTest, RejectsQuoteInsideUnquotedField) {
  auto r = ParseCsv("a,b\n1,2\nx\"y,2\n");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("line 3"), std::string::npos)
      << r.status().message();
  EXPECT_NE(r.status().message().find("quote inside unquoted field"),
            std::string::npos)
      << r.status().message();
}

TEST(CsvTest, RejectsEmptyInput) { EXPECT_FALSE(ParseCsv("").ok()); }

TEST(CsvTest, StripsUtf8Bom) {
  // Spreadsheet exports prepend a BOM; it must not become part of the
  // first header name.
  auto r = ParseCsv("\xEF\xBB\xBF"
                    "a,b\n1,2\n");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->header, (std::vector<std::string>{"a", "b"}));
}

TEST(CsvTest, BomDoesNotShiftErrorLineNumbers) {
  auto r = ParseCsv("\xEF\xBB\xBF"
                    "a,b\n1\n");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("line 2"), std::string::npos)
      << r.status().message();
}

TEST(CsvTest, BomAloneIsEmptyInput) {
  EXPECT_FALSE(ParseCsv("\xEF\xBB\xBF").ok());
}

TEST(CsvTest, EmbeddedNulIsData) {
  // A NUL byte is field content, not a terminator: parsing must neither
  // crash nor truncate the field.
  const std::string text{"a,b\n1\x00"
                         "2,3\n",
                         10};
  auto r = ParseCsv(text);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->rows.size(), 1u);
  EXPECT_EQ(r->rows[0][0], (std::string{"1\x00"
                                        "2",
                                        3}));
  EXPECT_EQ(r->rows[0][1], "3");
}

TEST(CsvTest, QuotedCrLfKeepsLineNumbers) {
  // CRLF terminators plus a quoted field spanning lines: the ragged row
  // is still reported at its 1-based physical line.
  auto r = ParseCsv("a,b\r\n\"x\r\ny\",2\r\n1,2,3\r\n");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("line 4"), std::string::npos)
      << r.status().message();
}

TEST(CsvTest, WriteQuotesOnlyWhenNeeded) {
  CsvTable t;
  t.header = {"a", "b"};
  t.rows = {{"plain", "with,comma"}, {"with\"quote", "line\nbreak"}};
  std::string text = WriteCsv(t);
  EXPECT_EQ(text,
            "a,b\nplain,\"with,comma\"\n\"with\"\"quote\",\"line\nbreak\"\n");
}

TEST(CsvTest, RoundTrip) {
  CsvTable t;
  t.header = {"x", "y", "z"};
  t.rows = {{"1", "a,b", ""}, {"\"q\"", "plain", "end"}};
  auto parsed = ParseCsv(WriteCsv(t));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->header, t.header);
  EXPECT_EQ(parsed->rows, t.rows);
}

TEST(CsvTest, FileRoundTrip) {
  CsvTable t;
  t.header = {"k", "v"};
  t.rows = {{"1", "one"}, {"2", "two"}};
  const std::string path = ::testing::TempDir() + "/uguide_csv_test.csv";
  ASSERT_TRUE(WriteCsvFile(t, path).ok());
  auto r = ReadCsvFile(path);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->rows, t.rows);
}

TEST(CsvTest, ReadMissingFileFails) {
  auto r = ReadCsvFile("/nonexistent/uguide.csv");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kIoError);
  // The path and the OS reason both appear.
  EXPECT_NE(r.status().message().find("/nonexistent/uguide.csv"),
            std::string::npos)
      << r.status().message();
  EXPECT_NE(r.status().message().find("No such file"), std::string::npos)
      << r.status().message();
}

TEST(CsvTest, ReadFileWrapsParseErrorsWithPath) {
  const std::string path = ::testing::TempDir() + "/uguide_ragged.csv";
  {
    std::ofstream out(path, std::ios::binary);
    out << "a,b\n1,2,3\n";
  }
  auto r = ReadCsvFile(path);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(r.status().message().find(path), std::string::npos)
      << r.status().message();
  EXPECT_NE(r.status().message().find("line 2"), std::string::npos)
      << r.status().message();
}

// --- ThreadPool ------------------------------------------------------------

TEST(ThreadPoolTest, AutoResolvesToAtLeastOneThread) {
  ThreadPool pool;  // kAuto
  EXPECT_GE(pool.num_threads(), 1);
}

TEST(ThreadPoolTest, SingleThreadedFallbackRunsInline) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.num_threads(), 1);
  const std::thread::id caller = std::this_thread::get_id();
  std::vector<size_t> order;
  pool.ParallelFor(8, [&](size_t i) {
    EXPECT_EQ(std::this_thread::get_id(), caller);
    order.push_back(i);  // no synchronization needed: inline execution
  });
  EXPECT_EQ(order, (std::vector<size_t>{0, 1, 2, 3, 4, 5, 6, 7}));
  bool ran = false;
  pool.Submit([&] { ran = true; });  // synchronous in the fallback
  EXPECT_TRUE(ran);
}

TEST(ThreadPoolTest, ParallelForVisitsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  constexpr size_t kN = 10000;
  std::vector<std::atomic<int>> hits(kN);
  pool.ParallelFor(kN, [&](size_t i) { hits[i].fetch_add(1); });
  for (size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, ParallelForHandlesEmptyAndTinyRanges) {
  ThreadPool pool(4);
  int calls = 0;
  pool.ParallelFor(0, [&](size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  pool.ParallelFor(1, [&](size_t) { ++calls; });  // n == 1 runs inline
  EXPECT_EQ(calls, 1);
}

TEST(ThreadPoolTest, ParallelMapPreservesInputOrder) {
  for (int threads : {1, 4}) {
    ThreadPool pool(threads);
    std::vector<int> in(1000);
    for (size_t i = 0; i < in.size(); ++i) in[i] = static_cast<int>(i);
    std::vector<int> out = pool.ParallelMap(in, [](const int& v) {
      return v * v;
    });
    ASSERT_EQ(out.size(), in.size());
    for (size_t i = 0; i < in.size(); ++i) {
      ASSERT_EQ(out[i], in[i] * in[i]);
    }
  }
}

TEST(ThreadPoolTest, PoolIsReusableAcrossForkJoins) {
  ThreadPool pool(3);
  std::atomic<int> total{0};
  for (int round = 0; round < 20; ++round) {
    pool.ParallelFor(100, [&](size_t) { total.fetch_add(1); });
  }
  EXPECT_EQ(total.load(), 2000);
}

TEST(ThreadPoolTest, SubmittedTasksAllRunBeforeDestruction) {
  std::atomic<int> ran{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      pool.Submit([&] { ran.fetch_add(1); });
    }
  }  // destructor drains the queue and joins
  EXPECT_EQ(ran.load(), 50);
}

TEST(ThreadPoolTest, ParallelForSurfacesTaskException) {
  ThreadPool pool(4);
  std::atomic<int> calls{0};
  EXPECT_THROW(
      pool.ParallelFor(10000,
                       [&](size_t i) {
                         calls.fetch_add(1);
                         if (i == 137) throw std::runtime_error("boom");
                       }),
      std::runtime_error);
  // Cancellation is chunk-granular: some iterations never ran.
  EXPECT_GT(calls.load(), 0);
  // The pool survives a throwing fork/join and is fully reusable.
  std::atomic<int> total{0};
  pool.ParallelFor(500, [&](size_t) { total.fetch_add(1); });
  EXPECT_EQ(total.load(), 500);
}

TEST(ThreadPoolTest, InlineParallelForPropagatesException) {
  ThreadPool pool(1);
  EXPECT_THROW(pool.ParallelFor(
                   8, [](size_t i) {
                     if (i == 3) throw std::runtime_error("inline boom");
                   }),
               std::runtime_error);
}

TEST(ThreadPoolTest, SubmitCapturesTaskException) {
  ThreadPool pool(2);
  EXPECT_EQ(pool.TakeSubmitError(), nullptr);
  pool.Submit([] { throw std::runtime_error("async boom"); });
  // A ParallelFor is a full barrier over the workers, so the throwing task
  // has definitely finished once it returns.
  pool.ParallelFor(64, [](size_t) {});
  std::exception_ptr error = pool.TakeSubmitError();
  ASSERT_NE(error, nullptr);
  EXPECT_THROW(std::rethrow_exception(error), std::runtime_error);
  // Taking the error clears the slot.
  EXPECT_EQ(pool.TakeSubmitError(), nullptr);
}

}  // namespace
}  // namespace uguide
