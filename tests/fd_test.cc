#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.h"
#include "fd/armstrong.h"
#include "fd/closure.h"
#include "fd/fd.h"

namespace uguide {
namespace {

Schema AbcSchema() { return Schema::Make({"A", "B", "C"}).ValueOrDie(); }

// --- Fd / FdSet -------------------------------------------------------------

TEST(FdTest, ShapeValidity) {
  EXPECT_TRUE(Fd({0, 1}, 2).IsValidShape());
  EXPECT_FALSE(Fd({0, 2}, 2).IsValidShape());
  EXPECT_TRUE(Fd(AttributeSet(), 0).IsValidShape());  // constant column
}

TEST(FdTest, ToStringForms) {
  Fd fd({0, 1}, 2);
  EXPECT_EQ(fd.ToString(), "{0,1}->2");
  EXPECT_EQ(fd.ToString(AbcSchema()), "A,B->C");
}

TEST(FdTest, Ordering) {
  EXPECT_LT(Fd({0}, 1), Fd({0}, 2));
  EXPECT_LT(Fd({0}, 2), Fd({1}, 2));
}

TEST(FdSetTest, AddDeduplicates) {
  FdSet set;
  EXPECT_TRUE(set.Add(Fd({0}, 1)));
  EXPECT_FALSE(set.Add(Fd({0}, 1)));
  EXPECT_EQ(set.Size(), 1u);
  EXPECT_TRUE(set.Contains(Fd({0}, 1)));
}

TEST(FdSetTest, RemoveKeepsIndexConsistent) {
  FdSet set({Fd({0}, 1), Fd({1}, 2), Fd({0}, 2)});
  EXPECT_TRUE(set.Remove(Fd({1}, 2)));
  EXPECT_FALSE(set.Remove(Fd({1}, 2)));
  EXPECT_EQ(set.Size(), 2u);
  EXPECT_TRUE(set.Contains(Fd({0}, 2)));
  EXPECT_FALSE(set.Contains(Fd({1}, 2)));
}

TEST(FdSetTest, PreservesInsertionOrder) {
  FdSet set({Fd({2}, 0), Fd({0}, 1)});
  EXPECT_EQ(set[0], Fd({2}, 0));
  EXPECT_EQ(set[1], Fd({0}, 1));
}

TEST(FdSetTest, IsMinimalIn) {
  FdSet set({Fd({0}, 2), Fd({0, 1}, 2)});
  EXPECT_TRUE(set.IsMinimalIn(Fd({0}, 2)));
  EXPECT_FALSE(set.IsMinimalIn(Fd({0, 1}, 2)));
}

// --- Parsing ----------------------------------------------------------------

TEST(FdParseTest, RoundTripsToString) {
  Schema schema = AbcSchema();
  for (const Fd& fd : {Fd({0, 1}, 2), Fd({2}, 0), Fd(AttributeSet(), 1)}) {
    auto parsed = Fd::Parse(fd.ToString(schema), schema);
    ASSERT_TRUE(parsed.ok()) << fd.ToString(schema);
    EXPECT_EQ(*parsed, fd);
  }
}

TEST(FdParseTest, ToleratesWhitespace) {
  auto fd = Fd::Parse("  A , B ->  C ", AbcSchema());
  ASSERT_TRUE(fd.ok());
  EXPECT_EQ(*fd, Fd({0, 1}, 2));
}

TEST(FdParseTest, EmptyLhsIsConstantColumn) {
  auto fd = Fd::Parse("->B", AbcSchema());
  ASSERT_TRUE(fd.ok());
  EXPECT_EQ(*fd, Fd(AttributeSet(), 1));
}

TEST(FdParseTest, RejectsMalformedInput) {
  Schema schema = AbcSchema();
  EXPECT_FALSE(Fd::Parse("A,B", schema).ok());        // no arrow
  EXPECT_FALSE(Fd::Parse("A->Z", schema).ok());       // unknown attribute
  EXPECT_FALSE(Fd::Parse("A,,B->C", schema).ok());    // empty LHS token
  EXPECT_FALSE(Fd::Parse("A,C->C", schema).ok());     // trivial
}

TEST(FdParseTest, SetRoundTrip) {
  Schema schema = AbcSchema();
  FdSet fds({Fd({0}, 1), Fd({1, 2}, 0)});
  auto parsed = FdSet::Parse(fds.ToString(schema), schema);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->Size(), 2u);
  EXPECT_TRUE(parsed->Contains(Fd({0}, 1)));
  EXPECT_TRUE(parsed->Contains(Fd({1, 2}, 0)));
}

TEST(FdParseTest, SetSkipsCommentsAndBlanks) {
  auto parsed = FdSet::Parse("# header\n\nA->B\n  # trailing\nB->C\n",
                             AbcSchema());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->Size(), 2u);
}

TEST(FdParseTest, SetPropagatesErrors) {
  EXPECT_FALSE(FdSet::Parse("A->B\nbroken\n", AbcSchema()).ok());
}

// --- ClosureEngine ----------------------------------------------------------

TEST(ClosureTest, TransitiveClosure) {
  // A -> B, B -> C: closure(A) = ABC.
  ClosureEngine engine(FdSet({Fd({0}, 1), Fd({1}, 2)}));
  EXPECT_EQ(engine.Closure(AttributeSet({0})), AttributeSet({0, 1, 2}));
  EXPECT_EQ(engine.Closure(AttributeSet({2})), AttributeSet({2}));
}

TEST(ClosureTest, ImpliesCoversArmstrongAxioms) {
  ClosureEngine engine(FdSet({Fd({0}, 1), Fd({1}, 2)}));
  EXPECT_TRUE(engine.Implies(Fd({0}, 2)));        // transitivity
  EXPECT_TRUE(engine.Implies(Fd({0, 2}, 1)));     // augmentation
  EXPECT_FALSE(engine.Implies(Fd({2}, 0)));
  EXPECT_FALSE(engine.Implies(Fd({1}, 0)));
}

TEST(ClosureTest, MinimizeStripsExtraneousAttributes) {
  ClosureEngine engine(FdSet({Fd({0}, 2), Fd({0, 1}, 2)}));
  EXPECT_EQ(engine.Minimize(Fd({0, 1}, 2)), Fd({0}, 2));
  EXPECT_TRUE(engine.IsMinimal(Fd({0}, 2)));
  EXPECT_FALSE(engine.IsMinimal(Fd({0, 1}, 2)));
}

TEST(ClosureTest, MinimalCoverDropsRedundant) {
  // A -> B, B -> C, A -> C: the last is redundant.
  ClosureEngine engine(FdSet({Fd({0}, 1), Fd({1}, 2), Fd({0}, 2)}));
  FdSet cover = engine.MinimalCover();
  EXPECT_EQ(cover.Size(), 2u);
  EXPECT_TRUE(ClosureEngine(cover).EquivalentTo(engine));
}

TEST(ClosureTest, MinimalCoverLeftReduces) {
  // AB -> C where A -> C already holds.
  ClosureEngine engine(FdSet({Fd({0}, 2), Fd({0, 1}, 2)}));
  FdSet cover = engine.MinimalCover();
  EXPECT_TRUE(cover.Contains(Fd({0}, 2)));
  EXPECT_FALSE(cover.Contains(Fd({0, 1}, 2)));
}

TEST(ClosureTest, EquivalentToIsSymmetricAndDetectsDifference) {
  ClosureEngine a(FdSet({Fd({0}, 1), Fd({1}, 2)}));
  ClosureEngine b(FdSet({Fd({0}, 1), Fd({1}, 2), Fd({0}, 2)}));
  ClosureEngine c(FdSet({Fd({0}, 1)}));
  EXPECT_TRUE(a.EquivalentTo(b));
  EXPECT_TRUE(b.EquivalentTo(a));
  EXPECT_FALSE(a.EquivalentTo(c));
}

// --- SaturatedSets ----------------------------------------------------------

TEST(SaturationTest, PaperExampleTwo) {
  // Example 2 (§6): Sigma = {B -> C, AC -> B} over {A, B, C}; the saturated
  // sets are {A}, {C}, {B,C}, and {} (plus the full set, which is always
  // closed).
  FdSet fds({Fd({1}, 2), Fd({0, 2}, 1)});
  std::vector<AttributeSet> closed = SaturatedSets(fds, 3);
  auto has = [&](AttributeSet s) {
    return std::find(closed.begin(), closed.end(), s) != closed.end();
  };
  EXPECT_TRUE(has(AttributeSet()));
  EXPECT_TRUE(has(AttributeSet({0})));
  EXPECT_TRUE(has(AttributeSet({2})));
  EXPECT_TRUE(has(AttributeSet({1, 2})));
  EXPECT_TRUE(has(AttributeSet({0, 1, 2})));
  EXPECT_EQ(closed.size(), 5u);
}

TEST(SaturationTest, NoFdsMeansEverySetIsClosed) {
  std::vector<AttributeSet> closed = SaturatedSets(FdSet(), 4);
  EXPECT_EQ(closed.size(), 16u);
}

TEST(SaturationTest, EverySetIsActuallyClosed) {
  FdSet fds({Fd({0}, 1), Fd({2}, 3), Fd({1, 3}, 0)});
  ClosureEngine engine(fds);
  for (const AttributeSet& s : SaturatedSets(fds, 4)) {
    EXPECT_EQ(engine.Closure(s), s) << s.ToString();
  }
}

TEST(SaturationTest, FindsAllClosedSetsByBruteForce) {
  FdSet fds({Fd({0}, 1), Fd({2}, 3), Fd({1, 3}, 0)});
  ClosureEngine engine(fds);
  size_t brute = 0;
  for (uint64_t mask = 0; mask < 32; ++mask) {
    AttributeSet s(mask);
    if (engine.Closure(s) == s) ++brute;
  }
  EXPECT_EQ(SaturatedSets(fds, 5).size(), brute);
}

TEST(SaturationTest, HonorsCap) {
  EXPECT_EQ(SaturatedSets(FdSet(), 10, 7).size(), 7u);
}

TEST(SaturationTest, ZeroAttributes) {
  std::vector<AttributeSet> closed = SaturatedSets(FdSet(), 0);
  ASSERT_EQ(closed.size(), 1u);
  EXPECT_TRUE(closed[0].Empty());
}

// --- Armstrong relations ----------------------------------------------------

TEST(ArmstrongTest, FdHoldsOnDetectsViolation) {
  Relation rel(AbcSchema());
  rel.AddRow({"1", "x", "p"});
  rel.AddRow({"1", "x", "q"});
  EXPECT_FALSE(FdHoldsOn(rel, Fd({0}, 2)));
  EXPECT_TRUE(FdHoldsOn(rel, Fd({0}, 1)));
  EXPECT_TRUE(FdHoldsOn(rel, Fd({2}, 1)));  // C unique => C -> B
}

TEST(ArmstrongTest, FdHoldsOnEmptyLhs) {
  Relation rel(AbcSchema());
  rel.AddRow({"1", "x", "p"});
  rel.AddRow({"2", "x", "q"});
  EXPECT_TRUE(FdHoldsOn(rel, Fd(AttributeSet(), 1)));   // B constant
  EXPECT_FALSE(FdHoldsOn(rel, Fd(AttributeSet(), 0)));  // A not constant
}

TEST(ArmstrongTest, BuildsExactArmstrongRelation) {
  FdSet fds({Fd({0}, 1)});
  Relation rel = BuildArmstrongRelation(AbcSchema(), fds);
  EXPECT_TRUE(IsArmstrongRelation(rel, fds));
}

TEST(ArmstrongTest, TransitiveSet) {
  FdSet fds({Fd({0}, 1), Fd({1}, 2)});
  Relation rel = BuildArmstrongRelation(AbcSchema(), fds);
  EXPECT_TRUE(IsArmstrongRelation(rel, fds));
  EXPECT_TRUE(FdHoldsOn(rel, Fd({0}, 2)));   // implied
  EXPECT_FALSE(FdHoldsOn(rel, Fd({2}, 0)));  // not implied
}

TEST(ArmstrongTest, EmptyFdSet) {
  FdSet fds;
  Relation rel = BuildArmstrongRelation(AbcSchema(), fds);
  EXPECT_TRUE(IsArmstrongRelation(rel, fds));
  // With no FDs, nothing non-trivial may hold.
  EXPECT_FALSE(FdHoldsOn(rel, Fd({0}, 1)));
  EXPECT_FALSE(FdHoldsOn(rel, Fd({0, 1}, 2)));
}

// Property sweep: random FD sets over 4 attributes always yield exact
// Armstrong relations.
class ArmstrongPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ArmstrongPropertyTest, RandomFdSetsProduceArmstrongRelations) {
  Rng rng(GetParam());
  Schema schema = Schema::Make({"A", "B", "C", "D"}).ValueOrDie();
  FdSet fds;
  const int num_fds = 1 + static_cast<int>(rng.NextBounded(4));
  for (int i = 0; i < num_fds; ++i) {
    AttributeSet lhs(rng.NextBounded(16));
    int rhs = static_cast<int>(rng.NextBounded(4));
    lhs.Remove(rhs);
    fds.Add(Fd(lhs, rhs));
  }
  Relation rel = BuildArmstrongRelation(schema, fds);
  EXPECT_TRUE(IsArmstrongRelation(rel, fds))
      << "FD set:\n" << fds.ToString(schema);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ArmstrongPropertyTest,
                         ::testing::Range<uint64_t>(1, 21));

}  // namespace
}  // namespace uguide
