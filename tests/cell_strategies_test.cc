#include <gtest/gtest.h>

#include "core/cell_strategies.h"
#include "core/session.h"
#include "fd/closure.h"
#include "test_util.h"

namespace uguide {
namespace {

using ::uguide::testing::MakeHospitalSession;

struct CellCase {
  const char* name;
  std::unique_ptr<Strategy> (*make)(const CellStrategyOptions&);
};

class CellStrategyTest : public ::testing::TestWithParam<CellCase> {};

TEST_P(CellStrategyTest, RespectsBudget) {
  Session session = MakeHospitalSession(800);
  auto strategy = GetParam().make({});
  SessionReport report = session.Run(*strategy, 50.0);
  EXPECT_LE(report.result.cost_spent, 50.0);
  EXPECT_EQ(report.result.questions_asked,
            static_cast<int>(report.result.cost_spent));  // cell cost = 1
}

TEST_P(CellStrategyTest, ZeroBudgetAsksNothing) {
  Session session = MakeHospitalSession(600);
  auto strategy = GetParam().make({});
  SessionReport report = session.Run(*strategy, 0.0);
  EXPECT_EQ(report.result.questions_asked, 0);
  EXPECT_EQ(report.result.cost_spent, 0.0);
}

TEST_P(CellStrategyTest, AcceptedFdsComeFromCandidates) {
  Session session = MakeHospitalSession(800);
  auto strategy = GetParam().make({});
  SessionReport report = session.Run(*strategy, 200.0);
  for (const Fd& fd : report.result.accepted_fds) {
    EXPECT_TRUE(session.candidates().Contains(fd)) << fd.ToString();
  }
}

TEST_P(CellStrategyTest, LargerBudgetDoesNotIncreaseFalseRate) {
  Session session = MakeHospitalSession(1200);
  auto strategy = GetParam().make({});
  const double small = session.Run(*strategy, 30.0)
                           .metrics.FalseViolationPct();
  const double large = session.Run(*strategy, 600.0)
                           .metrics.FalseViolationPct();
  EXPECT_LE(large, small + 10.0);  // allow sampling noise
}

INSTANTIATE_TEST_SUITE_P(
    AllCellStrategies, CellStrategyTest,
    ::testing::Values(CellCase{"hs", &MakeCellQHittingSet},
                      CellCase{"sums", &MakeCellQSums},
                      CellCase{"greedy", &MakeCellQGreedy},
                      CellCase{"oracle", &MakeCellQOracle}),
    [](const ::testing::TestParamInfo<CellCase>& info) {
      return info.param.name;
    });

TEST(CellStrategyTest, EvidenceAcceptanceGrowsWithBudget) {
  // Acceptance is evidence-driven (§7.2.1's confidence threshold): more
  // questions confirm more FDs, so both the accepted set and the detected
  // fraction of true violations grow with budget.
  Session session = MakeHospitalSession(1200);
  auto strategy = MakeCellQHittingSet({});
  SessionReport small = session.Run(*strategy, 50.0);
  SessionReport big = session.Run(*strategy, 1500.0);
  EXPECT_GE(big.result.accepted_fds.Size(), small.result.accepted_fds.Size());
  EXPECT_GE(big.metrics.TrueViolationPct(),
            small.metrics.TrueViolationPct());
}

TEST(CellStrategyTest, AcceptThresholdZeroAcceptsAllSurvivors) {
  // Algorithm 2's literal `return Sigma`: with threshold 0 every candidate
  // that was not invalidated is accepted, giving maximal recall at once.
  Session session = MakeHospitalSession(1000);
  CellStrategyOptions accept_all;
  accept_all.accept_threshold = 0.0;
  auto strategy = MakeCellQHittingSet(accept_all);
  SessionReport report = session.Run(*strategy, 100.0);
  // Nearly all candidates survive 100 questions (only FD-less ones and the
  // few invalidated by "no" answers drop out). 237 of 239 here; keep a
  // margin for other fixtures.
  EXPECT_GE(report.result.accepted_fds.Size(),
            session.candidates().Size() * 2 / 5);
  EXPECT_GE(report.metrics.TrueViolationPct(), 99.0);
}

TEST(CellStrategyTest, OracleNeverWorseThanGreedyOnFalseRate) {
  Session session = MakeHospitalSession(1500);
  auto oracle = MakeCellQOracle({});
  auto greedy = MakeCellQGreedy({});
  const double budget = 300.0;
  SessionReport oracle_report = session.Run(*oracle, budget);
  SessionReport greedy_report = session.Run(*greedy, budget);
  EXPECT_LE(oracle_report.metrics.FalseViolationPct(),
            greedy_report.metrics.FalseViolationPct() + 5.0);
}

TEST(CellStrategyTest, SumsConfidenceThresholdFiltersFds) {
  Session session = MakeHospitalSession(1000);
  CellStrategyOptions strict;
  strict.sums_accept_threshold = 0.95;
  CellStrategyOptions lax;
  lax.sums_accept_threshold = 0.0;
  auto strict_strategy = MakeCellQSums(strict);
  auto lax_strategy = MakeCellQSums(lax);
  SessionReport strict_report = session.Run(*strict_strategy, 100.0);
  SessionReport lax_report = session.Run(*lax_strategy, 100.0);
  EXPECT_LE(strict_report.result.accepted_fds.Size(),
            lax_report.result.accepted_fds.Size());
}

TEST(CellStrategyTest, TrueFdsAlwaysSurviveQuestioning) {
  // FDs implied by the true set can never be invalidated by honest expert
  // answers: every cell a true candidate flags violates a true FD (its
  // minimal generalization flags the same pair), so the expert always
  // answers "yes" for it. With threshold 0 (accept all survivors) every
  // true candidate must therefore be in the accepted set.
  Session session = MakeHospitalSession(1200);
  CellStrategyOptions accept_all;
  accept_all.accept_threshold = 0.0;
  auto strategy = MakeCellQHittingSet(accept_all);
  SessionReport report = session.Run(*strategy, 2000.0);
  ClosureEngine true_closure(session.true_fds());
  for (const Fd& fd : session.candidates()) {
    if (!true_closure.Implies(fd)) continue;
    EXPECT_TRUE(report.result.accepted_fds.Contains(fd)) << fd.ToString();
  }
}

TEST(CellStrategyTest, SumsBestAtLimitedBudget) {
  // §7.2.1: "the SUMS algorithm, which is based on truth discovery,
  // performs best when the budget is limited."
  Session session = MakeHospitalSession(1500);
  auto sums = MakeCellQSums({});
  auto greedy = MakeCellQGreedy({});
  const double budget = 250.0;
  EXPECT_GE(session.Run(*sums, budget).metrics.TrueViolationPct(),
            session.Run(*greedy, budget).metrics.TrueViolationPct());
}

TEST(CellStrategyTest, IdkAnswersOnlySlowProgress) {
  Session fluent = MakeHospitalSession(1000, ErrorModel::kSystematic, 0.15,
                                       5, /*idk_rate=*/0.0);
  Session hesitant = MakeHospitalSession(1000, ErrorModel::kSystematic, 0.15,
                                         5, /*idk_rate=*/0.7);
  auto strategy = MakeCellQHittingSet({});
  SessionReport fluent_report = fluent.Run(*strategy, 400.0);
  SessionReport hesitant_report = hesitant.Run(*strategy, 400.0);
  // The hesitant expert wastes budget, so fewer false FDs get eliminated:
  // accepted-set size cannot be smaller than under the fluent expert.
  EXPECT_GE(hesitant_report.result.accepted_fds.Size(),
            fluent_report.result.accepted_fds.Size());
}

}  // namespace
}  // namespace uguide
