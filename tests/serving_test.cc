// The serving subsystem: wire protocol (parser hardening + exact
// round-trips), SessionManager semantics without sockets, and the TCP
// daemon with them — including the kill-client-mid-session and
// write-failure paths that motivate the connection/session split.

#include <gtest/gtest.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <netinet/in.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/fault_injection.h"
#include "core/session_state.h"
#include "oracle/simulated_expert.h"
#include "server/daemon.h"
#include "server/protocol.h"
#include "server/session_manager.h"
#include "test_util.h"

namespace uguide {
namespace {

using ::uguide::testing::MakeHospitalSession;

// --- JSON parser ------------------------------------------------------------

TEST(JsonValueTest, ParsesScalarsAndContainers) {
  JsonValue v = JsonValue::Parse(
                    " {\"a\": 1, \"b\": [true, null, -2.5], \"c\": \"x\"} ")
                    .ValueOrDie();
  ASSERT_TRUE(v.is_object());
  ASSERT_NE(v.Get("a"), nullptr);
  EXPECT_EQ(v.GetInt("a", 0).ValueOrDie(), 1);
  const JsonValue* b = v.Get("b");
  ASSERT_NE(b, nullptr);
  ASSERT_EQ(b->array_items().size(), 3u);
  EXPECT_TRUE(b->array_items()[0].bool_value());
  EXPECT_EQ(b->array_items()[2].number_value(), -2.5);
  EXPECT_EQ(v.GetString("c", true).ValueOrDie(), "x");
  EXPECT_EQ(v.Get("missing"), nullptr);
}

TEST(JsonValueTest, DecodesEscapesAndSurrogatePairs) {
  JsonValue v =
      JsonValue::Parse("\"\\u0041\\n\\\"\\\\\\uD83D\\uDE00\"").ValueOrDie();
  EXPECT_EQ(v.string_value(), "A\n\"\\\xF0\x9F\x98\x80");
  // An embedded NUL survives as a real byte.
  JsonValue nul = JsonValue::Parse("\"a\\u0000b\"").ValueOrDie();
  EXPECT_EQ(nul.string_value(), std::string("a\0b", 3));
}

TEST(JsonValueTest, RejectsHostileInput) {
  EXPECT_FALSE(JsonValue::Parse("").ok());
  EXPECT_FALSE(JsonValue::Parse("{").ok());
  EXPECT_FALSE(JsonValue::Parse("{} trailing").ok());
  EXPECT_FALSE(JsonValue::Parse("{\"a\":}").ok());
  EXPECT_FALSE(JsonValue::Parse("\"\\uD83D\"").ok());  // lone surrogate
  EXPECT_FALSE(JsonValue::Parse("nul").ok());
  // Depth bound: kMaxDepth nested containers parse (the innermost value
  // may sit at depth kMaxDepth itself), two levels past that do not.
  std::string deep(JsonValue::kMaxDepth, '[');
  deep += std::string(JsonValue::kMaxDepth, ']');
  EXPECT_TRUE(JsonValue::Parse(deep).ok());
  std::string deeper = "[[" + deep + "]]";
  EXPECT_FALSE(JsonValue::Parse(deeper).ok());
  // Size bound: a >1 MiB frame is refused before allocation balloons.
  std::string huge = "\"" + std::string((1 << 20) + 16, 'x') + "\"";
  EXPECT_FALSE(JsonValue::Parse(huge).ok());
}

TEST(HexFloatTest, RoundTripsExactly) {
  for (double value : {0.0, 1.0, -1.0, 0.1, 12.0, 1e300, 5e-324,
                       1.0 / 3.0, 123456.789}) {
    EXPECT_EQ(ParseHexFloat(HexFloat(value)).ValueOrDie(), value);
  }
  EXPECT_EQ(ParseHexFloat("0x1.8p+3").ValueOrDie(), 12.0);
  EXPECT_FALSE(ParseHexFloat("").ok());
  EXPECT_FALSE(ParseHexFloat("0x1p+2 junk").ok());
}

// --- Frame round-trips ------------------------------------------------------

TEST(ClientFrameTest, RoundTripsEveryOp) {
  ClientFrame open;
  open.op = ClientOp::kOpen;
  open.id = "s-1.a_B";
  open.strategy = "FDQ-BMC";
  open.budget = 64.25;
  open.has_budget = true;
  open.resume = true;
  ClientFrame parsed = ParseClientFrame(FormatClientFrame(open)).ValueOrDie();
  EXPECT_EQ(parsed.op, ClientOp::kOpen);
  EXPECT_EQ(parsed.id, open.id);
  EXPECT_EQ(parsed.strategy, open.strategy);
  EXPECT_TRUE(parsed.has_budget);
  EXPECT_EQ(parsed.budget, open.budget);  // hexfloat: bit-exact
  EXPECT_TRUE(parsed.resume);

  ClientFrame answer;
  answer.op = ClientOp::kAnswer;
  answer.id = "s1";
  answer.seq = 7;
  answer.answer = Answer::kNo;
  answer.retry_cost = 0.375;
  answer.exhausted = true;
  parsed = ParseClientFrame(FormatClientFrame(answer)).ValueOrDie();
  EXPECT_EQ(parsed.op, ClientOp::kAnswer);
  EXPECT_EQ(parsed.seq, 7);
  EXPECT_EQ(parsed.answer, Answer::kNo);
  EXPECT_EQ(parsed.retry_cost, 0.375);
  EXPECT_TRUE(parsed.exhausted);

  for (ClientOp op : {ClientOp::kNext, ClientOp::kClose, ClientOp::kPing}) {
    ClientFrame f;
    f.op = op;
    f.id = "x";
    EXPECT_EQ(ParseClientFrame(FormatClientFrame(f)).ValueOrDie().op, op);
  }
}

TEST(ClientFrameTest, RejectsMalformedFrames) {
  EXPECT_FALSE(ParseClientFrame("not json").ok());
  EXPECT_FALSE(ParseClientFrame("[1,2]").ok());
  EXPECT_FALSE(ParseClientFrame("{\"op\":\"explode\"}").ok());
  EXPECT_FALSE(ParseClientFrame("{\"op\":\"open\"}").ok());  // missing id
  EXPECT_FALSE(
      ParseClientFrame("{\"op\":\"answer\",\"id\":\"s\",\"seq\":-1,"
                       "\"answer\":\"yes\"}")
          .ok());
  EXPECT_FALSE(
      ParseClientFrame("{\"op\":\"answer\",\"id\":\"s\",\"seq\":0,"
                       "\"answer\":\"maybe\"}")
          .ok());
}

TEST(ServerFrameTest, QuestionFramesRoundTripAllKinds) {
  SessionQuestion cell;
  cell.kind = QuestionKind::kCell;
  cell.cell = Cell{42, 3};
  cell.index = 9;
  cell.replayed = true;
  cell.nominal_cost = 1.5;
  ServerFrame parsed =
      ParseServerFrame(FormatQuestionFrame("s1", cell)).ValueOrDie();
  ASSERT_EQ(parsed.type, ServerFrameType::kQuestion);
  EXPECT_EQ(parsed.id, "s1");
  EXPECT_EQ(parsed.question.kind, QuestionKind::kCell);
  EXPECT_EQ(parsed.question.cell, (Cell{42, 3}));
  EXPECT_EQ(parsed.question.index, 9);
  EXPECT_TRUE(parsed.question.replayed);
  EXPECT_EQ(parsed.question.nominal_cost, 1.5);

  SessionQuestion tuple;
  tuple.kind = QuestionKind::kTuple;
  tuple.row = 1234;
  tuple.index = 0;
  tuple.nominal_cost = 3.25;
  parsed = ParseServerFrame(FormatQuestionFrame("s2", tuple)).ValueOrDie();
  EXPECT_EQ(parsed.question.kind, QuestionKind::kTuple);
  EXPECT_EQ(parsed.question.row, 1234);

  SessionQuestion fd;
  fd.kind = QuestionKind::kFd;
  fd.fd = Fd(AttributeSet({0, 5}), 7);
  fd.index = 2;
  fd.nominal_cost = 10.0;
  parsed = ParseServerFrame(FormatQuestionFrame("s3", fd)).ValueOrDie();
  EXPECT_EQ(parsed.question.kind, QuestionKind::kFd);
  EXPECT_EQ(parsed.question.fd, fd.fd);
}

TEST(ServerFrameTest, ErrorAndControlFramesRoundTrip) {
  ServerFrame error =
      ParseServerFrame(
          FormatErrorFrame("s1", Status::NotFound("no such \"session\"")))
          .ValueOrDie();
  ASSERT_EQ(error.type, ServerFrameType::kError);
  EXPECT_EQ(error.code, static_cast<int>(StatusCode::kNotFound));
  EXPECT_NE(error.message.find("no such \"session\""), std::string::npos);

  EXPECT_EQ(ParseServerFrame(FormatClosedFrame("s1")).ValueOrDie().type,
            ServerFrameType::kClosed);
  EXPECT_EQ(ParseServerFrame(FormatPongFrame()).ValueOrDie().type,
            ServerFrameType::kPong);
  EXPECT_FALSE(ParseServerFrame("{\"type\":\"weird\"}").ok());
}

// --- Serving fixture --------------------------------------------------------

// One shared dataset for manager and daemon tests (construction dominates
// test runtime); every test opens its own sessions against it.
class ServingTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    session_ = new Session(MakeHospitalSession(300, ErrorModel::kSystematic,
                                               /*error_rate=*/0.15,
                                               /*seed=*/5,
                                               /*idk_rate=*/0.1));
  }
  static void TearDownTestSuite() {
    delete session_;
    session_ = nullptr;
  }
  void TearDown() override { FaultRegistry::Global().Reset(); }

  // The expected wire report: the in-process run serialized canonically.
  static std::string ReferenceReport(const std::string& strategy_name,
                                     double budget) {
    auto strategy = MakeStrategyByName(strategy_name).ValueOrDie();
    return SerializeSessionReport(session_->Run(*strategy, budget));
  }

  // Answers `question` exactly as Session::Run's expert stack would.
  static Answer AnswerQuestion(SimulatedExpert& expert,
                               const SessionQuestion& question) {
    switch (question.kind) {
      case QuestionKind::kCell:
        return expert.IsCellErroneous(question.cell);
      case QuestionKind::kTuple:
        return expert.IsTupleClean(question.row);
      case QuestionKind::kFd:
        return expert.IsFdValid(question.fd);
    }
    return Answer::kIdk;
  }

  static SimulatedExpert MakeExpert() {
    const SessionConfig& config = session_->config();
    return SimulatedExpert(&session_->true_violations(), &session_->truth(),
                           session_->dirty().NumAttributes(),
                           session_->true_fds(), config.idk_rate,
                           config.expert_seed, config.wrong_rate);
  }

  static std::string MakeJournalDir(const std::string& name) {
    const std::string dir = ::testing::TempDir() + "/" + name;
    ::mkdir(dir.c_str(), 0755);
    return dir;
  }

  static std::string OpenLine(const std::string& id,
                              const std::string& strategy, double budget,
                              bool resume = false) {
    ClientFrame open;
    open.op = ClientOp::kOpen;
    open.id = id;
    open.strategy = strategy;
    open.budget = budget;
    open.has_budget = true;
    open.resume = resume;
    return FormatClientFrame(open);
  }

  static std::string AnswerLine(const std::string& id, int seq,
                                Answer answer) {
    ClientFrame frame;
    frame.op = ClientOp::kAnswer;
    frame.id = id;
    frame.seq = seq;
    frame.answer = answer;
    return FormatClientFrame(frame);
  }

  static std::string NextLine(const std::string& id) {
    ClientFrame frame;
    frame.op = ClientOp::kNext;
    frame.id = id;
    return FormatClientFrame(frame);
  }

  static ServerFrame One(const std::vector<std::string>& replies) {
    EXPECT_EQ(replies.size(), 1u);
    return ParseServerFrame(replies.at(0)).ValueOrDie();
  }

  static Session* session_;
};

Session* ServingTest::session_ = nullptr;

// --- SessionManager (no sockets) -------------------------------------------

TEST_F(ServingTest, ManagerServesSessionToByteIdenticalReport) {
  SessionManager manager(session_, {});
  const double budget = 24.0;
  SimulatedExpert expert = MakeExpert();

  ServerFrame frame = One(manager.HandleLine(OpenLine("m1", "FDQ-BMC",
                                                      budget)));
  int rounds = 0;
  while (frame.type == ServerFrameType::kQuestion) {
    ASSERT_LT(++rounds, 10000);
    const Answer answer = AnswerQuestion(expert, frame.question);
    frame = One(manager.HandleLine(AnswerLine("m1", frame.question.index,
                                              answer)));
  }
  ASSERT_EQ(frame.type, ServerFrameType::kReport);
  EXPECT_EQ(frame.report, ReferenceReport("FDQ-BMC", budget));
  EXPECT_EQ(manager.active_sessions(), 0);
  EXPECT_EQ(manager.stats().finished, 1);
}

TEST_F(ServingTest, ManagerValidatesStepsAndIds) {
  SessionManager manager(session_, {});
  // Unknown session, unknown strategy, hostile id.
  EXPECT_EQ(One(manager.HandleLine(NextLine("ghost"))).type,
            ServerFrameType::kError);
  EXPECT_EQ(One(manager.HandleLine(OpenLine("m2", "CellQ-Bogus", 8.0))).type,
            ServerFrameType::kError);
  EXPECT_EQ(One(manager.HandleLine(OpenLine("../etc/pwn", "FDQ-BMC", 8.0)))
                .type,
            ServerFrameType::kError);
  // Malformed line: an error frame, never a crash.
  EXPECT_EQ(One(manager.HandleLine("{\"op\":")).type,
            ServerFrameType::kError);

  // Stale seq is rejected; op=next re-delivers the same question.
  ServerFrame q = One(manager.HandleLine(OpenLine("m2", "FDQ-Greedy", 8.0)));
  ASSERT_EQ(q.type, ServerFrameType::kQuestion);
  ServerFrame stale =
      One(manager.HandleLine(AnswerLine("m2", q.question.index + 1,
                                        Answer::kYes)));
  ASSERT_EQ(stale.type, ServerFrameType::kError);
  EXPECT_NE(stale.message.find("stale answer seq"), std::string::npos);
  ServerFrame again = One(manager.HandleLine(NextLine("m2")));
  ASSERT_EQ(again.type, ServerFrameType::kQuestion);
  EXPECT_EQ(again.question.index, q.question.index);

  // Duplicate open of a live id.
  EXPECT_EQ(One(manager.HandleLine(OpenLine("m2", "FDQ-Greedy", 8.0))).type,
            ServerFrameType::kError);
}

TEST_F(ServingTest, ManagerRefusesBeyondLimitAndWhileDraining) {
  SessionManagerOptions options;
  options.max_sessions = 1;
  SessionManager manager(session_, options);
  ASSERT_EQ(One(manager.HandleLine(OpenLine("a", "FDQ-BMC", 8.0))).type,
            ServerFrameType::kQuestion);
  ServerFrame refused = One(manager.HandleLine(OpenLine("b", "FDQ-BMC",
                                                        8.0)));
  ASSERT_EQ(refused.type, ServerFrameType::kError);
  EXPECT_EQ(refused.code, static_cast<int>(StatusCode::kResourceExhausted));

  manager.BeginDrain();
  EXPECT_EQ(manager.active_sessions(), 0);
  ServerFrame draining = One(manager.HandleLine(OpenLine("c", "FDQ-BMC",
                                                         8.0)));
  ASSERT_EQ(draining.type, ServerFrameType::kError);
  EXPECT_EQ(draining.code, static_cast<int>(StatusCode::kUnavailable));
  EXPECT_EQ(manager.stats().refused, 2);
}

TEST_F(ServingTest, OverloadRefusalsCarryStructuredCodes) {
  SessionManagerOptions options;
  options.max_sessions = 1;
  options.admission.retry_after_ms = 150;
  SessionManager manager(session_, options);
  ASSERT_EQ(One(manager.HandleLine(OpenLine("sa", "FDQ-BMC", 8.0))).type,
            ServerFrameType::kQuestion);

  // Session-limit refusal: machine-readable slug plus the retry hint, so
  // clients back off instead of guessing from prose.
  ServerFrame refused = One(manager.HandleLine(OpenLine("sb", "FDQ-BMC",
                                                        8.0)));
  ASSERT_EQ(refused.type, ServerFrameType::kError);
  EXPECT_EQ(refused.error_code, error_code::kOverloaded);
  EXPECT_EQ(refused.retry_after_ms, 150);

  // Draining is terminal: its slug differs so clients know not to retry
  // against this process.
  manager.BeginDrain();
  ServerFrame draining = One(manager.HandleLine(OpenLine("sc", "FDQ-BMC",
                                                         8.0)));
  ASSERT_EQ(draining.type, ServerFrameType::kError);
  EXPECT_EQ(draining.error_code, error_code::kDraining);

  // Malformed input gets its own slug (never a retry hint).
  ServerFrame bad = One(manager.HandleLine("{\"op\":"));
  ASSERT_EQ(bad.type, ServerFrameType::kError);
  EXPECT_EQ(bad.error_code, error_code::kBadFrame);
  EXPECT_LT(bad.retry_after_ms, 0);
}

TEST_F(ServingTest, EvictedSessionResumesFromItsJournal) {
  SessionManagerOptions options;
  options.journal_dir = MakeJournalDir("serving_evict_journals");
  options.idle_timeout_ms = 1000.0;
  SessionManager manager(session_, options);
  const double budget = 24.0;
  SimulatedExpert expert = MakeExpert();

  // Answer two questions, then go idle past the deadline (virtual clock:
  // one latency hit advances Now() without sleeping).
  ServerFrame frame =
      One(manager.HandleLine(OpenLine("ev1", "CellQ-SUMS", budget)));
  for (int k = 0; k < 2; ++k) {
    ASSERT_EQ(frame.type, ServerFrameType::kQuestion);
    frame = One(manager.HandleLine(AnswerLine(
        "ev1", frame.question.index,
        AnswerQuestion(expert, frame.question))));
  }
  ASSERT_TRUE(
      FaultRegistry::Global().LoadPlan("clock.tick=latency:60000").ok());
  FaultRegistry::Global().OnPoint("clock.tick").IgnoreError();
  EXPECT_EQ(manager.EvictIdle(), 1);
  EXPECT_EQ(manager.active_sessions(), 0);
  EXPECT_EQ(manager.stats().evicted, 1);

  // Eviction is a crash by design: reopen with resume, finish, and the
  // report matches the uninterrupted reference bit-for-bit.
  SimulatedExpert fresh = MakeExpert();
  frame = One(manager.HandleLine(OpenLine("ev1", "CellQ-SUMS", budget,
                                          /*resume=*/true)));
  int rounds = 0;
  int replayed = 0;
  while (frame.type == ServerFrameType::kQuestion) {
    ASSERT_LT(++rounds, 10000);
    if (frame.question.replayed) ++replayed;
    frame = One(manager.HandleLine(AnswerLine(
        "ev1", frame.question.index,
        AnswerQuestion(fresh, frame.question))));
  }
  ASSERT_EQ(frame.type, ServerFrameType::kReport);
  EXPECT_EQ(replayed, 2);
  // Identical to the uninterrupted reference except the replay counter,
  // which truthfully records the resume.
  std::string expected = ReferenceReport("CellQ-SUMS", budget);
  const std::string count_line = "questions_replayed=0\n";
  const size_t at = expected.find(count_line);
  ASSERT_NE(at, std::string::npos);
  expected.replace(at, count_line.size(), "questions_replayed=2\n");
  EXPECT_EQ(frame.report, expected);
}

// --- The TCP daemon ---------------------------------------------------------

// A minimal blocking line client over a raw socket.
class LineClient {
 public:
  ~LineClient() { Close(); }

  bool Connect(int port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) return false;
    sockaddr_in addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<uint16_t>(port));
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    return ::connect(fd_, reinterpret_cast<sockaddr*>(&addr),
                     sizeof(addr)) == 0;
  }

  bool WriteLine(const std::string& line) {
    std::string payload = line + "\n";
    size_t sent = 0;
    while (sent < payload.size()) {
      const ssize_t n = ::send(fd_, payload.data() + sent,
                               payload.size() - sent, MSG_NOSIGNAL);
      if (n <= 0) return false;
      sent += static_cast<size_t>(n);
    }
    return true;
  }

  // Blocks until one full line arrives; nullopt on EOF/error.
  std::optional<std::string> ReadLine() {
    while (true) {
      const size_t newline = buffer_.find('\n');
      if (newline != std::string::npos) {
        std::string line = buffer_.substr(0, newline);
        buffer_.erase(0, newline + 1);
        return line;
      }
      char chunk[4096];
      const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n <= 0) return std::nullopt;
      buffer_.append(chunk, static_cast<size_t>(n));
    }
  }

  void Close() {
    if (fd_ >= 0) ::close(fd_);
    fd_ = -1;
    buffer_.clear();
  }

 private:
  int fd_ = -1;
  std::string buffer_;
};

TEST_F(ServingTest, DaemonServesOverTcpByteIdentical) {
  DaemonOptions options;
  auto daemon = ServingDaemon::Start(session_, options).ValueOrDie();
  const double budget = 24.0;

  LineClient client;
  ASSERT_TRUE(client.Connect(daemon->port()));
  ASSERT_TRUE(client.WriteLine("{\"op\":\"ping\"}"));
  ServerFrame pong = ParseServerFrame(*client.ReadLine()).ValueOrDie();
  EXPECT_EQ(pong.type, ServerFrameType::kPong);

  SimulatedExpert expert = MakeExpert();
  ASSERT_TRUE(client.WriteLine(OpenLine("tcp1", "Sampling-Violation",
                                        budget)));
  ServerFrame frame = ParseServerFrame(*client.ReadLine()).ValueOrDie();
  int rounds = 0;
  while (frame.type == ServerFrameType::kQuestion) {
    ASSERT_LT(++rounds, 10000);
    ASSERT_TRUE(client.WriteLine(AnswerLine(
        "tcp1", frame.question.index,
        AnswerQuestion(expert, frame.question))));
    frame = ParseServerFrame(*client.ReadLine()).ValueOrDie();
  }
  ASSERT_EQ(frame.type, ServerFrameType::kReport);
  EXPECT_EQ(frame.report, ReferenceReport("Sampling-Violation", budget));
  daemon->Shutdown();
}

TEST_F(ServingTest, KilledClientDoesNotKillItsSession) {
  DaemonOptions options;
  options.manager.journal_dir = MakeJournalDir("serving_kill_journals");
  auto daemon = ServingDaemon::Start(session_, options).ValueOrDie();
  const double budget = 24.0;
  SimulatedExpert expert = MakeExpert();

  // First client answers two questions, then dies abruptly with a
  // question outstanding.
  LineClient first;
  ASSERT_TRUE(first.Connect(daemon->port()));
  ASSERT_TRUE(first.WriteLine(OpenLine("kc1", "FDQ-Greedy", budget)));
  ServerFrame frame = ParseServerFrame(*first.ReadLine()).ValueOrDie();
  for (int k = 0; k < 2; ++k) {
    ASSERT_EQ(frame.type, ServerFrameType::kQuestion);
    ASSERT_TRUE(first.WriteLine(AnswerLine(
        "kc1", frame.question.index,
        AnswerQuestion(expert, frame.question))));
    frame = ParseServerFrame(*first.ReadLine()).ValueOrDie();
  }
  ASSERT_EQ(frame.type, ServerFrameType::kQuestion);
  const int outstanding = frame.question.index;
  first.Close();  // mid-session, no close frame

  // The session survives its connection.
  EXPECT_EQ(daemon->manager().active_sessions(), 1);

  // A reconnect resyncs with op=next (the outstanding question is
  // re-delivered, not lost) and finishes to the reference report.
  LineClient second;
  ASSERT_TRUE(second.Connect(daemon->port()));
  ASSERT_TRUE(second.WriteLine(NextLine("kc1")));
  frame = ParseServerFrame(*second.ReadLine()).ValueOrDie();
  ASSERT_EQ(frame.type, ServerFrameType::kQuestion);
  EXPECT_EQ(frame.question.index, outstanding);
  int rounds = 0;
  while (frame.type == ServerFrameType::kQuestion) {
    ASSERT_LT(++rounds, 10000);
    ASSERT_TRUE(second.WriteLine(AnswerLine(
        "kc1", frame.question.index,
        AnswerQuestion(expert, frame.question))));
    frame = ParseServerFrame(*second.ReadLine()).ValueOrDie();
  }
  ASSERT_EQ(frame.type, ServerFrameType::kReport);
  EXPECT_EQ(frame.report, ReferenceReport("FDQ-Greedy", budget));
  daemon->Shutdown();
}

TEST_F(ServingTest, HealthOpReportsDaemonPosture) {
  DaemonOptions options;
  auto daemon = ServingDaemon::Start(session_, options).ValueOrDie();

  LineClient client;
  ASSERT_TRUE(client.Connect(daemon->port()));
  ASSERT_TRUE(client.WriteLine(OpenLine("h1", "FDQ-BMC", 8.0)));
  ServerFrame q = ParseServerFrame(*client.ReadLine()).ValueOrDie();
  ASSERT_EQ(q.type, ServerFrameType::kQuestion);

  ASSERT_TRUE(client.WriteLine("{\"op\":\"health\"}"));
  ServerFrame health = ParseServerFrame(*client.ReadLine()).ValueOrDie();
  ASSERT_EQ(health.type, ServerFrameType::kHealth);
  EXPECT_EQ(health.health.brownout, 0);
  EXPECT_EQ(health.health.active_sessions, 1);
  // The daemon's augmenter fills the reactor-side fields.
  EXPECT_EQ(health.health.active_connections, 1);
  EXPECT_GE(health.health.accepted, 1);
  EXPECT_EQ(health.health.opened, 1);
  EXPECT_EQ(health.health.dropped, 0);
  daemon->Shutdown();
}

TEST_F(ServingTest, QueueDeadlineShedsPipelinedBacklog) {
  DaemonOptions options;
  options.manager.admission.queue_deadline_ms = 500.0;
  options.manager.admission.retry_after_ms = 75;
  auto daemon = ServingDaemon::Start(session_, options).ValueOrDie();

  LineClient client;
  ASSERT_TRUE(client.Connect(daemon->port()));
  // Two pipelined lines arrive in one read event, so both carry the same
  // enqueue stamp. Every reply write then advances the virtual clock two
  // seconds: by the time the second line is picked up it has "waited"
  // past the 500ms deadline and must be shed, not executed.
  ASSERT_TRUE(
      FaultRegistry::Global().LoadPlan("server.write=latency:2000").ok());
  ASSERT_TRUE(client.WriteLine(OpenLine("qd1", "FDQ-BMC", 8.0) + "\n" +
                               NextLine("qd1")));
  ServerFrame first = ParseServerFrame(*client.ReadLine()).ValueOrDie();
  ASSERT_EQ(first.type, ServerFrameType::kQuestion);
  ServerFrame shed = ParseServerFrame(*client.ReadLine()).ValueOrDie();
  ASSERT_EQ(shed.type, ServerFrameType::kError);
  EXPECT_EQ(shed.error_code, error_code::kOverloaded);
  EXPECT_EQ(shed.retry_after_ms, 75);
  EXPECT_EQ(daemon->manager().admission_stats().deadline_shed, 1);
  ASSERT_TRUE(FaultRegistry::Global().LoadPlan("").ok());

  // The shed step did not touch the session: a fresh op=next re-delivers
  // the outstanding question.
  ASSERT_TRUE(client.WriteLine(NextLine("qd1")));
  ServerFrame again = ParseServerFrame(*client.ReadLine()).ValueOrDie();
  ASSERT_EQ(again.type, ServerFrameType::kQuestion);
  EXPECT_EQ(again.question.index, first.question.index);
  daemon->Shutdown();
}

TEST_F(ServingTest, WriteFailureDropsConnectionNotSession) {
  DaemonOptions options;
  auto daemon = ServingDaemon::Start(session_, options).ValueOrDie();
  const double budget = 24.0;
  SimulatedExpert expert = MakeExpert();

  LineClient client;
  ASSERT_TRUE(client.Connect(daemon->port()));
  ASSERT_TRUE(client.WriteLine(OpenLine("wf1", "CellQ-Greedy", budget)));
  ServerFrame frame = ParseServerFrame(*client.ReadLine()).ValueOrDie();
  ASSERT_EQ(frame.type, ServerFrameType::kQuestion);

  // The next server write fails (injected); the daemon must drop the
  // connection — the client sees EOF — but keep the session.
  ASSERT_TRUE(
      FaultRegistry::Global().LoadPlan("server.write=unavailable@1").ok());
  ASSERT_TRUE(client.WriteLine(AnswerLine(
      "wf1", frame.question.index, AnswerQuestion(expert, frame.question))));
  EXPECT_FALSE(client.ReadLine().has_value());
  EXPECT_EQ(daemon->manager().active_sessions(), 1);
  ASSERT_TRUE(FaultRegistry::Global().LoadPlan("").ok());

  // Resync on a fresh connection and run to completion: the answer that
  // outran its reply was applied exactly once.
  LineClient retry;
  ASSERT_TRUE(retry.Connect(daemon->port()));
  ASSERT_TRUE(retry.WriteLine(NextLine("wf1")));
  frame = ParseServerFrame(*retry.ReadLine()).ValueOrDie();
  int rounds = 0;
  while (frame.type == ServerFrameType::kQuestion) {
    ASSERT_LT(++rounds, 10000);
    ASSERT_TRUE(retry.WriteLine(AnswerLine(
        "wf1", frame.question.index,
        AnswerQuestion(expert, frame.question))));
    frame = ParseServerFrame(*retry.ReadLine()).ValueOrDie();
  }
  ASSERT_EQ(frame.type, ServerFrameType::kReport);
  EXPECT_EQ(frame.report, ReferenceReport("CellQ-Greedy", budget));
  daemon->Shutdown();
}

}  // namespace
}  // namespace uguide
