// The shared-artifact registry: singleflight builds, recipe memoization,
// LRU eviction under a binding soft budget, and the determinism contract
// that makes eviction safe — a rebuilt entry serves byte-identical reports.

#include <gtest/gtest.h>

#include <condition_variable>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/fault_injection.h"
#include "common/memory_budget.h"
#include "common/thread_pool.h"
#include "oracle/simulated_expert.h"
#include "server/dataset.h"
#include "server/dataset_registry.h"
#include "server/protocol.h"
#include "server/session_manager.h"

namespace uguide {
namespace {

ServedDatasetOptions SmallDataset(uint64_t seed = 7) {
  ServedDatasetOptions options;
  options.rows = 120;
  options.seed = seed;
  return options;
}

TEST(DatasetRegistryTest, ConcurrentOpensBuildExactlyOnce) {
  DatasetRegistry registry;
  constexpr int kOpens = 8;

  // Release every thread into Open at once so they all race the same
  // in-flight build (the artifact build takes orders of magnitude longer
  // than thread startup skew).
  std::mutex mu;
  std::condition_variable cv;
  int ready = 0;
  bool go = false;

  std::vector<std::shared_ptr<const DatasetArtifacts>> got(kOpens);
  std::vector<std::thread> threads;
  for (int i = 0; i < kOpens; ++i) {
    threads.emplace_back([&, i] {
      {
        std::unique_lock<std::mutex> lock(mu);
        if (++ready == kOpens) cv.notify_all();
        cv.wait(lock, [&] { return go; });
      }
      got[i] = registry.Open(SmallDataset()).ValueOrDie();
    });
  }
  {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return ready == kOpens; });
    go = true;
    cv.notify_all();
  }
  for (std::thread& t : threads) t.join();

  for (int i = 1; i < kOpens; ++i) EXPECT_EQ(got[i], got[0]);
  const DatasetRegistryStats stats = registry.stats();
  EXPECT_EQ(stats.builds, 1);
  EXPECT_EQ(stats.hits, kOpens - 1);
  EXPECT_GT(stats.shared_waits, 0);
  EXPECT_EQ(registry.size(), 1);
}

TEST(DatasetRegistryTest, RepeatOpenHitsWithoutRegenerating) {
  DatasetRegistry registry;
  auto first = registry.Open(SmallDataset()).ValueOrDie();
  auto second = registry.Open(SmallDataset()).ValueOrDie();
  EXPECT_EQ(first, second);
  EXPECT_EQ(registry.stats().builds, 1);
  EXPECT_EQ(registry.stats().hits, 1);
}

TEST(DatasetRegistryTest, DistinctRecipesGetDistinctEntries) {
  DatasetRegistry registry;
  auto a = registry.Open(SmallDataset(/*seed=*/7)).ValueOrDie();
  auto b = registry.Open(SmallDataset(/*seed=*/8)).ValueOrDie();
  EXPECT_NE(a, b);
  EXPECT_FALSE(a->key == b->key);
  EXPECT_EQ(registry.stats().builds, 2);
  EXPECT_EQ(registry.size(), 2);
}

TEST(DatasetRegistryTest, ThreadCountDoesNotChangeTheKey) {
  // num_threads only parallelizes the build; outputs are bit-identical,
  // so it must not fragment the cache.
  ServedDatasetOptions serial = SmallDataset();
  serial.num_threads = 1;
  ServedDatasetOptions parallel = SmallDataset();
  parallel.num_threads = 4;
  EXPECT_EQ(ServedDatasetSignature(serial), ServedDatasetSignature(parallel));
}

// Serves one full FDQ-BMC session against shared artifacts, exactly as the
// daemon wires them (engine + prebuilt graph injected into the manager),
// and returns the wire report.
std::string ServeReport(const DatasetArtifacts& artifacts, double budget) {
  SessionManagerOptions options;
  options.engine = artifacts.engine.get();
  options.graph = &artifacts.graph;
  SessionManager manager(&artifacts.session, options);

  const SessionConfig& config = artifacts.session.config();
  SimulatedExpert expert(&artifacts.session.true_violations(),
                         &artifacts.session.truth(),
                         artifacts.session.dirty().NumAttributes(),
                         artifacts.session.true_fds(), config.idk_rate,
                         config.expert_seed, config.wrong_rate);

  ClientFrame open;
  open.op = ClientOp::kOpen;
  open.id = "r1";
  open.strategy = "FDQ-BMC";
  open.budget = budget;
  open.has_budget = true;
  std::vector<std::string> replies =
      manager.HandleLine(FormatClientFrame(open));
  EXPECT_EQ(replies.size(), 1u);
  ServerFrame frame = ParseServerFrame(replies.at(0)).ValueOrDie();
  int rounds = 0;
  while (frame.type == ServerFrameType::kQuestion) {
    EXPECT_LT(++rounds, 10000);
    Answer answer = Answer::kIdk;
    switch (frame.question.kind) {
      case QuestionKind::kCell:
        answer = expert.IsCellErroneous(frame.question.cell);
        break;
      case QuestionKind::kTuple:
        answer = expert.IsTupleClean(frame.question.row);
        break;
      case QuestionKind::kFd:
        answer = expert.IsFdValid(frame.question.fd);
        break;
    }
    ClientFrame reply;
    reply.op = ClientOp::kAnswer;
    reply.id = "r1";
    reply.seq = frame.question.index;
    reply.answer = answer;
    replies = manager.HandleLine(FormatClientFrame(reply));
    EXPECT_EQ(replies.size(), 1u);
    frame = ParseServerFrame(replies.at(0)).ValueOrDie();
  }
  EXPECT_EQ(frame.type, ServerFrameType::kReport);
  return frame.report;
}

TEST(DatasetRegistryTest, EvictsUnderPressureAndRebuildsIdentically) {
  // soft=1 byte: any resident artifact keeps the budget over its soft
  // limit, so eviction fires the moment an entry is unreferenced. hard=0:
  // builds themselves never fail.
  MemoryBudget budget(/*soft_limit_bytes=*/1, /*hard_limit_bytes=*/0);
  ThreadPool pool(2);
  DatasetRegistryOptions registry_options;
  registry_options.pool = &pool;
  registry_options.memory_budget = &budget;
  DatasetRegistry registry(registry_options);

  auto artifacts = registry.Open(SmallDataset()).ValueOrDie();
  EXPECT_GT(artifacts->charged_bytes, 0u);
  EXPECT_TRUE(budget.OverSoftLimit());
  const std::string before = ServeReport(*artifacts, /*budget=*/16.0);

  // Pinned entries never evict, no matter the pressure.
  EXPECT_EQ(registry.EvictIdle(), 0);
  EXPECT_EQ(registry.size(), 1);

  // Released, the entry is LRU-evicted and its charge comes back.
  const size_t charged_resident = budget.charged();
  artifacts.reset();
  EXPECT_EQ(registry.EvictIdle(), 1);
  EXPECT_EQ(registry.size(), 0);
  EXPECT_EQ(registry.stats().evicted, 1);
  EXPECT_LT(budget.charged(), charged_resident);

  // The rebuild is deterministic: a fresh session over the recomputed
  // artifacts serves a byte-identical report.
  auto rebuilt = registry.Open(SmallDataset()).ValueOrDie();
  EXPECT_EQ(registry.stats().builds, 2);
  EXPECT_EQ(ServeReport(*rebuilt, /*budget=*/16.0), before);
}

TEST(DatasetRegistryTest, BreakerQuarantinesFailingRecipeThenRecovers) {
  DatasetRegistryOptions options;
  options.breaker_failures = 3;
  options.breaker_window_ms = 60000.0;
  options.breaker_backoff_ms = 5000.0;
  DatasetRegistry registry(options);

  // The first four build attempts fail at the injected fault site; the
  // clock.tick clause advances the virtual clock 6s per fire, stepping
  // through the breaker's backoff without sleeping.
  ASSERT_TRUE(FaultRegistry::Global()
                  .LoadPlan("registry.build=unavailable@1-4;"
                            "clock.tick=latency:6000")
                  .ok());
  for (int i = 0; i < 3; ++i) {
    EXPECT_FALSE(registry.Open(SmallDataset()).ok());
  }
  EXPECT_EQ(registry.stats().breaker_trips, 1);

  // Quarantined: the refusal is instant (kUnavailable, no build attempt)
  // and says so.
  auto refused = registry.Open(SmallDataset());
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.status().code(), StatusCode::kUnavailable);
  EXPECT_NE(refused.status().message().find("quarantined"),
            std::string::npos);
  EXPECT_EQ(registry.stats().quarantined_opens, 1);

  // Past the backoff, exactly one half-open probe builds — and fails
  // (fault hit #4), re-opening the breaker with a doubled backoff.
  FaultRegistry::Global().OnPoint("clock.tick").IgnoreError();
  EXPECT_FALSE(registry.Open(SmallDataset()).ok());
  EXPECT_EQ(registry.stats().probes, 1);
  EXPECT_FALSE(registry.Open(SmallDataset()).ok());  // refused again
  EXPECT_EQ(registry.stats().quarantined_opens, 2);

  // 12 more virtual seconds clear the doubled (10s) backoff; the fault
  // range is exhausted, so the second probe succeeds and closes the
  // breaker outright.
  FaultRegistry::Global().OnPoint("clock.tick").IgnoreError();
  FaultRegistry::Global().OnPoint("clock.tick").IgnoreError();
  auto recovered = registry.Open(SmallDataset());
  ASSERT_TRUE(recovered.ok());
  EXPECT_EQ(registry.stats().probes, 2);
  EXPECT_EQ(registry.stats().builds, 1);

  // Closed means closed: the next open is a plain cache hit.
  EXPECT_TRUE(registry.Open(SmallDataset()).ok());
  EXPECT_GE(registry.stats().hits, 1);
  FaultRegistry::Global().Reset();
}

}  // namespace
}  // namespace uguide
