// Tests for the MemoryBudget accountant and the PartitionStore LRU spill
// layer it governs (DESIGN.md §8).

#include "common/memory_budget.h"

#include <gtest/gtest.h>

#include <memory>
#include <thread>
#include <vector>

#include "discovery/partition.h"
#include "relation/relation.h"

namespace uguide {
namespace {

TEST(MemoryBudgetTest, UnlimitedByDefault) {
  MemoryBudget budget;
  EXPECT_EQ(budget.soft_limit(), 0u);
  EXPECT_EQ(budget.hard_limit(), 0u);
  EXPECT_TRUE(budget.TryCharge(size_t{1} << 40));
  EXPECT_FALSE(budget.OverSoftLimit());
  budget.Release(size_t{1} << 40);
  EXPECT_EQ(budget.charged(), 0u);
}

TEST(MemoryBudgetTest, ChargeReleaseTracksHighWater) {
  MemoryBudget budget;
  EXPECT_TRUE(budget.TryCharge(100));
  EXPECT_TRUE(budget.TryCharge(50));
  EXPECT_EQ(budget.charged(), 150u);
  budget.Release(120);
  EXPECT_EQ(budget.charged(), 30u);
  EXPECT_TRUE(budget.TryCharge(40));
  // High water is the historical peak, not the current level.
  EXPECT_EQ(budget.high_water(), 150u);
}

TEST(MemoryBudgetTest, HardLimitRefusesAndRollsBack) {
  MemoryBudget budget(/*soft_limit_bytes=*/0, /*hard_limit_bytes=*/100);
  EXPECT_TRUE(budget.TryCharge(80));
  EXPECT_FALSE(budget.TryCharge(30));
  // The refused charge must not leak into the counter.
  EXPECT_EQ(budget.charged(), 80u);
  EXPECT_TRUE(budget.TryCharge(20));
  EXPECT_FALSE(budget.TryCharge(1));
}

TEST(MemoryBudgetTest, ForceChargeOvershootsButCounts) {
  MemoryBudget budget(/*soft_limit_bytes=*/0, /*hard_limit_bytes=*/100);
  budget.ForceCharge(150);
  EXPECT_EQ(budget.charged(), 150u);
  EXPECT_EQ(budget.high_water(), 150u);
  EXPECT_FALSE(budget.TryCharge(1));
  budget.Release(150);
  EXPECT_TRUE(budget.TryCharge(1));
}

TEST(MemoryBudgetTest, SoftLimitIsAdvisory) {
  MemoryBudget budget(/*soft_limit_bytes=*/100, /*hard_limit_bytes=*/0);
  EXPECT_TRUE(budget.TryCharge(150));  // never refused by the soft limit
  EXPECT_TRUE(budget.OverSoftLimit());
  budget.Release(100);
  EXPECT_FALSE(budget.OverSoftLimit());
}

TEST(MemoryBudgetTest, ConcurrentChargesBalance) {
  MemoryBudget budget;
  constexpr int kThreads = 4;
  constexpr int kIterations = 2000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&budget] {
      for (int i = 0; i < kIterations; ++i) {
        ASSERT_TRUE(budget.TryCharge(7));
        budget.Release(7);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(budget.charged(), 0u);
  EXPECT_GE(budget.high_water(), 7u);
  EXPECT_LE(budget.high_water(), size_t{7} * kThreads);
}

Relation TinyRelation() {
  Relation rel(Schema::Make({"a", "b", "c"}).ValueOrDie());
  rel.AddRow({"1", "x", "p"});
  rel.AddRow({"1", "x", "q"});
  rel.AddRow({"2", "y", "p"});
  rel.AddRow({"2", "z", "q"});
  rel.AddRow({"3", "z", "p"});
  return rel;
}

TEST(PartitionStoreTest, PutGetRoundTrip) {
  const Relation rel = TinyRelation();
  MemoryBudget budget;
  PartitionStore store(&rel, &budget);
  const AttributeSet a({0});
  ASSERT_TRUE(store.Put(a, Partition::ForColumn(rel, 0)));
  EXPECT_GT(budget.charged(), 0u);
  auto p = store.Get(a);
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(store.recomputes(), 0u);
  // Dropping the last holder and the store entry releases every charge.
  p.reset();
  store.Erase(a);
  EXPECT_EQ(budget.charged(), 0u);
}

TEST(PartitionStoreTest, GetRecomputesEvictedEntries) {
  const Relation rel = TinyRelation();
  MemoryBudget budget;
  PartitionStore store(&rel, &budget);
  const AttributeSet ab({0, 1});
  ASSERT_TRUE(store.Put(ab, Partition::ForAttributes(rel, ab)));
  store.Erase(ab);
  auto p = store.Get(ab);
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(store.recomputes(), 1u);
  // The recomputed partition is mathematically the one that was evicted.
  const Partition direct = Partition::ForAttributes(rel, ab);
  EXPECT_EQ(p->NumClasses(), direct.NumClasses());
  EXPECT_EQ(p->StrippedSize(), direct.StrippedSize());
  EXPECT_EQ(p->KeyError(), direct.KeyError());
}

TEST(PartitionStoreTest, EvictsToSoftLimitButKeepsPinned) {
  const Relation rel = TinyRelation();
  // Soft limit below one partition: eviction should strip everything
  // unpinned once requested.
  MemoryBudget budget(/*soft_limit_bytes=*/1, /*hard_limit_bytes=*/0);
  PartitionStore store(&rel, &budget);
  ASSERT_TRUE(store.Put(AttributeSet({0}), Partition::ForColumn(rel, 0),
                        /*pinned=*/true));
  ASSERT_TRUE(store.Put(AttributeSet({0, 1}),
                        Partition::ForAttributes(rel, AttributeSet({0, 1}))));
  ASSERT_TRUE(store.Put(AttributeSet({0, 2}),
                        Partition::ForAttributes(rel, AttributeSet({0, 2}))));
  store.EvictToSoftLimit();
  // Unpinned entries are gone; the pinned recompute base survives.
  EXPECT_GE(store.evictions(), 2u);
  EXPECT_EQ(store.Size(), 1u);
  ASSERT_NE(store.Get(AttributeSet({0})), nullptr);
  EXPECT_EQ(store.recomputes(), 0u);
}

TEST(PartitionStoreTest, EvictionSkipsLivePartitions) {
  const Relation rel = TinyRelation();
  MemoryBudget budget(/*soft_limit_bytes=*/1, /*hard_limit_bytes=*/0);
  PartitionStore store(&rel, &budget);
  const AttributeSet ab({0, 1});
  ASSERT_TRUE(store.Put(ab, Partition::ForAttributes(rel, ab)));
  std::shared_ptr<const Partition> held = store.Get(ab);
  store.EvictToSoftLimit();
  // A partition some caller still holds must not be dropped from the map
  // (its bytes stay resident either way; eviction would only force a
  // pointless recompute).
  EXPECT_EQ(store.Size(), 1u);
  held.reset();
  store.EvictToSoftLimit();
  EXPECT_EQ(store.Size(), 0u);
  EXPECT_EQ(budget.charged(), 0u);
}

TEST(PartitionStoreTest, PutFailsWhenHardLimitTooSmallForEntry) {
  const Relation rel = TinyRelation();
  MemoryBudget budget(/*soft_limit_bytes=*/0, /*hard_limit_bytes=*/1);
  PartitionStore store(&rel, &budget);
  EXPECT_FALSE(store.Put(AttributeSet({0}), Partition::ForColumn(rel, 0)));
  EXPECT_EQ(store.Size(), 0u);
  EXPECT_EQ(budget.charged(), 0u);
}

}  // namespace
}  // namespace uguide
