#include <gtest/gtest.h>

#include "relation/relation.h"
#include "relation/schema.h"

namespace uguide {
namespace {

Schema TestSchema() {
  return Schema::Make({"a", "b", "c"}).ValueOrDie();
}

TEST(SchemaTest, MakeValid) {
  auto schema = Schema::Make({"x", "y"});
  ASSERT_TRUE(schema.ok());
  EXPECT_EQ(schema->NumAttributes(), 2);
  EXPECT_EQ(schema->Name(0), "x");
  EXPECT_EQ(schema->Name(1), "y");
}

TEST(SchemaTest, RejectsDuplicates) {
  EXPECT_FALSE(Schema::Make({"x", "x"}).ok());
}

TEST(SchemaTest, RejectsEmptyName) {
  EXPECT_FALSE(Schema::Make({"x", ""}).ok());
}

TEST(SchemaTest, RejectsTooManyAttributes) {
  std::vector<std::string> names;
  for (int i = 0; i < 65; ++i) names.push_back("a" + std::to_string(i));
  EXPECT_FALSE(Schema::Make(names).ok());
}

TEST(SchemaTest, IndexOf) {
  Schema schema = TestSchema();
  EXPECT_EQ(*schema.IndexOf("b"), 1);
  EXPECT_FALSE(schema.IndexOf("nope").ok());
}

TEST(SchemaTest, AllAttributes) {
  EXPECT_EQ(TestSchema().AllAttributes(), AttributeSet({0, 1, 2}));
}

TEST(RelationTest, StartsEmpty) {
  Relation rel(TestSchema());
  EXPECT_EQ(rel.NumRows(), 0);
  EXPECT_EQ(rel.NumAttributes(), 3);
}

TEST(RelationTest, AddRowAndRead) {
  Relation rel(TestSchema());
  TupleId r0 = rel.AddRow({"1", "x", "p"});
  TupleId r1 = rel.AddRow({"1", "y", "p"});
  EXPECT_EQ(r0, 0);
  EXPECT_EQ(r1, 1);
  EXPECT_EQ(rel.Value(0, 1), "x");
  EXPECT_EQ(rel.Value(1, 1), "y");
  // Equal strings share a dictionary code; different strings do not.
  EXPECT_EQ(rel.Code(0, 0), rel.Code(1, 0));
  EXPECT_NE(rel.Code(0, 1), rel.Code(1, 1));
}

TEST(RelationTest, SetValueChangesCell) {
  Relation rel(TestSchema());
  rel.AddRow({"1", "x", "p"});
  rel.SetValue(0, 2, "q");
  EXPECT_EQ(rel.Value(0, 2), "q");
}

TEST(RelationTest, AgreeSet) {
  Relation rel(TestSchema());
  rel.AddRow({"1", "x", "p"});
  rel.AddRow({"1", "y", "p"});
  EXPECT_EQ(rel.AgreeSet(0, 1), AttributeSet({0, 2}));
  EXPECT_TRUE(rel.Agree(0, 1, AttributeSet({0})));
  EXPECT_FALSE(rel.Agree(0, 1, AttributeSet({0, 1})));
  EXPECT_EQ(rel.AgreeSet(0, 0), AttributeSet({0, 1, 2}));
}

TEST(RelationTest, SelectRowsCopies) {
  Relation rel(TestSchema());
  rel.AddRow({"1", "x", "p"});
  rel.AddRow({"2", "y", "q"});
  rel.AddRow({"3", "z", "r"});
  Relation sub = rel.SelectRows({2, 0});
  ASSERT_EQ(sub.NumRows(), 2);
  EXPECT_EQ(sub.Value(0, 0), "3");
  EXPECT_EQ(sub.Value(1, 0), "1");
  // Independent pool: mutating the source does not affect the projection.
  rel.SetValue(2, 0, "mutated");
  EXPECT_EQ(sub.Value(0, 0), "3");
}

TEST(RelationTest, CsvRoundTrip) {
  Relation rel(TestSchema());
  rel.AddRow({"1", "x,y", ""});
  CsvTable csv = rel.ToCsv();
  auto back = Relation::FromCsv(csv);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->NumRows(), 1);
  EXPECT_EQ(back->Value(0, 1), "x,y");
  EXPECT_EQ(back->Value(0, 2), "");
}

TEST(RelationTest, FromCsvRejectsBadHeader) {
  CsvTable csv;
  csv.header = {"a", "a"};
  EXPECT_FALSE(Relation::FromCsv(csv).ok());
}

TEST(RelationTest, RowToString) {
  Relation rel(TestSchema());
  rel.AddRow({"1", "x", "p"});
  EXPECT_EQ(rel.RowToString(0), "a=1, b=x, c=p");
}

TEST(RelationTest, CellOrderingAndHash) {
  Cell a{0, 1}, b{0, 2}, c{1, 0};
  EXPECT_LT(a, b);
  EXPECT_LT(b, c);
  EXPECT_EQ(a, (Cell{0, 1}));
  CellHash hash;
  EXPECT_NE(hash(a), hash(b));
}

}  // namespace
}  // namespace uguide
