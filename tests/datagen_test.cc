#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <string>
#include <utility>

#include "datagen/generators.h"
#include "discovery/tane.h"
#include "fd/armstrong.h"
#include "fd/closure.h"

namespace uguide {
namespace {

struct GeneratorCase {
  const char* name;
  Relation (*generate)(const DataGenOptions&);
  FdSet (*embedded)(const Schema&);
  int expected_attributes;
};

class GeneratorTest : public ::testing::TestWithParam<GeneratorCase> {};

TEST_P(GeneratorTest, ProducesRequestedRows) {
  const auto& param = GetParam();
  DataGenOptions opts;
  opts.rows = 500;
  Relation rel = param.generate(opts);
  EXPECT_EQ(rel.NumRows(), 500);
  EXPECT_EQ(rel.NumAttributes(), param.expected_attributes);
}

TEST_P(GeneratorTest, DeterministicFromSeed) {
  const auto& param = GetParam();
  DataGenOptions opts;
  opts.rows = 200;
  opts.seed = 77;
  Relation a = param.generate(opts);
  Relation b = param.generate(opts);
  ASSERT_EQ(a.NumRows(), b.NumRows());
  for (TupleId r = 0; r < a.NumRows(); ++r) {
    for (int c = 0; c < a.NumAttributes(); ++c) {
      ASSERT_EQ(a.Value(r, c), b.Value(r, c));
    }
  }
  opts.seed = 78;
  Relation c = param.generate(opts);
  bool any_difference = false;
  for (TupleId r = 0; r < a.NumRows() && !any_difference; ++r) {
    for (int col = 0; col < a.NumAttributes(); ++col) {
      if (a.Value(r, col) != c.Value(r, col)) {
        any_difference = true;
        break;
      }
    }
  }
  EXPECT_TRUE(any_difference);
}

TEST_P(GeneratorTest, EmbeddedFdsHold) {
  const auto& param = GetParam();
  DataGenOptions opts;
  opts.rows = 2000;
  Relation rel = param.generate(opts);
  for (const Fd& fd : param.embedded(rel.schema())) {
    EXPECT_TRUE(FdHoldsOn(rel, fd)) << fd.ToString(rel.schema());
  }
}

TEST_P(GeneratorTest, DiscoveryImpliesEmbeddedFds) {
  const auto& param = GetParam();
  DataGenOptions opts;
  opts.rows = 2000;
  Relation rel = param.generate(opts);
  TaneOptions tane;
  tane.max_lhs_size = 3;
  FdSet discovered = DiscoverFds(rel, tane).ValueOrDie();
  ClosureEngine closure(discovered);
  for (const Fd& fd : param.embedded(rel.schema())) {
    EXPECT_TRUE(closure.Implies(fd)) << fd.ToString(rel.schema());
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllGenerators, GeneratorTest,
    ::testing::Values(
        GeneratorCase{"tax", &GenerateTax, &TaxEmbeddedFds, 16},
        GeneratorCase{"hospital", &GenerateHospital, &HospitalEmbeddedFds,
                      16},
        GeneratorCase{"stock", &GenerateStock, &StockEmbeddedFds, 10}),
    [](const ::testing::TestParamInfo<GeneratorCase>& info) {
      return info.param.name;
    });

TEST(GeneratorTest, TaxValueDiversity) {
  Relation rel = GenerateTax({.rows = 1000, .seed = 1});
  // zip column must have many distinct values, gender exactly two.
  std::set<std::string> zips, genders;
  for (TupleId r = 0; r < rel.NumRows(); ++r) {
    zips.insert(rel.Value(r, *rel.schema().IndexOf("zip")));
    genders.insert(rel.Value(r, *rel.schema().IndexOf("gender")));
  }
  EXPECT_GT(zips.size(), 10u);
  EXPECT_EQ(genders.size(), 2u);
}

TEST(GeneratorTest, StockDateTickerIsKey) {
  Relation rel = GenerateStock({.rows = 800, .seed = 2});
  const int date = *rel.schema().IndexOf("date");
  const int ticker = *rel.schema().IndexOf("ticker");
  std::set<std::pair<std::string, std::string>> pairs;
  for (TupleId r = 0; r < rel.NumRows(); ++r) {
    EXPECT_TRUE(
        pairs.emplace(rel.Value(r, date), rel.Value(r, ticker)).second);
  }
}

TEST(GeneratorTest, HospitalProvidersRepeat) {
  Relation rel = GenerateHospital({.rows = 1000, .seed = 3});
  const int provider = *rel.schema().IndexOf("provider_number");
  std::map<std::string, int> counts;
  for (TupleId r = 0; r < rel.NumRows(); ++r) {
    counts[rel.Value(r, provider)]++;
  }
  int max_count = 0;
  for (const auto& [p, count] : counts) max_count = std::max(max_count, count);
  EXPECT_GT(max_count, 1);  // multi-tuple classes exist for error injection
}

}  // namespace
}  // namespace uguide
