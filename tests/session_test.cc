#include <gtest/gtest.h>

#include "core/cell_strategies.h"
#include "core/fd_strategies.h"
#include "core/metrics.h"
#include "core/session.h"
#include "core/tuple_strategies.h"
#include "fd/closure.h"
#include "test_util.h"

namespace uguide {
namespace {

using ::uguide::testing::MakeHospitalSession;

TEST(MetricsTest, CountsAreConsistent) {
  Session session = MakeHospitalSession(800);
  auto strategy = MakeFdQBudgetedMaxCoverage({});
  SessionReport report = session.Run(*strategy, 300.0);
  const DetectionMetrics& m = report.metrics;
  EXPECT_EQ(m.true_positives + m.false_positives, m.detections);
  EXPECT_EQ(m.true_positives + m.false_negatives, m.total_true_errors);
  EXPECT_GE(m.Precision(), 0.0);
  EXPECT_LE(m.Precision(), 1.0);
  EXPECT_GE(m.Recall(), 0.0);
  EXPECT_LE(m.Recall(), 1.0);
  EXPECT_LE(m.TrueViolationPct(), 100.0);
  EXPECT_LE(m.FalseViolationPct(), 100.0);
}

TEST(MetricsTest, EmptyAcceptedSetDetectsNothing) {
  Session session = MakeHospitalSession(600);
  DetectionMetrics m = EvaluateDetections(session.dirty(), FdSet(),
                                          session.true_violations());
  EXPECT_EQ(m.detections, 0u);
  EXPECT_EQ(m.TrueViolationPct(), 0.0);
  EXPECT_EQ(m.FalseViolationPct(), 0.0);
  EXPECT_EQ(m.Precision(), 1.0);
  EXPECT_EQ(m.F1(), 0.0);
}

TEST(MetricsTest, TrueFdsDetectAllTrueViolations) {
  // Issuing the full true FD set over the dirty table flags exactly E_T:
  // 100% true violations, zero false positives, and every injected error
  // covered.
  Session session = MakeHospitalSession(1000);
  DetectionMetrics m =
      EvaluateDetections(session.dirty(), session.true_fds(),
                         session.true_violations(), &session.truth());
  EXPECT_EQ(m.TrueViolationPct(), 100.0);
  EXPECT_EQ(m.false_positives, 0u);
  EXPECT_EQ(m.InjectedRecallPct(), 100.0);
}

TEST(MetricsTest, AllDetectionsDeduplicates) {
  Session session = MakeHospitalSession(600);
  // Duplicate FDs in different forms flag overlapping cells.
  std::vector<Cell> cells =
      AllDetections(session.dirty(), session.true_fds());
  for (size_t i = 1; i < cells.size(); ++i) {
    EXPECT_TRUE(cells[i - 1] < cells[i]);
  }
}

TEST(MetricsTest, ToStringMentionsCounts) {
  DetectionMetrics m;
  m.detections = 10;
  m.true_positives = 7;
  m.false_positives = 3;
  m.false_negatives = 1;
  m.total_true_errors = 8;
  const std::string s = m.ToString();
  EXPECT_NE(s.find("TP=7"), std::string::npos);
  EXPECT_NE(s.find("FP=3"), std::string::npos);
}

TEST(SessionTest, CreateRejectsSchemaMismatch) {
  Relation clean(Schema::Make({"a", "b"}).ValueOrDie());
  clean.AddRow({"1", "2"});
  Relation other(Schema::Make({"x", "y"}).ValueOrDie());
  other.AddRow({"1", "2"});
  DirtyDataset ds{other, GroundTruth()};
  EXPECT_FALSE(Session::Create(clean, std::move(ds), {}).ok());
}

TEST(SessionTest, CandidatesImplyTrueFds) {
  // The §3.1 guarantee carried through the full pipeline.
  Session session = MakeHospitalSession(1200);
  ClosureEngine candidate_closure(session.candidates());
  for (const Fd& fd : session.true_fds()) {
    EXPECT_TRUE(candidate_closure.Implies(fd)) << fd.ToString();
  }
}

TEST(SessionTest, RunIsRepeatable) {
  Session session = MakeHospitalSession(800);
  auto strategy = MakeFdQBudgetedMaxCoverage({});
  SessionReport a = session.Run(*strategy, 200.0);
  SessionReport b = session.Run(*strategy, 200.0);
  EXPECT_EQ(a.result.accepted_fds.Size(), b.result.accepted_fds.Size());
  EXPECT_EQ(a.metrics.true_positives, b.metrics.true_positives);
  EXPECT_EQ(a.result.cost_spent, b.result.cost_spent);
}

TEST(SessionTest, ReportCarriesStrategyName) {
  Session session = MakeHospitalSession(600);
  auto strategy = MakeCellQSums({});
  SessionReport report = session.Run(*strategy, 50.0);
  EXPECT_EQ(report.strategy_name, "CellQ-SUMS");
}

TEST(SessionTest, ComparativeShapeMatchesPaper) {
  // Figure 6's qualitative story on one fixture:
  //  - FD questions: near-zero false violations;
  //  - tuple questions: full recall, highest false rate;
  //  - cell questions: in between on recall at equal budget.
  Session session = MakeHospitalSession(1500);
  auto fdq = MakeFdQBudgetedMaxCoverage({});
  auto cellq = MakeCellQSums({});
  auto tupleq = MakeTupleSamplingSaturationSets({});
  const double budget = 1000.0;
  SessionReport fd_report = session.Run(*fdq, budget);
  SessionReport cell_report = session.Run(*cellq, budget);
  SessionReport tuple_report = session.Run(*tupleq, budget);

  EXPECT_LE(fd_report.metrics.FalseViolationPct(), 5.0);
  EXPECT_GE(tuple_report.metrics.TrueViolationPct(), 99.0);
  EXPECT_GE(tuple_report.metrics.FalseViolationPct(),
            fd_report.metrics.FalseViolationPct());
}

TEST(SessionTest, MajorityVotingScalesBudgetByVotes) {
  // expert_votes = v charges the strategy an effective budget of B/v: each
  // question really costs v expert consultations.
  DataGenOptions data;
  data.rows = 800;
  data.seed = 5;
  Relation clean = GenerateHospital(data);
  TaneOptions tane;
  tane.max_lhs_size = 3;
  FdSet true_fds = DiscoverFds(clean, tane).ValueOrDie();
  ErrorGenOptions errors;
  errors.seed = 6;
  DirtyDataset dirty = InjectErrors(clean, true_fds, errors).ValueOrDie();

  auto run = [&](int votes, double budget) {
    SessionConfig config;
    config.candidate_options.max_lhs_size = 3;
    config.expert_votes = votes;
    DirtyDataset copy = dirty;
    Session session =
        Session::Create(clean, std::move(copy), config).ValueOrDie();
    auto strategy = MakeFdQBudgetedMaxCoverage({});
    return session.Run(*strategy, budget);
  };

  const double budget = 300.0;
  SessionReport voted = run(3, budget);
  // The strategy can never spend past the scaled budget...
  EXPECT_LE(voted.result.cost_spent, budget / 3);
  // ...and with a perfectly reliable expert, a 3-vote run behaves exactly
  // like a 1-vote run given a third of the budget (the majority of three
  // identical answers is that answer).
  SessionReport third = run(1, budget / 3);
  EXPECT_EQ(voted.result.questions_asked, third.result.questions_asked);
  EXPECT_EQ(voted.result.cost_spent, third.result.cost_spent);
  EXPECT_EQ(voted.result.accepted_fds.Size(),
            third.result.accepted_fds.Size());
}

TEST(SessionTest, NoisyExpertDegradesDetection) {
  // §9 future work: incorrect answers hurt; majority voting (at 3x the
  // per-question effort) recovers most of the loss.
  DataGenOptions data;
  data.rows = 1200;
  data.seed = 5;
  Relation clean = GenerateHospital(data);
  TaneOptions tane;
  tane.max_lhs_size = 3;
  FdSet true_fds = DiscoverFds(clean, tane).ValueOrDie();
  ErrorGenOptions errors;
  errors.seed = 6;
  DirtyDataset dirty = InjectErrors(clean, true_fds, errors).ValueOrDie();

  auto run = [&](double wrong_rate, int votes) {
    SessionConfig config;
    config.candidate_options.max_lhs_size = 3;
    config.wrong_rate = wrong_rate;
    config.expert_votes = votes;
    DirtyDataset copy = dirty;
    Session session =
        Session::Create(clean, std::move(copy), config).ValueOrDie();
    auto strategy = MakeFdQBudgetedMaxCoverage({});
    return session.Run(*strategy, 900.0).metrics;
  };

  const DetectionMetrics reliable = run(0.0, 1);
  const DetectionMetrics noisy = run(0.3, 1);
  const DetectionMetrics voting = run(0.3, 3);
  EXPECT_GT(reliable.TrueViolationPct(), noisy.TrueViolationPct());
  // A wrong "valid" answer admits a false FD: the noisy run's false rate
  // must be recoverable by voting.
  EXPECT_LE(voting.FalseViolationPct(), noisy.FalseViolationPct() + 1.0);
  EXPECT_GE(voting.TrueViolationPct(), noisy.TrueViolationPct() - 5.0);
}

TEST(SessionTest, CompletesOnMemoryTruncatedCandidates) {
  // A hard memory limit cuts candidate generation short; the session must
  // consume the partial lattice exactly as it does a deadline-truncated
  // one: run to completion, produce a coherent report, flag the truncation.
  DataGenOptions data;
  data.rows = 800;
  data.seed = 5;
  Relation clean = GenerateHospital(data);
  TaneOptions tane;
  tane.max_lhs_size = 3;
  FdSet true_fds = DiscoverFds(clean, tane).ValueOrDie();
  ErrorGenOptions errors;
  errors.seed = 6;
  DirtyDataset dirty = InjectErrors(clean, true_fds, errors).ValueOrDie();

  MemoryBudget budget(/*soft_limit_bytes=*/0, /*hard_limit_bytes=*/48 * 1024);
  SessionConfig config;
  config.candidate_options.max_lhs_size = 3;
  config.candidate_options.memory_budget = &budget;
  Session session =
      Session::Create(clean, std::move(dirty), config).ValueOrDie();
  ASSERT_TRUE(session.discovery_memory_truncated());
  EXPECT_FALSE(session.discovery_truncated());  // distinct causes

  auto strategy = MakeFdQBudgetedMaxCoverage({});
  SessionReport report = session.Run(*strategy, 300.0);
  EXPECT_GE(report.result.questions_asked, 0);
  EXPECT_LE(report.result.cost_spent, 300.0);
  // Every accepted FD came from the (partial) candidate set.
  for (const Fd& fd : report.result.accepted_fds) {
    EXPECT_TRUE(session.candidates().Contains(fd)) << fd.ToString();
  }
}

}  // namespace
}  // namespace uguide
