#include <gtest/gtest.h>

#include "core/session.h"
#include "core/tuple_strategies.h"
#include "fd/closure.h"
#include "test_util.h"

namespace uguide {
namespace {

using ::uguide::testing::MakeHospitalSession;

struct TupleCase {
  const char* name;
  std::unique_ptr<Strategy> (*make)(const TupleStrategyOptions&);
};

class TupleStrategyTest : public ::testing::TestWithParam<TupleCase> {};

TEST_P(TupleStrategyTest, RespectsBudget) {
  Session session = MakeHospitalSession(800);
  auto strategy = GetParam().make({});
  SessionReport report = session.Run(*strategy, 100.0);
  EXPECT_LE(report.result.cost_spent, 100.0);
  // Tuple cost is m = 13 here, so at most 7 questions fit.
  EXPECT_LE(report.result.questions_asked, 7);
}

TEST_P(TupleStrategyTest, ZeroBudgetAcceptsNothing) {
  Session session = MakeHospitalSession(600);
  auto strategy = GetParam().make({});
  SessionReport report = session.Run(*strategy, 0.0);
  EXPECT_EQ(report.result.questions_asked, 0);
  EXPECT_TRUE(report.result.accepted_fds.Empty());
}

TEST_P(TupleStrategyTest, FullRecallWithDecentBudget) {
  // §7.2.3 / Fig. 5(a): FDs discovered from certified-clean tuples hold on
  // the clean table, so they flag every injected error -> 100% recall.
  Session session = MakeHospitalSession(1200);
  auto strategy = GetParam().make({});
  SessionReport report = session.Run(*strategy, 2000.0);
  EXPECT_GE(report.metrics.TrueViolationPct(), 99.0);
}

TEST_P(TupleStrategyTest, AcceptedFdsHoldOnCleanPartOfSample) {
  Session session = MakeHospitalSession(800);
  auto strategy = GetParam().make({});
  SessionReport report = session.Run(*strategy, 1500.0);
  // Accepted FDs must at least be implied by the true FDs' restriction to
  // the sample; in particular they can never be violated by clean tuples
  // only. Cheap proxy: each accepted FD must hold on the clean table's
  // FDs... we verify implication the other way: every true FD is implied
  // by the accepted set (Sigma_TS is at least as general).
  ClosureEngine accepted(report.result.accepted_fds);
  for (const Fd& fd : session.true_fds()) {
    EXPECT_TRUE(accepted.Implies(fd)) << fd.ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllTupleStrategies, TupleStrategyTest,
    ::testing::Values(
        TupleCase{"uniform", &MakeTupleSamplingUniform},
        TupleCase{"violation", &MakeTupleSamplingViolationWeighting},
        TupleCase{"saturation", &MakeTupleSamplingSaturationSets},
        TupleCase{"oracle", &MakeTupleQOracle}),
    [](const ::testing::TestParamInfo<TupleCase>& info) {
      return info.param.name;
    });

TEST(TupleStrategyTest, ViolationWeightingWastesFewerQuestions) {
  // Alg. 7's motivation: weighting away from violating tuples shows the
  // expert fewer dirty tuples than uniform sampling.
  Session session = MakeHospitalSession(1500, ErrorModel::kSystematic,
                                        /*error_rate=*/0.30);
  auto uniform = MakeTupleSamplingUniform({});
  auto weighted = MakeTupleSamplingViolationWeighting({});
  // Count clean tuples accepted per question via accepted FD quality:
  // proxy comparison through detection precision at equal budget.
  SessionReport u = session.Run(*uniform, 1000.0);
  SessionReport w = session.Run(*weighted, 1000.0);
  // Both reach full recall; the weighted variant should not be worse on
  // false detections by more than noise.
  EXPECT_GE(u.metrics.TrueViolationPct(), 99.0);
  EXPECT_GE(w.metrics.TrueViolationPct(), 99.0);
}

TEST(TupleStrategyTest, OracleProducesFewerFalsePositives) {
  Session session = MakeHospitalSession(1500);
  auto uniform = MakeTupleSamplingUniform({});
  auto oracle = MakeTupleQOracle({});
  const double budget = 800.0;
  SessionReport u = session.Run(*uniform, budget);
  SessionReport o = session.Run(*oracle, budget);
  EXPECT_LE(o.metrics.FalseViolationPct(),
            u.metrics.FalseViolationPct() + 5.0);
}

TEST(TupleStrategyTest, MoreBudgetReducesFalsePositives) {
  Session session = MakeHospitalSession(1500);
  auto strategy = MakeTupleSamplingSaturationSets({});
  const double small =
      session.Run(*strategy, 100.0).metrics.FalseViolationPct();
  const double large =
      session.Run(*strategy, 3000.0).metrics.FalseViolationPct();
  EXPECT_LE(large, small + 5.0);
}

TEST(TupleStrategyTest, IdkDrainsBudgetWithoutSample) {
  Session hesitant = MakeHospitalSession(800, ErrorModel::kSystematic, 0.15,
                                         5, /*idk_rate=*/1.0);
  auto strategy = MakeTupleSamplingUniform({});
  SessionReport report = hesitant.Run(*strategy, 500.0);
  // Expert always declines: budget is consumed, nothing accepted.
  EXPECT_GT(report.result.questions_asked, 0);
  EXPECT_TRUE(report.result.accepted_fds.Empty());
  EXPECT_EQ(report.metrics.detections, 0u);
}

}  // namespace
}  // namespace uguide
