# Crash-restart smoke test: the whole-daemon recovery gate. uguided is
# SIGKILLed at arbitrary points while a restart-aware chaos loadgen is
# mid-flight, then restarted on the same port and journal directory. Each
# restart runs the startup recovery scan (resumable / finished /
# quarantined / GC'd); clients ride out the restart window on reconnect
# backoff and reopen their sessions with resume. The bar: the loadgen
# exits 0, meaning every admitted session ended in an explicit verdict —
# a byte-verified report (cross-checked against its journal's record
# count and durable end marker), a structured refusal, or an explicit
# quarantine. A session silently lost to a kill fails the gate.
#
# Inputs: -DUGUIDED=<binary> -DLOADGEN=<binary> -DWORK_DIR=<scratch dir>
# Optional: -DCYCLES=<kill/restart cycles, default 5>
#           -DSESSIONS=<total sessions, default 160>
# (The nightly soak runs this same script with CYCLES=20 SESSIONS=2000.)

if(NOT UGUIDED OR NOT LOADGEN OR NOT WORK_DIR)
  message(FATAL_ERROR "crash_restart_smoke: UGUIDED, LOADGEN and WORK_DIR "
                      "are required")
endif()
if(NOT CYCLES)
  set(CYCLES 5)
endif()
if(NOT SESSIONS)
  set(SESSIONS 160)
endif()

find_program(BASH_PROGRAM bash)
if(NOT BASH_PROGRAM)
  message(FATAL_ERROR "crash_restart_smoke: bash not found")
endif()

file(REMOVE_RECURSE "${WORK_DIR}")
file(MAKE_DIRECTORY "${WORK_DIR}")
file(MAKE_DIRECTORY "${WORK_DIR}/journals")

# $1 = uguided, $2 = uguide_loadgen, $3 = cycles, $4 = sessions.
file(WRITE "${WORK_DIR}/crash_restart.sh" [=[
uguided="$1"
loadgen="$2"
cycles="$3"
sessions="$4"

# Flags shared by every daemon incarnation. fsync=every: a question the
# client saw answered must survive the SIGKILL that follows.
daemon_flags="--journal-dir=journals --max-sessions=64 --rows=150
  --budget=12 --threads=4 --tick-ms=50 --read-idle-ms=5000
  --queue-deadline-ms=10000"

# First boot picks the port; every restart reuses it (the listener sets
# SO_REUSEADDR, so TIME_WAIT remnants of the killed incarnation are fine).
# shellcheck disable=SC2086
"$uguided" --port=0 --port-file=port.txt $daemon_flags >daemon.0.log 2>&1 &
daemon_pid=$!
for _ in $(seq 1 240); do
  [ -s port.txt ] && break
  kill -0 "$daemon_pid" 2>/dev/null || break
  sleep 0.25
done
if ! [ -s port.txt ]; then
  echo "crash_restart_smoke: daemon never published its port" >&2
  cat daemon.0.log >&2
  kill "$daemon_pid" 2>/dev/null
  exit 1
fi
port=$(cat port.txt)

"$loadgen" --port="$port" --sessions="$sessions" --concurrency=16 \
  --strategy=all --rows=150 --budget=12 --chaos --chaos-seed=777 \
  --check-journals=journals --restart-grace-ms=30000 \
  >loadgen.log 2>&1 &
loadgen_pid=$!

for cycle in $(seq 1 "$cycles"); do
  # Let some sessions make progress, a different amount each cycle, so
  # the kill lands at varied journal offsets (including mid-record: the
  # salvage path). Short dwells: the kill must land while sessions are
  # still in flight, not after the run drained.
  sleep "0.1$(( RANDOM % 10 ))"
  kill -KILL "$daemon_pid" 2>/dev/null
  wait "$daemon_pid" 2>/dev/null

  # Restart on the same port + journal dir. Bind can race the dying
  # incarnation's sockets, so retry until the new one stays up.
  up=0
  for _ in $(seq 1 30); do
    # shellcheck disable=SC2086
    "$uguided" --port="$port" $daemon_flags >"daemon.$cycle.log" 2>&1 &
    daemon_pid=$!
    sleep 0.4
    if kill -0 "$daemon_pid" 2>/dev/null; then
      up=1
      break
    fi
    wait "$daemon_pid" 2>/dev/null
  done
  if [ "$up" -ne 1 ]; then
    echo "crash_restart_smoke: daemon did not come back (cycle $cycle)" >&2
    cat "daemon.$cycle.log" >&2
    kill "$loadgen_pid" 2>/dev/null
    exit 1
  fi
  # Every restart must have run the recovery scan over the journal dir.
  if ! grep -q "uguided: recovery." "daemon.$cycle.log"; then
    echo "crash_restart_smoke: restart $cycle skipped recovery" >&2
    cat "daemon.$cycle.log" >&2
    kill "$loadgen_pid" 2>/dev/null
    exit 1
  fi
  # All kills delivered while work remains is the interesting case; once
  # the loadgen is done, stop cycling.
  kill -0 "$loadgen_pid" 2>/dev/null || break
done

wait "$loadgen_pid"
loadgen_rc=$?
cat loadgen.log

kill -TERM "$daemon_pid" 2>/dev/null
wait "$daemon_pid"
daemon_rc=$?
tail -n 3 "$(ls -1 daemon.*.log | tail -n 1)"

if [ "$loadgen_rc" -ne 0 ]; then
  echo "crash_restart_smoke: a session was lost or mismatched" \
       "(loadgen rc=$loadgen_rc)" >&2
  exit 1
fi
if [ "$daemon_rc" -ne 0 ]; then
  echo "crash_restart_smoke: final drain failed (rc=$daemon_rc)" >&2
  exit 1
fi
exit 0
]=])

execute_process(
  COMMAND "${BASH_PROGRAM}" "${WORK_DIR}/crash_restart.sh"
          "${UGUIDED}" "${LOADGEN}" "${CYCLES}" "${SESSIONS}"
  WORKING_DIRECTORY "${WORK_DIR}"
  RESULT_VARIABLE exit_code
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err)

message(STATUS "crash_restart_smoke stdout:\n${out}")
if(err)
  message(STATUS "crash_restart_smoke stderr:\n${err}")
endif()
if(NOT exit_code STREQUAL "0")
  message(FATAL_ERROR
          "crash_restart_smoke: failed with exit code ${exit_code}")
endif()
