// The inverted step-wise session API: SessionStateMachine must be
// observationally identical to the monolithic driver for every strategy,
// idempotent on question re-delivery, resumable after a crash at any
// question k, and abandonable without hanging the pump thread.

#include <gtest/gtest.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/fault_injection.h"
#include "core/session.h"
#include "core/session_state.h"
#include "oracle/simulated_expert.h"
#include "test_util.h"

namespace uguide {
namespace {

using ::uguide::testing::MakeHospitalSession;

void ExpectReportsEqual(const SessionReport& a, const SessionReport& b) {
  EXPECT_EQ(a.strategy_name, b.strategy_name);
  EXPECT_EQ(a.result.accepted_fds.fds(), b.result.accepted_fds.fds());
  EXPECT_EQ(a.result.cost_spent, b.result.cost_spent);
  EXPECT_EQ(a.result.questions_asked, b.result.questions_asked);
  EXPECT_EQ(a.retry_cost, b.retry_cost);
  EXPECT_EQ(a.questions_exhausted, b.questions_exhausted);
  EXPECT_EQ(a.metrics.detections, b.metrics.detections);
  EXPECT_EQ(a.metrics.true_positives, b.metrics.true_positives);
  EXPECT_EQ(a.metrics.false_positives, b.metrics.false_positives);
  EXPECT_EQ(a.metrics.false_negatives, b.metrics.false_negatives);
  EXPECT_EQ(a.metrics.injected_detected, b.metrics.injected_detected);
}

// A hand-rolled driver, deliberately *not* DriveSession: the test
// re-implements the driver contract from the header comment alone, so a
// drift between the contract and DriveSession shows up as a mismatch.
Result<SessionReport> StepManually(const Session& session, Strategy& strategy,
                                   double budget,
                                   SessionStepOptions options = {}) {
  const SessionConfig& config = session.config();
  SimulatedExpert expert(&session.true_violations(), &session.truth(),
                         session.dirty().NumAttributes(), session.true_fds(),
                         config.idk_rate, config.expert_seed,
                         config.wrong_rate);
  UGUIDE_ASSIGN_OR_RETURN(
      std::unique_ptr<SessionStateMachine> machine,
      SessionStateMachine::Start(session, strategy, budget,
                                 std::move(options)));
  while (std::optional<SessionQuestion> q = machine->NextQuestion()) {
    AnswerSubmission submission;
    switch (q->kind) {
      case QuestionKind::kCell:
        submission.answer = expert.IsCellErroneous(q->cell);
        break;
      case QuestionKind::kTuple:
        submission.answer = expert.IsTupleClean(q->row);
        break;
      case QuestionKind::kFd:
        submission.answer = expert.IsFdValid(q->fd);
        break;
    }
    UGUIDE_RETURN_NOT_OK(machine->SubmitAnswer(submission));
  }
  return machine->Finish();
}

TEST(SessionStateMachineTest, StepApiMatchesMonolithicRunAllStrategies) {
  // idk_rate > 0 makes the expert's RNG state part of the contract: the
  // stepped run only matches if the machine surfaces exactly the same
  // question sequence.
  Session session = MakeHospitalSession(400, ErrorModel::kSystematic,
                                        /*error_rate=*/0.15, /*seed=*/5,
                                        /*idk_rate=*/0.1);
  const double budget = 40.0;
  for (const std::string& name : KnownStrategyNames()) {
    SCOPED_TRACE(name);
    auto baseline_strategy = MakeStrategyByName(name).ValueOrDie();
    SessionReport baseline = session.Run(*baseline_strategy, budget);

    auto stepped_strategy = MakeStrategyByName(name).ValueOrDie();
    Result<SessionReport> stepped =
        StepManually(session, *stepped_strategy, budget);
    ASSERT_TRUE(stepped.ok()) << stepped.status().ToString();
    ExpectReportsEqual(*stepped, baseline);
  }
}

TEST(SessionStateMachineTest, StrategyRegistryKnowsAllEleven) {
  std::vector<std::string> names = KnownStrategyNames();
  EXPECT_EQ(names.size(), 11u);
  for (const std::string& name : names) {
    SCOPED_TRACE(name);
    Result<std::unique_ptr<Strategy>> strategy = MakeStrategyByName(name);
    ASSERT_TRUE(strategy.ok());
    EXPECT_NE(*strategy, nullptr);
  }
  Result<std::unique_ptr<Strategy>> unknown = MakeStrategyByName("CellQ-Bogus");
  EXPECT_EQ(unknown.status().code(), StatusCode::kNotFound);
}

TEST(SessionStateMachineTest, NextQuestionIsIdempotentWhileOutstanding) {
  Session session = MakeHospitalSession(300);
  auto strategy = MakeStrategyByName("FDQ-Greedy").ValueOrDie();
  auto machine =
      SessionStateMachine::Start(session, *strategy, 20.0).ValueOrDie();

  std::optional<SessionQuestion> first = machine->NextQuestion();
  ASSERT_TRUE(first.has_value());
  // Re-delivery (the daemon's reconnect path): same question, same index.
  std::optional<SessionQuestion> again = machine->NextQuestion();
  ASSERT_TRUE(again.has_value());
  EXPECT_EQ(again->index, first->index);
  EXPECT_EQ(again->kind, first->kind);
  EXPECT_EQ(again->nominal_cost, first->nominal_cost);

  ASSERT_TRUE(machine->SubmitAnswer({Answer::kIdk}).ok());
  machine->Abandon();
}

TEST(SessionStateMachineTest, SubmitWithoutOutstandingQuestionFails) {
  Session session = MakeHospitalSession(300);
  auto strategy = MakeStrategyByName("CellQ-Greedy").ValueOrDie();
  auto machine =
      SessionStateMachine::Start(session, *strategy, 20.0).ValueOrDie();
  EXPECT_FALSE(machine->SubmitAnswer({Answer::kYes}).ok());
  machine->Abandon();
}

TEST(SessionStateMachineTest, FinishWithOutstandingQuestionFails) {
  Session session = MakeHospitalSession(300);
  auto strategy = MakeStrategyByName("CellQ-SUMS").ValueOrDie();
  auto machine =
      SessionStateMachine::Start(session, *strategy, 20.0).ValueOrDie();
  ASSERT_TRUE(machine->NextQuestion().has_value());
  Result<SessionReport> report = machine->Finish();
  EXPECT_EQ(report.status().code(), StatusCode::kFailedPrecondition)
      << report.status().ToString();
  machine->Abandon();
}

TEST(SessionStateMachineTest, AbandonMidRunDoesNotHangAndKeepsJournal) {
  Session session = MakeHospitalSession(300);
  const std::string path =
      ::testing::TempDir() + "/uguide_step_abandon.journal";
  std::remove(path.c_str());

  auto strategy = MakeStrategyByName("Sampling-Uniform").ValueOrDie();
  const double budget = 120.0;
  SessionReport baseline = session.Run(*strategy, budget);
  // The scenario needs a 4th question to leave outstanding.
  ASSERT_GT(baseline.result.questions_asked, 4);

  {
    SessionStepOptions options;
    options.journal_path = path;
    auto abandoned_strategy = MakeStrategyByName("Sampling-Uniform")
                                  .ValueOrDie();
    auto machine = SessionStateMachine::Start(session, *abandoned_strategy,
                                              budget, options)
                       .ValueOrDie();
    SimulatedExpert expert(&session.true_violations(), &session.truth(),
                           session.dirty().NumAttributes(),
                           session.true_fds(), 0.0,
                           session.config().expert_seed, 0.0);
    for (int k = 0; k < 3; ++k) {
      std::optional<SessionQuestion> q = machine->NextQuestion();
      ASSERT_TRUE(q.has_value());
      ASSERT_TRUE(
          machine->SubmitAnswer({expert.IsTupleClean(q->row)}).ok());
    }
    // Walk away with a question outstanding — the destructor (via
    // Abandon) must wind the strategy down without hanging.
    ASSERT_TRUE(machine->NextQuestion().has_value());
  }

  // The abandoned journal holds the three answered questions and resumes
  // into a report bit-identical to the uninterrupted run.
  auto resumed_strategy = MakeStrategyByName("Sampling-Uniform").ValueOrDie();
  SessionStepOptions resume;
  resume.journal_path = path;
  resume.resume = true;
  Result<SessionReport> resumed =
      StepManually(session, *resumed_strategy, budget, resume);
  ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
  EXPECT_EQ(resumed->questions_replayed, 3);
  ExpectReportsEqual(*resumed, baseline);
}

// --- Crash-at-question-k resume through the step API ------------------------

// Forks a child that steps the session with a journal and crashes (exit
// 42) right after record k is durable, then resumes through the step API
// and requires a report bit-identical to the uninterrupted baseline.
void RunStepKillResume(const std::string& name, int k,
                       JournalFsyncMode fsync_mode) {
  SCOPED_TRACE(name + " crash@" + std::to_string(k) +
               (fsync_mode == JournalFsyncMode::kBatch ? " batch" : " every"));
  Session session = MakeHospitalSession(400, ErrorModel::kSystematic,
                                        /*error_rate=*/0.15, /*seed=*/5,
                                        /*idk_rate=*/0.1);
  auto strategy = MakeStrategyByName(name).ValueOrDie();
  const double budget = 40.0;
  SessionReport baseline = session.Run(*strategy, budget);

  const std::string path = ::testing::TempDir() + "/uguide_step_kill_" +
                           name + "_" + std::to_string(k) + ".journal";
  std::remove(path.c_str());

  const pid_t child = fork();
  ASSERT_GE(child, 0);
  if (child == 0) {
    FaultRegistry::Global()
        .LoadPlan("session.record=crash@" + std::to_string(k))
        .IgnoreError();
    auto child_strategy = MakeStrategyByName(name).ValueOrDie();
    SessionStepOptions options;
    options.journal_path = path;
    options.journal_fsync = fsync_mode;
    Result<SessionReport> r =
        StepManually(session, *child_strategy, budget, options);
    std::_Exit(r.ok() ? 0 : 3);
  }
  int wait_status = 0;
  ASSERT_EQ(waitpid(child, &wait_status, 0), child);
  ASSERT_TRUE(WIFEXITED(wait_status));
  const int exit_code = WEXITSTATUS(wait_status);
  ASSERT_TRUE(exit_code == FaultRegistry::kCrashExitCode || exit_code == 0)
      << "child exited with " << exit_code;

  auto resumed_strategy = MakeStrategyByName(name).ValueOrDie();
  SessionStepOptions resume;
  resume.journal_path = path;
  resume.resume = true;
  Result<SessionReport> resumed =
      StepManually(session, *resumed_strategy, budget, resume);
  ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
  if (exit_code == FaultRegistry::kCrashExitCode &&
      fsync_mode == JournalFsyncMode::kEvery) {
    // kEvery: exactly k records were durable. kBatch may have fewer (the
    // tail batch is lost), which the resume simply re-asks.
    EXPECT_EQ(resumed->questions_replayed, k);
  }
  ExpectReportsEqual(*resumed, baseline);
}

TEST(StepKillResumeTest, FdStrategyResumesBitIdentical) {
  for (int k : {1, 4}) {
    RunStepKillResume("FDQ-BMC", k, JournalFsyncMode::kEvery);
  }
}

TEST(StepKillResumeTest, CellStrategyResumesBitIdentical) {
  for (int k : {1, 4}) {
    RunStepKillResume("CellQ-SUMS", k, JournalFsyncMode::kEvery);
  }
}

TEST(StepKillResumeTest, TupleStrategyResumesBitIdentical) {
  for (int k : {1, 4}) {
    RunStepKillResume("Sampling-Saturation", k, JournalFsyncMode::kEvery);
  }
}

TEST(StepKillResumeTest, BatchFsyncResumesBitIdentical) {
  // --journal-fsync=batch: a crash may lose trailing records but never
  // corrupts the journal, and the resume is still bit-identical.
  RunStepKillResume("FDQ-Greedy", 5, JournalFsyncMode::kBatch);
}

}  // namespace
}  // namespace uguide
