// The durable-state contract of the v2 journal format: CRC32C framing
// makes torn-write salvage versus mid-file corruption a *deterministic*
// classification (never a guess), disk faults surface as poisoned writers
// instead of silent loss, and a crash at any byte leaves a journal that
// either resumes exactly or quarantines loudly.

#include <gtest/gtest.h>
#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "common/crc32c.h"
#include "common/fault_injection.h"
#include "core/session_journal.h"

namespace uguide {
namespace {

JournalHeader TestHeader() {
  JournalHeader header;
  header.strategy_name = "test-strategy";
  header.budget = 48.0;
  header.expert_seed = 7;
  header.expert_votes = 1;
  return header;
}

JournalRecord CellRecord(int row, int col, Answer answer, double cost) {
  JournalRecord record;
  record.kind = QuestionKind::kCell;
  record.cell = Cell{row, col};
  record.answer = answer;
  record.cost = cost;
  return record;
}

std::string ReadFileOrDie(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  EXPECT_NE(f, nullptr) << path;
  std::string out;
  char buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) out.append(buf, n);
  std::fclose(f);
  return out;
}

void WriteFileOrDie(const std::string& path, const std::string& contents) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr) << path;
  ASSERT_EQ(std::fwrite(contents.data(), 1, contents.size(), f),
            contents.size());
  std::fclose(f);
}

/// Writes a finished 3-record v2 journal and returns its full text.
std::string WriteFinishedJournal(const std::string& path) {
  JournalWriterOptions options;
  Result<JournalWriter> writer =
      JournalWriter::Open(path, TestHeader(), options);
  EXPECT_TRUE(writer.ok()) << writer.status().ToString();
  EXPECT_TRUE(writer->Append(CellRecord(1, 2, Answer::kYes, 3.0)).ok());
  EXPECT_TRUE(writer->Append(CellRecord(4, 0, Answer::kNo, 5.5)).ok());
  EXPECT_TRUE(writer->Append(CellRecord(9, 1, Answer::kIdk, 1.25)).ok());
  EXPECT_TRUE(writer->AppendEnd(3, 9.75).ok());
  EXPECT_TRUE(writer->Close().ok());
  return ReadFileOrDie(path);
}

// Every test leaves the process-global fault registry clean.
class DurabilityTest : public ::testing::Test {
 protected:
  void TearDown() override { FaultRegistry::Global().Reset(); }
};

// --- Checksums and framing --------------------------------------------------

TEST(Crc32cTest, MatchesKnownVectors) {
  // The iSCSI/RFC 3720 check value: CRC-32C of "123456789".
  EXPECT_EQ(Crc32c("123456789"), 0xe3069283u);
  EXPECT_EQ(Crc32c(""), 0x00000000u);
  // 32 zero bytes, another published vector.
  const std::string zeros(32, '\0');
  EXPECT_EQ(Crc32c(zeros), 0x8a9136aau);
}

TEST(Crc32cTest, DetectsSingleBitFlips) {
  const std::string payload = "c 3 1 yes 0x1.8p+1";
  const uint32_t good = Crc32c(payload);
  for (size_t i = 0; i < payload.size(); ++i) {
    std::string flipped = payload;
    flipped[i] ^= 0x01;
    EXPECT_NE(Crc32c(flipped), good) << "flip at byte " << i;
  }
}

TEST(JournalFrameTest, FrameEmbedsLengthAndCrc) {
  const std::string payload = "t 3 yes 0x1.ep+3";
  const std::string frame = FormatJournalFrame(payload);
  // `<len>.<crc8hex> <payload>`
  char expected[64];
  std::snprintf(expected, sizeof(expected), "%zu.%08x ", payload.size(),
                Crc32c(payload));
  EXPECT_EQ(frame, std::string(expected) + payload);
}

// --- Round trips ------------------------------------------------------------

TEST_F(DurabilityTest, V2RoundTripWithEndMarker) {
  const std::string path = ::testing::TempDir() + "/uguide_v2_rt.journal";
  WriteFinishedJournal(path);
  Result<LoadedJournal> loaded = LoadJournal(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->version, 2);
  EXPECT_TRUE(loaded->header.Matches(TestHeader()));
  ASSERT_EQ(loaded->records.size(), 3u);
  EXPECT_TRUE(loaded->records[0] == CellRecord(1, 2, Answer::kYes, 3.0));
  EXPECT_FALSE(loaded->torn_tail);
  EXPECT_TRUE(loaded->finished);
  EXPECT_EQ(loaded->finished_questions, 3);
  EXPECT_EQ(loaded->finished_cost, 9.75);
  // The resume offset excludes the end marker: resuming truncates it away
  // and the journal goes back to "in progress".
  const std::string text = ReadFileOrDie(path);
  EXPECT_LT(loaded->resume_offset, text.size());
  EXPECT_GT(loaded->resume_offset, 0u);
}

TEST_F(DurabilityTest, V1JournalStillLoadsAndResumesAsV1) {
  const std::string path = ::testing::TempDir() + "/uguide_v1_compat.journal";
  WriteFileOrDie(path,
                 "uguide-journal v=1 strategy=test-strategy budget=0x1.8p+5 "
                 "seed=7 votes=1 idk=0x0p+0 wrong=0x0p+0\n"
                 "t 3 yes 0x1.ep+3\n");
  Result<LoadedJournal> loaded = LoadJournal(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->version, 1);
  ASSERT_EQ(loaded->records.size(), 1u);
  EXPECT_FALSE(loaded->finished);

  // A resume keeps writing v1 — the file stays homogeneous.
  Result<JournalWriter> writer =
      JournalWriter::Open(path, TestHeader(), /*resume=*/true);
  ASSERT_TRUE(writer.ok()) << writer.status().ToString();
  EXPECT_EQ(writer->version(), 1);
  ASSERT_TRUE(writer->Append(CellRecord(1, 1, Answer::kNo, 2.0)).ok());
  // AppendEnd is a documented no-op on v1 (the format has no marker).
  ASSERT_TRUE(writer->AppendEnd(2, 5.0).ok());
  ASSERT_TRUE(writer->Close().ok());
  loaded = LoadJournal(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->version, 1);
  EXPECT_EQ(loaded->records.size(), 2u);
  EXPECT_FALSE(loaded->finished);
}

// --- The torn-write matrix --------------------------------------------------

// Truncating a v2 journal at EVERY byte offset must classify as salvage
// (or "not a journal" while still inside the header) — never as DataLoss,
// because truncation is exactly what a torn write leaves and every
// surviving full line is still intact.
TEST_F(DurabilityTest, TruncationAtEveryByteSalvagesDeterministically) {
  const std::string path = ::testing::TempDir() + "/uguide_trunc.journal";
  const std::string full = WriteFinishedJournal(path);
  Result<LoadedJournal> reference = LoadJournal(path);
  ASSERT_TRUE(reference.ok());

  // Line boundaries: offsets just past each '\n'.
  std::vector<size_t> line_end;
  for (size_t i = 0; i < full.size(); ++i) {
    if (full[i] == '\n') line_end.push_back(i + 1);
  }
  ASSERT_EQ(line_end.size(), 5u);  // header + 3 records + end marker
  const size_t header_end = line_end[0];

  const std::string trunc_path = path + ".trunc";
  for (size_t cut = 0; cut < full.size(); ++cut) {
    WriteFileOrDie(trunc_path, full.substr(0, cut));
    Result<LoadedJournal> loaded = LoadJournal(trunc_path);
    if (cut < header_end) {
      // Torn inside the header: unusable, but InvalidArgument ("not a
      // journal"), not DataLoss — nothing durable was damaged in place.
      EXPECT_FALSE(loaded.ok()) << "cut=" << cut;
      EXPECT_NE(loaded.status().code(), StatusCode::kDataLoss)
          << "cut=" << cut << ": " << loaded.status().ToString();
      continue;
    }
    ASSERT_TRUE(loaded.ok())
        << "cut=" << cut << ": " << loaded.status().ToString();
    // Records = the full record lines that survived, in order; the resume
    // offset never reaches past the last intact record.
    size_t whole_lines = 0;
    for (size_t end : line_end) {
      if (end <= cut) ++whole_lines;
    }
    const size_t whole_records = whole_lines - 1;  // minus the header
    const size_t expect_records =
        std::min<size_t>(whole_records, reference->records.size());
    EXPECT_EQ(loaded->records.size(), expect_records) << "cut=" << cut;
    for (size_t i = 0; i < loaded->records.size(); ++i) {
      EXPECT_TRUE(loaded->records[i] == reference->records[i])
          << "cut=" << cut << " record=" << i;
    }
    EXPECT_LE(loaded->resume_offset, cut) << "cut=" << cut;
    // The end marker only counts when its line survived whole.
    EXPECT_EQ(loaded->finished, whole_lines == line_end.size())
        << "cut=" << cut;
    // A cut mid-line is a torn tail; a cut on a boundary is clean.
    const bool on_boundary =
        cut == header_end ||
        std::find(line_end.begin(), line_end.end(), cut) != line_end.end();
    EXPECT_EQ(loaded->torn_tail, !on_boundary) << "cut=" << cut;
  }
}

// Flipping one bit at EVERY byte offset of a terminated line must be
// caught as DataLoss (quarantine), with exactly one excused offset: the
// final newline, whose flip turns the last line into a torn tail (and
// salvage of a torn tail is correct — the line's payload is gone either
// way, and no preceding record is trusted any less).
TEST_F(DurabilityTest, CorruptionAtEveryByteIsCaughtOrTorn) {
  const std::string path = ::testing::TempDir() + "/uguide_corrupt.journal";
  const std::string full = WriteFinishedJournal(path);
  const size_t header_end = full.find('\n') + 1;

  const std::string bad_path = path + ".bad";
  for (size_t at = 0; at < full.size(); ++at) {
    std::string damaged = full;
    // XOR 0x01 never maps a journal byte to '\n' (the record charset has
    // nothing at 0x0a^0x01=0x0b), so the line structure is preserved —
    // except at a '\n' itself, where the flip *removes* the terminator.
    damaged[at] ^= 0x01;
    WriteFileOrDie(bad_path, damaged);
    Result<LoadedJournal> loaded = LoadJournal(bad_path);
    if (at == full.size() - 1) {
      // The final newline became a torn tail: salvage, records intact.
      ASSERT_TRUE(loaded.ok())
          << "at=" << at << ": " << loaded.status().ToString();
      EXPECT_TRUE(loaded->torn_tail);
      EXPECT_EQ(loaded->records.size(), 3u);
      EXPECT_FALSE(loaded->finished);
      continue;
    }
    ASSERT_FALSE(loaded.ok()) << "flip at byte " << at << " went unnoticed";
    if (at >= header_end && full[at] != '\n') {
      // In-place damage to a terminated record line: DataLoss, the
      // quarantine trigger. (A flipped mid-file newline merges two lines;
      // the merged line fails its frame check — also DataLoss.)
      EXPECT_EQ(loaded.status().code(), StatusCode::kDataLoss)
          << "at=" << at << ": " << loaded.status().ToString();
    }
  }
  // Header damage is caught by the header CRC (except inside the magic,
  // where the file stops being recognizable at all — still a refusal).
  std::string damaged = full;
  damaged[header_end - 2] ^= 0x01;  // last hex digit of hcrc
  WriteFileOrDie(bad_path, damaged);
  Result<LoadedJournal> loaded = LoadJournal(bad_path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kDataLoss);
  EXPECT_NE(loaded.status().message().find("header"), std::string::npos)
      << loaded.status().message();
}

TEST_F(DurabilityTest, RecordAfterEndMarkerIsDataLoss) {
  const std::string path = ::testing::TempDir() + "/uguide_after_end.journal";
  std::string text = FormatJournalHeaderV2(TestHeader()) + "\n";
  text += FormatJournalFrame("t 3 yes 0x1.ep+3") + "\n";
  text += FormatJournalFrame("end 1 0x1.ep+3") + "\n";
  text += FormatJournalFrame("t 4 yes 0x1.ep+3") + "\n";
  WriteFileOrDie(path, text);
  Result<LoadedJournal> loaded = LoadJournal(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kDataLoss);
}

// --- Salvage then resume ----------------------------------------------------

TEST_F(DurabilityTest, SalvageThenResumeTruncatesTornTail) {
  const std::string path = ::testing::TempDir() + "/uguide_salvage.journal";
  const std::string full = WriteFinishedJournal(path);
  // Tear the file inside the third record.
  std::vector<size_t> line_end;
  for (size_t i = 0; i < full.size(); ++i) {
    if (full[i] == '\n') line_end.push_back(i + 1);
  }
  WriteFileOrDie(path, full.substr(0, line_end[2] + 4));

  Result<LoadedJournal> loaded = LoadJournal(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_TRUE(loaded->torn_tail);
  ASSERT_EQ(loaded->records.size(), 2u);
  EXPECT_EQ(loaded->resume_offset, line_end[2]);

  // Resume: the writer truncates to the last good record, then extends.
  JournalWriterOptions options;
  options.resume = true;
  options.version = loaded->version;
  options.resume_offset = loaded->resume_offset;
  Result<JournalWriter> writer =
      JournalWriter::Open(path, TestHeader(), options);
  ASSERT_TRUE(writer.ok()) << writer.status().ToString();
  ASSERT_TRUE(writer->Append(CellRecord(7, 7, Answer::kYes, 2.0)).ok());
  ASSERT_TRUE(writer->AppendEnd(3, 10.5).ok());
  ASSERT_TRUE(writer->Close().ok());

  Result<LoadedJournal> resumed = LoadJournal(path);
  ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
  EXPECT_FALSE(resumed->torn_tail);
  ASSERT_EQ(resumed->records.size(), 3u);
  EXPECT_TRUE(resumed->records[2] == CellRecord(7, 7, Answer::kYes, 2.0));
  EXPECT_TRUE(resumed->finished);
  EXPECT_EQ(resumed->finished_questions, 3);
}

TEST_F(DurabilityTest, QuarantineMovesFileAsidePreservingBytes) {
  const std::string path = ::testing::TempDir() + "/uguide_quarantine.journal";
  const std::string full = WriteFinishedJournal(path);
  std::string quarantined;
  ASSERT_TRUE(QuarantineJournal(path, &quarantined).ok());
  EXPECT_EQ(quarantined, path + ".quarantined");
  EXPECT_NE(::access(path.c_str(), F_OK), 0)
      << "original must no longer exist";
  // The evidence is preserved byte-for-byte for triage.
  EXPECT_EQ(ReadFileOrDie(quarantined), full);
  ::unlink(quarantined.c_str());
}

// --- Disk-fault injection ---------------------------------------------------

TEST_F(DurabilityTest, PlanGrammarParsesDiskFaultActions) {
  FaultRegistry& reg = FaultRegistry::Global();
  ASSERT_TRUE(reg.LoadPlan("a=eio@1; b=enospc; c=short:12@2; d=torn:3")
                  .ok());
  std::vector<FaultRule> rules = reg.rules();
  ASSERT_EQ(rules.size(), 4u);
  EXPECT_EQ(rules[0].action, FaultAction::kEio);
  EXPECT_EQ(rules[1].action, FaultAction::kEnospc);
  EXPECT_EQ(rules[2].action, FaultAction::kShortWrite);
  EXPECT_EQ(rules[2].byte_count, 12);
  EXPECT_EQ(rules[3].action, FaultAction::kTornWrite);
  EXPECT_EQ(rules[3].byte_count, 3);
  // Malformed byte counts are a load error, not a silent zero.
  EXPECT_FALSE(reg.LoadPlan("x=short:").ok());
  EXPECT_FALSE(reg.LoadPlan("x=torn:abc").ok());
  EXPECT_FALSE(reg.LoadPlan("x=short:-1").ok());
}

TEST_F(DurabilityTest, FailedFsyncPoisonsWriterForever) {
  const std::string path = ::testing::TempDir() + "/uguide_fsyncfail.journal";
  // Hit 1 is the header fsync at open (sync_dir off keeps the directory
  // fsync from consuming a hit); hit 2 is the first record's.
  ASSERT_TRUE(
      FaultRegistry::Global().LoadPlan("journal.fsync=eio@2").ok());
  JournalWriterOptions options;
  options.sync_dir = false;
  Result<JournalWriter> writer =
      JournalWriter::Open(path, TestHeader(), options);
  ASSERT_TRUE(writer.ok()) << writer.status().ToString();

  const Status first = writer->Append(CellRecord(1, 2, Answer::kYes, 3.0));
  ASSERT_FALSE(first.ok());
  // Errors carry the path and errno for the operator.
  EXPECT_NE(first.message().find(path), std::string::npos) << first.message();
  EXPECT_NE(first.message().find("errno"), std::string::npos)
      << first.message();

  // fsyncgate discipline: no retry is attempted, every later operation
  // reports the ORIGINAL failure, and Close refuses to claim durability.
  EXPECT_EQ(writer->Append(CellRecord(4, 0, Answer::kNo, 5.5)).ToString(),
            first.ToString());
  EXPECT_EQ(writer->Sync().ToString(), first.ToString());
  EXPECT_EQ(writer->AppendEnd(1, 3.0).ToString(), first.ToString());
  EXPECT_EQ(writer->poisoned().ToString(), first.ToString());
  EXPECT_EQ(writer->Close().ToString(), first.ToString());
}

TEST_F(DurabilityTest, ShortWriteOnEnospcLeavesSalvageableTornTail) {
  const std::string path = ::testing::TempDir() + "/uguide_enospc.journal";
  // Hit 1 is the header write; hit 2 persists only 5 bytes of the first
  // record's line, then reports ENOSPC.
  ASSERT_TRUE(
      FaultRegistry::Global().LoadPlan("journal.write=short:5@2").ok());
  JournalWriterOptions options;
  options.sync_dir = false;
  Result<JournalWriter> writer =
      JournalWriter::Open(path, TestHeader(), options);
  ASSERT_TRUE(writer.ok()) << writer.status().ToString();
  const Status st = writer->Append(CellRecord(1, 2, Answer::kYes, 3.0));
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("No space"), std::string::npos) << st.message();
  writer->Close().IgnoreError();
  FaultRegistry::Global().Reset();

  // The torn 5-byte tail is salvage, not corruption: a restart resumes
  // from the header as if the append never happened.
  Result<LoadedJournal> loaded = LoadJournal(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_TRUE(loaded->torn_tail);
  EXPECT_EQ(loaded->records.size(), 0u);
}

TEST_F(DurabilityTest, OpenFaultSurfacesAsStatus) {
  const std::string path = ::testing::TempDir() + "/uguide_openfail.journal";
  ASSERT_TRUE(FaultRegistry::Global().LoadPlan("journal.open=eio").ok());
  JournalWriterOptions options;
  Result<JournalWriter> writer =
      JournalWriter::Open(path, TestHeader(), options);
  ASSERT_FALSE(writer.ok());
  EXPECT_NE(writer.status().message().find(path), std::string::npos);
}

// A torn-write fault kills the process mid-line (the injected twin of a
// power cut). The partial line lands in the page cache, so the parent —
// standing in for the restarted daemon — must find a salvageable torn
// tail with exactly the records that were durable before the cut.
TEST_F(DurabilityTest, TornWriteCrashSalvagesAndResumes) {
  const std::string path = ::testing::TempDir() + "/uguide_torncrash.journal";
  ::unlink(path.c_str());
  const pid_t pid = ::fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    // Child: append one full record, then die 7 bytes into the second.
    // Hits on journal.write: 1 = header, 2 = record one, 3 = record two.
    if (!FaultRegistry::Global().LoadPlan("journal.write=torn:7@3").ok()) {
      ::_exit(3);
    }
    JournalWriterOptions options;
    Result<JournalWriter> writer =
        JournalWriter::Open(path, TestHeader(), options);
    if (!writer.ok()) ::_exit(4);
    if (!writer->Append(CellRecord(1, 2, Answer::kYes, 3.0)).ok()) {
      ::_exit(5);
    }
    writer->Append(CellRecord(4, 0, Answer::kNo, 5.5)).IgnoreError();
    ::_exit(6);  // unreachable: the torn write _Exits with the crash code
  }
  int wstatus = 0;
  ASSERT_EQ(::waitpid(pid, &wstatus, 0), pid);
  ASSERT_TRUE(WIFEXITED(wstatus));
  EXPECT_EQ(WEXITSTATUS(wstatus), FaultRegistry::kCrashExitCode);

  Result<LoadedJournal> loaded = LoadJournal(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_TRUE(loaded->torn_tail);
  ASSERT_EQ(loaded->records.size(), 1u);
  EXPECT_TRUE(loaded->records[0] == CellRecord(1, 2, Answer::kYes, 3.0));

  // And the journal resumes: truncate the tear, finish the session.
  JournalWriterOptions options;
  options.resume = true;
  options.version = loaded->version;
  options.resume_offset = loaded->resume_offset;
  Result<JournalWriter> writer =
      JournalWriter::Open(path, TestHeader(), options);
  ASSERT_TRUE(writer.ok()) << writer.status().ToString();
  ASSERT_TRUE(writer->Append(CellRecord(4, 0, Answer::kNo, 5.5)).ok());
  ASSERT_TRUE(writer->AppendEnd(2, 8.5).ok());
  ASSERT_TRUE(writer->Close().ok());
  Result<LoadedJournal> resumed = LoadJournal(path);
  ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
  EXPECT_EQ(resumed->records.size(), 2u);
  EXPECT_TRUE(resumed->finished);
  EXPECT_FALSE(resumed->torn_tail);
}

}  // namespace
}  // namespace uguide
