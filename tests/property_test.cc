// Cross-module randomized property suites: algebraic laws that must hold
// for every input, exercised over seeded random instances.

#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.h"
#include "core/repair.h"
#include "discovery/partition.h"
#include "discovery/relaxation.h"
#include "discovery/tane.h"
#include "fd/armstrong.h"
#include "fd/closure.h"
#include "violations/bipartite_graph.h"
#include "violations/violation_detector.h"

namespace uguide {
namespace {

Relation RandomRelation(Rng& rng, int attrs, int rows, int max_domain) {
  std::vector<std::string> names;
  for (int c = 0; c < attrs; ++c) names.push_back("a" + std::to_string(c));
  Relation rel(Schema::Make(names).ValueOrDie());
  std::vector<std::string> row(static_cast<size_t>(attrs));
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < attrs; ++c) {
      row[static_cast<size_t>(c)] =
          std::to_string(rng.NextBounded(1 + rng.NextBounded(
                                                 static_cast<uint64_t>(
                                                     max_domain))));
    }
    rel.AddRow(row);
  }
  return rel;
}

FdSet RandomFdSet(Rng& rng, int attrs, int count) {
  FdSet fds;
  for (int i = 0; i < count; ++i) {
    AttributeSet lhs(rng.NextBounded(uint64_t{1} << attrs));
    int rhs = static_cast<int>(rng.NextBounded(static_cast<uint64_t>(attrs)));
    lhs.Remove(rhs);
    fds.Add(Fd(lhs, rhs));
  }
  return fds;
}

class SeededPropertyTest : public ::testing::TestWithParam<uint64_t> {};

// --- Closure operator laws --------------------------------------------------

TEST_P(SeededPropertyTest, ClosureIsExtensiveMonotoneIdempotent) {
  Rng rng(GetParam());
  const int attrs = 6;
  ClosureEngine engine(RandomFdSet(rng, attrs, 5));
  for (int trial = 0; trial < 20; ++trial) {
    AttributeSet x(rng.NextBounded(1 << attrs));
    AttributeSet y = x.Union(AttributeSet(rng.NextBounded(1 << attrs)));
    AttributeSet cx = engine.Closure(x);
    // Extensive: X subset of X+.
    EXPECT_TRUE(x.IsSubsetOf(cx));
    // Idempotent: (X+)+ = X+.
    EXPECT_EQ(engine.Closure(cx), cx);
    // Monotone: X subset of Y implies X+ subset of Y+.
    EXPECT_TRUE(cx.IsSubsetOf(engine.Closure(y)));
  }
}

TEST_P(SeededPropertyTest, MinimalCoverIsEquivalentAndMinimal) {
  Rng rng(GetParam());
  ClosureEngine engine(RandomFdSet(rng, 5, 6));
  FdSet cover = engine.MinimalCover();
  ClosureEngine cover_engine(cover);
  EXPECT_TRUE(engine.EquivalentTo(cover_engine));
  for (const Fd& fd : cover) {
    EXPECT_TRUE(cover_engine.IsMinimal(fd)) << fd.ToString();
  }
}

TEST_P(SeededPropertyTest, SaturatedSetsAreIntersectionClosed) {
  Rng rng(GetParam());
  FdSet fds = RandomFdSet(rng, 5, 4);
  std::vector<AttributeSet> closed = SaturatedSets(fds, 5);
  for (size_t i = 0; i < closed.size(); ++i) {
    for (size_t j = i + 1; j < closed.size(); ++j) {
      AttributeSet meet = closed[i].Intersect(closed[j]);
      EXPECT_TRUE(std::find(closed.begin(), closed.end(), meet) !=
                  closed.end())
          << closed[i].ToString() << " ^ " << closed[j].ToString();
    }
  }
}

// --- Partition laws ----------------------------------------------------------

TEST_P(SeededPropertyTest, PartitionProductLaws) {
  Rng rng(GetParam());
  Relation rel = RandomRelation(rng, 4, 120, 6);
  Partition pa = Partition::ForColumn(rel, 0);
  Partition pb = Partition::ForColumn(rel, 1);
  Partition pc = Partition::ForColumn(rel, 2);

  // Commutativity (as partitions, i.e., same class structure).
  Partition ab = pa.Product(pb);
  Partition ba = pb.Product(pa);
  EXPECT_EQ(ab.NumClasses(), ba.NumClasses());
  EXPECT_EQ(ab.StrippedSize(), ba.StrippedSize());

  // Associativity.
  Partition ab_c = ab.Product(pc);
  Partition a_bc = pa.Product(pb.Product(pc));
  EXPECT_EQ(ab_c.NumClasses(), a_bc.NumClasses());
  EXPECT_EQ(ab_c.StrippedSize(), a_bc.StrippedSize());

  // ForAttributes equals iterated products.
  Partition direct = Partition::ForAttributes(rel, AttributeSet({0, 1, 2}));
  EXPECT_EQ(direct.NumClasses(), ab_c.NumClasses());
  EXPECT_EQ(direct.StrippedSize(), ab_c.StrippedSize());

  // Refinement: products never coarsen.
  EXPECT_LE(ab.StrippedSize(), pa.StrippedSize());
  EXPECT_LE(ab_c.StrippedSize(), ab.StrippedSize());
}

TEST_P(SeededPropertyTest, FdErrorBoundsAndMonotonicity) {
  Rng rng(GetParam());
  Relation rel = RandomRelation(rng, 4, 100, 5);
  PartitionCache cache(&rel);
  for (int a = 0; a < 4; ++a) {
    for (int b = 0; b < 4; ++b) {
      if (a == b) continue;
      Fd single(AttributeSet::Single(a), b);
      const double e1 = cache.FdError(single);
      EXPECT_GE(e1, 0.0);
      EXPECT_LT(e1, 1.0);
      // Adding LHS attributes never increases the g3 error.
      for (int c = 0; c < 4; ++c) {
        if (c == a || c == b) continue;
        Fd wider(AttributeSet({a, c}), b);
        EXPECT_LE(cache.FdError(wider), e1 + 1e-12)
            << wider.ToString() << " vs " << single.ToString();
      }
    }
  }
}

TEST_P(SeededPropertyTest, G3RemovalMatchesPartitionError) {
  Rng rng(GetParam());
  Relation rel = RandomRelation(rng, 4, 80, 4);
  PartitionCache cache(&rel);
  for (int a = 0; a < 4; ++a) {
    for (int b = 0; b < 4; ++b) {
      if (a == b) continue;
      Fd fd(AttributeSet::Single(a), b);
      EXPECT_NEAR(static_cast<double>(G3RemovalTuples(rel, fd).size()) /
                      rel.NumRows(),
                  cache.FdError(fd), 1e-12);
    }
  }
}

// --- Discovery laws -----------------------------------------------------------

TEST_P(SeededPropertyTest, DiscoveredFdsHoldAndNonDiscoveredFail) {
  Rng rng(GetParam());
  Relation rel = RandomRelation(rng, 5, 60, 4);
  FdSet fds = DiscoverFds(rel).ValueOrDie();
  ClosureEngine engine(fds);
  for (const Fd& fd : fds) {
    EXPECT_TRUE(FdHoldsOn(rel, fd)) << fd.ToString();
  }
  // Spot-check soundness of the complement: a sample of non-implied FDs
  // must be violated.
  for (int trial = 0; trial < 30; ++trial) {
    AttributeSet lhs(rng.NextBounded(1 << 5));
    int rhs = static_cast<int>(rng.NextBounded(5));
    lhs.Remove(rhs);
    Fd fd(lhs, rhs);
    if (!engine.Implies(fd)) {
      EXPECT_FALSE(FdHoldsOn(rel, fd)) << fd.ToString();
    }
  }
}

TEST_P(SeededPropertyTest, ApproximateFrontierContainsRelaxationOutput) {
  Rng rng(GetParam());
  Relation rel = RandomRelation(rng, 5, 80, 4);
  FdSet exact = DiscoverFds(rel).ValueOrDie();
  RelaxationOptions relax;
  relax.max_error = 0.15;
  FdSet relaxed = RelaxFds(rel, exact, relax).ValueOrDie();
  TaneOptions approx;
  approx.max_error = 0.15;
  FdSet frontier = DiscoverFds(rel, approx).ValueOrDie();
  for (const Fd& fd : relaxed) {
    EXPECT_TRUE(frontier.Contains(fd)) << fd.ToString();
  }
}

TEST_P(SeededPropertyTest, LargerThresholdGeneralizesFrontier) {
  Rng rng(GetParam());
  Relation rel = RandomRelation(rng, 4, 100, 4);
  TaneOptions small, large;
  small.max_error = 0.05;
  large.max_error = 0.25;
  FdSet tight = DiscoverFds(rel, small).ValueOrDie();
  FdSet loose = DiscoverFds(rel, large).ValueOrDie();
  // Every FD passing the tight threshold is implied by (a generalization
  // in) the loose frontier.
  for (const Fd& fd : tight) {
    bool generalized = false;
    for (const Fd& g : loose) {
      if (g.rhs == fd.rhs && g.lhs.IsSubsetOf(fd.lhs)) {
        generalized = true;
        break;
      }
    }
    EXPECT_TRUE(generalized) << fd.ToString();
  }
}

// --- Graph consistency ---------------------------------------------------------

TEST_P(SeededPropertyTest, ViolationGraphEdgeCountsAgree) {
  Rng rng(GetParam());
  Relation rel = RandomRelation(rng, 4, 80, 3);
  TaneOptions approx;
  approx.max_error = 0.3;
  FdSet candidates = DiscoverFds(rel, approx).ValueOrDie();
  ViolationGraph graph = ViolationGraph::Build(rel, candidates);
  size_t from_fds = 0, from_cells = 0;
  for (FdId f = 0; f < graph.NumFds(); ++f) {
    from_fds += graph.CellsOfFd(f).size();
  }
  for (CellId c = 0; c < graph.NumCells(); ++c) {
    from_cells += graph.FdsOfCell(c).size();
    EXPECT_EQ(graph.ActiveDegreeOfCell(c),
              static_cast<int>(graph.FdsOfCell(c).size()));
  }
  EXPECT_EQ(from_fds, from_cells);

  // Deactivating every FD empties the right side too.
  for (FdId f = 0; f < graph.NumFds(); ++f) graph.DeactivateFd(f);
  EXPECT_TRUE(graph.ActiveCells().empty());
}

// --- Repair laws ----------------------------------------------------------------

TEST_P(SeededPropertyTest, SingleFdRepairReachesFixpoint) {
  Rng rng(GetParam());
  Relation rel = RandomRelation(rng, 3, 60, 3);
  FdSet fd({Fd({0}, 1)});
  RepairOptions opts;
  opts.min_majority_support = 1;
  opts.guard_suspicious_lhs = false;
  RepairResult first = RepairWithFds(rel, fd, opts);
  // A second pass over the repaired table makes no further strict-majority
  // repairs for the same FD.
  RepairResult second = RepairWithFds(first.repaired, fd, opts);
  EXPECT_TRUE(second.repairs.empty());
}

TEST_P(SeededPropertyTest, RepairsOnlyTouchReportedCells) {
  Rng rng(GetParam());
  Relation rel = RandomRelation(rng, 3, 60, 3);
  FdSet fds({Fd({0}, 1), Fd({2}, 0)});
  RepairResult result = RepairWithFds(rel, fds);
  std::unordered_set<Cell, CellHash> touched;
  for (const CellRepair& r : result.repairs) touched.insert(r.cell);
  for (TupleId r = 0; r < rel.NumRows(); ++r) {
    for (int c = 0; c < rel.NumAttributes(); ++c) {
      if (!touched.contains(Cell{r, c})) {
        EXPECT_EQ(result.repaired.Value(r, c), rel.Value(r, c));
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeededPropertyTest,
                         ::testing::Range<uint64_t>(1, 13));

}  // namespace
}  // namespace uguide
