# Chaos smoke test: the acceptance scenario of the overload-safe serving
# work. uguided runs with every protection armed (admission deadline,
# read-idle reaping, output cap, fast tick) and 8 session slots; the load
# generator offers 4x that with --chaos — garbage frames, half-written
# lines, slow readers, mid-question disconnects, and close/reopen-resume
# storms. The bar: every admitted session finishes with a byte-verified
# report, every refusal carries a machine-readable code + retry hint (the
# loadgen exits nonzero otherwise — no --allow-refused here: structured
# retries must converge), no answered question is lost, and every journal
# resumes cleanly.
#
# Inputs: -DUGUIDED=<binary> -DLOADGEN=<binary> -DWORK_DIR=<scratch dir>

if(NOT UGUIDED OR NOT LOADGEN OR NOT WORK_DIR)
  message(FATAL_ERROR "chaos_smoke: UGUIDED, LOADGEN and WORK_DIR are "
                      "required")
endif()

find_program(BASH_PROGRAM bash)
if(NOT BASH_PROGRAM)
  message(FATAL_ERROR "chaos_smoke: bash not found")
endif()

file(REMOVE_RECURSE "${WORK_DIR}")
file(MAKE_DIRECTORY "${WORK_DIR}")
file(MAKE_DIRECTORY "${WORK_DIR}/journals")

# $1 = uguided, $2 = uguide_loadgen. No --memory-budget-mb here: the shared
# artifacts would pin the budget over its soft limit and brownout would
# (correctly) refuse every open forever — the brownout path has its own
# unit tests against an explicit MemoryBudget.
file(WRITE "${WORK_DIR}/chaos.sh" [=[
uguided="$1"
loadgen="$2"

"$uguided" --port=0 --port-file=port.txt --journal-dir=journals \
  --max-sessions=8 --rows=150 --budget=12 --threads=4 \
  --tick-ms=50 --read-idle-ms=2000 --queue-deadline-ms=5000 \
  >daemon.log 2>&1 &
daemon_pid=$!

for _ in $(seq 1 240); do
  [ -s port.txt ] && break
  kill -0 "$daemon_pid" 2>/dev/null || break
  sleep 0.25
done
if ! [ -s port.txt ]; then
  echo "chaos_smoke: daemon never published its port" >&2
  cat daemon.log >&2
  kill "$daemon_pid" 2>/dev/null
  exit 1
fi

"$loadgen" --port="$(cat port.txt)" --sessions=32 --concurrency=32 \
  --strategy=all --rows=150 --budget=12 --chaos --chaos-seed=1234 \
  --check-journals=journals
loadgen_rc=$?

kill -TERM "$daemon_pid"
wait "$daemon_pid"
daemon_rc=$?
cat daemon.log

if [ "$loadgen_rc" -ne 0 ]; then
  echo "chaos_smoke: loadgen failed (rc=$loadgen_rc)" >&2
  exit 1
fi
if [ "$daemon_rc" -ne 0 ]; then
  echo "chaos_smoke: daemon did not drain cleanly (rc=$daemon_rc)" >&2
  exit 1
fi
if ! grep -q "finished=32" daemon.log; then
  echo "chaos_smoke: daemon summary disagrees with loadgen" >&2
  exit 1
fi
exit 0
]=])

execute_process(
  COMMAND "${BASH_PROGRAM}" "${WORK_DIR}/chaos.sh" "${UGUIDED}" "${LOADGEN}"
  WORKING_DIRECTORY "${WORK_DIR}"
  RESULT_VARIABLE exit_code
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err)

message(STATUS "chaos_smoke stdout:\n${out}")
if(err)
  message(STATUS "chaos_smoke stderr:\n${err}")
endif()
if(NOT exit_code STREQUAL "0")
  message(FATAL_ERROR "chaos_smoke: failed with exit code ${exit_code}")
endif()
