#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>

#include "datagen/generators.h"
#include "discovery/tane.h"
#include "errorgen/error_generator.h"
#include "violations/violation_detector.h"

namespace uguide {
namespace {

struct Fixture {
  Relation clean;
  FdSet true_fds;
};

Fixture MakeFixture(int rows = 1500) {
  DataGenOptions opts;
  opts.rows = rows;
  Relation clean = GenerateHospital(opts);
  TaneOptions tane;
  tane.max_lhs_size = 3;
  FdSet fds = DiscoverFds(clean, tane).ValueOrDie();
  return {std::move(clean), std::move(fds)};
}

TEST(GroundTruthTest, MarkAndQuery) {
  GroundTruth truth;
  EXPECT_FALSE(truth.IsChanged(Cell{0, 1}));
  truth.MarkChanged(Cell{0, 1});
  truth.MarkChanged(Cell{0, 1});  // idempotent
  EXPECT_TRUE(truth.IsChanged(Cell{0, 1}));
  EXPECT_EQ(truth.NumChanged(), 1u);
  EXPECT_TRUE(truth.IsTupleDirty(0, 3));
  EXPECT_FALSE(truth.IsTupleDirty(1, 3));
}

TEST(GroundTruthTest, ChangedCellsSorted) {
  GroundTruth truth;
  truth.MarkChanged(Cell{5, 2});
  truth.MarkChanged(Cell{1, 3});
  truth.MarkChanged(Cell{1, 0});
  std::vector<Cell> cells = truth.ChangedCells();
  ASSERT_EQ(cells.size(), 3u);
  EXPECT_EQ(cells[0], (Cell{1, 0}));
  EXPECT_EQ(cells[2], (Cell{5, 2}));
}

TEST(ErrorGenTest, RejectsBadOptions) {
  Fixture fx = MakeFixture(200);
  ErrorGenOptions opts;
  opts.error_rate = 0.95;
  EXPECT_FALSE(InjectErrors(fx.clean, fx.true_fds, opts).ok());
  opts.error_rate = 0.1;
  opts.per_fd_cap = 0.0;
  EXPECT_FALSE(InjectErrors(fx.clean, fx.true_fds, opts).ok());
}

TEST(ErrorGenTest, RejectsEmptyRelation) {
  Relation empty(Schema::Make({"a"}).ValueOrDie());
  EXPECT_FALSE(InjectErrors(empty, FdSet(), {}).ok());
}

TEST(ErrorGenTest, RejectsWhenNoInjectableFd) {
  // A key-only relation has no multi-tuple class for any FD.
  Relation rel(Schema::Make({"a", "b"}).ValueOrDie());
  rel.AddRow({"1", "x"});
  rel.AddRow({"2", "y"});
  FdSet fds({Fd({0}, 1)});
  ErrorGenOptions opts;
  opts.model = ErrorModel::kSystematic;
  EXPECT_FALSE(InjectErrors(rel, fds, opts).ok());
}

class ErrorModelTest : public ::testing::TestWithParam<ErrorModel> {};

TEST_P(ErrorModelTest, PlacesApproximatelyRequestedErrors) {
  Fixture fx = MakeFixture();
  ErrorGenOptions opts;
  opts.model = GetParam();
  opts.error_rate = 0.10;
  DirtyDataset out = InjectErrors(fx.clean, fx.true_fds, opts).ValueOrDie();
  const auto target = static_cast<size_t>(0.10 * fx.clean.NumRows());
  EXPECT_GE(out.truth.NumChanged(), target * 8 / 10);
  EXPECT_LE(out.truth.NumChanged(), target);
}

TEST_P(ErrorModelTest, ChangedCellsActuallyDiffer) {
  Fixture fx = MakeFixture();
  ErrorGenOptions opts;
  opts.model = GetParam();
  DirtyDataset out = InjectErrors(fx.clean, fx.true_fds, opts).ValueOrDie();
  for (const Cell& cell : out.truth.ChangedCells()) {
    EXPECT_NE(out.dirty.Value(cell), fx.clean.Value(cell));
  }
}

TEST_P(ErrorModelTest, UnchangedCellsStayIntact) {
  Fixture fx = MakeFixture(600);
  ErrorGenOptions opts;
  opts.model = GetParam();
  DirtyDataset out = InjectErrors(fx.clean, fx.true_fds, opts).ValueOrDie();
  for (TupleId r = 0; r < fx.clean.NumRows(); ++r) {
    for (int c = 0; c < fx.clean.NumAttributes(); ++c) {
      if (!out.truth.IsChanged(Cell{r, c})) {
        ASSERT_EQ(out.dirty.Value(r, c), fx.clean.Value(r, c));
      }
    }
  }
}

TEST_P(ErrorModelTest, DeterministicFromSeed) {
  Fixture fx = MakeFixture(600);
  ErrorGenOptions opts;
  opts.model = GetParam();
  opts.seed = 123;
  DirtyDataset a = InjectErrors(fx.clean, fx.true_fds, opts).ValueOrDie();
  DirtyDataset b = InjectErrors(fx.clean, fx.true_fds, opts).ValueOrDie();
  EXPECT_EQ(a.truth.ChangedCells().size(), b.truth.ChangedCells().size());
  auto ca = a.truth.ChangedCells();
  auto cb = b.truth.ChangedCells();
  EXPECT_TRUE(std::equal(ca.begin(), ca.end(), cb.begin()));
}

INSTANTIATE_TEST_SUITE_P(Models, ErrorModelTest,
                         ::testing::Values(ErrorModel::kUniform,
                                           ErrorModel::kSystematic,
                                           ErrorModel::kRandom),
                         [](const auto& info) {
                           return ErrorModelName(info.param);
                         });

TEST(ErrorGenTest, FdModelsProduceDetectableErrors) {
  // Every injected error must be flagged by at least one true FD's removal
  // set on the dirty table (that is the point of FD-targeted injection).
  Fixture fx = MakeFixture();
  for (ErrorModel model : {ErrorModel::kUniform, ErrorModel::kSystematic}) {
    ErrorGenOptions opts;
    opts.model = model;
    opts.error_rate = 0.05;
    DirtyDataset out = InjectErrors(fx.clean, fx.true_fds, opts).ValueOrDie();
    std::set<Cell> flagged;
    for (const Fd& fd : fx.true_fds) {
      for (const Cell& cell : ViolatingCells(out.dirty, fd)) {
        flagged.insert(cell);
      }
    }
    size_t detectable = 0;
    for (const Cell& cell : out.truth.ChangedCells()) {
      if (flagged.contains(cell)) ++detectable;
    }
    // Nearly all injected errors are detectable; a tiny fraction can end up
    // as the majority of a small class after multiple injections.
    EXPECT_GE(detectable, out.truth.NumChanged() * 9 / 10)
        << ErrorModelName(model);
  }
}

TEST(ErrorGenTest, SystematicIsMoreSkewedThanUniform) {
  Fixture fx = MakeFixture();
  auto violations_per_fd = [&](ErrorModel model) {
    ErrorGenOptions opts;
    opts.model = model;
    opts.error_rate = 0.15;
    DirtyDataset out = InjectErrors(fx.clean, fx.true_fds, opts).ValueOrDie();
    std::vector<size_t> per_fd;
    for (const Fd& fd : fx.true_fds) {
      per_fd.push_back(ViolatingTuples(out.dirty, fd).size());
    }
    std::sort(per_fd.rbegin(), per_fd.rend());
    return per_fd;
  };
  auto skew = [](const std::vector<size_t>& v) {
    size_t total = 0, top = 0;
    const size_t top_k = std::max<size_t>(1, v.size() / 5);
    for (size_t i = 0; i < v.size(); ++i) {
      total += v[i];
      if (i < top_k) top += v[i];
    }
    return total == 0 ? 0.0 : static_cast<double>(top) / total;
  };
  EXPECT_GT(skew(violations_per_fd(ErrorModel::kSystematic)),
            skew(violations_per_fd(ErrorModel::kUniform)));
}

TEST(ErrorGenTest, PerFdCapIsHonored) {
  Fixture fx = MakeFixture();
  ErrorGenOptions opts;
  opts.model = ErrorModel::kSystematic;
  opts.error_rate = 0.20;
  opts.per_fd_cap = 0.02;
  DirtyDataset out = InjectErrors(fx.clean, fx.true_fds, opts).ValueOrDie();
  // No single FD's injected share may exceed the cap (in expectation the
  // zipf head would otherwise blow past it).
  const auto cap = static_cast<size_t>(0.02 * fx.clean.NumRows()) + 1;
  std::map<int, size_t> per_rhs;
  for (const Cell& cell : out.truth.ChangedCells()) {
    per_rhs[cell.col]++;
  }
  // Cells are attributed per-FD internally; per-RHS grouping upper-bounds
  // the per-FD count only when each RHS has one FD, so just sanity-check
  // the total is spread across several attributes.
  EXPECT_GT(per_rhs.size(), 1u);
  (void)cap;
}

TEST(ErrorGenTest, RandomModelLessDetectableThanSystematic) {
  // §7.2.2 / Fig. 4(c): random typos are less FD-detectable than targeted
  // errors. Our synthetic schemas have higher FD coverage than the real
  // Hospital data, so the gap is smaller than the paper's, but random
  // errors landing in the free measurement columns stay invisible.
  Fixture fx = MakeFixture();
  auto detectable_fraction = [&](ErrorModel model) {
    ErrorGenOptions opts;
    opts.model = model;
    opts.error_rate = 0.10;
    DirtyDataset out =
        InjectErrors(fx.clean, fx.true_fds, opts).ValueOrDie();
    std::set<Cell> flagged;
    for (const Fd& fd : fx.true_fds) {
      for (const Cell& cell : ViolatingCells(out.dirty, fd)) {
        flagged.insert(cell);
      }
    }
    size_t detectable = 0;
    for (const Cell& cell : out.truth.ChangedCells()) {
      if (flagged.contains(cell)) ++detectable;
    }
    return static_cast<double>(detectable) /
           static_cast<double>(out.truth.NumChanged());
  };
  const double random = detectable_fraction(ErrorModel::kRandom);
  const double systematic = detectable_fraction(ErrorModel::kSystematic);
  EXPECT_LT(random, systematic);
  EXPECT_LT(random, 0.9);  // a solid share of typos is invisible to FDs
  EXPECT_GT(systematic, 0.95);
}

}  // namespace
}  // namespace uguide
