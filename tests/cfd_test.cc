#include <gtest/gtest.h>

#include <algorithm>

#include "cfd/cfd.h"
#include "cfd/cfd_discovery.h"
#include "common/rng.h"
#include "discovery/tane.h"
#include "fd/armstrong.h"
#include "violations/violation_detector.h"

namespace uguide {
namespace {

Relation MakeRelation(const std::vector<std::string>& attrs,
                      const std::vector<std::vector<std::string>>& rows) {
  Relation rel(Schema::Make(attrs).ValueOrDie());
  for (const auto& row : rows) rel.AddRow(row);
  return rel;
}

// zip -> city holds only inside state CA; state NY breaks it.
Relation ConditionalRelation() {
  return MakeRelation({"state", "zip", "city"},
                      {{"CA", "1", "sf"},
                       {"CA", "1", "sf"},
                       {"CA", "2", "la"},
                       {"CA", "2", "la"},
                       {"NY", "3", "nyc"},
                       {"NY", "3", "albany"},
                       {"NY", "4", "buffalo"}});
}

TEST(CfdTest, MakeValidatesPatternArity) {
  EXPECT_TRUE(Cfd::Make(Fd({0, 1}, 2), {"CA", "_"}, "_").ok());
  EXPECT_FALSE(Cfd::Make(Fd({0, 1}, 2), {"CA"}, "_").ok());
  EXPECT_FALSE(Cfd::Make(Fd({0, 2}, 2), {"_", "_"}, "_").ok());  // trivial
}

TEST(CfdTest, PlainFdDetection) {
  Cfd plain = Cfd::Make(Fd({0, 1}, 2), {"_", "_"}, "_").ValueOrDie();
  EXPECT_TRUE(plain.IsPlainFd());
  EXPECT_FALSE(plain.IsConstant());
  Cfd conditional = Cfd::Make(Fd({0, 1}, 2), {"CA", "_"}, "_").ValueOrDie();
  EXPECT_FALSE(conditional.IsPlainFd());
  Cfd constant = Cfd::Make(Fd({0}, 2), {"CA"}, "sf").ValueOrDie();
  EXPECT_TRUE(constant.IsConstant());
}

TEST(CfdTest, MatchesChecksConstantsOnly) {
  Relation rel = ConditionalRelation();
  Cfd cfd = Cfd::Make(Fd({0, 1}, 2), {"CA", "_"}, "_").ValueOrDie();
  EXPECT_TRUE(cfd.Matches(rel, 0));
  EXPECT_TRUE(cfd.Matches(rel, 3));
  EXPECT_FALSE(cfd.Matches(rel, 4));  // NY
}

TEST(CfdTest, VariableCfdHoldsWherePlainFdFails) {
  Relation rel = ConditionalRelation();
  // The plain {zip}->city fails (zip 3 has two cities)...
  EXPECT_FALSE(FdHoldsOn(rel, Fd({1}, 2)));
  // ...but conditioned on state=CA it holds.
  Cfd ca = Cfd::Make(Fd({0, 1}, 2), {"CA", "_"}, "_").ValueOrDie();
  EXPECT_TRUE(CfdHoldsOn(rel, ca));
  Cfd ny = Cfd::Make(Fd({0, 1}, 2), {"NY", "_"}, "_").ValueOrDie();
  EXPECT_FALSE(CfdHoldsOn(rel, ny));
}

TEST(CfdTest, VariableViolationsUseParticipation) {
  Relation rel = ConditionalRelation();
  Cfd ny = Cfd::Make(Fd({0, 1}, 2), {"NY", "_"}, "_").ValueOrDie();
  std::vector<Cell> cells = ViolatingCells(rel, ny);
  ASSERT_EQ(cells.size(), 2u);  // both zip-3 tuples participate
  EXPECT_EQ(cells[0], (Cell{4, 2}));
  EXPECT_EQ(cells[1], (Cell{5, 2}));
}

TEST(CfdTest, ConstantCfdFlagsDeviations) {
  Relation rel = ConditionalRelation();
  // state=CA, zip=1 -> city=sf: holds.
  Cfd good = Cfd::Make(Fd({0, 1}, 2), {"CA", "1"}, "sf").ValueOrDie();
  EXPECT_TRUE(CfdHoldsOn(rel, good));
  // state=CA, zip=1 -> city=la: both CA/1 tuples deviate.
  Cfd bad = Cfd::Make(Fd({0, 1}, 2), {"CA", "1"}, "la").ValueOrDie();
  std::vector<Cell> cells = ViolatingCells(rel, bad);
  EXPECT_EQ(cells.size(), 2u);
}

TEST(CfdTest, ErrorMetric) {
  Relation rel = ConditionalRelation();
  Cfd ny = Cfd::Make(Fd({0, 1}, 2), {"NY", "_"}, "_").ValueOrDie();
  // One of the two zip-3 tuples must go: 1/7.
  EXPECT_NEAR(CfdError(rel, ny), 1.0 / 7.0, 1e-12);
  Cfd ca = Cfd::Make(Fd({0, 1}, 2), {"CA", "_"}, "_").ValueOrDie();
  EXPECT_EQ(CfdError(rel, ca), 0.0);
}

TEST(CfdTest, WildcardCfdEqualsPlainFd) {
  Relation rel = ConditionalRelation();
  const Fd fd({1}, 2);
  Cfd plain = Cfd::Make(fd, {"_"}, "_").ValueOrDie();
  EXPECT_EQ(CfdHoldsOn(rel, plain), FdHoldsOn(rel, fd));
  EXPECT_EQ(ViolatingCells(rel, plain).size(),
            ViolatingCells(rel, fd).size());
}

TEST(CfdTest, ToStringShowsPattern) {
  Schema schema = Schema::Make({"state", "zip", "city"}).ValueOrDie();
  Cfd cfd = Cfd::Make(Fd({0, 1}, 2), {"CA", "_"}, "_").ValueOrDie();
  EXPECT_EQ(cfd.ToString(schema), "state=CA,zip -> city");
  Cfd constant = Cfd::Make(Fd({0}, 2), {"NY"}, "nyc").ValueOrDie();
  EXPECT_EQ(constant.ToString(schema), "state=NY -> city=nyc");
}

// --- Discovery --------------------------------------------------------------

// A larger relation where zip -> city is conditional on country.
Relation MiningRelation() {
  Relation rel(Schema::Make({"country", "zip", "city"}).ValueOrDie());
  Rng rng(3);
  // Country A: zip determines city (zips 0..9).
  for (int i = 0; i < 60; ++i) {
    int zip = static_cast<int>(rng.NextBounded(10));
    rel.AddRow({"A", "z" + std::to_string(zip), "c" + std::to_string(zip)});
  }
  // Country B: same zip values map to arbitrary cities.
  for (int i = 0; i < 60; ++i) {
    int zip = static_cast<int>(rng.NextBounded(10));
    rel.AddRow({"B", "z" + std::to_string(zip),
                "c" + std::to_string(rng.NextBounded(10))});
  }
  return rel;
}

TEST(CfdDiscoveryTest, FindsConditionalDependency) {
  Relation rel = MiningRelation();
  // {country, zip} -> city fails globally (country B reuses zips with
  // conflicting cities) but holds under the condition country = A.
  FdSet broken({Fd({0, 1}, 2)});
  CfdDiscoveryOptions opts;
  opts.min_support = 20;
  std::vector<Cfd> cfds = DiscoverVariableCfds(rel, broken, opts);
  // country=A must be among the mined conditions.
  const bool found = std::any_of(cfds.begin(), cfds.end(), [](const Cfd& c) {
    return c.lhs_pattern(0) == "A" && c.lhs_pattern(1) == Cfd::kWildcard;
  });
  EXPECT_TRUE(found);
  // Every mined CFD must actually hold with the required support.
  for (const Cfd& cfd : cfds) {
    EXPECT_TRUE(CfdHoldsOn(rel, cfd)) << cfd.ToString(rel.schema());
  }
}

TEST(CfdDiscoveryTest, SkipsGloballyHoldingFds) {
  // An FD that already holds globally needs no conditioning, so the miner
  // must report nothing for it.
  Relation simple(Schema::Make({"a", "b"}).ValueOrDie());
  simple.AddRow({"1", "x"});
  simple.AddRow({"1", "x"});
  simple.AddRow({"2", "y"});
  FdSet holding({Fd({0}, 1)});
  EXPECT_TRUE(DiscoverVariableCfds(simple, holding, {}).empty());
}

TEST(CfdDiscoveryTest, RespectsSupportThreshold) {
  Relation rel = MiningRelation();
  FdSet broken({Fd({0, 1}, 2)});
  CfdDiscoveryOptions strict;
  strict.min_support = 1000;  // more than the table has
  EXPECT_TRUE(DiscoverVariableCfds(rel, broken, strict).empty());
}

TEST(CfdDiscoveryTest, RespectsResultCap) {
  Relation rel = MiningRelation();
  FdSet broken({Fd({0, 1}, 2)});
  CfdDiscoveryOptions capped;
  capped.min_support = 2;
  capped.max_results = 3;
  EXPECT_LE(DiscoverVariableCfds(rel, broken, capped).size(), 3u);
}

TEST(CfdDiscoveryTest, ConstantCfdsAreExactAndSupported) {
  Relation rel = MiningRelation();
  CfdDiscoveryOptions opts;
  opts.min_support = 10;
  std::vector<Cfd> cfds = DiscoverConstantCfds(rel, opts);
  for (const Cfd& cfd : cfds) {
    EXPECT_TRUE(cfd.IsConstant());
    EXPECT_TRUE(CfdHoldsOn(rel, cfd)) << cfd.ToString(rel.schema());
    // Its plain FD must genuinely fail (otherwise the CFD is pointless).
    EXPECT_FALSE(FdHoldsOn(rel, cfd.embedded()));
  }
}

TEST(CfdDiscoveryTest, MinedCfdsDetectInjectedDeviations) {
  // Corrupt one country-A city cell: the mined country=A CFD must flag it.
  Relation rel = MiningRelation();
  rel.SetValue(0, 2, "weird");
  FdSet broken({Fd({0, 1}, 2)});
  CfdDiscoveryOptions opts;
  opts.min_support = 20;
  // Re-mine on the *clean* table, then detect on the dirty one.
  Relation clean = MiningRelation();
  std::vector<Cfd> cfds = DiscoverVariableCfds(clean, broken, opts);
  bool flagged = false;
  for (const Cfd& cfd : cfds) {
    for (const Cell& cell : ViolatingCells(rel, cfd)) {
      if (cell.row == 0) flagged = true;
    }
  }
  EXPECT_TRUE(flagged);
}

}  // namespace
}  // namespace uguide
