// The live-mutation subsystem: randomized mutation storms asserting the
// incrementally maintained partitions, violation graphs, and per-epoch
// sessions are byte-identical to a full rebuild at every epoch and any
// thread count; version-pinned journals; and the op=mutate /
// version_mismatch serving paths end to end.

#include <gtest/gtest.h>
#include <sys/stat.h>

#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "core/session_journal.h"
#include "core/session_state.h"
#include "discovery/partition.h"
#include "live/live_dataset.h"
#include "live/live_relation.h"
#include "live/mutation.h"
#include "oracle/simulated_expert.h"
#include "server/protocol.h"
#include "server/session_manager.h"
#include "test_util.h"
#include "violations/bipartite_graph.h"
#include "violations/violation_engine.h"

namespace uguide {
namespace {

using ::uguide::testing::MakeHospitalSession;

// --- helpers ----------------------------------------------------------------

// A mixed batch of appends, updates, and deletes. Values are drawn from a
// small pool so mutations collide with existing groups (creating and
// healing violations) instead of always minting singletons; deletes of
// already-dead rows are allowed through on purpose — individual refusal is
// part of the contract under test.
MutationBatch RandomBatch(Rng& rng, TupleId num_rows, int num_attrs) {
  MutationBatch batch;
  const int ops = static_cast<int>(rng.NextInt(2, 5));
  for (int i = 0; i < ops; ++i) {
    switch (rng.NextBounded(3)) {
      case 0: {
        std::vector<std::string> values;
        for (int c = 0; c < num_attrs; ++c) {
          values.push_back("av" + std::to_string(rng.NextBounded(7)));
        }
        batch.ops.push_back(Mutation::Append(std::move(values)));
        break;
      }
      case 1:
        batch.ops.push_back(Mutation::Update(
            static_cast<TupleId>(rng.NextBounded(
                static_cast<uint64_t>(num_rows))),
            static_cast<int>(rng.NextBounded(
                static_cast<uint64_t>(num_attrs))),
            "uv" + std::to_string(rng.NextBounded(7))));
        break;
      default:
        batch.ops.push_back(Mutation::Delete(static_cast<TupleId>(
            rng.NextBounded(static_cast<uint64_t>(num_rows)))));
        break;
    }
  }
  return batch;
}

void ExpectPartitionsEqual(const Partition& got, const Partition& want,
                           const std::string& what) {
  ASSERT_EQ(got.NumRows(), want.NumRows()) << what;
  ASSERT_EQ(got.NumClasses(), want.NumClasses()) << what;
  ASSERT_EQ(got.StrippedSize(), want.StrippedSize()) << what;
  EXPECT_EQ(got.ApproxBytes(), want.ApproxBytes()) << what;
  for (size_t i = 0; i < got.offsets().size(); ++i) {
    ASSERT_EQ(got.offsets()[i], want.offsets()[i]) << what << " offset " << i;
  }
  for (size_t i = 0; i < got.elements().size(); ++i) {
    ASSERT_EQ(got.elements()[i], want.elements()[i]) << what << " elem " << i;
  }
}

void ExpectGraphsEqual(const ViolationGraph& got, const ViolationGraph& want,
                       const std::string& what) {
  ASSERT_EQ(got.NumFds(), want.NumFds()) << what;
  ASSERT_EQ(got.NumCells(), want.NumCells()) << what;
  EXPECT_EQ(got.ApproxMemoryBytes(), want.ApproxMemoryBytes()) << what;
  for (FdId f = 0; f < got.NumFds(); ++f) {
    ASSERT_TRUE(got.fd(f) == want.fd(f)) << what << " fd " << f;
    ASSERT_EQ(got.ActiveDegreeOfFd(f), want.ActiveDegreeOfFd(f)) << what;
    const auto a = got.CellsOfFd(f);
    const auto b = want.CellsOfFd(f);
    ASSERT_EQ(a.size(), b.size()) << what << " fd " << f;
    for (size_t i = 0; i < a.size(); ++i) {
      ASSERT_EQ(a[i], b[i]) << what << " fd " << f << " edge " << i;
    }
  }
  for (CellId c = 0; c < got.NumCells(); ++c) {
    ASSERT_TRUE(got.cell(c) == want.cell(c)) << what << " cell " << c;
    ASSERT_EQ(got.ActiveDegreeOfCell(c), want.ActiveDegreeOfCell(c)) << what;
    const auto a = got.FdsOfCell(c);
    const auto b = want.FdsOfCell(c);
    ASSERT_EQ(a.size(), b.size()) << what << " cell " << c;
    for (size_t i = 0; i < a.size(); ++i) {
      ASSERT_EQ(a[i], b[i]) << what << " cell " << c << " edge " << i;
    }
  }
}

// --- fixture ----------------------------------------------------------------

class LiveTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    session_ = new Session(MakeHospitalSession(200, ErrorModel::kSystematic,
                                               /*error_rate=*/0.15,
                                               /*seed=*/5,
                                               /*idk_rate=*/0.1));
  }
  static void TearDownTestSuite() {
    delete session_;
    session_ = nullptr;
  }

  static Answer AnswerQuestion(SimulatedExpert& expert,
                               const SessionQuestion& question) {
    switch (question.kind) {
      case QuestionKind::kCell:
        return expert.IsCellErroneous(question.cell);
      case QuestionKind::kTuple:
        return expert.IsTupleClean(question.row);
      case QuestionKind::kFd:
        return expert.IsFdValid(question.fd);
    }
    return Answer::kIdk;
  }

  static SimulatedExpert MakeExpert() {
    const SessionConfig& config = session_->config();
    return SimulatedExpert(&session_->true_violations(), &session_->truth(),
                           session_->dirty().NumAttributes(),
                           session_->true_fds(), config.idk_rate,
                           config.expert_seed, config.wrong_rate);
  }

  static std::string MakeJournalDir(const std::string& name) {
    const std::string dir = ::testing::TempDir() + "/" + name;
    ::mkdir(dir.c_str(), 0755);
    return dir;
  }

  static std::string OpenLine(const std::string& id,
                              const std::string& strategy, double budget,
                              bool resume = false) {
    ClientFrame open;
    open.op = ClientOp::kOpen;
    open.id = id;
    open.strategy = strategy;
    open.budget = budget;
    open.has_budget = true;
    open.resume = resume;
    return FormatClientFrame(open);
  }

  static std::string AnswerLine(const std::string& id, int seq,
                                Answer answer) {
    ClientFrame frame;
    frame.op = ClientOp::kAnswer;
    frame.id = id;
    frame.seq = seq;
    frame.answer = answer;
    return FormatClientFrame(frame);
  }

  static std::string MutateLine(const std::string& id,
                                std::vector<Mutation> ops) {
    ClientFrame frame;
    frame.op = ClientOp::kMutate;
    frame.id = id;
    frame.mutations = std::move(ops);
    return FormatClientFrame(frame);
  }

  static ServerFrame One(const std::vector<std::string>& replies) {
    EXPECT_EQ(replies.size(), 1u);
    return ParseServerFrame(replies.at(0)).ValueOrDie();
  }

  // Drives a served session to its report and returns the serialized
  // report payload.
  static std::string RunToReport(SessionManager& manager,
                                 const std::string& open_line) {
    SimulatedExpert expert = MakeExpert();
    ServerFrame frame = One(manager.HandleLine(open_line));
    int rounds = 0;
    while (frame.type == ServerFrameType::kQuestion) {
      EXPECT_LT(++rounds, 10000);
      const Answer answer = AnswerQuestion(expert, frame.question);
      frame = One(manager.HandleLine(
          AnswerLine(frame.id, frame.question.index, answer)));
    }
    EXPECT_EQ(frame.type, ServerFrameType::kReport);
    return frame.report;
  }

  static Session* session_;
};

Session* LiveTest::session_ = nullptr;

// --- LiveRelation: group index vs canonical partitions ----------------------

TEST_F(LiveTest, RelationPartitionsMatchForColumnUnderStorm) {
  for (uint64_t seed : {11u, 12u, 13u}) {
    LiveRelation live(session_->dirty());
    Rng rng(seed);
    const int m = live.relation().NumAttributes();
    for (int batch = 0; batch < 8; ++batch) {
      const MutationBatch mixed = RandomBatch(rng, live.NumRows(), m);
      const MutationReceipt receipt = live.Apply(mixed);
      ASSERT_EQ(receipt.applied + receipt.refused,
                static_cast<int>(mixed.ops.size()));
      for (int col = 0; col < m; ++col) {
        ExpectPartitionsEqual(
            live.ColumnPartition(col),
            Partition::ForColumn(live.relation(), col),
            "seed " + std::to_string(seed) + " batch " +
                std::to_string(batch) + " col " + std::to_string(col));
      }
    }
    EXPECT_GT(live.version(), 0u);
    EXPECT_LE(live.NumAlive(), live.NumRows());
  }
}

TEST_F(LiveTest, RelationRefusesInvalidOpsIndividually) {
  LiveRelation live(session_->dirty());
  const TupleId victim = 3;

  MutationBatch batch;
  batch.ops.push_back(Mutation::Delete(victim));
  batch.ops.push_back(Mutation::Delete(victim));         // dead row
  batch.ops.push_back(Mutation::Update(victim, 0, "x")); // dead row
  batch.ops.push_back(Mutation::Update(-1, 0, "x"));     // out of range
  batch.ops.push_back(Mutation::Append({"only-one"}));   // arity mismatch
  batch.ops.push_back(Mutation::Update(4, 1, "ok"));
  const MutationReceipt receipt = live.Apply(batch);
  EXPECT_EQ(receipt.applied, 2);
  EXPECT_EQ(receipt.refused, 4);
  EXPECT_EQ(receipt.version, 1u);
  EXPECT_FALSE(live.Alive(victim));

  // A fully refused batch leaves the version untouched.
  MutationBatch refused;
  refused.ops.push_back(Mutation::Delete(victim));
  const MutationReceipt again = live.Apply(refused);
  EXPECT_EQ(again.applied, 0);
  EXPECT_EQ(again.refused, 1);
  EXPECT_EQ(again.version, 1u);
  EXPECT_EQ(live.version(), 1u);
}

// --- LiveDataset: incremental epochs vs full rebuild ------------------------

TEST_F(LiveTest, StormEpochsMatchFullRebuildAtAnyThreadCount) {
  ThreadPool pool(4);
  const std::vector<std::string> strategies = KnownStrategyNames();
  ASSERT_EQ(strategies.size(), 11u);

  for (uint64_t seed : {21u, 22u, 23u}) {
    ViolationEngine serial_engine(&session_->dirty());
    ViolationGraph serial_graph =
        ViolationGraph::Build(serial_engine, session_->candidates(), nullptr);
    LiveDataset serial(session_, &serial_engine, &serial_graph, 0xfeed,
                       nullptr);

    ViolationEngine pooled_engine(&session_->dirty());
    ViolationGraph pooled_graph =
        ViolationGraph::Build(pooled_engine, session_->candidates(), &pool);
    LiveDataset pooled(session_, &pooled_engine, &pooled_graph, 0xfeed,
                       &pool);

    Rng rng(seed);
    const int m = session_->dirty().NumAttributes();
    for (int epoch = 1; epoch <= 4; ++epoch) {
      const MutationBatch batch =
          RandomBatch(rng, serial.Current()->session->dirty().NumRows(), m);
      const MutationReceipt sr = serial.Apply(batch);
      const MutationReceipt pr = pooled.Apply(batch);
      ASSERT_EQ(sr.applied, pr.applied);
      ASSERT_EQ(sr.version, pr.version);
      if (sr.applied == 0) continue;

      const std::string tag =
          "seed " + std::to_string(seed) + " epoch " + std::to_string(epoch);
      const std::shared_ptr<const LiveEpoch> cur = serial.Current();
      const Relation& mutated = cur->session->dirty();

      // Patched column partitions vs recomputation from the mutated bytes.
      for (int col = 0; col < m; ++col) {
        std::shared_ptr<const Partition> patched =
            cur->engine->LhsPartition(AttributeSet::Single(col));
        ASSERT_NE(patched, nullptr);
        ExpectPartitionsEqual(*patched,
                              Partition::ForColumn(mutated, col),
                              tag + " col " + std::to_string(col));
      }

      // Delta-maintained graph vs full rebuild and the scalar oracle.
      ViolationEngine fresh(&mutated);
      const ViolationGraph rebuilt =
          ViolationGraph::Build(fresh, session_->candidates(), nullptr);
      ExpectGraphsEqual(cur->graph(), rebuilt, tag + " rebuild");
      ExpectGraphsEqual(
          cur->graph(),
          ViolationGraph::BuildReference(mutated, session_->candidates()),
          tag + " reference");
      ExpectGraphsEqual(pooled.Current()->graph(), rebuilt, tag + " pooled");

      // Every strategy's report from the live epoch session matches a
      // from-scratch rebase over the same mutated bytes.
      Session reference = Session::Rebase(*session_, Relation(mutated));
      for (const std::string& name : strategies) {
        auto live_strategy = MakeStrategyByName(name).ValueOrDie();
        auto ref_strategy = MakeStrategyByName(name).ValueOrDie();
        EXPECT_EQ(
            SerializeSessionReport(cur->session->Run(*live_strategy, 6.0)),
            SerializeSessionReport(reference.Run(*ref_strategy, 6.0)))
            << tag << " strategy " << name;
      }
    }

    const LiveDataset::Stats stats = serial.stats();
    EXPECT_GT(stats.batches_applied, 0);
    EXPECT_GT(stats.ops_applied, 0);
    EXPECT_EQ(stats.fds_recomputed + stats.fds_skipped,
              stats.batches_applied * static_cast<int64_t>(
                                          session_->candidates().Size()));
  }
}

TEST_F(LiveTest, UpdateOnlyBatchesSkipUntouchedFds) {
  ViolationEngine engine(&session_->dirty());
  ViolationGraph graph =
      ViolationGraph::Build(engine, session_->candidates(), nullptr);
  LiveDataset live(session_, &engine, &graph, 0xbeef, nullptr);

  MutationBatch batch;
  batch.ops.push_back(Mutation::Update(0, 0, "solo"));
  const MutationReceipt receipt = live.Apply(batch);
  ASSERT_EQ(receipt.applied, 1);
  EXPECT_TRUE(receipt.scope.attrs.Contains(0));

  // A single-column update must not recompute FDs over other columns.
  const LiveDataset::Stats stats = live.stats();
  EXPECT_GT(stats.fds_skipped, 0);
  EXPECT_LT(stats.fds_recomputed,
            static_cast<int64_t>(session_->candidates().Size()));
}

TEST_F(LiveTest, EpochRingEvictsOldVersions) {
  ViolationEngine engine(&session_->dirty());
  ViolationGraph graph =
      ViolationGraph::Build(engine, session_->candidates(), nullptr);
  LiveDatasetOptions options;
  options.epoch_ring = 2;
  LiveDataset live(session_, &engine, &graph, 0xabc, nullptr, options);

  ASSERT_NE(live.AtVersion(0), nullptr);
  for (int i = 0; i < 3; ++i) {
    MutationBatch batch;
    batch.ops.push_back(Mutation::Update(i, 0, "ring" + std::to_string(i)));
    ASSERT_EQ(live.Apply(batch).applied, 1);
  }
  EXPECT_EQ(live.Current()->version, 3u);
  EXPECT_EQ(live.AtVersion(0), nullptr);
  EXPECT_EQ(live.AtVersion(1), nullptr);
  ASSERT_NE(live.AtVersion(2), nullptr);
  EXPECT_EQ(live.AtVersion(2)->version, 2u);

  // A pinned epoch outlives its ring eviction.
  std::shared_ptr<const LiveEpoch> pinned = live.AtVersion(2);
  MutationBatch batch;
  batch.ops.push_back(Mutation::Update(9, 0, "past"));
  ASSERT_EQ(live.Apply(batch).applied, 1);
  EXPECT_EQ(live.AtVersion(2), nullptr);
  EXPECT_EQ(pinned->version, 2u);
  // Lazy materialization still works after the ring moved on: the pinned
  // epoch owns its merge inputs.
  EXPECT_GT(pinned->graph().NumFds(), 0);
}

// --- version-pinned journals ------------------------------------------------

TEST_F(LiveTest, JournalHeaderPinsContentHashAndDataVersion) {
  JournalHeader header;
  header.strategy_name = "FDQ-BMC";
  header.budget = 8.0;
  header.expert_seed = 7;

  // Pre-live journals (both pins zero) must stay byte-identical: no
  // dhash/dver fields appear.
  EXPECT_EQ(FormatJournalHeaderV2(header).find("dhash="), std::string::npos);
  EXPECT_EQ(FormatJournalHeaderV2(header).find("dver="), std::string::npos);

  header.content_hash = 0xdeadbeefcafe1234ull;
  header.data_version = 42;
  const std::string line = FormatJournalHeaderV2(header);
  EXPECT_NE(line.find("dhash="), std::string::npos);
  EXPECT_NE(line.find("dver=42"), std::string::npos);

  const std::string path = ::testing::TempDir() + "/live_pin.journal";
  {
    std::ofstream out(path, std::ios::trunc);
    out << line << "\n";
  }
  const JournalHeader peeked = PeekJournalHeader(path).ValueOrDie();
  EXPECT_EQ(peeked.content_hash, header.content_hash);
  EXPECT_EQ(peeked.data_version, header.data_version);
  EXPECT_TRUE(peeked.Matches(header));

  JournalHeader moved = header;
  moved.data_version = 43;
  EXPECT_FALSE(peeked.Matches(moved));
  const Status mismatch = ValidateJournalHeader(moved, peeked);
  EXPECT_FALSE(mismatch.ok());
  EXPECT_NE(mismatch.message().find("dver"), std::string::npos);

  JournalHeader rehashed = header;
  rehashed.content_hash = 1;
  const Status wrong_data = ValidateJournalHeader(rehashed, peeked);
  EXPECT_FALSE(wrong_data.ok());
  EXPECT_NE(wrong_data.message().find("dhash"), std::string::npos);
}

// --- serving integration ----------------------------------------------------

TEST_F(LiveTest, MutateFramesRoundTripOnTheWire) {
  const std::string line = MutateLine(
      "w1", {Mutation::Append({"a", "b"}), Mutation::Update(4, 1, "v"),
             Mutation::Delete(9)});
  const ClientFrame frame = ParseClientFrame(line).ValueOrDie();
  EXPECT_EQ(frame.op, ClientOp::kMutate);
  ASSERT_EQ(frame.mutations.size(), 3u);
  EXPECT_EQ(frame.mutations[0].kind, MutationKind::kAppend);
  ASSERT_EQ(frame.mutations[0].values.size(), 2u);
  EXPECT_EQ(frame.mutations[1].kind, MutationKind::kUpdate);
  EXPECT_EQ(frame.mutations[1].row, 4);
  EXPECT_EQ(frame.mutations[1].col, 1);
  EXPECT_EQ(frame.mutations[1].value, "v");
  EXPECT_EQ(frame.mutations[2].kind, MutationKind::kDelete);
  EXPECT_EQ(frame.mutations[2].row, 9);
  EXPECT_EQ(FormatClientFrame(frame), line);

  const ServerFrame mutated =
      ParseServerFrame(FormatMutatedFrame("w1", 7, 2, 1)).ValueOrDie();
  EXPECT_EQ(mutated.type, ServerFrameType::kMutated);
  EXPECT_EQ(mutated.version, 7u);
  EXPECT_EQ(mutated.applied, 2);
  EXPECT_EQ(mutated.refused, 1);

  // Hostile mutate frames are refused, not crashed on.
  EXPECT_FALSE(ParseClientFrame("{\"op\":\"mutate\",\"id\":\"x\"}").ok());
  EXPECT_FALSE(
      ParseClientFrame("{\"op\":\"mutate\",\"id\":\"x\",\"ops\":[]}").ok());
  EXPECT_FALSE(ParseClientFrame("{\"op\":\"mutate\",\"id\":\"x\",\"ops\":"
                                "[{\"kind\":\"truncate\"}]}")
                   .ok());
  EXPECT_FALSE(ParseClientFrame("{\"op\":\"mutate\",\"id\":\"x\",\"ops\":"
                                "[{\"kind\":\"update\",\"row\":-1,"
                                "\"col\":0,\"value\":\"v\"}]}")
                   .ok());
}

TEST_F(LiveTest, ManagerAppliesMutationsAndStampsReports) {
  ViolationEngine engine(&session_->dirty());
  ViolationGraph graph =
      ViolationGraph::Build(engine, session_->candidates(), nullptr);
  LiveDataset live(session_, &engine, &graph, 0x5117, nullptr);

  SessionManagerOptions options;
  options.engine = &engine;
  options.graph = &graph;
  options.live = &live;
  SessionManager manager(session_, options);

  ServerFrame reply = One(manager.HandleLine(
      MutateLine("c1", {Mutation::Update(0, 0, "m1"),
                        Mutation::Update(1, 1, "m2")})));
  EXPECT_EQ(reply.type, ServerFrameType::kMutated);
  EXPECT_EQ(reply.version, 1u);
  EXPECT_EQ(reply.applied, 2);
  EXPECT_EQ(reply.refused, 0);

  reply = One(manager.HandleLine(
      MutateLine("c1", {Mutation::Delete(5), Mutation::Delete(5)})));
  EXPECT_EQ(reply.type, ServerFrameType::kMutated);
  EXPECT_EQ(reply.version, 2u);
  EXPECT_EQ(reply.applied, 1);
  EXPECT_EQ(reply.refused, 1);

  // A session opened now serves the mutated epoch and says so.
  const std::string report =
      RunToReport(manager, OpenLine("c2", "FDQ-BMC", 8.0));
  EXPECT_NE(report.find("data_version=2\n"), std::string::npos);

  // Without a live dataset, op=mutate is a structured refusal.
  SessionManager frozen(session_, {});
  const ServerFrame refused = One(frozen.HandleLine(
      MutateLine("c3", {Mutation::Delete(0)})));
  EXPECT_EQ(refused.type, ServerFrameType::kError);
}

TEST_F(LiveTest, ResumeAgainstEvictedVersionIsRefusedWithVersionMismatch) {
  ViolationEngine engine(&session_->dirty());
  ViolationGraph graph =
      ViolationGraph::Build(engine, session_->candidates(), nullptr);
  LiveDatasetOptions live_options;
  live_options.epoch_ring = 2;
  LiveDataset live(session_, &engine, &graph, 0x90, nullptr, live_options);

  SessionManagerOptions options;
  options.engine = &engine;
  options.graph = &graph;
  options.live = &live;
  options.journal_dir = MakeJournalDir("live_vm");

  // Start a journaled session against version 0, answer one question,
  // then abandon it (manager teardown keeps the journal).
  {
    SessionManager manager(session_, options);
    SimulatedExpert expert = MakeExpert();
    ServerFrame frame =
        One(manager.HandleLine(OpenLine("vm", "FDQ-BMC", 8.0)));
    ASSERT_EQ(frame.type, ServerFrameType::kQuestion);
    frame = One(manager.HandleLine(AnswerLine(
        "vm", frame.question.index, AnswerQuestion(expert, frame.question))));
    ASSERT_EQ(frame.type, ServerFrameType::kQuestion);
  }

  // Two applied batches push version 0 out of a ring of two.
  for (int i = 0; i < 2; ++i) {
    MutationBatch batch;
    batch.ops.push_back(Mutation::Update(i, 0, "gone" + std::to_string(i)));
    ASSERT_EQ(live.Apply(batch).applied, 1);
  }
  ASSERT_EQ(live.AtVersion(0), nullptr);

  SessionManager manager(session_, options);
  const ServerFrame refused =
      One(manager.HandleLine(OpenLine("vm", "FDQ-BMC", 8.0, /*resume=*/true)));
  EXPECT_EQ(refused.type, ServerFrameType::kError);
  EXPECT_EQ(refused.error_code, error_code::kVersionMismatch);

  // A journal pinned to a version the ring still holds resumes fine: open
  // at the current version, abandon, mutate once (ring keeps it), resume.
  {
    SessionManager m2(session_, options);
    SimulatedExpert expert = MakeExpert();
    ServerFrame frame = One(m2.HandleLine(OpenLine("ok", "FDQ-BMC", 8.0)));
    ASSERT_EQ(frame.type, ServerFrameType::kQuestion);
    frame = One(m2.HandleLine(AnswerLine(
        "ok", frame.question.index, AnswerQuestion(expert, frame.question))));
    ASSERT_EQ(frame.type, ServerFrameType::kQuestion);
  }
  MutationBatch one;
  one.ops.push_back(Mutation::Update(3, 0, "still-here"));
  ASSERT_EQ(live.Apply(one).applied, 1);

  SessionManager m3(session_, options);
  const ServerFrame resumed =
      One(m3.HandleLine(OpenLine("ok", "FDQ-BMC", 8.0, /*resume=*/true)));
  EXPECT_TRUE(resumed.type == ServerFrameType::kQuestion ||
              resumed.type == ServerFrameType::kReport)
      << "resume against a retained version must not be refused";
}

}  // namespace
}  // namespace uguide
