// Tests for the low-level infrastructure: CHECK macros, logging, and the
// hash helpers that the rest of the library builds on.

#include <gtest/gtest.h>

#include <string>
#include <unordered_set>

#include "common/check.h"
#include "common/hash.h"
#include "common/logging.h"

namespace uguide {
namespace {

TEST(CheckTest, PassingCheckIsSilent) {
  UGUIDE_CHECK(true);
  UGUIDE_CHECK_EQ(1, 1);
  UGUIDE_CHECK_NE(1, 2);
  UGUIDE_CHECK_LT(1, 2);
  UGUIDE_CHECK_LE(2, 2);
  UGUIDE_CHECK_GT(3, 2);
  UGUIDE_CHECK_GE(3, 3);
}

TEST(CheckDeathTest, FailingCheckAborts) {
  EXPECT_DEATH(UGUIDE_CHECK(false) << "boom", "Check failed");
  EXPECT_DEATH(UGUIDE_CHECK_EQ(1, 2), "Check failed");
}

TEST(CheckDeathTest, StreamedDetailAppearsInMessage) {
  EXPECT_DEATH(UGUIDE_CHECK(1 > 2) << "custom detail 42",
               "custom detail 42");
}

TEST(CheckTest, CheckBindsCorrectlyInsideIfElse) {
  // The while-based macro must not steal the else branch.
  bool reached_else = false;
  if (false)
    UGUIDE_CHECK(true);
  else
    reached_else = true;
  EXPECT_TRUE(reached_else);
}

TEST(LoggingTest, LevelThresholdGatesOutput) {
  const LogLevel original = Logger::GetLevel();
  Logger::SetLevel(LogLevel::kError);
  EXPECT_FALSE(Logger::Enabled(LogLevel::kDebug));
  EXPECT_FALSE(Logger::Enabled(LogLevel::kWarning));
  EXPECT_TRUE(Logger::Enabled(LogLevel::kError));
  Logger::SetLevel(LogLevel::kDebug);
  EXPECT_TRUE(Logger::Enabled(LogLevel::kInfo));
  Logger::SetLevel(original);
}

TEST(LoggingTest, MacroCompilesForAllLevels) {
  const LogLevel original = Logger::GetLevel();
  Logger::SetLevel(LogLevel::kError);  // keep test output clean
  UGUIDE_LOG(Debug) << "debug " << 1;
  UGUIDE_LOG(Info) << "info " << 2;
  UGUIDE_LOG(Warning) << "warning " << 3;
  Logger::SetLevel(original);
}

TEST(HashTest, CombineIsOrderSensitive) {
  size_t ab = 0, ba = 0;
  HashCombine(ab, 1);
  HashCombine(ab, 2);
  HashCombine(ba, 2);
  HashCombine(ba, 1);
  EXPECT_NE(ab, ba);
}

TEST(HashTest, PairHashDistinguishesComponents) {
  PairHash hash;
  std::unordered_set<size_t> values;
  for (int a = 0; a < 20; ++a) {
    for (int b = 0; b < 20; ++b) {
      values.insert(hash(std::make_pair(a, b)));
    }
  }
  // 400 pairs should produce (almost) 400 distinct hashes.
  EXPECT_GE(values.size(), 395u);
}

}  // namespace
}  // namespace uguide
