#include <gtest/gtest.h>

#include <algorithm>
#include <unordered_map>

#include "common/rng.h"
#include "datagen/generators.h"
#include "discovery/partition.h"
#include "discovery/relaxation.h"
#include "discovery/tane.h"
#include "fd/armstrong.h"
#include "fd/closure.h"

namespace uguide {
namespace {

Relation MakeRelation(const std::vector<std::string>& attrs,
                      const std::vector<std::vector<std::string>>& rows) {
  Relation rel(Schema::Make(attrs).ValueOrDie());
  for (const auto& row : rows) rel.AddRow(row);
  return rel;
}

// Naive g3: minimum tuples to delete so the FD holds exactly, computed by
// majority counting per LHS group.
double NaiveG3(const Relation& rel, const Fd& fd) {
  std::unordered_map<std::string, std::unordered_map<std::string, int>>
      groups;
  for (TupleId r = 0; r < rel.NumRows(); ++r) {
    std::string key;
    for (int c : fd.lhs) {
      key += rel.Value(r, c);
      key += '\x1f';
    }
    groups[key][rel.Value(r, fd.rhs)]++;
  }
  int removed = 0;
  for (const auto& [key, counts] : groups) {
    int total = 0, best = 0;
    for (const auto& [value, count] : counts) {
      total += count;
      best = std::max(best, count);
    }
    removed += total - best;
  }
  return static_cast<double>(removed) / rel.NumRows();
}

// --- Partition --------------------------------------------------------------

TEST(PartitionTest, SingleColumnStripsSingletons) {
  Relation rel = MakeRelation({"a"}, {{"x"}, {"x"}, {"y"}, {"z"}, {"x"}});
  Partition p = Partition::ForColumn(rel, 0);
  ASSERT_EQ(p.NumClasses(), 1u);  // only the "x" class survives stripping
  EXPECT_EQ(p.Class(0), (std::vector<TupleId>{0, 1, 4}));
  EXPECT_EQ(p.StrippedSize(), 3u);
  EXPECT_FALSE(p.IsKey());
}

TEST(PartitionTest, KeyColumn) {
  Relation rel = MakeRelation({"a"}, {{"1"}, {"2"}, {"3"}});
  Partition p = Partition::ForColumn(rel, 0);
  EXPECT_TRUE(p.IsKey());
  EXPECT_EQ(p.KeyError(), 0.0);
}

TEST(PartitionTest, EmptySetPartition) {
  Partition p = Partition::ForEmptySet(4);
  ASSERT_EQ(p.NumClasses(), 1u);
  EXPECT_EQ(p.Class(0).size(), 4u);
}

TEST(PartitionTest, CsrInvariantsAndDeterministicFootprint) {
  Rng rng(17);
  Relation rel(Schema::Make({"a", "b", "c"}).ValueOrDie());
  for (int i = 0; i < 200; ++i) {
    rel.AddRow({std::to_string(rng.NextBounded(7)),
                std::to_string(rng.NextBounded(4)),
                std::to_string(rng.NextBounded(3))});
  }
  const AttributeSet abc = AttributeSet::Single(0).With(1).With(2);
  Partition p = Partition::ForAttributes(rel, abc);
  // CSR well-formedness: offsets bracket the element array and every
  // class has >= 2 members listed ascending.
  ASSERT_EQ(p.offsets().size(), p.NumClasses() + 1);
  EXPECT_EQ(p.offsets()[0], 0u);
  EXPECT_EQ(p.offsets()[p.NumClasses()], p.elements().size());
  EXPECT_EQ(p.StrippedSize(), p.elements().size());
  for (size_t i = 0; i < p.NumClasses(); ++i) {
    const Partition::ClassView cls = p.Class(i);
    ASSERT_GE(cls.size(), 2u);
    for (size_t j = 1; j < cls.size(); ++j) {
      EXPECT_LT(cls[j - 1], cls[j]);
    }
  }
  // Column partitions additionally list classes by first (smallest)
  // member ascending — the first-seen order of the scan.
  Partition col = Partition::ForColumn(rel, 0);
  TupleId prev_first = -1;
  for (size_t i = 0; i < col.NumClasses(); ++i) {
    EXPECT_LT(prev_first, col.Class(i).front());
    prev_first = col.Class(i).front();
  }
  // ApproxBytes is size-based: mathematically equal partitions report the
  // same figure regardless of the product order that produced them.
  Partition via_product =
      Partition::ForColumn(rel, 2).Product(
          Partition::ForColumn(rel, 1).Product(Partition::ForColumn(rel, 0)));
  EXPECT_EQ(via_product.ApproxBytes(), p.ApproxBytes());
  EXPECT_EQ(via_product.StrippedSize(), p.StrippedSize());
  EXPECT_EQ(via_product.NumClasses(), p.NumClasses());
}

TEST(PartitionTest, ProductRefines) {
  Relation rel = MakeRelation(
      {"a", "b"},
      {{"1", "x"}, {"1", "x"}, {"1", "y"}, {"2", "x"}, {"2", "x"}});
  Partition pa = Partition::ForColumn(rel, 0);
  Partition pb = Partition::ForColumn(rel, 1);
  Partition pab = pa.Product(pb);
  // Classes: {0,1} (1,x) and {3,4} (2,x); (1,y) is a singleton.
  EXPECT_EQ(pab.NumClasses(), 2u);
  EXPECT_EQ(pab.StrippedSize(), 4u);
}

TEST(PartitionTest, ProductIsCommutativeInContent) {
  Rng rng(3);
  Relation rel(Schema::Make({"a", "b"}).ValueOrDie());
  for (int i = 0; i < 100; ++i) {
    rel.AddRow({std::to_string(rng.NextBounded(5)),
                std::to_string(rng.NextBounded(4))});
  }
  Partition pa = Partition::ForColumn(rel, 0);
  Partition pb = Partition::ForColumn(rel, 1);
  Partition ab = pa.Product(pb);
  Partition ba = pb.Product(pa);
  EXPECT_EQ(ab.NumClasses(), ba.NumClasses());
  EXPECT_EQ(ab.StrippedSize(), ba.StrippedSize());
}

TEST(PartitionTest, FdErrorMatchesNaiveG3) {
  Rng rng(7);
  Relation rel(Schema::Make({"a", "b", "c"}).ValueOrDie());
  for (int i = 0; i < 200; ++i) {
    rel.AddRow({std::to_string(rng.NextBounded(6)),
                std::to_string(rng.NextBounded(3)),
                std::to_string(rng.NextBounded(4))});
  }
  PartitionCache cache(&rel);
  for (int lhs = 0; lhs < 3; ++lhs) {
    for (int rhs = 0; rhs < 3; ++rhs) {
      if (lhs == rhs) continue;
      Fd fd(AttributeSet::Single(lhs), rhs);
      EXPECT_NEAR(cache.FdError(fd), NaiveG3(rel, fd), 1e-12)
          << fd.ToString();
    }
  }
  Fd two(AttributeSet({0, 1}), 2);
  EXPECT_NEAR(cache.FdError(two), NaiveG3(rel, two), 1e-12);
}

TEST(PartitionTest, FdErrorZeroForHoldingFd) {
  Relation rel = MakeRelation(
      {"zip", "city"},
      {{"1", "ny"}, {"1", "ny"}, {"2", "la"}, {"2", "la"}});
  PartitionCache cache(&rel);
  EXPECT_EQ(cache.FdError(Fd({0}, 1)), 0.0);
}

TEST(PartitionTest, CacheMemoizes) {
  Relation rel = MakeRelation({"a", "b", "c"},
                              {{"1", "x", "p"}, {"1", "x", "q"}});
  PartitionCache cache(&rel);
  cache.Get(AttributeSet({0, 1}));
  size_t size_after_first = cache.CacheSize();
  cache.Get(AttributeSet({0, 1}));
  EXPECT_EQ(cache.CacheSize(), size_after_first);
}

// --- TANE -------------------------------------------------------------------

// Brute-force minimal FD discovery for cross-checking.
FdSet BruteForceFds(const Relation& rel, double max_error) {
  const int m = rel.NumAttributes();
  PartitionCache cache(&rel);
  std::vector<Fd> valid;
  for (uint64_t mask = 0; mask < (uint64_t{1} << m); ++mask) {
    AttributeSet lhs(mask);
    for (int a = 0; a < m; ++a) {
      if (lhs.Contains(a)) continue;
      Fd fd(lhs, a);
      if (cache.FdError(fd) <= max_error) valid.push_back(fd);
    }
  }
  FdSet minimal;
  for (const Fd& fd : valid) {
    bool is_minimal = true;
    for (const Fd& other : valid) {
      if (other.rhs == fd.rhs && other.lhs.IsStrictSubsetOf(fd.lhs)) {
        is_minimal = false;
        break;
      }
    }
    if (is_minimal) minimal.Add(fd);
  }
  return minimal;
}

TEST(TaneTest, DiscoversSimpleFd) {
  Relation rel = MakeRelation(
      {"zip", "city", "name"},
      {{"1", "ny", "a"}, {"1", "ny", "b"}, {"2", "la", "c"}, {"2", "la", "d"},
       {"3", "sf", "e"}});
  FdSet fds = DiscoverFds(rel).ValueOrDie();
  EXPECT_TRUE(fds.Contains(Fd({0}, 1)));  // zip -> city
  // name is a key, so name -> zip and name -> city must be found.
  EXPECT_TRUE(fds.Contains(Fd({2}, 0)));
  EXPECT_TRUE(fds.Contains(Fd({2}, 1)));
}

TEST(TaneTest, DiscoversConstantColumn) {
  Relation rel = MakeRelation({"a", "b"}, {{"1", "k"}, {"2", "k"}});
  FdSet fds = DiscoverFds(rel).ValueOrDie();
  EXPECT_TRUE(fds.Contains(Fd(AttributeSet(), 1)));
}

TEST(TaneTest, AllDiscoveredFdsHold) {
  Relation rel = MakeRelation(
      {"a", "b", "c", "d"},
      {{"1", "x", "p", "u"}, {"1", "x", "p", "v"}, {"2", "x", "q", "u"},
       {"2", "y", "q", "v"}, {"3", "y", "r", "u"}});
  FdSet fds = DiscoverFds(rel).ValueOrDie();
  EXPECT_FALSE(fds.Empty());
  for (const Fd& fd : fds) {
    EXPECT_TRUE(FdHoldsOn(rel, fd)) << fd.ToString();
  }
}

TEST(TaneTest, ResultsAreMinimal) {
  Relation rel = MakeRelation(
      {"a", "b", "c"},
      {{"1", "x", "p"}, {"1", "x", "p"}, {"2", "y", "q"}, {"3", "y", "q"}});
  FdSet fds = DiscoverFds(rel).ValueOrDie();
  for (const Fd& fd : fds) {
    EXPECT_TRUE(fds.IsMinimalIn(fd)) << fd.ToString();
    // Semantically minimal too: removing any LHS attribute breaks it.
    for (int a : fd.lhs) {
      EXPECT_FALSE(FdHoldsOn(rel, Fd(fd.lhs.Without(a), fd.rhs)))
          << fd.ToString();
    }
  }
}

TEST(TaneTest, EmptyRelation) {
  Relation rel(Schema::Make({"a", "b"}).ValueOrDie());
  FdSet fds = DiscoverFds(rel).ValueOrDie();
  EXPECT_TRUE(fds.Empty());
}

TEST(TaneTest, SingleRowYieldsConstantFds) {
  Relation rel = MakeRelation({"a", "b"}, {{"1", "x"}});
  FdSet fds = DiscoverFds(rel).ValueOrDie();
  EXPECT_TRUE(fds.Contains(Fd(AttributeSet(), 0)));
  EXPECT_TRUE(fds.Contains(Fd(AttributeSet(), 1)));
  EXPECT_EQ(fds.Size(), 2u);
}

TEST(TaneTest, RejectsBadOptions) {
  Relation rel = MakeRelation({"a"}, {{"1"}});
  TaneOptions bad;
  bad.max_error = 1.5;
  EXPECT_FALSE(DiscoverFds(rel, bad).ok());
  bad.max_error = -0.1;
  EXPECT_FALSE(DiscoverFds(rel, bad).ok());
}

TEST(TaneTest, MaxLhsSizeBounds) {
  Rng rng(11);
  Relation rel(Schema::Make({"a", "b", "c", "d", "e"}).ValueOrDie());
  for (int i = 0; i < 60; ++i) {
    std::vector<std::string> row;
    for (int c = 0; c < 5; ++c) {
      row.push_back(std::to_string(rng.NextBounded(3)));
    }
    rel.AddRow(row);
  }
  TaneOptions opts;
  opts.max_lhs_size = 2;
  FdSet fds = DiscoverFds(rel, opts).ValueOrDie();
  for (const Fd& fd : fds) {
    EXPECT_LE(fd.lhs.Size(), 2);
  }
}

TEST(TaneTest, ApproximateModeFindsAfds) {
  // zip -> city holds for 9 of 10 tuples in the "1" group.
  std::vector<std::vector<std::string>> rows;
  for (int i = 0; i < 9; ++i) rows.push_back({"1", "ny", std::to_string(i)});
  rows.push_back({"1", "boston", "9"});
  for (int i = 0; i < 10; ++i) {
    rows.push_back({"2", "la", std::to_string(100 + i)});
  }
  Relation rel = MakeRelation({"zip", "city", "id"}, rows);
  EXPECT_FALSE(DiscoverFds(rel).ValueOrDie().Contains(Fd({0}, 1)));
  TaneOptions approx;
  approx.max_error = 0.10;
  FdSet afds = DiscoverFds(rel, approx).ValueOrDie();
  EXPECT_TRUE(afds.Contains(Fd({0}, 1)));
}

TEST(TaneTest, PrunedParentEmitsNothing) {
  // Regression for the pruned-subset fallback: a constant column `k` makes
  // {} -> k hold exactly, which empties C+({k}) (Remove(k) then intersect
  // with {k}), so the {k} node is dropped at the level-1 prune step. Pin
  // that (a) it emits nothing beyond the constant FD itself — candidates
  // intersect to the empty set once C+ is empty — and (b) no superset
  // containing k is ever generated, i.e. no FD with k in its LHS appears
  // (any such FD would be non-minimal anyway).
  Relation rel = MakeRelation(
      {"a", "b", "k"},
      {{"1", "x", "c"}, {"1", "x", "c"}, {"2", "y", "c"}, {"2", "z", "c"}});
  FdSet fds = DiscoverFds(rel).ValueOrDie();
  EXPECT_TRUE(fds.Contains(Fd(AttributeSet(), 2)));  // {} -> k
  for (const Fd& fd : fds) {
    EXPECT_FALSE(fd.lhs.Contains(2))
        << fd.ToString() << " has the pruned constant column in its LHS";
    EXPECT_TRUE(fds.IsMinimalIn(fd)) << fd.ToString();
  }
}

// Parallel discovery must be a pure wall-clock optimization: identical
// FdSets for every thread count, in exact and approximate mode, on both a
// structured (Tax generator) and an adversarially random relation.
void ExpectSameFds(const FdSet& a, const FdSet& b, const std::string& what) {
  EXPECT_EQ(a.Size(), b.Size()) << what;
  for (const Fd& fd : a) {
    EXPECT_TRUE(b.Contains(fd)) << what << ": " << fd.ToString();
  }
}

TEST(TaneTest, ThreadCountDoesNotChangeResultOnTax) {
  DataGenOptions gen;
  gen.rows = 2000;
  Relation rel = GenerateTax(gen);
  for (double max_error : {0.0, 0.05}) {
    TaneOptions serial;
    serial.max_lhs_size = 3;
    serial.max_error = max_error;
    serial.num_threads = 1;
    FdSet baseline = DiscoverFds(rel, serial).ValueOrDie();
    EXPECT_FALSE(baseline.Empty());
    for (int threads : {4, 0}) {  // 0 = hardware concurrency
      TaneOptions parallel = serial;
      parallel.num_threads = threads;
      FdSet got = DiscoverFds(rel, parallel).ValueOrDie();
      ExpectSameFds(baseline, got,
                    "tax, threads=" + std::to_string(threads) +
                        ", max_error=" + std::to_string(max_error));
    }
  }
}

TEST(TaneTest, ThreadCountDoesNotChangeResultOnRandomRelation) {
  Rng rng(1234);  // fixed seed: the relation is identical on every run
  const int m = 6;
  Relation rel(
      Schema::Make({"a", "b", "c", "d", "e", "f"}).ValueOrDie());
  for (int i = 0; i < 300; ++i) {
    std::vector<std::string> row;
    for (int c = 0; c < m; ++c) {
      row.push_back(std::to_string(rng.NextBounded(2 + c)));
    }
    rel.AddRow(row);
  }
  for (double max_error : {0.0, 0.15}) {
    TaneOptions serial;
    serial.max_error = max_error;
    serial.num_threads = 1;
    FdSet baseline = DiscoverFds(rel, serial).ValueOrDie();
    for (int threads : {4, 0}) {
      TaneOptions parallel = serial;
      parallel.num_threads = threads;
      FdSet got = DiscoverFds(rel, parallel).ValueOrDie();
      ExpectSameFds(baseline, got,
                    "random, threads=" + std::to_string(threads) +
                        ", max_error=" + std::to_string(max_error));
    }
  }
}

TEST(TaneTest, RejectsNegativeThreads) {
  Relation rel = MakeRelation({"a"}, {{"1"}});
  TaneOptions bad;
  bad.num_threads = -2;
  EXPECT_FALSE(DiscoverFds(rel, bad).ok());
}

// Property sweep: TANE output equals brute force on random small tables,
// both exact and approximate.
class TaneBruteForceTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(TaneBruteForceTest, MatchesBruteForce) {
  Rng rng(GetParam());
  const int m = 4;
  Relation rel(Schema::Make({"a", "b", "c", "d"}).ValueOrDie());
  const int rows = 20 + static_cast<int>(rng.NextBounded(30));
  for (int i = 0; i < rows; ++i) {
    std::vector<std::string> row;
    for (int c = 0; c < m; ++c) {
      row.push_back(std::to_string(rng.NextBounded(2 + c)));
    }
    rel.AddRow(row);
  }
  for (double max_error : {0.0, 0.15}) {
    TaneOptions opts;
    opts.max_error = max_error;
    FdSet tane = DiscoverFds(rel, opts).ValueOrDie();
    FdSet brute = BruteForceFds(rel, max_error);
    EXPECT_EQ(tane.Size(), brute.Size()) << "max_error=" << max_error;
    for (const Fd& fd : brute) {
      EXPECT_TRUE(tane.Contains(fd))
          << fd.ToString() << " missing, max_error=" << max_error;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TaneBruteForceTest,
                         ::testing::Range<uint64_t>(1, 16));

// --- Relaxation -------------------------------------------------------------

TEST(RelaxationTest, RelaxesToTrueFd) {
  // zip -> city has one dirty tuple, so exact discovery finds the
  // specialization {zip, x} while relaxation recovers zip -> city. (No key
  // column here: a key would shadow the specialization with a smaller
  // minimal FD, which is exactly why GenerateCandidates uses approximate
  // discovery instead of the literal relaxation walk.)
  std::vector<std::vector<std::string>> rows;
  for (int i = 0; i < 21; ++i) {
    std::string zip = std::to_string(i % 4);
    std::string city = "city" + zip;
    rows.push_back({zip, city, std::to_string(i % 7)});
  }
  rows[0][1] = "corrupted";  // one error
  Relation rel = MakeRelation({"zip", "city", "x"}, rows);

  FdSet exact = DiscoverFds(rel).ValueOrDie();
  EXPECT_FALSE(exact.Contains(Fd({0}, 1)));
  ASSERT_TRUE(exact.Contains(Fd({0, 2}, 1)));  // {zip, x} -> city

  RelaxationOptions opts;
  opts.max_error = 0.10;
  FdSet candidates = RelaxFds(rel, exact, opts).ValueOrDie();
  EXPECT_TRUE(candidates.Contains(Fd({0}, 1)));
}

TEST(RelaxationTest, CandidatesRespectThreshold) {
  Rng rng(13);
  Relation rel(Schema::Make({"a", "b", "c"}).ValueOrDie());
  for (int i = 0; i < 80; ++i) {
    rel.AddRow({std::to_string(rng.NextBounded(4)),
                std::to_string(rng.NextBounded(4)),
                std::to_string(rng.NextBounded(3))});
  }
  FdSet exact = DiscoverFds(rel).ValueOrDie();
  RelaxationOptions opts;
  opts.max_error = 0.2;
  FdSet candidates = RelaxFds(rel, exact, opts).ValueOrDie();
  PartitionCache cache(&rel);
  for (const Fd& fd : candidates) {
    EXPECT_LE(cache.FdError(fd), 0.2) << fd.ToString();
  }
}

TEST(RelaxationTest, MinimalOnlyKeepsFrontier) {
  std::vector<std::vector<std::string>> rows;
  for (int i = 0; i < 40; ++i) {
    std::string zip = std::to_string(i % 4);
    rows.push_back({zip, "city" + zip, std::to_string(i)});
  }
  Relation rel = MakeRelation({"zip", "city", "id"}, rows);
  FdSet exact = DiscoverFds(rel).ValueOrDie();
  FdSet minimal = RelaxFds(rel, exact, {}).ValueOrDie();
  for (const Fd& fd : minimal) {
    for (const Fd& other : minimal) {
      if (&fd == &other) continue;
      EXPECT_FALSE(other.rhs == fd.rhs &&
                   other.lhs.IsStrictSubsetOf(fd.lhs))
          << other.ToString() << " subsumes " << fd.ToString();
    }
  }
}

TEST(RelaxationTest, NonMinimalKeepsIntermediates) {
  std::vector<std::vector<std::string>> rows;
  for (int i = 0; i < 40; ++i) {
    std::string zip = std::to_string(i % 4);
    rows.push_back({zip, "city" + zip, std::to_string(i)});
  }
  Relation rel = MakeRelation({"zip", "city", "id"}, rows);
  FdSet exact = DiscoverFds(rel).ValueOrDie();
  RelaxationOptions all;
  all.minimal_only = false;
  FdSet everything = RelaxFds(rel, exact, all).ValueOrDie();
  FdSet frontier = RelaxFds(rel, exact, {}).ValueOrDie();
  EXPECT_GE(everything.Size(), frontier.Size());
  for (const Fd& fd : frontier) {
    EXPECT_TRUE(everything.Contains(fd));
  }
}

TEST(RelaxationTest, BucketedMinimizationMatchesBruteForce) {
  // Regression test for the RHS-bucketed cross-FD minimization: the emitted
  // FdSet must equal the brute-force all-pairs minimal filter of the
  // complete (non-minimal) frontier, and the emission order must be
  // deterministic run to run.
  for (uint64_t seed : {3u, 17u, 40u}) {
    Rng rng(seed);
    Relation rel(Schema::Make({"a", "b", "c", "d"}).ValueOrDie());
    for (int i = 0; i < 120; ++i) {
      rel.AddRow({std::to_string(rng.NextBounded(3)),
                  std::to_string(rng.NextBounded(4)),
                  std::to_string(rng.NextBounded(3)),
                  std::to_string(rng.NextBounded(5))});
    }
    FdSet exact = DiscoverFds(rel).ValueOrDie();
    RelaxationOptions all;
    all.max_error = 0.3;
    all.minimal_only = false;
    FdSet everything = RelaxFds(rel, exact, all).ValueOrDie();

    RelaxationOptions opts;
    opts.max_error = 0.3;
    FdSet minimal = RelaxFds(rel, exact, opts).ValueOrDie();

    // Brute-force O(k^2) filter over the complete frontier.
    std::vector<Fd> expected;
    for (const Fd& fd : everything) {
      bool is_minimal = true;
      for (const Fd& other : everything) {
        if (other.rhs == fd.rhs && other.lhs.IsStrictSubsetOf(fd.lhs)) {
          is_minimal = false;
          break;
        }
      }
      if (is_minimal) expected.push_back(fd);
    }
    EXPECT_EQ(minimal.Size(), expected.size()) << "seed " << seed;
    for (const Fd& fd : expected) {
      EXPECT_TRUE(minimal.Contains(fd)) << fd.ToString() << " seed " << seed;
    }

    // Order determinism: a second run must emit the identical sequence.
    FdSet again = RelaxFds(rel, exact, opts).ValueOrDie();
    ASSERT_EQ(minimal.Size(), again.Size());
    EXPECT_TRUE(std::equal(minimal.begin(), minimal.end(), again.begin()))
        << "seed " << seed;
  }
}

TEST(RelaxationTest, RejectsBadThreshold) {
  Relation rel = MakeRelation({"a"}, {{"1"}});
  RelaxationOptions opts;
  opts.max_error = 1.0;
  EXPECT_FALSE(RelaxFds(rel, FdSet(), opts).ok());
}

TEST(RelaxationTest, TrueFdCoverageProperty) {
  // Candidate-generation guarantee behind §3.1: with a threshold at or
  // above the true violation rate, approximate discovery (the complete
  // relaxation frontier) yields candidates implying every true FD -- even
  // in the presence of a key column, where the literal relax-from-Sigma_T
  // walk would fall short.
  std::vector<std::vector<std::string>> rows;
  for (int i = 0; i < 100; ++i) {
    std::string zip = std::to_string(i % 10);
    std::string state = std::to_string((i % 10) % 3);
    rows.push_back({zip, "city" + zip, state, std::to_string(i)});
  }
  Relation clean = MakeRelation({"zip", "city", "state", "id"}, rows);
  FdSet true_fds = DiscoverFds(clean).ValueOrDie();

  Relation dirty = clean;
  dirty.SetValue(0, 1, "oops");   // corrupt zip->city
  dirty.SetValue(5, 2, "weird");  // corrupt zip->state

  TaneOptions approx;
  approx.max_error = 0.10;
  FdSet candidates = DiscoverFds(dirty, approx).ValueOrDie();
  ClosureEngine candidate_closure(candidates);
  for (const Fd& fd : true_fds) {
    EXPECT_TRUE(candidate_closure.Implies(fd)) << fd.ToString();
  }

  // The literal relaxation output is always a subset of the approximate
  // frontier.
  FdSet exact = DiscoverFds(dirty).ValueOrDie();
  RelaxationOptions opts;
  opts.max_error = 0.10;
  FdSet relaxed = RelaxFds(dirty, exact, opts).ValueOrDie();
  for (const Fd& fd : relaxed) {
    EXPECT_TRUE(candidates.Contains(fd)) << fd.ToString();
  }
}

// --- Memory-governed discovery (DESIGN.md §8) -------------------------------

Relation BudgetRelation() {
  // Wide enough that the lattice materializes many partition products.
  Rng rng(7);
  Relation rel(
      Schema::Make({"a", "b", "c", "d", "e", "f", "g"}).ValueOrDie());
  for (int i = 0; i < 200; ++i) {
    std::vector<std::string> row;
    for (int c = 0; c < 7; ++c) {
      row.push_back(std::to_string(rng.NextBounded(4)));
    }
    rel.AddRow(row);
  }
  return rel;
}

TEST(TaneBudgetTest, UnlimitedBudgetMatchesUngovernedExactly) {
  const Relation rel = BudgetRelation();
  TaneOptions plain;
  plain.max_lhs_size = 4;
  DiscoveryOutcome ungoverned = DiscoverFdsDetailed(rel, plain).ValueOrDie();

  MemoryBudget budget;  // unlimited: tracks, never refuses
  TaneOptions governed = plain;
  governed.memory_budget = &budget;
  DiscoveryOutcome outcome = DiscoverFdsDetailed(rel, governed).ValueOrDie();

  EXPECT_EQ(outcome.fds.fds(), ungoverned.fds.fds());
  EXPECT_FALSE(outcome.memory_truncated);
  EXPECT_EQ(outcome.partitions_recomputed, 0u);
  EXPECT_GT(outcome.peak_memory_bytes, 0u);
  EXPECT_EQ(budget.charged(), 0u);  // everything released on return
}

TEST(TaneBudgetTest, SoftLimitEvictsButStaysExact) {
  const Relation rel = BudgetRelation();
  TaneOptions plain;
  plain.max_lhs_size = 4;
  DiscoveryOutcome ungoverned = DiscoverFdsDetailed(rel, plain).ValueOrDie();

  // Measure the natural high-water with an unlimited budget, then rerun
  // with a soft limit far below it (no hard limit): the store spills and
  // recomputes, but the result is exact.
  MemoryBudget probe;
  TaneOptions governed = plain;
  governed.memory_budget = &probe;
  DiscoverFdsDetailed(rel, governed).ValueOrDie();
  ASSERT_GT(probe.high_water(), 0u);

  MemoryBudget budget(/*soft_limit_bytes=*/probe.high_water() / 4,
                      /*hard_limit_bytes=*/0);
  governed.memory_budget = &budget;
  DiscoveryOutcome outcome = DiscoverFdsDetailed(rel, governed).ValueOrDie();

  EXPECT_EQ(outcome.fds.fds(), ungoverned.fds.fds());
  EXPECT_FALSE(outcome.memory_truncated);
  EXPECT_GT(outcome.partitions_evicted, 0u);
  EXPECT_EQ(budget.charged(), 0u);
}

TEST(TaneBudgetTest, HardLimitTruncatesGracefully) {
  const Relation rel = BudgetRelation();
  TaneOptions plain;
  plain.max_lhs_size = 4;
  DiscoveryOutcome full = DiscoverFdsDetailed(rel, plain).ValueOrDie();

  // Hard limit sized to admit exactly the pinned recompute base (empty-set
  // partition plus singletons) with a slack smaller than any level-2
  // product: the product phase cannot evict its way to a fit (the base is
  // pinned), so discovery must stop at the level boundary, not crash.
  size_t base_bytes = Partition::ForEmptySet(rel.NumRows()).ApproxBytes();
  for (int c = 0; c < rel.NumAttributes(); ++c) {
    base_bytes += Partition::ForColumn(rel, c).ApproxBytes();
  }
  MemoryBudget budget(/*soft_limit_bytes=*/0,
                      /*hard_limit_bytes=*/base_bytes + 256);
  TaneOptions governed = plain;
  governed.memory_budget = &budget;
  DiscoveryOutcome outcome = DiscoverFdsDetailed(rel, governed).ValueOrDie();

  EXPECT_TRUE(outcome.memory_truncated);
  EXPECT_TRUE(outcome.Truncated());
  EXPECT_LT(outcome.levels_completed, 4);
  // Sound: every reported FD is one the full run found.
  for (const Fd& fd : outcome.fds) {
    EXPECT_TRUE(full.fds.Contains(fd)) << fd.ToString();
  }
  EXPECT_LE(outcome.fds.Size(), full.fds.Size());
  EXPECT_EQ(budget.charged(), 0u);
}

TEST(TaneBudgetTest, TruncationIsDeterministicAcrossThreadCounts) {
  const Relation rel = BudgetRelation();
  // A binding hard limit (pinned base + part of one level); charging runs
  // in the serial admission loop, so where discovery stops must not depend
  // on the worker count.
  size_t base_bytes = Partition::ForEmptySet(rel.NumRows()).ApproxBytes();
  for (int c = 0; c < rel.NumAttributes(); ++c) {
    base_bytes += Partition::ForColumn(rel, c).ApproxBytes();
  }
  auto run = [&rel, base_bytes](int threads) {
    // Fresh budget per run: truncation depends on the charge sequence.
    MemoryBudget budget(/*soft_limit_bytes=*/0,
                        /*hard_limit_bytes=*/base_bytes + 256);
    TaneOptions options;
    options.max_lhs_size = 4;
    options.num_threads = threads;
    options.memory_budget = &budget;
    return DiscoverFdsDetailed(rel, options).ValueOrDie();
  };
  const DiscoveryOutcome serial = run(1);
  const DiscoveryOutcome parallel = run(4);
  EXPECT_TRUE(serial.memory_truncated);
  EXPECT_EQ(serial.memory_truncated, parallel.memory_truncated);
  EXPECT_EQ(serial.levels_completed, parallel.levels_completed);
  EXPECT_EQ(serial.fds.fds(), parallel.fds.fds());
}

TEST(TaneBudgetTest, TinyHardLimitStillReturnsCleanly) {
  // Even the singleton column partitions exceed this budget: the graceful
  // floor is an empty, memory-truncated outcome — never a crash.
  const Relation rel = BudgetRelation();
  MemoryBudget budget(/*soft_limit_bytes=*/0, /*hard_limit_bytes=*/64);
  TaneOptions options;
  options.memory_budget = &budget;
  DiscoveryOutcome outcome = DiscoverFdsDetailed(rel, options).ValueOrDie();
  EXPECT_TRUE(outcome.memory_truncated);
  EXPECT_EQ(outcome.levels_completed, 0);
  EXPECT_EQ(budget.charged(), 0u);
}

}  // namespace
}  // namespace uguide
