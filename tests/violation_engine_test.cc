// Equivalence suite for the partition-backed violation engine (DESIGN.md
// §9): every query must be byte-identical to the hash-grouping reference
// detector, the parallel graph build must be bit-identical to the serial
// one at any thread count, and the incremental strategy paths must select
// the same questions as the retained full-rescan reference.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <utility>
#include <vector>

#include "common/memory_budget.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "core/candidate_gen.h"
#include "core/cell_strategies.h"
#include "core/fd_strategies.h"
#include "core/session.h"
#include "core/tuple_strategies.h"
#include "datagen/generators.h"
#include "discovery/tane.h"
#include "errorgen/error_generator.h"
#include "oracle/simulated_expert.h"
#include "test_util.h"
#include "violations/bipartite_graph.h"
#include "violations/violation_detector.h"
#include "violations/violation_engine.h"

namespace uguide {
namespace {

// A relation mixing the detector's corner cases: a constant column (one
// all-rows class), an all-distinct column (every class a singleton), and
// low-cardinality columns that produce majority-code ties.
Relation MakeRandomRelation(uint64_t seed, int rows) {
  Rng rng(seed);
  Relation rel(
      Schema::Make({"const", "two", "six", "key", "three"}).ValueOrDie());
  for (int i = 0; i < rows; ++i) {
    rel.AddRow({"c", std::to_string(rng.NextBounded(2)),
                std::to_string(rng.NextBounded(6)), std::to_string(i),
                std::to_string(rng.NextBounded(3))});
  }
  return rel;
}

// All valid-shape FDs with |LHS| <= 2, including the empty LHS.
std::vector<Fd> EnumerateFds(int num_attributes) {
  std::vector<Fd> fds;
  for (int rhs = 0; rhs < num_attributes; ++rhs) {
    fds.push_back(Fd(AttributeSet(), rhs));
    for (int a = 0; a < num_attributes; ++a) {
      if (a == rhs) continue;
      fds.push_back(Fd(AttributeSet::Single(a), rhs));
      for (int b = a + 1; b < num_attributes; ++b) {
        if (b == rhs) continue;
        fds.push_back(Fd(AttributeSet::Single(a).With(b), rhs));
      }
    }
  }
  return fds;
}

void ExpectEngineMatchesReference(ViolationEngine& engine,
                                  const Relation& rel, const Fd& fd) {
  EXPECT_EQ(engine.ViolatingTuples(fd), ViolatingTuples(rel, fd));
  EXPECT_EQ(engine.ViolatingCells(fd), ViolatingCells(rel, fd));
  EXPECT_EQ(engine.G3RemovalTuples(fd), G3RemovalTuples(rel, fd));
  EXPECT_EQ(engine.G3RemovalCells(fd), G3RemovalCells(rel, fd));
  EXPECT_EQ(engine.G3RemovalCount(fd), G3RemovalTuples(rel, fd).size());
  EXPECT_EQ(engine.HasViolations(fd), HasViolations(rel, fd));
}

void ExpectGraphsEqual(const ViolationGraph& a, const ViolationGraph& b) {
  ASSERT_EQ(a.NumFds(), b.NumFds());
  ASSERT_EQ(a.NumCells(), b.NumCells());
  for (FdId f = 0; f < a.NumFds(); ++f) {
    EXPECT_EQ(a.fd(f), b.fd(f));
    EXPECT_EQ(a.CellsOfFd(f), b.CellsOfFd(f));
  }
  for (CellId c = 0; c < a.NumCells(); ++c) {
    EXPECT_EQ(a.cell(c), b.cell(c));
    EXPECT_EQ(a.FdsOfCell(c), b.FdsOfCell(c));
  }
}

TEST(ViolationEngineTest, MatchesReferenceOnRandomRelations) {
  for (uint64_t seed : {1u, 2u, 3u, 4u}) {
    Relation rel = MakeRandomRelation(seed, 120);
    ViolationEngine engine(&rel);
    for (const Fd& fd : EnumerateFds(rel.NumAttributes())) {
      ExpectEngineMatchesReference(engine, rel, fd);
    }
    // The 65 enumerated FDs share 11 distinct non-trivial LHS sets (plus
    // the empty set and 5 columns); the cache must have been doing its job.
    EXPECT_GT(engine.partition_hits(), engine.partition_misses());
  }
}

TEST(ViolationEngineTest, MatchesReferenceOnHandcraftedTies) {
  // zip=1 splits 2-2 between ny and boston: majority is the first-seen
  // code; both detectors must break the tie the same way.
  Relation rel(Schema::Make({"zip", "city"}).ValueOrDie());
  for (const auto& row :
       std::vector<std::vector<std::string>>{{"1", "ny"},
                                             {"1", "boston"},
                                             {"1", "boston"},
                                             {"1", "ny"},
                                             {"2", "la"}}) {
    rel.AddRow(row);
  }
  ViolationEngine engine(&rel);
  const Fd fd({0}, 1);
  ExpectEngineMatchesReference(engine, rel, fd);
  EXPECT_EQ(engine.G3RemovalTuples(fd), (std::vector<TupleId>{1, 2}));
}

TEST(ViolationEngineTest, ViolationCountPerTupleMatches) {
  Relation rel = MakeRandomRelation(7, 150);
  FdSet fds;
  for (const Fd& fd : EnumerateFds(rel.NumAttributes())) fds.Add(fd);
  ViolationEngine engine(&rel);
  EXPECT_EQ(engine.ViolationCountPerTuple(fds),
            ViolationCountPerTuple(rel, fds));
}

TEST(ViolationEngineTest, MatchesReferenceOnTaxCandidates) {
  DataGenOptions data;
  data.rows = 400;
  data.seed = 9;
  Relation clean = GenerateTax(data);
  TaneOptions tane;
  tane.max_lhs_size = 3;
  FdSet true_fds = DiscoverFds(clean, tane).ValueOrDie();
  ErrorGenOptions errors;
  errors.model = ErrorModel::kSystematic;
  errors.error_rate = 0.1;
  errors.seed = 10;
  DirtyDataset dataset = InjectErrors(clean, true_fds, errors).ValueOrDie();
  CandidateGenOptions cand;
  cand.max_lhs_size = 3;
  CandidateSet candidates =
      GenerateCandidates(dataset.dirty, cand).ValueOrDie();
  ASSERT_GT(candidates.candidates.Size(), 0u);

  ViolationEngine engine(&dataset.dirty);
  for (const Fd& fd : candidates.candidates) {
    ExpectEngineMatchesReference(engine, dataset.dirty, fd);
  }
  EXPECT_GT(engine.partition_hits(), 0u);
}

TEST(ViolationEngineTest, MatchesReferenceUnderTinyMemoryBudget) {
  // A budget far below the partition working set forces LRU eviction and
  // recompute-on-miss; results must not change.
  Relation rel = MakeRandomRelation(11, 200);
  MemoryBudget budget(/*soft_limit_bytes=*/4 << 10, /*hard_limit_bytes=*/0);
  ViolationEngine engine(&rel, &budget);
  for (int pass = 0; pass < 2; ++pass) {
    for (const Fd& fd : EnumerateFds(rel.NumAttributes())) {
      ExpectEngineMatchesReference(engine, rel, fd);
    }
  }
  EXPECT_GT(budget.high_water(), 0u);
}

TEST(ViolationEngineTest, TrueViolationSetBitmapMatchesCellProbe) {
  Relation rel = MakeRandomRelation(13, 150);
  FdSet fds;
  for (const Fd& fd : EnumerateFds(rel.NumAttributes())) fds.Add(fd);
  TrueViolationSet set = TrueViolationSet::Compute(rel, fds);
  for (TupleId r = 0; r < rel.NumRows(); ++r) {
    bool expected = false;
    for (int a = 0; a < rel.NumAttributes(); ++a) {
      expected = expected || set.Contains(Cell{r, a});
    }
    EXPECT_EQ(set.TupleViolates(r, rel.NumAttributes()), expected);
  }
  EXPECT_FALSE(set.TupleViolates(-1, rel.NumAttributes()));
  EXPECT_FALSE(set.TupleViolates(rel.NumRows(), rel.NumAttributes()));
}

// --- CSR layout equivalence (DESIGN.md §14) -------------------------------

// FindCell (open-addressed probe) must agree with membership in the
// interned cell list for every cell of the relation's grid, and every
// interned cell must resolve to its own id.
void ExpectFindCellMatches(const ViolationGraph& g, const Relation& rel) {
  std::vector<Cell> interned;
  interned.reserve(static_cast<size_t>(g.NumCells()));
  for (CellId c = 0; c < g.NumCells(); ++c) {
    EXPECT_EQ(g.FindCell(g.cell(c)), c);
    interned.push_back(g.cell(c));
  }
  std::sort(interned.begin(), interned.end());
  for (TupleId r = 0; r < rel.NumRows(); ++r) {
    for (int a = 0; a < rel.NumAttributes(); ++a) {
      const Cell cell{r, a};
      const bool present =
          std::binary_search(interned.begin(), interned.end(), cell);
      const CellId found = g.FindCell(cell);
      ASSERT_EQ(found >= 0, present);
      if (found >= 0) ASSERT_EQ(g.cell(found), cell);
    }
  }
}

TEST(ViolationGraphTest, CsrAdjacencyMatchesReferenceOnRandomRelations) {
  for (uint64_t seed : {21u, 22u, 23u}) {
    Relation rel = MakeRandomRelation(seed, 100);
    FdSet fds;
    for (const Fd& fd : EnumerateFds(rel.NumAttributes())) fds.Add(fd);
    const ViolationGraph reference = ViolationGraph::BuildReference(rel, fds);
    const ViolationGraph csr = ViolationGraph::Build(rel, fds);
    ExpectGraphsEqual(reference, csr);
    ExpectFindCellMatches(csr, rel);
    ExpectFindCellMatches(reference, rel);
    // The footprint is a pure function of the merged content, so both
    // build paths must report the same figure.
    EXPECT_EQ(reference.ApproxMemoryBytes(), csr.ApproxMemoryBytes());
  }
}

TEST(ViolationGraphTest, ApproxMemoryBytesDeterministicAcrossThreadCounts) {
  Session session = testing::MakeHospitalSession(500);
  const size_t expected =
      ViolationGraph::BuildReference(session.dirty(), session.candidates())
          .ApproxMemoryBytes();
  EXPECT_GT(expected, 0u);
  for (int threads : {1, 2, 4, 8}) {
    ThreadPool pool(threads);
    ViolationEngine engine(&session.dirty());
    ViolationGraph parallel =
        ViolationGraph::Build(engine, session.candidates(), &pool);
    EXPECT_EQ(parallel.ApproxMemoryBytes(), expected) << threads;
  }
}

TEST(ViolationGraphTest, ActiveDegreesMatchRescanUnderRandomDeactivation) {
  // The incremental per-FD and per-cell active-degree counters must agree
  // with a full adjacency rescan after every step of a randomized
  // deactivation sequence (with repeats, so idempotence is exercised too).
  Relation rel = MakeRandomRelation(31, 140);
  FdSet fds;
  for (const Fd& fd : EnumerateFds(rel.NumAttributes())) fds.Add(fd);
  ViolationGraph g = ViolationGraph::Build(rel, fds);
  ASSERT_GT(g.NumFds(), 0);
  ASSERT_GT(g.NumCells(), 0);
  const auto check = [&g] {
    for (FdId f = 0; f < g.NumFds(); ++f) {
      int rescan = 0;
      if (g.FdActive(f)) {
        for (CellId c : g.CellsOfFd(f)) {
          if (g.CellActive(c)) ++rescan;
        }
      }
      ASSERT_EQ(g.ActiveDegreeOfFd(f), rescan) << "fd " << f;
    }
    for (CellId c = 0; c < g.NumCells(); ++c) {
      int rescan = 0;
      if (g.CellActive(c)) {
        for (FdId f : g.FdsOfCell(c)) {
          if (g.FdActive(f)) ++rescan;
        }
      }
      ASSERT_EQ(g.ActiveDegreeOfCell(c), rescan) << "cell " << c;
    }
  };
  check();
  Rng rng(77);
  for (int step = 0; step < 200; ++step) {
    if (rng.NextBounded(2) == 0) {
      g.DeactivateFd(
          static_cast<FdId>(rng.NextBounded(static_cast<uint64_t>(g.NumFds()))));
    } else {
      g.DeactivateCell(static_cast<CellId>(
          rng.NextBounded(static_cast<uint64_t>(g.NumCells()))));
    }
    check();
  }
  // Active id enumeration must agree with the flags (word-scan check).
  std::vector<FdId> expected_fds;
  for (FdId f = 0; f < g.NumFds(); ++f) {
    if (g.FdActive(f)) expected_fds.push_back(f);
  }
  EXPECT_EQ(g.ActiveFds(), expected_fds);
  std::vector<CellId> expected_cells;
  for (CellId c = 0; c < g.NumCells(); ++c) {
    if (g.CellActive(c)) expected_cells.push_back(c);
  }
  EXPECT_EQ(g.ActiveCells(), expected_cells);
}

TEST(ViolationGraphTest, ParallelBuildBitIdenticalAcrossThreadCounts) {
  Session session = testing::MakeHospitalSession(500);
  const ViolationGraph reference =
      ViolationGraph::BuildReference(session.dirty(), session.candidates());
  // The relation-only overload routes through a private engine.
  ExpectGraphsEqual(reference,
                    ViolationGraph::Build(session.dirty(),
                                          session.candidates()));
  for (int threads : {1, 2, 4, 8}) {
    ThreadPool pool(threads);
    ViolationEngine engine(&session.dirty());
    ViolationGraph parallel =
        ViolationGraph::Build(engine, session.candidates(), &pool);
    ExpectGraphsEqual(reference, parallel);
  }
}

// --- strategy-level equivalence -------------------------------------------

void ExpectReportsEqual(const SessionReport& a, const SessionReport& b) {
  EXPECT_EQ(a.strategy_name, b.strategy_name);
  EXPECT_EQ(a.result.accepted_fds.fds(), b.result.accepted_fds.fds());
  EXPECT_EQ(a.result.cost_spent, b.result.cost_spent);
  EXPECT_EQ(a.result.questions_asked, b.result.questions_asked);
  EXPECT_EQ(a.metrics.detections, b.metrics.detections);
  EXPECT_EQ(a.metrics.true_positives, b.metrics.true_positives);
  EXPECT_EQ(a.metrics.false_positives, b.metrics.false_positives);
  EXPECT_EQ(a.metrics.false_negatives, b.metrics.false_negatives);
  EXPECT_EQ(a.metrics.injected_detected, b.metrics.injected_detected);
}

TEST(IncrementalSelectionTest, CellStrategiesMatchRescanReference) {
  // The lazy heaps (HS / Greedy) and the change-propagating SUMS fixpoint
  // must ask the same questions — hence produce byte-identical reports —
  // as the retained O(NumCells)-rescan reference, including under IDK
  // answers (which change no state and re-select).
  for (double idk : {0.0, 0.25}) {
    Session session = testing::MakeHospitalSession(
        600, ErrorModel::kSystematic, 0.15, 5, idk);
    for (double budget : {30.0, 120.0}) {
      CellStrategyOptions incremental;
      incremental.incremental = true;
      CellStrategyOptions reference;
      reference.incremental = false;
      {
        auto a = MakeCellQHittingSet(incremental);
        auto b = MakeCellQHittingSet(reference);
        ExpectReportsEqual(session.Run(*a, budget), session.Run(*b, budget));
      }
      {
        auto a = MakeCellQGreedy(incremental);
        auto b = MakeCellQGreedy(reference);
        ExpectReportsEqual(session.Run(*a, budget), session.Run(*b, budget));
      }
      {
        auto a = MakeCellQSums(incremental);
        auto b = MakeCellQSums(reference);
        ExpectReportsEqual(session.Run(*a, budget), session.Run(*b, budget));
      }
    }
  }
}

TEST(IncrementalSelectionTest, SumsMatchesReferenceAtTightRecompute) {
  // Recomputing the fixpoint after every answer maximizes the number of
  // incremental Estimate-Confidence invocations (the hardest schedule for
  // staleness propagation).
  Session session = testing::MakeHospitalSession(500);
  CellStrategyOptions incremental;
  incremental.incremental = true;
  incremental.sums_recompute_interval = 1;
  CellStrategyOptions reference = incremental;
  reference.incremental = false;
  auto a = MakeCellQSums(incremental);
  auto b = MakeCellQSums(reference);
  ExpectReportsEqual(session.Run(*a, 150.0), session.Run(*b, 150.0));
}

TEST(SessionDeterminismTest, ThreadCountDoesNotChangeAnyStrategy) {
  auto make_session = [](int threads) {
    DataGenOptions data;
    data.rows = 500;
    data.seed = 5;
    Relation clean = GenerateHospital(data);
    TaneOptions tane;
    tane.max_lhs_size = 3;
    FdSet true_fds = DiscoverFds(clean, tane).ValueOrDie();
    ErrorGenOptions errors;
    errors.model = ErrorModel::kSystematic;
    errors.error_rate = 0.15;
    errors.seed = 6;
    DirtyDataset dataset = InjectErrors(clean, true_fds, errors).ValueOrDie();
    SessionConfig config;
    config.candidate_options.max_lhs_size = 3;
    config.candidate_options.num_threads = threads;
    return Session::Create(clean, std::move(dataset), config).ValueOrDie();
  };
  Session serial = make_session(1);
  Session parallel = make_session(4);
  ASSERT_EQ(serial.candidates().fds(), parallel.candidates().fds());

  std::vector<std::unique_ptr<Strategy>> strategies;
  strategies.push_back(MakeCellQHittingSet());
  strategies.push_back(MakeCellQGreedy());
  strategies.push_back(MakeCellQSums());
  strategies.push_back(MakeCellQOracle());
  strategies.push_back(MakeFdQBudgetedMaxCoverage());
  strategies.push_back(MakeFdQGreedy());
  strategies.push_back(MakeFdQOracle());
  strategies.push_back(MakeTupleSamplingUniform());
  strategies.push_back(MakeTupleSamplingViolationWeighting());
  strategies.push_back(MakeTupleSamplingSaturationSets());
  strategies.push_back(MakeTupleQOracle());
  for (const auto& strategy : strategies) {
    ExpectReportsEqual(serial.Run(*strategy, 60.0),
                       parallel.Run(*strategy, 60.0));
  }
}

// --- incremental weighted sampling ----------------------------------------

// Records the tuple-question sequence while delegating to a real expert.
class RecordingExpert : public Expert {
 public:
  explicit RecordingExpert(Expert* inner) : inner_(inner) {}
  Answer IsCellErroneous(const Cell& cell) override {
    return inner_->IsCellErroneous(cell);
  }
  Answer IsTupleClean(TupleId row) override {
    rows.push_back(row);
    return inner_->IsTupleClean(row);
  }
  Answer IsFdValid(const Fd& fd) override { return inner_->IsFdValid(fd); }

  std::vector<TupleId> rows;

 private:
  Expert* inner_;
};

// The pre-incremental draw: re-sums the remaining weighted mass over the
// unasked tuples before every draw (the O(n)-per-question reference the
// WeightedDraw sampler replaced).
TupleId ReferenceDrawUnasked(Rng& rng, const std::vector<double>& weights,
                             const std::vector<bool>& asked) {
  double remaining = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    if (!asked[i]) remaining += weights[i];
  }
  if (remaining <= 0.0) {
    for (size_t i = 0; i < weights.size(); ++i) {
      if (!asked[i]) return static_cast<TupleId>(i);
    }
    return -1;
  }
  double r = rng.NextDouble() * remaining;
  for (size_t i = 0; i < weights.size(); ++i) {
    if (asked[i]) continue;
    r -= weights[i];
    if (r < 0.0) return static_cast<TupleId>(i);
  }
  for (size_t i = weights.size(); i-- > 0;) {
    if (!asked[i]) return static_cast<TupleId>(i);
  }
  return -1;
}

TEST(IncrementalSamplingTest, ViolationWeightedDrawSequenceMatchesReference) {
  Session session = testing::MakeHospitalSession(400);
  const Relation& dirty = session.dirty();
  const int m = dirty.NumAttributes();

  // Run the production strategy with a recording expert.
  SimulatedExpert expert(&session.true_violations(), &session.truth(), m,
                         session.true_fds());
  RecordingExpert recorder(&expert);
  QuestionContext ctx;
  ctx.dirty = &dirty;
  ctx.candidates = &session.candidates();
  ctx.expert = &recorder;
  ctx.budget = 60.0;
  ctx.exact_fds = &session.exact_fds();
  TupleStrategyOptions options;
  auto strategy = MakeTupleSamplingViolationWeighting(options);
  (void)strategy->Run(ctx);
  ASSERT_FALSE(recorder.rows.empty());

  // Predict the ask sequence with the reference (re-summing) sampler: same
  // weights, same rng seed, same budget loop, same deterministic expert.
  std::vector<int> counts =
      ViolationCountPerTuple(dirty, session.candidates());
  const double total = static_cast<double>(session.candidates().Size());
  std::vector<double> weights(counts.size());
  bool any_positive = false;
  for (size_t i = 0; i < counts.size(); ++i) {
    weights[i] = std::max(0.0, total - counts[i]);
    any_positive = any_positive || weights[i] > 0.0;
  }
  if (!any_positive) std::fill(weights.begin(), weights.end(), 1.0);

  SimulatedExpert reference_expert(&session.true_violations(),
                                   &session.truth(), m, session.true_fds());
  Rng rng(options.seed);
  const double cost = ctx.cost.TupleCost(m);
  std::vector<bool> asked(static_cast<size_t>(dirty.NumRows()), false);
  std::vector<TupleId> predicted;
  double spent = 0.0;
  while (spent + cost <= ctx.budget) {
    TupleId t = ReferenceDrawUnasked(rng, weights, asked);
    if (t < 0) break;
    asked[static_cast<size_t>(t)] = true;
    (void)reference_expert.IsTupleClean(t);
    predicted.push_back(t);
    spent += cost;
  }
  EXPECT_EQ(recorder.rows, predicted);
}

}  // namespace
}  // namespace uguide
