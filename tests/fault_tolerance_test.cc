// Fault-injection registry, session journal, retry stack, and the
// kill/resume determinism contract: a session crashed after any question k
// and resumed from its journal must finish with a report bit-identical to
// an uninterrupted run.

#include <gtest/gtest.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "core/cell_strategies.h"
#include "core/fd_strategies.h"
#include "core/session.h"
#include "core/session_journal.h"
#include "core/tuple_strategies.h"
#include "common/fault_injection.h"
#include "oracle/resilient_expert.h"
#include "test_util.h"

namespace uguide {
namespace {

using ::uguide::testing::MakeHospitalSession;

// Every test leaves the process-global registry clean.
class FaultRegistryTest : public ::testing::Test {
 protected:
  void TearDown() override { FaultRegistry::Global().Reset(); }
};

// --- Fault plan parsing -----------------------------------------------------

TEST_F(FaultRegistryTest, ParsesPlanClauses) {
  FaultRegistry& reg = FaultRegistry::Global();
  ASSERT_TRUE(reg.LoadPlan("oracle.answer=unavailable@1-3; seed=9;"
                           "disk.write=latency:25@p0.5;"
                           "session.record=crash@4")
                  .ok());
  EXPECT_TRUE(reg.enabled());
  std::vector<FaultRule> rules = reg.rules();
  ASSERT_EQ(rules.size(), 3u);
  EXPECT_EQ(rules[0].site, "oracle.answer");
  EXPECT_EQ(rules[0].action, FaultAction::kUnavailable);
  EXPECT_EQ(rules[0].first_hit, 1);
  EXPECT_EQ(rules[0].last_hit, 3);
  EXPECT_EQ(rules[1].site, "disk.write");
  EXPECT_EQ(rules[1].action, FaultAction::kLatency);
  EXPECT_EQ(rules[1].latency_ms, 25.0);
  EXPECT_TRUE(rules[1].probabilistic);
  EXPECT_EQ(rules[1].probability, 0.5);
  EXPECT_EQ(rules[2].action, FaultAction::kCrash);
  EXPECT_EQ(rules[2].first_hit, 4);
  EXPECT_EQ(rules[2].last_hit, 4);
}

TEST_F(FaultRegistryTest, RejectsMalformedPlans) {
  FaultRegistry& reg = FaultRegistry::Global();
  EXPECT_FALSE(reg.LoadPlan("site").ok());
  EXPECT_FALSE(reg.LoadPlan("site=explode").ok());
  EXPECT_FALSE(reg.LoadPlan("site=latency").ok());
  EXPECT_FALSE(reg.LoadPlan("site=unavailable@").ok());
  EXPECT_FALSE(reg.LoadPlan("site=unavailable@5-3").ok());
  EXPECT_FALSE(reg.LoadPlan("seed=abc").ok());
  EXPECT_FALSE(reg.enabled());  // a failed load leaves the registry off
}

TEST_F(FaultRegistryTest, RejectsNumericallyHostilePlans) {
  // Fuzz-surfaced hardening (also under fuzz/corpus/fault_plan): values
  // that parse as doubles but whose later use was UB must fail the load.
  FaultRegistry& reg = FaultRegistry::Global();
  EXPECT_FALSE(reg.LoadPlan("seed=1e300").ok());   // u64 cast overflowed
  EXPECT_FALSE(reg.LoadPlan("seed=-1").ok());
  EXPECT_FALSE(reg.LoadPlan("x=latency:inf").ok());   // clock cast UB
  EXPECT_FALSE(reg.LoadPlan("x=latency:1e300").ok());
  EXPECT_FALSE(reg.LoadPlan("x=latency:nan").ok());
  EXPECT_FALSE(reg.LoadPlan("x=unavailable@pnan").ok());  // NaN probability
  EXPECT_FALSE(reg.enabled());
  // Sane numeric values still load.
  EXPECT_TRUE(reg.LoadPlan("seed=18446744073709551615").ok());
  EXPECT_TRUE(reg.LoadPlan("x=latency:50.5").ok());
}

TEST_F(FaultRegistryTest, EmptyPlanDisables) {
  FaultRegistry& reg = FaultRegistry::Global();
  ASSERT_TRUE(reg.LoadPlan("x=unavailable").ok());
  EXPECT_TRUE(reg.enabled());
  ASSERT_TRUE(reg.LoadPlan("").ok());
  EXPECT_FALSE(reg.enabled());
}

// --- Fault firing -----------------------------------------------------------

TEST_F(FaultRegistryTest, HitRangeTriggerFiresOnExactHits) {
  FaultRegistry& reg = FaultRegistry::Global();
  ASSERT_TRUE(reg.LoadPlan("x=unavailable@2-3").ok());
  EXPECT_TRUE(reg.OnPoint("x").ok());  // hit 1
  Status second = reg.OnPoint("x");    // hit 2
  EXPECT_TRUE(second.IsUnavailable());
  EXPECT_TRUE(reg.OnPoint("x").IsUnavailable());  // hit 3
  EXPECT_TRUE(reg.OnPoint("x").ok());             // hit 4
  EXPECT_EQ(reg.HitCount("x"), 4);
  EXPECT_EQ(reg.HitCount("other"), 0);
}

TEST_F(FaultRegistryTest, OpenEndedTriggerFiresFromHitOn) {
  FaultRegistry& reg = FaultRegistry::Global();
  ASSERT_TRUE(reg.LoadPlan("x=unavailable@3+").ok());
  EXPECT_TRUE(reg.OnPoint("x").ok());
  EXPECT_TRUE(reg.OnPoint("x").ok());
  EXPECT_TRUE(reg.OnPoint("x").IsUnavailable());
  EXPECT_TRUE(reg.OnPoint("x").IsUnavailable());
}

TEST_F(FaultRegistryTest, LatencyAdvancesVirtualClockOnly) {
  FaultRegistry& reg = FaultRegistry::Global();
  ASSERT_TRUE(reg.LoadPlan("slow=latency:250").ok());
  const auto before = reg.Now();
  EXPECT_TRUE(reg.OnPoint("slow").ok());  // latency is not a failure
  const double advanced_ms =
      std::chrono::duration<double, std::milli>(reg.Now() - before).count();
  // The virtual clock jumped by the injected latency without sleeping;
  // allow real elapsed time on top.
  EXPECT_GE(advanced_ms, 250.0);
  EXPECT_LT(advanced_ms, 1250.0);
}

TEST_F(FaultRegistryTest, ProbabilisticTriggerIsSeedDeterministic) {
  FaultRegistry& reg = FaultRegistry::Global();
  auto pattern = [&] {
    std::vector<bool> fired;
    for (int i = 0; i < 64; ++i) fired.push_back(!reg.OnPoint("p").ok());
    return fired;
  };
  ASSERT_TRUE(reg.LoadPlan("p=unavailable@p0.4;seed=7").ok());
  const std::vector<bool> first = pattern();
  ASSERT_TRUE(reg.LoadPlan("p=unavailable@p0.4;seed=7").ok());
  EXPECT_EQ(pattern(), first);
  int fired = 0;
  for (bool b : first) fired += b ? 1 : 0;
  EXPECT_GT(fired, 10);  // ~0.4 * 64 = 25.6
  EXPECT_LT(fired, 45);
}

// --- Journal format ---------------------------------------------------------

TEST(JournalFormatTest, RecordsRoundTripExactly) {
  JournalRecord cell;
  cell.kind = QuestionKind::kCell;
  cell.cell = Cell{123, 4};
  cell.answer = Answer::kYes;
  cell.cost = 0.1 + 0.2;  // not representable: hexfloat must round-trip it

  JournalRecord tuple;
  tuple.kind = QuestionKind::kTuple;
  tuple.row = 77;
  tuple.answer = Answer::kIdk;
  tuple.cost = 15.0;

  JournalRecord fd;
  fd.kind = QuestionKind::kFd;
  fd.fd = Fd({0, 2, 5}, 3);
  fd.answer = Answer::kNo;
  fd.cost = 12.75;

  for (const JournalRecord& record : {cell, tuple, fd}) {
    Result<JournalRecord> parsed =
        ParseJournalRecord(FormatJournalRecord(record));
    ASSERT_TRUE(parsed.ok()) << FormatJournalRecord(record);
    EXPECT_TRUE(*parsed == record) << FormatJournalRecord(record);
  }
}

TEST(JournalFormatTest, HeaderRoundTripsExactly) {
  JournalHeader header;
  header.strategy_name = "FDQ-BMC";
  header.budget = 123.456;
  header.expert_seed = 987654321;
  header.expert_votes = 3;
  header.idk_rate = 0.1;
  header.wrong_rate = 0.05;
  Result<JournalHeader> parsed =
      ParseJournalHeader(FormatJournalHeader(header));
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed->Matches(header));
  header.budget += 1.0;
  EXPECT_FALSE(parsed->Matches(header));
}

TEST(JournalFormatTest, RejectsMalformedRecords) {
  EXPECT_FALSE(ParseJournalRecord("").ok());
  EXPECT_FALSE(ParseJournalRecord("z 1 2 yes 0x1p+0").ok());
  EXPECT_FALSE(ParseJournalRecord("c 1 yes 0x1p+0").ok());
  EXPECT_FALSE(ParseJournalRecord("c 1 2 maybe 0x1p+0").ok());
  EXPECT_FALSE(ParseJournalRecord("t 5 yes nonsense").ok());
}

TEST(JournalFileTest, WriterProducesLoadableJournal) {
  const std::string path = ::testing::TempDir() + "/uguide_journal_rt.log";
  JournalHeader header;
  header.strategy_name = "test";
  header.budget = 50.0;
  JournalRecord record;
  record.kind = QuestionKind::kTuple;
  record.row = 9;
  record.answer = Answer::kNo;
  record.cost = 15.0;
  {
    Result<JournalWriter> writer =
        JournalWriter::Open(path, header, /*resume=*/false);
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE(writer->Append(record).ok());
    ASSERT_TRUE(writer->Close().ok());
  }
  Result<LoadedJournal> loaded = LoadJournal(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_TRUE(loaded->header.Matches(header));
  ASSERT_EQ(loaded->records.size(), 1u);
  EXPECT_TRUE(loaded->records[0] == record);
  EXPECT_FALSE(loaded->torn_tail);
}

TEST(JournalFileTest, TornTailIsDroppedNotFatal) {
  const std::string path = ::testing::TempDir() + "/uguide_journal_torn.log";
  {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fputs("uguide-journal v=1 strategy=s budget=0x1p+5 seed=1 votes=1 "
               "idk=0x0p+0 wrong=0x0p+0\n",
               f);
    std::fputs("t 3 yes 0x1.ep+3\n", f);
    std::fputs("c 1 2 no 0x1p", f);  // torn mid-write: no newline
    std::fclose(f);
  }
  Result<LoadedJournal> loaded = LoadJournal(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->records.size(), 1u);
  EXPECT_TRUE(loaded->torn_tail);
}

TEST(JournalFileTest, MidFileCorruptionIsFatal) {
  const std::string path = ::testing::TempDir() + "/uguide_journal_bad.log";
  {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fputs("uguide-journal v=1 strategy=s budget=0x1p+5 seed=1 votes=1 "
               "idk=0x0p+0 wrong=0x0p+0\n",
               f);
    std::fputs("garbage line\n", f);
    std::fputs("t 3 yes 0x1.ep+3\n", f);
    std::fclose(f);
  }
  Result<LoadedJournal> loaded = LoadJournal(path);
  EXPECT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().message().find("line 2"), std::string::npos)
      << loaded.status().message();
}

TEST(JournalHeaderTest, ValidateNamesFirstMismatchingField) {
  JournalHeader expected;
  expected.strategy_name = "fd-budgeted-max-coverage";
  expected.budget = 500.0;
  expected.expert_seed = 11;
  expected.expert_votes = 1;

  EXPECT_TRUE(ValidateJournalHeader(expected, expected).ok());

  JournalHeader wrong_seed = expected;
  wrong_seed.expert_seed = 12;
  Status st = ValidateJournalHeader(expected, wrong_seed);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  // Descriptive: names the field and both values, so a failed resume says
  // exactly which knob diverged.
  EXPECT_NE(st.message().find("field 'seed'"), std::string::npos)
      << st.message();
  EXPECT_NE(st.message().find("expected 11"), std::string::npos)
      << st.message();
  EXPECT_NE(st.message().find("found 12"), std::string::npos) << st.message();

  JournalHeader wrong_strategy = expected;
  wrong_strategy.strategy_name = "cell-q-sums";
  st = ValidateJournalHeader(expected, wrong_strategy);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("field 'strategy'"), std::string::npos)
      << st.message();
  EXPECT_NE(st.message().find("cell-q-sums"), std::string::npos)
      << st.message();

  JournalHeader wrong_budget = expected;
  wrong_budget.budget = 750.0;
  st = ValidateJournalHeader(expected, wrong_budget);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("field 'budget'"), std::string::npos)
      << st.message();
}

TEST(JournalParseTest, RejectsHostileRecords) {
  const char* kHeader =
      "uguide-journal v=1 strategy=s budget=0x1p+5 seed=1 votes=1 "
      "idk=0x0p+0 wrong=0x0p+0\n";
  // Each of these once crashed (or DCHECK-aborted) the loader instead of
  // failing cleanly; they are also checked in under fuzz/corpus/journal.
  const char* kHostile[] = {
      "c -2147483648 0 yes 0x0p+0\n",  // negation overflow in ParseInt
      "f 0 99 yes 0x0p+0\n",           // rhs out of AttributeSet range
      "c 1 9999999999 yes 0x0p+0\n",   // col overflows int
      "t -5 yes 0x0p+0\n",             // negative row
      "f zz 1 yes 0x0p+0\n",           // non-hex mask
  };
  for (const char* line : kHostile) {
    const std::string text = std::string(kHeader) + line;
    Result<LoadedJournal> loaded = ParseJournalText(text, "test");
    // A lone malformed final record is indistinguishable from a torn tail
    // (dropped, load succeeds); followed by a valid record it must fail.
    const std::string mid = text + "t 3 yes 0x1p+0\n";
    Result<LoadedJournal> strict = ParseJournalText(mid, "test");
    EXPECT_FALSE(strict.ok()) << line;
    if (loaded.ok()) {
      EXPECT_TRUE(loaded->torn_tail) << line;
      EXPECT_TRUE(loaded->records.empty()) << line;
    }
  }
}

// --- Retry / degradation ----------------------------------------------------

TEST_F(FaultRegistryTest, PermanentUnavailabilityDegradesToIdk) {
  ASSERT_TRUE(
      FaultRegistry::Global().LoadPlan("oracle.answer=unavailable").ok());
  Session session = MakeHospitalSession(400);
  auto strategy = MakeFdQBudgetedMaxCoverage({});
  SessionRunOptions options;
  options.resilient = true;
  Result<SessionReport> report = session.Run(*strategy, 60.0, options);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  // Every question exhausted its retries and degraded to "I don't know" —
  // the session completed instead of failing.
  EXPECT_GT(report->result.questions_asked, 0);
  EXPECT_EQ(report->questions_exhausted, report->result.questions_asked);
  EXPECT_EQ(report->result.accepted_fds.Size(), 0u);
  // Retries carry an honest surcharge.
  EXPECT_GT(report->retry_cost, 0.0);
  EXPECT_GT(report->result.cost_spent, 0.0);
}

TEST_F(FaultRegistryTest, TransientUnavailabilityIsRetriedThrough) {
  // Only the first two answers fail; retries absorb them and the session
  // matches the fault-free run.
  Session session = MakeHospitalSession(400);
  auto strategy = MakeFdQBudgetedMaxCoverage({});
  SessionReport baseline = session.Run(*strategy, 60.0);

  ASSERT_TRUE(
      FaultRegistry::Global().LoadPlan("oracle.answer=unavailable@1-2").ok());
  SessionRunOptions options;
  options.resilient = true;
  Result<SessionReport> report = session.Run(*strategy, 60.0, options);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->questions_exhausted, 0);
  EXPECT_GT(report->retry_cost, 0.0);
  EXPECT_EQ(report->result.questions_asked, baseline.result.questions_asked);
  EXPECT_EQ(report->result.accepted_fds.fds(),
            baseline.result.accepted_fds.fds());
  // Nominal spend plus the surcharge for the two retried answers.
  EXPECT_EQ(report->result.cost_spent - report->retry_cost,
            baseline.result.cost_spent);
}

TEST_F(FaultRegistryTest, LatencyPastDeadlineTimesOut) {
  ASSERT_TRUE(
      FaultRegistry::Global().LoadPlan("oracle.answer=latency:50").ok());
  Session session = MakeHospitalSession(400);
  auto strategy = MakeFdQBudgetedMaxCoverage({});
  SessionRunOptions options;
  options.resilient = true;
  options.retry.question_deadline_ms = 20.0;  // every answer arrives late
  Result<SessionReport> report = session.Run(*strategy, 60.0, options);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_GT(report->result.questions_asked, 0);
  EXPECT_EQ(report->questions_exhausted, report->result.questions_asked);
  EXPECT_EQ(report->result.accepted_fds.Size(), 0u);
}

TEST_F(FaultRegistryTest, DiscoveryDeadlineTruncatesCandidates) {
  DataGenOptions data;
  data.rows = 300;
  data.seed = 5;
  Relation clean = GenerateHospital(data);

  // Injected latency pushes discovery past its deadline deterministically.
  ASSERT_TRUE(
      FaultRegistry::Global().LoadPlan("discovery.level=latency:100").ok());
  CandidateGenOptions options;
  options.max_lhs_size = 3;
  options.discovery_deadline_ms = 50.0;
  Result<CandidateSet> truncated = GenerateCandidates(clean, options);
  ASSERT_TRUE(truncated.ok());
  EXPECT_TRUE(truncated->truncated);

  // Same plan, no deadline: latency alone never truncates.
  options.discovery_deadline_ms = 0.0;
  Result<CandidateSet> full = GenerateCandidates(clean, options);
  ASSERT_TRUE(full.ok());
  EXPECT_FALSE(full->truncated);
  EXPECT_GE(full->candidates.Size(), truncated->candidates.Size());
}

// --- Kill/resume determinism ------------------------------------------------

struct NamedStrategy {
  const char* label;
  std::unique_ptr<Strategy> (*make)();
};

std::unique_ptr<Strategy> MakeFd() { return MakeFdQBudgetedMaxCoverage({}); }
std::unique_ptr<Strategy> MakeCell() { return MakeCellQSums({}); }
std::unique_ptr<Strategy> MakeTuple() {
  return MakeTupleSamplingSaturationSets({});
}

// Crash the process (exit code 42, via the fault registry) right after the
// k-th journal record is durable, then resume from the journal and require
// a report bit-identical to the uninterrupted baseline.
void RunKillResume(const NamedStrategy& named, int k) {
  SCOPED_TRACE(std::string(named.label) + " crash@" + std::to_string(k));
  // idk_rate > 0 makes the expert's RNG state load-bearing: resume is only
  // bit-identical because replayed questions still advance the live expert.
  Session session = MakeHospitalSession(400, ErrorModel::kSystematic,
                                        /*error_rate=*/0.15, /*seed=*/5,
                                        /*idk_rate=*/0.1);
  auto strategy = named.make();
  const double budget = 60.0;
  SessionReport baseline = session.Run(*strategy, budget);

  const std::string path = ::testing::TempDir() + "/uguide_killresume_" +
                           named.label + "_" + std::to_string(k) + ".log";
  std::remove(path.c_str());

  const pid_t child = fork();
  ASSERT_GE(child, 0);
  if (child == 0) {
    // Child: journal the run and die after record k. The session runs
    // single-threaded, so fork-without-exec is safe here.
    FaultRegistry::Global()
        .LoadPlan("session.record=crash@" + std::to_string(k))
        .IgnoreError();
    auto child_strategy = named.make();
    SessionRunOptions options;
    options.journal_path = path;
    Result<SessionReport> r = session.Run(*child_strategy, budget, options);
    // Fewer than k questions: the crash never fired, which is fine — the
    // journal is then simply complete.
    std::_Exit(r.ok() ? 0 : 3);
  }
  int wait_status = 0;
  ASSERT_EQ(waitpid(child, &wait_status, 0), child);
  ASSERT_TRUE(WIFEXITED(wait_status));
  const int exit_code = WEXITSTATUS(wait_status);
  ASSERT_TRUE(exit_code == FaultRegistry::kCrashExitCode || exit_code == 0)
      << "child exited with " << exit_code;

  // Resume in this process (no fault plan loaded here).
  auto resumed_strategy = named.make();
  SessionRunOptions options;
  options.journal_path = path;
  options.resume = true;
  Result<SessionReport> resumed =
      session.Run(*resumed_strategy, budget, options);
  ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
  if (exit_code == FaultRegistry::kCrashExitCode) {
    EXPECT_EQ(resumed->questions_replayed, k);
  }

  // Bit-identical to the uninterrupted run.
  EXPECT_EQ(resumed->result.questions_asked, baseline.result.questions_asked);
  EXPECT_EQ(resumed->result.cost_spent, baseline.result.cost_spent);
  EXPECT_EQ(resumed->result.accepted_fds.fds(),
            baseline.result.accepted_fds.fds());
  EXPECT_EQ(resumed->metrics.detections, baseline.metrics.detections);
  EXPECT_EQ(resumed->metrics.true_positives, baseline.metrics.true_positives);
  EXPECT_EQ(resumed->metrics.false_positives,
            baseline.metrics.false_positives);
}

TEST(KillResumeTest, FdStrategyResumesBitIdentical) {
  for (int k : {1, 3, 8}) RunKillResume({"fd", &MakeFd}, k);
}

TEST(KillResumeTest, CellStrategyResumesBitIdentical) {
  for (int k : {1, 3, 8}) RunKillResume({"cell", &MakeCell}, k);
}

TEST(KillResumeTest, TupleStrategyResumesBitIdentical) {
  for (int k : {1, 3, 8}) RunKillResume({"tuple", &MakeTuple}, k);
}

// --- Resume validation ------------------------------------------------------

TEST(ResumeValidationTest, ResumeRequiresJournalPath) {
  Session session = MakeHospitalSession(400);
  auto strategy = MakeFdQBudgetedMaxCoverage({});
  SessionRunOptions options;
  options.resume = true;
  EXPECT_FALSE(session.Run(*strategy, 60.0, options).ok());
}

TEST(ResumeValidationTest, HeaderMismatchIsRejected) {
  Session session = MakeHospitalSession(400);
  auto strategy = MakeFdQBudgetedMaxCoverage({});
  const std::string path = ::testing::TempDir() + "/uguide_mismatch.log";
  SessionRunOptions record;
  record.journal_path = path;
  ASSERT_TRUE(session.Run(*strategy, 60.0, record).ok());

  SessionRunOptions resume;
  resume.journal_path = path;
  resume.resume = true;
  // Different budget: the journal no longer describes this run.
  Result<SessionReport> r = session.Run(*strategy, 61.0, resume);
  EXPECT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("different session configuration"),
            std::string::npos)
      << r.status().ToString();
  // Matching configuration resumes fine.
  EXPECT_TRUE(session.Run(*strategy, 60.0, resume).ok());
}

TEST(ResumeValidationTest, JournaledRunMatchesPlainRun) {
  // Journaling must be observationally free: same questions, same report.
  Session session = MakeHospitalSession(400);
  auto strategy = MakeCellQSums({});
  SessionReport plain = session.Run(*strategy, 40.0);
  const std::string path = ::testing::TempDir() + "/uguide_journal_free.log";
  SessionRunOptions options;
  options.journal_path = path;
  Result<SessionReport> journaled = session.Run(*strategy, 40.0, options);
  ASSERT_TRUE(journaled.ok());
  EXPECT_EQ(journaled->result.cost_spent, plain.result.cost_spent);
  EXPECT_EQ(journaled->result.questions_asked, plain.result.questions_asked);
  EXPECT_EQ(journaled->result.accepted_fds.fds(),
            plain.result.accepted_fds.fds());
  // And the journal holds exactly the questions that were asked.
  Result<LoadedJournal> loaded = LoadJournal(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(static_cast<int>(loaded->records.size()),
            plain.result.questions_asked);
}

}  // namespace
}  // namespace uguide
