#include <gtest/gtest.h>

#include "core/candidate_gen.h"
#include "datagen/generators.h"
#include "discovery/partition.h"
#include "fd/closure.h"

namespace uguide {
namespace {

Relation SmallHospital() {
  DataGenOptions opts;
  opts.rows = 800;
  opts.seed = 31;
  return GenerateHospital(opts);
}

TEST(CandidateGenTest, ExactFdsAreWithinCandidatesClosure) {
  Relation dirty = SmallHospital();  // clean data is a valid "dirty" input
  CandidateGenOptions opts;
  opts.max_lhs_size = 3;
  CandidateSet result = GenerateCandidates(dirty, opts).ValueOrDie();
  // Every exact FD must be implied by the candidate AFD set (candidates
  // are generalizations at a weaker threshold).
  ClosureEngine candidate_closure(result.candidates);
  for (const Fd& fd : result.exact) {
    EXPECT_TRUE(candidate_closure.Implies(fd)) << fd.ToString();
  }
}

TEST(CandidateGenTest, CandidatesRespectThreshold) {
  Relation dirty = SmallHospital();
  CandidateGenOptions opts;
  opts.max_lhs_size = 2;
  opts.relax_threshold = 0.15;
  CandidateSet result = GenerateCandidates(dirty, opts).ValueOrDie();
  PartitionCache cache(&dirty);
  for (const Fd& fd : result.candidates) {
    EXPECT_LE(cache.FdError(fd), 0.15) << fd.ToString();
    EXPECT_LE(fd.lhs.Size(), 2);
  }
}

TEST(CandidateGenTest, CandidatesAreMinimal) {
  Relation dirty = SmallHospital();
  CandidateGenOptions opts;
  opts.max_lhs_size = 2;
  CandidateSet result = GenerateCandidates(dirty, opts).ValueOrDie();
  for (const Fd& fd : result.candidates) {
    EXPECT_TRUE(result.candidates.IsMinimalIn(fd)) << fd.ToString();
  }
}

TEST(CandidateGenTest, RejectsBadThreshold) {
  Relation dirty = SmallHospital();
  CandidateGenOptions opts;
  opts.relax_threshold = 1.0;
  EXPECT_FALSE(GenerateCandidates(dirty, opts).ok());
}

TEST(CandidateGenTest, EmptyRelationYieldsNoCandidates) {
  Relation empty(Schema::Make({"a", "b"}).ValueOrDie());
  CandidateSet result = GenerateCandidates(empty, {}).ValueOrDie();
  EXPECT_TRUE(result.exact.Empty());
  EXPECT_TRUE(result.candidates.Empty());
}

TEST(CandidateGenTest, ThresholdZeroEqualsExactDiscovery) {
  Relation dirty = SmallHospital();
  CandidateGenOptions opts;
  opts.max_lhs_size = 2;
  opts.relax_threshold = 0.0;
  CandidateSet result = GenerateCandidates(dirty, opts).ValueOrDie();
  EXPECT_EQ(result.candidates.Size(), result.exact.Size());
  for (const Fd& fd : result.exact) {
    EXPECT_TRUE(result.candidates.Contains(fd)) << fd.ToString();
  }
}

}  // namespace
}  // namespace uguide
