# End-to-end smoke test of the serving pair: boot uguided on an ephemeral
# port, drive 16 concurrent sessions through uguide_loadgen (which checks
# every served report byte-equal to its in-process reference), SIGTERM the
# daemon, and require a graceful drain plus zero journal corruption.
#
# Run via `cmake -P`; the process orchestration (background daemon, port
# handshake, signal, wait) needs a shell, so the script body runs under
# bash — present on every platform this repo's CI targets.
#
# Inputs: -DUGUIDED=<binary> -DLOADGEN=<binary> -DWORK_DIR=<scratch dir>

if(NOT UGUIDED OR NOT LOADGEN OR NOT WORK_DIR)
  message(FATAL_ERROR "serving_smoke: UGUIDED, LOADGEN and WORK_DIR are "
                      "required")
endif()

find_program(BASH_PROGRAM bash)
if(NOT BASH_PROGRAM)
  message(FATAL_ERROR "serving_smoke: bash not found")
endif()

file(REMOVE_RECURSE "${WORK_DIR}")
file(MAKE_DIRECTORY "${WORK_DIR}")
file(MAKE_DIRECTORY "${WORK_DIR}/journals")

# $1 = uguided, $2 = uguide_loadgen. The dataset flags must match between
# the two processes (shared recipe, src/server/dataset.h).
file(WRITE "${WORK_DIR}/smoke.sh" [=[
uguided="$1"
loadgen="$2"

"$uguided" --port=0 --port-file=port.txt --journal-dir=journals \
  --max-sessions=32 --rows=200 --budget=16 >daemon.log 2>&1 &
daemon_pid=$!

for _ in $(seq 1 240); do
  [ -s port.txt ] && break
  kill -0 "$daemon_pid" 2>/dev/null || break
  sleep 0.25
done
if ! [ -s port.txt ]; then
  echo "serving_smoke: daemon never published its port" >&2
  cat daemon.log >&2
  kill "$daemon_pid" 2>/dev/null
  exit 1
fi

"$loadgen" --port="$(cat port.txt)" --sessions=16 --concurrency=16 \
  --strategy=all --rows=200 --budget=16 --check-journals=journals
loadgen_rc=$?

kill -TERM "$daemon_pid"
wait "$daemon_pid"
daemon_rc=$?
cat daemon.log

if [ "$loadgen_rc" -ne 0 ]; then
  echo "serving_smoke: loadgen failed (rc=$loadgen_rc)" >&2
  exit 1
fi
if [ "$daemon_rc" -ne 0 ]; then
  echo "serving_smoke: daemon did not drain cleanly (rc=$daemon_rc)" >&2
  exit 1
fi
if ! grep -q "finished=16" daemon.log; then
  echo "serving_smoke: daemon summary disagrees with loadgen" >&2
  exit 1
fi
exit 0
]=])

execute_process(
  COMMAND "${BASH_PROGRAM}" "${WORK_DIR}/smoke.sh" "${UGUIDED}" "${LOADGEN}"
  WORKING_DIRECTORY "${WORK_DIR}"
  RESULT_VARIABLE exit_code
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err)

message(STATUS "serving_smoke stdout:\n${out}")
if(err)
  message(STATUS "serving_smoke stderr:\n${err}")
endif()
if(NOT exit_code STREQUAL "0")
  message(FATAL_ERROR "serving_smoke: failed with exit code ${exit_code}")
endif()
