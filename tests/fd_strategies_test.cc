#include <gtest/gtest.h>

#include "core/fd_strategies.h"
#include "core/session.h"
#include "fd/closure.h"
#include "test_util.h"

namespace uguide {
namespace {

using ::uguide::testing::MakeHospitalSession;

struct FdCase {
  const char* name;
  std::unique_ptr<Strategy> (*make)(const FdStrategyOptions&);
};

class FdStrategyTest : public ::testing::TestWithParam<FdCase> {};

TEST_P(FdStrategyTest, RespectsBudget) {
  Session session = MakeHospitalSession(800);
  auto strategy = GetParam().make({});
  SessionReport report = session.Run(*strategy, 40.0);
  EXPECT_LE(report.result.cost_spent, 40.0);
}

TEST_P(FdStrategyTest, ZeroBudgetAcceptsNothing) {
  Session session = MakeHospitalSession(600);
  auto strategy = GetParam().make({});
  SessionReport report = session.Run(*strategy, 0.0);
  EXPECT_EQ(report.result.questions_asked, 0);
  EXPECT_TRUE(report.result.accepted_fds.Empty());
  EXPECT_EQ(report.metrics.detections, 0u);
}

TEST_P(FdStrategyTest, AcceptedFdsAreTrue) {
  // Every accepted FD was validated by the expert, so it must be implied by
  // the true FD set. This is the "FD questions have no false positives"
  // property of §7.2.2.
  Session session = MakeHospitalSession(1000);
  auto strategy = GetParam().make({});
  SessionReport report = session.Run(*strategy, 500.0);
  ClosureEngine true_closure(session.true_fds());
  for (const Fd& fd : report.result.accepted_fds) {
    EXPECT_TRUE(true_closure.Implies(fd)) << fd.ToString();
  }
}

TEST_P(FdStrategyTest, FalseViolationRateIsLow) {
  Session session = MakeHospitalSession(1200);
  auto strategy = GetParam().make({});
  SessionReport report = session.Run(*strategy, 500.0);
  EXPECT_LE(report.metrics.FalseViolationPct(), 10.0);
}

TEST_P(FdStrategyTest, MoreBudgetDetectsAtLeastAsMuch) {
  Session session = MakeHospitalSession(1200);
  auto strategy = GetParam().make({});
  const double small =
      session.Run(*strategy, 20.0).metrics.TrueViolationPct();
  const double large =
      session.Run(*strategy, 800.0).metrics.TrueViolationPct();
  EXPECT_GE(large, small);
}

INSTANTIATE_TEST_SUITE_P(
    AllFdStrategies, FdStrategyTest,
    ::testing::Values(FdCase{"bmc", &MakeFdQBudgetedMaxCoverage},
                      FdCase{"greedy", &MakeFdQGreedy},
                      FdCase{"oracle", &MakeFdQOracle}),
    [](const ::testing::TestParamInfo<FdCase>& info) {
      return info.param.name;
    });

TEST(FdStrategyTest, BmcReachesHighRecallUnderSystematicErrors) {
  // §7.2.2 / Fig. 4(a): with systematic errors a few FDs carry most
  // violations, so BMC detects nearly everything on a moderate budget.
  Session session = MakeHospitalSession(1500, ErrorModel::kSystematic);
  auto strategy = MakeFdQBudgetedMaxCoverage({});
  SessionReport report = session.Run(*strategy, 400.0);
  EXPECT_GE(report.metrics.TrueViolationPct(), 80.0);
}

TEST(FdStrategyTest, OracleNeverAsksInvalidFds) {
  Session session = MakeHospitalSession(1000);
  auto strategy = MakeFdQOracle({});
  SessionReport report = session.Run(*strategy, 300.0);
  // Every question the oracle paid for produced an accepted FD (the expert
  // answers yes for all implied FDs when idk_rate is 0).
  EXPECT_EQ(report.result.questions_asked,
            static_cast<int>(report.result.accepted_fds.Size()));
}

TEST(FdStrategyTest, BmcBeatsGreedyOnSmallBudgets) {
  Session session = MakeHospitalSession(1500, ErrorModel::kSystematic);
  auto bmc = MakeFdQBudgetedMaxCoverage({});
  auto greedy = MakeFdQGreedy({});
  double bmc_wins = 0, rounds = 0;
  for (double budget : {30.0, 60.0, 120.0, 240.0}) {
    const double b = session.Run(*bmc, budget).metrics.TrueViolationPct();
    const double g = session.Run(*greedy, budget).metrics.TrueViolationPct();
    if (b >= g) ++bmc_wins;
    ++rounds;
  }
  EXPECT_GE(bmc_wins / rounds, 0.5);
}

TEST(FdStrategyTest, MergedQuestionsStayWithinCap) {
  Session session = MakeHospitalSession(800);
  FdStrategyOptions opts;
  opts.allow_non_minimal = true;
  opts.max_merged_candidates = 3;
  auto strategy = MakeFdQBudgetedMaxCoverage(opts);
  // Just verifying the pool construction does not blow up and still runs.
  SessionReport report = session.Run(*strategy, 200.0);
  EXPECT_GE(report.result.questions_asked, 1);
}

TEST(FdStrategyTest, IdkReducesCoverageForFixedBudget) {
  Session fluent = MakeHospitalSession(1200, ErrorModel::kSystematic, 0.15,
                                       5, /*idk_rate=*/0.0);
  Session hesitant = MakeHospitalSession(1200, ErrorModel::kSystematic, 0.15,
                                         5, /*idk_rate=*/0.8);
  auto strategy = MakeFdQBudgetedMaxCoverage({});
  const double fluent_pct =
      fluent.Run(*strategy, 150.0).metrics.TrueViolationPct();
  const double hesitant_pct =
      hesitant.Run(*strategy, 150.0).metrics.TrueViolationPct();
  EXPECT_LE(hesitant_pct, fluent_pct);
}

}  // namespace
}  // namespace uguide
