#include <gtest/gtest.h>

#include "core/fd_strategies.h"
#include "core/repair.h"
#include "core/session.h"
#include "fd/armstrong.h"
#include "test_util.h"

namespace uguide {
namespace {

using ::uguide::testing::MakeHospitalSession;

Relation MakeRelation(const std::vector<std::string>& attrs,
                      const std::vector<std::vector<std::string>>& rows) {
  Relation rel(Schema::Make(attrs).ValueOrDie());
  for (const auto& row : rows) rel.AddRow(row);
  return rel;
}

TEST(RepairTest, FixesSimpleMinority) {
  Relation dirty = MakeRelation(
      {"zip", "city"},
      {{"1", "ny"}, {"1", "ny"}, {"1", "boston"}, {"2", "la"}});
  RepairResult result = RepairWithFds(dirty, FdSet({Fd({0}, 1)}));
  ASSERT_EQ(result.repairs.size(), 1u);
  EXPECT_EQ(result.repairs[0].cell, (Cell{2, 1}));
  EXPECT_EQ(result.repairs[0].old_value, "boston");
  EXPECT_EQ(result.repairs[0].new_value, "ny");
  EXPECT_EQ(result.repaired.Value(2, 1), "ny");
  // The untouched rows stay intact.
  EXPECT_EQ(result.repaired.Value(3, 1), "la");
}

TEST(RepairTest, NoViolationsNoRepairs) {
  Relation clean = MakeRelation({"zip", "city"},
                                {{"1", "ny"}, {"1", "ny"}, {"2", "la"}});
  RepairResult result = RepairWithFds(clean, FdSet({Fd({0}, 1)}));
  EXPECT_TRUE(result.repairs.empty());
}

TEST(RepairTest, EmptyFdSetIsIdentity) {
  Relation dirty = MakeRelation({"a"}, {{"x"}, {"y"}});
  RepairResult result = RepairWithFds(dirty, FdSet());
  EXPECT_TRUE(result.repairs.empty());
  EXPECT_EQ(result.repaired.Value(0, 0), "x");
}

TEST(RepairTest, EachCellRepairedOnce) {
  // Two FDs targeting the same RHS column: the first one to touch a cell
  // wins; the second must not rewrite it again.
  Relation dirty = MakeRelation(
      {"zip", "area", "city"},
      {{"1", "a", "ny"}, {"1", "a", "ny"}, {"1", "a", "boston"}});
  RepairResult result =
      RepairWithFds(dirty, FdSet({Fd({0}, 2), Fd({1}, 2)}));
  EXPECT_EQ(result.repairs.size(), 1u);
  EXPECT_EQ(result.repaired.Value(2, 2), "ny");
}

TEST(RepairTest, RepairedTableSatisfiesFd) {
  Relation dirty = MakeRelation(
      {"zip", "city"},
      {{"1", "ny"}, {"1", "ny"}, {"1", "boston"}, {"2", "la"}, {"2", "sf"},
       {"2", "la"}});
  FdSet fds({Fd({0}, 1)});
  RepairResult result = RepairWithFds(dirty, fds);
  // After one pass with a single FD, the FD holds exactly.
  EXPECT_TRUE(FdHoldsOn(result.repaired, Fd({0}, 1)));
  EXPECT_EQ(result.repairs.size(), 2u);
}

TEST(RepairTest, EndToEndRestoresInjectedErrors) {
  Session session = MakeHospitalSession(1200);
  auto strategy = MakeFdQBudgetedMaxCoverage({});
  SessionReport report = session.Run(*strategy, 500.0);
  RepairResult repair =
      RepairWithFds(session.dirty(), report.result.accepted_fds);

  // Score against the clean table regenerated from the fixture's recipe.
  DataGenOptions data;
  data.rows = 1200;
  data.seed = 5;
  Relation clean = GenerateHospital(data);
  RepairMetrics metrics = EvaluateRepairs(clean, session.truth(), repair);
  EXPECT_GT(metrics.repairs, 0u);
  // Majority repair over expert-validated FDs should be precise; the
  // LHS-suspicion guard trades some recall for that precision (ambiguous
  // violations are left for a human pass).
  EXPECT_GE(metrics.Precision(), 0.9);
  EXPECT_GE(metrics.Recall(), 0.55);
}

TEST(RepairTest, MetricsBounds) {
  RepairMetrics m;
  EXPECT_EQ(m.Precision(), 1.0);  // vacuous
  EXPECT_EQ(m.Recall(), 1.0);     // vacuous
  m.repairs = 4;
  m.correct_repairs = 3;
  m.total_errors = 10;
  m.errors_fixed = 5;
  EXPECT_DOUBLE_EQ(m.Precision(), 0.75);
  EXPECT_DOUBLE_EQ(m.Recall(), 0.5);
}

}  // namespace
}  // namespace uguide
