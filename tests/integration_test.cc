#include <gtest/gtest.h>

#include "core/uguide.h"

namespace uguide {
namespace {

// Full pipeline — generator, discovery, injection, candidate generation,
// every strategy family — on each of the three paper datasets at small
// scale.
struct DatasetCase {
  const char* name;
  Relation (*generate)(const DataGenOptions&);
};

class PipelineTest : public ::testing::TestWithParam<DatasetCase> {
 protected:
  Session MakeSession(int rows) {
    DataGenOptions data;
    data.rows = rows;
    data.seed = 9;
    Relation clean = GetParam().generate(data);

    TaneOptions tane;
    tane.max_lhs_size = 3;
    FdSet true_fds = DiscoverFds(clean, tane).ValueOrDie();

    ErrorGenOptions errors;
    errors.model = ErrorModel::kSystematic;
    errors.error_rate = 0.12;
    DirtyDataset dirty = InjectErrors(clean, true_fds, errors).ValueOrDie();

    SessionConfig config;
    config.candidate_options.max_lhs_size = 3;
    return Session::Create(clean, std::move(dirty), config).ValueOrDie();
  }
};

TEST_P(PipelineTest, EndToEndAllStrategyFamilies) {
  Session session = MakeSession(900);
  std::vector<std::unique_ptr<Strategy>> strategies;
  strategies.push_back(MakeCellQHittingSet({}));
  strategies.push_back(MakeCellQSums({}));
  strategies.push_back(MakeCellQGreedy({}));
  strategies.push_back(MakeCellQOracle({}));
  strategies.push_back(MakeFdQBudgetedMaxCoverage({}));
  strategies.push_back(MakeFdQGreedy({}));
  strategies.push_back(MakeFdQOracle({}));
  strategies.push_back(MakeTupleSamplingUniform({}));
  strategies.push_back(MakeTupleSamplingViolationWeighting({}));
  strategies.push_back(MakeTupleSamplingSaturationSets({}));
  strategies.push_back(MakeTupleQOracle({}));

  for (auto& strategy : strategies) {
    SessionReport report = session.Run(*strategy, 400.0);
    EXPECT_LE(report.result.cost_spent, 400.0) << strategy->name();
    const DetectionMetrics& m = report.metrics;
    EXPECT_EQ(m.true_positives + m.false_positives, m.detections)
        << strategy->name();
    EXPECT_EQ(m.true_positives + m.false_negatives, m.total_true_errors)
        << strategy->name();
  }
}

TEST_P(PipelineTest, FdQuestionsDetectWithoutFalsePositives) {
  Session session = MakeSession(900);
  auto strategy = MakeFdQBudgetedMaxCoverage({});
  SessionReport report = session.Run(*strategy, 600.0);
  EXPECT_GT(report.metrics.TrueViolationPct(), 50.0);
  EXPECT_LE(report.metrics.FalseViolationPct(), 5.0);
}

TEST_P(PipelineTest, TupleQuestionsReachFullRecall) {
  Session session = MakeSession(900);
  auto strategy = MakeTupleSamplingViolationWeighting({});
  SessionReport report = session.Run(*strategy, 1500.0);
  EXPECT_GE(report.metrics.TrueViolationPct(), 99.0);
}

INSTANTIATE_TEST_SUITE_P(
    Datasets, PipelineTest,
    ::testing::Values(DatasetCase{"tax", &GenerateTax},
                      DatasetCase{"hospital", &GenerateHospital},
                      DatasetCase{"stock", &GenerateStock}),
    [](const ::testing::TestParamInfo<DatasetCase>& info) {
      return info.param.name;
    });

TEST(IntegrationTest, CsvRoundTripThroughPipeline) {
  // A relation written to CSV and read back produces identical discovery
  // results -- the on-disk format is faithful.
  DataGenOptions data;
  data.rows = 400;
  Relation original = GenerateHospital(data);
  auto reparsed = Relation::FromCsv(original.ToCsv()).ValueOrDie();
  TaneOptions tane;
  tane.max_lhs_size = 2;
  FdSet a = DiscoverFds(original, tane).ValueOrDie();
  FdSet b = DiscoverFds(reparsed, tane).ValueOrDie();
  EXPECT_EQ(a.Size(), b.Size());
  for (const Fd& fd : a) EXPECT_TRUE(b.Contains(fd)) << fd.ToString();
}

TEST(IntegrationTest, ArmstrongRelationRepresentsDiscoveredFds) {
  // Discover FDs on a generated table, build an Armstrong relation for
  // them, and verify discovery on the Armstrong relation returns an
  // equivalent FD set (the §6 duality).
  DataGenOptions data;
  data.rows = 300;
  Relation rel = GenerateStock(data);
  TaneOptions tane;
  tane.max_lhs_size = 2;
  FdSet fds = DiscoverFds(rel, tane).ValueOrDie();
  Relation armstrong = BuildArmstrongRelation(rel.schema(), fds);
  FdSet rediscovered = DiscoverFds(armstrong).ValueOrDie();
  EXPECT_TRUE(
      ClosureEngine(fds).EquivalentTo(ClosureEngine(rediscovered)));
}

}  // namespace
}  // namespace uguide
