// The admission gate in front of the serving path: per-client token
// bucket, queue-time deadline, and the memory-pressure brownout ladder —
// first at the controller level (pure verdict arithmetic on the virtual
// clock), then through SessionManager::HandleLine, where refusals must
// surface as structured error frames with a machine-readable code and a
// retry hint.

#include <gtest/gtest.h>

#include <chrono>
#include <string>

#include "common/fault_injection.h"
#include "common/memory_budget.h"
#include "server/admission.h"
#include "server/protocol.h"
#include "server/session_manager.h"
#include "test_util.h"

namespace uguide {
namespace {

using ::uguide::testing::MakeHospitalSession;

class AdmissionTest : public ::testing::Test {
 protected:
  void TearDown() override { FaultRegistry::Global().Reset(); }

  // Advances FaultRegistry::Global().Now() by `ms` without sleeping. The
  // plan is left loaded (LoadPlan zeroes the accumulated skew); nothing
  // else fires the clock.tick point, and TearDown resets the registry.
  static void AdvanceClockMs(int ms) {
    ASSERT_TRUE(FaultRegistry::Global()
                    .LoadPlan("clock.tick=latency:" + std::to_string(ms))
                    .ok());
    FaultRegistry::Global().OnPoint("clock.tick").IgnoreError();
  }

  static std::chrono::steady_clock::time_point Now() {
    return FaultRegistry::Global().Now();
  }
};

// --- Token bucket -----------------------------------------------------------

TEST_F(AdmissionTest, TokenBucketRefusesBurstsAndRefillsOnTheVirtualClock) {
  AdmissionOptions options;
  options.rate_limit_per_sec = 10.0;
  options.rate_burst = 2.0;
  AdmissionController gate(options, nullptr);

  EXPECT_TRUE(gate.Admit(ClientOp::kNext, "c1", Now()).admitted());
  EXPECT_TRUE(gate.Admit(ClientOp::kNext, "c1", Now()).admitted());
  AdmissionVerdict refused = gate.Admit(ClientOp::kNext, "c1", Now());
  ASSERT_FALSE(refused.admitted());
  EXPECT_EQ(refused.status.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(refused.code, error_code::kRateLimited);
  // The hint is the bucket deficit: one token at 10/s is at most 100ms.
  EXPECT_GE(refused.retry_after_ms, 1);
  EXPECT_LE(refused.retry_after_ms, 100);

  // Buckets are per client id; a refusal for c1 says nothing about c2.
  EXPECT_TRUE(gate.Admit(ClientOp::kNext, "c2", Now()).admitted());
  // close is exempt: a throttled client must always be able to release
  // its session.
  EXPECT_TRUE(gate.Admit(ClientOp::kClose, "c1", Now()).admitted());

  // One second of virtual time refills past the burst cap.
  AdvanceClockMs(1000);
  EXPECT_TRUE(gate.Admit(ClientOp::kNext, "c1", Now()).admitted());
  EXPECT_TRUE(gate.Admit(ClientOp::kNext, "c1", Now()).admitted());
  EXPECT_FALSE(gate.Admit(ClientOp::kNext, "c1", Now()).admitted());

  const AdmissionStats stats = gate.stats();
  EXPECT_EQ(stats.rate_limited, 2);
  EXPECT_EQ(stats.admitted, 6);
}

// --- Queue deadline ---------------------------------------------------------

TEST_F(AdmissionTest, QueueDeadlineShedsStaleWork) {
  AdmissionOptions options;
  options.queue_deadline_ms = 50.0;
  options.retry_after_ms = 123;
  AdmissionController gate(options, nullptr);

  const auto enqueued = Now();
  EXPECT_TRUE(gate.Admit(ClientOp::kNext, "c", enqueued).admitted());

  // The line sat in the reactor queue for a virtual minute: by the time
  // the worker picks it up the client has long since timed out, so the
  // step is shed rather than executed.
  AdvanceClockMs(60000);
  AdmissionVerdict shed = gate.Admit(ClientOp::kNext, "c", enqueued);
  ASSERT_FALSE(shed.admitted());
  EXPECT_EQ(shed.status.code(), StatusCode::kUnavailable);
  EXPECT_EQ(shed.code, error_code::kOverloaded);
  EXPECT_EQ(shed.retry_after_ms, 123);

  // Freshly-enqueued work is unaffected.
  EXPECT_TRUE(gate.Admit(ClientOp::kNext, "c", Now()).admitted());
  EXPECT_EQ(gate.stats().deadline_shed, 1);
}

// --- Brownout ladder --------------------------------------------------------

TEST_F(AdmissionTest, BrownoutLadderRefusesThenRecovers) {
  MemoryBudget budget(/*soft_limit_bytes=*/1000, /*hard_limit_bytes=*/2000);
  AdmissionOptions options;  // hard_fraction 0.9375 -> shedding above 1875.
  AdmissionController gate(options, &budget);

  EXPECT_EQ(gate.brownout(), BrownoutLevel::kNormal);
  EXPECT_TRUE(gate.Admit(ClientOp::kOpen, "c", Now()).admitted());

  // Over the soft limit: new opens are refused, existing sessions step.
  budget.ForceCharge(1500);
  EXPECT_EQ(gate.brownout(), BrownoutLevel::kBrownout);
  AdmissionVerdict open = gate.Admit(ClientOp::kOpen, "c", Now());
  ASSERT_FALSE(open.admitted());
  EXPECT_EQ(open.status.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(open.code, error_code::kOverloaded);
  EXPECT_GE(open.retry_after_ms, 0);
  EXPECT_TRUE(gate.Admit(ClientOp::kNext, "c", Now()).admitted());

  // Near the hard limit: non-answer ops shed too; answer still lands
  // (the expert's work is the scarce resource) and close still lands
  // (it releases memory).
  budget.ForceCharge(500);
  EXPECT_EQ(gate.brownout(), BrownoutLevel::kShedding);
  AdmissionVerdict next = gate.Admit(ClientOp::kNext, "c", Now());
  ASSERT_FALSE(next.admitted());
  EXPECT_EQ(next.code, error_code::kOverloaded);
  EXPECT_TRUE(gate.Admit(ClientOp::kAnswer, "c", Now()).admitted());
  EXPECT_TRUE(gate.Admit(ClientOp::kClose, "c", Now()).admitted());

  // Pressure released: the ladder steps back down and opens land again.
  budget.Release(2000);
  EXPECT_EQ(gate.brownout(), BrownoutLevel::kNormal);
  EXPECT_TRUE(gate.Admit(ClientOp::kOpen, "c", Now()).admitted());

  const AdmissionStats stats = gate.stats();
  EXPECT_EQ(stats.brownout_refused, 1);
  EXPECT_EQ(stats.brownout_shed, 1);
}

// --- Through the SessionManager --------------------------------------------

class AdmissionManagerTest : public AdmissionTest {
 protected:
  static void SetUpTestSuite() {
    session_ = new Session(MakeHospitalSession(120, ErrorModel::kRandom,
                                               /*error_rate=*/0.1,
                                               /*seed=*/3,
                                               /*idk_rate=*/0.0));
  }
  static void TearDownTestSuite() {
    delete session_;
    session_ = nullptr;
  }

  static std::string OpenLine(const std::string& id) {
    ClientFrame open;
    open.op = ClientOp::kOpen;
    open.id = id;
    open.strategy = "FDQ-BMC";
    open.budget = 8.0;
    open.has_budget = true;
    return FormatClientFrame(open);
  }

  static std::string NextLine(const std::string& id) {
    ClientFrame frame;
    frame.op = ClientOp::kNext;
    frame.id = id;
    return FormatClientFrame(frame);
  }

  static ServerFrame One(const std::vector<std::string>& replies) {
    EXPECT_EQ(replies.size(), 1u);
    return ParseServerFrame(replies.at(0)).ValueOrDie();
  }

  static Session* session_;
};

Session* AdmissionManagerTest::session_ = nullptr;

TEST_F(AdmissionManagerTest, RefusalFramesCarryCodeAndRetryHint) {
  SessionManagerOptions options;
  options.admission.rate_limit_per_sec = 0.5;
  options.admission.rate_burst = 1.0;
  SessionManager manager(session_, options);

  ServerFrame q = One(manager.HandleLine(OpenLine("rl1")));
  ASSERT_EQ(q.type, ServerFrameType::kQuestion);

  // The bucket is spent: the next step is refused with the structured
  // form — slug + retry hint — the loadgen's backoff keys on.
  ServerFrame refused = One(manager.HandleLine(NextLine("rl1")));
  ASSERT_EQ(refused.type, ServerFrameType::kError);
  EXPECT_EQ(refused.code, static_cast<int>(StatusCode::kResourceExhausted));
  EXPECT_EQ(refused.error_code, error_code::kRateLimited);
  EXPECT_GE(refused.retry_after_ms, 1);

  // Operator probes bypass admission: ping and health always answer.
  EXPECT_EQ(One(manager.HandleLine("{\"op\":\"ping\"}")).type,
            ServerFrameType::kPong);
  ServerFrame health = One(manager.HandleLine("{\"op\":\"health\"}"));
  ASSERT_EQ(health.type, ServerFrameType::kHealth);
  EXPECT_EQ(health.health.brownout, 0);
  EXPECT_EQ(health.health.active_sessions, 1);
  EXPECT_EQ(health.health.rate_limited, 1);
  EXPECT_EQ(health.health.opened, 1);
}

TEST_F(AdmissionManagerTest, StaleEnqueueTimestampIsShedBeforeExecution) {
  SessionManagerOptions options;
  options.admission.queue_deadline_ms = 100.0;
  options.admission.retry_after_ms = 250;
  SessionManager manager(session_, options);

  const auto stale = Now();
  AdvanceClockMs(60000);
  ServerFrame shed = One(manager.HandleLine(NextLine("qd1"), stale));
  ASSERT_EQ(shed.type, ServerFrameType::kError);
  EXPECT_EQ(shed.code, static_cast<int>(StatusCode::kUnavailable));
  EXPECT_EQ(shed.error_code, error_code::kOverloaded);
  EXPECT_EQ(shed.retry_after_ms, 250);
  EXPECT_EQ(manager.admission_stats().deadline_shed, 1);

  // A fresh timestamp reaches the manager proper (unknown session: a
  // not_found error, not an admission shed).
  ServerFrame fresh = One(manager.HandleLine(NextLine("qd1"), Now()));
  ASSERT_EQ(fresh.type, ServerFrameType::kError);
  EXPECT_EQ(fresh.error_code, "not_found");
}

TEST_F(AdmissionManagerTest, ManagerBrownoutRefusesOpensAndTightensEviction) {
  MemoryBudget budget(/*soft_limit_bytes=*/1 << 20,
                      /*hard_limit_bytes=*/4 << 20);
  SessionManagerOptions options;
  options.memory_budget = &budget;
  SessionManager manager(session_, options);

  ServerFrame q = One(manager.HandleLine(OpenLine("bo1")));
  ASSERT_EQ(q.type, ServerFrameType::kQuestion);

  budget.ForceCharge(2 << 20);  // over soft: brownout level 1
  EXPECT_EQ(manager.brownout(), BrownoutLevel::kBrownout);
  ServerFrame refused = One(manager.HandleLine(OpenLine("bo2")));
  ASSERT_EQ(refused.type, ServerFrameType::kError);
  EXPECT_EQ(refused.error_code, error_code::kOverloaded);
  EXPECT_GE(refused.retry_after_ms, 0);

  ServerFrame health = One(manager.HandleLine("{\"op\":\"health\"}"));
  ASSERT_EQ(health.type, ServerFrameType::kHealth);
  EXPECT_EQ(health.health.brownout, 1);
  EXPECT_EQ(health.health.brownout_refused, 1);

  // Recovery: release the pressure and the same open lands.
  budget.Release(2 << 20);
  EXPECT_EQ(manager.brownout(), BrownoutLevel::kNormal);
  EXPECT_EQ(One(manager.HandleLine(OpenLine("bo2"))).type,
            ServerFrameType::kQuestion);
}

}  // namespace
}  // namespace uguide
