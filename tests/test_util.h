#ifndef UGUIDE_TESTS_TEST_UTIL_H_
#define UGUIDE_TESTS_TEST_UTIL_H_

#include "core/session.h"
#include "datagen/generators.h"
#include "discovery/tane.h"
#include "errorgen/error_generator.h"

namespace uguide::testing {

/// Builds a ready-to-run Session over a generated Hospital table with
/// injected errors; the standard fixture for strategy tests.
inline Session MakeHospitalSession(
    int rows = 1200, ErrorModel model = ErrorModel::kSystematic,
    double error_rate = 0.15, uint64_t seed = 5, double idk_rate = 0.0) {
  DataGenOptions data;
  data.rows = rows;
  data.seed = seed;
  Relation clean = GenerateHospital(data);

  TaneOptions tane;
  tane.max_lhs_size = 3;
  FdSet true_fds = DiscoverFds(clean, tane).ValueOrDie();

  ErrorGenOptions errors;
  errors.model = model;
  errors.error_rate = error_rate;
  errors.seed = seed + 1;
  DirtyDataset dataset = InjectErrors(clean, true_fds, errors).ValueOrDie();

  SessionConfig config;
  config.candidate_options.max_lhs_size = 3;
  config.idk_rate = idk_rate;
  return Session::Create(clean, std::move(dataset), config).ValueOrDie();
}

}  // namespace uguide::testing

#endif  // UGUIDE_TESTS_TEST_UTIL_H_
