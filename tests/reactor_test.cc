// The epoll reactor: newline framing under pathological chunking (one byte
// per read), backpressure through the short-write/EPOLLOUT path, the
// max_connections gate, and oversize-line defense. A scripted blocking
// client plays the peer; the handler is a plain echo so the framing logic
// is observable byte-for-byte.

#include <gtest/gtest.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "common/thread_pool.h"
#include "server/reactor.h"

namespace uguide {
namespace {

// --- LineBuffer (no sockets) ------------------------------------------------

TEST(LineBufferTest, FramesOneByteAtATime) {
  LineBuffer buffer(/*max_line_bytes=*/64);
  const std::string wire = "ab\ncd\r\n\nef\n";
  std::vector<std::string> lines;
  for (char c : wire) {
    ASSERT_TRUE(buffer.Append(&c, 1));
    while (std::optional<std::string> line = buffer.NextLine()) {
      lines.push_back(*line);
    }
  }
  // "\r" is stripped, the bare keep-alive newline is skipped.
  EXPECT_EQ(lines, (std::vector<std::string>{"ab", "cd", "ef"}));
  EXPECT_EQ(buffer.pending_bytes(), 0u);
}

TEST(LineBufferTest, SplitsArbitraryChunks) {
  LineBuffer buffer(64);
  ASSERT_TRUE(buffer.Append("first\nsec", 9));
  EXPECT_EQ(buffer.NextLine(), "first");
  EXPECT_EQ(buffer.NextLine(), std::nullopt);
  ASSERT_TRUE(buffer.Append("ond\nthird\n", 10));
  EXPECT_EQ(buffer.NextLine(), "second");
  EXPECT_EQ(buffer.NextLine(), "third");
  EXPECT_EQ(buffer.NextLine(), std::nullopt);
}

TEST(LineBufferTest, BoundsUnextractedBytes) {
  LineBuffer buffer(8);
  // Eight bytes and no newline: still within bounds.
  ASSERT_TRUE(buffer.Append("12345678", 8));
  // The ninth pending byte crosses the line bound.
  EXPECT_FALSE(buffer.Append("9", 1));
  // Pipelined *small* lines never trip the bound as long as the caller
  // drains between appends.
  LineBuffer drained(8);
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(drained.Append("abc\n", 4));
    EXPECT_EQ(drained.NextLine(), "abc");
  }
}

// --- Reactor end-to-end -----------------------------------------------------

// Minimal blocking client against the reactor's loopback port.
class TestClient {
 public:
  ~TestClient() { Close(); }

  bool Connect(int port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) return false;
    sockaddr_in addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<uint16_t>(port));
    if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
        0) {
      return false;
    }
    const int one = 1;
    ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    return true;
  }

  bool Write(const std::string& bytes) {
    size_t sent = 0;
    while (sent < bytes.size()) {
      const ssize_t n = ::send(fd_, bytes.data() + sent, bytes.size() - sent,
                               MSG_NOSIGNAL);
      if (n <= 0) return false;
      sent += static_cast<size_t>(n);
    }
    return true;
  }

  // Each byte in its own send(): the worst framing a peer can produce.
  bool WriteByByte(const std::string& bytes) {
    for (char c : bytes) {
      if (::send(fd_, &c, 1, MSG_NOSIGNAL) != 1) return false;
    }
    return true;
  }

  std::optional<std::string> ReadLine() {
    while (true) {
      const size_t newline = buffer_.find('\n');
      if (newline != std::string::npos) {
        std::string line = buffer_.substr(0, newline);
        buffer_.erase(0, newline + 1);
        return line;
      }
      char chunk[4096];
      const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n <= 0) return std::nullopt;
      buffer_.append(chunk, static_cast<size_t>(n));
    }
  }

  // Drains until EOF; true when the peer closed the connection.
  bool ReadUntilClosed() {
    char chunk[4096];
    while (true) {
      const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n == 0) return true;
      if (n < 0) return errno == ECONNRESET;
    }
  }

  void Close() {
    if (fd_ >= 0) ::close(fd_);
    fd_ = -1;
    buffer_.clear();
  }

 private:
  int fd_ = -1;
  std::string buffer_;
};

ReactorOptions EchoOptions(ThreadPool* pool = nullptr) {
  ReactorOptions options;
  options.pool = pool;
  options.handler = [](std::string_view line,
                       std::chrono::steady_clock::time_point) {
    return std::vector<std::string>{"echo:" + std::string(line)};
  };
  return options;
}

TEST(ReactorTest, EchoesOneByteAtATimeClient) {
  auto reactor = Reactor::Start(EchoOptions()).ValueOrDie();
  TestClient client;
  ASSERT_TRUE(client.Connect(reactor->port()));
  ASSERT_TRUE(client.WriteByByte("hello\nworld\r\n"));
  EXPECT_EQ(client.ReadLine(), "echo:hello");
  EXPECT_EQ(client.ReadLine(), "echo:world");
  reactor->Shutdown();
}

TEST(ReactorTest, PreservesOrderAcrossPipelinedLinesAndPool) {
  // A multi-thread pool makes DrainLines a real pool task; per-connection
  // FIFO must still hold for a burst of pipelined requests.
  ThreadPool pool(3);
  auto reactor = Reactor::Start(EchoOptions(&pool)).ValueOrDie();
  TestClient client;
  ASSERT_TRUE(client.Connect(reactor->port()));
  std::string burst;
  for (int i = 0; i < 200; ++i) burst += "line" + std::to_string(i) + "\n";
  ASSERT_TRUE(client.Write(burst));
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(client.ReadLine(), "echo:line" + std::to_string(i));
  }
  reactor->Shutdown();
}

TEST(ReactorTest, ShortWritesDrainThroughEpollout) {
  // The client stops reading while thousands of padded replies queue up,
  // forcing the reactor through send() EAGAIN and the EPOLLOUT re-arm
  // path; every byte must still arrive, in order.
  ReactorOptions options;
  const std::string padding(100, 'p');
  options.handler = [&padding](std::string_view line,
                               std::chrono::steady_clock::time_point) {
    return std::vector<std::string>{std::string(line) + ":" + padding};
  };
  auto reactor = Reactor::Start(options).ValueOrDie();
  TestClient client;
  ASSERT_TRUE(client.Connect(reactor->port()));
  constexpr int kLines = 5000;  // ~500 KiB of replies, far over the buffers
  std::string burst;
  for (int i = 0; i < kLines; ++i) burst += std::to_string(i) + "\n";
  ASSERT_TRUE(client.Write(burst));
  for (int i = 0; i < kLines; ++i) {
    ASSERT_EQ(client.ReadLine(), std::to_string(i) + ":" + padding) << i;
  }
  reactor->Shutdown();
}

TEST(ReactorTest, RefusesConnectionsOverTheCap) {
  ReactorOptions options = EchoOptions();
  options.max_connections = 1;
  auto reactor = Reactor::Start(options).ValueOrDie();

  TestClient first;
  ASSERT_TRUE(first.Connect(reactor->port()));
  // A full round-trip pins the first connection as registered.
  ASSERT_TRUE(first.Write("hi\n"));
  EXPECT_EQ(first.ReadLine(), "echo:hi");

  TestClient second;
  ASSERT_TRUE(second.Connect(reactor->port()));
  EXPECT_TRUE(second.ReadUntilClosed());
  EXPECT_GE(reactor->stats().refused, 1);
  EXPECT_EQ(reactor->active_connections(), 1);

  // The slot frees once the first client leaves.
  first.Close();
  TestClient third;
  ASSERT_TRUE(third.Connect(reactor->port()));
  bool served = false;
  for (int attempt = 0; attempt < 50 && !served; ++attempt) {
    if (!third.Write("again\n")) {
      third.Close();
      ASSERT_TRUE(third.Connect(reactor->port()));
      continue;
    }
    std::optional<std::string> reply = third.ReadLine();
    if (reply.has_value()) {
      EXPECT_EQ(*reply, "echo:again");
      served = true;
    } else {
      // Raced the slot still being torn down; reconnect and retry.
      third.Close();
      ASSERT_TRUE(third.Connect(reactor->port()));
    }
  }
  EXPECT_TRUE(served);
  reactor->Shutdown();
}

TEST(ReactorTest, ReapsSlowLorisHoldingAPartialLine) {
  // A peer that trickles a frame but never finishes it must not pin a
  // connection slot forever: the maintenance tick reaps any connection
  // with no complete line inside read_idle_ms.
  ReactorOptions options = EchoOptions();
  options.read_idle_ms = 50.0;
  options.tick_interval_ms = 10.0;
  auto reactor = Reactor::Start(options).ValueOrDie();
  TestClient client;
  ASSERT_TRUE(client.Connect(reactor->port()));
  ASSERT_TRUE(client.Write("{\"op\":\"op"));  // no newline, ever
  EXPECT_TRUE(client.ReadUntilClosed());      // blocks until the reap
  EXPECT_GE(reactor->stats().reaped_idle, 1);
  EXPECT_GE(reactor->stats().dropped, 1);
  EXPECT_GE(reactor->stats().ticks, 1);
  reactor->Shutdown();
}

TEST(ReactorTest, DropsSlowReaderOverThePendingOutputCap) {
  // A client that pipelines thousands of requests and never reads grows
  // the reply buffer; past max_pending_out_bytes it is hard-dropped and
  // counted separately from protocol drops.
  ReactorOptions options;
  const std::string padding(1024, 'p');
  options.handler = [&padding](std::string_view line,
                               std::chrono::steady_clock::time_point) {
    return std::vector<std::string>{std::string(line) + ":" + padding};
  };
  options.max_pending_out_bytes = 16 << 10;
  auto reactor = Reactor::Start(options).ValueOrDie();
  TestClient client;
  ASSERT_TRUE(client.Connect(reactor->port()));
  std::string burst;
  for (int i = 0; i < 2000; ++i) burst += std::to_string(i) + "\n";
  ASSERT_TRUE(client.Write(burst));  // ~2 MiB of replies, 16 KiB allowed
  EXPECT_TRUE(client.ReadUntilClosed());
  EXPECT_GE(reactor->stats().dropped_slow_reader, 1);
  EXPECT_GE(reactor->stats().dropped, 1);
  reactor->Shutdown();
}

TEST(ReactorTest, MaintenanceTickDrivesOnTickCallback) {
  std::atomic<int> ticks{0};
  ReactorOptions options = EchoOptions();
  options.tick_interval_ms = 10.0;
  options.on_tick = [&ticks] { ++ticks; };
  auto reactor = Reactor::Start(options).ValueOrDie();
  for (int i = 0; i < 500 && ticks.load() < 3; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_GE(ticks.load(), 3);
  EXPECT_GE(reactor->stats().ticks, 3);
  reactor->Shutdown();
  // Shutdown stops the tick: the counter settles.
  const int after = ticks.load();
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_EQ(ticks.load(), after);
}

TEST(ReactorTest, DropsConnectionFeedingAnOversizeLine) {
  ReactorOptions options = EchoOptions();
  options.max_line_bytes = 64;
  auto reactor = Reactor::Start(options).ValueOrDie();
  TestClient client;
  ASSERT_TRUE(client.Connect(reactor->port()));
  ASSERT_TRUE(client.Write(std::string(200, 'x')));  // no newline ever
  EXPECT_TRUE(client.ReadUntilClosed());
  EXPECT_GE(reactor->stats().dropped, 1);
  reactor->Shutdown();
}

}  // namespace
}  // namespace uguide
