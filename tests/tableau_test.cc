#include <gtest/gtest.h>

#include "cfd/tableau.h"
#include "common/rng.h"
#include "fd/armstrong.h"
#include "violations/violation_detector.h"

namespace uguide {
namespace {

Relation MakeRelation(const std::vector<std::string>& attrs,
                      const std::vector<std::vector<std::string>>& rows) {
  Relation rel(Schema::Make(attrs).ValueOrDie());
  for (const auto& row : rows) rel.AddRow(row);
  return rel;
}

// zip -> city holds inside DE and AT but not in XX.
Relation ThreeCountries() {
  return MakeRelation({"country", "zip", "city"},
                      {{"DE", "1", "berlin"},
                       {"DE", "1", "berlin"},
                       {"AT", "2", "wien"},
                       {"AT", "2", "wien"},
                       {"XX", "3", "a"},
                       {"XX", "3", "b"},
                       {"XX", "3", "b"}});
}

Cfd Pattern(const char* country) {
  return Cfd::Make(Fd({0, 1}, 2), {country, "_"}, "_").ValueOrDie();
}

TEST(TableauTest, MakeValidatesPatterns) {
  EXPECT_TRUE(CfdTableau::Make(Fd({0, 1}, 2),
                               {Pattern("DE"), Pattern("AT")})
                  .ok());
  // Empty tableau rejected.
  EXPECT_FALSE(CfdTableau::Make(Fd({0, 1}, 2), {}).ok());
  // Pattern over a different embedded FD rejected.
  Cfd other = Cfd::Make(Fd({0}, 2), {"DE"}, "_").ValueOrDie();
  EXPECT_FALSE(CfdTableau::Make(Fd({0, 1}, 2), {other}).ok());
  // Trivial embedded FD rejected.
  EXPECT_FALSE(CfdTableau::Make(Fd({0, 2}, 2), {}).ok());
}

TEST(TableauTest, MatchesAnyPattern) {
  Relation rel = ThreeCountries();
  CfdTableau tableau =
      CfdTableau::Make(Fd({0, 1}, 2), {Pattern("DE"), Pattern("AT")})
          .ValueOrDie();
  EXPECT_TRUE(tableau.Matches(rel, 0));   // DE
  EXPECT_TRUE(tableau.Matches(rel, 2));   // AT
  EXPECT_FALSE(tableau.Matches(rel, 4));  // XX
}

TEST(TableauTest, HoldsWhenEveryPatternHolds) {
  Relation rel = ThreeCountries();
  CfdTableau good =
      CfdTableau::Make(Fd({0, 1}, 2), {Pattern("DE"), Pattern("AT")})
          .ValueOrDie();
  EXPECT_TRUE(TableauHoldsOn(rel, good));
  CfdTableau bad =
      CfdTableau::Make(Fd({0, 1}, 2), {Pattern("DE"), Pattern("XX")})
          .ValueOrDie();
  EXPECT_FALSE(TableauHoldsOn(rel, bad));
}

TEST(TableauTest, ViolationsAreDeduplicatedUnion) {
  Relation rel = ThreeCountries();
  // Two identical XX patterns: union must not double-count.
  CfdTableau tableau =
      CfdTableau::Make(Fd({0, 1}, 2), {Pattern("XX"), Pattern("XX")})
          .ValueOrDie();
  std::vector<Cell> cells = ViolatingCells(rel, tableau);
  EXPECT_EQ(cells.size(), 3u);  // the whole XX zip-3 class participates
  for (size_t i = 1; i < cells.size(); ++i) {
    EXPECT_TRUE(cells[i - 1] < cells[i]);
  }
}

TEST(TableauTest, ToStringShowsAllPatterns) {
  Schema schema = Schema::Make({"country", "zip", "city"}).ValueOrDie();
  CfdTableau tableau =
      CfdTableau::Make(Fd({0, 1}, 2), {Pattern("DE"), Pattern("AT")})
          .ValueOrDie();
  EXPECT_EQ(tableau.ToString(schema),
            "country,zip->city | {DE,_||_ ; AT,_||_}");
}

TEST(TableauTest, MineTableauCoversGoodRegions) {
  // Larger instance: zip determines city inside DE and AT, not in XX.
  Relation rel(Schema::Make({"country", "zip", "city"}).ValueOrDie());
  Rng rng(29);
  for (const char* country : {"DE", "AT"}) {
    for (int i = 0; i < 60; ++i) {
      int zip = static_cast<int>(rng.NextBounded(8));
      rel.AddRow({country, country + std::to_string(zip),
                  "c" + std::to_string(zip)});
    }
  }
  for (int i = 0; i < 60; ++i) {
    rel.AddRow({"XX", "X" + std::to_string(rng.NextBounded(8)),
                "c" + std::to_string(rng.NextBounded(8))});
  }
  CfdDiscoveryOptions opts;
  opts.min_support = 30;
  CfdTableau tableau =
      MineTableau(rel, Fd({0, 1}, 2), opts).ValueOrDie();
  EXPECT_TRUE(TableauHoldsOn(rel, tableau));
  // Both good regions are matched; the bad one is not.
  bool de = false, at = false, xx = false;
  for (TupleId r = 0; r < rel.NumRows(); ++r) {
    if (!tableau.Matches(rel, r)) continue;
    de |= rel.Value(r, 0) == "DE";
    at |= rel.Value(r, 0) == "AT";
    xx |= rel.Value(r, 0) == "XX";
  }
  EXPECT_TRUE(de);
  EXPECT_TRUE(at);
  EXPECT_FALSE(xx);
}

TEST(TableauTest, MineTableauFailsWithoutConditions) {
  // A relation where the FD fails everywhere: nothing to condition on.
  Relation rel = MakeRelation({"a", "b", "c"}, {{"1", "x", "p"},
                                                {"1", "x", "q"},
                                                {"2", "y", "p"},
                                                {"2", "y", "q"}});
  auto result = MineTableau(rel, Fd({0, 1}, 2), {});
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace uguide
