#include <gtest/gtest.h>

#include "oracle/cost_model.h"
#include "oracle/simulated_expert.h"
#include "relation/relation.h"

namespace uguide {
namespace {

TEST(CostModelTest, CellAndTupleCosts) {
  CostModel cost;
  EXPECT_EQ(cost.CellCost(), 1.0);
  EXPECT_EQ(cost.TupleCost(13), 13.0);
  CostModel doubled;
  doubled.cell_cost = 2.0;
  EXPECT_EQ(doubled.CellCost(), 2.0);
  EXPECT_EQ(doubled.TupleCost(4), 8.0);
}

TEST(CostModelTest, FdCostMatchesPaperExample) {
  // §7.1: minimal FD A -> D with alpha = 2: asking A -> D costs 1,
  // AB -> D costs 4, ABC -> D costs 12.
  CostModel cost;
  EXPECT_EQ(cost.FdCost(Fd({0}, 3), 0), 1.0);
  EXPECT_EQ(cost.FdCost(Fd({0, 1}, 3), 1), 4.0);
  EXPECT_EQ(cost.FdCost(Fd({0, 1, 2}, 3), 2), 12.0);
}

TEST(CostModelTest, EmptyLhsStaysPositive) {
  CostModel cost;
  EXPECT_GT(cost.FdCost(Fd(AttributeSet(), 0), 0), 0.0);
}

TEST(CostModelTest, ExtraAttributesAgainstReference) {
  FdSet reference({Fd({0}, 3), Fd({1, 2}, 3), Fd({0}, 1)});
  // {0,1} -> 3 specializes {0} -> 3 by one attribute.
  EXPECT_EQ(CostModel::ExtraAttributes(Fd({0, 1}, 3), reference), 1);
  // {0,1,2} -> 3 is one above {1,2} -> 3 (the closest subset).
  EXPECT_EQ(CostModel::ExtraAttributes(Fd({0, 1, 2}, 3), reference), 1);
  // A minimal reference FD itself has k = 0.
  EXPECT_EQ(CostModel::ExtraAttributes(Fd({0}, 3), reference), 0);
  // No subset reference with matching RHS: treated as minimal.
  EXPECT_EQ(CostModel::ExtraAttributes(Fd({2}, 0), reference), 0);
}

// A 4-row relation where zip -> city is violated by row 2: under §7.1
// semantics rows 0..2's city cells all violate the true FD.
struct ExpertFixture {
  ExpertFixture()
      : relation(Schema::Make({"zip", "city", "state"}).ValueOrDie()) {
    relation.AddRow({"1", "ny", "NY"});
    relation.AddRow({"1", "ny", "NY"});
    relation.AddRow({"1", "boston", "NY"});  // row 2's city was corrupted
    relation.AddRow({"2", "la", "CA"});
    true_fds.Add(Fd({0}, 1));  // zip -> city
    violations = TrueViolationSet::Compute(relation, true_fds);
    ledger.MarkChanged(Cell{2, 1});
  }
  Relation relation;
  FdSet true_fds;
  TrueViolationSet violations;
  GroundTruth ledger;
};

TEST(TrueViolationSetTest, ComputesParticipatingCells) {
  ExpertFixture fx;
  EXPECT_EQ(fx.violations.Size(), 3u);
  EXPECT_TRUE(fx.violations.Contains(Cell{0, 1}));
  EXPECT_TRUE(fx.violations.Contains(Cell{2, 1}));
  EXPECT_FALSE(fx.violations.Contains(Cell{3, 1}));
  EXPECT_FALSE(fx.violations.Contains(Cell{0, 0}));
  EXPECT_TRUE(fx.violations.TupleViolates(2, 3));
  EXPECT_FALSE(fx.violations.TupleViolates(3, 3));
  std::vector<Cell> cells = fx.violations.ToVector();
  ASSERT_EQ(cells.size(), 3u);
  EXPECT_EQ(cells[0], (Cell{0, 1}));
}

TEST(SimulatedExpertTest, CellAnswersFollowViolations) {
  ExpertFixture fx;
  SimulatedExpert expert(&fx.violations, &fx.ledger, 3, fx.true_fds);
  EXPECT_EQ(expert.IsCellErroneous(Cell{2, 1}), Answer::kYes);
  // The witness cell of the violating pair is also "erroneous" (§7.1).
  EXPECT_EQ(expert.IsCellErroneous(Cell{0, 1}), Answer::kYes);
  EXPECT_EQ(expert.IsCellErroneous(Cell{3, 1}), Answer::kNo);
  EXPECT_EQ(expert.cell_questions(), 3);
}

TEST(SimulatedExpertTest, TupleAnswersFollowLedger) {
  ExpertFixture fx;
  SimulatedExpert expert(&fx.violations, &fx.ledger, 3, fx.true_fds);
  EXPECT_EQ(expert.IsTupleClean(2), Answer::kNo);
  // The clean witness of the violation is still a clean *tuple* (§2.1:
  // "has correct values in every cell").
  EXPECT_EQ(expert.IsTupleClean(0), Answer::kYes);
  EXPECT_EQ(expert.IsTupleClean(3), Answer::kYes);
  EXPECT_EQ(expert.tuple_questions(), 3);
}

TEST(SimulatedExpertTest, FdAnswersUseImplication) {
  TrueViolationSet violations;
  GroundTruth ledger;
  // True FDs: A -> B, B -> C.
  SimulatedExpert expert(&violations, &ledger, 3,
                         FdSet({Fd({0}, 1), Fd({1}, 2)}));
  EXPECT_EQ(expert.IsFdValid(Fd({0}, 1)), Answer::kYes);
  EXPECT_EQ(expert.IsFdValid(Fd({0}, 2)), Answer::kYes);     // transitive
  EXPECT_EQ(expert.IsFdValid(Fd({0, 2}, 1)), Answer::kYes);  // specialization
  EXPECT_EQ(expert.IsFdValid(Fd({2}, 0)), Answer::kNo);
  EXPECT_EQ(expert.fd_questions(), 4);
}

TEST(SimulatedExpertTest, IdkRateZeroNeverDeclines) {
  TrueViolationSet violations;
  GroundTruth ledger;
  SimulatedExpert expert(&violations, &ledger, 3, FdSet(),
                         /*idk_rate=*/0.0);
  for (int i = 0; i < 100; ++i) {
    EXPECT_NE(expert.IsCellErroneous(Cell{0, 0}), Answer::kIdk);
  }
  EXPECT_EQ(expert.idk_answers(), 0);
}

TEST(SimulatedExpertTest, IdkRateOneAlwaysDeclines) {
  TrueViolationSet violations;
  GroundTruth ledger;
  SimulatedExpert expert(&violations, &ledger, 3, FdSet(),
                         /*idk_rate=*/1.0);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(expert.IsCellErroneous(Cell{1, 0}), Answer::kIdk);
    EXPECT_EQ(expert.IsTupleClean(0), Answer::kIdk);
    EXPECT_EQ(expert.IsFdValid(Fd({0}, 1)), Answer::kIdk);
  }
  EXPECT_EQ(expert.idk_answers(), 150);
}

TEST(SimulatedExpertTest, IdkRateIsApproximatelyRespected) {
  TrueViolationSet violations;
  GroundTruth ledger;
  SimulatedExpert expert(&violations, &ledger, 3, FdSet(),
                         /*idk_rate=*/0.5, /*seed=*/3);
  int declined = 0;
  for (int i = 0; i < 2000; ++i) {
    if (expert.IsCellErroneous(Cell{0, 0}) == Answer::kIdk) ++declined;
  }
  EXPECT_GT(declined, 850);
  EXPECT_LT(declined, 1150);
}

TEST(SimulatedExpertTest, WrongRateFlipsAnswers) {
  ExpertFixture fx;
  SimulatedExpert expert(&fx.violations, &fx.ledger, 3, fx.true_fds,
                         /*idk_rate=*/0.0, /*seed=*/5, /*wrong_rate=*/1.0);
  // Every answer is inverted.
  EXPECT_EQ(expert.IsCellErroneous(Cell{2, 1}), Answer::kNo);
  EXPECT_EQ(expert.IsCellErroneous(Cell{3, 1}), Answer::kYes);
  EXPECT_EQ(expert.IsTupleClean(3), Answer::kNo);
  EXPECT_EQ(expert.IsFdValid(Fd({0}, 1)), Answer::kNo);
  EXPECT_EQ(expert.wrong_answers(), 4);
}

TEST(SimulatedExpertTest, WrongRateIsApproximatelyRespected) {
  ExpertFixture fx;
  SimulatedExpert expert(&fx.violations, &fx.ledger, 3, fx.true_fds,
                         /*idk_rate=*/0.0, /*seed=*/7, /*wrong_rate=*/0.25);
  int wrong = 0;
  for (int i = 0; i < 2000; ++i) {
    if (expert.IsCellErroneous(Cell{3, 1}) == Answer::kYes) ++wrong;
  }
  EXPECT_GT(wrong, 380);
  EXPECT_LT(wrong, 620);
}

TEST(MajorityVoteExpertTest, OutvotesOccasionalMistakes) {
  ExpertFixture fx;
  SimulatedExpert noisy(&fx.violations, &fx.ledger, 3, fx.true_fds,
                        /*idk_rate=*/0.0, /*seed=*/9, /*wrong_rate=*/0.2);
  MajorityVoteExpert voting(&noisy, 5);
  int wrong = 0;
  for (int i = 0; i < 400; ++i) {
    if (voting.IsCellErroneous(Cell{3, 1}) == Answer::kYes) ++wrong;
  }
  // P(majority of 5 wrong at p=0.2) ~ 5.8%; far below the raw 20%.
  EXPECT_LT(wrong, 40);
}

TEST(SimulatedExpertTest, SameSeedGivesIdenticalAnswerSequence) {
  ExpertFixture fx;
  SimulatedExpert a(&fx.violations, &fx.ledger, 3, fx.true_fds,
                    /*idk_rate=*/0.3, /*seed=*/21, /*wrong_rate=*/0.3);
  SimulatedExpert b(&fx.violations, &fx.ledger, 3, fx.true_fds,
                    /*idk_rate=*/0.3, /*seed=*/21, /*wrong_rate=*/0.3);
  for (int i = 0; i < 500; ++i) {
    const Cell cell{i % 4, 1};
    ASSERT_EQ(a.IsCellErroneous(cell), b.IsCellErroneous(cell)) << i;
    ASSERT_EQ(a.IsTupleClean(i % 4), b.IsTupleClean(i % 4)) << i;
    ASSERT_EQ(a.IsFdValid(Fd({0}, 1)), b.IsFdValid(Fd({0}, 1))) << i;
  }
  EXPECT_EQ(a.wrong_answers(), b.wrong_answers());
  EXPECT_EQ(a.idk_answers(), b.idk_answers());
}

// Deterministic stand-in: answers wrong on every 3rd question. With three
// votes per question, at most one vote is wrong, so majority always wins.
class EveryThirdWrongExpert : public Expert {
 public:
  Answer IsCellErroneous(const Cell&) override { return Next(Answer::kNo); }
  Answer IsTupleClean(TupleId) override { return Next(Answer::kYes); }
  Answer IsFdValid(const Fd&) override { return Next(Answer::kYes); }

 private:
  Answer Next(Answer truth) {
    const bool wrong = (++calls_ % 3) == 0;
    if (!wrong) return truth;
    return truth == Answer::kYes ? Answer::kNo : Answer::kYes;
  }
  int calls_ = 0;
};

TEST(MajorityVoteExpertTest, TwoOfThreeAlwaysBeatsEveryThirdMistake) {
  EveryThirdWrongExpert inner;
  MajorityVoteExpert voting(&inner, 3);
  for (int i = 0; i < 99; ++i) {
    ASSERT_EQ(voting.IsCellErroneous(Cell{0, 0}), Answer::kNo) << i;
  }
  EveryThirdWrongExpert inner2;
  MajorityVoteExpert voting2(&inner2, 3);
  for (int i = 0; i < 99; ++i) {
    ASSERT_EQ(voting2.IsTupleClean(0), Answer::kYes) << i;
    ASSERT_EQ(voting2.IsFdValid(Fd({0}, 1)), Answer::kYes) << i;
  }
}

TEST(MajorityVoteExpertTest, AllIdkYieldsIdk) {
  TrueViolationSet violations;
  GroundTruth ledger;
  SimulatedExpert inner(&violations, &ledger, 3, FdSet(), /*idk_rate=*/1.0);
  MajorityVoteExpert voting(&inner, 3);
  EXPECT_EQ(voting.IsCellErroneous(Cell{0, 0}), Answer::kIdk);
  EXPECT_EQ(voting.IsTupleClean(0), Answer::kIdk);
  EXPECT_EQ(voting.IsFdValid(Fd({0}, 1)), Answer::kIdk);
}

TEST(MajorityVoteExpertTest, SingleVoteIsTransparent) {
  ExpertFixture fx;
  SimulatedExpert inner(&fx.violations, &fx.ledger, 3, fx.true_fds);
  MajorityVoteExpert voting(&inner, 1);
  EXPECT_EQ(voting.IsCellErroneous(Cell{2, 1}), Answer::kYes);
  EXPECT_EQ(voting.IsFdValid(Fd({2}, 0)), Answer::kNo);
}

TEST(SimulatedExpertTest, AnswerNames) {
  EXPECT_STREQ(AnswerName(Answer::kYes), "yes");
  EXPECT_STREQ(AnswerName(Answer::kNo), "no");
  EXPECT_STREQ(AnswerName(Answer::kIdk), "idk");
}

}  // namespace
}  // namespace uguide
