// uguide_loadgen — replay client for uguided: opens concurrent sessions
// over real sockets, answers every question with the same simulated-expert
// stack an in-process run uses, and checks that every served report is
// byte-identical to the in-process reference run.
//
//   uguide_loadgen --port=P [--sessions=S] [--concurrency=C]
//                  [--strategy=NAME|all] [--budget=B] [--id-prefix=X]
//                  [--rows=R] [--error-rate=E] [--seed=S] [--idk-rate=I]
//                  [--no-verify] [--allow-refused] [--check-journals=DIR]
//                  [--chaos] [--chaos-seed=S] [--restart-grace-ms=T]
//                  [--mutate-rate=M] [--mutate-seed=S]
//
// The dataset flags must match the daemon's — both sides rebuild the same
// dataset (src/server/dataset.h) and the reports can only be byte-equal if
// they agree. Exit status: 0 iff every session finished with a verified
// report (refusals tolerated only under --allow-refused).
//
// Refusal errors carrying retry_after_ms (code overloaded / rate_limited /
// quarantined) are always retried after the hinted backoff, so an
// overloaded daemon slows the run down rather than failing it.
//
// --chaos turns each session into a deterministic adversary (per-session
// Rng off --chaos-seed): garbage frames, half-line writes followed by
// reconnects, mid-question disconnects resynced with op=next, deliberately
// slow reads, and close-then-resume storms (the latter only when
// --check-journals names the daemon's journal dir). The invariant asserted
// end-to-end: every refusal carries a machine-readable code, and every
// finished session's report matches the in-process reference byte-for-byte
// (modulo the questions_replayed counter, which resume legitimately
// changes).
//
// --restart-grace-ms=T makes the run restart-aware (the kill/restart chaos
// gate): connection-refused is tolerated for up to T ms of reconnect
// backoff — the window a daemon needs to come back on the same port — and
// sessions the restarted daemon no longer knows are reopened from their
// journals. Sessions the daemon reports as journal_corrupt count as
// `quarantined`, an explicit verdict distinct from both ok and failed:
// the gate's pass condition is that every admitted session ends as
// ok/refused/quarantined, never silently lost. With --check-journals set,
// every delivered report is additionally cross-checked against its
// journal (record count == questions_asked, durable end marker present).
//
// --mutate-rate=M makes each session, with probability M, first apply a
// small randomized op=mutate batch (appends/updates/deletes drawn from
// --mutate-seed), advancing the daemon's live data. Reports produced
// against a mutated epoch stamp data_version>0 and are exempt from the
// byte-verify (the in-process reference runs on the base data); reports
// stamping data_version=0 still byte-verify as usual. The exit summary
// reports mutations applied/refused.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "core/uguide.h"
#include "server/dataset.h"
#include "server/protocol.h"

using namespace uguide;

namespace {

struct Args {
  int port = 0;
  int sessions = 16;
  int concurrency = 4;
  std::string strategy = "FDQ-BMC";
  double budget = 0.0;  // 0 = dataset default
  std::string id_prefix = "lg";
  bool verify = true;
  bool allow_refused = false;
  /// When set, every per-session journal the daemon wrote under this
  /// directory must load cleanly after the run (zero-corruption check).
  std::string check_journals;
  bool chaos = false;
  uint64_t chaos_seed = 1234;
  /// Reconnect-backoff window for daemon restarts (0 = not restart-aware:
  /// ~2s of reconnect attempts, initial connect must succeed at once).
  double restart_grace_ms = 0.0;
  /// Probability that a session opens with a randomized op=mutate batch.
  double mutate_rate = 0.0;
  uint64_t mutate_seed = 77;
  ServedDatasetOptions dataset;
};

void Usage() {
  std::fprintf(
      stderr,
      "usage: uguide_loadgen --port=P [--sessions=S] [--concurrency=C]\n"
      "                      [--strategy=NAME|all] [--budget=B]\n"
      "                      [--id-prefix=X] [--rows=R] [--error-rate=E]\n"
      "                      [--seed=S] [--idk-rate=I] [--no-verify]\n"
      "                      [--allow-refused] [--check-journals=DIR]\n"
      "                      [--chaos] [--chaos-seed=S]\n"
      "                      [--restart-grace-ms=T]\n"
      "                      [--mutate-rate=M] [--mutate-seed=S]\n");
}

bool FlagError(const char* flag, const std::string& value, const char* want) {
  std::fprintf(stderr,
               "uguide_loadgen: invalid value '%s' for %s (expected %s)\n",
               value.c_str(), flag, want);
  return false;
}

bool ParseIntFlag(const char* flag, const std::string& value, int min_value,
                  int* out) {
  if (value.empty()) return FlagError(flag, value, "an integer");
  long long parsed = 0;
  for (char c : value) {
    if (c < '0' || c > '9') return FlagError(flag, value, "an integer");
    parsed = parsed * 10 + (c - '0');
    if (parsed > std::numeric_limits<int>::max()) {
      return FlagError(flag, value, "an integer in range");
    }
  }
  if (parsed < min_value) return FlagError(flag, value, "a larger integer");
  *out = static_cast<int>(parsed);
  return true;
}

bool ParseDoubleFlag(const char* flag, const std::string& value,
                     double* out) {
  if (value.empty()) return FlagError(flag, value, "a number");
  char* end = nullptr;
  errno = 0;
  const double parsed = std::strtod(value.c_str(), &end);
  if (errno != 0 || end != value.c_str() + value.size()) {
    return FlagError(flag, value, "a number");
  }
  *out = parsed;
  return true;
}

bool ParseU64Flag(const char* flag, const std::string& value, uint64_t* out) {
  if (value.empty()) return FlagError(flag, value, "an integer");
  char* end = nullptr;
  errno = 0;
  const uint64_t parsed = std::strtoull(value.c_str(), &end, 10);
  if (errno != 0 || end != value.c_str() + value.size()) {
    return FlagError(flag, value, "an integer");
  }
  *out = parsed;
  return true;
}

bool ParseArgs(int argc, char** argv, Args* args) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const size_t eq = arg.find('=');
    const std::string flag = arg.substr(0, eq);
    const std::string value =
        eq == std::string::npos ? std::string() : arg.substr(eq + 1);
    if (flag == "--port") {
      if (!ParseIntFlag("--port", value, 1, &args->port)) return false;
    } else if (flag == "--sessions") {
      if (!ParseIntFlag("--sessions", value, 1, &args->sessions)) return false;
    } else if (flag == "--concurrency") {
      if (!ParseIntFlag("--concurrency", value, 1, &args->concurrency)) {
        return false;
      }
    } else if (flag == "--strategy") {
      args->strategy = value;
    } else if (flag == "--budget") {
      if (!ParseDoubleFlag("--budget", value, &args->budget)) return false;
    } else if (flag == "--id-prefix") {
      args->id_prefix = value;
    } else if (flag == "--no-verify") {
      args->verify = false;
    } else if (flag == "--allow-refused") {
      args->allow_refused = true;
    } else if (flag == "--check-journals") {
      args->check_journals = value;
    } else if (flag == "--chaos") {
      args->chaos = true;
    } else if (flag == "--chaos-seed") {
      if (!ParseU64Flag("--chaos-seed", value, &args->chaos_seed)) {
        return false;
      }
    } else if (flag == "--restart-grace-ms") {
      if (!ParseDoubleFlag("--restart-grace-ms", value,
                           &args->restart_grace_ms)) {
        return false;
      }
    } else if (flag == "--mutate-rate") {
      if (!ParseDoubleFlag("--mutate-rate", value, &args->mutate_rate)) {
        return false;
      }
    } else if (flag == "--mutate-seed") {
      if (!ParseU64Flag("--mutate-seed", value, &args->mutate_seed)) {
        return false;
      }
    } else if (flag == "--rows") {
      if (!ParseIntFlag("--rows", value, 1, &args->dataset.rows)) return false;
    } else if (flag == "--error-rate") {
      if (!ParseDoubleFlag("--error-rate", value, &args->dataset.error_rate)) {
        return false;
      }
    } else if (flag == "--seed") {
      if (!ParseU64Flag("--seed", value, &args->dataset.seed)) return false;
    } else if (flag == "--idk-rate") {
      if (!ParseDoubleFlag("--idk-rate", value, &args->dataset.idk_rate)) {
        return false;
      }
    } else {
      std::fprintf(stderr, "uguide_loadgen: unknown flag %s\n", flag.c_str());
      return false;
    }
  }
  if (args->port == 0) {
    std::fprintf(stderr, "uguide_loadgen: --port is required\n");
    return false;
  }
  return true;
}

/// Blocking line-oriented client connection.
class Connection {
 public:
  ~Connection() {
    if (fd_ >= 0) ::close(fd_);
  }

  /// Drops the socket and any half-read buffer (chaos reconnects).
  void Reset() {
    if (fd_ >= 0) ::close(fd_);
    fd_ = -1;
    buffer_.clear();
  }

  bool Connect(int port) {
    Reset();
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) return false;
    sockaddr_in addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<uint16_t>(port));
    if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
        0) {
      ::close(fd_);
      fd_ = -1;
      return false;
    }
    const int one = 1;
    ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    return true;
  }

  bool WriteLine(const std::string& line) {
    std::string framed = line;
    framed.push_back('\n');
    return WriteRaw(framed);
  }

  /// Sends bytes exactly as given — chaos half-line frames included.
  bool WriteRaw(const std::string& bytes) {
    size_t sent = 0;
    while (sent < bytes.size()) {
      const ssize_t n =
          ::send(fd_, bytes.data() + sent, bytes.size() - sent, MSG_NOSIGNAL);
      if (n < 0) {
        if (errno == EINTR) continue;
        return false;
      }
      sent += static_cast<size_t>(n);
    }
    return true;
  }

  bool ReadLine(std::string* line) {
    while (true) {
      const size_t nl = buffer_.find('\n');
      if (nl != std::string::npos) {
        *line = buffer_.substr(0, nl);
        buffer_.erase(0, nl + 1);
        return true;
      }
      char chunk[4096];
      const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n < 0 && errno == EINTR) continue;
      if (n <= 0) return false;
      buffer_.append(chunk, static_cast<size_t>(n));
    }
  }

 private:
  int fd_ = -1;
  std::string buffer_;
};

struct SharedState {
  const Session* session = nullptr;
  const Args* args = nullptr;
  std::vector<std::string> strategies;  // per-session rotation

  std::mutex reference_mu;
  std::map<std::string, std::string> reference_reports;

  std::atomic<int> next_session{0};
  std::atomic<int> ok{0};
  std::atomic<int> mismatched{0};
  std::atomic<int> refused{0};
  std::atomic<int> failed{0};
  std::atomic<int> retried{0};  ///< Backoffs honored from retry_after_ms.
  /// Sessions the daemon ended with journal_corrupt: an explicit verdict
  /// (the damaged journal was moved aside), not a silent loss.
  std::atomic<int> quarantined{0};
  /// Live-data mutation tallies (op=mutate acks under --mutate-rate).
  std::atomic<int64_t> mutations_applied{0};
  std::atomic<int64_t> mutations_refused{0};

  std::mutex rtt_mu;
  std::vector<double> rtt_ms;
};

/// The in-process reference report for `strategy` under the shared budget,
/// serialized. Computed once per strategy (strategies are stateless and
/// deterministic, so every session of a strategy yields the same bytes).
const std::string* ReferenceReport(SharedState* state,
                                   const std::string& strategy_name) {
  std::lock_guard<std::mutex> lock(state->reference_mu);
  auto it = state->reference_reports.find(strategy_name);
  if (it != state->reference_reports.end()) return &it->second;
  Result<std::unique_ptr<Strategy>> strategy =
      MakeStrategyByName(strategy_name);
  if (!strategy.ok()) return nullptr;
  const double budget = state->args->budget > 0.0
                            ? state->args->budget
                            : state->session->config().budget;
  Result<SessionReport> report =
      state->session->Run(**strategy, budget, SessionRunOptions{});
  if (!report.ok()) return nullptr;
  auto inserted = state->reference_reports.emplace(
      strategy_name, SerializeSessionReport(*report));
  return &inserted.first->second;
}

/// Strips the questions_replayed=N line: a resumed session replays its
/// journal, so the counter legitimately differs from the reference run
/// while every other report byte must still match.
std::string WithoutReplayCount(const std::string& report) {
  std::string out;
  out.reserve(report.size());
  size_t pos = 0;
  while (pos < report.size()) {
    size_t nl = report.find('\n', pos);
    if (nl == std::string::npos) nl = report.size();
    const std::string_view line(report.data() + pos, nl - pos);
    if (line.rfind("questions_replayed=", 0) != 0) {
      out.append(line);
      out.push_back('\n');
    }
    pos = nl + 1;
  }
  return out;
}

/// Extracts the integer value of a `key=N` line from a serialized report;
/// -1 if the line is absent.
int ReportCounter(const std::string& report, std::string_view key) {
  size_t pos = 0;
  while (pos < report.size()) {
    size_t nl = report.find('\n', pos);
    if (nl == std::string::npos) nl = report.size();
    const std::string_view line(report.data() + pos, nl - pos);
    if (line.size() > key.size() + 1 &&
        line.substr(0, key.size()) == key && line[key.size()] == '=') {
      return std::atoi(std::string(line.substr(key.size() + 1)).c_str());
    }
    pos = nl + 1;
  }
  return -1;
}

/// Cross-checks a delivered report against the journal the daemon kept for
/// the session: every asked question must be durable (records ==
/// questions_asked) and the end marker must agree with the report. Returns
/// an empty string on success, the mismatch description otherwise.
std::string CheckReportAgainstJournal(const Args& args,
                                      const std::string& session_id,
                                      const std::string& report) {
  const std::string path =
      args.check_journals + "/" + session_id + ".journal";
  Result<LoadedJournal> journal = LoadJournal(path);
  if (!journal.ok()) {
    return "journal unreadable after report: " +
           journal.status().ToString();
  }
  const int asked = ReportCounter(report, "questions_asked");
  const int replayed = ReportCounter(report, "questions_replayed");
  if (asked < 0) return "report lacks questions_asked";
  if (static_cast<int>(journal->records.size()) != asked) {
    return "journal holds " + std::to_string(journal->records.size()) +
           " records but report says questions_asked=" +
           std::to_string(asked);
  }
  if (replayed > asked) {
    return "report claims questions_replayed=" + std::to_string(replayed) +
           " > questions_asked=" + std::to_string(asked);
  }
  if (journal->version >= 2) {
    if (!journal->finished) {
      return "report delivered but journal lacks a durable end marker";
    }
    if (journal->finished_questions != asked) {
      return "end marker says " +
             std::to_string(journal->finished_questions) +
             " questions, report says " + std::to_string(asked);
    }
  }
  return std::string();
}

/// Runs one served session over `conn`. Returns false only on
/// unrecoverable connection failure (protocol/verification failures are
/// counted in state). Retries refusals that carry retry_after_ms; in
/// --chaos mode additionally injects deterministic client misbehavior and
/// recovers from its own sabotage via reconnect + op=next / resume.
bool RunOneSession(SharedState* state, Connection* conn, int index) {
  const Session& session = *state->session;
  const Args& args = *state->args;
  const std::string& strategy_name =
      state->strategies[static_cast<size_t>(index) %
                        state->strategies.size()];
  const SessionConfig& config = session.config();

  // The same expert stack Session::Run builds in-process: determinism of
  // the served run is exactly the determinism of this stack.
  SimulatedExpert expert(&session.true_violations(), &session.truth(),
                         session.dirty().NumAttributes(), session.true_fds(),
                         config.idk_rate, config.expert_seed,
                         config.wrong_rate);
  MajorityVoteExpert voting(&expert, std::max(1, config.expert_votes));
  Expert* head = config.expert_votes > 1 ? static_cast<Expert*>(&voting)
                                         : static_cast<Expert*>(&expert);

  ClientFrame open;
  open.op = ClientOp::kOpen;
  open.id = args.id_prefix + "-" + std::to_string(index);
  open.strategy = strategy_name;
  if (args.budget > 0.0) {
    open.budget = args.budget;
    open.has_budget = true;
  }

  // Chaos plan, fixed per session so reruns are reproducible.
  Rng rng(args.chaos_seed ^
          (0x9e3779b97f4a7c15ULL * static_cast<uint64_t>(index + 1)));
  const bool chaos = args.chaos;
  // Resume storms need the daemon to journal; --check-journals names the
  // journal dir, so its presence doubles as the capability signal.
  const bool can_resume = chaos && !args.check_journals.empty();
  const bool send_garbage = chaos && rng.NextBool(0.2);
  const bool send_half_line = chaos && rng.NextBool(0.15);
  const bool slow_reader = chaos && rng.NextBool(0.1);
  const double disconnect_p = chaos ? 0.1 : 0.0;
  const double close_reopen_p = can_resume ? 0.05 : 0.0;
  bool close_reopen_done = !can_resume;
  int slow_reads_left = slow_reader ? 24 : 0;

  // Under --restart-grace-ms the backoff window stretches to cover a
  // daemon kill/restart cycle; connection-refused inside it is expected.
  const int reconnect_attempts =
      std::max(100, static_cast<int>(args.restart_grace_ms / 20.0) + 1);
  auto reconnect = [&]() -> bool {
    for (int attempt = 0; attempt < reconnect_attempts; ++attempt) {
      if (conn->Connect(args.port)) return true;
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    return false;
  };

  if (send_garbage) {
    // A complete line of non-protocol bytes must bounce as a structured
    // bad_frame error and leave the connection usable.
    std::string line;
    if (!conn->WriteLine("{\"op\":[not json") || !conn->ReadLine(&line)) {
      if (!reconnect()) return false;
    } else {
      Result<ServerFrame> frame = ParseServerFrame(line);
      if (!frame.ok() || frame->type != ServerFrameType::kError ||
          frame->error_code != error_code::kBadFrame) {
        std::fprintf(stderr,
                     "uguide_loadgen: garbage line not refused as "
                     "bad_frame for %s\n",
                     open.id.c_str());
        state->failed.fetch_add(1);
        return true;
      }
    }
  }
  if (send_half_line) {
    // Half a frame, no newline, then vanish: the daemon must simply drop
    // the partial line (or reap us) without wedging the session slot.
    conn->WriteRaw("{\"op\":\"open\",\"id\":\"");
    if (!reconnect()) return false;
  }

  std::vector<double> rtts;
  int retries = 0;
  bool opened = false;  // An open was acked (question/report seen).
  std::string to_send = FormatClientFrame(open);

  // Mutation mode: with probability --mutate-rate this session leads with
  // a small randomized op=mutate batch, advancing the live data every
  // later open serves against. The open is sent after the mutated ack.
  if (args.mutate_rate > 0.0) {
    Rng mrng(args.mutate_seed ^
             (0x9e3779b97f4a7c15ULL * static_cast<uint64_t>(index + 1)));
    if (mrng.NextBool(args.mutate_rate)) {
      ClientFrame mutate;
      mutate.op = ClientOp::kMutate;
      mutate.id = open.id;
      const int m = session.dirty().NumAttributes();
      const uint64_t base_rows =
          static_cast<uint64_t>(session.dirty().NumRows());
      const int ops = static_cast<int>(mrng.NextInt(1, 3));
      for (int i = 0; i < ops; ++i) {
        const std::string tag =
            std::to_string(index) + "-" + std::to_string(i);
        switch (mrng.NextBounded(3)) {
          case 0: {
            std::vector<std::string> values;
            for (int c = 0; c < m; ++c) {
              values.push_back("live-" + tag + "-" + std::to_string(c));
            }
            mutate.mutations.push_back(Mutation::Append(std::move(values)));
            break;
          }
          case 1:
            mutate.mutations.push_back(Mutation::Update(
                static_cast<TupleId>(mrng.NextBounded(base_rows)),
                static_cast<int>(mrng.NextBounded(
                    static_cast<uint64_t>(m))),
                "live-u-" + tag));
            break;
          default:
            // Deletes of an already-tombstoned row are refused, which the
            // summary surfaces — that is the point, not a failure.
            mutate.mutations.push_back(Mutation::Delete(
                static_cast<TupleId>(mrng.NextBounded(base_rows))));
            break;
        }
      }
      to_send = FormatClientFrame(mutate);
    }
  }

  auto backoff = [&](int retry_after_ms) {
    state->retried.fetch_add(1);
    ++retries;
    std::this_thread::sleep_for(std::chrono::milliseconds(
        std::clamp(retry_after_ms, 1, 1000)));
  };
  auto resync_frame = [&]() -> std::string {
    if (opened) {
      ClientFrame next;
      next.op = ClientOp::kNext;
      next.id = open.id;
      return FormatClientFrame(next);
    }
    return FormatClientFrame(open);
  };

  constexpr int kMaxRetries = 200;
  auto sent_at = std::chrono::steady_clock::now();
  while (true) {
    if (!to_send.empty()) {
      sent_at = std::chrono::steady_clock::now();
      if (!conn->WriteLine(to_send)) {
        if (!chaos || !reconnect()) return false;
        to_send = resync_frame();
        continue;
      }
      to_send.clear();
    }

    if (slow_reads_left > 0) {
      // A deliberately sluggish reader: the daemon's replies sit unread
      // for a beat, exercising its pending-output accounting.
      --slow_reads_left;
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    std::string line;
    if (!conn->ReadLine(&line)) {
      if (!chaos || !reconnect()) return false;
      to_send = resync_frame();
      continue;
    }
    rtts.push_back(std::chrono::duration<double, std::milli>(
                       std::chrono::steady_clock::now() - sent_at)
                       .count());

    Result<ServerFrame> frame = ParseServerFrame(line);
    if (!frame.ok()) {
      std::fprintf(stderr, "uguide_loadgen: bad server frame: %s\n",
                   frame.status().ToString().c_str());
      state->failed.fetch_add(1);
      return true;
    }
    switch (frame->type) {
      case ServerFrameType::kQuestion: {
        opened = true;
        open.resume = true;  // any later reopen must pick up the journal
        if (!close_reopen_done && rng.NextBool(close_reopen_p)) {
          // Close mid-run, then reopen with resume: the journal must
          // carry every answer across the abandon.
          close_reopen_done = true;
          ClientFrame close;
          close.op = ClientOp::kClose;
          close.id = open.id;
          to_send = FormatClientFrame(close);
          break;
        }
        if (rng.NextBool(disconnect_p)) {
          // Vanish mid-question; the reconnect resyncs with op=next and
          // must get the same question redelivered.
          if (!reconnect()) return false;
          to_send = resync_frame();
          break;
        }
        const SessionQuestion& q = frame->question;
        ClientFrame answer;
        answer.op = ClientOp::kAnswer;
        answer.id = open.id;
        answer.seq = q.index;
        switch (q.kind) {
          case QuestionKind::kCell:
            answer.answer = head->IsCellErroneous(q.cell);
            break;
          case QuestionKind::kTuple:
            answer.answer = head->IsTupleClean(q.row);
            break;
          case QuestionKind::kFd:
            answer.answer = head->IsFdValid(q.fd);
            break;
        }
        to_send = FormatClientFrame(answer);
        break;
      }
      case ServerFrameType::kMutated: {
        state->mutations_applied.fetch_add(frame->applied);
        state->mutations_refused.fetch_add(frame->refused);
        to_send = FormatClientFrame(open);
        break;
      }
      case ServerFrameType::kReport: {
        // A report stamped with a live data version ran against mutated
        // data; the in-process reference runs on the base, so the byte
        // check would be comparing different datasets. data_version=0
        // reports (epoch 0) still byte-verify.
        const int live_version = ReportCounter(frame->report, "data_version");
        if (state->args->verify && live_version <= 0) {
          const std::string* expected =
              ReferenceReport(state, strategy_name);
          const bool matches =
              expected != nullptr &&
              (*expected == frame->report ||
               (chaos && WithoutReplayCount(*expected) ==
                             WithoutReplayCount(frame->report)));
          if (!matches) {
            std::fprintf(stderr,
                         "uguide_loadgen: report mismatch for %s (%s)\n",
                         open.id.c_str(), strategy_name.c_str());
            state->mismatched.fetch_add(1);
            {
              std::lock_guard<std::mutex> lock(state->rtt_mu);
              state->rtt_ms.insert(state->rtt_ms.end(), rtts.begin(),
                                   rtts.end());
            }
            return true;
          }
        }
        if (!args.check_journals.empty()) {
          const std::string why =
              CheckReportAgainstJournal(args, open.id, frame->report);
          if (!why.empty()) {
            std::fprintf(stderr,
                         "uguide_loadgen: journal/report mismatch for "
                         "%s: %s\n",
                         open.id.c_str(), why.c_str());
            state->failed.fetch_add(1);
            return true;
          }
        }
        state->ok.fetch_add(1);
        std::lock_guard<std::mutex> lock(state->rtt_mu);
        state->rtt_ms.insert(state->rtt_ms.end(), rtts.begin(), rtts.end());
        return true;
      }
      case ServerFrameType::kError: {
        const StatusCode code = static_cast<StatusCode>(frame->code);
        const bool backoff_hinted =
            frame->retry_after_ms >= 0 &&
            (frame->error_code == error_code::kOverloaded ||
             frame->error_code == error_code::kRateLimited ||
             frame->error_code == error_code::kQuarantined);
        if (backoff_hinted && retries < kMaxRetries) {
          backoff(frame->retry_after_ms);
          to_send = resync_frame();
          break;
        }
        if (code == StatusCode::kAlreadyExists && !opened) {
          // Our open landed but its ack was lost to a chaos disconnect;
          // the session is live — resync instead of failing.
          opened = true;
          to_send = resync_frame();
          break;
        }
        if (frame->error_code == error_code::kVersionMismatch) {
          // Terminal and structured: the epoch this journal pinned is no
          // longer served, so the resume is abandoned — an explicit
          // refusal, not a lost session.
          state->refused.fetch_add(1);
          std::lock_guard<std::mutex> lock(state->rtt_mu);
          state->rtt_ms.insert(state->rtt_ms.end(), rtts.begin(),
                               rtts.end());
          return true;
        }
        if (frame->error_code == error_code::kJournalCorrupt) {
          // The daemon found bit-rot and moved the journal aside. That is
          // a terminal but *explicit* outcome: the session was not
          // silently lost, it was quarantined for triage.
          state->quarantined.fetch_add(1);
          std::lock_guard<std::mutex> lock(state->rtt_mu);
          state->rtt_ms.insert(state->rtt_ms.end(), rtts.begin(),
                               rtts.end());
          return true;
        }
        if (frame->error_code == error_code::kStorageFailed &&
            can_resume && retries < kMaxRetries) {
          // The session's journal writer is poisoned (failed write or
          // fsync). The durable prefix is intact, so the documented
          // client move is: close, then reopen with resume — a fresh
          // writer replays everything up to the failure.
          ++retries;
          ClientFrame close;
          close.op = ClientOp::kClose;
          close.id = open.id;
          open.resume = true;
          to_send = FormatClientFrame(close);
          break;
        }
        if (chaos && code == StatusCode::kNotFound && can_resume &&
            retries < kMaxRetries) {
          // Evicted (or closed by our own chaos move) between frames:
          // reopen from the journal.
          ++retries;
          open.resume = true;
          opened = false;
          to_send = FormatClientFrame(open);
          break;
        }
        const bool refusal = code == StatusCode::kResourceExhausted ||
                             code == StatusCode::kUnavailable;
        if (chaos && refusal && frame->error_code.empty()) {
          // The whole point of structured refusals: a shedding daemon
          // must say why. An unlabeled refusal is a bug.
          std::fprintf(stderr,
                       "uguide_loadgen: refusal without code for %s: %s\n",
                       open.id.c_str(), frame->message.c_str());
          state->failed.fetch_add(1);
          return true;
        }
        if (refusal && args.allow_refused) {
          state->refused.fetch_add(1);
        } else {
          std::fprintf(stderr, "uguide_loadgen: server error for %s: %s\n",
                       open.id.c_str(), frame->message.c_str());
          state->failed.fetch_add(1);
        }
        return true;
      }
      case ServerFrameType::kClosed: {
        // Ack of our deliberate close: reopen from the journal.
        open.resume = true;
        opened = false;
        to_send = FormatClientFrame(open);
        break;
      }
      case ServerFrameType::kPong:
      case ServerFrameType::kHealth:
        // Unexpected here but harmless; keep reading.
        break;
    }
  }
}

void Worker(SharedState* state) {
  const Args& args = *state->args;
  Connection conn;
  // With --restart-grace-ms the first connect may land in a restart
  // window; keep knocking for the grace period instead of giving up.
  const int connect_attempts =
      std::max(1, static_cast<int>(args.restart_grace_ms / 20.0) + 1);
  auto connect = [&]() -> bool {
    for (int attempt = 0; attempt < connect_attempts; ++attempt) {
      if (conn.Connect(args.port)) return true;
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    return false;
  };
  if (!connect()) {
    std::fprintf(stderr, "uguide_loadgen: cannot connect to port %d\n",
                 args.port);
    state->failed.fetch_add(1);
    return;
  }
  while (true) {
    const int index = state->next_session.fetch_add(1);
    if (index >= state->args->sessions) return;
    if (!RunOneSession(state, &conn, index)) {
      // Connection died; reconnect and keep draining the work queue.
      state->failed.fetch_add(1);
      if (!connect()) return;
    }
  }
}

/// Loads every journal the daemon wrote for this run's session ids and
/// fails on the first corrupt one. A missing journal is fine (refused
/// sessions never open one); a present-but-unparsable journal is the bug
/// this check exists to catch.
int CheckJournals(const Args& args) {
  int checked = 0;
  for (int index = 0; index < args.sessions; ++index) {
    const std::string path = args.check_journals + "/" + args.id_prefix +
                             "-" + std::to_string(index) + ".journal";
    if (::access(path.c_str(), F_OK) != 0) continue;
    Result<LoadedJournal> journal = LoadJournal(path);
    if (!journal.ok()) {
      std::fprintf(stderr, "uguide_loadgen: corrupt journal %s: %s\n",
                   path.c_str(), journal.status().ToString().c_str());
      return -1;
    }
    ++checked;
  }
  return checked;
}

double Percentile(std::vector<double>* values, double p) {
  if (values->empty()) return 0.0;
  std::sort(values->begin(), values->end());
  const size_t index = static_cast<size_t>(
      p * static_cast<double>(values->size() - 1) / 100.0);
  return (*values)[index];
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!ParseArgs(argc, argv, &args)) {
    Usage();
    return 2;
  }

  Result<Session> session = MakeServedDataset(args.dataset);
  if (!session.ok()) {
    std::fprintf(stderr, "uguide_loadgen: dataset: %s\n",
                 session.status().ToString().c_str());
    return 1;
  }

  SharedState state;
  state.session = &*session;
  state.args = &args;
  if (args.strategy == "all") {
    state.strategies = KnownStrategyNames();
  } else {
    state.strategies = {args.strategy};
  }

  const auto started = std::chrono::steady_clock::now();
  std::vector<std::thread> workers;
  for (int i = 0; i < args.concurrency; ++i) {
    workers.emplace_back(Worker, &state);
  }
  for (std::thread& t : workers) t.join();
  const double elapsed_s = std::chrono::duration<double>(
                               std::chrono::steady_clock::now() - started)
                               .count();

  const int ok = state.ok.load();
  const int mismatched = state.mismatched.load();
  const int refused = state.refused.load();
  const int failed = state.failed.load();
  const int retried = state.retried.load();
  const int quarantined = state.quarantined.load();
  const double p50 = Percentile(&state.rtt_ms, 50.0);
  const double p99 = Percentile(&state.rtt_ms, 99.0);
  std::printf(
      "uguide_loadgen: ok=%d mismatched=%d refused=%d failed=%d "
      "quarantined=%d retried=%d answers=%zu elapsed=%.2fs "
      "rtt_p50=%.3fms rtt_p99=%.3fms\n",
      ok, mismatched, refused, failed, quarantined, retried,
      state.rtt_ms.size(), elapsed_s, p50, p99);
  if (args.mutate_rate > 0.0) {
    std::printf("uguide_loadgen: mutations applied=%lld refused=%lld\n",
                static_cast<long long>(state.mutations_applied.load()),
                static_cast<long long>(state.mutations_refused.load()));
  }

  if (!args.check_journals.empty()) {
    const int checked = CheckJournals(args);
    if (checked < 0) return 1;
    std::printf("uguide_loadgen: journals checked=%d corrupt=0\n", checked);
  }

  if (mismatched > 0 || failed > 0) return 1;
  // Every session must end in an explicit verdict — delivered, refused
  // with a code, or quarantined with its journal preserved for triage.
  // Anything short of that is a silently lost session.
  if (ok + refused + quarantined < args.sessions) return 1;
  return 0;
}
