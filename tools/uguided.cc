// uguided — the UGuide serving daemon: N concurrent interactive sessions
// over a newline-delimited JSON TCP protocol (see src/server/protocol.h).
//
//   uguided [--port=P] [--port-file=F] [--max-sessions=N]
//           [--max-connections=N] [--idle-timeout-ms=T] [--journal-dir=D]
//           [--journal-fsync=every|batch] [--journal-retain-s=T]
//           [--threads=N]
//           [--memory-budget-mb=M] [--fault-plan=PLAN]
//           [--tick-ms=T] [--read-idle-ms=T] [--max-pending-out-kb=K]
//           [--queue-deadline-ms=T] [--rate-limit=R] [--rate-burst=B]
//           [--rows=R] [--error-rate=E] [--seed=S] [--idk-rate=I]
//           [--budget=B]
//
// The daemon pins one dataset at startup (the hospital benchmark built
// from --rows/--error-rate/--seed — the recipe in src/server/dataset.h),
// opened through a DatasetRegistry so the expensive shared artifacts
// (session, warmed violation engine, prebuilt graph) are built once and
// shared read-only by every session; every served session runs one
// strategy against it. Clients choose the strategy, budget, and session
// id per open. --port=0 binds an ephemeral port, printed on stdout and
// optionally written to --port-file for scripts. SIGTERM/SIGINT drain
// gracefully: stop accepting, abandon in-flight sessions (journals
// synced, resumable), print a summary.

#include <signal.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <string>
#include <thread>

#include "common/fault_injection.h"
#include "common/memory_budget.h"
#include "common/thread_pool.h"
#include "live/live_dataset.h"
#include "server/daemon.h"
#include "server/dataset.h"
#include "server/dataset_registry.h"

using namespace uguide;

namespace {

volatile sig_atomic_t g_stop = 0;

void HandleStopSignal(int) { g_stop = 1; }

struct Args {
  int port = 0;
  std::string port_file;
  int max_sessions = 64;
  int max_connections = 0;
  double idle_timeout_ms = 0.0;
  std::string journal_dir;
  JournalFsyncMode journal_fsync = JournalFsyncMode::kEvery;
  double journal_retain_s = 0.0;
  int threads = 1;
  int memory_budget_mb = 0;
  std::string fault_plan;
  double tick_ms = 250.0;
  double read_idle_ms = 0.0;
  int max_pending_out_kb = 4096;
  double queue_deadline_ms = 0.0;
  double rate_limit = 0.0;
  double rate_burst = 8.0;
  ServedDatasetOptions dataset;
};

void Usage() {
  std::fprintf(
      stderr,
      "usage: uguided [--port=P] [--port-file=F] [--max-sessions=N]\n"
      "               [--max-connections=N] [--idle-timeout-ms=T]\n"
      "               [--journal-dir=D]\n"
      "               [--journal-fsync=every|batch] [--journal-retain-s=T]\n"
      "               [--threads=N]\n"
      "               [--memory-budget-mb=M] [--fault-plan=PLAN]\n"
      "               [--tick-ms=T] [--read-idle-ms=T]\n"
      "               [--max-pending-out-kb=K] [--queue-deadline-ms=T]\n"
      "               [--rate-limit=R] [--rate-burst=B]\n"
      "               [--rows=R] [--error-rate=E] [--seed=S]\n"
      "               [--idk-rate=I] [--budget=B]\n"
      "\n"
      "overload protection:\n"
      "  --tick-ms=T            maintenance tick period: drives idle session\n"
      "                         eviction, registry eviction, and connection\n"
      "                         reaping without client traffic (default 250;\n"
      "                         0 disables periodic eviction)\n"
      "  --read-idle-ms=T       reap connections with no complete request\n"
      "                         line for T ms (slow-loris defense; 0=off)\n"
      "  --max-pending-out-kb=K drop a connection holding more than K KiB of\n"
      "                         unread replies (slow reader; 0=unlimited,\n"
      "                         default 4096)\n"
      "  --queue-deadline-ms=T  shed requests that waited more than T ms\n"
      "                         between framing and execution (0=off)\n"
      "  --rate-limit=R         per-session-id token bucket: R ops/sec with\n"
      "                         burst --rate-burst (0=off)\n"
      "durability:\n"
      "  --journal-retain-s=T   delete finished journals older than T\n"
      "                         seconds at startup (0=keep forever);\n"
      "                         resumable and quarantined journals are\n"
      "                         never deleted\n"
      "Refusals carry machine-readable code + retry_after_ms; op=health\n"
      "reports the brownout level and all shed/refused/dropped counters.\n");
}

bool FlagError(const char* flag, const std::string& value, const char* want) {
  std::fprintf(stderr, "uguided: invalid value '%s' for %s (expected %s)\n",
               value.c_str(), flag, want);
  return false;
}

bool ParseIntFlag(const char* flag, const std::string& value, int min_value,
                  int* out) {
  if (value.empty()) return FlagError(flag, value, "an integer");
  long long parsed = 0;
  for (char c : value) {
    if (c < '0' || c > '9') return FlagError(flag, value, "an integer");
    parsed = parsed * 10 + (c - '0');
    if (parsed > std::numeric_limits<int>::max()) {
      return FlagError(flag, value, "an integer in range");
    }
  }
  if (parsed < min_value) return FlagError(flag, value, "a larger integer");
  *out = static_cast<int>(parsed);
  return true;
}

bool ParseDoubleFlag(const char* flag, const std::string& value,
                     double* out) {
  if (value.empty()) return FlagError(flag, value, "a number");
  char* end = nullptr;
  errno = 0;
  const double parsed = std::strtod(value.c_str(), &end);
  if (errno != 0 || end != value.c_str() + value.size()) {
    return FlagError(flag, value, "a number");
  }
  *out = parsed;
  return true;
}

bool ParseU64Flag(const char* flag, const std::string& value, uint64_t* out) {
  if (value.empty()) return FlagError(flag, value, "an integer");
  char* end = nullptr;
  errno = 0;
  const uint64_t parsed = std::strtoull(value.c_str(), &end, 10);
  if (errno != 0 || end != value.c_str() + value.size()) {
    return FlagError(flag, value, "an integer");
  }
  *out = parsed;
  return true;
}

bool ParseArgs(int argc, char** argv, Args* args) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const size_t eq = arg.find('=');
    const std::string flag = arg.substr(0, eq);
    const std::string value =
        eq == std::string::npos ? std::string() : arg.substr(eq + 1);
    if (flag == "--port") {
      if (!ParseIntFlag("--port", value, 0, &args->port)) return false;
    } else if (flag == "--port-file") {
      args->port_file = value;
    } else if (flag == "--max-sessions") {
      if (!ParseIntFlag("--max-sessions", value, 1, &args->max_sessions)) {
        return false;
      }
    } else if (flag == "--max-connections") {
      if (!ParseIntFlag("--max-connections", value, 0,
                        &args->max_connections)) {
        return false;
      }
    } else if (flag == "--idle-timeout-ms") {
      if (!ParseDoubleFlag("--idle-timeout-ms", value,
                           &args->idle_timeout_ms)) {
        return false;
      }
    } else if (flag == "--journal-dir") {
      args->journal_dir = value;
    } else if (flag == "--journal-fsync") {
      Result<JournalFsyncMode> mode = ParseJournalFsyncMode(value);
      if (!mode.ok()) {
        return FlagError("--journal-fsync", value, "every|batch");
      }
      args->journal_fsync = *mode;
    } else if (flag == "--journal-retain-s") {
      if (!ParseDoubleFlag("--journal-retain-s", value,
                           &args->journal_retain_s)) {
        return false;
      }
    } else if (flag == "--threads") {
      if (!ParseIntFlag("--threads", value, 0, &args->threads)) return false;
    } else if (flag == "--memory-budget-mb") {
      if (!ParseIntFlag("--memory-budget-mb", value, 0,
                        &args->memory_budget_mb)) {
        return false;
      }
    } else if (flag == "--fault-plan") {
      args->fault_plan = value;
    } else if (flag == "--tick-ms") {
      if (!ParseDoubleFlag("--tick-ms", value, &args->tick_ms)) return false;
    } else if (flag == "--read-idle-ms") {
      if (!ParseDoubleFlag("--read-idle-ms", value, &args->read_idle_ms)) {
        return false;
      }
    } else if (flag == "--max-pending-out-kb") {
      if (!ParseIntFlag("--max-pending-out-kb", value, 0,
                        &args->max_pending_out_kb)) {
        return false;
      }
    } else if (flag == "--queue-deadline-ms") {
      if (!ParseDoubleFlag("--queue-deadline-ms", value,
                           &args->queue_deadline_ms)) {
        return false;
      }
    } else if (flag == "--rate-limit") {
      if (!ParseDoubleFlag("--rate-limit", value, &args->rate_limit)) {
        return false;
      }
    } else if (flag == "--rate-burst") {
      if (!ParseDoubleFlag("--rate-burst", value, &args->rate_burst)) {
        return false;
      }
    } else if (flag == "--rows") {
      if (!ParseIntFlag("--rows", value, 1, &args->dataset.rows)) return false;
    } else if (flag == "--error-rate") {
      if (!ParseDoubleFlag("--error-rate", value, &args->dataset.error_rate)) {
        return false;
      }
    } else if (flag == "--seed") {
      if (!ParseU64Flag("--seed", value, &args->dataset.seed)) return false;
    } else if (flag == "--idk-rate") {
      if (!ParseDoubleFlag("--idk-rate", value, &args->dataset.idk_rate)) {
        return false;
      }
    } else if (flag == "--budget") {
      if (!ParseDoubleFlag("--budget", value, &args->dataset.budget)) {
        return false;
      }
    } else {
      std::fprintf(stderr, "uguided: unknown flag %s\n", flag.c_str());
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!ParseArgs(argc, argv, &args)) {
    Usage();
    return 2;
  }

  if (!args.fault_plan.empty()) {
    Status loaded = FaultRegistry::Global().LoadPlan(args.fault_plan);
    if (!loaded.ok()) {
      std::fprintf(stderr, "uguided: bad --fault-plan: %s\n",
                   loaded.message().c_str());
      return 2;
    }
  }

  const int threads =
      args.threads > 0
          ? args.threads
          : static_cast<int>(std::thread::hardware_concurrency());
  args.dataset.num_threads = threads;

  MemoryBudget memory =
      args.memory_budget_mb > 0
          ? MemoryBudget::FromMegabytes(args.memory_budget_mb)
          : MemoryBudget();
  ThreadPool pool(std::max(1, threads));

  DatasetRegistryOptions registry_options;
  registry_options.pool = &pool;
  registry_options.memory_budget =
      args.memory_budget_mb > 0 ? &memory : nullptr;
  DatasetRegistry registry(registry_options);

  std::fprintf(stderr, "uguided: building dataset (%d rows)...\n",
               args.dataset.rows);
  Result<std::shared_ptr<const DatasetArtifacts>> artifacts =
      registry.Open(args.dataset);
  if (!artifacts.ok()) {
    std::fprintf(stderr, "uguided: dataset: %s\n",
                 artifacts.status().ToString().c_str());
    return 1;
  }

  // The live mutation subsystem wraps the registry's immutable bundle:
  // op=mutate batches advance it epoch by epoch while open sessions stay
  // pinned to the epoch they started against.
  LiveDataset live(&(*artifacts)->session, (*artifacts)->engine.get(),
                   &(*artifacts)->graph, (*artifacts)->key.content_hash,
                   &pool);

  DaemonOptions options;
  options.port = args.port;
  options.max_connections = args.max_connections;
  options.tick_interval_ms = args.tick_ms;
  options.read_idle_ms = args.read_idle_ms;
  options.max_pending_out_bytes =
      static_cast<size_t>(args.max_pending_out_kb) * 1024;
  // Registry eviction rides the same maintenance tick as session eviction.
  options.on_tick = [&registry] { registry.EvictIdle(); };
  options.manager.max_sessions = args.max_sessions;
  options.manager.idle_timeout_ms = args.idle_timeout_ms;
  options.manager.journal_dir = args.journal_dir;
  options.manager.journal_fsync = args.journal_fsync;
  options.manager.journal_retain_s = args.journal_retain_s;
  options.manager.pool = &pool;
  options.manager.memory_budget =
      args.memory_budget_mb > 0 ? &memory : nullptr;
  options.manager.admission.queue_deadline_ms = args.queue_deadline_ms;
  options.manager.admission.rate_limit_per_sec = args.rate_limit;
  options.manager.admission.rate_burst = args.rate_burst;
  options.manager.live = &live;

  Result<std::unique_ptr<ServingDaemon>> daemon =
      ServingDaemon::Start(*artifacts, options);
  if (!daemon.ok()) {
    std::fprintf(stderr, "uguided: %s\n",
                 daemon.status().ToString().c_str());
    return 1;
  }

  if (!args.journal_dir.empty()) {
    // The recovery index (built by the manager before the port opened):
    // what the previous incarnation left behind and what happened to it.
    const JournalRecoveryStats recovery = (*daemon)->manager().recovery_stats();
    std::printf(
        "uguided: recovery. resumable=%d finished_journals=%d quarantined=%d"
        " gced=%d\n",
        recovery.resumable, recovery.finished, recovery.quarantined,
        recovery.gced);
  }
  std::printf("uguided: listening on 127.0.0.1:%d\n", (*daemon)->port());
  std::fflush(stdout);
  if (!args.port_file.empty()) {
    std::FILE* f = std::fopen(args.port_file.c_str(), "w");
    if (f != nullptr) {
      std::fprintf(f, "%d\n", (*daemon)->port());
      std::fclose(f);
    }
  }

  struct sigaction action;
  std::memset(&action, 0, sizeof(action));
  action.sa_handler = HandleStopSignal;
  ::sigaction(SIGTERM, &action, nullptr);
  ::sigaction(SIGINT, &action, nullptr);

  // Eviction now rides the reactor's maintenance tick (--tick-ms); the
  // main thread only waits for the stop signal.
  while (g_stop == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }

  std::fprintf(stderr, "uguided: draining...\n");
  (*daemon)->Shutdown();
  const SessionManagerStats stats = (*daemon)->manager().stats();
  const AdmissionStats admission = (*daemon)->manager().admission_stats();
  const ReactorStats reactor = (*daemon)->reactor().stats();
  const JournalRecoveryStats recovery = (*daemon)->manager().recovery_stats();
  std::printf(
      "uguided: done. opened=%d finished=%d evicted=%d refused=%d"
      " storage_failed=%d quarantined=%d\n",
      stats.opened, stats.finished, stats.evicted, stats.refused,
      stats.storage_failed, recovery.quarantined);
  std::printf(
      "uguided: overload. rate_limited=%" PRId64 " deadline_shed=%" PRId64
      " brownout_refused=%" PRId64 " brownout_shed=%" PRId64
      " dropped=%" PRId64 " dropped_slow_reader=%" PRId64
      " reaped_idle=%" PRId64 "\n",
      admission.rate_limited, admission.deadline_shed,
      admission.brownout_refused, admission.brownout_shed, reactor.dropped,
      reactor.dropped_slow_reader, reactor.reaped_idle);
  const LiveDataset::Stats live_stats = live.stats();
  std::printf(
      "uguided: live. version=%" PRIu64 " batches=%" PRId64
      " ops_applied=%" PRId64 " ops_refused=%" PRId64
      " fds_recomputed=%" PRId64 " fds_skipped=%" PRId64 "\n",
      live.Current()->version, live_stats.batches_applied,
      live_stats.ops_applied, live_stats.ops_refused,
      live_stats.fds_recomputed, live_stats.fds_skipped);
  return 0;
}
