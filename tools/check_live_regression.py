#!/usr/bin/env python3
"""Live-maintenance perf gate: compare a fresh BENCH_live.json against the
checked-in baseline.

Usage: check_live_regression.py BASELINE_JSON FRESH_JSON

Two checks per batch size:
  * the single-row speedup (incremental maintenance vs rebuild-per-batch)
    must stay >= the hard floor — this is the headline number the live
    subsystem exists for (override with LIVE_MIN_SPEEDUP, default 5.0);
  * incremental_ms_per_batch may not rise more than the tolerance above
    the baseline (±40% by default — absolute times on shared runners are
    noisy; override with LIVE_TOLERANCE_PCT).

Exit status: 0 clean, 1 regression, 2 usage/baseline mismatch.
"""

import json
import os
import sys


def load_sizes(path):
    with open(path) as f:
        report = json.load(f)
    sizes = report.get("batch_sizes")
    if not sizes:
        sys.exit(f"{path}: no batch_sizes in bench JSON")
    return {size["batch_rows"]: size for size in sizes}


def main():
    if len(sys.argv) != 3:
        print(__doc__, file=sys.stderr)
        return 2
    min_speedup = float(os.environ.get("LIVE_MIN_SPEEDUP", "5.0"))
    tolerance = float(os.environ.get("LIVE_TOLERANCE_PCT", "40")) / 100.0
    baseline = load_sizes(sys.argv[1])
    fresh = load_sizes(sys.argv[2])

    failures = []
    for batch_rows, base in sorted(baseline.items()):
        size = fresh.get(batch_rows)
        if size is None:
            failures.append(f"batch={batch_rows}: missing from fresh run")
            continue
        incremental = size["incremental_ms_per_batch"]
        ceiling = base["incremental_ms_per_batch"] * (1.0 + tolerance)
        speedup = size["speedup"]
        verdict = "ok"
        if incremental > ceiling:
            verdict = "REGRESSION"
            failures.append(
                f"batch={batch_rows}: incremental "
                f"{incremental:.3f}ms > ceiling {ceiling:.3f}ms "
                f"(baseline {base['incremental_ms_per_batch']:.3f}ms)")
        if batch_rows == 1 and speedup < min_speedup:
            verdict = "REGRESSION"
            failures.append(
                f"batch={batch_rows}: speedup {speedup:.2f}x < required "
                f"{min_speedup:.2f}x")
        print(f"batch={batch_rows}: incremental {incremental:.3f}ms "
              f"(baseline {base['incremental_ms_per_batch']:.3f}ms, "
              f"ceiling {ceiling:.3f}ms) speedup {speedup:.2f}x "
              f"[{verdict}]")

    if failures:
        print("\nlive maintenance perf regression:", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
