// uguide — command-line front end to the library, for working with your
// own CSV files without writing C++:
//
//   uguide profile  data.csv [--max-lhs=N] [--max-error=E]
//       Discover minimal (approximate) FDs and print them.
//
//   uguide detect   data.csv --fds=rules.txt [--out=suspects.csv]
//       Flag cells violating the given FDs (one "lhs1,lhs2->rhs" per line,
//       '#' comments allowed). Without --fds, candidates are discovered
//       automatically (exact FDs relaxed to 10% g3).
//
//   uguide repair   data.csv --fds=rules.txt --out=repaired.csv
//       Majority-vote repair of the violations of the given FDs.
//
//   uguide cfds     data.csv [--min-support=K]
//       Mine conditional FDs: conditions under which broken FDs hold.
//
// Every subcommand prints a short human-readable summary to stdout; --out
// writes machine-readable CSV.

#include <cstdio>
#include <cstring>
#include <string>

#include "core/uguide.h"

using namespace uguide;

namespace {

struct Args {
  std::string command;
  std::string csv_path;
  std::string fds_path;
  std::string out_path;
  int max_lhs = 3;
  double max_error = 0.0;
  int min_support = 8;
  int threads = 1;  // 0 = all hardware threads
};

void Usage() {
  std::fprintf(stderr,
               "usage: uguide <profile|detect|repair|cfds> data.csv\n"
               "              [--fds=rules.txt] [--out=file.csv]\n"
               "              [--max-lhs=N] [--max-error=E] "
               "[--min-support=K] [--threads=N]\n"
               "\n"
               "  --threads=N   worker threads for FD discovery "
               "(default 1; 0 = all cores)\n");
}

bool ParseArgs(int argc, char** argv, Args* args) {
  if (argc < 3) return false;
  args->command = argv[1];
  args->csv_path = argv[2];
  for (int i = 3; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--fds=", 0) == 0) {
      args->fds_path = arg.substr(6);
    } else if (arg.rfind("--out=", 0) == 0) {
      args->out_path = arg.substr(6);
    } else if (arg.rfind("--max-lhs=", 0) == 0) {
      args->max_lhs = std::atoi(arg.c_str() + 10);
    } else if (arg.rfind("--max-error=", 0) == 0) {
      args->max_error = std::atof(arg.c_str() + 12);
    } else if (arg.rfind("--min-support=", 0) == 0) {
      args->min_support = std::atoi(arg.c_str() + 14);
    } else if (arg.rfind("--threads=", 0) == 0) {
      args->threads = std::atoi(arg.c_str() + 10);
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      return false;
    }
  }
  return true;
}

// Dies with a message on error; the CLI has no one to propagate to.
template <typename T>
T Unwrap(Result<T> result, const char* what) {
  if (!result.ok()) {
    std::fprintf(stderr, "error %s: %s\n", what,
                 result.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(result).ValueOrDie();
}

FdSet LoadOrDiscoverFds(const Args& args, const Relation& rel) {
  if (!args.fds_path.empty()) {
    std::FILE* f = std::fopen(args.fds_path.c_str(), "rb");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot open %s\n", args.fds_path.c_str());
      std::exit(1);
    }
    std::string text;
    char buffer[4096];
    size_t n;
    while ((n = std::fread(buffer, 1, sizeof buffer, f)) > 0) {
      text.append(buffer, n);
    }
    std::fclose(f);
    return Unwrap(FdSet::Parse(text, rel.schema()), "parsing FD rules");
  }
  std::printf("no --fds given; discovering candidates (exact FDs relaxed "
              "to 10%% g3)...\n");
  CandidateGenOptions opts;
  opts.max_lhs_size = args.max_lhs;
  opts.num_threads = args.threads;
  CandidateSet candidates =
      Unwrap(GenerateCandidates(rel, opts), "discovering candidates");
  return candidates.candidates;
}

int RunProfile(const Args& args, const Relation& rel) {
  TaneOptions opts;
  opts.max_lhs_size = args.max_lhs;
  opts.max_error = args.max_error;
  opts.num_threads = args.threads;
  FdSet fds = Unwrap(DiscoverFds(rel, opts), "profiling");
  std::printf("# %zu minimal %sFDs (max LHS %d%s)\n", fds.Size(),
              args.max_error > 0 ? "approximate " : "", args.max_lhs,
              args.max_error > 0
                  ? (", g3 <= " + std::to_string(args.max_error)).c_str()
                  : "");
  std::printf("%s", fds.ToString(rel.schema()).c_str());
  return 0;
}

int RunDetect(const Args& args, const Relation& rel) {
  FdSet fds = LoadOrDiscoverFds(args, rel);
  std::vector<Cell> suspects = AllDetections(rel, fds);
  std::printf("%zu FD(s) flag %zu suspect cell(s) across %d rows\n",
              fds.Size(), suspects.size(), rel.NumRows());
  const size_t preview = std::min<size_t>(suspects.size(), 15);
  for (size_t i = 0; i < preview; ++i) {
    const Cell& cell = suspects[i];
    std::printf("  row %-7d %-20s '%s'\n", cell.row,
                rel.schema().Name(cell.col).c_str(),
                rel.Value(cell).c_str());
  }
  if (suspects.size() > preview) {
    std::printf("  ... (%zu more)\n", suspects.size() - preview);
  }
  if (!args.out_path.empty()) {
    CsvTable out;
    out.header = {"row", "attribute", "value"};
    for (const Cell& cell : suspects) {
      out.rows.push_back({std::to_string(cell.row),
                          rel.schema().Name(cell.col), rel.Value(cell)});
    }
    Status st = WriteCsvFile(out, args.out_path);
    if (!st.ok()) {
      std::fprintf(stderr, "error writing %s: %s\n", args.out_path.c_str(),
                   st.ToString().c_str());
      return 1;
    }
    std::printf("wrote %s\n", args.out_path.c_str());
  }
  return 0;
}

int RunRepair(const Args& args, const Relation& rel) {
  FdSet fds = LoadOrDiscoverFds(args, rel);
  RepairResult result = RepairWithFds(rel, fds);
  std::printf("%zu correction(s) proposed\n", result.repairs.size());
  const size_t preview = std::min<size_t>(result.repairs.size(), 10);
  for (size_t i = 0; i < preview; ++i) {
    const CellRepair& r = result.repairs[i];
    std::printf("  row %-7d %-20s '%s' -> '%s'\n", r.cell.row,
                rel.schema().Name(r.cell.col).c_str(), r.old_value.c_str(),
                r.new_value.c_str());
  }
  if (!args.out_path.empty()) {
    Status st = WriteCsvFile(result.repaired.ToCsv(), args.out_path);
    if (!st.ok()) {
      std::fprintf(stderr, "error writing %s: %s\n", args.out_path.c_str(),
                   st.ToString().c_str());
      return 1;
    }
    std::printf("wrote repaired table to %s\n", args.out_path.c_str());
  }
  return 0;
}

int RunCfds(const Args& args, const Relation& rel) {
  // Broken FDs worth conditioning: the approximate frontier at 20% g3
  // whose members fail exactly.
  TaneOptions opts;
  opts.max_lhs_size = args.max_lhs;
  opts.max_error = 0.20;
  opts.num_threads = args.threads;
  FdSet afds = Unwrap(DiscoverFds(rel, opts), "profiling");
  CfdDiscoveryOptions mine;
  mine.min_support = args.min_support;
  std::vector<Cfd> variable = DiscoverVariableCfds(rel, afds, mine);
  std::vector<Cfd> constant = DiscoverConstantCfds(rel, mine);
  std::printf("# %zu variable CFD(s)\n", variable.size());
  for (const Cfd& cfd : variable) {
    std::printf("%s\n", cfd.ToString(rel.schema()).c_str());
  }
  std::printf("# %zu constant CFD(s)\n", constant.size());
  for (const Cfd& cfd : constant) {
    std::printf("%s\n", cfd.ToString(rel.schema()).c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!ParseArgs(argc, argv, &args)) {
    Usage();
    return 2;
  }
  Relation rel =
      Unwrap(Relation::FromCsvFile(args.csv_path), "loading CSV");
  std::printf("loaded %s: %d rows x %d attributes\n", args.csv_path.c_str(),
              rel.NumRows(), rel.NumAttributes());

  if (args.command == "profile") return RunProfile(args, rel);
  if (args.command == "detect") return RunDetect(args, rel);
  if (args.command == "repair") return RunRepair(args, rel);
  if (args.command == "cfds") return RunCfds(args, rel);
  Usage();
  return 2;
}
