// uguide — command-line front end to the library, for working with your
// own CSV files without writing C++:
//
//   uguide profile  data.csv [--max-lhs=N] [--max-error=E]
//       Discover minimal (approximate) FDs and print them.
//
//   uguide detect   data.csv --fds=rules.txt [--out=suspects.csv]
//       Flag cells violating the given FDs (one "lhs1,lhs2->rhs" per line,
//       '#' comments allowed). Without --fds, candidates are discovered
//       automatically (exact FDs relaxed to 10% g3).
//
//   uguide repair   data.csv --fds=rules.txt --out=repaired.csv
//       Majority-vote repair of the violations of the given FDs.
//
//   uguide cfds     data.csv [--min-support=K]
//       Mine conditional FDs: conditions under which broken FDs hold.
//
//   uguide session  clean.csv [--strategy=fd|cell|tuple] [--budget=B]
//                   [--error-rate=E] [--journal=J] [--resume] [--seed=S]
//       Inject errors into a clean table and run one interactive session
//       against the simulated expert. --journal records every answered
//       question durably; --resume replays the journal to finish an
//       interrupted run with the identical report.
//
// Global flags: --fault-plan=PLAN loads a deterministic fault-injection
// plan (see fault_injection.h for the grammar); --discovery-deadline-ms=D
// bounds FD discovery, returning a truncated-but-sound FD set.
//
// Every subcommand prints a short human-readable summary to stdout; --out
// writes machine-readable CSV.

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <optional>
#include <string>

#include "core/uguide.h"

using namespace uguide;

namespace {

struct Args {
  std::string command;
  std::string csv_path;
  std::string fds_path;
  std::string out_path;
  int max_lhs = 3;
  double max_error = 0.0;
  int min_support = 8;
  int threads = 1;  // 0 = all hardware threads
  int memory_budget_mb = 0;  // 0 = ungoverned
  // Fault tolerance / session flags.
  std::string fault_plan;
  double discovery_deadline_ms = 0.0;
  std::string strategy = "fd";
  double budget = 500.0;
  double error_rate = 0.15;
  std::string journal_path;
  bool resume = false;
  JournalFsyncMode journal_fsync = JournalFsyncMode::kEvery;
  uint64_t seed = 11;
  // Owned by main; null when --memory-budget-mb is absent.
  MemoryBudget* memory_budget = nullptr;
};

void Usage() {
  std::fprintf(stderr,
               "usage: uguide <profile|detect|repair|cfds|session> data.csv\n"
               "              [--fds=rules.txt] [--out=file.csv]\n"
               "              [--max-lhs=N] [--max-error=E] "
               "[--min-support=K] [--threads=N]\n"
               "              [--memory-budget-mb=M] [--fault-plan=PLAN] "
               "[--discovery-deadline-ms=D]\n"
               "              [--strategy=fd|cell|tuple] [--budget=B] "
               "[--error-rate=E]\n"
               "              [--journal=J] [--journal-fsync=every|batch] "
               "[--resume] [--seed=S]\n"
               "\n"
               "  --threads=N   worker threads for FD discovery and the "
               "session's violation-\n"
               "                graph build (default 1; 0 = all cores); "
               "results are identical\n"
               "                at any thread count\n"
               "  --memory-budget-mb=M         cap partition memory at M MiB "
               "(0 = unlimited);\n"
               "                               discovery evicts, then "
               "truncates, instead of OOMing\n"
               "  --fault-plan=PLAN            deterministic fault injection "
               "(see fault_injection.h)\n"
               "  --discovery-deadline-ms=D    bound FD discovery; results "
               "may be truncated\n"
               "  session: --journal=J records answered questions durably; "
               "--resume replays J\n"
               "           --journal-fsync=batch amortizes the per-record "
               "fsync (a crash can\n"
               "           lose one trailing batch, which a resume simply "
               "re-asks)\n");
}

// Strict flag-value parsers. A value that does not parse (or is out of
// range) is a usage error reported on stderr — never a silent default;
// atoi's "--threads=two" -> 0 used to mean "all cores".

bool FlagError(const char* flag, std::string_view value, const char* want) {
  std::fprintf(stderr, "uguide: invalid value '%.*s' for %s (expected %s)\n",
               static_cast<int>(value.size()), value.data(), flag, want);
  return false;
}

bool ParseIntFlag(const char* flag, std::string_view value, int min_value,
                  int* out) {
  if (value.empty()) return FlagError(flag, value, "an integer");
  long long parsed = 0;
  for (char c : value) {
    if (c < '0' || c > '9') return FlagError(flag, value, "an integer");
    parsed = parsed * 10 + (c - '0');
    if (parsed > std::numeric_limits<int>::max()) {
      return FlagError(flag, value, "an integer in range");
    }
  }
  if (parsed < min_value) return FlagError(flag, value, "a larger integer");
  *out = static_cast<int>(parsed);
  return true;
}

bool ParseU64Flag(const char* flag, std::string_view value, uint64_t* out) {
  if (value.empty()) return FlagError(flag, value, "an unsigned integer");
  uint64_t parsed = 0;
  for (char c : value) {
    if (c < '0' || c > '9') {
      return FlagError(flag, value, "an unsigned integer");
    }
    const uint64_t digit = static_cast<uint64_t>(c - '0');
    if (parsed > (std::numeric_limits<uint64_t>::max() - digit) / 10) {
      return FlagError(flag, value, "an unsigned 64-bit integer");
    }
    parsed = parsed * 10 + digit;
  }
  *out = parsed;
  return true;
}

bool ParseDoubleFlag(const char* flag, std::string_view value, double lo,
                     double hi, double* out) {
  if (value.empty()) return FlagError(flag, value, "a number");
  const std::string copy(value);
  char* end = nullptr;
  const double parsed = std::strtod(copy.c_str(), &end);
  if (end != copy.c_str() + copy.size() || !std::isfinite(parsed) ||
      !(parsed >= lo && parsed <= hi)) {
    return FlagError(flag, value, "a finite number in range");
  }
  *out = parsed;
  return true;
}

bool ParseArgs(int argc, char** argv, Args* args) {
  if (argc < 3) {
    std::fprintf(stderr, "uguide: expected a command and a CSV path\n");
    return false;
  }
  args->command = argv[1];
  args->csv_path = argv[2];
  for (int i = 3; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value_of = [&arg](size_t prefix) {
      return std::string_view(arg).substr(prefix);
    };
    if (arg.rfind("--fds=", 0) == 0) {
      args->fds_path = arg.substr(6);
    } else if (arg.rfind("--out=", 0) == 0) {
      args->out_path = arg.substr(6);
    } else if (arg.rfind("--max-lhs=", 0) == 0) {
      if (!ParseIntFlag("--max-lhs", value_of(10), 1, &args->max_lhs)) {
        return false;
      }
    } else if (arg.rfind("--max-error=", 0) == 0) {
      if (!ParseDoubleFlag("--max-error", value_of(12), 0.0, 1.0,
                           &args->max_error)) {
        return false;
      }
    } else if (arg.rfind("--min-support=", 0) == 0) {
      if (!ParseIntFlag("--min-support", value_of(14), 1,
                        &args->min_support)) {
        return false;
      }
    } else if (arg.rfind("--threads=", 0) == 0) {
      if (!ParseIntFlag("--threads", value_of(10), 0, &args->threads)) {
        return false;
      }
    } else if (arg.rfind("--memory-budget-mb=", 0) == 0) {
      if (!ParseIntFlag("--memory-budget-mb", value_of(19), 0,
                        &args->memory_budget_mb)) {
        return false;
      }
    } else if (arg.rfind("--fault-plan=", 0) == 0) {
      args->fault_plan = arg.substr(13);
    } else if (arg.rfind("--discovery-deadline-ms=", 0) == 0) {
      if (!ParseDoubleFlag("--discovery-deadline-ms", value_of(24), 0.0,
                           std::numeric_limits<double>::max(),
                           &args->discovery_deadline_ms)) {
        return false;
      }
    } else if (arg.rfind("--strategy=", 0) == 0) {
      args->strategy = arg.substr(11);
    } else if (arg.rfind("--budget=", 0) == 0) {
      if (!ParseDoubleFlag("--budget", value_of(9), 0.0,
                           std::numeric_limits<double>::max(),
                           &args->budget)) {
        return false;
      }
    } else if (arg.rfind("--error-rate=", 0) == 0) {
      if (!ParseDoubleFlag("--error-rate", value_of(13), 0.0, 1.0,
                           &args->error_rate)) {
        return false;
      }
    } else if (arg.rfind("--journal=", 0) == 0) {
      args->journal_path = arg.substr(10);
    } else if (arg.rfind("--journal-fsync=", 0) == 0) {
      const std::string value = arg.substr(16);
      Result<JournalFsyncMode> mode = ParseJournalFsyncMode(value);
      if (!mode.ok()) {
        std::fprintf(stderr,
                     "uguide: invalid value '%s' for --journal-fsync "
                     "(expected every|batch)\n",
                     value.c_str());
        return false;
      }
      args->journal_fsync = *mode;
    } else if (arg == "--resume") {
      args->resume = true;
    } else if (arg.rfind("--seed=", 0) == 0) {
      if (!ParseU64Flag("--seed", value_of(7), &args->seed)) return false;
    } else {
      std::fprintf(stderr, "uguide: unknown flag: %s\n", arg.c_str());
      return false;
    }
  }
  return true;
}

// Dies with a message on error; the CLI has no one to propagate to.
template <typename T>
T Unwrap(Result<T> result, const char* what) {
  if (!result.ok()) {
    std::fprintf(stderr, "error %s: %s\n", what,
                 result.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(result).ValueOrDie();
}

FdSet LoadOrDiscoverFds(const Args& args, const Relation& rel) {
  if (!args.fds_path.empty()) {
    std::FILE* f = std::fopen(args.fds_path.c_str(), "rb");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot open %s\n", args.fds_path.c_str());
      std::exit(1);
    }
    std::string text;
    char buffer[4096];
    size_t n;
    while ((n = std::fread(buffer, 1, sizeof buffer, f)) > 0) {
      text.append(buffer, n);
    }
    std::fclose(f);
    return Unwrap(FdSet::Parse(text, rel.schema()), "parsing FD rules");
  }
  std::printf("no --fds given; discovering candidates (exact FDs relaxed "
              "to 10%% g3)...\n");
  CandidateGenOptions opts;
  opts.max_lhs_size = args.max_lhs;
  opts.num_threads = args.threads;
  opts.discovery_deadline_ms = args.discovery_deadline_ms;
  opts.memory_budget = args.memory_budget;
  CandidateSet candidates =
      Unwrap(GenerateCandidates(rel, opts), "discovering candidates");
  if (candidates.truncated) {
    std::printf("warning: discovery hit the %.0fms deadline; candidate set "
                "is truncated\n",
                args.discovery_deadline_ms);
  }
  if (candidates.memory_truncated) {
    std::printf("warning: discovery hit the %dMiB memory budget; candidate "
                "set is truncated\n",
                args.memory_budget_mb);
  }
  return candidates.candidates;
}

int RunProfile(const Args& args, const Relation& rel) {
  TaneOptions opts;
  opts.max_lhs_size = args.max_lhs;
  opts.max_error = args.max_error;
  opts.num_threads = args.threads;
  opts.deadline_ms = args.discovery_deadline_ms;
  opts.memory_budget = args.memory_budget;
  DiscoveryOutcome outcome =
      Unwrap(DiscoverFdsDetailed(rel, opts), "profiling");
  const FdSet& fds = outcome.fds;
  if (outcome.truncated) {
    std::printf("warning: discovery hit the %.0fms deadline after %d "
                "level(s); FD set is truncated\n",
                args.discovery_deadline_ms, outcome.levels_completed);
  }
  if (outcome.memory_truncated) {
    std::printf("warning: discovery hit the %dMiB memory budget after %d "
                "level(s); FD set is truncated\n",
                args.memory_budget_mb, outcome.levels_completed);
  }
  std::printf("# %zu minimal %sFDs (max LHS %d%s)\n", fds.Size(),
              args.max_error > 0 ? "approximate " : "", args.max_lhs,
              args.max_error > 0
                  ? (", g3 <= " + std::to_string(args.max_error)).c_str()
                  : "");
  std::printf("%s", fds.ToString(rel.schema()).c_str());
  return 0;
}

int RunDetect(const Args& args, const Relation& rel) {
  FdSet fds = LoadOrDiscoverFds(args, rel);
  std::vector<Cell> suspects = AllDetections(rel, fds);
  std::printf("%zu FD(s) flag %zu suspect cell(s) across %d rows\n",
              fds.Size(), suspects.size(), rel.NumRows());
  const size_t preview = std::min<size_t>(suspects.size(), 15);
  for (size_t i = 0; i < preview; ++i) {
    const Cell& cell = suspects[i];
    std::printf("  row %-7d %-20s '%s'\n", cell.row,
                rel.schema().Name(cell.col).c_str(),
                rel.Value(cell).c_str());
  }
  if (suspects.size() > preview) {
    std::printf("  ... (%zu more)\n", suspects.size() - preview);
  }
  if (!args.out_path.empty()) {
    CsvTable out;
    out.header = {"row", "attribute", "value"};
    for (const Cell& cell : suspects) {
      out.rows.push_back({std::to_string(cell.row),
                          rel.schema().Name(cell.col), rel.Value(cell)});
    }
    Status st = WriteCsvFile(out, args.out_path);
    if (!st.ok()) {
      std::fprintf(stderr, "error writing %s: %s\n", args.out_path.c_str(),
                   st.ToString().c_str());
      return 1;
    }
    std::printf("wrote %s\n", args.out_path.c_str());
  }
  return 0;
}

int RunRepair(const Args& args, const Relation& rel) {
  FdSet fds = LoadOrDiscoverFds(args, rel);
  RepairResult result = RepairWithFds(rel, fds);
  std::printf("%zu correction(s) proposed\n", result.repairs.size());
  const size_t preview = std::min<size_t>(result.repairs.size(), 10);
  for (size_t i = 0; i < preview; ++i) {
    const CellRepair& r = result.repairs[i];
    std::printf("  row %-7d %-20s '%s' -> '%s'\n", r.cell.row,
                rel.schema().Name(r.cell.col).c_str(), r.old_value.c_str(),
                r.new_value.c_str());
  }
  if (!args.out_path.empty()) {
    Status st = WriteCsvFile(result.repaired.ToCsv(), args.out_path);
    if (!st.ok()) {
      std::fprintf(stderr, "error writing %s: %s\n", args.out_path.c_str(),
                   st.ToString().c_str());
      return 1;
    }
    std::printf("wrote repaired table to %s\n", args.out_path.c_str());
  }
  return 0;
}

int RunCfds(const Args& args, const Relation& rel) {
  // Broken FDs worth conditioning: the approximate frontier at 20% g3
  // whose members fail exactly.
  TaneOptions opts;
  opts.max_lhs_size = args.max_lhs;
  opts.max_error = 0.20;
  opts.num_threads = args.threads;
  opts.deadline_ms = args.discovery_deadline_ms;
  opts.memory_budget = args.memory_budget;
  DiscoveryOutcome outcome =
      Unwrap(DiscoverFdsDetailed(rel, opts), "profiling");
  if (outcome.truncated) {
    std::printf("warning: discovery hit the %.0fms deadline; AFD set is "
                "truncated\n",
                args.discovery_deadline_ms);
  }
  if (outcome.memory_truncated) {
    std::printf("warning: discovery hit the %dMiB memory budget; AFD set is "
                "truncated\n",
                args.memory_budget_mb);
  }
  const FdSet& afds = outcome.fds;
  CfdDiscoveryOptions mine;
  mine.min_support = args.min_support;
  std::vector<Cfd> variable = DiscoverVariableCfds(rel, afds, mine);
  std::vector<Cfd> constant = DiscoverConstantCfds(rel, mine);
  std::printf("# %zu variable CFD(s)\n", variable.size());
  for (const Cfd& cfd : variable) {
    std::printf("%s\n", cfd.ToString(rel.schema()).c_str());
  }
  std::printf("# %zu constant CFD(s)\n", constant.size());
  for (const Cfd& cfd : constant) {
    std::printf("%s\n", cfd.ToString(rel.schema()).c_str());
  }
  return 0;
}

// Runs one interactive session on a clean table: inject errors, generate
// candidates, question the simulated expert. The fault-tolerance machinery
// (journal, resume, retries) is exercised end-to-end here.
int RunSession(const Args& args, const Relation& clean) {
  std::unique_ptr<Strategy> strategy;
  if (args.strategy == "fd") {
    strategy = MakeFdQBudgetedMaxCoverage();
  } else if (args.strategy == "cell") {
    strategy = MakeCellQSums();
  } else if (args.strategy == "tuple") {
    strategy = MakeTupleSamplingSaturationSets();
  } else {
    std::fprintf(stderr, "unknown strategy '%s' (want fd|cell|tuple)\n",
                 args.strategy.c_str());
    return 2;
  }

  TaneOptions tane;
  tane.max_lhs_size = args.max_lhs;
  tane.num_threads = args.threads;
  tane.memory_budget = args.memory_budget;
  FdSet true_fds = Unwrap(DiscoverFds(clean, tane), "discovering true FDs");

  ErrorGenOptions errors;
  errors.error_rate = args.error_rate;
  errors.seed = args.seed;
  DirtyDataset dataset =
      Unwrap(InjectErrors(clean, true_fds, errors), "injecting errors");

  SessionConfig config;
  config.candidate_options.max_lhs_size = args.max_lhs;
  config.candidate_options.num_threads = args.threads;
  config.candidate_options.discovery_deadline_ms = args.discovery_deadline_ms;
  config.candidate_options.memory_budget = args.memory_budget;
  config.budget = args.budget;
  config.expert_seed = args.seed;
  Session session = Unwrap(
      Session::Create(clean, std::move(dataset), config), "creating session");
  if (session.discovery_truncated()) {
    std::printf("warning: candidate discovery hit the %.0fms deadline; "
                "candidate set is truncated\n",
                args.discovery_deadline_ms);
  }
  if (session.discovery_memory_truncated()) {
    std::printf("warning: candidate discovery hit the %dMiB memory budget; "
                "candidate set is truncated\n",
                args.memory_budget_mb);
  }

  SessionRunOptions run;
  run.journal_path = args.journal_path;
  run.resume = args.resume;
  run.journal_fsync = args.journal_fsync;
  run.resilient = !args.fault_plan.empty();
  SessionReport report = Unwrap(
      session.Run(*strategy, args.budget, run), "running session");

  std::printf("strategy %s: %d question(s), cost %.2f of %.2f\n",
              report.strategy_name.c_str(), report.result.questions_asked,
              report.result.cost_spent, args.budget);
  if (report.questions_replayed > 0) {
    std::printf("  resumed: %d question(s) replayed from %s\n",
                report.questions_replayed, args.journal_path.c_str());
  }
  if (run.resilient) {
    std::printf("  resilience: retry surcharge %.2f, %d question(s) "
                "degraded to idk\n",
                report.retry_cost, report.questions_exhausted);
  }
  std::printf("accepted %zu FD(s):\n%s",
              report.result.accepted_fds.Size(),
              report.result.accepted_fds.ToString(clean.schema()).c_str());
  std::printf("detections: %zu (%zu true, %zu false); %.1f%% of true "
              "violations found\n",
              report.metrics.detections, report.metrics.true_positives,
              report.metrics.false_positives,
              report.metrics.TrueViolationPct());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!ParseArgs(argc, argv, &args)) {
    Usage();
    return 2;
  }
  if (!args.fault_plan.empty()) {
    Status st = FaultRegistry::Global().LoadPlan(args.fault_plan);
    if (!st.ok()) {
      std::fprintf(stderr, "error parsing --fault-plan: %s\n",
                   st.ToString().c_str());
      return 2;
    }
  }
  std::optional<MemoryBudget> budget;
  if (args.memory_budget_mb > 0) {
    const size_t hard =
        static_cast<size_t>(args.memory_budget_mb) * (size_t{1} << 20);
    budget.emplace(hard - hard / 5, hard);  // soft at 80%, see FromMegabytes
    args.memory_budget = &*budget;
  }
  Relation rel =
      Unwrap(Relation::FromCsvFile(args.csv_path), "loading CSV");
  std::printf("loaded %s: %d rows x %d attributes\n", args.csv_path.c_str(),
              rel.NumRows(), rel.NumAttributes());

  int ret = 2;
  if (args.command == "profile") {
    ret = RunProfile(args, rel);
  } else if (args.command == "detect") {
    ret = RunDetect(args, rel);
  } else if (args.command == "repair") {
    ret = RunRepair(args, rel);
  } else if (args.command == "cfds") {
    ret = RunCfds(args, rel);
  } else if (args.command == "session") {
    ret = RunSession(args, rel);
  } else {
    std::fprintf(stderr, "uguide: unknown command '%s'\n",
                 args.command.c_str());
    Usage();
    return 2;
  }
  if (budget.has_value()) {
    std::printf("peak partition memory: %.1f MiB of %d MiB budget\n",
                static_cast<double>(budget->high_water()) / (1 << 20),
                args.memory_budget_mb);
  }
  return ret;
}
