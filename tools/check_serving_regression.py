#!/usr/bin/env python3
"""Serving-perf gate: compare a fresh BENCH_serving.json against the
checked-in baseline.

Usage: check_serving_regression.py BASELINE_JSON FRESH_JSON

Per concurrency level, sessions_per_sec may not drop more than the
tolerance below the baseline, and rtt_p99_ms may not rise more than the
tolerance above it. The tolerance is ±25% by default — wide enough to
absorb shared-runner noise, tight enough to catch a real regression (the
thread-per-session daemon this gate guards against was ~30% down at
c=64). Override with SERVING_TOLERANCE_PCT.

Exit status: 0 clean, 1 regression, 2 usage/baseline mismatch.
"""

import json
import os
import sys


def load_levels(path):
    with open(path) as f:
        report = json.load(f)
    levels = report.get("levels")
    if not levels:
        sys.exit(f"{path}: no levels in bench JSON")
    return {level["concurrency"]: level for level in levels}


def main():
    if len(sys.argv) != 3:
        print(__doc__, file=sys.stderr)
        return 2
    tolerance = float(os.environ.get("SERVING_TOLERANCE_PCT", "25")) / 100.0
    baseline = load_levels(sys.argv[1])
    fresh = load_levels(sys.argv[2])

    failures = []
    for concurrency, base in sorted(baseline.items()):
        level = fresh.get(concurrency)
        if level is None:
            failures.append(f"c={concurrency}: missing from fresh run")
            continue
        throughput = level["sessions_per_sec"]
        floor = base["sessions_per_sec"] * (1.0 - tolerance)
        p99 = level["rtt_p99_ms"]
        ceiling = base["rtt_p99_ms"] * (1.0 + tolerance)
        verdict = "ok"
        if throughput < floor:
            verdict = "REGRESSION"
            failures.append(
                f"c={concurrency}: sessions/s {throughput:.1f} < floor "
                f"{floor:.1f} (baseline {base['sessions_per_sec']:.1f})")
        if p99 > ceiling:
            verdict = "REGRESSION"
            failures.append(
                f"c={concurrency}: rtt_p99 {p99:.1f}ms > ceiling "
                f"{ceiling:.1f}ms (baseline {base['rtt_p99_ms']:.1f}ms)")
        print(f"c={concurrency}: sessions/s {throughput:.1f} "
              f"(baseline {base['sessions_per_sec']:.1f}, floor {floor:.1f}) "
              f"p99 {p99:.1f}ms "
              f"(baseline {base['rtt_p99_ms']:.1f}ms, ceiling {ceiling:.1f}ms) "
              f"[{verdict}]")

    if failures:
        print("\nserving perf regression:", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
