#!/usr/bin/env python3
"""Questioning-perf gate: compare a fresh google-benchmark JSON against
the checked-in BENCH_questioning.json baseline.

Usage: check_questioning_regression.py BASELINE_JSON FRESH_JSON

Per benchmark present in the baseline, real_time may not rise more than
the tolerance above the baseline figure. Faster is always fine — the gate
only guards the CSR layout's wins (graph build, selection scans, the
partition product) against silently eroding. The tolerance is +60% by
default: CI runs at --benchmark_min_time=0.01 on shared runners, so
per-benchmark noise is large; the regressions this gate exists to catch
(falling back to nested-vector layouts) are 2-3x, well past any
reasonable tolerance. Override with QUESTIONING_TOLERANCE_PCT.

Benchmarks present only in the fresh run (newly added ones) are listed
but never fail the gate; re-baseline by checking in the fresh JSON.

Exit status: 0 clean, 1 regression, 2 usage/baseline mismatch.
"""

import json
import os
import sys


def load_benchmarks(path):
    with open(path) as f:
        report = json.load(f)
    runs = {}
    for bench in report.get("benchmarks", []):
        # Skip aggregate rows (mean/median/stddev) if repetitions are on.
        if bench.get("run_type") == "aggregate":
            continue
        runs[bench["name"]] = bench
    if not runs:
        sys.exit(f"{path}: no benchmarks in bench JSON")
    return report.get("context", {}), runs


def main():
    if len(sys.argv) != 3:
        print(__doc__, file=sys.stderr)
        return 2
    tolerance = float(os.environ.get("QUESTIONING_TOLERANCE_PCT", "60")) / 100.0
    base_ctx, baseline = load_benchmarks(sys.argv[1])
    fresh_ctx, fresh = load_benchmarks(sys.argv[2])

    # Comparing a debug binary against the release baseline would flag
    # every benchmark; refuse outright. (library_build_type describes the
    # system libbenchmark package, not our binary — uguide_build_type is
    # stamped by bench_questioning itself.)
    base_mode = base_ctx.get("uguide_build_type", "unknown")
    fresh_mode = fresh_ctx.get("uguide_build_type", "unknown")
    if base_mode != fresh_mode:
        sys.exit(f"build-type mismatch: baseline is '{base_mode}', "
                 f"fresh run is '{fresh_mode}' -- rebuild in Release")

    failures = []
    for name, base in sorted(baseline.items()):
        run = fresh.get(name)
        if run is None:
            failures.append(f"{name}: missing from fresh run")
            continue
        unit = base.get("time_unit", "ms")
        if run.get("time_unit", "ms") != unit:
            failures.append(f"{name}: time_unit changed "
                            f"({unit} -> {run.get('time_unit')})")
            continue
        time = run["real_time"]
        ceiling = base["real_time"] * (1.0 + tolerance)
        verdict = "ok"
        if time > ceiling:
            verdict = "REGRESSION"
            failures.append(
                f"{name}: {time:.2f}{unit} > ceiling {ceiling:.2f}{unit} "
                f"(baseline {base['real_time']:.2f}{unit})")
        print(f"{name}: {time:.2f}{unit} "
              f"(baseline {base['real_time']:.2f}{unit}, "
              f"ceiling {ceiling:.2f}{unit}) [{verdict}]")

    for name in sorted(set(fresh) - set(baseline)):
        print(f"{name}: {fresh[name]['real_time']:.2f}"
              f"{fresh[name].get('time_unit', 'ms')} [new, not gated]")

    if failures:
        print("\nquestioning perf regression:", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
