// Fuzz target for the session-journal loader. A journal is read back
// after a crash, possibly truncated or corrupted arbitrarily, so the
// parser must treat it as hostile. Contract under test: ParseJournalText
// returns a Status for any byte sequence — malformed records, overflowing
// integers ("c -2147483648 ..."), and out-of-range attribute indices
// ("f 0 99 ...") are all rejected instead of feeding DCHECK-aborting or
// UB-casting code downstream.

#include <cstddef>
#include <cstdint>
#include <string_view>

#include "core/session_journal.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  const std::string_view contents(reinterpret_cast<const char*>(data), size);
  uguide::Result<uguide::LoadedJournal> journal =
      uguide::ParseJournalText(contents, "fuzz");
  if (journal.ok()) {
    // Accepted records must round-trip: format then re-parse bit-exactly.
    for (const uguide::JournalRecord& record : journal->records) {
      uguide::Result<uguide::JournalRecord> again =
          uguide::ParseJournalRecord(uguide::FormatJournalRecord(record));
      if (!again.ok() || !(*again == record)) __builtin_trap();
    }
  }
  return 0;
}
