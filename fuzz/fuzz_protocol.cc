// Fuzz target for the serving wire protocol. Every byte a client sends
// reaches ParseClientFrame, and the load generator feeds daemon output to
// ParseServerFrame, so both parsers (and the JSON reader underneath) must
// accept arbitrary input without crashing, recursing unboundedly, or
// allocating proportionally to hostile nesting. Accepted client frames
// must survive a format/re-parse round trip, which pins the writer and
// parser to each other.

#include <cstddef>
#include <cstdint>
#include <string_view>

#include "server/protocol.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  const std::string_view line(reinterpret_cast<const char*>(data), size);

  uguide::Result<uguide::ClientFrame> client = uguide::ParseClientFrame(line);
  if (client.ok()) {
    uguide::Result<uguide::ClientFrame> again =
        uguide::ParseClientFrame(uguide::FormatClientFrame(*client));
    if (!again.ok() || again->op != client->op || again->id != client->id ||
        again->seq != client->seq || again->answer != client->answer) {
      __builtin_trap();
    }
  }

  (void)uguide::ParseServerFrame(line);
  (void)uguide::JsonValue::Parse(line);
  return 0;
}
