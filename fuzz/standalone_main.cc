// File-driven driver for the fuzz targets when libFuzzer is unavailable
// (gcc-only toolchains, plain test runs). Each argument is a corpus file
// or a directory of them; every file is fed to LLVMFuzzerTestOneInput
// once. Exit 0 iff no input crashed — which is exactly what the
// fuzz-regression ctest label asserts over the checked-in corpora.

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size);

namespace {

int RunFile(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return 1;
  }
  std::string contents((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  LLVMFuzzerTestOneInput(reinterpret_cast<const uint8_t*>(contents.data()),
                         contents.size());
  std::printf("ok   %s (%zu bytes)\n", path.c_str(), contents.size());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: %s <corpus-file-or-dir>...\n", argv[0]);
    return 2;
  }
  int failures = 0;
  for (int i = 1; i < argc; ++i) {
    const std::filesystem::path arg(argv[i]);
    if (std::filesystem::is_directory(arg)) {
      // Sorted for a stable log; directory iteration order is unspecified.
      std::vector<std::filesystem::path> files;
      for (const auto& entry : std::filesystem::directory_iterator(arg)) {
        if (entry.is_regular_file()) files.push_back(entry.path());
      }
      std::sort(files.begin(), files.end());
      for (const auto& file : files) failures += RunFile(file);
    } else {
      failures += RunFile(arg);
    }
  }
  return failures == 0 ? 0 : 1;
}
