// Fuzz target for the CSV reader, the widest untrusted-input surface in
// the library (every table enters through it). Contract under test:
// ParseCsv returns a Status for any byte sequence — it never crashes,
// never reads out of bounds, never trips UB.

#include <cstddef>
#include <cstdint>
#include <string_view>

#include "common/csv.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  const std::string_view text(reinterpret_cast<const char*>(data), size);
  uguide::Result<uguide::CsvTable> table = uguide::ParseCsv(text);
  if (table.ok()) {
    // Round-trip well-formed inputs: the writer must accept whatever the
    // parser produced, and the result must re-parse.
    const std::string out = uguide::WriteCsv(*table);
    uguide::Result<uguide::CsvTable> again = uguide::ParseCsv(out);
    (void)again;
  }
  return 0;
}
