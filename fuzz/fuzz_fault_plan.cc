// Fuzz target for the fault-plan grammar (--fault-plan on the CLI, plan
// strings in tests). Contract under test: LoadPlan returns a Status for
// any byte sequence; it never crashes and never leaves the registry in a
// state whose later use is UB (e.g. a NaN probability or a latency that
// overflows the virtual-clock cast).

#include <cstddef>
#include <cstdint>
#include <string_view>

#include "common/fault_injection.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  const std::string_view plan(reinterpret_cast<const char*>(data), size);
  uguide::FaultRegistry& registry = uguide::FaultRegistry::Global();
  if (registry.LoadPlan(plan).ok()) {
    // Exercise the rules a parse admitted: a plan that loads must also be
    // safe to *fire*. Crash actions are the one exception — they exist to
    // kill the process — so skip plans that contain one.
    bool has_crash = false;
    for (const uguide::FaultRule& rule : registry.rules()) {
      if (rule.action == uguide::FaultAction::kCrash) has_crash = true;
    }
    if (!has_crash) {
      for (const uguide::FaultRule& rule : registry.rules()) {
        (void)registry.OnPoint(rule.site);
      }
    }
  }
  registry.Reset();
  return 0;
}
