// Robustness extension (the paper's §9 future work: "enhance the
// robustness of our algorithms where the expert may provide incorrect
// answers for a fixed fraction of questions").
//
//   (1) how detection quality degrades as the expert's wrong-answer rate
//       grows, for all three question families;
//   (2) whether 3-way majority voting over repeated questions (at 1/3 of
//       the effective budget per question) recovers quality.

#include <memory>

#include "bench_util.h"

using namespace uguide;
using namespace uguide::bench;

namespace {

Session MakeNoisySession(const BenchParams& params, double wrong_rate,
                         int votes, uint64_t seed) {
  DataGenOptions data;
  data.rows = params.rows;
  data.seed = 1000 + seed;
  Relation clean = GenerateHospital(data);

  TaneOptions tane;
  tane.max_lhs_size = params.max_lhs;
  FdSet true_fds = DiscoverFds(clean, tane).ValueOrDie();

  ErrorGenOptions errors;
  errors.model = ErrorModel::kSystematic;
  errors.error_rate = 0.20;
  errors.seed = 2000 + seed;
  DirtyDataset dirty = InjectErrors(clean, true_fds, errors).ValueOrDie();

  SessionConfig config;
  config.candidate_options.max_lhs_size = params.max_lhs;
  config.wrong_rate = wrong_rate;
  config.expert_votes = votes;
  config.expert_seed = 3000 + seed;
  return Session::Create(clean, std::move(dirty), config).ValueOrDie();
}

}  // namespace

int main(int argc, char** argv) {
  BenchParams params = ParseArgs(argc, argv);
  const double budget = 900.0;
  std::printf("== Robustness to incorrect expert answers, Hospital, "
              "budget=%g (rows=%d) ==\n", budget, params.rows);

  struct Algo {
    std::string name;
    std::unique_ptr<Strategy> strategy;
  };
  std::vector<Algo> algos;
  algos.push_back({"FD-Q", MakeFdQBudgetedMaxCoverage({})});
  algos.push_back({"Cell-Q", MakeCellQSums({})});
  algos.push_back({"Tuple-Q", MakeTupleSamplingSaturationSets({})});

  const std::vector<double> wrong_rates = {0, 5, 10, 20, 30};

  for (const char* metric : {"true", "false"}) {
    std::printf("\n-- %%%s violations vs %%wrong answers (single ask) --\n",
                metric);
    std::printf("%-10s", "wrong_pct");
    for (const Algo& algo : algos) {
      std::printf(" %14s", algo.name.c_str());
    }
    std::printf("\n");
    for (double wrong : wrong_rates) {
      Session session = MakeNoisySession(params, wrong / 100.0, 1, 0);
      std::printf("%-10.0f", wrong);
      for (Algo& algo : algos) {
        SessionReport report = session.Run(*algo.strategy, budget);
        std::printf(" %14.1f", metric[0] == 't'
                                   ? report.metrics.TrueViolationPct()
                                   : report.metrics.FalseViolationPct());
      }
      std::printf("\n");
    }
  }

  std::printf("\n-- mitigation: 3-vote majority (same total effort) --\n");
  std::printf("%-10s %16s %16s %16s %16s\n", "wrong_pct", "FDQ true%",
              "FDQ-3vote true%", "FDQ false%", "FDQ-3vote false%");
  for (double wrong : wrong_rates) {
    auto fdq = MakeFdQBudgetedMaxCoverage({});
    Session plain = MakeNoisySession(params, wrong / 100.0, 1, 0);
    Session voting = MakeNoisySession(params, wrong / 100.0, 3, 0);
    SessionReport a = plain.Run(*fdq, budget);
    SessionReport b = voting.Run(*fdq, budget);
    std::printf("%-10.0f %16.1f %16.1f %16.1f %16.1f\n", wrong,
                a.metrics.TrueViolationPct(), b.metrics.TrueViolationPct(),
                a.metrics.FalseViolationPct(),
                b.metrics.FalseViolationPct());
  }
  return 0;
}
