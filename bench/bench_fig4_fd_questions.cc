// Figure 4: FD-based questions on the Hospital and Tax datasets.
//   (a) budget vs. % true violations, systematic errors (both datasets)
//   (b) budget vs. % true violations, uniform errors
//   (c) budget vs. % detected injected errors, random errors
//   (d) budget vs. % false negatives, systematic errors
// Algorithms: FDQ-Greedy (baseline), FDQ-BMC (Alg. 5), FDQ-Oracle.

#include <memory>

#include "bench_util.h"

using namespace uguide;
using namespace uguide::bench;

namespace {

struct Algo {
  std::string name;
  std::unique_ptr<Strategy> strategy;
};

std::vector<Algo> MakeAlgos(const char* prefix) {
  std::vector<Algo> algos;
  algos.push_back({std::string(prefix) + "-Greedy", MakeFdQGreedy({})});
  algos.push_back(
      {std::string(prefix) + "-BMC", MakeFdQBudgetedMaxCoverage({})});
  algos.push_back({std::string(prefix) + "-Oracle", MakeFdQOracle({})});
  return algos;
}

enum class Metric { kTrue, kFalseNegative, kInjected };

void Panel(const char* title, Dataset dataset, const BenchParams& params,
           ErrorModel model, const std::vector<double>& budgets,
           Metric metric) {
  std::printf("\n-- %s --\n", title);
  std::vector<Session> sessions;
  for (int seed = 0; seed < params.seeds; ++seed) {
    sessions.push_back(
        MakeSession(dataset, params, model, 0.20, 1.0, 0.0, seed));
  }
  std::vector<Algo> algos = MakeAlgos(DatasetName(dataset));
  std::vector<std::string> names;
  for (const Algo& algo : algos) names.push_back(algo.name);
  PrintHeader("budget", names);
  for (double budget : budgets) {
    std::vector<double> row;
    for (Algo& algo : algos) {
      SweepPoint p = RunPoint(sessions, *algo.strategy, budget);
      switch (metric) {
        case Metric::kTrue:
          row.push_back(p.true_pct);
          break;
        case Metric::kFalseNegative:
          row.push_back(100.0 - p.true_pct);
          break;
        case Metric::kInjected:
          row.push_back(p.injected_pct);
          break;
      }
    }
    PrintRow(budget, row);
  }
}

}  // namespace

int main(int argc, char** argv) {
  BenchParams params = ParseArgs(argc, argv);
  std::printf("== Figure 4: FD-based questions (rows=%d, seeds=%d) ==\n",
              params.rows, params.seeds);

  const std::vector<double> small_budgets = {50,  100, 150, 200, 250,
                                             300, 400, 500};
  const std::vector<double> large_budgets = {500, 1000, 1500, 2000};

  Panel("(a) %true violations vs budget, systematic errors, Hospital",
        Dataset::kHospital, params, ErrorModel::kSystematic, small_budgets,
        Metric::kTrue);
  Panel("(a) %true violations vs budget, systematic errors, Tax",
        Dataset::kTax, params, ErrorModel::kSystematic, small_budgets,
        Metric::kTrue);
  Panel("(b) %true violations vs budget, uniform errors, Hospital",
        Dataset::kHospital, params, ErrorModel::kUniform, large_budgets,
        Metric::kTrue);
  Panel("(c) %detected injected errors vs budget, random errors, Hospital",
        Dataset::kHospital, params, ErrorModel::kRandom, large_budgets,
        Metric::kInjected);
  Panel("(d) %false negatives vs budget, systematic errors, Hospital",
        Dataset::kHospital, params, ErrorModel::kSystematic, small_budgets,
        Metric::kFalseNegative);
  return 0;
}
