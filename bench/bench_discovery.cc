// Microbenchmarks (google-benchmark) for the discovery substrate: stripped
// partition construction and product, exact and approximate TANE, candidate
// generation, and violation detection. These back the §7.2.7 discussion
// that profiling is a preprocessing step whose cost is amortized over the
// interactive session.

#include <benchmark/benchmark.h>

#include <string>
#include <string_view>
#include <vector>

#include "core/uguide.h"

namespace uguide {
namespace {

Relation HospitalAtScale(int rows) {
  DataGenOptions opts;
  opts.rows = rows;
  return GenerateHospital(opts);
}

void BM_PartitionForColumn(benchmark::State& state) {
  Relation rel = HospitalAtScale(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(Partition::ForColumn(rel, 0));
  }
}
BENCHMARK(BM_PartitionForColumn)->Arg(1000)->Arg(10000)->Arg(50000);

void BM_PartitionProduct(benchmark::State& state) {
  Relation rel = HospitalAtScale(static_cast<int>(state.range(0)));
  Partition a = Partition::ForColumn(rel, 3);   // city
  Partition b = Partition::ForColumn(rel, 11);  // measure_code
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.Product(b));
  }
}
BENCHMARK(BM_PartitionProduct)->Arg(1000)->Arg(10000)->Arg(50000);

void BM_TaneExact(benchmark::State& state) {
  Relation rel = HospitalAtScale(static_cast<int>(state.range(0)));
  // Unlimited budget: never refuses, but reports the peak working set of
  // governed state into the BENCH json (counter `peak_partition_bytes`).
  MemoryBudget budget;
  TaneOptions opts;
  opts.max_lhs_size = 3;
  opts.memory_budget = &budget;
  for (auto _ : state) {
    benchmark::DoNotOptimize(DiscoverFds(rel, opts).ValueOrDie());
  }
  state.counters["peak_partition_bytes"] = benchmark::Counter(
      static_cast<double>(budget.high_water()));
}
BENCHMARK(BM_TaneExact)->Arg(1000)->Arg(5000)->Arg(10000)
    ->Unit(benchmark::kMillisecond);

void BM_TaneApproximate(benchmark::State& state) {
  Relation rel = HospitalAtScale(static_cast<int>(state.range(0)));
  MemoryBudget budget;
  TaneOptions opts;
  opts.max_lhs_size = 3;
  opts.max_error = 0.10;
  opts.memory_budget = &budget;
  for (auto _ : state) {
    benchmark::DoNotOptimize(DiscoverFds(rel, opts).ValueOrDie());
  }
  state.counters["peak_partition_bytes"] = benchmark::Counter(
      static_cast<double>(budget.high_water()));
}
BENCHMARK(BM_TaneApproximate)->Arg(1000)->Arg(5000)->Arg(10000)
    ->Unit(benchmark::kMillisecond);

// Discovery under a binding soft limit: the partition store spills and
// recomputes instead of holding the whole level set resident. The counters
// quantify the memory/CPU trade: peak stays near the limit while evictions
// and recomputes pay for it.
void BM_TaneExactSoftBudget(benchmark::State& state) {
  Relation rel = HospitalAtScale(5000);
  const size_t soft = static_cast<size_t>(state.range(0)) * 1024;
  size_t evicted = 0;
  size_t recomputed = 0;
  size_t peak = 0;
  for (auto _ : state) {
    MemoryBudget budget(soft, /*hard_limit_bytes=*/0);
    TaneOptions opts;
    opts.max_lhs_size = 3;
    opts.memory_budget = &budget;
    DiscoveryOutcome outcome = DiscoverFdsDetailed(rel, opts).ValueOrDie();
    benchmark::DoNotOptimize(outcome.fds);
    evicted = outcome.partitions_evicted;
    recomputed = outcome.partitions_recomputed;
    peak = outcome.peak_memory_bytes;
  }
  state.counters["peak_partition_bytes"] =
      benchmark::Counter(static_cast<double>(peak));
  state.counters["partitions_evicted"] =
      benchmark::Counter(static_cast<double>(evicted));
  state.counters["partitions_recomputed"] =
      benchmark::Counter(static_cast<double>(recomputed));
}
BENCHMARK(BM_TaneExactSoftBudget)->Arg(256)->Arg(1024)->Arg(4096)
    ->Unit(benchmark::kMillisecond);

// Thread-scaling sweep on the widest relation (Tax, 15 attributes): the
// BENCH json captures the speedup curve at 1/2/4/8 workers. threads=1 runs
// the serial fallback (no pool workers spawned), so it doubles as the
// regression baseline for the parallel refactor.
void BM_TaneExactThreads(benchmark::State& state) {
  DataGenOptions gen;
  gen.rows = 5000;
  Relation rel = GenerateTax(gen);
  TaneOptions opts;
  opts.max_lhs_size = 3;
  opts.num_threads = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(DiscoverFds(rel, opts).ValueOrDie());
  }
}
BENCHMARK(BM_TaneExactThreads)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

void BM_TaneApproximateThreads(benchmark::State& state) {
  DataGenOptions gen;
  gen.rows = 5000;
  Relation rel = GenerateTax(gen);
  TaneOptions opts;
  opts.max_lhs_size = 3;
  opts.max_error = 0.10;
  opts.num_threads = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(DiscoverFds(rel, opts).ValueOrDie());
  }
}
BENCHMARK(BM_TaneApproximateThreads)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

void BM_CandidateGeneration(benchmark::State& state) {
  Relation rel = HospitalAtScale(static_cast<int>(state.range(0)));
  MemoryBudget budget;
  CandidateGenOptions opts;
  opts.max_lhs_size = 3;
  opts.memory_budget = &budget;
  for (auto _ : state) {
    benchmark::DoNotOptimize(GenerateCandidates(rel, opts).ValueOrDie());
  }
  state.counters["peak_partition_bytes"] = benchmark::Counter(
      static_cast<double>(budget.high_water()));
}
BENCHMARK(BM_CandidateGeneration)->Arg(1000)->Arg(5000)
    ->Unit(benchmark::kMillisecond);

void BM_ViolatingCells(benchmark::State& state) {
  Relation rel = HospitalAtScale(static_cast<int>(state.range(0)));
  const Fd fd(AttributeSet::Single(0), 1);  // provider -> hospital_name
  for (auto _ : state) {
    benchmark::DoNotOptimize(ViolatingCells(rel, fd));
  }
}
BENCHMARK(BM_ViolatingCells)->Arg(1000)->Arg(10000)->Arg(50000);

void BM_SaturatedSets(benchmark::State& state) {
  Relation rel = HospitalAtScale(2000);
  TaneOptions opts;
  opts.max_lhs_size = 3;
  FdSet fds = DiscoverFds(rel, opts).ValueOrDie();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        SaturatedSets(fds, rel.NumAttributes(), 5000));
  }
}
BENCHMARK(BM_SaturatedSets)->Unit(benchmark::kMillisecond);

void BM_ArmstrongConstruction(benchmark::State& state) {
  Relation rel = HospitalAtScale(2000);
  TaneOptions opts;
  opts.max_lhs_size = 2;
  FdSet fds = DiscoverFds(rel, opts).ValueOrDie();
  for (auto _ : state) {
    benchmark::DoNotOptimize(BuildArmstrongRelation(rel.schema(), fds));
  }
}
BENCHMARK(BM_ArmstrongConstruction)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace uguide

// Custom main instead of BENCHMARK_MAIN(): default to machine-readable
// JSON alongside the console table so CI and scaling-curve tooling can
// diff runs without scraping text. Any caller-provided --benchmark_out=
// wins; console output is unchanged either way.
int main(int argc, char** argv) {
  std::vector<char*> args(argv, argv + argc);
  std::string out_flag = "--benchmark_out=BENCH_discovery.json";
  std::string fmt_flag = "--benchmark_out_format=json";
  bool has_out = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]).rfind("--benchmark_out=", 0) == 0) {
      has_out = true;
    }
  }
  if (!has_out) {
    args.push_back(out_flag.data());
    args.push_back(fmt_flag.data());
  }
  int args_argc = static_cast<int>(args.size());
  benchmark::Initialize(&args_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(args_argc, args.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
