// Figure 3: cell-based questions on the Hospital dataset.
//   (a) budget vs. % true violations, systematic errors
//   (b) budget vs. % true violations, uniform errors
//   (c) budget vs. % detected injected errors, random errors
//   (d) budget vs. % false violations, systematic errors
// Algorithms: CellQ-Greedy (baseline), CellQ-HS (Alg. 2), CellQ-SUMS
// (Alg. 3/4), CellQ-Oracle (ground-truth upper baseline).

#include <memory>

#include "bench_util.h"

using namespace uguide;
using namespace uguide::bench;

namespace {

struct Algo {
  std::string name;
  std::unique_ptr<Strategy> strategy;
};

std::vector<Algo> MakeAlgos() {
  std::vector<Algo> algos;
  algos.push_back({"CellQ-Greedy", MakeCellQGreedy({})});
  algos.push_back({"CellQ-HS", MakeCellQHittingSet({})});
  algos.push_back({"CellQ-SUMS", MakeCellQSums({})});
  algos.push_back({"CellQ-Oracle", MakeCellQOracle({})});
  return algos;
}

std::vector<Session> MakeSessions(const BenchParams& params,
                                  ErrorModel model) {
  std::vector<Session> sessions;
  for (int seed = 0; seed < params.seeds; ++seed) {
    sessions.push_back(MakeSession(Dataset::kHospital, params, model, 0.20,
                                   1.0, 0.0, seed));
  }
  return sessions;
}

void Panel(const char* title, const std::vector<Session>& sessions,
           const std::vector<double>& budgets, bool false_pct,
           bool injected_pct) {
  std::printf("\n-- %s --\n", title);
  std::vector<Algo> algos = MakeAlgos();
  std::vector<std::string> names;
  for (const Algo& algo : algos) names.push_back(algo.name);
  PrintHeader("budget", names);
  for (double budget : budgets) {
    std::vector<double> row;
    for (Algo& algo : algos) {
      SweepPoint p = RunPoint(sessions, *algo.strategy, budget);
      row.push_back(false_pct ? p.false_pct
                              : (injected_pct ? p.injected_pct : p.true_pct));
    }
    PrintRow(budget, row);
  }
}

}  // namespace

int main(int argc, char** argv) {
  BenchParams params = ParseArgs(argc, argv);
  std::printf("== Figure 3: cell-based questions, Hospital (rows=%d, "
              "seeds=%d) ==\n", params.rows, params.seeds);

  const std::vector<double> budgets = {200, 400, 600, 800, 1000, 1500, 2000};

  {
    std::vector<Session> sessions =
        MakeSessions(params, ErrorModel::kSystematic);
    Panel("(a) %true violations vs budget, systematic errors", sessions,
          budgets, false, false);
    Panel("(d) %false violations vs budget, systematic errors", sessions,
          budgets, true, false);
  }
  {
    std::vector<Session> sessions = MakeSessions(params, ErrorModel::kUniform);
    Panel("(b) %true violations vs budget, uniform errors", sessions,
          budgets, false, false);
  }
  {
    std::vector<Session> sessions = MakeSessions(params, ErrorModel::kRandom);
    Panel("(c) %detected injected errors vs budget, random errors", sessions,
          budgets, false, true);
  }
  return 0;
}
