// Live-mutation maintenance vs full rebuild: applies update batches of 1,
// 8, and 64 rows to Tax@5000 and times, per batch, the incremental path
// (LiveRelation group moves + PartitionStore::AdvanceTo patching +
// LiveViolationIndex::Advance over scope-touched FDs) against rebuilding
// from the mutated bytes (fresh engine, all column partitions, every FD's
// ViolatingCells). Both arms stop at the same place — per-FD cell vectors
// ready — because that is what an epoch publishes: the O(total cells)
// graph merge is deferred by the lazy LiveEpoch::graph() and paid once,
// only for an epoch a session actually opens, identically on either path.
// The merge cost is measured separately (materialize_ms_per_batch) and the
// merged graphs are checked byte-identical every epoch. Emits
// BENCH_live.json; tools/check_live_regression.py gates the single-row
// speedup at >= 5x.
//
//   bench_live [--rows=N] [--epochs=E] [--out=BENCH_live.json]

#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "datagen/generators.h"
#include "discovery/partition.h"
#include "discovery/tane.h"
#include "errorgen/error_generator.h"
#include "live/live_relation.h"
#include "live/live_violation_index.h"
#include "live/mutation.h"
#include "violations/bipartite_graph.h"
#include "violations/violation_engine.h"

using namespace uguide;

namespace {

struct Args {
  int rows = 5000;
  // Enough batches that the steady state dominates: the first epoch pays
  // cold partition-product caches that every later epoch reuses.
  int epochs = 32;
  std::string out = "BENCH_live.json";
};

struct SizeResult {
  int batch_rows = 0;
  int epochs = 0;
  double incremental_ms_per_batch = 0.0;
  double rebuild_ms_per_batch = 0.0;
  double materialize_ms_per_batch = 0.0;
  double speedup = 0.0;
  int64_t fds_recomputed = 0;
  int64_t fds_skipped = 0;
};

double MsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

/// One update batch: `batch_rows` random cells overwritten with values
/// drawn from a small pool, so mutations both create and heal violations.
MutationBatch MakeBatch(Rng& rng, TupleId num_rows, int num_attrs,
                        int batch_rows) {
  MutationBatch batch;
  for (int i = 0; i < batch_rows; ++i) {
    batch.ops.push_back(Mutation::Update(
        static_cast<TupleId>(rng.NextBounded(static_cast<uint64_t>(num_rows))),
        static_cast<int>(rng.NextBounded(static_cast<uint64_t>(num_attrs))),
        "live-v" + std::to_string(rng.NextBounded(23))));
  }
  return batch;
}

/// Every FD's cells from the mutated bytes — the rebuild arm's work,
/// sharded exactly as ViolationGraph::Build shards it.
std::vector<std::vector<Cell>> RebuildVectors(const std::vector<Fd>& fds,
                                              ViolationEngine& engine,
                                              ThreadPool* pool) {
  if (pool != nullptr && pool->num_threads() > 1 && fds.size() > 1) {
    return pool->ParallelMap(
        fds, [&](const Fd& fd) { return engine.ViolatingCells(fd); });
  }
  std::vector<std::vector<Cell>> per_fd;
  per_fd.reserve(fds.size());
  for (const Fd& fd : fds) per_fd.push_back(engine.ViolatingCells(fd));
  return per_fd;
}

/// Runs one batch size: a fresh LiveRelation per size so every size sees
/// the same starting bytes, then `epochs` batches, timing both arms over
/// the identical mutation sequence.
SizeResult RunSize(const Relation& dirty, const FdSet& fds, ThreadPool* pool,
                   const Args& args, int batch_rows) {
  SizeResult result;
  result.batch_rows = batch_rows;
  result.epochs = args.epochs;

  LiveRelation live(dirty);
  const int m = dirty.NumAttributes();
  const std::vector<Fd> fd_list(fds.begin(), fds.end());

  // The cross-epoch store with pinned canonical singles, exactly as
  // LiveDataset seeds it.
  PartitionStore store(&live.relation(), /*budget=*/nullptr);
  for (int c = 0; c < m; ++c) {
    store.PutShared(AttributeSet::Single(c),
                    std::make_shared<const Partition>(
                        Partition::ForColumn(live.relation(), c)),
                    /*pinned=*/true);
  }
  auto engine =
      std::make_unique<ViolationEngine>(&live.relation(), /*budget=*/nullptr);
  for (auto& [attrs, handle] : store.Snapshot()) {
    engine->SeedPartition(attrs, std::move(handle));
  }
  LiveViolationIndex index(fds, *engine, pool);
  size_t cells = index.MakeGraph().NumCells();

  Rng rng(0x11d0 + static_cast<uint64_t>(batch_rows));
  for (int epoch = 0; epoch < args.epochs; ++epoch) {
    const MutationBatch batch =
        MakeBatch(rng, live.NumRows(), m, batch_rows);

    // --- incremental arm: the LiveDataset::Apply maintenance recipe -------
    const auto inc_start = std::chrono::steady_clock::now();
    for (auto& [attrs, handle] : engine->StorePartitions()) {
      if (attrs.Empty()) continue;
      store.PutShared(attrs, std::move(handle), /*pinned=*/attrs.Size() == 1);
    }
    const MutationReceipt receipt = live.Apply(batch);
    store.AdvanceTo(receipt.version, receipt.scope.attrs, [&](int col) {
      return std::make_shared<const Partition>(live.ColumnPartition(col));
    });
    engine = std::make_unique<ViolationEngine>(&live.relation(),
                                               /*budget=*/nullptr);
    for (auto& [attrs, handle] : store.Snapshot()) {
      engine->SeedPartition(attrs, std::move(handle));
    }
    index.Advance(receipt.scope.attrs, *engine, pool);
    result.incremental_ms_per_batch += MsSince(inc_start);

    // --- rebuild arm: everything from the mutated bytes -------------------
    const auto full_start = std::chrono::steady_clock::now();
    ViolationEngine fresh(&live.relation(), /*budget=*/nullptr);
    const std::vector<std::vector<Cell>> rebuilt_vectors =
        RebuildVectors(fd_list, fresh, pool);
    result.rebuild_ms_per_batch += MsSince(full_start);

    // --- deferred materialization, identical on either path ---------------
    const auto merge_start = std::chrono::steady_clock::now();
    const ViolationGraph incremental = index.MakeGraph();
    result.materialize_ms_per_batch += MsSince(merge_start);

    // Untimed identity check: the lazily merged incremental graph must be
    // byte-for-byte the merge of the rebuilt vectors.
    const ViolationGraph rebuilt =
        ViolationGraph::FromPerFdCells(fd_list, rebuilt_vectors);
    if (incremental.NumCells() != rebuilt.NumCells() ||
        incremental.ApproxMemoryBytes() != rebuilt.ApproxMemoryBytes()) {
      std::fprintf(stderr,
                   "bench_live: incremental/rebuild divergence at batch=%d "
                   "epoch=%d (%d vs %d cells)\n",
                   batch_rows, epoch, incremental.NumCells(),
                   rebuilt.NumCells());
      std::exit(1);
    }
    cells = static_cast<size_t>(rebuilt.NumCells());
  }

  result.incremental_ms_per_batch /= args.epochs;
  result.rebuild_ms_per_batch /= args.epochs;
  result.materialize_ms_per_batch /= args.epochs;
  result.speedup = result.incremental_ms_per_batch > 0.0
                       ? result.rebuild_ms_per_batch /
                             result.incremental_ms_per_batch
                       : 0.0;
  result.fds_recomputed = index.fds_recomputed();
  result.fds_skipped = index.fds_skipped();
  std::printf("%10d %8d %10zu %15.3f %11.3f %8.3f %9.1fx %8lld %8lld\n",
              batch_rows, args.epochs, cells,
              result.incremental_ms_per_batch, result.rebuild_ms_per_batch,
              result.materialize_ms_per_batch, result.speedup,
              static_cast<long long>(result.fds_recomputed),
              static_cast<long long>(result.fds_skipped));
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--rows=", 7) == 0) {
      args.rows = std::atoi(argv[i] + 7);
    } else if (std::strncmp(argv[i], "--epochs=", 9) == 0) {
      args.epochs = std::atoi(argv[i] + 9);
    } else if (std::strncmp(argv[i], "--out=", 6) == 0) {
      args.out = argv[i] + 6;
    } else {
      std::fprintf(stderr, "bench_live: unknown flag %s\n", argv[i]);
      return 2;
    }
  }

  std::fprintf(stderr, "bench_live: building Tax@%d...\n", args.rows);
  DataGenOptions data;
  data.rows = args.rows;
  data.seed = 42;
  const Relation clean = GenerateTax(data);

  TaneOptions tane;
  tane.max_lhs_size = 2;
  const FdSet fds = DiscoverFds(clean, tane).ValueOrDie();

  ErrorGenOptions errors;
  errors.model = ErrorModel::kUniform;
  errors.error_rate = 0.05;
  errors.seed = 43;
  DirtyDataset dataset = InjectErrors(clean, fds, errors).ValueOrDie();

  ThreadPool pool(ThreadPool::kAuto);
  std::printf("== Live maintenance vs full rebuild (Tax@%d, %zu FDs) ==\n",
              args.rows, fds.Size());
  std::printf("%10s %8s %10s %15s %11s %8s %10s %8s %8s\n", "batch_rows",
              "epochs", "cells", "incremental_ms", "rebuild_ms", "merge_ms",
              "speedup", "fds_rec", "fds_skip");

  std::vector<SizeResult> results;
  for (int batch_rows : {1, 8, 64}) {
    results.push_back(
        RunSize(dataset.dirty, fds, &pool, args, batch_rows));
  }

  std::FILE* out = std::fopen(args.out.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "bench_live: cannot write %s\n", args.out.c_str());
    return 1;
  }
  std::fprintf(out,
               "{\n"
               "  \"bench\": \"live\",\n"
               "  \"rows\": %d,\n"
               "  \"fds\": %zu,\n"
               "  \"batch_sizes\": [\n",
               args.rows, fds.Size());
  for (size_t i = 0; i < results.size(); ++i) {
    const SizeResult& r = results[i];
    std::fprintf(out,
                 "    {\"batch_rows\": %d, \"epochs\": %d, "
                 "\"incremental_ms_per_batch\": %.4f, "
                 "\"rebuild_ms_per_batch\": %.4f, "
                 "\"materialize_ms_per_batch\": %.4f, \"speedup\": %.2f, "
                 "\"fds_recomputed\": %lld, \"fds_skipped\": %lld}%s\n",
                 r.batch_rows, r.epochs, r.incremental_ms_per_batch,
                 r.rebuild_ms_per_batch, r.materialize_ms_per_batch,
                 r.speedup, static_cast<long long>(r.fds_recomputed),
                 static_cast<long long>(r.fds_skipped),
                 i + 1 < results.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::fprintf(stderr, "bench_live: wrote %s\n", args.out.c_str());
  return 0;
}
