// §7.2.8 "Comparative Analysis of Algorithms": the paper closes its
// evaluation with a qualitative five-dimension comparison of the three
// question families. This bench produces the quantitative version of that
// table on one fixture -- every row of the paper's list backed by a
// measured number.

#include <chrono>
#include <memory>

#include "bench_util.h"

using namespace uguide;
using namespace uguide::bench;

namespace {

struct Row {
  std::string name;
  double cost_per_question = 0;  // expert effort (§7.2.8 #1)
  double true_pct = 0;           // fraction of true violations (#2)
  double false_pct = 0;          // false positive rate (#3)
  double ms_per_run = 0;         // runtime (#4)
  double idk_true_pct = 0;       // detection under 70% IDK (#5)
};

Row Measure(const Session& normal, const Session& hesitant,
            Strategy& strategy, double budget) {
  Row row;
  row.name = std::string(strategy.name());
  const auto start = std::chrono::steady_clock::now();
  SessionReport report = normal.Run(strategy, budget);
  const auto end = std::chrono::steady_clock::now();
  row.ms_per_run =
      std::chrono::duration<double, std::milli>(end - start).count();
  row.cost_per_question =
      report.result.questions_asked == 0
          ? 0
          : report.result.cost_spent / report.result.questions_asked;
  row.true_pct = report.metrics.TrueViolationPct();
  row.false_pct = report.metrics.FalseViolationPct();
  row.idk_true_pct =
      hesitant.Run(strategy, budget).metrics.TrueViolationPct();
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  BenchParams params = ParseArgs(argc, argv);
  const double budget = 1000.0;
  std::printf("== §7.2.8 comparative analysis, Hospital, systematic errors, "
              "budget=%g (rows=%d) ==\n\n", budget, params.rows);

  Session normal = MakeSession(Dataset::kHospital, params,
                               ErrorModel::kSystematic, 0.20, 1.0, 0.0, 0);
  Session hesitant = MakeSession(Dataset::kHospital, params,
                                 ErrorModel::kSystematic, 0.20, 1.0, 0.70,
                                 0);

  std::vector<std::unique_ptr<Strategy>> strategies;
  strategies.push_back(MakeCellQHittingSet({}));
  strategies.push_back(MakeCellQSums({}));
  strategies.push_back(MakeFdQBudgetedMaxCoverage({}));
  strategies.push_back(MakeTupleSamplingUniform({}));
  strategies.push_back(MakeTupleSamplingSaturationSets({}));

  std::printf("%-22s %12s %8s %8s %12s %14s\n", "strategy", "cost/quest",
              "true%", "false%", "run ms", "true%@70%IDK");
  for (auto& strategy : strategies) {
    Row row = Measure(normal, hesitant, *strategy, budget);
    std::printf("%-22s %12.1f %8.1f %8.1f %12.1f %14.1f\n",
                row.name.c_str(), row.cost_per_question, row.true_pct,
                row.false_pct, row.ms_per_run, row.idk_true_pct);
  }

  std::printf(
      "\npaper's qualitative claims, checkable above:\n"
      " 1. expert effort: cell (1) < FD (~|LHS|) < tuple (m=%d)\n"
      " 2. true violations: tuple = 100%% >= FD > cell at equal budget\n"
      " 3. false positives: FD = 0 < cell < tuple\n"
      " 4. runtime: tuple cheapest per interaction\n"
      " 5. IDK impact: FD worst, cell mild, tuple recall unaffected\n",
      normal.dirty().NumAttributes());
  return 0;
}
