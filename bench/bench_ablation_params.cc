// Ablation studies for the design choices DESIGN.md calls out:
//   (1) relaxation threshold epsilon: candidate-set size and detection
//       quality trade-off (§3.1's "fixed threshold, say 10%");
//   (2) SUMS acceptance threshold: precision/recall trade-off of the
//       truth-discovery cell strategy (§4.2's "expert specified threshold");
//   (3) FDQ-BMC with and without non-minimal (merged) questions (§5).

#include <memory>

#include "bench_util.h"

using namespace uguide;
using namespace uguide::bench;

namespace {

Session MakeSessionWithEpsilon(const BenchParams& params, double epsilon,
                               uint64_t seed) {
  DataGenOptions data;
  data.rows = params.rows;
  data.seed = 1000 + seed;
  Relation clean = GenerateHospital(data);

  TaneOptions tane;
  tane.max_lhs_size = params.max_lhs;
  FdSet true_fds = DiscoverFds(clean, tane).ValueOrDie();

  ErrorGenOptions errors;
  errors.model = ErrorModel::kSystematic;
  errors.error_rate = 0.20;
  errors.seed = 2000 + seed;
  DirtyDataset dirty = InjectErrors(clean, true_fds, errors).ValueOrDie();

  SessionConfig config;
  config.candidate_options.max_lhs_size = params.max_lhs;
  config.candidate_options.relax_threshold = epsilon;
  return Session::Create(clean, std::move(dirty), config).ValueOrDie();
}

}  // namespace

int main(int argc, char** argv) {
  BenchParams params = ParseArgs(argc, argv);
  std::printf("== Ablations (rows=%d) ==\n", params.rows);

  // (1) relaxation threshold epsilon.
  std::printf("\n-- (1) relaxation threshold epsilon (FDQ-BMC, budget 300) "
              "--\n");
  std::printf("%-10s %12s %12s %12s\n", "epsilon", "candidates", "true%",
              "false%");
  for (double epsilon : {0.02, 0.05, 0.10, 0.20, 0.30}) {
    Session session = MakeSessionWithEpsilon(params, epsilon, 0);
    auto strategy = MakeFdQBudgetedMaxCoverage({});
    SessionReport report = session.Run(*strategy, 300.0);
    std::printf("%-10.2f %12zu %12.1f %12.1f\n", epsilon,
                session.candidates().Size(),
                report.metrics.TrueViolationPct(),
                report.metrics.FalseViolationPct());
  }

  // (2) SUMS acceptance threshold, at a budget small enough that not every
  // FD can accumulate full evidence -- the threshold then trades precision
  // for recall.
  std::printf("\n-- (2) SUMS acceptance threshold (budget 120) --\n");
  std::printf("%-10s %12s %12s %12s\n", "threshold", "accepted", "true%",
              "false%");
  Session session = MakeSessionWithEpsilon(params, 0.10, 0);
  for (double threshold : {0.0, 0.25, 0.5, 0.75, 0.9, 0.99}) {
    CellStrategyOptions opts;
    opts.sums_accept_threshold = threshold;
    auto strategy = MakeCellQSums(opts);
    SessionReport report = session.Run(*strategy, 120.0);
    std::printf("%-10.2f %12zu %12.1f %12.1f\n", threshold,
                report.result.accepted_fds.Size(),
                report.metrics.TrueViolationPct(),
                report.metrics.FalseViolationPct());
  }

  // (3) merged (non-minimal) FD questions on/off.
  std::printf("\n-- (3) FDQ-BMC merged questions (budget sweep) --\n");
  std::printf("%-10s %14s %14s\n", "budget", "with-merged", "minimal-only");
  for (double budget : {50.0, 100.0, 200.0, 400.0}) {
    FdStrategyOptions with;
    with.allow_non_minimal = true;
    FdStrategyOptions without;
    without.allow_non_minimal = false;
    auto a = MakeFdQBudgetedMaxCoverage(with);
    auto b = MakeFdQBudgetedMaxCoverage(without);
    std::printf("%-10.0f %14.1f %14.1f\n", budget,
                session.Run(*a, budget).metrics.TrueViolationPct(),
                session.Run(*b, budget).metrics.TrueViolationPct());
  }
  return 0;
}
