// Figure 9: impact of "I don't know" expert answers (non-response rate
// 50%-100%) on the three question types at a fixed budget, Hospital
// dataset with systematic errors.

#include <memory>

#include "bench_util.h"

using namespace uguide;
using namespace uguide::bench;

int main(int argc, char** argv) {
  BenchParams params = ParseArgs(argc, argv);
  const double budget = 1000.0;
  std::printf("== Figure 9: impact of IDK answers, Hospital, systematic "
              "errors, budget=%g (rows=%d, seeds=%d) ==\n",
              budget, params.rows, params.seeds);

  struct Algo {
    std::string name;
    std::unique_ptr<Strategy> strategy;
  };
  std::vector<Algo> algos;
  algos.push_back({"FD-Q", MakeFdQBudgetedMaxCoverage({})});
  algos.push_back({"Cell-Q", MakeCellQSums({})});
  algos.push_back({"Tuple-Q", MakeTupleSamplingSaturationSets({})});

  const std::vector<double> idk_rates = {0, 25, 50, 60, 70, 80, 90, 100};
  std::vector<std::string> names;
  for (const Algo& algo : algos) names.push_back(algo.name);

  // Collect both metrics in one sweep (sessions are expensive).
  std::vector<std::vector<double>> true_rows, false_rows;
  for (double idk : idk_rates) {
    std::vector<Session> sessions;
    for (int seed = 0; seed < params.seeds; ++seed) {
      sessions.push_back(MakeSession(Dataset::kHospital, params,
                                     ErrorModel::kSystematic, 0.20, 1.0,
                                     idk / 100.0, seed));
    }
    std::vector<double> true_row, false_row;
    for (Algo& algo : algos) {
      SweepPoint p = RunPoint(sessions, *algo.strategy, budget);
      true_row.push_back(p.true_pct);
      false_row.push_back(p.false_pct);
    }
    true_rows.push_back(std::move(true_row));
    false_rows.push_back(std::move(false_row));
  }

  std::printf("\n-- %%true violations vs %%non-responses --\n");
  PrintHeader("idk_pct", names);
  for (size_t i = 0; i < idk_rates.size(); ++i) {
    PrintRow(idk_rates[i], true_rows[i]);
  }
  // §7.2.8 point 5: the tuple strategies' IDK penalty shows up as false
  // positives (a small validated sample keeps many false FDs alive).
  std::printf("\n-- %%false violations vs %%non-responses --\n");
  PrintHeader("idk_pct", names);
  for (size_t i = 0; i < idk_rates.size(); ++i) {
    PrintRow(idk_rates[i], false_rows[i]);
  }
  return 0;
}
