// Figure 5: tuple-based questions on the Hospital dataset (systematic
// errors).
//   (a) budget vs. % true violations
//   (b) budget vs. % false violations
// Algorithms: Sampling-Uniform (Alg. 6), Sampling-Violation (Alg. 7),
// Sampling-Saturation-Sets (Alg. 8), TupleQ-Oracle.

#include <memory>

#include "bench_util.h"

using namespace uguide;
using namespace uguide::bench;

int main(int argc, char** argv) {
  BenchParams params = ParseArgs(argc, argv);
  std::printf("== Figure 5: tuple-based questions, Hospital, systematic "
              "errors (rows=%d, seeds=%d) ==\n", params.rows, params.seeds);

  std::vector<Session> sessions;
  for (int seed = 0; seed < params.seeds; ++seed) {
    sessions.push_back(MakeSession(Dataset::kHospital, params,
                                   ErrorModel::kSystematic, 0.20, 1.0, 0.0,
                                   seed));
  }

  struct Algo {
    std::string name;
    std::unique_ptr<Strategy> strategy;
  };
  std::vector<Algo> algos;
  algos.push_back({"Uniform", MakeTupleSamplingUniform({})});
  algos.push_back({"Violation", MakeTupleSamplingViolationWeighting({})});
  algos.push_back({"Saturation", MakeTupleSamplingSaturationSets({})});
  algos.push_back({"TupleQ-Oracle", MakeTupleQOracle({})});

  const std::vector<double> budgets = {250, 500, 1000, 1500, 2000};
  std::vector<std::string> names;
  for (const Algo& algo : algos) names.push_back(algo.name);

  for (bool false_pct : {false, true}) {
    std::printf("\n-- (%c) %%%s violations vs budget --\n",
                false_pct ? 'b' : 'a', false_pct ? "false" : "true");
    PrintHeader("budget", names);
    for (double budget : budgets) {
      std::vector<double> row;
      for (Algo& algo : algos) {
        SweepPoint p = RunPoint(sessions, *algo.strategy, budget);
        row.push_back(false_pct ? p.false_pct : p.true_pct);
      }
      PrintRow(budget, row);
    }
  }
  return 0;
}
