// Figure 10: runtime per user interaction vs. table size, Tax dataset.
// The paper's claim to reproduce (§7.2.7): tuple-based questions have
// roughly size-independent per-interaction latency; cell- and FD-based
// latency scales with the number of violations (and hence the table size).
//
// Measurement follows the paper's definition exactly -- "the time taken
// from the moment the user answers a question to the moment the next
// question is asked": a timing decorator around the simulated expert
// records the gap between consecutive questions, so per-session setup
// (candidate generation, graph construction) and finalization (sample FD
// discovery, evaluation) are excluded.

#include <chrono>
#include <memory>

#include "bench_util.h"

using namespace uguide;
using namespace uguide::bench;

namespace {

using Clock = std::chrono::steady_clock;

// Delegates to the real expert while recording inter-question gaps.
class TimingExpert : public Expert {
 public:
  explicit TimingExpert(Expert* inner) : inner_(inner) {}

  Answer IsCellErroneous(const Cell& cell) override {
    Stamp();
    return inner_->IsCellErroneous(cell);
  }
  Answer IsTupleClean(TupleId row) override {
    Stamp();
    return inner_->IsTupleClean(row);
  }
  Answer IsFdValid(const Fd& fd) override {
    Stamp();
    return inner_->IsFdValid(fd);
  }

  /// Mean milliseconds between consecutive questions (0 if fewer than 2).
  double MeanGapMs() const {
    return gaps_ == 0 ? 0.0 : total_ms_ / gaps_;
  }

 private:
  void Stamp() {
    const Clock::time_point now = Clock::now();
    if (has_last_) {
      total_ms_ +=
          std::chrono::duration<double, std::milli>(now - last_).count();
      ++gaps_;
    }
    last_ = now;
    has_last_ = true;
  }

  Expert* inner_;
  Clock::time_point last_;
  bool has_last_ = false;
  double total_ms_ = 0;
  int gaps_ = 0;
};

double MsPerInteraction(const Session& session, Strategy& strategy,
                        double budget) {
  SimulatedExpert inner(&session.true_violations(), &session.truth(),
                        session.dirty().NumAttributes(), session.true_fds());
  TimingExpert timed(&inner);
  QuestionContext ctx;
  ctx.dirty = &session.dirty();
  ctx.candidates = &session.candidates();
  ctx.exact_fds = &session.exact_fds();
  ctx.expert = &timed;
  ctx.budget = budget;
  ctx.true_fds = &session.true_fds();
  ctx.true_violations = &session.true_violations();
  ctx.injected = &session.truth();
  strategy.Run(ctx);
  return timed.MeanGapMs();
}

}  // namespace

int main(int argc, char** argv) {
  BenchParams params = ParseArgs(argc, argv);
  const double budget = 500.0;
  std::printf("== Figure 10: runtime per interaction vs #tuples, Tax, "
              "budget=%g ==\n", budget);

  struct Algo {
    std::string name;
    std::unique_ptr<Strategy> strategy;
  };
  std::vector<Algo> algos;
  algos.push_back({"FD-Q", MakeFdQBudgetedMaxCoverage({})});
  algos.push_back({"Cell-Q", MakeCellQSums({})});
  algos.push_back({"Tuple-Q", MakeTupleSamplingSaturationSets({})});

  std::vector<std::string> names;
  for (const Algo& algo : algos) names.push_back(algo.name);

  const std::vector<int> row_counts = {1000, 2000, 4000, 8000};

  std::printf("\n-- ms between consecutive questions vs #tuples --\n");
  std::printf("%-10s", "#tuples");
  for (const auto& name : names) std::printf(" %14s", name.c_str());
  std::printf("\n");

  for (int rows : row_counts) {
    BenchParams scaled = params;
    scaled.rows = rows;
    Session session = MakeSession(Dataset::kTax, scaled,
                                  ErrorModel::kSystematic, 0.20, 1.0, 0.0,
                                  /*seed=*/0);
    std::printf("%-10d", rows);
    for (Algo& algo : algos) {
      MsPerInteraction(session, *algo.strategy, budget);  // warm-up
      std::printf(" %14.3f",
                  MsPerInteraction(session, *algo.strategy, budget));
    }
    std::printf("\n");
  }
  return 0;
}
