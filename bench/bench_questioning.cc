// Microbenchmarks (google-benchmark) for the interactive questioning path:
// violation-graph construction (hash-grouping baseline vs the shared
// partition-backed engine, serial and parallel), per-question selection for
// the cell strategies (incremental heaps / incremental SUMS vs the retained
// full-rescan reference), and end-to-end sessions across strategies and
// thread counts. Emits BENCH_questioning.json; the engine benches carry the
// partition-cache hit/miss counters the CI bench-smoke job asserts on.

#include <benchmark/benchmark.h>

#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "core/uguide.h"

namespace uguide {
namespace {

// --- Fixtures ---------------------------------------------------------------

// Dirty Tax table plus its candidate FDs; the paper's widest relation and
// the acceptance target for the graph-build speedup. Built once.
struct TaxFixture {
  Relation dirty;
  FdSet candidates;
};

const TaxFixture& TaxAtScale(int rows) {
  static std::map<int, TaxFixture>* cache = new std::map<int, TaxFixture>();
  auto it = cache->find(rows);
  if (it != cache->end()) return it->second;

  DataGenOptions gen;
  gen.rows = rows;
  Relation clean = GenerateTax(gen);

  TaneOptions tane;
  tane.max_lhs_size = 3;
  FdSet true_fds = DiscoverFds(clean, tane).ValueOrDie();

  ErrorGenOptions errors;
  errors.model = ErrorModel::kSystematic;
  errors.error_rate = 0.10;
  DirtyDataset dataset = InjectErrors(clean, true_fds, errors).ValueOrDie();

  CandidateGenOptions cand;
  cand.max_lhs_size = 3;
  CandidateSet set = GenerateCandidates(dataset.dirty, cand).ValueOrDie();

  TaxFixture fixture{std::move(dataset.dirty), std::move(set.candidates)};
  return cache->emplace(rows, std::move(fixture)).first->second;
}

// Ready-to-run Tax session at 5000 rows: the acceptance target for the
// CellQ-HS selection speedup. Built once.
const Session& TaxSession() {
  static Session* session = [] {
    DataGenOptions gen;
    gen.rows = 5000;
    Relation clean = GenerateTax(gen);

    TaneOptions tane;
    tane.max_lhs_size = 3;
    FdSet true_fds = DiscoverFds(clean, tane).ValueOrDie();

    ErrorGenOptions errors;
    errors.model = ErrorModel::kSystematic;
    errors.error_rate = 0.10;
    DirtyDataset dataset = InjectErrors(clean, true_fds, errors).ValueOrDie();

    SessionConfig config;
    config.candidate_options.max_lhs_size = 3;
    config.budget = 150.0;
    return new Session(
        Session::Create(clean, std::move(dataset), config).ValueOrDie());
  }();
  return *session;
}

// Ready-to-run Hospital session, one per thread count. Session::Run spins
// its own engine and pool from candidate_options.num_threads.
const Session& HospitalSession(int threads) {
  static std::map<int, Session>* cache = new std::map<int, Session>();
  auto it = cache->find(threads);
  if (it != cache->end()) return it->second;

  DataGenOptions gen;
  gen.rows = 2000;
  Relation clean = GenerateHospital(gen);

  TaneOptions tane;
  tane.max_lhs_size = 3;
  FdSet true_fds = DiscoverFds(clean, tane).ValueOrDie();

  ErrorGenOptions errors;
  errors.model = ErrorModel::kSystematic;
  errors.error_rate = 0.15;
  DirtyDataset dataset = InjectErrors(clean, true_fds, errors).ValueOrDie();

  SessionConfig config;
  config.candidate_options.max_lhs_size = 3;
  config.candidate_options.num_threads = threads;
  config.budget = 150.0;
  Session session =
      Session::Create(clean, std::move(dataset), config).ValueOrDie();
  return cache->emplace(threads, std::move(session)).first->second;
}

// --- Violation-graph construction -------------------------------------------

// Baseline: the original per-FD hash-grouping detector, serial. This is
// the pre-engine code path, kept as ViolationGraph::BuildReference.
void BM_GraphBuildHashBaseline(benchmark::State& state) {
  const TaxFixture& tax = TaxAtScale(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ViolationGraph::BuildReference(tax.dirty, tax.candidates));
  }
  state.counters["candidate_fds"] =
      benchmark::Counter(static_cast<double>(tax.candidates.Size()));
}
BENCHMARK(BM_GraphBuildHashBaseline)->Arg(2000)->Arg(5000)
    ->Unit(benchmark::kMillisecond);

// Engine build at 1/2/4/8 threads over a session-lifetime engine: the
// LHS-partition cache is warm after the first iteration, which is exactly
// the per-run reuse contract (graph build, question building, and the
// final evaluation share one engine). The counters expose the cache's
// aggregate hit/miss tallies.
void BM_GraphBuildEngine(benchmark::State& state) {
  const TaxFixture& tax = TaxAtScale(5000);
  const int threads = static_cast<int>(state.range(0));
  ViolationEngine engine(&tax.dirty);
  ThreadPool pool(threads);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ViolationGraph::Build(engine, tax.candidates, &pool));
  }
  state.counters["partition_hits"] =
      benchmark::Counter(static_cast<double>(engine.partition_hits()));
  state.counters["partition_misses"] =
      benchmark::Counter(static_cast<double>(engine.partition_misses()));
}
BENCHMARK(BM_GraphBuildEngine)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

// Cold-cache engine build: a fresh engine every iteration isolates what
// the partition formulation buys before any reuse kicks in.
void BM_GraphBuildEngineCold(benchmark::State& state) {
  const TaxFixture& tax = TaxAtScale(5000);
  const int threads = static_cast<int>(state.range(0));
  ThreadPool pool(threads);
  for (auto _ : state) {
    ViolationEngine engine(&tax.dirty);
    benchmark::DoNotOptimize(
        ViolationGraph::Build(engine, tax.candidates, &pool));
  }
}
BENCHMARK(BM_GraphBuildEngineCold)->Arg(1)->Arg(4)
    ->Unit(benchmark::kMillisecond);

// --- Partition product: CSR vs nested-vector reference -----------------------

// The pre-CSR product (nested-vector layout), reproduced inline as the
// in-tree reference: label tuples by class in `a`, split each class of `b`
// with per-class scratch vectors that allocate as they grow.
std::vector<std::vector<TupleId>> NestedProduct(
    TupleId num_rows, const std::vector<std::vector<TupleId>>& a,
    const std::vector<std::vector<TupleId>>& b) {
  std::vector<int32_t> label(static_cast<size_t>(num_rows), -1);
  for (size_t i = 0; i < a.size(); ++i) {
    for (TupleId t : a[i]) {
      label[static_cast<size_t>(t)] = static_cast<int32_t>(i);
    }
  }
  std::vector<std::vector<TupleId>> scratch(a.size());
  std::vector<std::vector<TupleId>> result;
  for (const auto& cls : b) {
    std::vector<int32_t> touched;
    for (TupleId t : cls) {
      int32_t l = label[static_cast<size_t>(t)];
      if (l < 0) continue;
      if (scratch[static_cast<size_t>(l)].empty()) touched.push_back(l);
      scratch[static_cast<size_t>(l)].push_back(t);
    }
    for (int32_t l : touched) {
      auto& group = scratch[static_cast<size_t>(l)];
      if (group.size() >= 2) result.push_back(group);
      group.clear();
    }
  }
  return result;
}

std::vector<std::vector<TupleId>> NestedClasses(const Partition& p) {
  std::vector<std::vector<TupleId>> classes(p.NumClasses());
  for (size_t i = 0; i < p.NumClasses(); ++i) {
    classes[i] = p.Class(i).ToVector();
  }
  return classes;
}

// The two Tax columns with the largest stripped partitions: the heaviest
// single product the TANE lattice walk and LHS-partition composition pay.
std::pair<int, int> HeaviestTaxColumns(const Relation& dirty) {
  int first = 0, second = 1;
  size_t first_size = 0, second_size = 0;
  for (int col = 0; col < dirty.NumAttributes(); ++col) {
    const size_t size = Partition::ForColumn(dirty, col).StrippedSize();
    if (size > first_size) {
      second = first;
      second_size = first_size;
      first = col;
      first_size = size;
    } else if (size > second_size) {
      second = col;
      second_size = size;
    }
  }
  return {first, second};
}

void BM_PartitionProductCsr(benchmark::State& state) {
  const TaxFixture& tax = TaxAtScale(5000);
  const auto [ca, cb] = HeaviestTaxColumns(tax.dirty);
  const Partition a = Partition::ForColumn(tax.dirty, ca);
  const Partition b = Partition::ForColumn(tax.dirty, cb);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.Product(b));
  }
  state.counters["stripped_a"] =
      benchmark::Counter(static_cast<double>(a.StrippedSize()));
  state.counters["stripped_b"] =
      benchmark::Counter(static_cast<double>(b.StrippedSize()));
}
BENCHMARK(BM_PartitionProductCsr)->Unit(benchmark::kMillisecond);

void BM_PartitionProductReference(benchmark::State& state) {
  const TaxFixture& tax = TaxAtScale(5000);
  const auto [ca, cb] = HeaviestTaxColumns(tax.dirty);
  const TupleId rows = tax.dirty.NumRows();
  const std::vector<std::vector<TupleId>> a =
      NestedClasses(Partition::ForColumn(tax.dirty, ca));
  const std::vector<std::vector<TupleId>> b =
      NestedClasses(Partition::ForColumn(tax.dirty, cb));
  for (auto _ : state) {
    benchmark::DoNotOptimize(NestedProduct(rows, a, b));
  }
}
BENCHMARK(BM_PartitionProductReference)->Unit(benchmark::kMillisecond);

// --- Per-question selection --------------------------------------------------

// Full strategy runs with incremental selection on vs. the retained
// rescan reference; `per_question_us` is the normalized selection+update
// cost the interactive loop actually pays.
void RunCellStrategyBench(benchmark::State& state, const Session& session,
                          const std::string& which, bool incremental,
                          int sums_interval = 0) {
  CellStrategyOptions options;
  options.incremental = incremental;
  if (sums_interval > 0) options.sums_recompute_interval = sums_interval;
  std::unique_ptr<Strategy> strategy;
  if (which == "hs") {
    strategy = MakeCellQHittingSet(options);
  } else if (which == "greedy") {
    strategy = MakeCellQGreedy(options);
  } else {
    strategy = MakeCellQSums(options);
  }
  int questions = 0;
  for (auto _ : state) {
    SessionReport report = session.Run(*strategy);
    questions = report.result.questions_asked;
    benchmark::DoNotOptimize(report);
  }
  state.counters["questions"] =
      benchmark::Counter(static_cast<double>(questions));
  state.counters["questions_per_second"] = benchmark::Counter(
      static_cast<double>(questions),
      benchmark::Counter::kIsIterationInvariantRate);
}

void BM_CellQHittingSetIncremental(benchmark::State& state) {
  RunCellStrategyBench(state, HospitalSession(1), "hs", /*incremental=*/true);
}
BENCHMARK(BM_CellQHittingSetIncremental)->Unit(benchmark::kMillisecond);

void BM_CellQHittingSetReference(benchmark::State& state) {
  RunCellStrategyBench(state, HospitalSession(1), "hs", /*incremental=*/false);
}
BENCHMARK(BM_CellQHittingSetReference)->Unit(benchmark::kMillisecond);

// Tax@5000: the acceptance target for the CellQ-HS selection speedup on
// the paper's widest relation.
void BM_CellQHittingSetTaxIncremental(benchmark::State& state) {
  RunCellStrategyBench(state, TaxSession(), "hs", /*incremental=*/true);
}
BENCHMARK(BM_CellQHittingSetTaxIncremental)->Unit(benchmark::kMillisecond);

void BM_CellQHittingSetTaxReference(benchmark::State& state) {
  RunCellStrategyBench(state, TaxSession(), "hs", /*incremental=*/false);
}
BENCHMARK(BM_CellQHittingSetTaxReference)->Unit(benchmark::kMillisecond);

void BM_CellQGreedyIncremental(benchmark::State& state) {
  RunCellStrategyBench(state, HospitalSession(1), "greedy", /*incremental=*/true);
}
BENCHMARK(BM_CellQGreedyIncremental)->Unit(benchmark::kMillisecond);

void BM_CellQGreedyReference(benchmark::State& state) {
  RunCellStrategyBench(state, HospitalSession(1), "greedy", /*incremental=*/false);
}
BENCHMARK(BM_CellQGreedyReference)->Unit(benchmark::kMillisecond);

void BM_CellQSumsIncremental(benchmark::State& state) {
  RunCellStrategyBench(state, HospitalSession(1), "sums", /*incremental=*/true);
}
BENCHMARK(BM_CellQSumsIncremental)->Unit(benchmark::kMillisecond);

void BM_CellQSumsReference(benchmark::State& state) {
  RunCellStrategyBench(state, HospitalSession(1), "sums", /*incremental=*/false);
}
BENCHMARK(BM_CellQSumsReference)->Unit(benchmark::kMillisecond);

// Per-answer recomputation (interval 1): the regime the incremental
// fixpoint targets — most of the graph is clean between calls, so the
// changed-neighborhood iteration skips nearly all adjacency sums.
void BM_CellQSumsTightIncremental(benchmark::State& state) {
  RunCellStrategyBench(state, HospitalSession(1), "sums", /*incremental=*/true,
                       /*sums_interval=*/1);
}
BENCHMARK(BM_CellQSumsTightIncremental)->Unit(benchmark::kMillisecond);

void BM_CellQSumsTightReference(benchmark::State& state) {
  RunCellStrategyBench(state, HospitalSession(1), "sums", /*incremental=*/false,
                       /*sums_interval=*/1);
}
BENCHMARK(BM_CellQSumsTightReference)->Unit(benchmark::kMillisecond);

// --- End-to-end sessions -----------------------------------------------------

// Whole Session::Run (engine construction, graph build, questioning,
// final evaluation) per strategy family and thread count. Thread count
// must never change the report (equivalence suite asserts bit-identical
// results); here it only moves the wall clock.
void RunSessionBench(benchmark::State& state,
                     std::unique_ptr<Strategy> strategy) {
  const Session& session = HospitalSession(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    SessionReport report = session.Run(*strategy);
    benchmark::DoNotOptimize(report);
  }
}

void BM_SessionCellQHittingSet(benchmark::State& state) {
  RunSessionBench(state, MakeCellQHittingSet());
}
BENCHMARK(BM_SessionCellQHittingSet)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

void BM_SessionCellQSums(benchmark::State& state) {
  RunSessionBench(state, MakeCellQSums());
}
BENCHMARK(BM_SessionCellQSums)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

void BM_SessionFdQMaxCoverage(benchmark::State& state) {
  RunSessionBench(state, MakeFdQBudgetedMaxCoverage());
}
BENCHMARK(BM_SessionFdQMaxCoverage)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

void BM_SessionTupleSamplingViolation(benchmark::State& state) {
  RunSessionBench(state, MakeTupleSamplingViolationWeighting());
}
BENCHMARK(BM_SessionTupleSamplingViolation)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace uguide

// Custom main instead of BENCHMARK_MAIN(): default to machine-readable
// JSON alongside the console table so CI's bench-smoke job and scaling
// tooling can diff runs without scraping text. Any caller-provided
// --benchmark_out= wins; console output is unchanged either way.
int main(int argc, char** argv) {
  std::vector<char*> args(argv, argv + argc);
  std::string out_flag = "--benchmark_out=BENCH_questioning.json";
  std::string fmt_flag = "--benchmark_out_format=json";
  bool has_out = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]).rfind("--benchmark_out=", 0) == 0) {
      has_out = true;
    }
  }
  if (!has_out) {
    args.push_back(out_flag.data());
    args.push_back(fmt_flag.data());
  }
  int args_argc = static_cast<int>(args.size());
  benchmark::Initialize(&args_argc, args.data());
  // The JSON's library_build_type field describes how the *benchmark
  // library* was compiled (the distro package reports debug); record this
  // binary's own build mode so regression tooling can refuse to compare
  // debug numbers against the Release baseline.
#ifdef NDEBUG
  benchmark::AddCustomContext("uguide_build_type", "release");
#else
  benchmark::AddCustomContext("uguide_build_type", "debug");
#endif
  if (benchmark::ReportUnrecognizedArguments(args_argc, args.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
