// Figures 7 and 8: impact of the fraction of erroneous tuples (10%-50%,
// each FD still capped at 10% of tuples) on the three question types at a
// fixed budget of 500, Hospital dataset.
//   Fig. 7: error % vs. % true violations
//   Fig. 8: error % vs. % false violations

#include <memory>

#include "bench_util.h"

using namespace uguide;
using namespace uguide::bench;

int main(int argc, char** argv) {
  BenchParams params = ParseArgs(argc, argv);
  const double budget = 500.0;
  std::printf("== Figures 7-8: impact of error percentage, Hospital, "
              "budget=%g (rows=%d, seeds=%d) ==\n",
              budget, params.rows, params.seeds);

  struct Algo {
    std::string name;
    std::unique_ptr<Strategy> strategy;
  };
  std::vector<Algo> algos;
  algos.push_back({"FD-Q", MakeFdQBudgetedMaxCoverage({})});
  algos.push_back({"Cell-Q", MakeCellQSums({})});
  algos.push_back({"Tuple-Q", MakeTupleSamplingSaturationSets({})});

  const std::vector<double> error_pcts = {10, 20, 30, 40, 50};
  std::vector<std::string> names;
  for (const Algo& algo : algos) names.push_back(algo.name);

  // Build the session grid once (one row of sessions per error rate).
  std::vector<std::vector<Session>> grid;
  for (double pct : error_pcts) {
    std::vector<Session> sessions;
    for (int seed = 0; seed < params.seeds; ++seed) {
      sessions.push_back(MakeSession(Dataset::kHospital, params,
                                     ErrorModel::kSystematic, pct / 100.0,
                                     /*per_fd_cap=*/0.10, 0.0, seed));
    }
    grid.push_back(std::move(sessions));
  }

  for (bool false_pct : {false, true}) {
    std::printf("\n-- Fig. %d: %%%s violations vs error %% --\n",
                false_pct ? 8 : 7, false_pct ? "false" : "true");
    PrintHeader("err_pct", names);
    for (size_t i = 0; i < error_pcts.size(); ++i) {
      std::vector<double> row;
      for (Algo& algo : algos) {
        SweepPoint p = RunPoint(grid[i], *algo.strategy, budget);
        row.push_back(false_pct ? p.false_pct : p.true_pct);
      }
      PrintRow(error_pcts[i], row);
    }
  }
  return 0;
}
