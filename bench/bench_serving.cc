// Serving throughput/latency: boots the in-process ServingDaemon on a
// loopback socket and drives it with the simulated expert at 1, 16, and 64
// concurrent sessions, reporting sessions/sec and per-question round-trip
// p50/p99. Emits BENCH_serving.json (hand-rolled — this bench measures the
// daemon, so it owns its main loop instead of google-benchmark).
//
//   bench_serving [--rows=N] [--budget=B] [--strategy=NAME]
//                 [--out=BENCH_serving.json]

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/thread_pool.h"
#include "core/uguide.h"
#include "server/daemon.h"
#include "server/dataset.h"
#include "server/dataset_registry.h"
#include "server/protocol.h"

using namespace uguide;

namespace {

struct Args {
  int rows = 600;
  double budget = 24.0;
  std::string strategy = "FDQ-BMC";
  std::string out = "BENCH_serving.json";
};

/// Blocking line client (same shape as uguide_loadgen's Connection).
class Connection {
 public:
  ~Connection() {
    if (fd_ >= 0) ::close(fd_);
  }

  bool Connect(int port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) return false;
    sockaddr_in addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<uint16_t>(port));
    if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
        0) {
      return false;
    }
    const int one = 1;
    ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    return true;
  }

  bool WriteLine(const std::string& line) {
    std::string framed = line + "\n";
    size_t sent = 0;
    while (sent < framed.size()) {
      const ssize_t n = ::send(fd_, framed.data() + sent,
                               framed.size() - sent, MSG_NOSIGNAL);
      if (n <= 0) return false;
      sent += static_cast<size_t>(n);
    }
    return true;
  }

  bool ReadLine(std::string* line) {
    while (true) {
      const size_t nl = buffer_.find('\n');
      if (nl != std::string::npos) {
        *line = buffer_.substr(0, nl);
        buffer_.erase(0, nl + 1);
        return true;
      }
      char chunk[4096];
      const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n <= 0) return false;
      buffer_.append(chunk, static_cast<size_t>(n));
    }
  }

 private:
  int fd_ = -1;
  std::string buffer_;
};

struct LevelResult {
  int concurrency = 0;
  int sessions = 0;
  int completed = 0;
  size_t answers = 0;
  double elapsed_s = 0.0;
  double sessions_per_sec = 0.0;
  double rtt_p50_ms = 0.0;
  double rtt_p99_ms = 0.0;
};

double Percentile(std::vector<double>* values, double p) {
  if (values->empty()) return 0.0;
  std::sort(values->begin(), values->end());
  const size_t index = static_cast<size_t>(
      p * static_cast<double>(values->size() - 1) / 100.0);
  return (*values)[index];
}

/// Runs `sessions` sessions at `concurrency` workers against the daemon.
LevelResult RunLevel(const Session& session, int port, const Args& args,
                     int concurrency, int sessions) {
  std::atomic<int> next{0};
  std::atomic<int> completed{0};
  std::mutex rtt_mu;
  std::vector<double> rtt_ms;

  const auto started = std::chrono::steady_clock::now();
  std::vector<std::thread> workers;
  for (int w = 0; w < concurrency; ++w) {
    workers.emplace_back([&, w] {
      Connection conn;
      if (!conn.Connect(port)) return;
      std::vector<double> local;
      while (true) {
        const int index = next.fetch_add(1);
        if (index >= sessions) break;
        const SessionConfig& config = session.config();
        SimulatedExpert expert(&session.true_violations(), &session.truth(),
                               session.dirty().NumAttributes(),
                               session.true_fds(), config.idk_rate,
                               config.expert_seed, config.wrong_rate);
        ClientFrame open;
        open.op = ClientOp::kOpen;
        open.id = "bench-c" + std::to_string(concurrency) + "-" +
                  std::to_string(index);
        open.strategy = args.strategy;
        open.budget = args.budget;
        open.has_budget = true;
        if (!conn.WriteLine(FormatClientFrame(open))) return;
        auto sent_at = std::chrono::steady_clock::now();
        while (true) {
          std::string line;
          if (!conn.ReadLine(&line)) return;
          local.push_back(std::chrono::duration<double, std::milli>(
                              std::chrono::steady_clock::now() - sent_at)
                              .count());
          Result<ServerFrame> frame = ParseServerFrame(line);
          if (!frame.ok()) return;
          if (frame->type == ServerFrameType::kReport) {
            completed.fetch_add(1);
            break;
          }
          if (frame->type != ServerFrameType::kQuestion) return;
          const SessionQuestion& q = frame->question;
          ClientFrame answer;
          answer.op = ClientOp::kAnswer;
          answer.id = open.id;
          answer.seq = q.index;
          switch (q.kind) {
            case QuestionKind::kCell:
              answer.answer = expert.IsCellErroneous(q.cell);
              break;
            case QuestionKind::kTuple:
              answer.answer = expert.IsTupleClean(q.row);
              break;
            case QuestionKind::kFd:
              answer.answer = expert.IsFdValid(q.fd);
              break;
          }
          sent_at = std::chrono::steady_clock::now();
          if (!conn.WriteLine(FormatClientFrame(answer))) return;
        }
      }
      std::lock_guard<std::mutex> lock(rtt_mu);
      rtt_ms.insert(rtt_ms.end(), local.begin(), local.end());
    });
  }
  for (std::thread& t : workers) t.join();

  LevelResult result;
  result.concurrency = concurrency;
  result.sessions = sessions;
  result.completed = completed.load();
  result.answers = rtt_ms.size();
  result.elapsed_s = std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - started)
                         .count();
  result.sessions_per_sec =
      result.elapsed_s > 0.0 ? result.completed / result.elapsed_s : 0.0;
  result.rtt_p50_ms = Percentile(&rtt_ms, 50.0);
  result.rtt_p99_ms = Percentile(&rtt_ms, 99.0);
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--rows=", 7) == 0) {
      args.rows = std::atoi(argv[i] + 7);
    } else if (std::strncmp(argv[i], "--budget=", 9) == 0) {
      args.budget = std::atof(argv[i] + 9);
    } else if (std::strncmp(argv[i], "--strategy=", 11) == 0) {
      args.strategy = argv[i] + 11;
    } else if (std::strncmp(argv[i], "--out=", 6) == 0) {
      args.out = argv[i] + 6;
    } else {
      std::fprintf(stderr, "bench_serving: unknown flag %s\n", argv[i]);
      return 2;
    }
  }

  ServedDatasetOptions dataset;
  dataset.rows = args.rows;
  dataset.budget = args.budget;
  std::fprintf(stderr, "bench_serving: building dataset (%d rows)...\n",
               dataset.rows);

  // The production shape: shared artifacts from the registry, session
  // steps on the process pool behind the epoll reactor.
  ThreadPool pool(ThreadPool::kAuto);
  DatasetRegistryOptions registry_options;
  registry_options.pool = &pool;
  DatasetRegistry registry(registry_options);
  std::shared_ptr<const DatasetArtifacts> artifacts =
      registry.Open(dataset).ValueOrDie();
  const Session& session = artifacts->session;

  DaemonOptions options;
  options.manager.max_sessions = 128;
  options.manager.pool = &pool;
  auto daemon = ServingDaemon::Start(artifacts, options).ValueOrDie();

  std::printf("== Serving throughput (rows=%d, budget=%g, strategy=%s) ==\n",
              args.rows, args.budget, args.strategy.c_str());
  std::printf("%12s %10s %12s %14s %12s %12s\n", "concurrency", "sessions",
              "answers", "sessions/sec", "rtt_p50_ms", "rtt_p99_ms");

  std::vector<LevelResult> results;
  for (int concurrency : {1, 16, 64}) {
    // At least 64 sessions per level so short levels do not ride on
    // scheduler luck, and 4x concurrency so the ramp/drain tail
    // (stragglers running below full concurrency) does not dominate the
    // measured throughput.
    const int sessions = std::max(64, 4 * concurrency);
    LevelResult level =
        RunLevel(session, daemon->port(), args, concurrency, sessions);
    if (level.completed != level.sessions) {
      std::fprintf(stderr,
                   "bench_serving: only %d/%d sessions completed at "
                   "concurrency %d\n",
                   level.completed, level.sessions, concurrency);
      return 1;
    }
    std::printf("%12d %10d %12zu %14.1f %12.3f %12.3f\n", level.concurrency,
                level.sessions, level.answers, level.sessions_per_sec,
                level.rtt_p50_ms, level.rtt_p99_ms);
    results.push_back(level);
  }
  // Overload/robustness counters, captured before shutdown. A clean bench
  // run admits everything; nonzero sheds here mean the measurements were
  // taken under (unintended) pressure. Additive: the regression gate
  // (tools/check_serving_regression.py) reads only "levels".
  const SessionManagerStats manager_stats = daemon->manager().stats();
  const AdmissionStats admission = daemon->manager().admission_stats();
  const ReactorStats reactor = daemon->reactor().stats();
  daemon->Shutdown();

  std::FILE* out = std::fopen(args.out.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "bench_serving: cannot write %s\n",
                 args.out.c_str());
    return 1;
  }
  std::fprintf(out,
               "{\n"
               "  \"bench\": \"serving\",\n"
               "  \"rows\": %d,\n"
               "  \"budget\": %g,\n"
               "  \"strategy\": \"%s\",\n"
               "  \"levels\": [\n",
               args.rows, args.budget, args.strategy.c_str());
  for (size_t i = 0; i < results.size(); ++i) {
    const LevelResult& r = results[i];
    std::fprintf(out,
                 "    {\"concurrency\": %d, \"sessions\": %d, "
                 "\"answers\": %zu, \"elapsed_s\": %.6f, "
                 "\"sessions_per_sec\": %.2f, \"rtt_p50_ms\": %.4f, "
                 "\"rtt_p99_ms\": %.4f}%s\n",
                 r.concurrency, r.sessions, r.answers, r.elapsed_s,
                 r.sessions_per_sec, r.rtt_p50_ms, r.rtt_p99_ms,
                 i + 1 < results.size() ? "," : "");
  }
  std::fprintf(out,
               "  ],\n"
               "  \"counters\": {\n"
               "    \"opened\": %d, \"finished\": %d, \"evicted\": %d, "
               "\"refused\": %d,\n"
               "    \"rate_limited\": %lld, \"deadline_shed\": %lld, "
               "\"brownout_refused\": %lld, \"brownout_shed\": %lld,\n"
               "    \"accepted\": %lld, \"dropped\": %lld, "
               "\"dropped_slow_reader\": %lld, \"reaped_idle\": %lld\n"
               "  }\n}\n",
               manager_stats.opened, manager_stats.finished,
               manager_stats.evicted, manager_stats.refused,
               static_cast<long long>(admission.rate_limited),
               static_cast<long long>(admission.deadline_shed),
               static_cast<long long>(admission.brownout_refused),
               static_cast<long long>(admission.brownout_shed),
               static_cast<long long>(reactor.accepted),
               static_cast<long long>(reactor.dropped),
               static_cast<long long>(reactor.dropped_slow_reader),
               static_cast<long long>(reactor.reaped_idle));
  std::fclose(out);
  std::fprintf(stderr, "bench_serving: wrote %s\n", args.out.c_str());
  return 0;
}
