#ifndef UGUIDE_BENCH_BENCH_UTIL_H_
#define UGUIDE_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "core/uguide.h"

namespace uguide::bench {

/// Which of the three paper datasets to generate.
enum class Dataset { kTax, kHospital, kStock };

inline const char* DatasetName(Dataset d) {
  switch (d) {
    case Dataset::kTax:
      return "Tax";
    case Dataset::kHospital:
      return "Hospital";
    case Dataset::kStock:
      return "Stock";
  }
  return "?";
}

inline Relation GenerateDataset(Dataset d, const DataGenOptions& opts) {
  switch (d) {
    case Dataset::kTax:
      return GenerateTax(opts);
    case Dataset::kHospital:
      return GenerateHospital(opts);
    case Dataset::kStock:
      return GenerateStock(opts);
  }
  return GenerateHospital(opts);
}

/// Parameters shared by the figure benches; overridable from the command
/// line with --rows=N and --seeds=K (paper scale: --rows=100000).
struct BenchParams {
  int rows = 3000;
  int seeds = 1;  // dirty-dataset instantiations averaged per point
  int max_lhs = 3;
};

inline BenchParams ParseArgs(int argc, char** argv) {
  BenchParams params;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--rows=", 7) == 0) {
      params.rows = std::atoi(argv[i] + 7);
    } else if (std::strncmp(argv[i], "--seeds=", 8) == 0) {
      params.seeds = std::atoi(argv[i] + 8);
    } else if (std::strncmp(argv[i], "--max-lhs=", 10) == 0) {
      params.max_lhs = std::atoi(argv[i] + 10);
    }
  }
  return params;
}

/// Builds one experiment session: generate clean data, discover Sigma_TC,
/// inject errors, generate candidates.
inline Session MakeSession(Dataset dataset, const BenchParams& params,
                           ErrorModel model, double error_rate,
                           double per_fd_cap, double idk_rate,
                           uint64_t seed) {
  DataGenOptions data;
  data.rows = params.rows;
  data.seed = 1000 + seed;
  Relation clean = GenerateDataset(dataset, data);

  TaneOptions tane;
  tane.max_lhs_size = params.max_lhs;
  FdSet true_fds = DiscoverFds(clean, tane).ValueOrDie();

  ErrorGenOptions errors;
  errors.model = model;
  errors.error_rate = error_rate;
  errors.per_fd_cap = per_fd_cap;
  errors.seed = 2000 + seed;
  DirtyDataset dirty = InjectErrors(clean, true_fds, errors).ValueOrDie();

  SessionConfig config;
  config.candidate_options.max_lhs_size = params.max_lhs;
  config.idk_rate = idk_rate;
  config.expert_seed = 3000 + seed;
  return Session::Create(clean, std::move(dirty), config).ValueOrDie();
}

/// Averaged result of running a strategy at one budget over several dirty
/// instantiations.
struct SweepPoint {
  double true_pct = 0;
  double false_pct = 0;
  double injected_pct = 0;
  double questions = 0;
};

inline SweepPoint RunPoint(const std::vector<Session>& sessions,
                           Strategy& strategy, double budget) {
  SweepPoint point;
  for (const Session& session : sessions) {
    SessionReport report = session.Run(strategy, budget);
    point.true_pct += report.metrics.TrueViolationPct();
    point.false_pct += report.metrics.FalseViolationPct();
    point.injected_pct += report.metrics.InjectedRecallPct();
    point.questions += report.result.questions_asked;
  }
  const double n = static_cast<double>(sessions.size());
  point.true_pct /= n;
  point.false_pct /= n;
  point.injected_pct /= n;
  point.questions /= n;
  return point;
}

/// Prints a series header like:  budget  Alg1  Alg2 ...
inline void PrintHeader(const char* x_label,
                        const std::vector<std::string>& series) {
  std::printf("%-10s", x_label);
  for (const auto& name : series) std::printf(" %14s", name.c_str());
  std::printf("\n");
}

inline void PrintRow(double x, const std::vector<double>& values) {
  std::printf("%-10.0f", x);
  for (double v : values) std::printf(" %14.1f", v);
  std::printf("\n");
}

}  // namespace uguide::bench

#endif  // UGUIDE_BENCH_BENCH_UTIL_H_
