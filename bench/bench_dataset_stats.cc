// Reproduces the dataset statistics quoted in §7.1: per dataset, the row
// count, attribute count, and the number of minimal exact FDs discovered
// by TANE (the paper reports 364 / 83 / 56 for Tax / Hospital / SP Stock at
// 100K+ rows; counts scale with rows and the LHS-size cap).

#include "bench_util.h"

using namespace uguide;
using namespace uguide::bench;

int main(int argc, char** argv) {
  BenchParams params = ParseArgs(argc, argv);

  std::printf("== Dataset statistics (rows=%d, max_lhs=%d) ==\n",
              params.rows, params.max_lhs);
  std::printf("%-10s %8s %8s %12s %12s %12s\n", "dataset", "rows", "attrs",
              "exact FDs", "AFDs(10%)", "candidates");

  for (Dataset dataset :
       {Dataset::kTax, Dataset::kHospital, Dataset::kStock}) {
    DataGenOptions data;
    data.rows = params.rows;
    Relation rel = GenerateDataset(dataset, data);

    TaneOptions tane;
    tane.max_lhs_size = params.max_lhs;
    FdSet exact = DiscoverFds(rel, tane).ValueOrDie();

    TaneOptions approx = tane;
    approx.max_error = 0.10;
    FdSet afds = DiscoverFds(rel, approx).ValueOrDie();

    CandidateGenOptions cand;
    cand.max_lhs_size = params.max_lhs;
    CandidateSet candidates = GenerateCandidates(rel, cand).ValueOrDie();

    std::printf("%-10s %8d %8d %12zu %12zu %12zu\n", DatasetName(dataset),
                rel.NumRows(), rel.NumAttributes(), exact.Size(),
                afds.Size(), candidates.candidates.Size());
  }
  return 0;
}
