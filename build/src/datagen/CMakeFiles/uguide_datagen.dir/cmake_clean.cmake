file(REMOVE_RECURSE
  "CMakeFiles/uguide_datagen.dir/generators.cc.o"
  "CMakeFiles/uguide_datagen.dir/generators.cc.o.d"
  "libuguide_datagen.a"
  "libuguide_datagen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uguide_datagen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
