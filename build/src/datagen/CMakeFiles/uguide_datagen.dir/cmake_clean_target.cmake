file(REMOVE_RECURSE
  "libuguide_datagen.a"
)
