# Empty dependencies file for uguide_datagen.
# This may be replaced when dependencies are built.
