file(REMOVE_RECURSE
  "libuguide_violations.a"
)
