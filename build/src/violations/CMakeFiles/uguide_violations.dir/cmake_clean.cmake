file(REMOVE_RECURSE
  "CMakeFiles/uguide_violations.dir/bipartite_graph.cc.o"
  "CMakeFiles/uguide_violations.dir/bipartite_graph.cc.o.d"
  "CMakeFiles/uguide_violations.dir/violation_detector.cc.o"
  "CMakeFiles/uguide_violations.dir/violation_detector.cc.o.d"
  "libuguide_violations.a"
  "libuguide_violations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uguide_violations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
