# Empty dependencies file for uguide_violations.
# This may be replaced when dependencies are built.
