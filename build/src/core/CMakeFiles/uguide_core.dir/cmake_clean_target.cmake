file(REMOVE_RECURSE
  "libuguide_core.a"
)
