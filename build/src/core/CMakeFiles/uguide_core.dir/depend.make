# Empty dependencies file for uguide_core.
# This may be replaced when dependencies are built.
