file(REMOVE_RECURSE
  "CMakeFiles/uguide_core.dir/candidate_gen.cc.o"
  "CMakeFiles/uguide_core.dir/candidate_gen.cc.o.d"
  "CMakeFiles/uguide_core.dir/cell_strategies.cc.o"
  "CMakeFiles/uguide_core.dir/cell_strategies.cc.o.d"
  "CMakeFiles/uguide_core.dir/fd_strategies.cc.o"
  "CMakeFiles/uguide_core.dir/fd_strategies.cc.o.d"
  "CMakeFiles/uguide_core.dir/metrics.cc.o"
  "CMakeFiles/uguide_core.dir/metrics.cc.o.d"
  "CMakeFiles/uguide_core.dir/repair.cc.o"
  "CMakeFiles/uguide_core.dir/repair.cc.o.d"
  "CMakeFiles/uguide_core.dir/session.cc.o"
  "CMakeFiles/uguide_core.dir/session.cc.o.d"
  "CMakeFiles/uguide_core.dir/tuple_strategies.cc.o"
  "CMakeFiles/uguide_core.dir/tuple_strategies.cc.o.d"
  "libuguide_core.a"
  "libuguide_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uguide_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
