
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/candidate_gen.cc" "src/core/CMakeFiles/uguide_core.dir/candidate_gen.cc.o" "gcc" "src/core/CMakeFiles/uguide_core.dir/candidate_gen.cc.o.d"
  "/root/repo/src/core/cell_strategies.cc" "src/core/CMakeFiles/uguide_core.dir/cell_strategies.cc.o" "gcc" "src/core/CMakeFiles/uguide_core.dir/cell_strategies.cc.o.d"
  "/root/repo/src/core/fd_strategies.cc" "src/core/CMakeFiles/uguide_core.dir/fd_strategies.cc.o" "gcc" "src/core/CMakeFiles/uguide_core.dir/fd_strategies.cc.o.d"
  "/root/repo/src/core/metrics.cc" "src/core/CMakeFiles/uguide_core.dir/metrics.cc.o" "gcc" "src/core/CMakeFiles/uguide_core.dir/metrics.cc.o.d"
  "/root/repo/src/core/repair.cc" "src/core/CMakeFiles/uguide_core.dir/repair.cc.o" "gcc" "src/core/CMakeFiles/uguide_core.dir/repair.cc.o.d"
  "/root/repo/src/core/session.cc" "src/core/CMakeFiles/uguide_core.dir/session.cc.o" "gcc" "src/core/CMakeFiles/uguide_core.dir/session.cc.o.d"
  "/root/repo/src/core/tuple_strategies.cc" "src/core/CMakeFiles/uguide_core.dir/tuple_strategies.cc.o" "gcc" "src/core/CMakeFiles/uguide_core.dir/tuple_strategies.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/oracle/CMakeFiles/uguide_oracle.dir/DependInfo.cmake"
  "/root/repo/build/src/errorgen/CMakeFiles/uguide_errorgen.dir/DependInfo.cmake"
  "/root/repo/build/src/violations/CMakeFiles/uguide_violations.dir/DependInfo.cmake"
  "/root/repo/build/src/discovery/CMakeFiles/uguide_discovery.dir/DependInfo.cmake"
  "/root/repo/build/src/fd/CMakeFiles/uguide_fd.dir/DependInfo.cmake"
  "/root/repo/build/src/relation/CMakeFiles/uguide_relation.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/uguide_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
