file(REMOVE_RECURSE
  "CMakeFiles/uguide_errorgen.dir/error_generator.cc.o"
  "CMakeFiles/uguide_errorgen.dir/error_generator.cc.o.d"
  "libuguide_errorgen.a"
  "libuguide_errorgen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uguide_errorgen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
