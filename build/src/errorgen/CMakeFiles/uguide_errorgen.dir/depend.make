# Empty dependencies file for uguide_errorgen.
# This may be replaced when dependencies are built.
