file(REMOVE_RECURSE
  "libuguide_errorgen.a"
)
