# Empty compiler generated dependencies file for uguide_discovery.
# This may be replaced when dependencies are built.
