file(REMOVE_RECURSE
  "libuguide_discovery.a"
)
