
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/discovery/partition.cc" "src/discovery/CMakeFiles/uguide_discovery.dir/partition.cc.o" "gcc" "src/discovery/CMakeFiles/uguide_discovery.dir/partition.cc.o.d"
  "/root/repo/src/discovery/relaxation.cc" "src/discovery/CMakeFiles/uguide_discovery.dir/relaxation.cc.o" "gcc" "src/discovery/CMakeFiles/uguide_discovery.dir/relaxation.cc.o.d"
  "/root/repo/src/discovery/tane.cc" "src/discovery/CMakeFiles/uguide_discovery.dir/tane.cc.o" "gcc" "src/discovery/CMakeFiles/uguide_discovery.dir/tane.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/fd/CMakeFiles/uguide_fd.dir/DependInfo.cmake"
  "/root/repo/build/src/relation/CMakeFiles/uguide_relation.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/uguide_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
