file(REMOVE_RECURSE
  "CMakeFiles/uguide_discovery.dir/partition.cc.o"
  "CMakeFiles/uguide_discovery.dir/partition.cc.o.d"
  "CMakeFiles/uguide_discovery.dir/relaxation.cc.o"
  "CMakeFiles/uguide_discovery.dir/relaxation.cc.o.d"
  "CMakeFiles/uguide_discovery.dir/tane.cc.o"
  "CMakeFiles/uguide_discovery.dir/tane.cc.o.d"
  "libuguide_discovery.a"
  "libuguide_discovery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uguide_discovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
