file(REMOVE_RECURSE
  "libuguide_cfd.a"
)
