# Empty compiler generated dependencies file for uguide_cfd.
# This may be replaced when dependencies are built.
