file(REMOVE_RECURSE
  "CMakeFiles/uguide_cfd.dir/cfd.cc.o"
  "CMakeFiles/uguide_cfd.dir/cfd.cc.o.d"
  "CMakeFiles/uguide_cfd.dir/cfd_discovery.cc.o"
  "CMakeFiles/uguide_cfd.dir/cfd_discovery.cc.o.d"
  "CMakeFiles/uguide_cfd.dir/tableau.cc.o"
  "CMakeFiles/uguide_cfd.dir/tableau.cc.o.d"
  "libuguide_cfd.a"
  "libuguide_cfd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uguide_cfd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
