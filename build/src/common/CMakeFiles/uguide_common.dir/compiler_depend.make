# Empty compiler generated dependencies file for uguide_common.
# This may be replaced when dependencies are built.
