file(REMOVE_RECURSE
  "libuguide_common.a"
)
