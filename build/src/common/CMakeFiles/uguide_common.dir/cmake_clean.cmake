file(REMOVE_RECURSE
  "CMakeFiles/uguide_common.dir/attribute_set.cc.o"
  "CMakeFiles/uguide_common.dir/attribute_set.cc.o.d"
  "CMakeFiles/uguide_common.dir/csv.cc.o"
  "CMakeFiles/uguide_common.dir/csv.cc.o.d"
  "CMakeFiles/uguide_common.dir/rng.cc.o"
  "CMakeFiles/uguide_common.dir/rng.cc.o.d"
  "CMakeFiles/uguide_common.dir/status.cc.o"
  "CMakeFiles/uguide_common.dir/status.cc.o.d"
  "CMakeFiles/uguide_common.dir/string_pool.cc.o"
  "CMakeFiles/uguide_common.dir/string_pool.cc.o.d"
  "libuguide_common.a"
  "libuguide_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uguide_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
