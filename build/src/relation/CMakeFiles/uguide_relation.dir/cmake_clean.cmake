file(REMOVE_RECURSE
  "CMakeFiles/uguide_relation.dir/relation.cc.o"
  "CMakeFiles/uguide_relation.dir/relation.cc.o.d"
  "CMakeFiles/uguide_relation.dir/schema.cc.o"
  "CMakeFiles/uguide_relation.dir/schema.cc.o.d"
  "libuguide_relation.a"
  "libuguide_relation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uguide_relation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
