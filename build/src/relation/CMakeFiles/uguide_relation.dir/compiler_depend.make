# Empty compiler generated dependencies file for uguide_relation.
# This may be replaced when dependencies are built.
