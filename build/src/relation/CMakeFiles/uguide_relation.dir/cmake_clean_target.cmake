file(REMOVE_RECURSE
  "libuguide_relation.a"
)
