file(REMOVE_RECURSE
  "libuguide_oracle.a"
)
