
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/oracle/cost_model.cc" "src/oracle/CMakeFiles/uguide_oracle.dir/cost_model.cc.o" "gcc" "src/oracle/CMakeFiles/uguide_oracle.dir/cost_model.cc.o.d"
  "/root/repo/src/oracle/simulated_expert.cc" "src/oracle/CMakeFiles/uguide_oracle.dir/simulated_expert.cc.o" "gcc" "src/oracle/CMakeFiles/uguide_oracle.dir/simulated_expert.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/errorgen/CMakeFiles/uguide_errorgen.dir/DependInfo.cmake"
  "/root/repo/build/src/violations/CMakeFiles/uguide_violations.dir/DependInfo.cmake"
  "/root/repo/build/src/fd/CMakeFiles/uguide_fd.dir/DependInfo.cmake"
  "/root/repo/build/src/relation/CMakeFiles/uguide_relation.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/uguide_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
