# Empty dependencies file for uguide_oracle.
# This may be replaced when dependencies are built.
