file(REMOVE_RECURSE
  "CMakeFiles/uguide_oracle.dir/cost_model.cc.o"
  "CMakeFiles/uguide_oracle.dir/cost_model.cc.o.d"
  "CMakeFiles/uguide_oracle.dir/simulated_expert.cc.o"
  "CMakeFiles/uguide_oracle.dir/simulated_expert.cc.o.d"
  "libuguide_oracle.a"
  "libuguide_oracle.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uguide_oracle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
