file(REMOVE_RECURSE
  "libuguide_fd.a"
)
