# Empty compiler generated dependencies file for uguide_fd.
# This may be replaced when dependencies are built.
