file(REMOVE_RECURSE
  "CMakeFiles/uguide_fd.dir/armstrong.cc.o"
  "CMakeFiles/uguide_fd.dir/armstrong.cc.o.d"
  "CMakeFiles/uguide_fd.dir/closure.cc.o"
  "CMakeFiles/uguide_fd.dir/closure.cc.o.d"
  "CMakeFiles/uguide_fd.dir/fd.cc.o"
  "CMakeFiles/uguide_fd.dir/fd.cc.o.d"
  "libuguide_fd.a"
  "libuguide_fd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uguide_fd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
