file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_comparative.dir/bench_fig6_comparative.cc.o"
  "CMakeFiles/bench_fig6_comparative.dir/bench_fig6_comparative.cc.o.d"
  "bench_fig6_comparative"
  "bench_fig6_comparative.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_comparative.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
