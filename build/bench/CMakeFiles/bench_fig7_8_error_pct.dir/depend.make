# Empty dependencies file for bench_fig7_8_error_pct.
# This may be replaced when dependencies are built.
