# Empty compiler generated dependencies file for bench_fig5_tuple_questions.
# This may be replaced when dependencies are built.
