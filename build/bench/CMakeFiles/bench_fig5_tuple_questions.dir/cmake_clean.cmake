file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_tuple_questions.dir/bench_fig5_tuple_questions.cc.o"
  "CMakeFiles/bench_fig5_tuple_questions.dir/bench_fig5_tuple_questions.cc.o.d"
  "bench_fig5_tuple_questions"
  "bench_fig5_tuple_questions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_tuple_questions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
