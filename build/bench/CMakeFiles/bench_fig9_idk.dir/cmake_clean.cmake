file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_idk.dir/bench_fig9_idk.cc.o"
  "CMakeFiles/bench_fig9_idk.dir/bench_fig9_idk.cc.o.d"
  "bench_fig9_idk"
  "bench_fig9_idk.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_idk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
