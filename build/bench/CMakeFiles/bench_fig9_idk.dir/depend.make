# Empty dependencies file for bench_fig9_idk.
# This may be replaced when dependencies are built.
