# Empty compiler generated dependencies file for bench_fig3_cell_questions.
# This may be replaced when dependencies are built.
