# Empty compiler generated dependencies file for bench_fig4_fd_questions.
# This may be replaced when dependencies are built.
