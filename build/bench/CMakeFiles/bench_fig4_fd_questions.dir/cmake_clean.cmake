file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_fd_questions.dir/bench_fig4_fd_questions.cc.o"
  "CMakeFiles/bench_fig4_fd_questions.dir/bench_fig4_fd_questions.cc.o.d"
  "bench_fig4_fd_questions"
  "bench_fig4_fd_questions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_fd_questions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
