file(REMOVE_RECURSE
  "CMakeFiles/console_cleaning.dir/console_cleaning.cpp.o"
  "CMakeFiles/console_cleaning.dir/console_cleaning.cpp.o.d"
  "console_cleaning"
  "console_cleaning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/console_cleaning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
