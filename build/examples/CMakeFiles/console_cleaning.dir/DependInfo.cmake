
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/console_cleaning.cpp" "examples/CMakeFiles/console_cleaning.dir/console_cleaning.cpp.o" "gcc" "examples/CMakeFiles/console_cleaning.dir/console_cleaning.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/uguide_core.dir/DependInfo.cmake"
  "/root/repo/build/src/oracle/CMakeFiles/uguide_oracle.dir/DependInfo.cmake"
  "/root/repo/build/src/datagen/CMakeFiles/uguide_datagen.dir/DependInfo.cmake"
  "/root/repo/build/src/errorgen/CMakeFiles/uguide_errorgen.dir/DependInfo.cmake"
  "/root/repo/build/src/violations/CMakeFiles/uguide_violations.dir/DependInfo.cmake"
  "/root/repo/build/src/discovery/CMakeFiles/uguide_discovery.dir/DependInfo.cmake"
  "/root/repo/build/src/cfd/CMakeFiles/uguide_cfd.dir/DependInfo.cmake"
  "/root/repo/build/src/fd/CMakeFiles/uguide_fd.dir/DependInfo.cmake"
  "/root/repo/build/src/relation/CMakeFiles/uguide_relation.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/uguide_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
