# Empty compiler generated dependencies file for console_cleaning.
# This may be replaced when dependencies are built.
