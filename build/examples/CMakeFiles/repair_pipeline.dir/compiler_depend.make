# Empty compiler generated dependencies file for repair_pipeline.
# This may be replaced when dependencies are built.
