# Empty compiler generated dependencies file for fd_profiling.
# This may be replaced when dependencies are built.
