file(REMOVE_RECURSE
  "CMakeFiles/fd_profiling.dir/fd_profiling.cpp.o"
  "CMakeFiles/fd_profiling.dir/fd_profiling.cpp.o.d"
  "fd_profiling"
  "fd_profiling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fd_profiling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
