# Empty compiler generated dependencies file for cfd_extension.
# This may be replaced when dependencies are built.
