file(REMOVE_RECURSE
  "CMakeFiles/cfd_extension.dir/cfd_extension.cpp.o"
  "CMakeFiles/cfd_extension.dir/cfd_extension.cpp.o.d"
  "cfd_extension"
  "cfd_extension.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cfd_extension.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
