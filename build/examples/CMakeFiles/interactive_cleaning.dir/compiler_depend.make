# Empty compiler generated dependencies file for interactive_cleaning.
# This may be replaced when dependencies are built.
