# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart" "600")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_fd_profiling "/root/repo/build/examples/fd_profiling" "600")
set_tests_properties(example_fd_profiling PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_interactive_cleaning "/root/repo/build/examples/interactive_cleaning" "600")
set_tests_properties(example_interactive_cleaning PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_repair_pipeline "/root/repo/build/examples/repair_pipeline" "800")
set_tests_properties(example_repair_pipeline PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_cfd_extension "/root/repo/build/examples/cfd_extension")
set_tests_properties(example_cfd_extension PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;21;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_console_cleaning "/root/repo/build/examples/console_cleaning" "--yes" "--demo")
set_tests_properties(example_console_cleaning PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;22;add_test;/root/repo/examples/CMakeLists.txt;0;")
