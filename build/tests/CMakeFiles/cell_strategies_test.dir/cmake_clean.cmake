file(REMOVE_RECURSE
  "CMakeFiles/cell_strategies_test.dir/cell_strategies_test.cc.o"
  "CMakeFiles/cell_strategies_test.dir/cell_strategies_test.cc.o.d"
  "cell_strategies_test"
  "cell_strategies_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cell_strategies_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
