# Empty dependencies file for cell_strategies_test.
# This may be replaced when dependencies are built.
