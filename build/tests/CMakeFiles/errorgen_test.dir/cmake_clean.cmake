file(REMOVE_RECURSE
  "CMakeFiles/errorgen_test.dir/errorgen_test.cc.o"
  "CMakeFiles/errorgen_test.dir/errorgen_test.cc.o.d"
  "errorgen_test"
  "errorgen_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/errorgen_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
