# Empty dependencies file for errorgen_test.
# This may be replaced when dependencies are built.
