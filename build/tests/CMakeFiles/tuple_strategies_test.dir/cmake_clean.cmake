file(REMOVE_RECURSE
  "CMakeFiles/tuple_strategies_test.dir/tuple_strategies_test.cc.o"
  "CMakeFiles/tuple_strategies_test.dir/tuple_strategies_test.cc.o.d"
  "tuple_strategies_test"
  "tuple_strategies_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tuple_strategies_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
