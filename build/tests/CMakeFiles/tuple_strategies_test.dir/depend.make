# Empty dependencies file for tuple_strategies_test.
# This may be replaced when dependencies are built.
