file(REMOVE_RECURSE
  "CMakeFiles/fd_strategies_test.dir/fd_strategies_test.cc.o"
  "CMakeFiles/fd_strategies_test.dir/fd_strategies_test.cc.o.d"
  "fd_strategies_test"
  "fd_strategies_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fd_strategies_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
