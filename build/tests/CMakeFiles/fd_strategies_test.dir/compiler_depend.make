# Empty compiler generated dependencies file for fd_strategies_test.
# This may be replaced when dependencies are built.
