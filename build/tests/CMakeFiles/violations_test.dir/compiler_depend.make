# Empty compiler generated dependencies file for violations_test.
# This may be replaced when dependencies are built.
