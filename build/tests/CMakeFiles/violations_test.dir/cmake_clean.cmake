file(REMOVE_RECURSE
  "CMakeFiles/violations_test.dir/violations_test.cc.o"
  "CMakeFiles/violations_test.dir/violations_test.cc.o.d"
  "violations_test"
  "violations_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/violations_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
