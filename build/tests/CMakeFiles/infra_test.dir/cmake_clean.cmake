file(REMOVE_RECURSE
  "CMakeFiles/infra_test.dir/infra_test.cc.o"
  "CMakeFiles/infra_test.dir/infra_test.cc.o.d"
  "infra_test"
  "infra_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/infra_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
