file(REMOVE_RECURSE
  "CMakeFiles/uguide_cli.dir/uguide_cli.cc.o"
  "CMakeFiles/uguide_cli.dir/uguide_cli.cc.o.d"
  "uguide"
  "uguide.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uguide_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
