# Empty compiler generated dependencies file for uguide_cli.
# This may be replaced when dependencies are built.
