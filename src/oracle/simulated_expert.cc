#include "oracle/simulated_expert.h"

namespace uguide {

const char* AnswerName(Answer answer) {
  switch (answer) {
    case Answer::kYes:
      return "yes";
    case Answer::kNo:
      return "no";
    case Answer::kIdk:
      return "idk";
  }
  return "?";
}

SimulatedExpert::SimulatedExpert(const TrueViolationSet* violations,
                                 const GroundTruth* ledger,
                                 int num_attributes, FdSet true_fds,
                                 double idk_rate, uint64_t seed,
                                 double wrong_rate)
    : violations_(violations),
      ledger_(ledger),
      num_attributes_(num_attributes),
      closure_(std::move(true_fds)),
      idk_rate_(idk_rate),
      wrong_rate_(wrong_rate),
      rng_(seed) {
  UGUIDE_CHECK(violations != nullptr);
  UGUIDE_CHECK(ledger != nullptr);
  UGUIDE_CHECK(idk_rate >= 0.0 && idk_rate <= 1.0);
  UGUIDE_CHECK(wrong_rate >= 0.0 && wrong_rate <= 1.0);
}

bool SimulatedExpert::DeclineToAnswer() {
  if (idk_rate_ > 0.0 && rng_.NextBool(idk_rate_)) {
    ++idk_answers_;
    return true;
  }
  return false;
}

Answer SimulatedExpert::MaybeFlip(Answer truthful) {
  if (wrong_rate_ > 0.0 && rng_.NextBool(wrong_rate_)) {
    ++wrong_answers_;
    return truthful == Answer::kYes ? Answer::kNo : Answer::kYes;
  }
  return truthful;
}

Answer SimulatedExpert::IsCellErroneous(const Cell& cell) {
  ++cell_questions_;
  if (DeclineToAnswer()) return Answer::kIdk;
  return MaybeFlip(violations_->Contains(cell) ? Answer::kYes : Answer::kNo);
}

Answer SimulatedExpert::IsTupleClean(TupleId row) {
  ++tuple_questions_;
  if (DeclineToAnswer()) return Answer::kIdk;
  return MaybeFlip(ledger_->IsTupleDirty(row, num_attributes_)
                       ? Answer::kNo
                       : Answer::kYes);
}

Answer SimulatedExpert::IsFdValid(const Fd& fd) {
  ++fd_questions_;
  if (DeclineToAnswer()) return Answer::kIdk;
  return MaybeFlip(closure_.Implies(fd) ? Answer::kYes : Answer::kNo);
}

MajorityVoteExpert::MajorityVoteExpert(Expert* inner, int votes)
    : inner_(inner), votes_(votes) {
  UGUIDE_CHECK(inner != nullptr);
  UGUIDE_CHECK(votes >= 1);
}

template <typename AskFn>
Answer MajorityVoteExpert::Majority(AskFn ask) {
  int yes = 0, no = 0;
  for (int i = 0; i < votes_; ++i) {
    switch (ask()) {
      case Answer::kYes:
        ++yes;
        break;
      case Answer::kNo:
        ++no;
        break;
      case Answer::kIdk:
        break;
    }
  }
  if (yes == 0 && no == 0) return Answer::kIdk;
  return yes >= no ? Answer::kYes : Answer::kNo;
}

Answer MajorityVoteExpert::IsCellErroneous(const Cell& cell) {
  return Majority([&] { return inner_->IsCellErroneous(cell); });
}

Answer MajorityVoteExpert::IsTupleClean(TupleId row) {
  return Majority([&] { return inner_->IsTupleClean(row); });
}

Answer MajorityVoteExpert::IsFdValid(const Fd& fd) {
  return Majority([&] { return inner_->IsFdValid(fd); });
}

}  // namespace uguide
