#ifndef UGUIDE_ORACLE_SIMULATED_EXPERT_H_
#define UGUIDE_ORACLE_SIMULATED_EXPERT_H_

#include <cstdint>

#include "common/rng.h"
#include "errorgen/error_generator.h"
#include "fd/closure.h"
#include "fd/fd.h"
#include "oracle/expert.h"
#include "relation/relation.h"
#include "violations/violation_detector.h"

namespace uguide {

/// \brief A simulated domain expert, mirroring the paper's "Workflow
/// Simulation" (§7.1) exactly.
///
/// The expert holds the true FD set Sigma_TC (discovered on the clean
/// table), the set E_T of cells violating Sigma_TC on the dirty table, and
/// the error generator's ledger, and answers:
/// - cell questions: erroneous iff the cell violates some true FD (both
///   sides of a violating pair count -- §4's "answers in the affirmative if
///   the cell violates one or more FDs");
/// - tuple questions: clean iff every cell carries its original value
///   (§2.1's "has correct values in every cell");
/// - FD questions: valid iff Sigma_TC implies the FD (so specializations of
///   true minimal FDs are also affirmed; the expert is not assumed to apply
///   Armstrong inference beyond that).
///
/// With probability `idk_rate` (per question) the expert declines to answer
/// ("I don't know", §7.2.6); with probability `wrong_rate` an answered
/// question gets the *opposite* answer (the unreliable-expert model of the
/// paper's future-work §9). The expert counts questions by type for
/// reporting; budget accounting is the strategies' job.
class SimulatedExpert : public Expert {
 public:
  /// `violations` (E_T on the dirty table) and `ledger` (the injected-cell
  /// record) must outlive the expert. `num_attributes` is the dirty table's
  /// width (for tuple questions).
  SimulatedExpert(const TrueViolationSet* violations,
                  const GroundTruth* ledger, int num_attributes,
                  FdSet true_fds, double idk_rate = 0.0, uint64_t seed = 11,
                  double wrong_rate = 0.0);

  /// "Is this cell erroneous?" kYes = erroneous.
  Answer IsCellErroneous(const Cell& cell) override;

  /// "Is this tuple clean?" kYes = no cell was changed.
  Answer IsTupleClean(TupleId row) override;

  /// "Is this FD valid?" kYes = implied by the true FDs.
  Answer IsFdValid(const Fd& fd) override;

  /// The true FD set the expert validates against (used by oracle-mode
  /// baselines, which are allowed to peek, §7.1).
  const FdSet& true_fds() const { return closure_.fds(); }

  int cell_questions() const { return cell_questions_; }
  int tuple_questions() const { return tuple_questions_; }
  int fd_questions() const { return fd_questions_; }
  int idk_answers() const { return idk_answers_; }
  int wrong_answers() const { return wrong_answers_; }

 private:
  bool DeclineToAnswer();
  Answer MaybeFlip(Answer truthful);

  const TrueViolationSet* violations_;
  const GroundTruth* ledger_;
  int num_attributes_;
  ClosureEngine closure_;
  double idk_rate_;
  double wrong_rate_;
  Rng rng_;
  int cell_questions_ = 0;
  int tuple_questions_ = 0;
  int fd_questions_ = 0;
  int idk_answers_ = 0;
  int wrong_answers_ = 0;
};

/// \brief Robustness mitigation for unreliable experts (§9 future work):
/// asks the inner expert `votes` times per question and returns the
/// majority answer (IDK responses do not vote; all-IDK yields IDK).
///
/// Each wrapped question consumes `votes` inner questions, so callers
/// should scale their budget accordingly (see bench_robustness).
class MajorityVoteExpert : public Expert {
 public:
  /// `votes` should be odd; `inner` must outlive the wrapper.
  MajorityVoteExpert(Expert* inner, int votes);

  Answer IsCellErroneous(const Cell& cell) override;
  Answer IsTupleClean(TupleId row) override;
  Answer IsFdValid(const Fd& fd) override;

 private:
  template <typename AskFn>
  Answer Majority(AskFn ask);

  Expert* inner_;
  int votes_;
};

}  // namespace uguide

#endif  // UGUIDE_ORACLE_SIMULATED_EXPERT_H_
