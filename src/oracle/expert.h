#ifndef UGUIDE_ORACLE_EXPERT_H_
#define UGUIDE_ORACLE_EXPERT_H_

#include "fd/fd.h"
#include "relation/relation.h"

namespace uguide {

/// The three expert responses of §2.1: yes, no, or "I don't know".
enum class Answer { kYes, kNo, kIdk };

const char* AnswerName(Answer answer);

/// \brief The oracle every interactive strategy questions.
///
/// Implementations answer the paper's three question types. The library
/// ships SimulatedExpert (ground-truth driven, for experiments); downstream
/// users supply their own implementation to put a human in the loop (see
/// examples/console_cleaning.cpp).
class Expert {
 public:
  virtual ~Expert() = default;

  /// "Is this cell erroneous?" kYes = erroneous.
  virtual Answer IsCellErroneous(const Cell& cell) = 0;

  /// "Is this tuple clean?" kYes = no erroneous cell.
  virtual Answer IsTupleClean(TupleId row) = 0;

  /// "Is this FD valid?" kYes = a dependency that should hold.
  virtual Answer IsFdValid(const Fd& fd) = 0;
};

}  // namespace uguide

#endif  // UGUIDE_ORACLE_EXPERT_H_
