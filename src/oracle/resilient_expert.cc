#include "oracle/resilient_expert.h"

#include <algorithm>
#include <chrono>
#include <utility>

namespace uguide {

FlakyExpert::FlakyExpert(Expert* inner, std::string site)
    : inner_(inner), site_(std::move(site)) {}

Status FlakyExpert::Fire() {
  FaultRegistry& registry = FaultRegistry::Global();
  if (!registry.enabled()) return Status::OK();
  Status status = registry.OnPoint(site_);
  if (!status.ok()) ++faults_injected_;
  return status;
}

Result<Answer> FlakyExpert::TryIsCellErroneous(const Cell& cell) {
  UGUIDE_RETURN_NOT_OK(Fire());
  return inner_->IsCellErroneous(cell);
}

Result<Answer> FlakyExpert::TryIsTupleClean(TupleId row) {
  UGUIDE_RETURN_NOT_OK(Fire());
  return inner_->IsTupleClean(row);
}

Result<Answer> FlakyExpert::TryIsFdValid(const Fd& fd) {
  UGUIDE_RETURN_NOT_OK(Fire());
  return inner_->IsFdValid(fd);
}

RetryingExpert::RetryingExpert(TryExpert* inner, const RetryPolicy& policy,
                               const CostModel& cost, int num_attributes)
    : inner_(inner),
      policy_(policy),
      cost_(cost),
      num_attributes_(num_attributes),
      rng_(policy.seed) {}

template <typename AskFn>
Answer RetryingExpert::Ask(double question_cost, AskFn ask) {
  FaultRegistry& registry = FaultRegistry::Global();
  const auto start = registry.Now();
  const bool has_deadline = policy_.question_deadline_ms > 0.0;
  auto past_deadline = [&] {
    if (!has_deadline) return false;
    const double elapsed_ms =
        std::chrono::duration<double, std::milli>(registry.Now() - start)
            .count();
    return elapsed_ms > policy_.question_deadline_ms;
  };

  last_retry_cost_ = 0.0;
  last_exhausted_ = false;
  double backoff_ms = policy_.initial_backoff_ms;
  for (int attempt = 1;; ++attempt) {
    Result<Answer> reply = ask();
    if (reply.ok()) {
      if (!past_deadline()) return *reply;
      // The answer exists but arrived too late (injected latency):
      // indistinguishable from no answer under the deadline contract.
      ++timeouts_;
    }
    if (attempt >= policy_.max_attempts || past_deadline()) break;
    // Back off before re-asking. The wait is modelled on the virtual
    // clock — deterministic, and still visible to the deadline check.
    const double jittered =
        backoff_ms * (1.0 + policy_.jitter * (2.0 * rng_.NextDouble() - 1.0));
    registry.AdvanceClockMs(std::min(jittered, policy_.max_backoff_ms));
    backoff_ms *= policy_.backoff_multiplier;
    ++retries_;
    retry_cost_ += question_cost * policy_.retry_cost_factor;
    last_retry_cost_ += question_cost * policy_.retry_cost_factor;
  }
  ++exhausted_;
  last_exhausted_ = true;
  return Answer::kIdk;
}

Answer RetryingExpert::IsCellErroneous(const Cell& cell) {
  return Ask(cost_.CellCost(),
             [&] { return inner_->TryIsCellErroneous(cell); });
}

Answer RetryingExpert::IsTupleClean(TupleId row) {
  return Ask(cost_.TupleCost(num_attributes_),
             [&] { return inner_->TryIsTupleClean(row); });
}

Answer RetryingExpert::IsFdValid(const Fd& fd) {
  return Ask(cost_.FdCost(fd, 0), [&] { return inner_->TryIsFdValid(fd); });
}

}  // namespace uguide
