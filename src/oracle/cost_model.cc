#include "oracle/cost_model.h"

#include <algorithm>
#include <cmath>

namespace uguide {

double CostModel::FdCost(const Fd& fd, int k_extra) const {
  UGUIDE_CHECK(k_extra >= 0);
  const int lhs_size = std::max(1, fd.lhs.Size());
  return std::pow(alpha, k_extra) * static_cast<double>(lhs_size) * cell_cost;
}

int CostModel::ExtraAttributes(const Fd& fd, const FdSet& reference) {
  int best = -1;
  for (const Fd& ref : reference) {
    if (ref.rhs != fd.rhs) continue;
    if (!ref.lhs.IsSubsetOf(fd.lhs)) continue;
    const int gap = fd.lhs.Size() - ref.lhs.Size();
    if (best < 0 || gap < best) best = gap;
  }
  return best < 0 ? 0 : best;
}

}  // namespace uguide
