#ifndef UGUIDE_ORACLE_COST_MODEL_H_
#define UGUIDE_ORACLE_COST_MODEL_H_

#include "fd/fd.h"

namespace uguide {

/// \brief The paper's question cost model (§7.1), pluggable per experiment.
///
/// - validating one cell costs `cell_cost` (default 1);
/// - validating one tuple costs m (the attribute count) times `cell_cost`;
/// - validating an FD costs alpha^k * |LHS|, where k is how many LHS
///   attributes the asked FD carries beyond the corresponding minimal FD
///   (k = 0 for a minimal FD), penalizing verbose non-minimal questions.
///
/// All costs are deterministic and strictly positive, as the paper's
/// black-box contract requires.
struct CostModel {
  double cell_cost = 1.0;
  double alpha = 2.0;

  /// Cost of a cell-based question.
  double CellCost() const { return cell_cost; }

  /// Cost of a tuple-based question on a relation with `num_attributes`
  /// columns.
  double TupleCost(int num_attributes) const {
    return cell_cost * static_cast<double>(num_attributes);
  }

  /// Cost of asking `fd` with `k_extra` attributes above its minimal form.
  /// An empty-LHS FD (constant column) is charged like a single-attribute
  /// LHS so the cost stays positive.
  double FdCost(const Fd& fd, int k_extra) const;

  /// Computes k for `fd` against a reference FD set: the LHS-size gap to
  /// the smallest same-RHS FD in `reference` whose LHS is a subset of
  /// fd.lhs (i.e., the minimal FD this one specializes). Returns 0 when no
  /// such reference exists (the FD is treated as minimal).
  static int ExtraAttributes(const Fd& fd, const FdSet& reference);
};

}  // namespace uguide

#endif  // UGUIDE_ORACLE_COST_MODEL_H_
