#ifndef UGUIDE_ORACLE_RESILIENT_EXPERT_H_
#define UGUIDE_ORACLE_RESILIENT_EXPERT_H_

#include <cstdint>
#include <string>

#include "common/fault_injection.h"
#include "common/result.h"
#include "common/rng.h"
#include "oracle/cost_model.h"
#include "oracle/expert.h"

namespace uguide {

/// \brief An expert whose answers can fail transiently.
///
/// The plain Expert interface has no failure channel — fine for the
/// simulated oracle, wrong for a real deployment where the expert is a
/// human on a flaky connection or a remote labeling service. TryExpert
/// makes the failure explicit: a question either yields an Answer or a
/// transient error (typically Status::Unavailable) that a retry layer can
/// absorb.
class TryExpert {
 public:
  virtual ~TryExpert() = default;

  virtual Result<Answer> TryIsCellErroneous(const Cell& cell) = 0;
  virtual Result<Answer> TryIsTupleClean(TupleId row) = 0;
  virtual Result<Answer> TryIsFdValid(const Fd& fd) = 0;
};

/// \brief Decorator that makes a reliable Expert flaky on demand.
///
/// Every question first fires the fault site `site` (default
/// "oracle.answer") on the global FaultRegistry: an injected
/// `unavailable` becomes a transient failure, `latency` models a slow
/// answer on the registry's virtual clock (so per-question deadlines can
/// expire), and `crash` kills the process mid-session. With no fault plan
/// loaded the decorator is a pass-through costing one relaxed atomic load
/// per question.
class FlakyExpert : public TryExpert {
 public:
  explicit FlakyExpert(Expert* inner, std::string site = "oracle.answer");

  Result<Answer> TryIsCellErroneous(const Cell& cell) override;
  Result<Answer> TryIsTupleClean(TupleId row) override;
  Result<Answer> TryIsFdValid(const Fd& fd) override;

  /// Transient failures injected so far.
  int faults_injected() const { return faults_injected_; }

 private:
  /// Fires the fault site; returns the injected failure, if any.
  Status Fire();

  Expert* inner_;
  std::string site_;
  int faults_injected_ = 0;
};

/// Retry/backoff/deadline knobs for RetryingExpert.
struct RetryPolicy {
  /// Total asks per question, the first attempt included.
  int max_attempts = 4;

  /// Exponential backoff between attempts: the n-th retry waits
  /// initial_backoff_ms * backoff_multiplier^(n-1), jittered by
  /// +/- jitter (a fraction), capped at max_backoff_ms. Waits advance the
  /// FaultRegistry's virtual clock instead of sleeping, so tests run at
  /// full speed while deadlines still observe the modelled time.
  double initial_backoff_ms = 10.0;
  double backoff_multiplier = 2.0;
  double max_backoff_ms = 250.0;
  double jitter = 0.5;

  /// Per-question deadline on the fault-aware clock; 0 = none. An answer
  /// arriving after the deadline (e.g. under injected latency) counts as a
  /// timeout, and no further attempts are made once it has passed.
  double question_deadline_ms = 0.0;

  /// Each retry is charged this fraction of the question's nominal cost —
  /// re-asking a human costs real effort, so robustness has an honest
  /// price on the session budget.
  double retry_cost_factor = 0.25;

  /// Seed of the jitter stream (deterministic retries).
  uint64_t seed = 17;
};

/// \brief Decorator that turns a flaky TryExpert back into a total Expert.
///
/// Failed attempts are retried with capped exponential backoff and jitter
/// under an optional per-question deadline. When attempts or the deadline
/// run out the question degrades to Answer::kIdk — the strategies already
/// handle "I don't know" (§7.2.6), so a flaky expert degrades the session
/// instead of failing it. Retries accumulate `retry_cost()` through the
/// CostModel; Session::Run adds it to the reported cost.
class RetryingExpert : public Expert {
 public:
  /// `inner` must outlive the wrapper. `num_attributes` prices tuple
  /// questions; FD retries are charged at the minimal-form cost.
  RetryingExpert(TryExpert* inner, const RetryPolicy& policy,
                 const CostModel& cost, int num_attributes);

  Answer IsCellErroneous(const Cell& cell) override;
  Answer IsTupleClean(TupleId row) override;
  Answer IsFdValid(const Fd& fd) override;

  /// Budget surcharge accumulated by retries.
  double retry_cost() const { return retry_cost_; }
  /// Re-asks beyond each question's first attempt.
  int retries() const { return retries_; }
  /// Questions degraded to kIdk after exhausting attempts or deadline.
  int exhausted() const { return exhausted_; }
  /// Answers discarded because they arrived past the deadline.
  int timeouts() const { return timeouts_; }

  /// Surcharge of the most recent question alone — the per-question delta
  /// a step-API driver forwards on its AnswerSubmission (computed directly
  /// rather than by subtracting running totals, so no floating-point drift).
  double last_retry_cost() const { return last_retry_cost_; }
  /// True iff the most recent question degraded to kIdk.
  bool last_exhausted() const { return last_exhausted_; }

 private:
  template <typename AskFn>
  Answer Ask(double question_cost, AskFn ask);

  TryExpert* inner_;
  RetryPolicy policy_;
  CostModel cost_;
  int num_attributes_;
  Rng rng_;
  double retry_cost_ = 0.0;
  int retries_ = 0;
  int exhausted_ = 0;
  int timeouts_ = 0;
  double last_retry_cost_ = 0.0;
  bool last_exhausted_ = false;
};

}  // namespace uguide

#endif  // UGUIDE_ORACLE_RESILIENT_EXPERT_H_
