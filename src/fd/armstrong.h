#ifndef UGUIDE_FD_ARMSTRONG_H_
#define UGUIDE_FD_ARMSTRONG_H_

#include "fd/fd.h"
#include "relation/relation.h"

namespace uguide {

/// \brief Builds an Armstrong relation for `fds` over `schema` (§6).
///
/// The returned relation satisfies exactly the FDs implied by `fds` via the
/// Armstrong axioms and no others. Construction follows the classical
/// closed-set recipe (cf. Bisbal & Grimson): one base tuple, plus one tuple
/// per saturated set W (except the full set) that agrees with the base tuple
/// exactly on W. Pairwise agree-sets are then precisely the closed sets, so
/// X -> A holds iff A is in the closure of X.
///
/// The number of tuples is 1 + #saturated-sets, which can be exponential in
/// the number of attributes for adversarial FD sets; the paper's schemas
/// stay small.
Relation BuildArmstrongRelation(const Schema& schema, const FdSet& fds);

/// \brief True iff `fd` is satisfied by every tuple pair of `relation`.
///
/// Hash-based, O(n) per call; suitable for the small relations handled by
/// Armstrong machinery. Bulk discovery uses partitions (src/discovery).
bool FdHoldsOn(const Relation& relation, const Fd& fd);

/// \brief Checks whether `relation` is an Armstrong relation for `fds`:
/// every implied FD holds and every non-implied normalized FD is violated.
/// Exponential in the attribute count; intended for tests and small schemas.
bool IsArmstrongRelation(const Relation& relation, const FdSet& fds);

}  // namespace uguide

#endif  // UGUIDE_FD_ARMSTRONG_H_
