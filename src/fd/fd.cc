#include "fd/fd.h"

#include <sstream>

namespace uguide {

namespace {

std::string Trim(const std::string& text) {
  size_t begin = text.find_first_not_of(" \t\r");
  if (begin == std::string::npos) return "";
  size_t end = text.find_last_not_of(" \t\r");
  return text.substr(begin, end - begin + 1);
}

}  // namespace

std::string Fd::ToString() const {
  return lhs.ToString() + "->" + std::to_string(rhs);
}

std::string Fd::ToString(const Schema& schema) const {
  return lhs.ToString(schema.Names()) + "->" + schema.Name(rhs);
}

Result<Fd> Fd::Parse(const std::string& text, const Schema& schema) {
  const size_t arrow = text.find("->");
  if (arrow == std::string::npos) {
    return Status::InvalidArgument("FD must contain '->': " + text);
  }
  Fd fd;
  const std::string rhs_name = Trim(text.substr(arrow + 2));
  UGUIDE_ASSIGN_OR_RETURN(fd.rhs, schema.IndexOf(rhs_name));

  std::string lhs_part = Trim(text.substr(0, arrow));
  if (!lhs_part.empty()) {
    std::istringstream stream(lhs_part);
    std::string token;
    while (std::getline(stream, token, ',')) {
      token = Trim(token);
      if (token.empty()) {
        return Status::InvalidArgument("empty LHS attribute in: " + text);
      }
      UGUIDE_ASSIGN_OR_RETURN(int index, schema.IndexOf(token));
      fd.lhs.Add(index);
    }
  }
  if (!fd.IsValidShape()) {
    return Status::InvalidArgument("trivial FD (RHS inside LHS): " + text);
  }
  return fd;
}

Result<FdSet> FdSet::Parse(const std::string& text, const Schema& schema) {
  FdSet out;
  std::istringstream stream(text);
  std::string line;
  while (std::getline(stream, line)) {
    line = Trim(line);
    if (line.empty() || line[0] == '#') continue;
    UGUIDE_ASSIGN_OR_RETURN(Fd fd, Fd::Parse(line, schema));
    out.Add(fd);
  }
  return out;
}

bool FdSet::Add(const Fd& fd) {
  UGUIDE_CHECK(fd.IsValidShape()) << "trivial FD " << fd.ToString();
  if (index_.contains(fd)) return false;
  index_.emplace(fd, fds_.size());
  fds_.push_back(fd);
  return true;
}

bool FdSet::Remove(const Fd& fd) {
  auto it = index_.find(fd);
  if (it == index_.end()) return false;
  fds_.erase(fds_.begin() + static_cast<ptrdiff_t>(it->second));
  index_.clear();
  for (size_t i = 0; i < fds_.size(); ++i) index_.emplace(fds_[i], i);
  return true;
}

bool FdSet::Contains(const Fd& fd) const { return index_.contains(fd); }

bool FdSet::IsMinimalIn(const Fd& fd) const {
  for (const Fd& other : fds_) {
    if (other.rhs == fd.rhs && other.lhs.IsStrictSubsetOf(fd.lhs)) {
      return false;
    }
  }
  return true;
}

std::string FdSet::ToString(const Schema& schema) const {
  std::string out;
  for (const Fd& fd : fds_) {
    out += fd.ToString(schema);
    out += "\n";
  }
  return out;
}

}  // namespace uguide
