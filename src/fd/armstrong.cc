#include "fd/armstrong.h"

#include <unordered_map>

#include "fd/closure.h"

namespace uguide {

Relation BuildArmstrongRelation(const Schema& schema, const FdSet& fds) {
  const int m = schema.NumAttributes();
  const AttributeSet full = AttributeSet::Full(m);
  std::vector<AttributeSet> closed = SaturatedSets(fds, m);

  Relation rel((schema));
  std::vector<std::string> row(static_cast<size_t>(m));

  auto base_value = [](int c) {
    std::string v = "a";
    v += std::to_string(c);
    return v;
  };

  // Base tuple: value "a<c>" in every column.
  for (int c = 0; c < m; ++c) {
    row[static_cast<size_t>(c)] = base_value(c);
  }
  rel.AddRow(row);

  // One witness tuple per proper closed set W: agrees with the base tuple
  // exactly on W and holds a tuple-unique value elsewhere.
  int k = 0;
  for (const AttributeSet& w : closed) {
    if (w == full) continue;
    for (int c = 0; c < m; ++c) {
      if (w.Contains(c)) {
        row[static_cast<size_t>(c)] = base_value(c);
      } else {
        std::string v = "b";
        v += std::to_string(k);
        v += "_";
        v += std::to_string(c);
        row[static_cast<size_t>(c)] = std::move(v);
      }
    }
    rel.AddRow(row);
    ++k;
  }
  return rel;
}

bool FdHoldsOn(const Relation& relation, const Fd& fd) {
  // Group rows by their LHS projection; within a group all RHS codes must
  // match. The LHS projection is hashed as the sequence of codes.
  struct VecHash {
    size_t operator()(const std::vector<ValueCode>& v) const {
      size_t seed = v.size();
      for (ValueCode c : v) HashCombine(seed, c);
      return seed;
    }
  };
  std::unordered_map<std::vector<ValueCode>, ValueCode, VecHash> seen;
  const std::vector<int> lhs_cols = fd.lhs.ToVector();
  std::vector<ValueCode> key(lhs_cols.size());
  for (TupleId r = 0; r < relation.NumRows(); ++r) {
    for (size_t i = 0; i < lhs_cols.size(); ++i) {
      key[i] = relation.Code(r, lhs_cols[i]);
    }
    ValueCode rhs_code = relation.Code(r, fd.rhs);
    auto [it, inserted] = seen.emplace(key, rhs_code);
    if (!inserted && it->second != rhs_code) return false;
  }
  return true;
}

bool IsArmstrongRelation(const Relation& relation, const FdSet& fds) {
  const int m = relation.NumAttributes();
  UGUIDE_CHECK(m <= 20) << "IsArmstrongRelation is exponential; m too large";
  ClosureEngine engine(fds);
  const uint64_t limit = uint64_t{1} << m;
  for (uint64_t mask = 0; mask < limit; ++mask) {
    AttributeSet lhs(mask);
    for (int a = 0; a < m; ++a) {
      if (lhs.Contains(a)) continue;
      Fd fd(lhs, a);
      if (engine.Implies(fd) != FdHoldsOn(relation, fd)) return false;
    }
  }
  return true;
}

}  // namespace uguide
