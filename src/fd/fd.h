#ifndef UGUIDE_FD_FD_H_
#define UGUIDE_FD_FD_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "common/attribute_set.h"
#include "common/hash.h"
#include "common/result.h"
#include "relation/schema.h"

namespace uguide {

/// \brief A normalized functional dependency X -> A.
///
/// Following the paper (§2.1), FDs are non-trivial (A not in X) and
/// normalized (single RHS attribute).
struct Fd {
  AttributeSet lhs;
  int rhs = 0;

  Fd() = default;
  Fd(AttributeSet lhs_in, int rhs_in) : lhs(lhs_in), rhs(rhs_in) {}

  /// Non-trivial: the RHS attribute does not appear on the LHS.
  bool IsValidShape() const { return !lhs.Contains(rhs); }

  bool operator==(const Fd& other) const {
    return lhs == other.lhs && rhs == other.rhs;
  }
  bool operator!=(const Fd& other) const { return !(*this == other); }
  /// Deterministic ordering (rhs, then lhs mask).
  bool operator<(const Fd& other) const {
    if (rhs != other.rhs) return rhs < other.rhs;
    return lhs < other.lhs;
  }

  /// Renders as "{0,1}->2".
  std::string ToString() const;

  /// Renders with attribute names, e.g. "zip->city".
  std::string ToString(const Schema& schema) const;

  /// Parses "lhs1,lhs2->rhs" against a schema (whitespace tolerated; an
  /// empty LHS like "->city" denotes a constant-column FD). Inverse of
  /// ToString(schema).
  static Result<Fd> Parse(const std::string& text, const Schema& schema);
};

/// Hash functor so Fd can key unordered containers.
struct FdHash {
  size_t operator()(const Fd& fd) const {
    size_t seed = AttributeSetHash{}(fd.lhs);
    HashCombine(seed, fd.rhs);
    return seed;
  }
};

/// \brief An ordered, duplicate-free collection of FDs.
///
/// Keeps insertion order (algorithms iterate deterministically) while
/// offering O(1) membership tests.
class FdSet {
 public:
  FdSet() = default;

  /// Builds a set from a list (duplicates dropped).
  explicit FdSet(const std::vector<Fd>& fds) {
    for (const Fd& fd : fds) Add(fd);
  }

  /// Adds `fd` if absent; returns true when inserted.
  bool Add(const Fd& fd);

  /// Removes `fd` if present; returns true when removed. O(n).
  bool Remove(const Fd& fd);

  bool Contains(const Fd& fd) const;

  size_t Size() const { return fds_.size(); }
  bool Empty() const { return fds_.empty(); }

  const std::vector<Fd>& fds() const { return fds_; }

  const Fd& operator[](size_t i) const { return fds_[i]; }

  auto begin() const { return fds_.begin(); }
  auto end() const { return fds_.end(); }

  /// True iff `fd` is minimal within this set: no FD here with the same RHS
  /// and a strictly smaller LHS. (Syntactic minimality; for semantic
  /// minimality under implication see closure.h.)
  bool IsMinimalIn(const Fd& fd) const;

  /// Renders one FD per line.
  std::string ToString(const Schema& schema) const;

  /// Parses one FD per line (blank lines and '#' comments skipped).
  /// Inverse of ToString(schema).
  static Result<FdSet> Parse(const std::string& text, const Schema& schema);

 private:
  std::vector<Fd> fds_;
  std::unordered_map<Fd, size_t, FdHash> index_;
};

}  // namespace uguide

#endif  // UGUIDE_FD_FD_H_
