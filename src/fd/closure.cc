#include "fd/closure.h"

namespace uguide {

AttributeSet ClosureEngine::Closure(const AttributeSet& x) const {
  AttributeSet closure = x;
  bool changed = true;
  while (changed) {
    changed = false;
    for (const Fd& fd : fds_) {
      if (!closure.Contains(fd.rhs) && fd.lhs.IsSubsetOf(closure)) {
        closure.Add(fd.rhs);
        changed = true;
      }
    }
  }
  return closure;
}

bool ClosureEngine::Implies(const Fd& fd) const {
  return Closure(fd.lhs).Contains(fd.rhs);
}

bool ClosureEngine::IsMinimal(const Fd& fd) const {
  if (!Implies(fd)) return false;
  for (int a : fd.lhs) {
    if (Implies(Fd(fd.lhs.Without(a), fd.rhs))) return false;
  }
  return true;
}

Fd ClosureEngine::Minimize(const Fd& fd) const {
  UGUIDE_CHECK(Implies(fd)) << "Minimize on non-implied FD " << fd.ToString();
  Fd reduced = fd;
  bool changed = true;
  while (changed) {
    changed = false;
    for (int a : reduced.lhs) {
      Fd candidate(reduced.lhs.Without(a), reduced.rhs);
      if (Implies(candidate)) {
        reduced = candidate;
        changed = true;
        break;
      }
    }
  }
  return reduced;
}

FdSet ClosureEngine::MinimalCover() const {
  // Left-reduce every FD, deduplicating as we go.
  FdSet reduced;
  for (const Fd& fd : fds_) {
    reduced.Add(Minimize(fd));
  }
  // Drop redundant FDs: fd is redundant if the remaining FDs still imply it.
  std::vector<Fd> kept = reduced.fds();
  for (size_t i = 0; i < kept.size();) {
    FdSet without;
    for (size_t j = 0; j < kept.size(); ++j) {
      if (j != i) without.Add(kept[j]);
    }
    if (ClosureEngine(without).Implies(kept[i])) {
      kept.erase(kept.begin() + static_cast<ptrdiff_t>(i));
    } else {
      ++i;
    }
  }
  return FdSet(kept);
}

bool ClosureEngine::EquivalentTo(const ClosureEngine& other) const {
  for (const Fd& fd : fds_) {
    if (!other.Implies(fd)) return false;
  }
  for (const Fd& fd : other.fds_) {
    if (!Implies(fd)) return false;
  }
  return true;
}

std::vector<AttributeSet> SaturatedSets(const FdSet& fds,
                                        int num_attributes,
                                        size_t max_sets) {
  UGUIDE_CHECK(num_attributes >= 0 &&
               num_attributes <= AttributeSet::kMaxAttributes);
  ClosureEngine engine(fds);
  std::vector<AttributeSet> closed;
  if (num_attributes == 0) {
    closed.push_back(AttributeSet());
    return closed;
  }
  const AttributeSet full = AttributeSet::Full(num_attributes);

  // Ganter's NextClosure in lectic order. The first closed set is
  // closure(empty); iteration stops once the full set is produced.
  AttributeSet current = engine.Closure(AttributeSet());
  closed.push_back(current);
  while (current != full && closed.size() < max_sets) {
    bool advanced = false;
    for (int i = num_attributes - 1; i >= 0; --i) {
      if (current.Contains(i)) continue;
      // candidate = closure((current restricted below i) + {i})
      const AttributeSet below_i(
          i == 0 ? uint64_t{0} : (uint64_t{1} << i) - 1);
      AttributeSet candidate =
          engine.Closure(current.Intersect(below_i).With(i));
      // Lectic successor test: candidate must add no attribute below i.
      if (candidate.Minus(current).Intersect(below_i).Empty()) {
        current = candidate;
        closed.push_back(current);
        advanced = true;
        break;
      }
    }
    UGUIDE_CHECK(advanced) << "NextClosure failed to advance";
  }
  return closed;
}

}  // namespace uguide
