#ifndef UGUIDE_FD_CLOSURE_H_
#define UGUIDE_FD_CLOSURE_H_

#include <cstdint>
#include <vector>

#include "common/attribute_set.h"
#include "fd/fd.h"

namespace uguide {

/// \brief Attribute-closure machinery over a fixed FD set (Armstrong
/// axioms, §2.1).
///
/// Wraps an FdSet and answers closure / implication / minimal-cover queries.
/// The FD set is copied at construction; the engine is immutable afterwards.
class ClosureEngine {
 public:
  explicit ClosureEngine(FdSet fds) : fds_(std::move(fds)) {}

  const FdSet& fds() const { return fds_; }

  /// The closure X+ : all attributes determined by X under the FD set.
  AttributeSet Closure(const AttributeSet& x) const;

  /// True iff the FD set logically implies `fd` (fd.rhs in Closure(fd.lhs)).
  bool Implies(const Fd& fd) const;

  /// True iff `fd` holds with a semantically minimal LHS: removing any LHS
  /// attribute breaks implication. (`fd` itself must be implied.)
  bool IsMinimal(const Fd& fd) const;

  /// Reduces `fd`'s LHS to a minimal determining subset (left-reduction).
  /// `fd` must be implied by the FD set.
  Fd Minimize(const Fd& fd) const;

  /// A minimal cover: left-reduced, non-redundant FDs equivalent to the
  /// original set.
  FdSet MinimalCover() const;

  /// True iff both engines' FD sets imply each other.
  bool EquivalentTo(const ClosureEngine& other) const;

 private:
  FdSet fds_;
};

/// \brief Enumerates all saturated (closed) attribute sets: X with X+ = X.
///
/// Uses Ganter's NextClosure algorithm, so the cost is
/// O(#closed-sets * m * |FDs|) rather than 2^m. The full attribute set is
/// always closed and is included. Results come back in lectic order.
///
/// `num_attributes` bounds the universe (attributes 0..m-1). At most
/// `max_sets` sets are returned (the closed-set family can be exponential);
/// enumeration simply stops at the cap.
std::vector<AttributeSet> SaturatedSets(const FdSet& fds, int num_attributes,
                                        size_t max_sets = SIZE_MAX);

}  // namespace uguide

#endif  // UGUIDE_FD_CLOSURE_H_
