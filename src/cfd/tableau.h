#ifndef UGUIDE_CFD_TABLEAU_H_
#define UGUIDE_CFD_TABLEAU_H_

#include <vector>

#include "cfd/cfd.h"
#include "cfd/cfd_discovery.h"

namespace uguide {

/// \brief A CFD with a multi-row pattern tableau (Fan et al., TODS'08).
///
/// A full conditional dependency is an embedded FD plus a *tableau* of
/// pattern tuples; the dependency constrains every tuple matched by any
/// pattern. Cfd (cfd.h) is the single-pattern special case; a tableau
/// groups several of them over one embedded FD, which is how CFDs are
/// written in the literature:
///
///     (country, zip -> city,  T = { (DE, _ || _), (AT, _ || _) })
class CfdTableau {
 public:
  /// Builds a tableau; every pattern must share `embedded` as its FD and
  /// at least one pattern is required.
  static Result<CfdTableau> Make(Fd embedded, std::vector<Cfd> patterns);

  const Fd& embedded() const { return embedded_; }
  size_t NumPatterns() const { return patterns_.size(); }
  const Cfd& pattern(size_t i) const { return patterns_[i]; }
  const std::vector<Cfd>& patterns() const { return patterns_; }

  /// True iff `row` matches at least one pattern.
  bool Matches(const Relation& relation, TupleId row) const;

  /// Renders as "country,zip -> city | {DE,_ ; AT,_}".
  std::string ToString(const Schema& schema) const;

 private:
  CfdTableau(Fd embedded, std::vector<Cfd> patterns)
      : embedded_(embedded), patterns_(std::move(patterns)) {}

  Fd embedded_;
  std::vector<Cfd> patterns_;
};

/// Cells violating any pattern of the tableau (deduplicated, row-major).
std::vector<Cell> ViolatingCells(const Relation& relation,
                                 const CfdTableau& tableau);

/// True iff every pattern of the tableau holds.
bool TableauHoldsOn(const Relation& relation, const CfdTableau& tableau);

/// \brief Mines a tableau for one broken FD: the single-attribute
/// conditions under which it holds exactly (DiscoverVariableCfds grouped
/// into one dependency). Returns NotFound when no condition with the
/// required support exists.
Result<CfdTableau> MineTableau(const Relation& relation, const Fd& fd,
                               const CfdDiscoveryOptions& options = {});

}  // namespace uguide

#endif  // UGUIDE_CFD_TABLEAU_H_
