#ifndef UGUIDE_CFD_CFD_DISCOVERY_H_
#define UGUIDE_CFD_CFD_DISCOVERY_H_

#include <vector>

#include "cfd/cfd.h"
#include "fd/fd.h"
#include "relation/relation.h"

namespace uguide {

/// Options for the CFD miners.
struct CfdDiscoveryOptions {
  /// Minimum number of pattern-matching tuples for a CFD to be reported
  /// (low-support patterns are statistically meaningless).
  int min_support = 8;

  /// Cap on the number of reported CFDs.
  size_t max_results = 200;
};

/// \brief Mines variable CFDs that repair broken FDs (§9 extension).
///
/// For every FD X -> A in `broken_fds` (typically approximate FDs that do
/// not hold exactly), finds single-attribute conditions B = v (B in X)
/// under which X -> A holds exactly with enough support. Conditions whose
/// embedded FD already holds globally are skipped -- a CFD is only
/// interesting where the plain FD fails.
std::vector<Cfd> DiscoverVariableCfds(const Relation& relation,
                                      const FdSet& broken_fds,
                                      const CfdDiscoveryOptions& options = {});

/// \brief Mines constant CFDs of the form B=v -> A=a: association-style
/// rules where a single attribute value fixes another attribute's value.
/// Only pairs whose plain FD B -> A fails globally are considered.
std::vector<Cfd> DiscoverConstantCfds(const Relation& relation,
                                      const CfdDiscoveryOptions& options = {});

}  // namespace uguide

#endif  // UGUIDE_CFD_CFD_DISCOVERY_H_
