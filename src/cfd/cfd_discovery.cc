#include "cfd/cfd_discovery.h"

#include <algorithm>
#include <unordered_map>

#include "common/hash.h"
#include "fd/armstrong.h"

namespace uguide {

namespace {

struct VecHash {
  size_t operator()(const std::vector<ValueCode>& v) const {
    size_t seed = v.size();
    for (ValueCode c : v) HashCombine(seed, c);
    return seed;
  }
};

// Per-X-group summary: size and whether all members share one RHS value.
struct GroupInfo {
  std::vector<ValueCode> key;
  size_t size = 0;
  bool pure = true;
};

std::vector<GroupInfo> SummarizeGroups(const Relation& relation,
                                       const Fd& fd) {
  std::unordered_map<std::vector<ValueCode>, std::pair<ValueCode, GroupInfo>,
                     VecHash>
      groups;
  const std::vector<int> cols = fd.lhs.ToVector();
  std::vector<ValueCode> key(cols.size());
  for (TupleId r = 0; r < relation.NumRows(); ++r) {
    for (size_t i = 0; i < cols.size(); ++i) {
      key[i] = relation.Code(r, cols[i]);
    }
    auto [it, inserted] = groups.try_emplace(key);
    auto& [rhs_code, info] = it->second;
    const ValueCode code = relation.Code(r, fd.rhs);
    if (inserted) {
      rhs_code = code;
      info.key = key;
    } else if (code != rhs_code) {
      info.pure = false;
    }
    ++info.size;
  }
  std::vector<GroupInfo> out;
  out.reserve(groups.size());
  for (auto& [k, entry] : groups) out.push_back(std::move(entry.second));
  return out;
}

}  // namespace

std::vector<Cfd> DiscoverVariableCfds(const Relation& relation,
                                      const FdSet& broken_fds,
                                      const CfdDiscoveryOptions& options) {
  std::vector<Cfd> results;
  for (const Fd& fd : broken_fds) {
    if (fd.lhs.Empty()) continue;
    if (FdHoldsOn(relation, fd)) continue;  // plain FD suffices
    const std::vector<GroupInfo> groups = SummarizeGroups(relation, fd);
    const size_t lhs_size = static_cast<size_t>(fd.lhs.Size());

    // For each LHS position j, aggregate group purity per value of that
    // position: the condition "attr_j = v" yields an exact CFD iff every
    // group carrying v there is pure.
    for (size_t j = 0; j < lhs_size; ++j) {
      std::unordered_map<ValueCode, std::pair<size_t, bool>> by_value;
      for (const GroupInfo& g : groups) {
        auto& [support, all_pure] = by_value.try_emplace(
            g.key[j], std::make_pair(size_t{0}, true)).first->second;
        support += g.size;
        all_pure = all_pure && g.pure;
      }
      for (const auto& [value, agg] : by_value) {
        const auto& [support, all_pure] = agg;
        if (!all_pure ||
            support < static_cast<size_t>(options.min_support)) {
          continue;
        }
        std::vector<std::string> pattern(lhs_size, Cfd::kWildcard);
        pattern[j] = relation.pool().Lookup(value);
        auto cfd = Cfd::Make(fd, std::move(pattern), Cfd::kWildcard);
        if (cfd.ok()) results.push_back(std::move(cfd).ValueOrDie());
        if (results.size() >= options.max_results) return results;
      }
    }
  }
  return results;
}

std::vector<Cfd> DiscoverConstantCfds(const Relation& relation,
                                      const CfdDiscoveryOptions& options) {
  std::vector<Cfd> results;
  const int m = relation.NumAttributes();
  for (int b = 0; b < m && results.size() < options.max_results; ++b) {
    for (int a = 0; a < m; ++a) {
      if (a == b) continue;
      const Fd fd(AttributeSet::Single(b), a);
      if (FdHoldsOn(relation, fd)) continue;  // plain FD suffices
      // For each value v of B: pure + supported groups become B=v -> A=a.
      std::unordered_map<ValueCode, std::pair<ValueCode, size_t>> by_value;
      std::unordered_map<ValueCode, bool> pure;
      for (TupleId r = 0; r < relation.NumRows(); ++r) {
        const ValueCode v = relation.Code(r, b);
        const ValueCode rhs = relation.Code(r, a);
        auto [it, inserted] =
            by_value.try_emplace(v, std::make_pair(rhs, size_t{0}));
        if (!inserted && it->second.first != rhs) pure[v] = false;
        ++it->second.second;
        pure.try_emplace(v, true);
      }
      for (const auto& [value, entry] : by_value) {
        const auto& [rhs_code, support] = entry;
        if (!pure[value] ||
            support < static_cast<size_t>(options.min_support)) {
          continue;
        }
        auto cfd = Cfd::Make(fd, {relation.pool().Lookup(value)},
                             relation.pool().Lookup(rhs_code));
        if (cfd.ok()) results.push_back(std::move(cfd).ValueOrDie());
        if (results.size() >= options.max_results) break;
      }
    }
  }
  return results;
}

}  // namespace uguide
