#ifndef UGUIDE_CFD_CFD_H_
#define UGUIDE_CFD_CFD_H_

#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "fd/fd.h"
#include "relation/relation.h"

namespace uguide {

/// \brief A conditional functional dependency (CFD): an embedded FD
/// X -> A plus a single pattern tuple over X and A.
///
/// This is the paper's §9 extension target ("extend our work to other ICs
/// beyond FDs"). Pattern semantics follow Fan et al. (TODS'08):
/// - every X attribute carries either a constant or the wildcard '_';
/// - the RHS carries a constant (a *constant CFD*) or '_' (a *variable
///   CFD*).
/// A tuple matches when it equals every LHS constant. A variable CFD is
/// violated by two matching tuples agreeing on X but not on A; a constant
/// CFD is violated by any matching tuple whose A-value differs from the
/// RHS constant. A CFD with no constants at all degenerates to its
/// embedded FD.
class Cfd {
 public:
  /// The wildcard marker used in patterns.
  static constexpr const char* kWildcard = "_";

  /// Builds a CFD. `lhs_pattern` must have one entry per LHS attribute of
  /// `embedded` (in ascending attribute order), each a constant or
  /// kWildcard. `rhs_pattern` is a constant or kWildcard.
  static Result<Cfd> Make(Fd embedded, std::vector<std::string> lhs_pattern,
                          std::string rhs_pattern);

  const Fd& embedded() const { return embedded_; }

  /// Pattern entry for LHS attribute at position `i` (ascending order).
  const std::string& lhs_pattern(size_t i) const { return lhs_pattern_[i]; }
  const std::vector<std::string>& lhs_patterns() const {
    return lhs_pattern_;
  }
  const std::string& rhs_pattern() const { return rhs_pattern_; }

  /// True iff the RHS pattern is a constant.
  bool IsConstant() const { return rhs_pattern_ != kWildcard; }

  /// True iff every pattern entry is the wildcard (a plain FD).
  bool IsPlainFd() const;

  /// True iff `row` satisfies every LHS constant of the pattern.
  bool Matches(const Relation& relation, TupleId row) const;

  /// Renders like "zip=02139,_ -> city=Cambridge" / "zip,_ -> city".
  std::string ToString(const Schema& schema) const;

  bool operator==(const Cfd& other) const {
    return embedded_ == other.embedded_ &&
           lhs_pattern_ == other.lhs_pattern_ &&
           rhs_pattern_ == other.rhs_pattern_;
  }

 private:
  Cfd(Fd embedded, std::vector<std::string> lhs_pattern,
      std::string rhs_pattern)
      : embedded_(embedded),
        lhs_pattern_(std::move(lhs_pattern)),
        rhs_pattern_(std::move(rhs_pattern)) {}

  Fd embedded_;
  std::vector<std::string> lhs_pattern_;  // aligned with lhs.ToVector()
  std::string rhs_pattern_;
};

/// \brief Cells violating `cfd` on `relation`.
///
/// Variable CFDs use the same participation semantics as plain FDs,
/// restricted to pattern-matching tuples; constant CFDs flag every
/// matching tuple whose RHS value differs from the constant.
std::vector<Cell> ViolatingCells(const Relation& relation, const Cfd& cfd);

/// True iff `cfd` holds on every (pair of) matching tuple(s).
bool CfdHoldsOn(const Relation& relation, const Cfd& cfd);

/// The g3-style error of a CFD: the fraction of tuples that must be
/// removed for it to hold (non-matching tuples never count).
double CfdError(const Relation& relation, const Cfd& cfd);

}  // namespace uguide

#endif  // UGUIDE_CFD_CFD_H_
