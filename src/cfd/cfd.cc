#include "cfd/cfd.h"

#include <algorithm>
#include <unordered_map>

#include "common/hash.h"

namespace uguide {

namespace {

struct VecHash {
  size_t operator()(const std::vector<ValueCode>& v) const {
    size_t seed = v.size();
    for (ValueCode c : v) HashCombine(seed, c);
    return seed;
  }
};

// Rows matching the CFD's LHS constants, grouped by their full LHS
// projection.
std::unordered_map<std::vector<ValueCode>, std::vector<TupleId>, VecHash>
MatchingGroups(const Relation& relation, const Cfd& cfd) {
  std::unordered_map<std::vector<ValueCode>, std::vector<TupleId>, VecHash>
      groups;
  const std::vector<int> cols = cfd.embedded().lhs.ToVector();
  std::vector<ValueCode> key(cols.size());
  for (TupleId r = 0; r < relation.NumRows(); ++r) {
    if (!cfd.Matches(relation, r)) continue;
    for (size_t i = 0; i < cols.size(); ++i) {
      key[i] = relation.Code(r, cols[i]);
    }
    groups[key].push_back(r);
  }
  return groups;
}

}  // namespace

Result<Cfd> Cfd::Make(Fd embedded, std::vector<std::string> lhs_pattern,
                      std::string rhs_pattern) {
  if (!embedded.IsValidShape()) {
    return Status::InvalidArgument("trivial embedded FD " +
                                   embedded.ToString());
  }
  if (lhs_pattern.size() != static_cast<size_t>(embedded.lhs.Size())) {
    return Status::InvalidArgument(
        "pattern size " + std::to_string(lhs_pattern.size()) +
        " does not match LHS size " + std::to_string(embedded.lhs.Size()));
  }
  return Cfd(embedded, std::move(lhs_pattern), std::move(rhs_pattern));
}

bool Cfd::IsPlainFd() const {
  if (rhs_pattern_ != kWildcard) return false;
  return std::all_of(lhs_pattern_.begin(), lhs_pattern_.end(),
                     [](const std::string& p) { return p == kWildcard; });
}

bool Cfd::Matches(const Relation& relation, TupleId row) const {
  const std::vector<int> cols = embedded_.lhs.ToVector();
  for (size_t i = 0; i < cols.size(); ++i) {
    if (lhs_pattern_[i] == kWildcard) continue;
    if (relation.Value(row, cols[i]) != lhs_pattern_[i]) return false;
  }
  return true;
}

std::string Cfd::ToString(const Schema& schema) const {
  std::string out;
  const std::vector<int> cols = embedded_.lhs.ToVector();
  for (size_t i = 0; i < cols.size(); ++i) {
    if (i > 0) out += ",";
    out += schema.Name(cols[i]);
    if (lhs_pattern_[i] != kWildcard) {
      out += "=";
      out += lhs_pattern_[i];
    }
  }
  out += " -> ";
  out += schema.Name(embedded_.rhs);
  if (rhs_pattern_ != kWildcard) {
    out += "=";
    out += rhs_pattern_;
  }
  return out;
}

std::vector<Cell> ViolatingCells(const Relation& relation, const Cfd& cfd) {
  std::vector<TupleId> rows;
  const int rhs = cfd.embedded().rhs;
  if (cfd.IsConstant()) {
    // Every matching tuple must carry the RHS constant.
    for (TupleId r = 0; r < relation.NumRows(); ++r) {
      if (cfd.Matches(relation, r) &&
          relation.Value(r, rhs) != cfd.rhs_pattern()) {
        rows.push_back(r);
      }
    }
  } else {
    // Variable CFD: participation semantics within matching groups.
    for (const auto& [key, group] : MatchingGroups(relation, cfd)) {
      if (group.size() < 2) continue;
      const ValueCode first = relation.Code(group[0], rhs);
      bool impure = false;
      for (size_t i = 1; i < group.size(); ++i) {
        if (relation.Code(group[i], rhs) != first) {
          impure = true;
          break;
        }
      }
      if (impure) rows.insert(rows.end(), group.begin(), group.end());
    }
  }
  std::sort(rows.begin(), rows.end());
  std::vector<Cell> cells;
  cells.reserve(rows.size());
  for (TupleId r : rows) cells.push_back(Cell{r, rhs});
  return cells;
}

bool CfdHoldsOn(const Relation& relation, const Cfd& cfd) {
  return ViolatingCells(relation, cfd).empty();
}

double CfdError(const Relation& relation, const Cfd& cfd) {
  if (relation.NumRows() == 0) return 0.0;
  const int rhs = cfd.embedded().rhs;
  size_t removed = 0;
  if (cfd.IsConstant()) {
    for (TupleId r = 0; r < relation.NumRows(); ++r) {
      if (cfd.Matches(relation, r) &&
          relation.Value(r, rhs) != cfd.rhs_pattern()) {
        ++removed;
      }
    }
  } else {
    for (const auto& [key, group] : MatchingGroups(relation, cfd)) {
      std::unordered_map<ValueCode, size_t> counts;
      size_t best = 0;
      for (TupleId r : group) {
        best = std::max(best, ++counts[relation.Code(r, rhs)]);
      }
      removed += group.size() - best;
    }
  }
  return static_cast<double>(removed) /
         static_cast<double>(relation.NumRows());
}

}  // namespace uguide
