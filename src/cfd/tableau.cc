#include "cfd/tableau.h"

#include <algorithm>
#include <unordered_set>

#include "relation/relation.h"

namespace uguide {

Result<CfdTableau> CfdTableau::Make(Fd embedded, std::vector<Cfd> patterns) {
  if (!embedded.IsValidShape()) {
    return Status::InvalidArgument("trivial embedded FD " +
                                   embedded.ToString());
  }
  if (patterns.empty()) {
    return Status::InvalidArgument("a tableau needs at least one pattern");
  }
  for (const Cfd& cfd : patterns) {
    if (!(cfd.embedded() == embedded)) {
      return Status::InvalidArgument(
          "pattern embeds " + cfd.embedded().ToString() + ", expected " +
          embedded.ToString());
    }
  }
  return CfdTableau(embedded, std::move(patterns));
}

bool CfdTableau::Matches(const Relation& relation, TupleId row) const {
  for (const Cfd& cfd : patterns_) {
    if (cfd.Matches(relation, row)) return true;
  }
  return false;
}

std::string CfdTableau::ToString(const Schema& schema) const {
  std::string out = embedded_.ToString(schema);
  out += " | {";
  for (size_t i = 0; i < patterns_.size(); ++i) {
    if (i > 0) out += " ; ";
    const Cfd& cfd = patterns_[i];
    for (size_t j = 0; j < cfd.lhs_patterns().size(); ++j) {
      if (j > 0) out += ",";
      out += cfd.lhs_patterns()[j];
    }
    out += "||";
    out += cfd.rhs_pattern();
  }
  out += "}";
  return out;
}

std::vector<Cell> ViolatingCells(const Relation& relation,
                                 const CfdTableau& tableau) {
  std::unordered_set<Cell, CellHash> seen;
  for (const Cfd& cfd : tableau.patterns()) {
    for (const Cell& cell : ViolatingCells(relation, cfd)) {
      seen.insert(cell);
    }
  }
  std::vector<Cell> out(seen.begin(), seen.end());
  std::sort(out.begin(), out.end());
  return out;
}

bool TableauHoldsOn(const Relation& relation, const CfdTableau& tableau) {
  for (const Cfd& cfd : tableau.patterns()) {
    if (!CfdHoldsOn(relation, cfd)) return false;
  }
  return true;
}

Result<CfdTableau> MineTableau(const Relation& relation, const Fd& fd,
                               const CfdDiscoveryOptions& options) {
  std::vector<Cfd> patterns =
      DiscoverVariableCfds(relation, FdSet({fd}), options);
  if (patterns.empty()) {
    return Status::NotFound("no condition makes " + fd.ToString() +
                            " hold with the required support");
  }
  return CfdTableau::Make(fd, std::move(patterns));
}

}  // namespace uguide
