#include "relation/relation.h"

namespace uguide {

Relation::Relation(Schema schema) : schema_(std::move(schema)) {
  columns_.resize(static_cast<size_t>(schema_.NumAttributes()));
}

Result<Relation> Relation::FromCsv(const CsvTable& csv) {
  UGUIDE_ASSIGN_OR_RETURN(Schema schema, Schema::Make(csv.header));
  Relation rel(std::move(schema));
  for (const auto& row : csv.rows) {
    rel.AddRow(row);
  }
  return rel;
}

Result<Relation> Relation::FromCsvFile(const std::string& path) {
  UGUIDE_ASSIGN_OR_RETURN(CsvTable csv, ReadCsvFile(path));
  return FromCsv(csv);
}

TupleId Relation::AddRow(const std::vector<std::string>& values) {
  UGUIDE_CHECK_EQ(static_cast<int>(values.size()), NumAttributes());
  for (int c = 0; c < NumAttributes(); ++c) {
    columns_[static_cast<size_t>(c)].push_back(
        pool_.Intern(values[static_cast<size_t>(c)]));
  }
  return NumRows() - 1;
}

void Relation::SetValue(TupleId row, int col, std::string_view value) {
  UGUIDE_CHECK(row >= 0 && row < NumRows());
  UGUIDE_CHECK(col >= 0 && col < NumAttributes());
  columns_[static_cast<size_t>(col)][static_cast<size_t>(row)] =
      pool_.Intern(value);
}

AttributeSet Relation::AgreeSet(TupleId a, TupleId b) const {
  AttributeSet agree;
  for (int c = 0; c < NumAttributes(); ++c) {
    if (Code(a, c) == Code(b, c)) agree.Add(c);
  }
  return agree;
}

bool Relation::Agree(TupleId a, TupleId b, const AttributeSet& attrs) const {
  for (int c : attrs) {
    if (Code(a, c) != Code(b, c)) return false;
  }
  return true;
}

Relation Relation::SelectRows(const std::vector<TupleId>& rows) const {
  Relation out(schema_);
  std::vector<std::string> values(static_cast<size_t>(NumAttributes()));
  for (TupleId row : rows) {
    UGUIDE_CHECK(row >= 0 && row < NumRows());
    for (int c = 0; c < NumAttributes(); ++c) {
      values[static_cast<size_t>(c)] = Value(row, c);
    }
    out.AddRow(values);
  }
  return out;
}

CsvTable Relation::ToCsv() const {
  CsvTable csv;
  csv.header = schema_.Names();
  csv.rows.reserve(static_cast<size_t>(NumRows()));
  for (TupleId r = 0; r < NumRows(); ++r) {
    std::vector<std::string> row;
    row.reserve(static_cast<size_t>(NumAttributes()));
    for (int c = 0; c < NumAttributes(); ++c) {
      row.push_back(Value(r, c));
    }
    csv.rows.push_back(std::move(row));
  }
  return csv;
}

std::string Relation::RowToString(TupleId row) const {
  std::string out;
  for (int c = 0; c < NumAttributes(); ++c) {
    if (c > 0) out += ", ";
    out += schema_.Name(c);
    out += "=";
    out += Value(row, c);
  }
  return out;
}

}  // namespace uguide
