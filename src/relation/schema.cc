#include "relation/schema.h"

#include <unordered_set>

namespace uguide {

Result<Schema> Schema::Make(std::vector<std::string> names) {
  if (names.size() > AttributeSet::kMaxAttributes) {
    return Status::InvalidArgument(
        "schema has " + std::to_string(names.size()) +
        " attributes; at most 64 supported");
  }
  std::unordered_set<std::string> seen;
  for (const auto& name : names) {
    if (name.empty()) {
      return Status::InvalidArgument("empty attribute name");
    }
    if (!seen.insert(name).second) {
      return Status::InvalidArgument("duplicate attribute name: " + name);
    }
  }
  return Schema(std::move(names));
}

const std::string& Schema::Name(int index) const {
  UGUIDE_CHECK(index >= 0 && index < NumAttributes())
      << "attribute index " << index << " out of range";
  return names_[static_cast<size_t>(index)];
}

Result<int> Schema::IndexOf(const std::string& name) const {
  for (int i = 0; i < NumAttributes(); ++i) {
    if (names_[static_cast<size_t>(i)] == name) return i;
  }
  return Status::NotFound("no attribute named " + name);
}

}  // namespace uguide
