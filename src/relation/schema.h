#ifndef UGUIDE_RELATION_SCHEMA_H_
#define UGUIDE_RELATION_SCHEMA_H_

#include <string>
#include <vector>

#include "common/attribute_set.h"
#include "common/result.h"

namespace uguide {

/// \brief A relation schema: an ordered list of attribute names.
///
/// All cell values are modeled as strings (dictionary-encoded in Relation);
/// FD semantics only need value equality, so a type system would add nothing.
/// At most AttributeSet::kMaxAttributes (64) attributes are supported.
class Schema {
 public:
  Schema() = default;

  /// Builds a schema; names must be non-empty and unique.
  static Result<Schema> Make(std::vector<std::string> names);

  /// Number of attributes (the paper's `m`).
  int NumAttributes() const { return static_cast<int>(names_.size()); }

  /// Name of attribute `index`.
  const std::string& Name(int index) const;

  /// All attribute names in schema order.
  const std::vector<std::string>& Names() const { return names_; }

  /// Index of the attribute called `name`, or NotFound.
  Result<int> IndexOf(const std::string& name) const;

  /// The set of all attribute indices.
  AttributeSet AllAttributes() const {
    return AttributeSet::Full(NumAttributes());
  }

  bool operator==(const Schema& other) const { return names_ == other.names_; }

 private:
  explicit Schema(std::vector<std::string> names) : names_(std::move(names)) {}

  std::vector<std::string> names_;
};

}  // namespace uguide

#endif  // UGUIDE_RELATION_SCHEMA_H_
