#ifndef UGUIDE_RELATION_RELATION_H_
#define UGUIDE_RELATION_RELATION_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/attribute_set.h"
#include "common/csv.h"
#include "common/hash.h"
#include "common/result.h"
#include "common/string_pool.h"
#include "relation/schema.h"

namespace uguide {

/// Row index within a relation.
using TupleId = int32_t;

/// \brief Address of a single cell: (tuple, attribute).
struct Cell {
  TupleId row = 0;
  int col = 0;

  bool operator==(const Cell& other) const {
    return row == other.row && col == other.col;
  }
  /// Row-major order; used for deterministic iteration.
  bool operator<(const Cell& other) const {
    return row != other.row ? row < other.row : col < other.col;
  }
};

/// Hash functor so Cell can key unordered containers.
struct CellHash {
  size_t operator()(const Cell& c) const {
    size_t seed = 0;
    HashCombine(seed, c.row);
    HashCombine(seed, c.col);
    return seed;
  }
};

/// \brief A columnar, dictionary-encoded relation instance.
///
/// Cells are stored as dense integer codes into a per-relation StringPool;
/// value equality (the only operation FDs need) is an integer compare.
/// Mutation is supported cell-wise (SetValue) so the error generator can
/// perturb a clean table in place.
class Relation {
 public:
  /// Creates an empty relation with the given schema.
  explicit Relation(Schema schema);

  Relation(const Relation&) = default;
  Relation& operator=(const Relation&) = default;
  Relation(Relation&&) = default;
  Relation& operator=(Relation&&) = default;

  /// Builds a relation from parsed CSV (header becomes the schema).
  static Result<Relation> FromCsv(const CsvTable& csv);

  /// Reads a relation from a CSV file.
  static Result<Relation> FromCsvFile(const std::string& path);

  const Schema& schema() const { return schema_; }

  int NumAttributes() const { return schema_.NumAttributes(); }

  TupleId NumRows() const {
    return columns_.empty() ? 0 : static_cast<TupleId>(columns_[0].size());
  }

  /// Appends a row; `values.size()` must equal NumAttributes(). Returns the
  /// new row's TupleId.
  TupleId AddRow(const std::vector<std::string>& values);

  /// Dictionary code of a cell; O(1).
  ValueCode Code(TupleId row, int col) const {
    UGUIDE_DCHECK(row >= 0 && row < NumRows());
    UGUIDE_DCHECK(col >= 0 && col < NumAttributes());
    return columns_[static_cast<size_t>(col)][static_cast<size_t>(row)];
  }

  ValueCode Code(const Cell& cell) const { return Code(cell.row, cell.col); }

  /// String value of a cell.
  const std::string& Value(TupleId row, int col) const {
    return pool_.Lookup(Code(row, col));
  }

  const std::string& Value(const Cell& cell) const {
    return Value(cell.row, cell.col);
  }

  /// Overwrites a cell with a (possibly new) value.
  void SetValue(TupleId row, int col, std::string_view value);

  /// The attributes on which rows `a` and `b` hold equal values
  /// (the agree-set; central to Armstrong-relation reasoning, §6).
  AttributeSet AgreeSet(TupleId a, TupleId b) const;

  /// True iff rows `a` and `b` agree on every attribute in `attrs`.
  bool Agree(TupleId a, TupleId b, const AttributeSet& attrs) const;

  /// Copies the given rows into a new relation with the same schema.
  /// Codes are re-interned, so the projection owns an independent pool.
  Relation SelectRows(const std::vector<TupleId>& rows) const;

  /// Serializes to a CSV table (inverse of FromCsv).
  CsvTable ToCsv() const;

  /// Renders row `row` as "name=value, ..." for question context.
  std::string RowToString(TupleId row) const;

  /// Direct read access to a column's codes (hot loops in discovery).
  const std::vector<ValueCode>& ColumnCodes(int col) const {
    UGUIDE_CHECK(col >= 0 && col < NumAttributes());
    return columns_[static_cast<size_t>(col)];
  }

  const StringPool& pool() const { return pool_; }

 private:
  Schema schema_;
  StringPool pool_;
  std::vector<std::vector<ValueCode>> columns_;
};

}  // namespace uguide

#endif  // UGUIDE_RELATION_RELATION_H_
