#ifndef UGUIDE_CORE_SESSION_JOURNAL_H_
#define UGUIDE_CORE_SESSION_JOURNAL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "fd/fd.h"
#include "oracle/cost_model.h"
#include "oracle/expert.h"
#include "relation/relation.h"

namespace uguide {

/// The three question kinds a journal record can describe.
enum class QuestionKind { kCell, kTuple, kFd };

/// \brief One answered question: what was asked, what the expert said, and
/// what it cost.
///
/// Costs are serialized as C hexfloats (`%a`) so a record round-trips
/// bit-exactly — replayed sessions must reproduce `cost_spent` to the last
/// ulp or the resume-determinism contract breaks.
struct JournalRecord {
  QuestionKind kind = QuestionKind::kCell;
  Cell cell;       ///< kCell: the cell asked about.
  TupleId row = 0; ///< kTuple: the tuple asked about.
  Fd fd;           ///< kFd: the FD asked about.
  Answer answer = Answer::kIdk;
  double cost = 0.0;

  bool operator==(const JournalRecord& other) const;
};

/// \brief The journal header: enough session identity to refuse a resume
/// against a journal written under different conditions.
struct JournalHeader {
  std::string strategy_name;
  double budget = 0.0;
  uint64_t expert_seed = 0;
  int expert_votes = 1;
  double idk_rate = 0.0;
  double wrong_rate = 0.0;
  /// Identity of the data the session ran against (v2 `dhash=`/`dver=`,
  /// emitted only when either is nonzero so pre-live journals stay
  /// byte-identical). A resume whose pinned pair differs from the live
  /// dataset's is refused — answers must not be replayed onto different
  /// data (the `version_mismatch` refusal of the serving layer).
  uint64_t content_hash = 0;
  uint64_t data_version = 0;

  bool Matches(const JournalHeader& other) const;
};

/// A parsed journal: the header plus every intact record.
struct LoadedJournal {
  JournalHeader header;
  std::vector<JournalRecord> records;
  /// True iff the file ended in a torn (incomplete) last line, which was
  /// dropped — the expected shape after a crash mid-write.
  bool torn_tail = false;
  /// Format version the file was written in (1 = bare lines, 2 = CRC32C
  /// framed). Resume appends records in the same version it found.
  int version = 1;
  /// True iff a v2 end marker was found: the session ran to completion and
  /// its report is durable, so the file is eligible for retention GC.
  bool finished = false;
  /// From the end marker (v2 finished journals only).
  int finished_questions = 0;
  double finished_cost = 0.0;
  /// Byte offset just past the last intact *question* record (excludes any
  /// end marker and any torn/garbage tail). A resuming writer truncates the
  /// file to this offset before appending, so a torn tail or a superseded
  /// end marker can never be concatenated with new records.
  uint64_t resume_offset = 0;
};

/// True iff `a` and `b` ask the same question (answer/cost ignored) — the
/// replay-match predicate shared by JournalingExpert and the session state
/// machine.
bool SameJournalQuestion(const JournalRecord& a, const JournalRecord& b);

/// Serializes one record as a single journal line (no trailing newline).
std::string FormatJournalRecord(const JournalRecord& record);

/// Parses one journal line. Fails on any deviation from the format.
Result<JournalRecord> ParseJournalRecord(std::string_view line);

/// Serializes the v1 header line (no trailing newline).
std::string FormatJournalHeader(const JournalHeader& header);

/// Parses the v1 header line.
Result<JournalHeader> ParseJournalHeader(std::string_view line);

/// The journal format version new writers produce.
inline constexpr int kJournalVersionCurrent = 2;

/// \brief Serializes the v2 header line (no trailing newline): the v1
/// fields under `v=2`, closed by `hcrc=XXXXXXXX` — the CRC32C of
/// everything before the ` hcrc=` suffix. A flipped bit anywhere in the
/// header is therefore detectable, not just in the records.
std::string FormatJournalHeaderV2(const JournalHeader& header);

/// \brief Wraps a payload as one v2 record line (no trailing newline):
/// `<len>.<crc> <payload>` with `len` the decimal payload byte count and
/// `crc` the 8-hex-digit CRC32C of the payload. Length framing catches
/// truncation-with-coincidental-parse; the checksum catches bit-rot.
std::string FormatJournalFrame(std::string_view payload);

/// \brief Compares a loaded journal header against the resume
/// configuration.
///
/// Returns OK on a full match; otherwise an InvalidArgument naming the
/// first mismatching pinned field (strategy, budget, seed, votes, idk,
/// wrong) with its expected and found values, so a failed resume says
/// exactly which knob diverged instead of dumping both headers.
Status ValidateJournalHeader(const JournalHeader& expected,
                             const JournalHeader& found);

/// \brief Parses the full text of a journal (header line + records).
///
/// The pure-parsing core of LoadJournal, exposed so hostile input can be
/// driven directly (fuzzing) without touching the filesystem. `origin` is
/// used in error messages only. Never crashes: any malformed input yields
/// a Status.
Result<LoadedJournal> ParseJournalText(std::string_view contents,
                                       const std::string& origin);

/// \brief Reads a journal file, sniffing the format version.
///
/// v1: a torn final line (no terminating newline, or unparseable) is
/// dropped and reported via `torn_tail`; a malformed line anywhere before
/// the tail fails the load with InvalidArgument (v1 cannot tell corruption
/// from a foreign file).
///
/// v2: the framing makes the call deterministic. An *unterminated* tail —
/// the only shape a torn write can leave — is salvaged (`torn_tail`,
/// records up to the last intact frame, `resume_offset` set). Any
/// *terminated* line that fails its length/CRC/parse check is proof of
/// in-place damage and fails the load with StatusCode::kDataLoss: the
/// caller must quarantine, never resume. A file that is empty or has no
/// recognizable header is InvalidArgument ("not a journal").
Result<LoadedJournal> LoadJournal(const std::string& path);

/// \brief Reads only the header line of a journal file (either version).
///
/// The serving layer peeks the pinned `dhash=`/`dver=` pair before opening
/// a resume so it can pick the matching live epoch — or refuse with a
/// structured `version_mismatch` — without paying for a full record parse.
/// Fails exactly where LoadJournal's header handling would.
Result<JournalHeader> PeekJournalHeader(const std::string& path);

/// \brief Fsyncs a directory, making renames/creates/unlinks inside it
/// durable. Fires the "journal.fsync" fault site.
Status FsyncDir(const std::string& dir);

/// \brief Moves a damaged journal aside as `<path>.quarantined` (fsyncing
/// the parent directory so the rename itself survives a crash) and returns
/// the quarantine path via `quarantined_path` if non-null. Fires the
/// "journal.rename" fault site. The original path no longer exists on
/// success, so a later resume attempt sees NotFound + the quarantine
/// marker instead of re-reading damaged bytes.
Status QuarantineJournal(const std::string& path,
                         std::string* quarantined_path = nullptr);

/// Durability policy of a JournalWriter (the `--journal-fsync` knob).
enum class JournalFsyncMode {
  /// fsync after every record: a record the caller saw succeed survives
  /// any subsequent crash. The default, and the strongest guarantee.
  kEvery,
  /// fsync every kBatchInterval records (and on Sync/Close): a crash can
  /// lose up to one batch of trailing records. Resume stays bit-identical —
  /// it simply replays fewer records and re-asks the rest — so batch mode
  /// trades a bounded amount of replayable work for not serializing many
  /// concurrent served sessions on one fsync each per answer.
  kBatch,
};

/// Parses "every" / "batch"; anything else is an InvalidArgument.
Result<JournalFsyncMode> ParseJournalFsyncMode(std::string_view text);

/// How a JournalWriter is opened (the full-fidelity Open overload).
struct JournalWriterOptions {
  /// False: truncate/create and write a fresh header. True: the caller has
  /// loaded and validated the journal; the file is truncated to
  /// `resume_offset` (dropping any torn tail or end marker) and extended.
  bool resume = false;
  JournalFsyncMode fsync_mode = JournalFsyncMode::kEvery;
  /// Format to write. On resume this must be the loaded journal's version
  /// so the file stays homogeneous; fresh journals should use
  /// kJournalVersionCurrent.
  int version = kJournalVersionCurrent;
  /// On resume: LoadedJournal::resume_offset. Ignored on create.
  uint64_t resume_offset = 0;
  /// On create: fsync the parent directory after the file exists, so the
  /// journal's *name* survives a crash too. (Off only for unit tests that
  /// count fsyncs.)
  bool sync_dir = true;
};

/// \brief Append-only, fsync-per-record journal writer.
///
/// Every Append writes one line and (in kEvery mode) fsyncs before
/// returning, so a record the caller saw succeed survives any subsequent
/// crash. The fault site "session.record" fires *after* the fsync: a
/// `crash@k` plan therefore leaves exactly k durable records — the
/// invariant the kill/resume tests are built on. In kBatch mode the fsync
/// is amortized over kBatchInterval records and a crash@k plan leaves *at
/// most* k durable records.
///
/// Disk faults: the syscall paths run through the "journal.open",
/// "journal.write" and "journal.fsync" fault sites and check every
/// ::write/::fsync/::close return value; failures carry the journal path
/// and errno. A failed write or fsync *poisons* the writer: after fsync
/// reports an error the kernel may have dropped the dirty pages, so
/// retrying the fsync and believing its success would un-report data loss
/// (the fsyncgate failure mode). Every later Append/Sync/AppendEnd returns
/// the original error; Close still releases the fd.
class JournalWriter {
 public:
  /// Records per fsync in JournalFsyncMode::kBatch.
  static constexpr int kBatchInterval = 32;

  /// Opens `path` per `options` (see JournalWriterOptions).
  static Result<JournalWriter> Open(const std::string& path,
                                    const JournalHeader& header,
                                    const JournalWriterOptions& options);

  /// Convenience overload kept for pre-v2 callers: create writes a
  /// current-version header; resume appends at the current end of file
  /// *without* truncation (callers that know the resume offset should use
  /// the options overload — it is the one that repairs torn tails).
  static Result<JournalWriter> Open(
      const std::string& path, const JournalHeader& header, bool resume,
      JournalFsyncMode fsync_mode = JournalFsyncMode::kEvery);

  JournalWriter(JournalWriter&& other) noexcept;
  JournalWriter& operator=(JournalWriter&& other) noexcept;
  JournalWriter(const JournalWriter&) = delete;
  JournalWriter& operator=(const JournalWriter&) = delete;
  ~JournalWriter();

  /// Appends one record (write, plus fsync per the mode), then fires the
  /// "session.record" fault site.
  Status Append(const JournalRecord& record);

  /// Appends the v2 end marker recording that the session finished with
  /// `questions_asked` questions at `cost_spent`, and fsyncs regardless of
  /// mode — the marker is what makes the journal eligible for retention
  /// GC, so it must not sit in the page cache. No-op on v1 journals (the
  /// format has no marker).
  Status AppendEnd(int questions_asked, double cost_spent);

  /// Forces any unsynced appends to disk (no-op in kEvery mode or when
  /// nothing is pending). Batch-mode callers invoke this at quiesce points
  /// (session end, daemon drain).
  Status Sync();

  /// Fsyncs and closes the file. Idempotent; also run by the destructor.
  /// A poisoned writer skips the fsync (see class comment) and reports the
  /// original error after releasing the fd.
  Status Close();

  /// The sticky first write/fsync error, if any. A non-OK value means
  /// records since that point are NOT durable and the session must be
  /// surfaced as storage-failed, not silently continued.
  const Status& poisoned() const { return poisoned_; }

  /// Format version this writer emits (1 or 2).
  int version() const { return version_; }

 private:
  JournalWriter(int fd, std::string path, JournalFsyncMode fsync_mode,
                int version)
      : fd_(fd),
        path_(std::move(path)),
        fsync_mode_(fsync_mode),
        version_(version) {}

  /// Write-it-all loop through the "journal.write" fault site; sets
  /// `poisoned_` on failure.
  Status WriteAll(std::string_view data);
  /// fsync through the "journal.fsync" fault site; sets `poisoned_` on
  /// failure and never retries after one.
  Status SyncFd();

  int fd_ = -1;
  std::string path_;
  JournalFsyncMode fsync_mode_ = JournalFsyncMode::kEvery;
  int version_ = kJournalVersionCurrent;
  /// Appends since the last fsync (kBatch bookkeeping).
  int unsynced_ = 0;
  /// First write/fsync failure; sticky (fsyncgate discipline).
  Status poisoned_ = Status::OK();
};

/// \brief Expert decorator that records answers and replays them on resume.
///
/// In recording mode every answered question is appended (durably) to the
/// writer before the answer reaches the strategy. In replay mode the first
/// `records` questions are served from the journal instead — and the live
/// expert underneath is *still asked* (its answer discarded) so its RNG and
/// counters advance exactly as they did in the original run; questions
/// after the journal runs out therefore get bit-identical answers to an
/// uninterrupted session.
///
/// If a replayed question does not match its record (the strategy diverged,
/// e.g. a different binary), replay is abandoned: the mismatch is counted
/// and the session continues live from that point.
class JournalingExpert : public Expert {
 public:
  /// `live` must outlive the wrapper; `writer` may be null (no recording).
  JournalingExpert(Expert* live, JournalWriter* writer,
                   std::vector<JournalRecord> replay, const CostModel& cost,
                   int num_attributes);

  Answer IsCellErroneous(const Cell& cell) override;
  Answer IsTupleClean(TupleId row) override;
  Answer IsFdValid(const Fd& fd) override;

  /// Questions still to be served from the journal.
  size_t replay_remaining() const { return replay_.size() - replay_pos_; }
  /// Replayed questions that did not match their journal record.
  int mismatches() const { return mismatches_; }
  /// First non-OK status from the writer, if any (sticky).
  const Status& write_status() const { return write_status_; }

 private:
  Answer Record(JournalRecord record, Answer live_answer);
  /// Serves `expected` from the journal if it matches the next record;
  /// returns false once replay is exhausted or diverged.
  bool Replay(const JournalRecord& expected, Answer* out);

  Expert* live_;
  JournalWriter* writer_;
  std::vector<JournalRecord> replay_;
  size_t replay_pos_ = 0;
  CostModel cost_;
  int num_attributes_;
  int mismatches_ = 0;
  bool replay_abandoned_ = false;
  Status write_status_ = Status::OK();
};

}  // namespace uguide

#endif  // UGUIDE_CORE_SESSION_JOURNAL_H_
