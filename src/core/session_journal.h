#ifndef UGUIDE_CORE_SESSION_JOURNAL_H_
#define UGUIDE_CORE_SESSION_JOURNAL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "fd/fd.h"
#include "oracle/cost_model.h"
#include "oracle/expert.h"
#include "relation/relation.h"

namespace uguide {

/// The three question kinds a journal record can describe.
enum class QuestionKind { kCell, kTuple, kFd };

/// \brief One answered question: what was asked, what the expert said, and
/// what it cost.
///
/// Costs are serialized as C hexfloats (`%a`) so a record round-trips
/// bit-exactly — replayed sessions must reproduce `cost_spent` to the last
/// ulp or the resume-determinism contract breaks.
struct JournalRecord {
  QuestionKind kind = QuestionKind::kCell;
  Cell cell;       ///< kCell: the cell asked about.
  TupleId row = 0; ///< kTuple: the tuple asked about.
  Fd fd;           ///< kFd: the FD asked about.
  Answer answer = Answer::kIdk;
  double cost = 0.0;

  bool operator==(const JournalRecord& other) const;
};

/// \brief The journal header: enough session identity to refuse a resume
/// against a journal written under different conditions.
struct JournalHeader {
  std::string strategy_name;
  double budget = 0.0;
  uint64_t expert_seed = 0;
  int expert_votes = 1;
  double idk_rate = 0.0;
  double wrong_rate = 0.0;

  bool Matches(const JournalHeader& other) const;
};

/// A parsed journal: the header plus every intact record.
struct LoadedJournal {
  JournalHeader header;
  std::vector<JournalRecord> records;
  /// True iff the file ended in a torn (incomplete) last line, which was
  /// dropped — the expected shape after a crash mid-write.
  bool torn_tail = false;
};

/// True iff `a` and `b` ask the same question (answer/cost ignored) — the
/// replay-match predicate shared by JournalingExpert and the session state
/// machine.
bool SameJournalQuestion(const JournalRecord& a, const JournalRecord& b);

/// Serializes one record as a single journal line (no trailing newline).
std::string FormatJournalRecord(const JournalRecord& record);

/// Parses one journal line. Fails on any deviation from the format.
Result<JournalRecord> ParseJournalRecord(std::string_view line);

/// Serializes the header line (no trailing newline).
std::string FormatJournalHeader(const JournalHeader& header);

/// Parses the header line.
Result<JournalHeader> ParseJournalHeader(std::string_view line);

/// \brief Compares a loaded journal header against the resume
/// configuration.
///
/// Returns OK on a full match; otherwise an InvalidArgument naming the
/// first mismatching pinned field (strategy, budget, seed, votes, idk,
/// wrong) with its expected and found values, so a failed resume says
/// exactly which knob diverged instead of dumping both headers.
Status ValidateJournalHeader(const JournalHeader& expected,
                             const JournalHeader& found);

/// \brief Parses the full text of a journal (header line + records).
///
/// The pure-parsing core of LoadJournal, exposed so hostile input can be
/// driven directly (fuzzing) without touching the filesystem. `origin` is
/// used in error messages only. Never crashes: any malformed input yields
/// a Status.
Result<LoadedJournal> ParseJournalText(std::string_view contents,
                                       const std::string& origin);

/// \brief Reads a journal file.
///
/// A torn final line (no terminating newline, or unparseable) is dropped
/// and reported via `torn_tail` — that is what a crash between write and
/// completion leaves behind. A malformed line anywhere *before* the tail
/// means the file is not a journal (or is corrupt) and fails the load.
Result<LoadedJournal> LoadJournal(const std::string& path);

/// Durability policy of a JournalWriter (the `--journal-fsync` knob).
enum class JournalFsyncMode {
  /// fsync after every record: a record the caller saw succeed survives
  /// any subsequent crash. The default, and the strongest guarantee.
  kEvery,
  /// fsync every kBatchInterval records (and on Sync/Close): a crash can
  /// lose up to one batch of trailing records. Resume stays bit-identical —
  /// it simply replays fewer records and re-asks the rest — so batch mode
  /// trades a bounded amount of replayable work for not serializing many
  /// concurrent served sessions on one fsync each per answer.
  kBatch,
};

/// Parses "every" / "batch"; anything else is an InvalidArgument.
Result<JournalFsyncMode> ParseJournalFsyncMode(std::string_view text);

/// \brief Append-only, fsync-per-record journal writer.
///
/// Every Append writes one line and (in kEvery mode) fsyncs before
/// returning, so a record the caller saw succeed survives any subsequent
/// crash. The fault site "session.record" fires *after* the fsync: a
/// `crash@k` plan therefore leaves exactly k durable records — the
/// invariant the kill/resume tests are built on. In kBatch mode the fsync
/// is amortized over kBatchInterval records and a crash@k plan leaves *at
/// most* k durable records.
class JournalWriter {
 public:
  /// Records per fsync in JournalFsyncMode::kBatch.
  static constexpr int kBatchInterval = 32;

  /// Opens `path` for appending. When `resume` is false the file is
  /// truncated and `header` written as the first line; when true the file
  /// is extended as-is (the caller has already validated the header).
  static Result<JournalWriter> Open(
      const std::string& path, const JournalHeader& header, bool resume,
      JournalFsyncMode fsync_mode = JournalFsyncMode::kEvery);

  JournalWriter(JournalWriter&& other) noexcept;
  JournalWriter& operator=(JournalWriter&& other) noexcept;
  JournalWriter(const JournalWriter&) = delete;
  JournalWriter& operator=(const JournalWriter&) = delete;
  ~JournalWriter();

  /// Appends one record (write, plus fsync per the mode), then fires the
  /// "session.record" fault site.
  Status Append(const JournalRecord& record);

  /// Forces any unsynced appends to disk (no-op in kEvery mode or when
  /// nothing is pending). Batch-mode callers invoke this at quiesce points
  /// (session end, daemon drain).
  Status Sync();

  /// Fsyncs and closes the file. Idempotent; also run by the destructor.
  Status Close();

 private:
  JournalWriter(int fd, JournalFsyncMode fsync_mode)
      : fd_(fd), fsync_mode_(fsync_mode) {}

  int fd_ = -1;
  JournalFsyncMode fsync_mode_ = JournalFsyncMode::kEvery;
  /// Appends since the last fsync (kBatch bookkeeping).
  int unsynced_ = 0;
};

/// \brief Expert decorator that records answers and replays them on resume.
///
/// In recording mode every answered question is appended (durably) to the
/// writer before the answer reaches the strategy. In replay mode the first
/// `records` questions are served from the journal instead — and the live
/// expert underneath is *still asked* (its answer discarded) so its RNG and
/// counters advance exactly as they did in the original run; questions
/// after the journal runs out therefore get bit-identical answers to an
/// uninterrupted session.
///
/// If a replayed question does not match its record (the strategy diverged,
/// e.g. a different binary), replay is abandoned: the mismatch is counted
/// and the session continues live from that point.
class JournalingExpert : public Expert {
 public:
  /// `live` must outlive the wrapper; `writer` may be null (no recording).
  JournalingExpert(Expert* live, JournalWriter* writer,
                   std::vector<JournalRecord> replay, const CostModel& cost,
                   int num_attributes);

  Answer IsCellErroneous(const Cell& cell) override;
  Answer IsTupleClean(TupleId row) override;
  Answer IsFdValid(const Fd& fd) override;

  /// Questions still to be served from the journal.
  size_t replay_remaining() const { return replay_.size() - replay_pos_; }
  /// Replayed questions that did not match their journal record.
  int mismatches() const { return mismatches_; }
  /// First non-OK status from the writer, if any (sticky).
  const Status& write_status() const { return write_status_; }

 private:
  Answer Record(JournalRecord record, Answer live_answer);
  /// Serves `expected` from the journal if it matches the next record;
  /// returns false once replay is exhausted or diverged.
  bool Replay(const JournalRecord& expected, Answer* out);

  Expert* live_;
  JournalWriter* writer_;
  std::vector<JournalRecord> replay_;
  size_t replay_pos_ = 0;
  CostModel cost_;
  int num_attributes_;
  int mismatches_ = 0;
  bool replay_abandoned_ = false;
  Status write_status_ = Status::OK();
};

}  // namespace uguide

#endif  // UGUIDE_CORE_SESSION_JOURNAL_H_
