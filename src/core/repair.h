#ifndef UGUIDE_CORE_REPAIR_H_
#define UGUIDE_CORE_REPAIR_H_

#include <string>
#include <vector>

#include "errorgen/error_generator.h"
#include "fd/fd.h"
#include "relation/relation.h"

namespace uguide {

class ViolationEngine;

/// One proposed cell correction.
struct CellRepair {
  Cell cell;
  std::string old_value;
  std::string new_value;
};

/// Output of RepairWithFds: the corrected table plus the applied edits.
struct RepairResult {
  Relation repaired;
  std::vector<CellRepair> repairs;
};

/// Options controlling the majority-vote repairer.
struct RepairOptions {
  /// Minimum number of tuples that must carry the majority value before
  /// minority cells are rewritten to it. 2 (the default) skips 1-vs-1
  /// ties, where "majority" would be a coin flip; higher values trade
  /// recall for precision.
  int min_majority_support = 2;

  /// Guard against the LHS-vs-RHS ambiguity: when the group membership
  /// itself is the error (a corrupted LHS cell relocated the tuple into a
  /// foreign group), rewriting its RHS would corrupt a clean cell. With
  /// this guard on, a minority cell is not repaired while any of the
  /// tuple's LHS cells is itself flagged suspicious (in the g3 removal set
  /// of another accepted FD) -- multi-FD corroboration resolves which side
  /// of the violation to blame.
  bool guard_suspicious_lhs = true;
};

/// \brief Majority-vote repair driven by validated FDs (§8: UGuide's
/// output "bootstraps the end-to-end data cleaning pipeline" -- this is
/// the simplest such downstream repairer).
///
/// For every accepted FD X -> A and every impure X-group, the minority
/// tuples' A-cells are rewritten to the group's majority value. FDs are
/// processed in the given order on the evolving table, and each cell is
/// repaired at most once, so earlier FDs (typically the higher-confidence
/// ones) take precedence. The result is guaranteed consistent only per
/// group per pass; rerun to reach a fixpoint if desired.
/// When `engine` is non-null it must detect over `dirty`; the suspicious
/// set (g3 removal cells on the original table) is then computed from its
/// cached LHS partitions. The per-FD repair grouping itself stays
/// hash-based: it runs on the *evolving* table, which the engine's
/// partitions do not track.
RepairResult RepairWithFds(const Relation& dirty, const FdSet& accepted,
                           const RepairOptions& options = {},
                           ViolationEngine* engine = nullptr);

/// \brief Repair quality against the ground truth.
struct RepairMetrics {
  size_t repairs = 0;           ///< proposed corrections
  size_t correct_repairs = 0;   ///< restored the exact clean value
  size_t errors_fixed = 0;      ///< injected errors now holding clean value
  size_t total_errors = 0;      ///< injected errors overall

  /// Fraction of proposed corrections that restored the clean value.
  double Precision() const {
    return repairs == 0 ? 1.0
                        : static_cast<double>(correct_repairs) /
                              static_cast<double>(repairs);
  }

  /// Fraction of injected errors whose clean value was restored.
  double Recall() const {
    return total_errors == 0 ? 1.0
                             : static_cast<double>(errors_fixed) /
                                   static_cast<double>(total_errors);
  }
};

/// Scores a repair run: `clean` is the pristine table, `truth` the
/// injection ledger, and `result` the output of RepairWithFds on the dirty
/// counterpart.
RepairMetrics EvaluateRepairs(const Relation& clean, const GroundTruth& truth,
                              const RepairResult& result);

}  // namespace uguide

#endif  // UGUIDE_CORE_REPAIR_H_
