#include "core/repair.h"

#include <unordered_map>
#include <unordered_set>

#include "common/hash.h"
#include "violations/violation_engine.h"

namespace uguide {

namespace {

struct VecHash {
  size_t operator()(const std::vector<ValueCode>& v) const {
    size_t seed = v.size();
    for (ValueCode c : v) HashCombine(seed, c);
    return seed;
  }
};

}  // namespace

RepairResult RepairWithFds(const Relation& dirty, const FdSet& accepted,
                           const RepairOptions& options,
                           ViolationEngine* engine) {
  RepairResult result{dirty, {}};
  std::unordered_set<Cell, CellHash> repaired_cells;

  // Cells any accepted FD blames (g3 removal sets on the original dirty
  // table); used by the LHS-suspicion guard.
  std::unordered_set<Cell, CellHash> suspicious;
  if (options.guard_suspicious_lhs) {
    EngineRef shared(engine, &dirty);
    for (const Fd& fd : accepted) {
      for (const Cell& cell : shared->G3RemovalCells(fd)) {
        suspicious.insert(cell);
      }
    }
  }

  for (const Fd& fd : accepted) {
    // Group rows by the FD's LHS projection on the *current* table state.
    const std::vector<int> cols = fd.lhs.ToVector();
    std::unordered_map<std::vector<ValueCode>, std::vector<TupleId>, VecHash>
        groups;
    std::vector<ValueCode> key(cols.size());
    for (TupleId r = 0; r < result.repaired.NumRows(); ++r) {
      for (size_t i = 0; i < cols.size(); ++i) {
        key[i] = result.repaired.Code(r, cols[i]);
      }
      groups[key].push_back(r);
    }
    for (const auto& [k, group] : groups) {
      if (group.size() < 2) continue;
      // Majority RHS value; ties break toward the first-seen value.
      std::unordered_map<ValueCode, size_t> counts;
      std::vector<ValueCode> first_seen;
      for (TupleId r : group) {
        ValueCode code = result.repaired.Code(r, fd.rhs);
        if (counts[code]++ == 0) first_seen.push_back(code);
      }
      if (counts.size() <= 1) continue;
      ValueCode majority = first_seen[0];
      for (ValueCode code : first_seen) {
        if (counts[code] > counts[majority]) majority = code;
      }
      // Require solid support: a near-tie majority is a coin flip, not a
      // repair (frequent in the tiny groups of incidental FDs).
      if (counts[majority] <
          static_cast<size_t>(options.min_majority_support)) {
        continue;
      }
      bool strict = true;
      for (ValueCode code : first_seen) {
        if (code != majority && counts[code] == counts[majority]) {
          strict = false;
          break;
        }
      }
      if (!strict) continue;
      const std::string majority_value =
          result.repaired.pool().Lookup(majority);
      for (TupleId r : group) {
        if (result.repaired.Code(r, fd.rhs) == majority) continue;
        const Cell cell{r, fd.rhs};
        if (repaired_cells.contains(cell)) continue;  // already fixed
        // LHS-vs-RHS guard: if another accepted FD blames one of this
        // tuple's LHS cells, the tuple was likely relocated into this
        // group by that LHS error; leave the RHS alone.
        if (options.guard_suspicious_lhs) {
          bool lhs_suspect = false;
          for (int b : fd.lhs) {
            if (suspicious.contains(Cell{r, b})) {
              lhs_suspect = true;
              break;
            }
          }
          if (lhs_suspect) continue;
        }
        repaired_cells.insert(cell);
        CellRepair repair;
        repair.cell = cell;
        repair.old_value = result.repaired.Value(cell);
        repair.new_value = majority_value;
        result.repaired.SetValue(cell.row, cell.col, majority_value);
        result.repairs.push_back(std::move(repair));
      }
    }
  }
  return result;
}

RepairMetrics EvaluateRepairs(const Relation& clean, const GroundTruth& truth,
                              const RepairResult& result) {
  RepairMetrics metrics;
  metrics.repairs = result.repairs.size();
  metrics.total_errors = truth.NumChanged();
  for (const CellRepair& repair : result.repairs) {
    if (repair.new_value == clean.Value(repair.cell)) {
      ++metrics.correct_repairs;
    }
  }
  for (const Cell& cell : truth.ChangedCells()) {
    if (result.repaired.Value(cell) == clean.Value(cell)) {
      ++metrics.errors_fixed;
    }
  }
  return metrics;
}

}  // namespace uguide
