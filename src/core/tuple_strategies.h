#ifndef UGUIDE_CORE_TUPLE_STRATEGIES_H_
#define UGUIDE_CORE_TUPLE_STRATEGIES_H_

#include <memory>

#include "core/strategy.h"

namespace uguide {

/// Tuning knobs for the tuple-based strategies (§6).
struct TupleStrategyOptions {
  /// Seed for the strategies' own sampling (independent of the expert's).
  uint64_t seed = 23;

  /// LHS-size bound for the exact FD discovery run on the accepted sample
  /// TS at the end of every strategy.
  int max_lhs_size = 4;

  /// Saturation-set sampling: cap on the number of saturated sets
  /// materialized from the dirty table's FDs (guards the exponential worst
  /// case of the closed-set lattice).
  int max_saturated_sets = 5000;

  /// Oracle: number of candidate clean tuples scored per pick.
  int oracle_pool = 400;
};

/// Tuple-Sampling-Uniform (Algorithm 6): uniform random tuples, validated
/// by the expert; the FDs of the accepted sample are returned.
std::unique_ptr<Strategy> MakeTupleSamplingUniform(
    const TupleStrategyOptions& options = {});

/// Tuple-Sampling-Violation-Weighting (Algorithm 7): sampling probability
/// inversely related to the tuple's candidate-FD violation count, so fewer
/// questions are wasted on dirty tuples.
std::unique_ptr<Strategy> MakeTupleSamplingViolationWeighting(
    const TupleStrategyOptions& options = {});

/// Tuple-Sampling-Saturation-Sets (Algorithm 8): additionally requires a
/// sampled tuple to realize an uncovered saturated set (the Armstrong-
/// relation pair condition), attacking false-positive FDs directly.
std::unique_ptr<Strategy> MakeTupleSamplingSaturationSets(
    const TupleStrategyOptions& options = {});

/// TupleQ-Oracle baseline (§7.1): peeks at the ground truth, asks only
/// clean tuples, and picks each one to invalidate the most surviving
/// false-positive candidate FDs. Requires QuestionContext::truth_for_oracle.
std::unique_ptr<Strategy> MakeTupleQOracle(
    const TupleStrategyOptions& options = {});

}  // namespace uguide

#endif  // UGUIDE_CORE_TUPLE_STRATEGIES_H_
