#ifndef UGUIDE_CORE_UGUIDE_H_
#define UGUIDE_CORE_UGUIDE_H_

/// \file
/// \brief Umbrella header: the full public API of the UGuide library.
///
/// UGuide reproduces "UGuide: User-Guided Discovery of FD-Detectable
/// Errors" (SIGMOD 2017): given a dirty table and a question budget, it
/// discovers candidate functional dependencies, interactively questions an
/// expert (cells, tuples, or FDs), and reports the erroneous cells the
/// validated FDs detect.
///
/// Typical flow (see examples/quickstart.cpp):
///
///   Relation clean = GenerateHospital({.rows = 5000});
///   FdSet fds = DiscoverFds(clean).ValueOrDie();
///   DirtyDataset dirty = InjectErrors(clean, fds, {}).ValueOrDie();
///   Session session = Session::Create(clean, dirty, {}).ValueOrDie();
///   auto strategy = MakeFdQBudgetedMaxCoverage();
///   SessionReport report = session.Run(*strategy);
///   std::cout << report.metrics.ToString() << "\n";

#include "cfd/cfd.h"
#include "cfd/cfd_discovery.h"
#include "cfd/tableau.h"
#include "common/attribute_set.h"
#include "common/csv.h"
#include "common/fault_injection.h"
#include "common/logging.h"
#include "common/result.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/string_pool.h"
#include "common/thread_pool.h"
#include "core/candidate_gen.h"
#include "core/cell_strategies.h"
#include "core/fd_strategies.h"
#include "core/metrics.h"
#include "core/repair.h"
#include "core/session.h"
#include "core/session_journal.h"
#include "core/session_state.h"
#include "core/strategy.h"
#include "core/tuple_strategies.h"
#include "datagen/generators.h"
#include "discovery/partition.h"
#include "discovery/relaxation.h"
#include "discovery/tane.h"
#include "errorgen/error_generator.h"
#include "fd/armstrong.h"
#include "fd/closure.h"
#include "fd/fd.h"
#include "oracle/cost_model.h"
#include "oracle/expert.h"
#include "oracle/resilient_expert.h"
#include "oracle/simulated_expert.h"
#include "relation/relation.h"
#include "relation/schema.h"
#include "violations/bipartite_graph.h"
#include "violations/violation_detector.h"
#include "violations/violation_engine.h"

#endif  // UGUIDE_CORE_UGUIDE_H_
