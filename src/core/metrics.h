#ifndef UGUIDE_CORE_METRICS_H_
#define UGUIDE_CORE_METRICS_H_

#include <cstddef>
#include <string>
#include <vector>

#include "errorgen/error_generator.h"
#include "fd/fd.h"
#include "relation/relation.h"
#include "violations/violation_detector.h"

namespace uguide {

class ViolationEngine;

/// \brief Error-detection quality of an accepted FD set against the true
/// violation set E_T (§7.1 "Performance Measures").
///
/// Detections are the union of the accepted FDs' violating cells on the
/// dirty table. Following the paper, a detection is a true positive when
/// the cell violates some true FD (it is in E_T) and a false positive
/// otherwise; a false negative is a cell of E_T no accepted FD flags.
struct DetectionMetrics {
  size_t detections = 0;
  size_t true_positives = 0;
  size_t false_positives = 0;
  size_t false_negatives = 0;
  size_t total_true_errors = 0;

  /// Secondary, ledger-based view: how many of the error generator's
  /// injected cells were flagged. The FD-detectable set E_T and the
  /// injected set coincide for the FD-targeted error models but diverge
  /// for random errors (most of which no FD can see) -- the paper's
  /// Fig. 3(c)/4(c) panels measure against injected errors.
  size_t injected_detected = 0;
  size_t total_injected = 0;

  /// "% of True Violations" axis of the paper's figures:
  /// detected fraction of E_T, in percent.
  double TrueViolationPct() const {
    return total_true_errors == 0
               ? 0.0
               : 100.0 * static_cast<double>(true_positives) /
                     static_cast<double>(total_true_errors);
  }

  /// "% of False Violations": false detections as a share of all
  /// detections, in percent (0 when nothing is detected).
  double FalseViolationPct() const {
    return detections == 0 ? 0.0
                           : 100.0 * static_cast<double>(false_positives) /
                                 static_cast<double>(detections);
  }

  double Precision() const {
    return detections == 0 ? 1.0
                           : static_cast<double>(true_positives) /
                                 static_cast<double>(detections);
  }

  double Recall() const {
    return total_true_errors == 0
               ? 1.0
               : static_cast<double>(true_positives) /
                     static_cast<double>(total_true_errors);
  }

  double F1() const {
    const double p = Precision();
    const double r = Recall();
    return p + r == 0.0 ? 0.0 : 2.0 * p * r / (p + r);
  }

  /// Flagged fraction of the cells the error generator actually changed,
  /// in percent (0 when no ledger was supplied).
  double InjectedRecallPct() const {
    return total_injected == 0
               ? 0.0
               : 100.0 * static_cast<double>(injected_detected) /
                     static_cast<double>(total_injected);
  }

  std::string ToString() const;
};

/// Computes detection metrics for `accepted` on `dirty` against the true
/// violation set. When `injected` is non-null, the ledger-based fields
/// (injected_detected / total_injected) are filled in as well.
DetectionMetrics EvaluateDetections(const Relation& dirty,
                                    const FdSet& accepted,
                                    const TrueViolationSet& true_violations,
                                    const GroundTruth* injected = nullptr);

/// As above, detecting violations through a shared engine (sessions pass
/// theirs so evaluation reuses the LHS partitions the strategy warmed).
DetectionMetrics EvaluateDetections(ViolationEngine& engine,
                                    const FdSet& accepted,
                                    const TrueViolationSet& true_violations,
                                    const GroundTruth* injected = nullptr);

/// The deduplicated set of cells flagged by any FD of `accepted` on
/// `dirty`, in row-major order.
std::vector<Cell> AllDetections(const Relation& dirty, const FdSet& accepted);

/// As above, through a shared engine.
std::vector<Cell> AllDetections(ViolationEngine& engine,
                                const FdSet& accepted);

}  // namespace uguide

#endif  // UGUIDE_CORE_METRICS_H_
