#ifndef UGUIDE_CORE_SESSION_H_
#define UGUIDE_CORE_SESSION_H_

#include <string>

#include "core/candidate_gen.h"
#include "core/metrics.h"
#include "core/session_journal.h"
#include "core/strategy.h"
#include "errorgen/error_generator.h"
#include "oracle/cost_model.h"
#include "oracle/resilient_expert.h"
#include "relation/relation.h"

namespace uguide {

/// Configuration of one experimental session.
struct SessionConfig {
  CandidateGenOptions candidate_options;
  CostModel cost;
  double budget = 500.0;
  /// Probability the simulated expert answers "I don't know" (§7.2.6).
  double idk_rate = 0.0;
  /// Probability an answered question gets the opposite answer (the
  /// unreliable-expert robustness model, §9 future work).
  double wrong_rate = 0.0;
  uint64_t expert_seed = 11;
  /// Majority voting over repeated questions (robustness mitigation):
  /// each question is asked `expert_votes` times and the majority wins.
  /// Note the *caller* should scale the budget by 1/votes to model the
  /// extra effort; Session::Run does this automatically.
  int expert_votes = 1;
};

/// Everything a strategy run produced, plus its evaluation.
struct SessionReport {
  std::string strategy_name;
  StrategyResult result;
  DetectionMetrics metrics;
  /// Retry surcharge included in result.cost_spent (resilient runs only).
  double retry_cost = 0.0;
  /// Questions that degraded to kIdk after retries/deadline ran out.
  int questions_exhausted = 0;
  /// Answered questions served from the journal on resume.
  int questions_replayed = 0;
  /// The live-data epoch the run executed against (0 = the immutable
  /// base relation; see src/live/).
  uint64_t data_version = 0;
};

/// Per-run fault-tolerance options for Session::Run.
struct SessionRunOptions {
  /// When non-empty, every answered question is durably appended here
  /// (write + fsync per record) before the strategy sees the answer.
  std::string journal_path;
  /// Replay `journal_path` before asking live questions, reproducing an
  /// interrupted run bit-for-bit (see DESIGN.md, "Fault tolerance").
  bool resume = false;
  /// Journal durability policy (`--journal-fsync=every|batch`). kBatch
  /// amortizes the per-record fsync; a crash can lose up to one batch of
  /// trailing records, which a resume simply re-asks.
  JournalFsyncMode journal_fsync = JournalFsyncMode::kEvery;
  /// Wrap the expert in the Flaky/Retrying decorators so injected faults
  /// are retried with backoff instead of crashing the strategy.
  bool resilient = false;
  RetryPolicy retry;
  /// Identity of the data the run executes against, pinned into the
  /// journal header (v2 `dhash=`/`dver=`) and stamped onto the report.
  /// Resuming a journal written under a different pair fails with a
  /// header mismatch instead of replaying answers onto different data.
  uint64_t content_hash = 0;
  uint64_t data_version = 0;
};

/// \brief End-to-end experiment harness mirroring Figure 1.
///
/// Construction performs the offline phase once: discover the true FDs
/// Sigma_TC on the clean table (the simulated expert's knowledge, §7.1),
/// materialize E_T (the cells violating Sigma_TC on the dirty table), and
/// run candidate generation (§3.1) on the dirty table. Run() then executes
/// one strategy with a fresh simulated expert and evaluates its detections
/// against E_T; it can be called repeatedly (e.g., across a budget sweep)
/// because strategies and the session are stateless across runs.
class Session {
 public:
  /// Builds a session. `clean` is only used to derive Sigma_TC; the
  /// session keeps copies of the dirty table and ledger.
  static Result<Session> Create(const Relation& clean, DirtyDataset dataset,
                                SessionConfig config = {});

  /// Rebases `base` onto a mutated copy of its dirty relation: the ground
  /// truth, true FDs, candidate set, and config are carried over frozen
  /// (the expert's knowledge does not change when data arrives), while
  /// E_T — the true-violation set — is recomputed against the mutated
  /// table. This is the per-epoch session of the live-mutation layer; the
  /// full-rebuild reference arm of the storm suite calls the same
  /// function, so both arms agree byte-for-byte by construction.
  static Session Rebase(const Session& base, Relation mutated);

  /// Runs `strategy` under the session's budget and evaluates it.
  SessionReport Run(Strategy& strategy) const;

  /// Runs `strategy` under an explicit budget override.
  SessionReport Run(Strategy& strategy, double budget) const;

  /// Runs `strategy` with fault-tolerance options: journaling, crash-safe
  /// resume, and the retry/backoff expert stack. Fails on journal I/O or
  /// header-mismatch errors instead of aborting.
  Result<SessionReport> Run(Strategy& strategy, double budget,
                            const SessionRunOptions& options) const;

  const Relation& dirty() const { return dirty_; }
  /// The error-injection ledger (which cells the generator changed).
  const GroundTruth& truth() const { return truth_; }
  /// E_T: the cells violating the true FDs on the dirty table.
  const TrueViolationSet& true_violations() const { return true_violations_; }
  const FdSet& true_fds() const { return true_fds_; }
  const FdSet& exact_fds() const { return candidates_.exact; }
  const FdSet& candidates() const { return candidates_.candidates; }
  /// True iff candidate generation was cut short by a discovery deadline.
  bool discovery_truncated() const { return candidates_.truncated; }
  /// True iff candidate generation was cut short by its memory budget's
  /// hard limit. The session consumes the partial lattice identically in
  /// both truncation cases — strategies only ever see the candidate set.
  bool discovery_memory_truncated() const {
    return candidates_.memory_truncated;
  }
  const SessionConfig& config() const { return config_; }

 private:
  Session(Relation dirty, GroundTruth truth, FdSet true_fds,
          CandidateSet candidates, SessionConfig config);

  Relation dirty_;
  GroundTruth truth_;
  FdSet true_fds_;
  TrueViolationSet true_violations_;
  CandidateSet candidates_;
  SessionConfig config_;
};

}  // namespace uguide

#endif  // UGUIDE_CORE_SESSION_H_
