#include "core/session_state.h"

#include <algorithm>
#include <utility>

#include "common/thread_pool.h"
#include "core/cell_strategies.h"
#include "core/fd_strategies.h"
#include "core/tuple_strategies.h"
#include "violations/violation_engine.h"

namespace uguide {

/// \brief The Expert the strategy talks to inside the machine.
///
/// Lives on the strategy fiber. Each question becomes a JournalRecord (the
/// same shape JournalingExpert built), is matched against the replay tail
/// if one is loaded, published to the driver, and parks the fiber until the
/// driver submits an answer. Replayed questions are *still published* — the
/// driver must ask its own expert so any stateful stack (RNG, retry
/// counters) advances exactly as in the original run — but the submitted
/// answer is discarded in favor of the journal's, which is the inverted
/// twin of JournalingExpert's forward-and-discard replay.
class SessionStateMachine::ChannelExpert : public Expert {
 public:
  ChannelExpert(SessionStateMachine* machine, std::vector<JournalRecord> replay,
                const CostModel& cost, int num_attributes)
      : machine_(machine),
        replay_(std::move(replay)),
        cost_(cost),
        num_attributes_(num_attributes) {}

  Answer IsCellErroneous(const Cell& cell) override {
    JournalRecord record;
    record.kind = QuestionKind::kCell;
    record.cell = cell;
    record.cost = cost_.CellCost();
    return Ask(std::move(record));
  }

  Answer IsTupleClean(TupleId row) override {
    JournalRecord record;
    record.kind = QuestionKind::kTuple;
    record.row = row;
    record.cost = cost_.TupleCost(num_attributes_);
    return Ask(std::move(record));
  }

  Answer IsFdValid(const Fd& fd) override {
    JournalRecord record;
    record.kind = QuestionKind::kFd;
    record.fd = fd;
    record.cost = cost_.FdCost(fd, 0);
    return Ask(std::move(record));
  }

 private:
  Answer Ask(JournalRecord record) {
    SessionStateMachine* m = machine_;
    // An abandoned machine answers kIdk without publishing: every strategy
    // charges positive cost per question, so the run drains its budget and
    // winds down without another party in the loop. No yield — the
    // abandoning thread runs the wind-down to completion.
    if (m->abandoned_) return Answer::kIdk;

    bool replayed = false;
    if (!replay_abandoned_ && replay_pos_ < replay_.size()) {
      if (SameJournalQuestion(replay_[replay_pos_], record)) {
        replayed = true;
      } else {
        // The strategy diverged from the journal (different build or
        // inputs). Replay is no longer trustworthy; continue live.
        ++mismatches_;
        replay_abandoned_ = true;
      }
    }

    // Publish the question and park the fiber. The machine's mutex is held
    // by the resuming thread, and every mutation below runs on whichever
    // thread resumed us, so the driver-visible state is always guarded.
    SessionQuestion question;
    question.kind = record.kind;
    question.cell = record.cell;
    question.row = record.row;
    question.fd = record.fd;
    question.index = m->next_index_++;
    question.replayed = replayed;
    question.nominal_cost = record.cost;
    m->pending_question_ = question;
    m->pending_answered_ = false;
    m->pending_delivered_ = false;
    Fiber::Yield();

    m->pending_question_.reset();
    if (!m->pending_answered_) {
      // Abandoned while parked: the submission never arrived.
      return Answer::kIdk;
    }
    const AnswerSubmission submission = m->submission_;
    m->pending_answered_ = false;

    // The resilience surcharge accrues for replayed questions too: the
    // driver's retry stack really was asked (and really did back off), just
    // as the live expert underneath JournalingExpert was.
    m->retry_cost_total_ += submission.retry_cost;
    if (submission.exhausted) ++m->exhausted_total_;

    if (replayed) {
      const Answer answer = replay_[replay_pos_].answer;
      ++replay_pos_;
      ++m->served_replays_;
      return answer;
    }

    record.answer = submission.answer;
    if (m->writer_.has_value() && m->write_status_.ok()) {
      // Durability precedes visibility: this append returns before the
      // strategy sees the answer, so no later question can exist whose
      // predecessor is not journaled.
      Status status = m->writer_->Append(record);
      if (!status.ok()) m->write_status_ = std::move(status);
    }
    return submission.answer;
  }

  SessionStateMachine* machine_;
  std::vector<JournalRecord> replay_;
  size_t replay_pos_ = 0;
  bool replay_abandoned_ = false;
  int mismatches_ = 0;
  CostModel cost_;
  int num_attributes_;
};

SessionStateMachine::SessionStateMachine(const Session& session,
                                         Strategy& strategy, double budget,
                                         SessionStepOptions options)
    : session_(session),
      strategy_(strategy),
      budget_(budget),
      options_(std::move(options)) {
  if (options_.engine != nullptr) {
    engine_ = options_.engine;
  } else {
    MemoryBudget* memory =
        options_.memory_budget != nullptr
            ? options_.memory_budget
            : session_.config().candidate_options.memory_budget;
    owned_engine_ =
        std::make_unique<ViolationEngine>(&session_.dirty(), memory);
    engine_ = owned_engine_.get();
  }
  if (options_.pool != nullptr) {
    pool_ = options_.pool;
  } else {
    owned_pool_ = std::make_unique<ThreadPool>(
        std::max(1, session_.config().candidate_options.num_threads));
    pool_ = owned_pool_.get();
  }
}

Result<std::unique_ptr<SessionStateMachine>> SessionStateMachine::Start(
    const Session& session, Strategy& strategy, double budget,
    SessionStepOptions options) {
  const SessionConfig& config = session.config();
  const int votes = std::max(1, config.expert_votes);

  JournalHeader header;
  header.strategy_name = std::string(strategy.name());
  header.budget = budget;
  header.expert_seed = config.expert_seed;
  header.expert_votes = votes;
  header.idk_rate = config.idk_rate;
  header.wrong_rate = config.wrong_rate;
  header.content_hash = options.content_hash;
  header.data_version = options.data_version;

  std::vector<JournalRecord> replay;
  JournalWriterOptions writer_options;
  writer_options.fsync_mode = options.journal_fsync;
  if (options.resume) {
    if (options.journal_path.empty()) {
      return Status::InvalidArgument("resume requires a journal path");
    }
    // A DataLoss here (v2 checksum failure) propagates unchanged: the
    // caller must quarantine the file, not retry the resume.
    UGUIDE_ASSIGN_OR_RETURN(LoadedJournal journal,
                            LoadJournal(options.journal_path));
    Status header_ok = ValidateJournalHeader(header, journal.header);
    if (!header_ok.ok()) {
      return Status::InvalidArgument("journal " + options.journal_path + ": " +
                                     header_ok.message());
    }
    replay = std::move(journal.records);
    writer_options.resume = true;
    writer_options.version = journal.version;
    writer_options.resume_offset = journal.resume_offset;
  }

  std::optional<JournalWriter> writer;
  if (!options.journal_path.empty()) {
    UGUIDE_ASSIGN_OR_RETURN(
        writer, JournalWriter::Open(options.journal_path, header,
                                    writer_options));
  }

  std::unique_ptr<SessionStateMachine> machine(
      new SessionStateMachine(session, strategy, budget, std::move(options)));
  machine->writer_ = std::move(writer);
  machine->channel_ = std::make_unique<ChannelExpert>(
      machine.get(), std::move(replay), config.cost,
      session.dirty().NumAttributes());
  machine->fiber_ = std::make_unique<Fiber>(
      [m = machine.get()] { m->PumpMain(); });
  return machine;
}

SessionStateMachine::~SessionStateMachine() { Abandon(); }

void SessionStateMachine::PumpMain() {
  const SessionConfig& config = session_.config();
  QuestionContext ctx;
  ctx.dirty = &session_.dirty();
  ctx.candidates = &session_.candidates();
  ctx.expert = channel_.get();
  ctx.cost = config.cost;
  // Majority voting multiplies the expert effort per question; charge it
  // against the budget (same division the monolithic Run performed).
  ctx.budget = budget_ / std::max(1, config.expert_votes);
  ctx.exact_fds = &session_.exact_fds();
  ctx.true_fds = &session_.true_fds();
  ctx.true_violations = &session_.true_violations();
  ctx.injected = &session_.truth();
  ctx.engine = engine_;
  ctx.graph = options_.graph;
  ctx.pool = pool_;

  result_ = strategy_.Run(ctx);
  done_ = true;
}

void SessionStateMachine::StepLocked() {
  // The fiber runs the strategy inline on this thread until the channel
  // expert publishes a question (and yields) or the strategy returns.
  if (!done_ && !fiber_->finished()) fiber_->Resume();
}

std::optional<SessionQuestion> SessionStateMachine::NextQuestion() {
  std::unique_lock<std::mutex> lock(mu_);
  if (!done_ && !abandoned_ && !pending_question_.has_value()) {
    StepLocked();
  }
  if (pending_question_.has_value() && !pending_answered_) {
    pending_delivered_ = true;
    return pending_question_;
  }
  return std::nullopt;
}

Status SessionStateMachine::SubmitAnswer(const AnswerSubmission& submission) {
  std::unique_lock<std::mutex> lock(mu_);
  if (abandoned_) {
    return Status::FailedPrecondition("session abandoned");
  }
  // A question only counts as outstanding once NextQuestion handed it to
  // the driver — an answer can never race ahead of its question.
  if (!pending_question_.has_value() || pending_answered_ ||
      !pending_delivered_) {
    return Status::FailedPrecondition("no question outstanding");
  }
  submission_ = submission;
  pending_answered_ = true;
  // Consume the answer now: the fiber journals it and either publishes the
  // next question or finishes, all before SubmitAnswer returns — the same
  // durability ordering the pump-thread machine guaranteed.
  StepLocked();
  return Status::OK();
}

Result<SessionReport> SessionStateMachine::Finish() {
  std::unique_lock<std::mutex> lock(mu_);
  if (finished_) {
    return Status::FailedPrecondition("session already finished");
  }
  if (!done_ && !abandoned_ && !pending_question_.has_value()) {
    // The driver never pulled a first question (or the machine is mid
    // stream with nothing outstanding): advance to the next boundary.
    StepLocked();
  }
  if (!done_) {
    return Status::FailedPrecondition(
        "a question is outstanding; answer it or Abandon first");
  }
  finished_ = true;

  SessionReport report;
  report.strategy_name = std::string(strategy_.name());
  report.result = result_;
  // Retries are charged after the fact: the strategy budgets with nominal
  // costs, the report carries the true (surcharged) spend.
  report.retry_cost = retry_cost_total_;
  report.result.cost_spent += retry_cost_total_;
  report.questions_exhausted = exhausted_total_;
  report.questions_replayed = served_replays_;
  report.data_version = options_.data_version;
  if (!write_status_.ok()) return write_status_;
  if (writer_.has_value()) {
    // The durable end marker: recovery classifies this journal as finished
    // (GC-eligible) instead of resumable.
    UGUIDE_RETURN_NOT_OK(writer_->AppendEnd(report.result.questions_asked,
                                            report.result.cost_spent));
    UGUIDE_RETURN_NOT_OK(writer_->Close());
    writer_.reset();
  }
  report.metrics =
      EvaluateDetections(*engine_, report.result.accepted_fds,
                         session_.true_violations(), &session_.truth());
  return report;
}

void SessionStateMachine::Abandon() {
  std::unique_lock<std::mutex> lock(mu_);
  if (abandoned_ && done_) return;
  abandoned_ = true;
  // Wind the strategy down on this thread: the parked question (if any)
  // and every later one are answered kIdk by the channel expert.
  while (!done_ && fiber_ != nullptr && !fiber_->finished()) {
    fiber_->Resume();
  }
  if (writer_.has_value()) {
    // Best effort: Abandon has no failure channel, and the journal is
    // already durable up to the last acknowledged answer.
    writer_->Close().IgnoreError();
    writer_.reset();
  }
}

bool SessionStateMachine::done() const {
  std::lock_guard<std::mutex> lock(mu_);
  return done_;
}

int SessionStateMachine::questions_replayed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return served_replays_;
}

Status SessionStateMachine::write_status() const {
  std::lock_guard<std::mutex> lock(mu_);
  return write_status_;
}

Result<SessionReport> DriveSession(SessionStateMachine& machine, Expert& expert,
                                   RetryingExpert* retrying) {
  while (std::optional<SessionQuestion> question = machine.NextQuestion()) {
    AnswerSubmission submission;
    switch (question->kind) {
      case QuestionKind::kCell:
        submission.answer = expert.IsCellErroneous(question->cell);
        break;
      case QuestionKind::kTuple:
        submission.answer = expert.IsTupleClean(question->row);
        break;
      case QuestionKind::kFd:
        submission.answer = expert.IsFdValid(question->fd);
        break;
    }
    if (retrying != nullptr) {
      submission.retry_cost = retrying->last_retry_cost();
      submission.exhausted = retrying->last_exhausted();
    }
    UGUIDE_RETURN_NOT_OK(machine.SubmitAnswer(submission));
  }
  return machine.Finish();
}

Result<std::unique_ptr<Strategy>> MakeStrategyByName(const std::string& name) {
  if (name == "CellQ-HS") return MakeCellQHittingSet();
  if (name == "CellQ-Greedy") return MakeCellQGreedy();
  if (name == "CellQ-SUMS") return MakeCellQSums();
  if (name == "CellQ-Oracle") return MakeCellQOracle();
  if (name == "FDQ-BMC") return MakeFdQBudgetedMaxCoverage();
  if (name == "FDQ-Greedy") return MakeFdQGreedy();
  if (name == "FDQ-Oracle") return MakeFdQOracle();
  if (name == "Sampling-Uniform") return MakeTupleSamplingUniform();
  if (name == "Sampling-Violation") return MakeTupleSamplingViolationWeighting();
  if (name == "Sampling-Saturation") return MakeTupleSamplingSaturationSets();
  if (name == "TupleQ-Oracle") return MakeTupleQOracle();
  return Status::NotFound("unknown strategy: " + name);
}

std::vector<std::string> KnownStrategyNames() {
  return {"CellQ-HS",         "CellQ-Greedy",      "CellQ-SUMS",
          "CellQ-Oracle",     "FDQ-BMC",           "FDQ-Greedy",
          "FDQ-Oracle",       "Sampling-Uniform",  "Sampling-Violation",
          "Sampling-Saturation", "TupleQ-Oracle"};
}

}  // namespace uguide
