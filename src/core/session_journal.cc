#include "core/session_journal.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <limits>
#include <sstream>
#include <utility>

#include "common/fault_injection.h"

namespace uguide {

namespace {

const char* KindTag(QuestionKind kind) {
  switch (kind) {
    case QuestionKind::kCell:
      return "c";
    case QuestionKind::kTuple:
      return "t";
    case QuestionKind::kFd:
      return "f";
  }
  return "?";
}

/// Formats a double as a C hexfloat: exact round-trip through strtod.
std::string HexDouble(double value) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%a", value);
  return buf;
}

bool ParseStrictDouble(std::string_view token, double* out) {
  std::string owned(token);
  char* end = nullptr;
  errno = 0;
  double value = std::strtod(owned.c_str(), &end);
  if (errno != 0 || end != owned.c_str() + owned.size() || owned.empty()) {
    return false;
  }
  *out = value;
  return true;
}

bool ParseU64(std::string_view token, uint64_t* out) {
  std::string owned(token);
  char* end = nullptr;
  errno = 0;
  uint64_t value = std::strtoull(owned.c_str(), &end, 10);
  if (errno != 0 || end != owned.c_str() + owned.size() || owned.empty()) {
    return false;
  }
  *out = value;
  return true;
}

bool ParseHexU64(std::string_view token, uint64_t* out) {
  std::string owned(token);
  char* end = nullptr;
  errno = 0;
  uint64_t value = std::strtoull(owned.c_str(), &end, 16);
  if (errno != 0 || end != owned.c_str() + owned.size() || owned.empty()) {
    return false;
  }
  *out = value;
  return true;
}

bool ParseInt(std::string_view token, int* out) {
  uint64_t value = 0;
  bool negative = false;
  if (!token.empty() && token.front() == '-') {
    negative = true;
    token.remove_prefix(1);
  }
  if (!ParseU64(token, &value)) return false;
  // Reject out-of-range magnitudes instead of casting: a hostile journal
  // line like "c -2147483648 0 ..." used to reach `-static_cast<int>(...)`
  // and overflow (UB, found by the journal fuzz target). INT_MIN itself is
  // rejected too — no journal field legitimately holds it.
  if (value > static_cast<uint64_t>(std::numeric_limits<int>::max())) {
    return false;
  }
  *out = negative ? -static_cast<int>(value) : static_cast<int>(value);
  return true;
}

bool ParseAnswer(std::string_view token, Answer* out) {
  if (token == "yes") {
    *out = Answer::kYes;
  } else if (token == "no") {
    *out = Answer::kNo;
  } else if (token == "idk") {
    *out = Answer::kIdk;
  } else {
    return false;
  }
  return true;
}

std::vector<std::string_view> SplitTokens(std::string_view line) {
  std::vector<std::string_view> tokens;
  size_t i = 0;
  while (i < line.size()) {
    while (i < line.size() && line[i] == ' ') ++i;
    size_t start = i;
    while (i < line.size() && line[i] != ' ') ++i;
    if (i > start) tokens.push_back(line.substr(start, i - start));
  }
  return tokens;
}

Status Errno(const std::string& action, const std::string& path) {
  return Status::IoError(action + " " + path + ": " + std::strerror(errno));
}

}  // namespace

bool SameJournalQuestion(const JournalRecord& a, const JournalRecord& b) {
  if (a.kind != b.kind) return false;
  switch (a.kind) {
    case QuestionKind::kCell:
      return a.cell == b.cell;
    case QuestionKind::kTuple:
      return a.row == b.row;
    case QuestionKind::kFd:
      return a.fd == b.fd;
  }
  return false;
}

bool JournalRecord::operator==(const JournalRecord& other) const {
  return SameJournalQuestion(*this, other) && answer == other.answer &&
         cost == other.cost;
}

bool JournalHeader::Matches(const JournalHeader& other) const {
  return strategy_name == other.strategy_name && budget == other.budget &&
         expert_seed == other.expert_seed &&
         expert_votes == other.expert_votes && idk_rate == other.idk_rate &&
         wrong_rate == other.wrong_rate;
}

std::string FormatJournalRecord(const JournalRecord& record) {
  std::ostringstream out;
  out << KindTag(record.kind) << ' ';
  switch (record.kind) {
    case QuestionKind::kCell:
      out << record.cell.row << ' ' << record.cell.col;
      break;
    case QuestionKind::kTuple:
      out << record.row;
      break;
    case QuestionKind::kFd: {
      char mask[24];
      std::snprintf(mask, sizeof(mask), "%" PRIx64, record.fd.lhs.mask());
      out << mask << ' ' << record.fd.rhs;
      break;
    }
  }
  out << ' ' << AnswerName(record.answer) << ' ' << HexDouble(record.cost);
  return out.str();
}

Result<JournalRecord> ParseJournalRecord(std::string_view line) {
  const std::vector<std::string_view> tokens = SplitTokens(line);
  const Status malformed =
      Status::InvalidArgument("malformed journal record: " + std::string(line));
  if (tokens.empty()) return malformed;

  JournalRecord record;
  size_t expected = 0;
  if (tokens[0] == "c") {
    record.kind = QuestionKind::kCell;
    expected = 5;
    if (tokens.size() != expected || !ParseInt(tokens[1], &record.cell.row) ||
        !ParseInt(tokens[2], &record.cell.col) || record.cell.row < 0 ||
        record.cell.col < 0 ||
        record.cell.col >= AttributeSet::kMaxAttributes) {
      return malformed;
    }
  } else if (tokens[0] == "t") {
    record.kind = QuestionKind::kTuple;
    expected = 4;
    int row = 0;
    if (tokens.size() != expected || !ParseInt(tokens[1], &row) || row < 0) {
      return malformed;
    }
    record.row = row;
  } else if (tokens[0] == "f") {
    record.kind = QuestionKind::kFd;
    expected = 5;
    uint64_t mask = 0;
    int rhs = 0;
    // The rhs must be a legal attribute index: a journal is untrusted
    // input, and an out-of-range rhs would poison every later
    // AttributeSet::Contains (whose DCHECK aborts debug builds).
    if (tokens.size() != expected || !ParseHexU64(tokens[1], &mask) ||
        !ParseInt(tokens[2], &rhs) || rhs < 0 ||
        rhs >= AttributeSet::kMaxAttributes) {
      return malformed;
    }
    record.fd = Fd(AttributeSet(mask), rhs);
  } else {
    return malformed;
  }
  if (!ParseAnswer(tokens[expected - 2], &record.answer) ||
      !ParseStrictDouble(tokens[expected - 1], &record.cost)) {
    return malformed;
  }
  return record;
}

std::string FormatJournalHeader(const JournalHeader& header) {
  std::ostringstream out;
  out << "uguide-journal v=1 strategy=" << header.strategy_name
      << " budget=" << HexDouble(header.budget)
      << " seed=" << header.expert_seed << " votes=" << header.expert_votes
      << " idk=" << HexDouble(header.idk_rate)
      << " wrong=" << HexDouble(header.wrong_rate);
  return out.str();
}

Result<JournalHeader> ParseJournalHeader(std::string_view line) {
  const std::vector<std::string_view> tokens = SplitTokens(line);
  const Status malformed =
      Status::InvalidArgument("malformed journal header: " + std::string(line));
  if (tokens.size() != 8 || tokens[0] != "uguide-journal" || tokens[1] != "v=1")
    return malformed;

  JournalHeader header;
  bool seen[6] = {false, false, false, false, false, false};
  for (size_t i = 2; i < tokens.size(); ++i) {
    const std::string_view token = tokens[i];
    const size_t eq = token.find('=');
    if (eq == std::string_view::npos) return malformed;
    const std::string_view key = token.substr(0, eq);
    const std::string_view value = token.substr(eq + 1);
    if (key == "strategy") {
      header.strategy_name = std::string(value);
      seen[0] = true;
    } else if (key == "budget") {
      if (!ParseStrictDouble(value, &header.budget)) return malformed;
      seen[1] = true;
    } else if (key == "seed") {
      if (!ParseU64(value, &header.expert_seed)) return malformed;
      seen[2] = true;
    } else if (key == "votes") {
      if (!ParseInt(value, &header.expert_votes)) return malformed;
      seen[3] = true;
    } else if (key == "idk") {
      if (!ParseStrictDouble(value, &header.idk_rate)) return malformed;
      seen[4] = true;
    } else if (key == "wrong") {
      if (!ParseStrictDouble(value, &header.wrong_rate)) return malformed;
      seen[5] = true;
    } else {
      return malformed;
    }
  }
  for (bool s : seen) {
    if (!s) return malformed;
  }
  return header;
}

Status ValidateJournalHeader(const JournalHeader& expected,
                             const JournalHeader& found) {
  auto mismatch = [](const std::string& field, const std::string& want,
                     const std::string& got) {
    return Status::InvalidArgument(
        "journal header mismatch: field '" + field + "' expected " + want +
        ", found " + got +
        " — the journal was written under a different session "
        "configuration and cannot be resumed");
  };
  if (found.strategy_name != expected.strategy_name) {
    return mismatch("strategy", expected.strategy_name, found.strategy_name);
  }
  if (found.budget != expected.budget) {
    return mismatch("budget", std::to_string(expected.budget),
                    std::to_string(found.budget));
  }
  if (found.expert_seed != expected.expert_seed) {
    return mismatch("seed", std::to_string(expected.expert_seed),
                    std::to_string(found.expert_seed));
  }
  if (found.expert_votes != expected.expert_votes) {
    return mismatch("votes", std::to_string(expected.expert_votes),
                    std::to_string(found.expert_votes));
  }
  if (found.idk_rate != expected.idk_rate) {
    return mismatch("idk", std::to_string(expected.idk_rate),
                    std::to_string(found.idk_rate));
  }
  if (found.wrong_rate != expected.wrong_rate) {
    return mismatch("wrong", std::to_string(expected.wrong_rate),
                    std::to_string(found.wrong_rate));
  }
  return Status::OK();
}

Result<LoadedJournal> ParseJournalText(std::string_view contents,
                                       const std::string& origin) {
  // Split into lines, remembering whether the final line was terminated —
  // an unterminated tail is the footprint of a crash mid-append.
  std::vector<std::string_view> lines;
  size_t start = 0;
  bool terminated = true;
  const std::string_view view = contents;
  while (start < view.size()) {
    const size_t nl = view.find('\n', start);
    if (nl == std::string_view::npos) {
      lines.push_back(view.substr(start));
      terminated = false;
      break;
    }
    lines.push_back(view.substr(start, nl - start));
    start = nl + 1;
  }
  if (lines.empty()) {
    return Status::InvalidArgument("journal " + origin + " is empty");
  }

  LoadedJournal journal;
  UGUIDE_ASSIGN_OR_RETURN(journal.header, ParseJournalHeader(lines[0]));
  if (!terminated && lines.size() == 1) {
    // Header itself is torn; nothing trustworthy in the file.
    return Status::InvalidArgument("journal " + origin + " has a torn header");
  }
  for (size_t i = 1; i < lines.size(); ++i) {
    const bool is_tail = i + 1 == lines.size();
    if (is_tail && !terminated) {
      // A torn (unterminated) tail is dropped even if its prefix happens to
      // parse — a partial write proves nothing about the record.
      journal.torn_tail = true;
      break;
    }
    Result<JournalRecord> record = ParseJournalRecord(lines[i]);
    if (!record.ok()) {
      if (is_tail) {
        journal.torn_tail = true;
        break;
      }
      return Status::InvalidArgument("journal " + origin + " line " +
                                     std::to_string(i + 1) + ": " +
                                     record.status().ToString());
    }
    journal.records.push_back(*std::move(record));
  }
  return journal;
}

Result<LoadedJournal> LoadJournal(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Errno("cannot open journal", path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (in.bad()) return Status::IoError("read failed for journal " + path);
  return ParseJournalText(buffer.str(), path);
}

Result<JournalFsyncMode> ParseJournalFsyncMode(std::string_view text) {
  if (text == "every") return JournalFsyncMode::kEvery;
  if (text == "batch") return JournalFsyncMode::kBatch;
  return Status::InvalidArgument("unknown journal fsync mode '" +
                                 std::string(text) +
                                 "' (expected every|batch)");
}

Result<JournalWriter> JournalWriter::Open(const std::string& path,
                                          const JournalHeader& header,
                                          bool resume,
                                          JournalFsyncMode fsync_mode) {
  const int flags = O_WRONLY | O_CREAT | (resume ? O_APPEND : O_TRUNC);
  const int fd = ::open(path.c_str(), flags, 0644);
  if (fd < 0) return Errno("cannot open journal", path);
  JournalWriter writer(fd, fsync_mode);
  if (!resume) {
    const std::string line = FormatJournalHeader(header) + "\n";
    const ssize_t written = ::write(fd, line.data(), line.size());
    if (written != static_cast<ssize_t>(line.size())) {
      return Errno("cannot write journal header to", path);
    }
    if (::fsync(fd) != 0) return Errno("cannot fsync journal", path);
  }
  return writer;
}

JournalWriter::JournalWriter(JournalWriter&& other) noexcept
    : fd_(other.fd_),
      fsync_mode_(other.fsync_mode_),
      unsynced_(other.unsynced_) {
  other.fd_ = -1;
  other.unsynced_ = 0;
}

JournalWriter& JournalWriter::operator=(JournalWriter&& other) noexcept {
  if (this != &other) {
    Close().IgnoreError();
    fd_ = other.fd_;
    fsync_mode_ = other.fsync_mode_;
    unsynced_ = other.unsynced_;
    other.fd_ = -1;
    other.unsynced_ = 0;
  }
  return *this;
}

JournalWriter::~JournalWriter() { Close().IgnoreError(); }

Status JournalWriter::Append(const JournalRecord& record) {
  if (fd_ < 0) return Status::FailedPrecondition("journal writer is closed");
  const std::string line = FormatJournalRecord(record) + "\n";
  size_t off = 0;
  while (off < line.size()) {
    const ssize_t written = ::write(fd_, line.data() + off, line.size() - off);
    if (written < 0) {
      if (errno == EINTR) continue;
      return Status::IoError(std::string("journal append failed: ") +
                             std::strerror(errno));
    }
    off += static_cast<size_t>(written);
  }
  if (fsync_mode_ == JournalFsyncMode::kEvery) {
    if (::fsync(fd_) != 0) {
      return Status::IoError(std::string("journal fsync failed: ") +
                             std::strerror(errno));
    }
  } else {
    ++unsynced_;
    if (unsynced_ >= kBatchInterval) UGUIDE_RETURN_NOT_OK(Sync());
  }
  // Fires *after* the fsync: a crash@k plan leaves exactly k durable
  // records (at most k in batch mode), which the kill/resume tests assert.
  UGUIDE_FAULT_POINT("session.record");
  return Status::OK();
}

Status JournalWriter::Sync() {
  if (fd_ < 0) return Status::FailedPrecondition("journal writer is closed");
  if (unsynced_ == 0) return Status::OK();
  if (::fsync(fd_) != 0) {
    return Status::IoError(std::string("journal fsync failed: ") +
                           std::strerror(errno));
  }
  unsynced_ = 0;
  return Status::OK();
}

Status JournalWriter::Close() {
  if (fd_ < 0) return Status::OK();
  const int fd = fd_;
  fd_ = -1;
  if (::fsync(fd) != 0 || ::close(fd) != 0) {
    return Status::IoError(std::string("journal close failed: ") +
                           std::strerror(errno));
  }
  return Status::OK();
}

JournalingExpert::JournalingExpert(Expert* live, JournalWriter* writer,
                                   std::vector<JournalRecord> replay,
                                   const CostModel& cost, int num_attributes)
    : live_(live),
      writer_(writer),
      replay_(std::move(replay)),
      cost_(cost),
      num_attributes_(num_attributes) {}

Answer JournalingExpert::Record(JournalRecord record, Answer live_answer) {
  if (writer_ != nullptr && write_status_.ok()) {
    Status status = writer_->Append(record);
    if (!status.ok()) write_status_ = std::move(status);
  }
  return live_answer;
}

bool JournalingExpert::Replay(const JournalRecord& expected, Answer* out) {
  if (replay_abandoned_ || replay_pos_ >= replay_.size()) return false;
  const JournalRecord& next = replay_[replay_pos_];
  if (!SameJournalQuestion(next, expected)) {
    // The strategy diverged from the journal (different build or inputs).
    // Replay is no longer trustworthy; fall back to live answers.
    ++mismatches_;
    replay_abandoned_ = true;
    return false;
  }
  ++replay_pos_;
  *out = next.answer;
  return true;
}

Answer JournalingExpert::IsCellErroneous(const Cell& cell) {
  JournalRecord record;
  record.kind = QuestionKind::kCell;
  record.cell = cell;
  record.cost = cost_.CellCost();
  Answer replayed;
  if (Replay(record, &replayed)) {
    // Ask the live expert anyway (answer discarded) so its RNG state
    // advances exactly as in the original run.
    live_->IsCellErroneous(cell);
    return replayed;
  }
  const Answer answer = live_->IsCellErroneous(cell);
  record.answer = answer;
  return Record(record, answer);
}

Answer JournalingExpert::IsTupleClean(TupleId row) {
  JournalRecord record;
  record.kind = QuestionKind::kTuple;
  record.row = row;
  record.cost = cost_.TupleCost(num_attributes_);
  Answer replayed;
  if (Replay(record, &replayed)) {
    live_->IsTupleClean(row);
    return replayed;
  }
  const Answer answer = live_->IsTupleClean(row);
  record.answer = answer;
  return Record(record, answer);
}

Answer JournalingExpert::IsFdValid(const Fd& fd) {
  JournalRecord record;
  record.kind = QuestionKind::kFd;
  record.fd = fd;
  record.cost = cost_.FdCost(fd, 0);
  Answer replayed;
  if (Replay(record, &replayed)) {
    live_->IsFdValid(fd);
    return replayed;
  }
  const Answer answer = live_->IsFdValid(fd);
  record.answer = answer;
  return Record(record, answer);
}

}  // namespace uguide
