#include "core/session_journal.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <limits>
#include <sstream>
#include <utility>

#include "common/crc32c.h"
#include "common/fault_injection.h"

namespace uguide {

namespace {

const char* KindTag(QuestionKind kind) {
  switch (kind) {
    case QuestionKind::kCell:
      return "c";
    case QuestionKind::kTuple:
      return "t";
    case QuestionKind::kFd:
      return "f";
  }
  return "?";
}

/// Formats a double as a C hexfloat: exact round-trip through strtod.
std::string HexDouble(double value) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%a", value);
  return buf;
}

bool ParseStrictDouble(std::string_view token, double* out) {
  std::string owned(token);
  char* end = nullptr;
  errno = 0;
  double value = std::strtod(owned.c_str(), &end);
  if (errno != 0 || end != owned.c_str() + owned.size() || owned.empty()) {
    return false;
  }
  *out = value;
  return true;
}

bool ParseU64(std::string_view token, uint64_t* out) {
  std::string owned(token);
  char* end = nullptr;
  errno = 0;
  uint64_t value = std::strtoull(owned.c_str(), &end, 10);
  if (errno != 0 || end != owned.c_str() + owned.size() || owned.empty()) {
    return false;
  }
  *out = value;
  return true;
}

bool ParseHexU64(std::string_view token, uint64_t* out) {
  std::string owned(token);
  char* end = nullptr;
  errno = 0;
  uint64_t value = std::strtoull(owned.c_str(), &end, 16);
  if (errno != 0 || end != owned.c_str() + owned.size() || owned.empty()) {
    return false;
  }
  *out = value;
  return true;
}

bool ParseInt(std::string_view token, int* out) {
  uint64_t value = 0;
  bool negative = false;
  if (!token.empty() && token.front() == '-') {
    negative = true;
    token.remove_prefix(1);
  }
  if (!ParseU64(token, &value)) return false;
  // Reject out-of-range magnitudes instead of casting: a hostile journal
  // line like "c -2147483648 0 ..." used to reach `-static_cast<int>(...)`
  // and overflow (UB, found by the journal fuzz target). INT_MIN itself is
  // rejected too — no journal field legitimately holds it.
  if (value > static_cast<uint64_t>(std::numeric_limits<int>::max())) {
    return false;
  }
  *out = negative ? -static_cast<int>(value) : static_cast<int>(value);
  return true;
}

bool ParseAnswer(std::string_view token, Answer* out) {
  if (token == "yes") {
    *out = Answer::kYes;
  } else if (token == "no") {
    *out = Answer::kNo;
  } else if (token == "idk") {
    *out = Answer::kIdk;
  } else {
    return false;
  }
  return true;
}

std::vector<std::string_view> SplitTokens(std::string_view line) {
  std::vector<std::string_view> tokens;
  size_t i = 0;
  while (i < line.size()) {
    while (i < line.size() && line[i] == ' ') ++i;
    size_t start = i;
    while (i < line.size() && line[i] != ' ') ++i;
    if (i > start) tokens.push_back(line.substr(start, i - start));
  }
  return tokens;
}

Status Errno(const std::string& action, const std::string& path) {
  const int err = errno;
  return Status::IoError(action + " " + path + ": " + std::strerror(err) +
                         " (errno " + std::to_string(err) + ")");
}

std::string Hex32(uint32_t value) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%08x", value);
  return buf;
}

bool ParseHex32(std::string_view token, uint32_t* out) {
  if (token.size() != 8) return false;
  uint32_t value = 0;
  for (char c : token) {
    uint32_t digit;
    if (c >= '0' && c <= '9') {
      digit = static_cast<uint32_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      digit = static_cast<uint32_t>(c - 'a') + 10;
    } else {
      return false;
    }
    value = (value << 4) | digit;
  }
  *out = value;
  return true;
}

/// Unwraps one v2 record line `<len>.<crc> <payload>`. False on any
/// framing defect: bad length, bad checksum, malformed prefix.
bool UnwrapJournalFrame(std::string_view line, std::string_view* payload) {
  const size_t dot = line.find('.');
  if (dot == std::string_view::npos || dot == 0) return false;
  uint64_t len = 0;
  if (!ParseU64(line.substr(0, dot), &len)) return false;
  const size_t space = dot + 9;
  if (space >= line.size() || line[space] != ' ') return false;
  uint32_t crc = 0;
  if (!ParseHex32(line.substr(dot + 1, 8), &crc)) return false;
  const std::string_view body = line.substr(space + 1);
  if (body.size() != len) return false;
  if (Crc32c(body) != crc) return false;
  *payload = body;
  return true;
}

/// The payload of the v2 end marker: `end <questions> <cost-hexfloat>`.
std::string FormatEndPayload(int questions_asked, double cost_spent) {
  std::ostringstream out;
  out << "end " << questions_asked << ' ' << HexDouble(cost_spent);
  return out.str();
}

bool ParseEndPayload(std::string_view payload, int* questions, double* cost) {
  const std::vector<std::string_view> tokens = SplitTokens(payload);
  if (tokens.size() != 3 || tokens[0] != "end") return false;
  int q = 0;
  double c = 0.0;
  if (!ParseInt(tokens[1], &q) || q < 0 || !ParseStrictDouble(tokens[2], &c)) {
    return false;
  }
  *questions = q;
  *cost = c;
  return true;
}

std::string ParentDir(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

}  // namespace

bool SameJournalQuestion(const JournalRecord& a, const JournalRecord& b) {
  if (a.kind != b.kind) return false;
  switch (a.kind) {
    case QuestionKind::kCell:
      return a.cell == b.cell;
    case QuestionKind::kTuple:
      return a.row == b.row;
    case QuestionKind::kFd:
      return a.fd == b.fd;
  }
  return false;
}

bool JournalRecord::operator==(const JournalRecord& other) const {
  return SameJournalQuestion(*this, other) && answer == other.answer &&
         cost == other.cost;
}

bool JournalHeader::Matches(const JournalHeader& other) const {
  return strategy_name == other.strategy_name && budget == other.budget &&
         expert_seed == other.expert_seed &&
         expert_votes == other.expert_votes && idk_rate == other.idk_rate &&
         wrong_rate == other.wrong_rate &&
         content_hash == other.content_hash &&
         data_version == other.data_version;
}

std::string FormatJournalRecord(const JournalRecord& record) {
  std::ostringstream out;
  out << KindTag(record.kind) << ' ';
  switch (record.kind) {
    case QuestionKind::kCell:
      out << record.cell.row << ' ' << record.cell.col;
      break;
    case QuestionKind::kTuple:
      out << record.row;
      break;
    case QuestionKind::kFd: {
      char mask[24];
      std::snprintf(mask, sizeof(mask), "%" PRIx64, record.fd.lhs.mask());
      out << mask << ' ' << record.fd.rhs;
      break;
    }
  }
  out << ' ' << AnswerName(record.answer) << ' ' << HexDouble(record.cost);
  return out.str();
}

Result<JournalRecord> ParseJournalRecord(std::string_view line) {
  const std::vector<std::string_view> tokens = SplitTokens(line);
  const Status malformed =
      Status::InvalidArgument("malformed journal record: " + std::string(line));
  if (tokens.empty()) return malformed;

  JournalRecord record;
  size_t expected = 0;
  if (tokens[0] == "c") {
    record.kind = QuestionKind::kCell;
    expected = 5;
    if (tokens.size() != expected || !ParseInt(tokens[1], &record.cell.row) ||
        !ParseInt(tokens[2], &record.cell.col) || record.cell.row < 0 ||
        record.cell.col < 0 ||
        record.cell.col >= AttributeSet::kMaxAttributes) {
      return malformed;
    }
  } else if (tokens[0] == "t") {
    record.kind = QuestionKind::kTuple;
    expected = 4;
    int row = 0;
    if (tokens.size() != expected || !ParseInt(tokens[1], &row) || row < 0) {
      return malformed;
    }
    record.row = row;
  } else if (tokens[0] == "f") {
    record.kind = QuestionKind::kFd;
    expected = 5;
    uint64_t mask = 0;
    int rhs = 0;
    // The rhs must be a legal attribute index: a journal is untrusted
    // input, and an out-of-range rhs would poison every later
    // AttributeSet::Contains (whose DCHECK aborts debug builds).
    if (tokens.size() != expected || !ParseHexU64(tokens[1], &mask) ||
        !ParseInt(tokens[2], &rhs) || rhs < 0 ||
        rhs >= AttributeSet::kMaxAttributes) {
      return malformed;
    }
    record.fd = Fd(AttributeSet(mask), rhs);
  } else {
    return malformed;
  }
  if (!ParseAnswer(tokens[expected - 2], &record.answer) ||
      !ParseStrictDouble(tokens[expected - 1], &record.cost)) {
    return malformed;
  }
  return record;
}

std::string FormatJournalHeader(const JournalHeader& header) {
  std::ostringstream out;
  out << "uguide-journal v=1 strategy=" << header.strategy_name
      << " budget=" << HexDouble(header.budget)
      << " seed=" << header.expert_seed << " votes=" << header.expert_votes
      << " idk=" << HexDouble(header.idk_rate)
      << " wrong=" << HexDouble(header.wrong_rate);
  return out.str();
}

namespace {

/// Parses the six identity fields shared by every header version
/// (tokens[2..7] of the header line).
Result<JournalHeader> ParseHeaderFields(
    const std::vector<std::string_view>& tokens, const Status& malformed) {
  JournalHeader header;
  bool seen[6] = {false, false, false, false, false, false};
  for (size_t i = 2; i < tokens.size(); ++i) {
    const std::string_view token = tokens[i];
    const size_t eq = token.find('=');
    if (eq == std::string_view::npos) return malformed;
    const std::string_view key = token.substr(0, eq);
    const std::string_view value = token.substr(eq + 1);
    if (key == "strategy") {
      header.strategy_name = std::string(value);
      seen[0] = true;
    } else if (key == "budget") {
      if (!ParseStrictDouble(value, &header.budget)) return malformed;
      seen[1] = true;
    } else if (key == "seed") {
      if (!ParseU64(value, &header.expert_seed)) return malformed;
      seen[2] = true;
    } else if (key == "votes") {
      if (!ParseInt(value, &header.expert_votes)) return malformed;
      seen[3] = true;
    } else if (key == "idk") {
      if (!ParseStrictDouble(value, &header.idk_rate)) return malformed;
      seen[4] = true;
    } else if (key == "wrong") {
      if (!ParseStrictDouble(value, &header.wrong_rate)) return malformed;
      seen[5] = true;
    } else if (key == "dhash") {
      // Optional (live-data identity, v2 only): absent in pre-live
      // journals, which parse to the 0 defaults.
      if (!ParseHexU64(value, &header.content_hash)) return malformed;
    } else if (key == "dver") {
      if (!ParseU64(value, &header.data_version)) return malformed;
    } else {
      return malformed;
    }
  }
  for (bool s : seen) {
    if (!s) return malformed;
  }
  return header;
}

}  // namespace

Result<JournalHeader> ParseJournalHeader(std::string_view line) {
  const std::vector<std::string_view> tokens = SplitTokens(line);
  const Status malformed =
      Status::InvalidArgument("malformed journal header: " + std::string(line));
  if (tokens.size() != 8 || tokens[0] != "uguide-journal" ||
      tokens[1] != "v=1") {
    return malformed;
  }
  return ParseHeaderFields(tokens, malformed);
}

std::string FormatJournalHeaderV2(const JournalHeader& header) {
  std::ostringstream out;
  out << "uguide-journal v=2 strategy=" << header.strategy_name
      << " budget=" << HexDouble(header.budget)
      << " seed=" << header.expert_seed << " votes=" << header.expert_votes
      << " idk=" << HexDouble(header.idk_rate)
      << " wrong=" << HexDouble(header.wrong_rate);
  if (header.content_hash != 0 || header.data_version != 0) {
    // Live-data identity. Emitted only when set so pre-live journals (and
    // every local run, which defaults both to 0) stay byte-identical; the
    // hcrc suffix covers the extra fields automatically.
    char hex[32];
    std::snprintf(hex, sizeof(hex), "%016llx",
                  static_cast<unsigned long long>(header.content_hash));
    out << " dhash=" << hex << " dver=" << header.data_version;
  }
  const std::string body = out.str();
  return body + " hcrc=" + Hex32(Crc32c(body));
}

std::string FormatJournalFrame(std::string_view payload) {
  std::ostringstream out;
  out << payload.size() << '.' << Hex32(Crc32c(payload)) << ' ' << payload;
  return out.str();
}

namespace {

/// Parses a v2 header line: verifies the hcrc suffix covers the rest of
/// the line, then parses the v1-shaped fields. A well-formed-but-
/// checksum-failing header is kDataLoss (it was once valid); anything
/// structurally wrong is InvalidArgument.
Result<JournalHeader> ParseJournalHeaderV2(std::string_view line,
                                           const std::string& origin) {
  const Status malformed =
      Status::InvalidArgument("malformed v2 journal header in " + origin);
  constexpr std::string_view kSuffix = " hcrc=";
  const size_t at = line.rfind(kSuffix);
  if (at == std::string_view::npos) return malformed;
  uint32_t crc = 0;
  const std::string_view crc_text = line.substr(at + kSuffix.size());
  if (!ParseHex32(crc_text, &crc)) return malformed;
  const std::string_view body = line.substr(0, at);
  if (Crc32c(body) != crc) {
    return Status::DataLoss("journal " + origin +
                            ": header checksum mismatch (expected " +
                            Hex32(Crc32c(body)) + ", found " +
                            std::string(crc_text) + ")");
  }
  const std::vector<std::string_view> tokens = SplitTokens(body);
  // 8 tokens pre-live, 10 with the optional dhash/dver pair.
  if ((tokens.size() != 8 && tokens.size() != 10) ||
      tokens[0] != "uguide-journal" || tokens[1] != "v=2") {
    return malformed;
  }
  return ParseHeaderFields(tokens, malformed);
}

}  // namespace

Status ValidateJournalHeader(const JournalHeader& expected,
                             const JournalHeader& found) {
  auto mismatch = [](const std::string& field, const std::string& want,
                     const std::string& got) {
    return Status::InvalidArgument(
        "journal header mismatch: field '" + field + "' expected " + want +
        ", found " + got +
        " — the journal was written under a different session "
        "configuration and cannot be resumed");
  };
  if (found.strategy_name != expected.strategy_name) {
    return mismatch("strategy", expected.strategy_name, found.strategy_name);
  }
  if (found.budget != expected.budget) {
    return mismatch("budget", std::to_string(expected.budget),
                    std::to_string(found.budget));
  }
  if (found.expert_seed != expected.expert_seed) {
    return mismatch("seed", std::to_string(expected.expert_seed),
                    std::to_string(found.expert_seed));
  }
  if (found.expert_votes != expected.expert_votes) {
    return mismatch("votes", std::to_string(expected.expert_votes),
                    std::to_string(found.expert_votes));
  }
  if (found.idk_rate != expected.idk_rate) {
    return mismatch("idk", std::to_string(expected.idk_rate),
                    std::to_string(found.idk_rate));
  }
  if (found.wrong_rate != expected.wrong_rate) {
    return mismatch("wrong", std::to_string(expected.wrong_rate),
                    std::to_string(found.wrong_rate));
  }
  if (found.content_hash != expected.content_hash) {
    return mismatch("dhash", std::to_string(expected.content_hash),
                    std::to_string(found.content_hash));
  }
  if (found.data_version != expected.data_version) {
    return mismatch("dver", std::to_string(expected.data_version),
                    std::to_string(found.data_version));
  }
  return Status::OK();
}

Result<LoadedJournal> ParseJournalText(std::string_view contents,
                                       const std::string& origin) {
  // Split into lines, remembering whether the final line was terminated —
  // an unterminated tail is the footprint of a crash mid-append — and
  // where each line ends in the file (resume_offset bookkeeping).
  std::vector<std::string_view> lines;
  std::vector<uint64_t> line_end;  // offset just past each line's '\n'
  size_t start = 0;
  bool terminated = true;
  const std::string_view view = contents;
  while (start < view.size()) {
    const size_t nl = view.find('\n', start);
    if (nl == std::string_view::npos) {
      lines.push_back(view.substr(start));
      line_end.push_back(view.size());
      terminated = false;
      break;
    }
    lines.push_back(view.substr(start, nl - start));
    line_end.push_back(nl + 1);
    start = nl + 1;
  }
  if (lines.empty()) {
    return Status::InvalidArgument("journal " + origin + " is empty");
  }

  // Version sniff on the raw first line: both formats open with the magic
  // and a `v=N` token. Damage to the magic itself means the file cannot be
  // identified as a journal at all.
  int version = 0;
  {
    const std::vector<std::string_view> tokens = SplitTokens(lines[0]);
    if (tokens.size() < 2 || tokens[0] != "uguide-journal" ||
        tokens[1].rfind("v=", 0) != 0) {
      return Status::InvalidArgument("journal " + origin +
                                     " has no recognizable header");
    }
    if (tokens[1] == "v=1") {
      version = 1;
    } else if (tokens[1] == "v=2") {
      version = 2;
    } else {
      return Status::InvalidArgument("journal " + origin +
                                     " has unsupported version " +
                                     std::string(tokens[1]));
    }
  }
  if (!terminated && lines.size() == 1) {
    // Header itself is torn; nothing trustworthy in the file.
    return Status::InvalidArgument("journal " + origin + " has a torn header");
  }

  LoadedJournal journal;
  journal.version = version;
  if (version == 1) {
    UGUIDE_ASSIGN_OR_RETURN(journal.header, ParseJournalHeader(lines[0]));
  } else {
    UGUIDE_ASSIGN_OR_RETURN(journal.header,
                            ParseJournalHeaderV2(lines[0], origin));
  }
  journal.resume_offset = line_end[0];

  for (size_t i = 1; i < lines.size(); ++i) {
    const bool is_tail = i + 1 == lines.size();
    if (is_tail && !terminated) {
      // A torn (unterminated) tail is dropped even if its prefix happens to
      // parse — a partial write proves nothing about the record.
      journal.torn_tail = true;
      break;
    }
    if (version == 1) {
      Result<JournalRecord> record = ParseJournalRecord(lines[i]);
      if (!record.ok()) {
        if (is_tail) {
          // v1 cannot tell a terminated-but-garbled tail from corruption;
          // it keeps the lenient pre-framing behaviour and salvages.
          journal.torn_tail = true;
          break;
        }
        return Status::InvalidArgument("journal " + origin + " line " +
                                       std::to_string(i + 1) + ": " +
                                       record.status().ToString());
      }
      journal.records.push_back(*std::move(record));
      journal.resume_offset = line_end[i];
      continue;
    }

    // v2: the line is newline-terminated, so the write that produced it
    // completed — any framing/checksum/parse failure from here on is
    // in-place damage, not a torn write, and must quarantine.
    const Status corrupt = Status::DataLoss(
        "journal " + origin + " line " + std::to_string(i + 1) +
        ": record framing or checksum failure (mid-file corruption)");
    std::string_view payload;
    if (!UnwrapJournalFrame(lines[i], &payload)) return corrupt;
    if (journal.finished) {
      return Status::DataLoss("journal " + origin + " line " +
                              std::to_string(i + 1) +
                              ": record after end marker");
    }
    if (payload.rfind("end ", 0) == 0) {
      if (!ParseEndPayload(payload, &journal.finished_questions,
                           &journal.finished_cost)) {
        return corrupt;
      }
      journal.finished = true;
      // Deliberately not folded into resume_offset: resuming a finished
      // journal truncates the marker away and Finish re-appends it.
      continue;
    }
    Result<JournalRecord> record = ParseJournalRecord(payload);
    if (!record.ok()) return corrupt;
    journal.records.push_back(*std::move(record));
    journal.resume_offset = line_end[i];
  }
  return journal;
}

Result<LoadedJournal> LoadJournal(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Errno("cannot open journal", path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (in.bad()) return Status::IoError("read failed for journal " + path);
  return ParseJournalText(buffer.str(), path);
}

Result<JournalHeader> PeekJournalHeader(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Errno("cannot open journal", path);
  std::string line;
  if (!std::getline(in, line)) {
    if (in.bad()) return Status::IoError("read failed for journal " + path);
    return Status::InvalidArgument("journal " + path + " is empty");
  }
  const std::vector<std::string_view> tokens = SplitTokens(line);
  if (tokens.size() < 2 || tokens[0] != "uguide-journal" ||
      tokens[1].rfind("v=", 0) != 0) {
    return Status::InvalidArgument("journal " + path +
                                   " has no recognizable header");
  }
  if (tokens[1] == "v=1") return ParseJournalHeader(line);
  if (tokens[1] == "v=2") return ParseJournalHeaderV2(line, path);
  return Status::InvalidArgument("journal " + path +
                                 " has unsupported version " +
                                 std::string(tokens[1]));
}

Result<JournalFsyncMode> ParseJournalFsyncMode(std::string_view text) {
  if (text == "every") return JournalFsyncMode::kEvery;
  if (text == "batch") return JournalFsyncMode::kBatch;
  return Status::InvalidArgument("unknown journal fsync mode '" +
                                 std::string(text) +
                                 "' (expected every|batch)");
}

Status FsyncDir(const std::string& dir) {
  IoFault fault = FaultRegistry::Global().enabled()
                      ? FaultRegistry::Global().OnIoPoint("journal.fsync")
                      : IoFault{};
  if (fault.crash_after) FaultRegistry::CrashNow();
  if (!fault.status.ok()) {
    errno = fault.fault_errno;
    return Errno("cannot fsync directory", dir);
  }
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return Errno("cannot open directory", dir);
  if (::fsync(fd) != 0) {
    const Status status = Errno("cannot fsync directory", dir);
    ::close(fd);
    return status;
  }
  if (::close(fd) != 0) return Errno("cannot close directory", dir);
  return Status::OK();
}

Status QuarantineJournal(const std::string& path,
                         std::string* quarantined_path) {
  const std::string target = path + ".quarantined";
  IoFault fault = FaultRegistry::Global().enabled()
                      ? FaultRegistry::Global().OnIoPoint("journal.rename")
                      : IoFault{};
  if (fault.crash_after) FaultRegistry::CrashNow();
  if (!fault.status.ok()) {
    errno = fault.fault_errno;
    return Errno("cannot quarantine journal", path);
  }
  if (::rename(path.c_str(), target.c_str()) != 0) {
    return Errno("cannot quarantine journal", path);
  }
  UGUIDE_RETURN_NOT_OK(FsyncDir(ParentDir(path)));
  if (quarantined_path != nullptr) *quarantined_path = target;
  return Status::OK();
}

Result<JournalWriter> JournalWriter::Open(const std::string& path,
                                          const JournalHeader& header,
                                          const JournalWriterOptions& options) {
  {
    IoFault fault = FaultRegistry::Global().enabled()
                        ? FaultRegistry::Global().OnIoPoint("journal.open")
                        : IoFault{};
    if (fault.crash_after) FaultRegistry::CrashNow();
    if (!fault.status.ok()) {
      errno = fault.fault_errno;
      return Errno("cannot open journal", path);
    }
  }
  const int flags = O_WRONLY | O_CREAT | (options.resume ? O_APPEND : O_TRUNC);
  const int fd = ::open(path.c_str(), flags, 0644);
  if (fd < 0) return Errno("cannot open journal", path);
  JournalWriter writer(fd, path, options.fsync_mode, options.version);
  if (options.resume) {
    // Drop the torn tail / stale end marker the load classified away, so
    // new appends can never concatenate onto a partial old line.
    if (::ftruncate(fd, static_cast<off_t>(options.resume_offset)) != 0) {
      return Errno("cannot truncate journal for resume", path);
    }
  } else {
    const std::string line =
        (options.version >= 2 ? FormatJournalHeaderV2(header)
                              : FormatJournalHeader(header)) +
        "\n";
    UGUIDE_RETURN_NOT_OK(writer.WriteAll(line));
    UGUIDE_RETURN_NOT_OK(writer.SyncFd());
    // The file's *name* must survive a crash too, or recovery would never
    // see the journal it is supposed to resume.
    if (options.sync_dir) UGUIDE_RETURN_NOT_OK(FsyncDir(ParentDir(path)));
  }
  return writer;
}

Result<JournalWriter> JournalWriter::Open(const std::string& path,
                                          const JournalHeader& header,
                                          bool resume,
                                          JournalFsyncMode fsync_mode) {
  if (resume) {
    // Legacy resume: append at end-of-file, no truncation. Keep appending
    // in whatever version the file already is.
    UGUIDE_ASSIGN_OR_RETURN(LoadedJournal loaded, LoadJournal(path));
    JournalWriterOptions options;
    options.resume = true;
    options.fsync_mode = fsync_mode;
    options.version = loaded.version;
    options.resume_offset = loaded.resume_offset;
    return Open(path, header, options);
  }
  JournalWriterOptions options;
  options.fsync_mode = fsync_mode;
  return Open(path, header, options);
}

JournalWriter::JournalWriter(JournalWriter&& other) noexcept
    : fd_(other.fd_),
      path_(std::move(other.path_)),
      fsync_mode_(other.fsync_mode_),
      version_(other.version_),
      unsynced_(other.unsynced_),
      poisoned_(std::move(other.poisoned_)) {
  other.fd_ = -1;
  other.unsynced_ = 0;
  other.poisoned_ = Status::OK();
}

JournalWriter& JournalWriter::operator=(JournalWriter&& other) noexcept {
  if (this != &other) {
    Close().IgnoreError();
    fd_ = other.fd_;
    path_ = std::move(other.path_);
    fsync_mode_ = other.fsync_mode_;
    version_ = other.version_;
    unsynced_ = other.unsynced_;
    poisoned_ = std::move(other.poisoned_);
    other.fd_ = -1;
    other.unsynced_ = 0;
    other.poisoned_ = Status::OK();
  }
  return *this;
}

JournalWriter::~JournalWriter() { Close().IgnoreError(); }

Status JournalWriter::WriteAll(std::string_view data) {
  if (!poisoned_.ok()) return poisoned_;
  size_t limit = data.size();
  IoFault fault = FaultRegistry::Global().enabled()
                      ? FaultRegistry::Global().OnIoPoint("journal.write")
                      : IoFault{};
  const bool faulted = !fault.status.ok() || fault.crash_after;
  if (faulted && fault.bytes < limit) limit = fault.bytes;
  size_t off = 0;
  while (off < limit) {
    const ssize_t written = ::write(fd_, data.data() + off, limit - off);
    if (written < 0) {
      if (errno == EINTR) continue;
      poisoned_ = Errno("journal append to", path_);
      return poisoned_;
    }
    off += static_cast<size_t>(written);
  }
  if (fault.crash_after) {
    // Torn write: the partial line is in the page cache (visible to the
    // restarted daemon) and the process dies before finishing it.
    FaultRegistry::CrashNow();
  }
  if (faulted) {
    errno = fault.fault_errno;
    poisoned_ = Errno("journal append to", path_);
    return poisoned_;
  }
  return Status::OK();
}

Status JournalWriter::SyncFd() {
  if (!poisoned_.ok()) return poisoned_;
  IoFault fault = FaultRegistry::Global().enabled()
                      ? FaultRegistry::Global().OnIoPoint("journal.fsync")
                      : IoFault{};
  if (fault.crash_after) FaultRegistry::CrashNow();
  if (!fault.status.ok()) {
    errno = fault.fault_errno;
    poisoned_ = Errno("journal fsync of", path_);
    return poisoned_;
  }
  if (::fsync(fd_) != 0) {
    // Poison, never retry: after a failed fsync the kernel may have marked
    // the dirty pages clean without writing them, so a "successful" retry
    // would claim durability for bytes that are gone (fsyncgate).
    poisoned_ = Errno("journal fsync of", path_);
    return poisoned_;
  }
  return Status::OK();
}

Status JournalWriter::Append(const JournalRecord& record) {
  if (fd_ < 0) return Status::FailedPrecondition("journal writer is closed");
  if (!poisoned_.ok()) return poisoned_;
  const std::string body = FormatJournalRecord(record);
  const std::string line =
      (version_ >= 2 ? FormatJournalFrame(body) : body) + "\n";
  UGUIDE_RETURN_NOT_OK(WriteAll(line));
  if (fsync_mode_ == JournalFsyncMode::kEvery) {
    UGUIDE_RETURN_NOT_OK(SyncFd());
  } else {
    ++unsynced_;
    if (unsynced_ >= kBatchInterval) UGUIDE_RETURN_NOT_OK(Sync());
  }
  // Fires *after* the fsync: a crash@k plan leaves exactly k durable
  // records (at most k in batch mode), which the kill/resume tests assert.
  UGUIDE_FAULT_POINT("session.record");
  return Status::OK();
}

Status JournalWriter::AppendEnd(int questions_asked, double cost_spent) {
  if (fd_ < 0) return Status::FailedPrecondition("journal writer is closed");
  if (!poisoned_.ok()) return poisoned_;
  if (version_ < 2) return Status::OK();
  const std::string line =
      FormatJournalFrame(FormatEndPayload(questions_asked, cost_spent)) + "\n";
  UGUIDE_RETURN_NOT_OK(WriteAll(line));
  // Always durable, whatever the batch mode: the marker is the GC
  // eligibility bit and must not evaporate with the page cache.
  UGUIDE_RETURN_NOT_OK(SyncFd());
  unsynced_ = 0;
  return Status::OK();
}

Status JournalWriter::Sync() {
  if (fd_ < 0) return Status::FailedPrecondition("journal writer is closed");
  if (!poisoned_.ok()) return poisoned_;
  if (unsynced_ == 0) return Status::OK();
  UGUIDE_RETURN_NOT_OK(SyncFd());
  unsynced_ = 0;
  return Status::OK();
}

Status JournalWriter::Close() {
  if (fd_ < 0) return poisoned_;
  const int fd = fd_;
  fd_ = -1;
  // A poisoned writer must not fsync again (see SyncFd); just release the
  // descriptor and keep reporting the original failure.
  if (poisoned_.ok() && ::fsync(fd) != 0) {
    const Status status = Errno("journal close fsync of", path_);
    ::close(fd);
    return status;
  }
  if (::close(fd) != 0 && poisoned_.ok()) {
    return Errno("journal close of", path_);
  }
  return poisoned_;
}

JournalingExpert::JournalingExpert(Expert* live, JournalWriter* writer,
                                   std::vector<JournalRecord> replay,
                                   const CostModel& cost, int num_attributes)
    : live_(live),
      writer_(writer),
      replay_(std::move(replay)),
      cost_(cost),
      num_attributes_(num_attributes) {}

Answer JournalingExpert::Record(JournalRecord record, Answer live_answer) {
  if (writer_ != nullptr && write_status_.ok()) {
    Status status = writer_->Append(record);
    if (!status.ok()) write_status_ = std::move(status);
  }
  return live_answer;
}

bool JournalingExpert::Replay(const JournalRecord& expected, Answer* out) {
  if (replay_abandoned_ || replay_pos_ >= replay_.size()) return false;
  const JournalRecord& next = replay_[replay_pos_];
  if (!SameJournalQuestion(next, expected)) {
    // The strategy diverged from the journal (different build or inputs).
    // Replay is no longer trustworthy; fall back to live answers.
    ++mismatches_;
    replay_abandoned_ = true;
    return false;
  }
  ++replay_pos_;
  *out = next.answer;
  return true;
}

Answer JournalingExpert::IsCellErroneous(const Cell& cell) {
  JournalRecord record;
  record.kind = QuestionKind::kCell;
  record.cell = cell;
  record.cost = cost_.CellCost();
  Answer replayed;
  if (Replay(record, &replayed)) {
    // Ask the live expert anyway (answer discarded) so its RNG state
    // advances exactly as in the original run.
    live_->IsCellErroneous(cell);
    return replayed;
  }
  const Answer answer = live_->IsCellErroneous(cell);
  record.answer = answer;
  return Record(record, answer);
}

Answer JournalingExpert::IsTupleClean(TupleId row) {
  JournalRecord record;
  record.kind = QuestionKind::kTuple;
  record.row = row;
  record.cost = cost_.TupleCost(num_attributes_);
  Answer replayed;
  if (Replay(record, &replayed)) {
    live_->IsTupleClean(row);
    return replayed;
  }
  const Answer answer = live_->IsTupleClean(row);
  record.answer = answer;
  return Record(record, answer);
}

Answer JournalingExpert::IsFdValid(const Fd& fd) {
  JournalRecord record;
  record.kind = QuestionKind::kFd;
  record.fd = fd;
  record.cost = cost_.FdCost(fd, 0);
  Answer replayed;
  if (Replay(record, &replayed)) {
    live_->IsFdValid(fd);
    return replayed;
  }
  const Answer answer = live_->IsFdValid(fd);
  record.answer = answer;
  return Record(record, answer);
}

}  // namespace uguide
