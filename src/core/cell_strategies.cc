#include "core/cell_strategies.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "fd/closure.h"
#include "violations/bipartite_graph.h"

namespace uguide {

namespace {

// Shared working state for one cell-strategy run.
struct CellRun {
  CellRun(const QuestionContext& ctx, const CellStrategyOptions& options)
      : graph(ViolationGraph::Build(*ctx.dirty, *ctx.candidates)),
        fd_conf(static_cast<size_t>(graph.NumFds()),
                options.initial_confidence),
        asked(static_cast<size_t>(graph.NumCells()), false) {}

  ViolationGraph graph;
  std::vector<double> fd_conf;
  std::vector<bool> asked;

  // Average confidence of the active FDs flagging `c` (Algorithm 2 line 3).
  double CellWeight(CellId c) const {
    double sum = 0.0;
    int count = 0;
    for (FdId f : graph.FdsOfCell(c)) {
      if (!graph.FdActive(f)) continue;
      sum += fd_conf[static_cast<size_t>(f)];
      ++count;
    }
    return count == 0 ? 0.0 : sum / count;
  }

  bool Askable(CellId c) const {
    return graph.CellActive(c) && !asked[static_cast<size_t>(c)] &&
           graph.ActiveDegreeOfCell(c) > 0;
  }

  // Accepts surviving FDs whose confidence reached the absolute cut;
  // threshold 0 accepts every surviving FD.
  FdSet Accept(double threshold) const {
    FdSet accepted;
    for (FdId f = 0; f < graph.NumFds(); ++f) {
      if (graph.FdActive(f) &&
          fd_conf[static_cast<size_t>(f)] >= threshold) {
        accepted.Add(graph.fd(f));
      }
    }
    return accepted;
  }
};

// Applies the expert's answer to `c` with Algorithm 2's updates.
void ApplyAnswer(CellRun& run, CellId c, Answer answer, double delta) {
  run.asked[static_cast<size_t>(c)] = true;
  switch (answer) {
    case Answer::kYes:
      // Confirmed violation: every flagging FD gains confidence.
      for (FdId f : run.graph.FdsOfCell(c)) {
        if (run.graph.FdActive(f)) {
          double& conf = run.fd_conf[static_cast<size_t>(f)];
          conf = std::min(1.0, conf + delta);
        }
      }
      break;
    case Answer::kNo: {
      // Certified clean: every FD that called this an error is invalid.
      // Copy the adjacency first -- DeactivateFd mutates the graph.
      std::vector<FdId> flagging;
      for (FdId f : run.graph.FdsOfCell(c)) {
        if (run.graph.FdActive(f)) flagging.push_back(f);
      }
      for (FdId f : flagging) run.graph.DeactivateFd(f);
      run.graph.DeactivateCell(c);
      break;
    }
    case Answer::kIdk:
      break;
  }
}

class CellQHittingSet : public Strategy {
 public:
  explicit CellQHittingSet(const CellStrategyOptions& options)
      : options_(options) {}

  std::string_view name() const override { return "CellQ-HS"; }

  StrategyResult Run(const QuestionContext& ctx) override {
    CellRun run(ctx, options_);
    StrategyResult result;
    const double cost = ctx.cost.CellCost();
    while (result.cost_spent + cost <= ctx.budget) {
      // Hitting-set rule: minimize weight / active-degree.
      CellId best = -1;
      double best_score = 0.0;
      for (CellId c = 0; c < run.graph.NumCells(); ++c) {
        if (!run.Askable(c)) continue;
        const double score =
            run.CellWeight(c) / run.graph.ActiveDegreeOfCell(c);
        if (best < 0 || score < best_score) {
          best = c;
          best_score = score;
        }
      }
      if (best < 0) break;
      Answer answer = ctx.expert->IsCellErroneous(run.graph.cell(best));
      result.cost_spent += cost;
      ++result.questions_asked;
      ApplyAnswer(run, best, answer, options_.delta);
    }
    result.accepted_fds = run.Accept(options_.accept_threshold);
    return result;
  }

 private:
  CellStrategyOptions options_;
};

class CellQGreedy : public Strategy {
 public:
  explicit CellQGreedy(const CellStrategyOptions& options)
      : options_(options) {}

  std::string_view name() const override { return "CellQ-Greedy"; }

  StrategyResult Run(const QuestionContext& ctx) override {
    CellRun run(ctx, options_);
    StrategyResult result;
    const double cost = ctx.cost.CellCost();
    while (result.cost_spent + cost <= ctx.budget) {
      // Greedy rule: maximize the number of flagging candidate FDs.
      CellId best = -1;
      int best_degree = 0;
      for (CellId c = 0; c < run.graph.NumCells(); ++c) {
        if (!run.Askable(c)) continue;
        const int degree = run.graph.ActiveDegreeOfCell(c);
        if (degree > best_degree) {
          best = c;
          best_degree = degree;
        }
      }
      if (best < 0) break;
      Answer answer = ctx.expert->IsCellErroneous(run.graph.cell(best));
      result.cost_spent += cost;
      ++result.questions_asked;
      ApplyAnswer(run, best, answer, options_.delta);
    }
    result.accepted_fds = run.Accept(options_.accept_threshold);
    return result;
  }

 private:
  CellStrategyOptions options_;
};

class CellQOracle : public Strategy {
 public:
  explicit CellQOracle(const CellStrategyOptions& options)
      : options_(options) {}

  std::string_view name() const override { return "CellQ-Oracle"; }

  StrategyResult Run(const QuestionContext& ctx) override {
    UGUIDE_CHECK(ctx.true_violations != nullptr && ctx.true_fds != nullptr)
        << "CellQ-Oracle requires the true violation set and true FDs";
    CellRun run(ctx, options_);
    StrategyResult result;
    const double cost = ctx.cost.CellCost();

    // The oracle knows which candidate FDs are genuinely implied by the
    // clean table's FDs.
    ClosureEngine true_closure(*ctx.true_fds);
    std::vector<bool> is_true_fd(static_cast<size_t>(run.graph.NumFds()));
    for (FdId f = 0; f < run.graph.NumFds(); ++f) {
      is_true_fd[static_cast<size_t>(f)] =
          true_closure.Implies(run.graph.fd(f));
    }

    while (result.cost_spent + cost <= ctx.budget) {
      // Payoff of a question: a clean cell kills its active false FDs; a
      // true violation pushes its unaccepted true FDs toward acceptance.
      CellId best = -1;
      double best_payoff = 0.0;
      for (CellId c = 0; c < run.graph.NumCells(); ++c) {
        if (!run.Askable(c)) continue;
        double payoff = 0.0;
        const bool is_violation =
            ctx.true_violations->Contains(run.graph.cell(c));
        for (FdId f : run.graph.FdsOfCell(c)) {
          if (!run.graph.FdActive(f)) continue;
          if (!is_violation) {
            payoff += is_true_fd[static_cast<size_t>(f)] ? 0.0 : 1.0;
          } else if (is_true_fd[static_cast<size_t>(f)] &&
                     run.fd_conf[static_cast<size_t>(f)] <
                         options_.accept_threshold) {
            payoff += 1.0;
          }
        }
        if (payoff > best_payoff) {
          best = c;
          best_payoff = payoff;
        }
      }
      if (best < 0) break;
      Answer answer = ctx.expert->IsCellErroneous(run.graph.cell(best));
      result.cost_spent += cost;
      ++result.questions_asked;
      ApplyAnswer(run, best, answer, options_.delta);
    }
    result.accepted_fds = run.Accept(options_.accept_threshold);
    return result;
  }

 private:
  CellStrategyOptions options_;
};

// --- Cell-Q-SUMS ----------------------------------------------------------

class CellQSums : public Strategy {
 public:
  explicit CellQSums(const CellStrategyOptions& options)
      : options_(options) {}

  std::string_view name() const override { return "CellQ-SUMS"; }

  StrategyResult Run(const QuestionContext& ctx) override {
    CellRun run(ctx, options_);
    StrategyResult result;
    const double cost = ctx.cost.CellCost();
    std::vector<double> cell_conf(static_cast<size_t>(run.graph.NumCells()),
                                  1.0);
    // Cells the expert confirmed as violations are pinned at confidence 1
    // and keep feeding evidence into Estimate-Confidence.
    std::vector<bool> pinned(static_cast<size_t>(run.graph.NumCells()),
                             false);

    // Evidence confidence, separate from the Estimate-Confidence fixpoint
    // scores in run.fd_conf: acceptance follows the same confirmed-
    // violation mechanism as Algorithm 2, while the fixpoint drives
    // question selection.
    std::vector<double> evidence(static_cast<size_t>(run.graph.NumFds()),
                                 options_.initial_confidence);
    EstimateConfidence(run, cell_conf, pinned);
    int answers_since_estimate = 0;
    while (result.cost_spent + cost <= ctx.budget) {
      // Maximum information: confidence near 1/2 (the fixpoint is unsure),
      // weighted by the *marginal* evidence the answer can add -- flagging
      // FDs that are already confirmed contribute nothing, so the strategy
      // moves on instead of re-confirming the same dependencies.
      CellId best = -1;
      double best_score = 0.0;
      for (CellId c = 0; c < run.graph.NumCells(); ++c) {
        if (!run.Askable(c)) continue;
        const double uncertainty =
            1.0 - std::abs(2.0 * cell_conf[static_cast<size_t>(c)] - 1.0);
        double marginal = 0.0;
        for (FdId f : run.graph.FdsOfCell(c)) {
          if (run.graph.FdActive(f)) {
            marginal += 1.0 - evidence[static_cast<size_t>(f)];
          }
        }
        const double score = (0.05 + uncertainty) * marginal;
        if (score > best_score) {
          best = c;
          best_score = score;
        }
      }
      if (best < 0) {
        // No confirmation can add evidence anymore; spend leftover budget
        // hunting false positives instead: ask the least trusted violation,
        // whose "no" answer invalidates its flagging FDs.
        double lowest = 2.0;
        for (CellId c = 0; c < run.graph.NumCells(); ++c) {
          if (!run.Askable(c)) continue;
          if (cell_conf[static_cast<size_t>(c)] < lowest) {
            best = c;
            lowest = cell_conf[static_cast<size_t>(c)];
          }
        }
      }
      if (best < 0) break;
      Answer answer = ctx.expert->IsCellErroneous(run.graph.cell(best));
      result.cost_spent += cost;
      ++result.questions_asked;
      run.asked[static_cast<size_t>(best)] = true;
      switch (answer) {
        case Answer::kYes:
          pinned[static_cast<size_t>(best)] = true;
          cell_conf[static_cast<size_t>(best)] = 1.0;
          for (FdId f : run.graph.FdsOfCell(best)) {
            if (run.graph.FdActive(f)) {
              double& conf = evidence[static_cast<size_t>(f)];
              conf = std::min(1.0, conf + options_.delta);
            }
          }
          break;
        case Answer::kNo: {
          std::vector<FdId> flagging;
          for (FdId f : run.graph.FdsOfCell(best)) {
            if (run.graph.FdActive(f)) flagging.push_back(f);
          }
          for (FdId f : flagging) run.graph.DeactivateFd(f);
          run.graph.DeactivateCell(best);
          break;
        }
        case Answer::kIdk:
          continue;  // no new evidence; re-select
      }
      // The fixpoint moves little per answer; recompute in batches.
      if (++answers_since_estimate >= options_.sums_recompute_interval) {
        EstimateConfidence(run, cell_conf, pinned);
        answers_since_estimate = 0;
      }
    }

    // Accept like Algorithm 2, from the evidence confidences.
    FdSet accepted;
    for (FdId f = 0; f < run.graph.NumFds(); ++f) {
      if (run.graph.FdActive(f) &&
          evidence[static_cast<size_t>(f)] >=
              options_.sums_accept_threshold) {
        accepted.Add(run.graph.fd(f));
      }
    }
    result.accepted_fds = std::move(accepted);
    return result;
  }

 private:
  // Algorithm 4: alternate confidence propagation between FDs and
  // violations until convergence. FD confidence = log-boosted average of
  // its violations' confidences; violation confidence = sum of its FDs'
  // confidences; both max-normalized each round. Pinned (expert-labelled)
  // cells keep their value.
  void EstimateConfidence(CellRun& run, std::vector<double>& cell_conf,
                          const std::vector<bool>& pinned) const {
    const int num_fds = run.graph.NumFds();
    const int num_cells = run.graph.NumCells();
    std::vector<double> next_fd(static_cast<size_t>(num_fds), 0.0);
    for (int iter = 0; iter < options_.sums_max_iterations; ++iter) {
      double max_delta = 0.0;
      // FD side.
      double max_fd = 0.0;
      for (FdId f = 0; f < num_fds; ++f) {
        next_fd[static_cast<size_t>(f)] = 0.0;
        if (!run.graph.FdActive(f)) continue;
        double sum = 0.0;
        int count = 0;
        for (CellId c : run.graph.CellsOfFd(f)) {
          if (!run.graph.CellActive(c)) continue;
          sum += cell_conf[static_cast<size_t>(c)];
          ++count;
        }
        next_fd[static_cast<size_t>(f)] =
            count == 0 ? 0.0 : std::log(1.0 + count) * (sum / count);
        max_fd = std::max(max_fd, next_fd[static_cast<size_t>(f)]);
      }
      if (max_fd > 0.0) {
        for (double& v : next_fd) v /= max_fd;
      }
      for (FdId f = 0; f < num_fds; ++f) {
        max_delta = std::max(max_delta,
                             std::abs(next_fd[static_cast<size_t>(f)] -
                                      run.fd_conf[static_cast<size_t>(f)]));
      }
      run.fd_conf.swap(next_fd);

      // Violation side.
      double max_cell = 0.0;
      for (CellId c = 0; c < num_cells; ++c) {
        if (!run.graph.CellActive(c) || pinned[static_cast<size_t>(c)]) {
          continue;
        }
        double sum = 0.0;
        for (FdId f : run.graph.FdsOfCell(c)) {
          if (run.graph.FdActive(f)) {
            sum += run.fd_conf[static_cast<size_t>(f)];
          }
        }
        cell_conf[static_cast<size_t>(c)] = sum;
        max_cell = std::max(max_cell, sum);
      }
      if (max_cell > 0.0) {
        for (CellId c = 0; c < num_cells; ++c) {
          if (!pinned[static_cast<size_t>(c)] && run.graph.CellActive(c)) {
            cell_conf[static_cast<size_t>(c)] /= max_cell;
          }
        }
      }

      if (max_delta < options_.sums_tolerance) break;
    }
  }

  CellStrategyOptions options_;
};

}  // namespace

std::unique_ptr<Strategy> MakeCellQHittingSet(
    const CellStrategyOptions& options) {
  return std::make_unique<CellQHittingSet>(options);
}

std::unique_ptr<Strategy> MakeCellQSums(const CellStrategyOptions& options) {
  return std::make_unique<CellQSums>(options);
}

std::unique_ptr<Strategy> MakeCellQGreedy(const CellStrategyOptions& options) {
  return std::make_unique<CellQGreedy>(options);
}

std::unique_ptr<Strategy> MakeCellQOracle(const CellStrategyOptions& options) {
  return std::make_unique<CellQOracle>(options);
}

}  // namespace uguide
