#include "core/cell_strategies.h"

#include <algorithm>
#include <cmath>
#include <queue>
#include <utility>
#include <vector>

#include "fd/closure.h"
#include "violations/bipartite_graph.h"
#include "violations/violation_engine.h"

namespace uguide {

namespace {

// Shared working state for one cell-strategy run. The graph is built
// through the session's shared violation engine (or a private fallback)
// and, when the context carries a pool, in parallel — bit-identical to
// the serial build either way. When the context carries a prebuilt shared
// graph (a DatasetRegistry artifact over the same candidate set), the run
// copies it instead: the copy is the run's private mutable state (answers
// deactivate nodes), while the expensive build is paid once per dataset.
struct CellRun {
  CellRun(const QuestionContext& ctx, const CellStrategyOptions& options)
      : engine(ctx.engine, ctx.dirty),
        graph(ctx.graph != nullptr
                  ? *ctx.graph
                  : ViolationGraph::Build(*engine, *ctx.candidates, ctx.pool)),
        fd_conf(static_cast<size_t>(graph.NumFds()),
                options.initial_confidence),
        asked(static_cast<size_t>(graph.NumCells()), false) {}

  EngineRef engine;
  ViolationGraph graph;
  std::vector<double> fd_conf;
  std::vector<bool> asked;

  // Average confidence of the active FDs flagging `c` (Algorithm 2 line 3).
  double CellWeight(CellId c) const {
    double sum = 0.0;
    int count = 0;
    for (FdId f : graph.FdsOfCell(c)) {
      if (!graph.FdActive(f)) continue;
      sum += fd_conf[static_cast<size_t>(f)];
      ++count;
    }
    return count == 0 ? 0.0 : sum / count;
  }

  bool Askable(CellId c) const {
    return graph.CellActive(c) && !asked[static_cast<size_t>(c)] &&
           graph.ActiveDegreeOfCell(c) > 0;
  }

  // Accepts surviving FDs whose confidence reached the absolute cut;
  // threshold 0 accepts every surviving FD.
  FdSet Accept(double threshold) const {
    FdSet accepted;
    graph.ForEachActiveFd([&](FdId f) {
      if (fd_conf[static_cast<size_t>(f)] >= threshold) {
        accepted.Add(graph.fd(f));
      }
    });
    return accepted;
  }
};

// Applies the expert's answer to `c` with Algorithm 2's updates. Returns
// the FDs whose state the answer touched (confidence bump on "yes",
// deactivation on "no") so incremental selectors know which cells to
// rescore.
std::vector<FdId> ApplyAnswer(CellRun& run, CellId c, Answer answer,
                              double delta) {
  run.asked[static_cast<size_t>(c)] = true;
  std::vector<FdId> affected;
  switch (answer) {
    case Answer::kYes:
      // Confirmed violation: every flagging FD gains confidence. Only FDs
      // whose confidence actually moved (it saturates at 1) are reported:
      // an unchanged confidence cannot change any cell's score, so
      // rescoring its cells would push byte-identical heap entries.
      for (FdId f : run.graph.FdsOfCell(c)) {
        if (run.graph.FdActive(f)) {
          double& conf = run.fd_conf[static_cast<size_t>(f)];
          const double bumped = std::min(1.0, conf + delta);
          if (bumped != conf) {
            conf = bumped;
            affected.push_back(f);
          }
        }
      }
      break;
    case Answer::kNo: {
      // Certified clean: every FD that called this an error is invalid.
      // Copy the adjacency first -- DeactivateFd mutates the graph.
      for (FdId f : run.graph.FdsOfCell(c)) {
        if (run.graph.FdActive(f)) affected.push_back(f);
      }
      for (FdId f : affected) run.graph.DeactivateFd(f);
      run.graph.DeactivateCell(c);
      break;
    }
    case Answer::kIdk:
      break;
  }
  return affected;
}

// Lazy-invalidation selector: a min-heap over (score, cell) that pops the
// askable cell with the smallest score, ties toward the lowest CellId —
// exactly the cell the reference linear scan (first strict improvement)
// would pick. Rescoring pushes a fresh entry instead of updating in place;
// stale entries are recognized on pop by comparing against the score
// array. Scores are recomputed by the same floating-point expression the
// reference scan uses, so the staleness equality test and the selected
// cells are exact.
class SelectionHeap {
 public:
  explicit SelectionHeap(int num_cells)
      : score_(static_cast<size_t>(num_cells), 0.0) {}

  void Update(CellId c, double score) {
    score_[static_cast<size_t>(c)] = score;
    heap_.emplace(score, c);
  }

  // The askable cell with the minimal (score, id). Does not pop the
  // returned entry: asking marks the cell un-askable, which retires the
  // entry on the next call. Returns -1 when no candidate remains.
  template <typename AskableFn>
  CellId Best(const AskableFn& askable) {
    while (!heap_.empty()) {
      const auto [score, c] = heap_.top();
      if (!askable(c) || score != score_[static_cast<size_t>(c)]) {
        heap_.pop();
        continue;
      }
      return c;
    }
    return -1;
  }

 private:
  std::vector<double> score_;
  std::priority_queue<std::pair<double, CellId>,
                      std::vector<std::pair<double, CellId>>,
                      std::greater<std::pair<double, CellId>>>
      heap_;
};

class CellQHittingSet : public Strategy {
 public:
  explicit CellQHittingSet(const CellStrategyOptions& options)
      : options_(options) {}

  std::string_view name() const override { return "CellQ-HS"; }

  StrategyResult Run(const QuestionContext& ctx) override {
    return options_.incremental ? RunIncremental(ctx) : RunReference(ctx);
  }

 private:
  // Hitting-set rule: minimize weight / active-degree.
  static double Score(const CellRun& run, CellId c) {
    return run.CellWeight(c) / run.graph.ActiveDegreeOfCell(c);
  }

  StrategyResult RunIncremental(const QuestionContext& ctx) const {
    CellRun run(ctx, options_);
    StrategyResult result;
    const double cost = ctx.cost.CellCost();
    SelectionHeap heap(run.graph.NumCells());
    // Word scan: only active cells are visited, and Askable implies active,
    // so seeding the heap over the bitmap matches the dense 0..NumCells
    // scan exactly (ascending, same entries).
    run.graph.ForEachActiveCell([&](CellId c) {
      if (run.Askable(c)) heap.Update(c, Score(run, c));
    });
    const auto askable = [&run](CellId c) { return run.Askable(c); };
    // Scratch for per-answer rescoring: a cell adjacent to several touched
    // FDs is rescored once, not once per FD (CellWeight is O(degree)).
    std::vector<bool> seen(static_cast<size_t>(run.graph.NumCells()), false);
    std::vector<CellId> touched;
    while (result.cost_spent + cost <= ctx.budget) {
      const CellId best = heap.Best(askable);
      if (best < 0) break;
      Answer answer = ctx.expert->IsCellErroneous(run.graph.cell(best));
      result.cost_spent += cost;
      ++result.questions_asked;
      // Only cells adjacent to a touched FD can change score: "yes" bumps
      // the flagging FDs' confidences, "no" removes them (and with them
      // degree). Everything else keeps its fresh heap entry.
      for (FdId f : ApplyAnswer(run, best, answer, options_.delta)) {
        for (CellId c : run.graph.CellsOfFd(f)) {
          if (seen[static_cast<size_t>(c)] || !run.Askable(c)) continue;
          seen[static_cast<size_t>(c)] = true;
          touched.push_back(c);
          heap.Update(c, Score(run, c));
        }
      }
      for (CellId c : touched) seen[static_cast<size_t>(c)] = false;
      touched.clear();
    }
    result.accepted_fds = run.Accept(options_.accept_threshold);
    return result;
  }

  // The original full-rescan selection, retained as the behavioral
  // reference for the equivalence suite.
  StrategyResult RunReference(const QuestionContext& ctx) const {
    CellRun run(ctx, options_);
    StrategyResult result;
    const double cost = ctx.cost.CellCost();
    while (result.cost_spent + cost <= ctx.budget) {
      CellId best = -1;
      double best_score = 0.0;
      for (CellId c = 0; c < run.graph.NumCells(); ++c) {
        if (!run.Askable(c)) continue;
        const double score = Score(run, c);
        if (best < 0 || score < best_score) {
          best = c;
          best_score = score;
        }
      }
      if (best < 0) break;
      Answer answer = ctx.expert->IsCellErroneous(run.graph.cell(best));
      result.cost_spent += cost;
      ++result.questions_asked;
      ApplyAnswer(run, best, answer, options_.delta);
    }
    result.accepted_fds = run.Accept(options_.accept_threshold);
    return result;
  }

  CellStrategyOptions options_;
};

class CellQGreedy : public Strategy {
 public:
  explicit CellQGreedy(const CellStrategyOptions& options)
      : options_(options) {}

  std::string_view name() const override { return "CellQ-Greedy"; }

  StrategyResult Run(const QuestionContext& ctx) override {
    return options_.incremental ? RunIncremental(ctx) : RunReference(ctx);
  }

 private:
  // Greedy rule: maximize the number of flagging candidate FDs. Negated so
  // the shared min-heap selects the maximum; degrees are small integers,
  // exactly representable, so staleness equality is exact.
  static double Score(const CellRun& run, CellId c) {
    return -static_cast<double>(run.graph.ActiveDegreeOfCell(c));
  }

  StrategyResult RunIncremental(const QuestionContext& ctx) const {
    CellRun run(ctx, options_);
    StrategyResult result;
    const double cost = ctx.cost.CellCost();
    SelectionHeap heap(run.graph.NumCells());
    // Word scan: only active cells are visited, and Askable implies active,
    // so seeding the heap over the bitmap matches the dense 0..NumCells
    // scan exactly (ascending, same entries).
    run.graph.ForEachActiveCell([&](CellId c) {
      if (run.Askable(c)) heap.Update(c, Score(run, c));
    });
    const auto askable = [&run](CellId c) { return run.Askable(c); };
    std::vector<bool> seen(static_cast<size_t>(run.graph.NumCells()), false);
    std::vector<CellId> touched;
    while (result.cost_spent + cost <= ctx.budget) {
      const CellId best = heap.Best(askable);
      if (best < 0) break;
      Answer answer = ctx.expert->IsCellErroneous(run.graph.cell(best));
      result.cost_spent += cost;
      ++result.questions_asked;
      const std::vector<FdId> affected =
          ApplyAnswer(run, best, answer, options_.delta);
      // Degree is the whole score, and it only moves when FDs deactivate:
      // a "yes" changes confidences, never degrees, so every heap entry
      // stays exact and rescoring would push duplicates.
      if (answer != Answer::kNo) continue;
      for (FdId f : affected) {
        for (CellId c : run.graph.CellsOfFd(f)) {
          if (seen[static_cast<size_t>(c)] || !run.Askable(c)) continue;
          seen[static_cast<size_t>(c)] = true;
          touched.push_back(c);
          heap.Update(c, Score(run, c));
        }
      }
      for (CellId c : touched) seen[static_cast<size_t>(c)] = false;
      touched.clear();
    }
    result.accepted_fds = run.Accept(options_.accept_threshold);
    return result;
  }

  StrategyResult RunReference(const QuestionContext& ctx) const {
    CellRun run(ctx, options_);
    StrategyResult result;
    const double cost = ctx.cost.CellCost();
    while (result.cost_spent + cost <= ctx.budget) {
      CellId best = -1;
      int best_degree = 0;
      for (CellId c = 0; c < run.graph.NumCells(); ++c) {
        if (!run.Askable(c)) continue;
        const int degree = run.graph.ActiveDegreeOfCell(c);
        if (degree > best_degree) {
          best = c;
          best_degree = degree;
        }
      }
      if (best < 0) break;
      Answer answer = ctx.expert->IsCellErroneous(run.graph.cell(best));
      result.cost_spent += cost;
      ++result.questions_asked;
      ApplyAnswer(run, best, answer, options_.delta);
    }
    result.accepted_fds = run.Accept(options_.accept_threshold);
    return result;
  }

  CellStrategyOptions options_;
};

class CellQOracle : public Strategy {
 public:
  explicit CellQOracle(const CellStrategyOptions& options)
      : options_(options) {}

  std::string_view name() const override { return "CellQ-Oracle"; }

  StrategyResult Run(const QuestionContext& ctx) override {
    UGUIDE_CHECK(ctx.true_violations != nullptr && ctx.true_fds != nullptr)
        << "CellQ-Oracle requires the true violation set and true FDs";
    CellRun run(ctx, options_);
    StrategyResult result;
    const double cost = ctx.cost.CellCost();

    // The oracle knows which candidate FDs are genuinely implied by the
    // clean table's FDs.
    ClosureEngine true_closure(*ctx.true_fds);
    std::vector<bool> is_true_fd(static_cast<size_t>(run.graph.NumFds()));
    for (FdId f = 0; f < run.graph.NumFds(); ++f) {
      is_true_fd[static_cast<size_t>(f)] =
          true_closure.Implies(run.graph.fd(f));
    }

    while (result.cost_spent + cost <= ctx.budget) {
      // Payoff of a question: a clean cell kills its active false FDs; a
      // true violation pushes its unaccepted true FDs toward acceptance.
      CellId best = -1;
      double best_payoff = 0.0;
      run.graph.ForEachActiveCell([&](CellId c) {
        if (!run.Askable(c)) return;
        double payoff = 0.0;
        const bool is_violation =
            ctx.true_violations->Contains(run.graph.cell(c));
        for (FdId f : run.graph.FdsOfCell(c)) {
          if (!run.graph.FdActive(f)) continue;
          if (!is_violation) {
            payoff += is_true_fd[static_cast<size_t>(f)] ? 0.0 : 1.0;
          } else if (is_true_fd[static_cast<size_t>(f)] &&
                     run.fd_conf[static_cast<size_t>(f)] <
                         options_.accept_threshold) {
            payoff += 1.0;
          }
        }
        if (payoff > best_payoff) {
          best = c;
          best_payoff = payoff;
        }
      });
      if (best < 0) break;
      Answer answer = ctx.expert->IsCellErroneous(run.graph.cell(best));
      result.cost_spent += cost;
      ++result.questions_asked;
      ApplyAnswer(run, best, answer, options_.delta);
    }
    result.accepted_fds = run.Accept(options_.accept_threshold);
    return result;
  }

 private:
  CellStrategyOptions options_;
};

// --- Cell-Q-SUMS ----------------------------------------------------------

// Persistent fixpoint state for the incremental Estimate-Confidence:
// un-normalized node scores plus staleness flags. A node's expensive
// adjacency sum is recomputed only when one of its inputs changed (an
// expert answer or a bitwise change of a neighbor's normalized value in
// the previous half-iteration); normalization and convergence checks stay
// cheap whole-array scalar passes. Because a non-stale node's stored sum
// is bitwise what the full recomputation would produce, every iteration —
// and therefore the whole fixpoint, its iteration count, and the selected
// questions — is byte-identical to the reference implementation.
struct SumsState {
  explicit SumsState(const ViolationGraph& graph)
      : u_fd(static_cast<size_t>(graph.NumFds()), 0.0),
        raw_cell(static_cast<size_t>(graph.NumCells()), 0.0),
        norm_fd(static_cast<size_t>(graph.NumFds()), 0.0),
        fd_stale(static_cast<size_t>(graph.NumFds()), 1),
        cell_stale(static_cast<size_t>(graph.NumCells()), 1) {}

  std::vector<double> u_fd;      // un-normalized FD scores
  std::vector<double> raw_cell;  // un-normalized cell sums
  std::vector<double> norm_fd;   // scratch for normalized FD values
  std::vector<char> fd_stale;
  std::vector<char> cell_stale;
  // Dense-staleness mode bits: a node is stale iff the side's `all` bit is
  // set or its flag is. Normalization-max shifts cascade bitwise changes
  // to a whole side at once; flipping one bit then lets the refresh pass
  // skip flag reads entirely and run at exactly the reference cost.
  bool fd_all_stale = true;
  bool cell_all_stale = true;

  void MarkFdsOfCell(const ViolationGraph& graph, CellId c) {
    for (FdId f : graph.FdsOfCell(c)) fd_stale[static_cast<size_t>(f)] = 1;
  }
  void MarkCellsOfFd(const ViolationGraph& graph, FdId f) {
    for (CellId c : graph.CellsOfFd(f)) cell_stale[static_cast<size_t>(c)] = 1;
  }
};

class CellQSums : public Strategy {
 public:
  explicit CellQSums(const CellStrategyOptions& options)
      : options_(options) {}

  std::string_view name() const override { return "CellQ-SUMS"; }

  StrategyResult Run(const QuestionContext& ctx) override {
    CellRun run(ctx, options_);
    StrategyResult result;
    const double cost = ctx.cost.CellCost();
    std::vector<double> cell_conf(static_cast<size_t>(run.graph.NumCells()),
                                  1.0);
    // Cells the expert confirmed as violations are pinned at confidence 1
    // and keep feeding evidence into Estimate-Confidence.
    std::vector<bool> pinned(static_cast<size_t>(run.graph.NumCells()),
                             false);
    SumsState state(run.graph);
    const auto estimate = [&] {
      if (options_.incremental) {
        EstimateConfidenceIncremental(run, cell_conf, pinned, state);
      } else {
        EstimateConfidenceReference(run, cell_conf, pinned);
      }
    };

    // Evidence confidence, separate from the Estimate-Confidence fixpoint
    // scores in run.fd_conf: acceptance follows the same confirmed-
    // violation mechanism as Algorithm 2, while the fixpoint drives
    // question selection.
    std::vector<double> evidence(static_cast<size_t>(run.graph.NumFds()),
                                 options_.initial_confidence);
    estimate();
    int answers_since_estimate = 0;
    while (result.cost_spent + cost <= ctx.budget) {
      // Maximum information: confidence near 1/2 (the fixpoint is unsure),
      // weighted by the *marginal* evidence the answer can add -- flagging
      // FDs that are already confirmed contribute nothing, so the strategy
      // moves on instead of re-confirming the same dependencies.
      CellId best = -1;
      double best_score = 0.0;
      run.graph.ForEachActiveCell([&](CellId c) {
        if (!run.Askable(c)) return;
        const double uncertainty =
            1.0 - std::abs(2.0 * cell_conf[static_cast<size_t>(c)] - 1.0);
        double marginal = 0.0;
        for (FdId f : run.graph.FdsOfCell(c)) {
          if (run.graph.FdActive(f)) {
            marginal += 1.0 - evidence[static_cast<size_t>(f)];
          }
        }
        const double score = (0.05 + uncertainty) * marginal;
        if (score > best_score) {
          best = c;
          best_score = score;
        }
      });
      if (best < 0) {
        // No confirmation can add evidence anymore; spend leftover budget
        // hunting false positives instead: ask the least trusted violation,
        // whose "no" answer invalidates its flagging FDs.
        double lowest = 2.0;
        run.graph.ForEachActiveCell([&](CellId c) {
          if (!run.Askable(c)) return;
          if (cell_conf[static_cast<size_t>(c)] < lowest) {
            best = c;
            lowest = cell_conf[static_cast<size_t>(c)];
          }
        });
      }
      if (best < 0) break;
      Answer answer = ctx.expert->IsCellErroneous(run.graph.cell(best));
      result.cost_spent += cost;
      ++result.questions_asked;
      run.asked[static_cast<size_t>(best)] = true;
      switch (answer) {
        case Answer::kYes:
          pinned[static_cast<size_t>(best)] = true;
          cell_conf[static_cast<size_t>(best)] = 1.0;
          // The pinned cell's value feeds its flagging FDs' averages.
          state.MarkFdsOfCell(run.graph, best);
          for (FdId f : run.graph.FdsOfCell(best)) {
            if (run.graph.FdActive(f)) {
              double& conf = evidence[static_cast<size_t>(f)];
              conf = std::min(1.0, conf + options_.delta);
            }
          }
          break;
        case Answer::kNo: {
          std::vector<FdId> flagging;
          for (FdId f : run.graph.FdsOfCell(best)) {
            if (run.graph.FdActive(f)) flagging.push_back(f);
          }
          for (FdId f : flagging) run.graph.DeactivateFd(f);
          run.graph.DeactivateCell(best);
          // Deactivated FDs drop to score 0 and leave their cells' sums.
          for (FdId f : flagging) {
            state.fd_stale[static_cast<size_t>(f)] = 1;
            state.MarkCellsOfFd(run.graph, f);
          }
          break;
        }
        case Answer::kIdk:
          continue;  // no new evidence; re-select
      }
      // The fixpoint moves little per answer; recompute in batches.
      if (++answers_since_estimate >= options_.sums_recompute_interval) {
        estimate();
        answers_since_estimate = 0;
      }
    }

    // Accept like Algorithm 2, from the evidence confidences.
    FdSet accepted;
    for (FdId f = 0; f < run.graph.NumFds(); ++f) {
      if (run.graph.FdActive(f) &&
          evidence[static_cast<size_t>(f)] >=
              options_.sums_accept_threshold) {
        accepted.Add(run.graph.fd(f));
      }
    }
    result.accepted_fds = std::move(accepted);
    return result;
  }

 private:
  // Algorithm 4: alternate confidence propagation between FDs and
  // violations until convergence. FD confidence = log-boosted average of
  // its violations' confidences; violation confidence = sum of its FDs'
  // confidences; both max-normalized each round. Pinned (expert-labelled)
  // cells keep their value. Retained as the behavioral reference for the
  // incremental version below.
  void EstimateConfidenceReference(CellRun& run,
                                   std::vector<double>& cell_conf,
                                   const std::vector<bool>& pinned) const {
    const int num_fds = run.graph.NumFds();
    const int num_cells = run.graph.NumCells();
    std::vector<double> next_fd(static_cast<size_t>(num_fds), 0.0);
    for (int iter = 0; iter < options_.sums_max_iterations; ++iter) {
      double max_delta = 0.0;
      // FD side.
      double max_fd = 0.0;
      for (FdId f = 0; f < num_fds; ++f) {
        next_fd[static_cast<size_t>(f)] = 0.0;
        if (!run.graph.FdActive(f)) continue;
        double sum = 0.0;
        int count = 0;
        for (CellId c : run.graph.CellsOfFd(f)) {
          if (!run.graph.CellActive(c)) continue;
          sum += cell_conf[static_cast<size_t>(c)];
          ++count;
        }
        next_fd[static_cast<size_t>(f)] =
            count == 0 ? 0.0 : std::log(1.0 + count) * (sum / count);
        max_fd = std::max(max_fd, next_fd[static_cast<size_t>(f)]);
      }
      if (max_fd > 0.0) {
        for (double& v : next_fd) v /= max_fd;
      }
      for (FdId f = 0; f < num_fds; ++f) {
        max_delta = std::max(max_delta,
                             std::abs(next_fd[static_cast<size_t>(f)] -
                                      run.fd_conf[static_cast<size_t>(f)]));
      }
      run.fd_conf.swap(next_fd);

      // Violation side.
      double max_cell = 0.0;
      for (CellId c = 0; c < num_cells; ++c) {
        if (!run.graph.CellActive(c) || pinned[static_cast<size_t>(c)]) {
          continue;
        }
        double sum = 0.0;
        for (FdId f : run.graph.FdsOfCell(c)) {
          if (run.graph.FdActive(f)) {
            sum += run.fd_conf[static_cast<size_t>(f)];
          }
        }
        cell_conf[static_cast<size_t>(c)] = sum;
        max_cell = std::max(max_cell, sum);
      }
      if (max_cell > 0.0) {
        for (CellId c = 0; c < num_cells; ++c) {
          if (!pinned[static_cast<size_t>(c)] && run.graph.CellActive(c)) {
            cell_conf[static_cast<size_t>(c)] /= max_cell;
          }
        }
      }

      if (max_delta < options_.sums_tolerance) break;
    }
  }

  // The same fixpoint, recomputing adjacency sums only for nodes whose
  // inputs changed. Un-normalized scores persist in `state` across calls;
  // staleness is seeded by expert answers (see Run) and propagated inside
  // an iteration by *bitwise* comparison of normalized values, so a node
  // is recomputed exactly when a full recomputation could produce a
  // different bit pattern. Normalization, the convergence delta, and the
  // max reductions remain O(nodes) scalar passes over stored values —
  // identical arithmetic to the reference, hence identical results,
  // iteration counts, and early exits.
  void EstimateConfidenceIncremental(CellRun& run,
                                     std::vector<double>& cell_conf,
                                     const std::vector<bool>& pinned,
                                     SumsState& state) const {
    const int num_fds = run.graph.NumFds();
    const int num_cells = run.graph.NumCells();
    // Changed nodes collected per iteration; when a large fraction of one
    // side changed (a "no" answer shifting a normalization max cascades
    // globally), setting the other side's dense-staleness bit beats
    // per-node adjacency marking, and the next refresh runs flag-free at
    // reference cost. Over-marking only triggers recomputation, which is
    // deterministic, so results are unaffected.
    std::vector<FdId> changed_fds;
    std::vector<CellId> changed_cells;
    const auto fd_score = [&](FdId f) {
      if (!run.graph.FdActive(f)) return 0.0;
      double sum = 0.0;
      int count = 0;
      for (CellId c : run.graph.CellsOfFd(f)) {
        if (!run.graph.CellActive(c)) continue;
        sum += cell_conf[static_cast<size_t>(c)];
        ++count;
      }
      return count == 0 ? 0.0 : std::log(1.0 + count) * (sum / count);
    };
    const auto cell_sum = [&](CellId c) {
      double sum = 0.0;
      for (FdId f : run.graph.FdsOfCell(c)) {
        if (run.graph.FdActive(f)) {
          sum += run.fd_conf[static_cast<size_t>(f)];
        }
      }
      return sum;
    };
    for (int iter = 0; iter < options_.sums_max_iterations; ++iter) {
      // FD side: refresh stale un-normalized scores.
      if (state.fd_all_stale) {
        state.fd_all_stale = false;
        std::fill(state.fd_stale.begin(), state.fd_stale.end(), 0);
        for (FdId f = 0; f < num_fds; ++f) {
          state.u_fd[static_cast<size_t>(f)] = fd_score(f);
        }
      } else {
        for (FdId f = 0; f < num_fds; ++f) {
          if (!state.fd_stale[static_cast<size_t>(f)]) continue;
          state.fd_stale[static_cast<size_t>(f)] = 0;
          state.u_fd[static_cast<size_t>(f)] = fd_score(f);
        }
      }
      double max_fd = 0.0;
      for (FdId f = 0; f < num_fds; ++f) {
        max_fd = std::max(max_fd, state.u_fd[static_cast<size_t>(f)]);
      }
      double max_delta = 0.0;
      changed_fds.clear();
      for (FdId f = 0; f < num_fds; ++f) {
        const double u = state.u_fd[static_cast<size_t>(f)];
        const double v = max_fd > 0.0 ? u / max_fd : u;
        state.norm_fd[static_cast<size_t>(f)] = v;
        max_delta = std::max(
            max_delta, std::abs(v - run.fd_conf[static_cast<size_t>(f)]));
        // A bitwise change of this FD's normalized score invalidates the
        // stored sums of the cells it flags.
        if (v != run.fd_conf[static_cast<size_t>(f)]) {
          changed_fds.push_back(f);
        }
      }
      run.fd_conf.swap(state.norm_fd);
      if (!state.cell_all_stale) {
        if (changed_fds.size() >= static_cast<size_t>(num_fds) / 4 + 1) {
          state.cell_all_stale = true;
        } else {
          for (FdId f : changed_fds) state.MarkCellsOfFd(run.graph, f);
        }
      }

      // Violation side: refresh stale sums, then normalize in place.
      if (state.cell_all_stale) {
        state.cell_all_stale = false;
        std::fill(state.cell_stale.begin(), state.cell_stale.end(), 0);
        for (CellId c = 0; c < num_cells; ++c) {
          if (!run.graph.CellActive(c) || pinned[static_cast<size_t>(c)]) {
            continue;
          }
          state.raw_cell[static_cast<size_t>(c)] = cell_sum(c);
        }
      } else {
        for (CellId c = 0; c < num_cells; ++c) {
          if (!run.graph.CellActive(c) || pinned[static_cast<size_t>(c)]) {
            continue;
          }
          if (!state.cell_stale[static_cast<size_t>(c)]) continue;
          state.cell_stale[static_cast<size_t>(c)] = 0;
          state.raw_cell[static_cast<size_t>(c)] = cell_sum(c);
        }
      }
      double max_cell = 0.0;
      for (CellId c = 0; c < num_cells; ++c) {
        if (!run.graph.CellActive(c) || pinned[static_cast<size_t>(c)]) {
          continue;
        }
        max_cell =
            std::max(max_cell, state.raw_cell[static_cast<size_t>(c)]);
      }
      changed_cells.clear();
      for (CellId c = 0; c < num_cells; ++c) {
        if (!run.graph.CellActive(c) || pinned[static_cast<size_t>(c)]) {
          continue;
        }
        const double raw = state.raw_cell[static_cast<size_t>(c)];
        const double v = max_cell > 0.0 ? raw / max_cell : raw;
        if (v != cell_conf[static_cast<size_t>(c)]) {
          cell_conf[static_cast<size_t>(c)] = v;
          changed_cells.push_back(c);
        }
      }
      if (!state.fd_all_stale) {
        if (changed_cells.size() >= static_cast<size_t>(num_cells) / 4 + 1) {
          state.fd_all_stale = true;
        } else {
          for (CellId c : changed_cells) state.MarkFdsOfCell(run.graph, c);
        }
      }

      if (max_delta < options_.sums_tolerance) break;
    }
  }

  CellStrategyOptions options_;
};

}  // namespace

std::unique_ptr<Strategy> MakeCellQHittingSet(
    const CellStrategyOptions& options) {
  return std::make_unique<CellQHittingSet>(options);
}

std::unique_ptr<Strategy> MakeCellQSums(const CellStrategyOptions& options) {
  return std::make_unique<CellQSums>(options);
}

std::unique_ptr<Strategy> MakeCellQGreedy(const CellStrategyOptions& options) {
  return std::make_unique<CellQGreedy>(options);
}

std::unique_ptr<Strategy> MakeCellQOracle(const CellStrategyOptions& options) {
  return std::make_unique<CellQOracle>(options);
}

}  // namespace uguide
