#ifndef UGUIDE_CORE_STRATEGY_H_
#define UGUIDE_CORE_STRATEGY_H_

#include <memory>
#include <string>
#include <string_view>

#include "errorgen/error_generator.h"
#include "fd/fd.h"
#include "oracle/cost_model.h"
#include "oracle/expert.h"
#include "relation/relation.h"
#include "violations/violation_detector.h"

namespace uguide {

class ThreadPool;
class ViolationEngine;
class ViolationGraph;

/// \brief Everything an interactive strategy needs for one run.
///
/// `true_violations` is only consulted by the hypothetical oracle
/// baselines of §7.1, which are allowed to peek at the ground truth; honest
/// strategies ignore it and may leave it null.
struct QuestionContext {
  const Relation* dirty = nullptr;
  const FdSet* candidates = nullptr;
  Expert* expert = nullptr;
  CostModel cost;
  double budget = 0.0;

  /// Shared partition-backed violation engine over `dirty`. Optional: a
  /// strategy that needs violation sets wraps it in an EngineRef, which
  /// falls back to a private engine when this is null. Sessions pass their
  /// per-run engine so graph construction, question building, and
  /// evaluation share one LHS-partition cache.
  ViolationEngine* engine = nullptr;

  /// Worker pool for the parallel violation-graph build. Optional; null
  /// (or a single-thread pool) means serial. Results are bit-identical at
  /// any thread count.
  ThreadPool* pool = nullptr;

  /// Prebuilt, immutable violation graph over `candidates` (a shared
  /// DatasetRegistry artifact). Optional: cell strategies copy it instead
  /// of rebuilding — bit-identical because the artifact was produced by
  /// the same ViolationGraph::Build over the same candidate set. Null
  /// means build per run, as standalone callers do.
  const ViolationGraph* graph = nullptr;

  /// Sigma_T, the exact FDs discovered on the dirty table. Optional; the
  /// saturation-set tuple strategy needs it (Alg. 8) and rediscovers it if
  /// absent.
  const FdSet* exact_fds = nullptr;

  /// Sigma_TC, the FD set the simulated expert validates against (oracle
  /// baselines only -- they are allowed to peek, §7.1).
  const FdSet* true_fds = nullptr;

  /// E_T, the cells violating the true FDs (oracle baselines only).
  const TrueViolationSet* true_violations = nullptr;

  /// The error generator's ledger (oracle baselines only).
  const GroundTruth* injected = nullptr;
};

/// Outcome of a strategy run.
struct StrategyResult {
  /// The FDs the strategy accepts as true; their violations on the dirty
  /// table are the reported error detections.
  FdSet accepted_fds;
  double cost_spent = 0.0;
  int questions_asked = 0;
};

/// \brief Interface every question-selection strategy implements.
///
/// A strategy instance is stateless across runs: Run() may be called
/// repeatedly with different contexts (the benches sweep budgets this way).
class Strategy {
 public:
  virtual ~Strategy() = default;

  /// Short machine-friendly name, e.g. "CellQ-SUMS".
  virtual std::string_view name() const = 0;

  /// Executes the interactive loop until the budget is exhausted (or no
  /// useful question remains) and returns the accepted FDs.
  virtual StrategyResult Run(const QuestionContext& context) = 0;
};

}  // namespace uguide

#endif  // UGUIDE_CORE_STRATEGY_H_
