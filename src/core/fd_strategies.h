#ifndef UGUIDE_CORE_FD_STRATEGIES_H_
#define UGUIDE_CORE_FD_STRATEGIES_H_

#include <memory>

#include "core/strategy.h"

namespace uguide {

/// Tuning knobs for the FD-based strategies (§5).
struct FdStrategyOptions {
  /// If true, FD-Q-BMC also considers merged (non-minimal) questions: for
  /// two candidates A -> C and B -> C it may ask AB -> C, covering both
  /// FDs' violations with one (penalized) question. Keeps the §5 desiderata
  /// and the §7.2.6 IDK fallback behaviour.
  bool allow_non_minimal = true;

  /// Maximum number of merged candidates generated (guards quadratic
  /// blowup on datasets with hundreds of FDs).
  int max_merged_candidates = 200;
};

/// FD-Q-Budgeted-Max-Coverage (Algorithm 5): each round asks the candidate
/// FD maximizing (uncovered-violation weight x accuracy prior) / cost;
/// validated FDs are accepted and their violations marked covered.
std::unique_ptr<Strategy> MakeFdQBudgetedMaxCoverage(
    const FdStrategyOptions& options = {});

/// FD-Q-Greedy baseline (§7.1): asks the candidate FD with the most
/// uncovered violations, ignoring question cost.
std::unique_ptr<Strategy> MakeFdQGreedy(const FdStrategyOptions& options = {});

/// FDQ-Oracle baseline (§7.1): peeks at the true FD set and spends the
/// budget only on valid FDs, ordered by uncovered-violation count per cost.
std::unique_ptr<Strategy> MakeFdQOracle(const FdStrategyOptions& options = {});

}  // namespace uguide

#endif  // UGUIDE_CORE_FD_STRATEGIES_H_
