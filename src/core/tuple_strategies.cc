#include "core/tuple_strategies.h"

#include <algorithm>
#include <unordered_set>
#include <vector>

#include "common/rng.h"
#include "discovery/tane.h"
#include "fd/closure.h"
#include "violations/violation_engine.h"

namespace uguide {

namespace {

// Discovers the (minimal) FDs of the accepted sample TS; these are the
// strategy's accepted FDs (the concise representation of the possibly
// exponential Sigma_TS, §6). An empty sample accepts nothing; a one-tuple
// sample collapses to the constant-column FDs {} -> A, which correctly
// represents "every candidate FD still holds".
FdSet DiscoverSampleFds(const Relation& dirty,
                        const std::vector<TupleId>& sample,
                        const TupleStrategyOptions& options) {
  if (sample.empty()) return FdSet();
  Relation ts = dirty.SelectRows(sample);
  TaneOptions tane;
  tane.max_error = 0.0;
  tane.max_lhs_size = options.max_lhs_size;
  return DiscoverFds(ts, tane).ValueOrDie();
}

// Weighted sampling weights of Algorithm 7: |Sigma_cand| minus the number
// of candidate FDs whose removal set contains the tuple, normalized so
// every tuple keeps a non-negative chance.
std::vector<double> ViolationWeights(const QuestionContext& ctx) {
  EngineRef engine(ctx.engine, ctx.dirty);
  const std::vector<int> counts =
      engine->ViolationCountPerTuple(*ctx.candidates);
  const double total = static_cast<double>(ctx.candidates->Size());
  std::vector<double> weights(counts.size());
  bool any_positive = false;
  for (size_t i = 0; i < counts.size(); ++i) {
    weights[i] = std::max(0.0, total - counts[i]);
    any_positive = any_positive || weights[i] > 0.0;
  }
  if (!any_positive) {
    std::fill(weights.begin(), weights.end(), 1.0);
  }
  return weights;
}

// Weighted sampler over the unasked tuples. The remaining weighted mass is
// maintained incrementally — MarkAsked subtracts the retiring tuple's
// weight — instead of being re-summed over all unasked tuples before each
// draw. Every weight is a small integer-valued double (|Sigma_cand| minus
// a count, or the all-ones fallback), so the running difference is exact
// and the mass equals the reference re-summation bit for bit; the rng draw
// sequence is therefore unchanged.
class WeightedDraw {
 public:
  explicit WeightedDraw(std::vector<double> weights)
      : weights_(std::move(weights)) {
    for (double w : weights_) remaining_ += w;
  }

  // Call exactly when the caller marks `t` asked.
  void MarkAsked(TupleId t) { remaining_ -= weights_[static_cast<size_t>(t)]; }

  // Draws an unasked tuple by weight; returns -1 when every tuple was
  // asked. Does not itself retire the tuple (saturation sampling draws
  // with rejection, so a drawn tuple may stay in the pool).
  TupleId Draw(Rng& rng, const std::vector<bool>& asked) const {
    if (remaining_ <= 0.0) {
      // Weighted mass exhausted; fall back to the first unasked tuple.
      for (size_t i = 0; i < weights_.size(); ++i) {
        if (!asked[i]) return static_cast<TupleId>(i);
      }
      return -1;
    }
    double r = rng.NextDouble() * remaining_;
    for (size_t i = 0; i < weights_.size(); ++i) {
      if (asked[i]) continue;
      r -= weights_[i];
      if (r < 0.0) return static_cast<TupleId>(i);
    }
    for (size_t i = weights_.size(); i-- > 0;) {
      if (!asked[i]) return static_cast<TupleId>(i);
    }
    return -1;
  }

 private:
  std::vector<double> weights_;
  double remaining_ = 0.0;
};

// Common sampling loop: `draw` produces the next tuple to validate.
template <typename DrawFn>
StrategyResult RunSamplingLoop(const QuestionContext& ctx,
                               const TupleStrategyOptions& options,
                               DrawFn draw) {
  StrategyResult result;
  const double cost = ctx.cost.TupleCost(ctx.dirty->NumAttributes());
  std::vector<bool> asked(static_cast<size_t>(ctx.dirty->NumRows()), false);
  std::vector<TupleId> sample;
  while (result.cost_spent + cost <= ctx.budget) {
    TupleId t = draw(asked, sample);
    if (t < 0) break;
    asked[static_cast<size_t>(t)] = true;
    const Answer answer = ctx.expert->IsTupleClean(t);
    result.cost_spent += cost;
    ++result.questions_asked;
    if (answer == Answer::kYes) sample.push_back(t);
  }
  result.accepted_fds = DiscoverSampleFds(*ctx.dirty, sample, options);
  return result;
}

class TupleSamplingUniform : public Strategy {
 public:
  explicit TupleSamplingUniform(const TupleStrategyOptions& options)
      : options_(options) {}

  std::string_view name() const override { return "Sampling-Uniform"; }

  StrategyResult Run(const QuestionContext& ctx) override {
    Rng rng(options_.seed);
    WeightedDraw drawer(std::vector<double>(
        static_cast<size_t>(ctx.dirty->NumRows()), 1.0));
    return RunSamplingLoop(
        ctx, options_,
        [&](const std::vector<bool>& asked, const std::vector<TupleId>&) {
          TupleId t = drawer.Draw(rng, asked);
          // The loop marks the drawn tuple asked unconditionally.
          if (t >= 0) drawer.MarkAsked(t);
          return t;
        });
  }

 private:
  TupleStrategyOptions options_;
};

class TupleSamplingViolationWeighting : public Strategy {
 public:
  explicit TupleSamplingViolationWeighting(
      const TupleStrategyOptions& options)
      : options_(options) {}

  std::string_view name() const override { return "Sampling-Violation"; }

  StrategyResult Run(const QuestionContext& ctx) override {
    Rng rng(options_.seed);
    WeightedDraw drawer(ViolationWeights(ctx));
    return RunSamplingLoop(
        ctx, options_,
        [&](const std::vector<bool>& asked, const std::vector<TupleId>&) {
          TupleId t = drawer.Draw(rng, asked);
          if (t >= 0) drawer.MarkAsked(t);
          return t;
        });
  }

 private:
  TupleStrategyOptions options_;
};

class TupleSamplingSaturationSets : public Strategy {
 public:
  explicit TupleSamplingSaturationSets(const TupleStrategyOptions& options)
      : options_(options) {}

  std::string_view name() const override { return "Sampling-Saturation"; }

  StrategyResult Run(const QuestionContext& ctx) override {
    Rng rng(options_.seed);
    const int m = ctx.dirty->NumAttributes();

    // Saturated sets of the FDs discovered on the dirty table (Alg. 8
    // line 2). The full attribute set can never be the agree-set of two
    // distinct tuples, so it is dropped.
    FdSet exact;
    if (ctx.exact_fds != nullptr) {
      exact = *ctx.exact_fds;
    } else {
      TaneOptions tane;
      tane.max_lhs_size = options_.max_lhs_size;
      exact = DiscoverFds(*ctx.dirty, tane).ValueOrDie();
    }
    std::unordered_set<AttributeSet, AttributeSetHash> saturated;
    for (const AttributeSet& w : SaturatedSets(
             exact, m, static_cast<size_t>(options_.max_saturated_sets))) {
      if (w != AttributeSet::Full(m)) saturated.insert(w);
    }

    WeightedDraw drawer(ViolationWeights(ctx));

    // A sampled tuple is useful if pairing it with an accepted tuple
    // realizes an uncovered saturated set (the Armstrong pair condition).
    // The first two accepted tuples bootstrap the sample.
    auto realized_sets = [&](TupleId t, const std::vector<TupleId>& sample) {
      std::vector<AttributeSet> hits;
      for (TupleId other : sample) {
        AttributeSet agree = ctx.dirty->AgreeSet(t, other);
        if (saturated.contains(agree)) hits.push_back(agree);
      }
      return hits;
    };

    StrategyResult result;
    const double cost = ctx.cost.TupleCost(m);
    std::vector<bool> asked(static_cast<size_t>(ctx.dirty->NumRows()), false);
    std::vector<TupleId> sample;
    while (result.cost_spent + cost <= ctx.budget) {
      // Bounded rejection sampling for a saturating tuple; if none is
      // found, fall back to plain violation-weighted sampling so the
      // budget is still spent productively.
      TupleId chosen = -1;
      TupleId fallback = -1;
      for (int attempt = 0; attempt < 64; ++attempt) {
        TupleId t = drawer.Draw(rng, asked);
        if (t < 0) break;
        fallback = t;
        if (sample.size() < 2 || !realized_sets(t, sample).empty()) {
          chosen = t;
          break;
        }
      }
      if (chosen < 0) chosen = fallback;
      if (chosen < 0) break;
      asked[static_cast<size_t>(chosen)] = true;
      drawer.MarkAsked(chosen);
      const Answer answer = ctx.expert->IsTupleClean(chosen);
      result.cost_spent += cost;
      ++result.questions_asked;
      if (answer != Answer::kYes) continue;
      // Certified clean: retire the saturated sets it realizes (Alg. 8
      // line 7), then add it to the sample.
      for (const AttributeSet& w : realized_sets(chosen, sample)) {
        saturated.erase(w);
      }
      sample.push_back(chosen);
    }
    result.accepted_fds = DiscoverSampleFds(*ctx.dirty, sample, options_);
    return result;
  }

 private:
  TupleStrategyOptions options_;
};

class TupleQOracle : public Strategy {
 public:
  explicit TupleQOracle(const TupleStrategyOptions& options)
      : options_(options) {}

  std::string_view name() const override { return "TupleQ-Oracle"; }

  StrategyResult Run(const QuestionContext& ctx) override {
    UGUIDE_CHECK(ctx.injected != nullptr && ctx.true_fds != nullptr)
        << "TupleQ-Oracle requires the ledger and the true FD set";
    Rng rng(options_.seed);
    const int m = ctx.dirty->NumAttributes();
    StrategyResult result;
    const double cost = ctx.cost.TupleCost(m);

    // Candidate FDs that are actually false positives; the oracle picks
    // clean tuples that act as counterexamples to as many as possible.
    ClosureEngine true_closure(*ctx.true_fds);
    std::vector<Fd> false_fds;
    for (const Fd& fd : *ctx.candidates) {
      if (!true_closure.Implies(fd)) false_fds.push_back(fd);
    }
    std::vector<bool> false_alive(false_fds.size(), true);

    std::vector<TupleId> clean_rows;
    for (TupleId r = 0; r < ctx.dirty->NumRows(); ++r) {
      if (!ctx.injected->IsTupleDirty(r, m)) clean_rows.push_back(r);
    }
    std::vector<bool> used(clean_rows.size(), false);
    std::vector<TupleId> sample;

    // A false FD X -> A is invalidated by the pair (t, t') when the tuples
    // agree on X but not on A.
    auto kills = [&](TupleId t) {
      int count = 0;
      for (size_t i = 0; i < false_fds.size(); ++i) {
        if (!false_alive[i]) continue;
        for (TupleId other : sample) {
          AttributeSet agree = ctx.dirty->AgreeSet(t, other);
          if (false_fds[i].lhs.IsSubsetOf(agree) &&
              !agree.Contains(false_fds[i].rhs)) {
            ++count;
            break;
          }
        }
      }
      return count;
    };

    while (result.cost_spent + cost <= ctx.budget && !clean_rows.empty()) {
      bool any_false_alive = false;
      for (bool alive : false_alive) any_false_alive |= alive;
      if (!sample.empty() && !any_false_alive) break;  // goal reached

      // Score a random pool of unused clean tuples.
      int best_index = -1;
      int best_kills = -1;
      for (int attempt = 0;
           attempt < options_.oracle_pool &&
           attempt < static_cast<int>(clean_rows.size());
           ++attempt) {
        size_t i = rng.NextBounded(clean_rows.size());
        if (used[i]) continue;
        const int k = sample.empty() ? 0 : kills(clean_rows[i]);
        if (k > best_kills) {
          best_kills = k;
          best_index = static_cast<int>(i);
        }
      }
      if (best_index < 0) break;
      used[static_cast<size_t>(best_index)] = true;
      const TupleId t = clean_rows[static_cast<size_t>(best_index)];
      const Answer answer = ctx.expert->IsTupleClean(t);
      result.cost_spent += cost;
      ++result.questions_asked;
      if (answer != Answer::kYes) continue;  // IDK wastes the question
      // Retire the false FDs this tuple kills before adding it.
      for (size_t i = 0; i < false_fds.size(); ++i) {
        if (!false_alive[i]) continue;
        for (TupleId other : sample) {
          AttributeSet agree = ctx.dirty->AgreeSet(t, other);
          if (false_fds[i].lhs.IsSubsetOf(agree) &&
              !agree.Contains(false_fds[i].rhs)) {
            false_alive[i] = false;
            break;
          }
        }
      }
      sample.push_back(t);
    }

    result.accepted_fds = DiscoverSampleFds(*ctx.dirty, sample, options_);
    return result;
  }

 private:
  TupleStrategyOptions options_;
};

}  // namespace

std::unique_ptr<Strategy> MakeTupleSamplingUniform(
    const TupleStrategyOptions& options) {
  return std::make_unique<TupleSamplingUniform>(options);
}

std::unique_ptr<Strategy> MakeTupleSamplingViolationWeighting(
    const TupleStrategyOptions& options) {
  return std::make_unique<TupleSamplingViolationWeighting>(options);
}

std::unique_ptr<Strategy> MakeTupleSamplingSaturationSets(
    const TupleStrategyOptions& options) {
  return std::make_unique<TupleSamplingSaturationSets>(options);
}

std::unique_ptr<Strategy> MakeTupleQOracle(
    const TupleStrategyOptions& options) {
  return std::make_unique<TupleQOracle>(options);
}

}  // namespace uguide
