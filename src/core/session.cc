#include "core/session.h"

#include <algorithm>

#include "discovery/tane.h"
#include "oracle/simulated_expert.h"

namespace uguide {

Session::Session(Relation dirty, GroundTruth truth, FdSet true_fds,
                 CandidateSet candidates, SessionConfig config)
    : dirty_(std::move(dirty)),
      truth_(std::move(truth)),
      true_fds_(std::move(true_fds)),
      true_violations_(TrueViolationSet::Compute(dirty_, true_fds_)),
      candidates_(std::move(candidates)),
      config_(std::move(config)) {}

Result<Session> Session::Create(const Relation& clean, DirtyDataset dataset,
                                SessionConfig config) {
  if (!(clean.schema() == dataset.dirty.schema())) {
    return Status::InvalidArgument("clean/dirty schema mismatch");
  }
  // Sigma_TC: the FDs of the clean table, i.e., what the expert knows.
  TaneOptions tane;
  tane.max_error = 0.0;
  tane.max_lhs_size = config.candidate_options.max_lhs_size;
  UGUIDE_ASSIGN_OR_RETURN(FdSet true_fds, DiscoverFds(clean, tane));

  UGUIDE_ASSIGN_OR_RETURN(
      CandidateSet candidates,
      GenerateCandidates(dataset.dirty, config.candidate_options));

  return Session(std::move(dataset.dirty), std::move(dataset.truth),
                 std::move(true_fds), std::move(candidates),
                 std::move(config));
}

SessionReport Session::Run(Strategy& strategy) const {
  return Run(strategy, config_.budget);
}

SessionReport Session::Run(Strategy& strategy, double budget) const {
  SimulatedExpert expert(&true_violations_, &truth_,
                         dirty_.NumAttributes(), true_fds_,
                         config_.idk_rate, config_.expert_seed,
                         config_.wrong_rate);
  MajorityVoteExpert voting(&expert, std::max(1, config_.expert_votes));
  QuestionContext ctx;
  ctx.dirty = &dirty_;
  ctx.candidates = &candidates_.candidates;
  ctx.expert = config_.expert_votes > 1 ? static_cast<Expert*>(&voting)
                                        : static_cast<Expert*>(&expert);
  ctx.cost = config_.cost;
  // Majority voting multiplies the expert effort per question; charge it
  // against the budget.
  ctx.budget = budget / std::max(1, config_.expert_votes);
  ctx.exact_fds = &candidates_.exact;
  ctx.true_fds = &true_fds_;
  ctx.true_violations = &true_violations_;
  ctx.injected = &truth_;

  SessionReport report;
  report.strategy_name = std::string(strategy.name());
  report.result = strategy.Run(ctx);
  report.metrics = EvaluateDetections(dirty_, report.result.accepted_fds,
                                      true_violations_, &truth_);
  return report;
}

}  // namespace uguide
