#include "core/session.h"

#include <algorithm>
#include <optional>
#include <utility>

#include "common/thread_pool.h"
#include "discovery/tane.h"
#include "oracle/simulated_expert.h"
#include "violations/violation_engine.h"

namespace uguide {

Session::Session(Relation dirty, GroundTruth truth, FdSet true_fds,
                 CandidateSet candidates, SessionConfig config)
    : dirty_(std::move(dirty)),
      truth_(std::move(truth)),
      true_fds_(std::move(true_fds)),
      true_violations_(TrueViolationSet::Compute(dirty_, true_fds_)),
      candidates_(std::move(candidates)),
      config_(std::move(config)) {}

Result<Session> Session::Create(const Relation& clean, DirtyDataset dataset,
                                SessionConfig config) {
  if (!(clean.schema() == dataset.dirty.schema())) {
    return Status::InvalidArgument("clean/dirty schema mismatch");
  }
  // Sigma_TC: the FDs of the clean table, i.e., what the expert knows.
  TaneOptions tane;
  tane.max_error = 0.0;
  tane.max_lhs_size = config.candidate_options.max_lhs_size;
  UGUIDE_ASSIGN_OR_RETURN(FdSet true_fds, DiscoverFds(clean, tane));

  UGUIDE_ASSIGN_OR_RETURN(
      CandidateSet candidates,
      GenerateCandidates(dataset.dirty, config.candidate_options));

  return Session(std::move(dataset.dirty), std::move(dataset.truth),
                 std::move(true_fds), std::move(candidates),
                 std::move(config));
}

SessionReport Session::Run(Strategy& strategy) const {
  return Run(strategy, config_.budget);
}

SessionReport Session::Run(Strategy& strategy, double budget) const {
  return Run(strategy, budget, SessionRunOptions{}).ValueOrDie();
}

Result<SessionReport> Session::Run(Strategy& strategy, double budget,
                                   const SessionRunOptions& options) const {
  const int votes = std::max(1, config_.expert_votes);
  SimulatedExpert expert(&true_violations_, &truth_,
                         dirty_.NumAttributes(), true_fds_,
                         config_.idk_rate, config_.expert_seed,
                         config_.wrong_rate);
  MajorityVoteExpert voting(&expert, votes);
  Expert* head = config_.expert_votes > 1 ? static_cast<Expert*>(&voting)
                                          : static_cast<Expert*>(&expert);

  // The resilience stack sits between voting and journaling so retries are
  // recorded once (as the final answer), not once per attempt.
  std::optional<FlakyExpert> flaky;
  std::optional<RetryingExpert> retrying;
  if (options.resilient) {
    flaky.emplace(head);
    retrying.emplace(&*flaky, options.retry, config_.cost,
                     dirty_.NumAttributes());
    head = &*retrying;
  }

  JournalHeader header;
  header.strategy_name = std::string(strategy.name());
  header.budget = budget;
  header.expert_seed = config_.expert_seed;
  header.expert_votes = votes;
  header.idk_rate = config_.idk_rate;
  header.wrong_rate = config_.wrong_rate;

  std::vector<JournalRecord> replay;
  if (options.resume) {
    if (options.journal_path.empty()) {
      return Status::InvalidArgument("resume requires a journal path");
    }
    UGUIDE_ASSIGN_OR_RETURN(LoadedJournal journal,
                            LoadJournal(options.journal_path));
    Status header_ok = ValidateJournalHeader(header, journal.header);
    if (!header_ok.ok()) {
      return Status::InvalidArgument("journal " + options.journal_path + ": " +
                                     header_ok.message());
    }
    replay = std::move(journal.records);
  }

  std::optional<JournalWriter> writer;
  if (!options.journal_path.empty()) {
    UGUIDE_ASSIGN_OR_RETURN(
        writer, JournalWriter::Open(options.journal_path, header,
                                    /*resume=*/options.resume));
  }

  std::optional<JournalingExpert> journaling;
  const size_t replay_count = replay.size();
  if (writer.has_value() || !replay.empty()) {
    journaling.emplace(head, writer.has_value() ? &*writer : nullptr,
                       std::move(replay), config_.cost,
                       dirty_.NumAttributes());
    head = &*journaling;
  }

  // One violation engine per run: graph construction, question building,
  // and the final evaluation all detect through the same LHS-partition
  // cache, charged against the discovery memory budget when one is
  // configured. The pool drives the parallel graph build (bit-identical to
  // serial at any thread count).
  ViolationEngine engine(&dirty_, config_.candidate_options.memory_budget);
  ThreadPool pool(std::max(1, config_.candidate_options.num_threads));

  QuestionContext ctx;
  ctx.dirty = &dirty_;
  ctx.candidates = &candidates_.candidates;
  ctx.expert = head;
  ctx.cost = config_.cost;
  // Majority voting multiplies the expert effort per question; charge it
  // against the budget.
  ctx.budget = budget / votes;
  ctx.exact_fds = &candidates_.exact;
  ctx.true_fds = &true_fds_;
  ctx.true_violations = &true_violations_;
  ctx.injected = &truth_;
  ctx.engine = &engine;
  ctx.pool = &pool;

  SessionReport report;
  report.strategy_name = std::string(strategy.name());
  report.result = strategy.Run(ctx);
  if (retrying.has_value()) {
    // Retries are charged after the fact: the strategy budgets with nominal
    // costs, the report carries the true (surcharged) spend.
    report.retry_cost = retrying->retry_cost();
    report.result.cost_spent += retrying->retry_cost();
    report.questions_exhausted = retrying->exhausted();
  }
  if (journaling.has_value()) {
    report.questions_replayed =
        static_cast<int>(replay_count - journaling->replay_remaining());
    if (!journaling->write_status().ok()) return journaling->write_status();
  }
  if (writer.has_value()) UGUIDE_RETURN_NOT_OK(writer->Close());
  report.metrics = EvaluateDetections(engine, report.result.accepted_fds,
                                      true_violations_, &truth_);
  return report;
}

}  // namespace uguide
