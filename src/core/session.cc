#include "core/session.h"

#include <algorithm>
#include <optional>
#include <utility>

#include "common/thread_pool.h"
#include "core/session_state.h"
#include "discovery/tane.h"
#include "oracle/simulated_expert.h"
#include "violations/violation_engine.h"

namespace uguide {

Session::Session(Relation dirty, GroundTruth truth, FdSet true_fds,
                 CandidateSet candidates, SessionConfig config)
    : dirty_(std::move(dirty)),
      truth_(std::move(truth)),
      true_fds_(std::move(true_fds)),
      true_violations_(TrueViolationSet::Compute(dirty_, true_fds_)),
      candidates_(std::move(candidates)),
      config_(std::move(config)) {}

Result<Session> Session::Create(const Relation& clean, DirtyDataset dataset,
                                SessionConfig config) {
  if (!(clean.schema() == dataset.dirty.schema())) {
    return Status::InvalidArgument("clean/dirty schema mismatch");
  }
  // Sigma_TC: the FDs of the clean table, i.e., what the expert knows.
  TaneOptions tane;
  tane.max_error = 0.0;
  tane.max_lhs_size = config.candidate_options.max_lhs_size;
  UGUIDE_ASSIGN_OR_RETURN(FdSet true_fds, DiscoverFds(clean, tane));

  UGUIDE_ASSIGN_OR_RETURN(
      CandidateSet candidates,
      GenerateCandidates(dataset.dirty, config.candidate_options));

  return Session(std::move(dataset.dirty), std::move(dataset.truth),
                 std::move(true_fds), std::move(candidates),
                 std::move(config));
}

Session Session::Rebase(const Session& base, Relation mutated) {
  UGUIDE_CHECK(mutated.schema() == base.dirty_.schema())
      << "rebase onto a different schema";
  return Session(std::move(mutated), base.truth_, base.true_fds_,
                 base.candidates_, base.config_);
}

SessionReport Session::Run(Strategy& strategy) const {
  return Run(strategy, config_.budget);
}

SessionReport Session::Run(Strategy& strategy, double budget) const {
  return Run(strategy, budget, SessionRunOptions{}).ValueOrDie();
}

Result<SessionReport> Session::Run(Strategy& strategy, double budget,
                                   const SessionRunOptions& options) const {
  // Build the in-process expert stack. Journaling and replay are *not*
  // part of it any more — they live inside SessionStateMachine, so a
  // served session (whose answers arrive over a socket) gets the same
  // durability and resume semantics as this local driver.
  const int votes = std::max(1, config_.expert_votes);
  SimulatedExpert expert(&true_violations_, &truth_,
                         dirty_.NumAttributes(), true_fds_,
                         config_.idk_rate, config_.expert_seed,
                         config_.wrong_rate);
  MajorityVoteExpert voting(&expert, votes);
  Expert* head = config_.expert_votes > 1 ? static_cast<Expert*>(&voting)
                                          : static_cast<Expert*>(&expert);

  // The resilience stack sits between voting and the machine so retries
  // are recorded once (as the final answer), not once per attempt.
  std::optional<FlakyExpert> flaky;
  std::optional<RetryingExpert> retrying;
  if (options.resilient) {
    flaky.emplace(head);
    retrying.emplace(&*flaky, options.retry, config_.cost,
                     dirty_.NumAttributes());
    head = &*retrying;
  }

  SessionStepOptions step;
  step.journal_path = options.journal_path;
  step.resume = options.resume;
  step.journal_fsync = options.journal_fsync;
  step.content_hash = options.content_hash;
  step.data_version = options.data_version;
  UGUIDE_ASSIGN_OR_RETURN(
      std::unique_ptr<SessionStateMachine> machine,
      SessionStateMachine::Start(*this, strategy, budget, std::move(step)));
  return DriveSession(*machine, *head,
                      retrying.has_value() ? &*retrying : nullptr);
}

}  // namespace uguide
