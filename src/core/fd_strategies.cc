#include "core/fd_strategies.h"

#include <algorithm>
#include <unordered_set>
#include <vector>

#include "fd/closure.h"
#include "violations/violation_engine.h"

namespace uguide {

namespace {

// One askable FD question together with its precomputed violation set.
struct FdQuestion {
  Fd fd;
  std::vector<Cell> cells;       // participating violation cells
  size_t removal_count = 0;      // |g3 removal set| (for the accuracy prior)
  double cost = 1.0;
  bool asked = false;
};

// Builds the question pool: every candidate FD, plus (optionally) merged
// same-RHS pairs as non-minimal questions (§5's AB -> C example).
std::vector<FdQuestion> BuildQuestions(const QuestionContext& ctx,
                                       const FdStrategyOptions& options) {
  // Candidate FDs overwhelmingly share LHS attribute sets (relaxation
  // explores a lattice neighborhood), so the partition-backed engine pays
  // for each LHS grouping once across the whole pool.
  EngineRef engine(ctx.engine, ctx.dirty);
  std::vector<FdQuestion> questions;
  std::unordered_set<Fd, FdHash> known;
  for (const Fd& fd : *ctx.candidates) {
    FdQuestion q;
    q.fd = fd;
    q.cells = engine->ViolatingCells(fd);
    q.removal_count = engine->G3RemovalCount(fd);
    q.cost = ctx.cost.FdCost(fd, CostModel::ExtraAttributes(fd,
                                                            *ctx.candidates));
    questions.push_back(std::move(q));
    known.insert(fd);
  }
  if (options.allow_non_minimal) {
    const std::vector<Fd>& base = ctx.candidates->fds();
    int merged_count = 0;
    for (size_t i = 0;
         i < base.size() && merged_count < options.max_merged_candidates;
         ++i) {
      for (size_t j = i + 1;
           j < base.size() && merged_count < options.max_merged_candidates;
           ++j) {
        if (base[i].rhs != base[j].rhs) continue;
        Fd merged(base[i].lhs.Union(base[j].lhs), base[i].rhs);
        if (!merged.IsValidShape() || known.contains(merged)) continue;
        known.insert(merged);
        FdQuestion q;
        q.fd = merged;
        q.cells = engine->ViolatingCells(merged);
        q.removal_count = engine->G3RemovalCount(merged);
        q.cost = ctx.cost.FdCost(
            merged, CostModel::ExtraAttributes(merged, *ctx.candidates));
        questions.push_back(std::move(q));
        ++merged_count;
      }
    }
  }
  return questions;
}

size_t CountUncovered(const FdQuestion& q,
                      const std::unordered_set<Cell, CellHash>& covered) {
  size_t uncovered = 0;
  for (const Cell& cell : q.cells) {
    if (!covered.contains(cell)) ++uncovered;
  }
  return uncovered;
}

// Shared driver: the three FD strategies differ only in eligibility and
// scoring.
template <typename EligibleFn, typename ScoreFn>
StrategyResult RunFdLoop(const QuestionContext& ctx,
                         std::vector<FdQuestion>& questions,
                         EligibleFn eligible, ScoreFn score) {
  StrategyResult result;
  std::unordered_set<Cell, CellHash> covered;
  // Lazy uncovered counts: `covered` only grows when an FD is accepted, so
  // between acceptances every question's uncovered count is unchanged and
  // the greedy scan does not need to re-walk the (large) violation-cell
  // vectors. Counts are recomputed per question at most once per accepted
  // answer; selection is value-identical to the eager scan. With covered
  // initially empty the count is just the cell total.
  std::vector<size_t> uncovered_cache(questions.size());
  for (size_t i = 0; i < questions.size(); ++i) {
    uncovered_cache[i] = questions[i].cells.size();
  }
  std::vector<uint32_t> cache_epoch(questions.size(), 0);
  uint32_t covered_epoch = 0;
  for (;;) {
    const double remaining = ctx.budget - result.cost_spent;
    int best = -1;
    double best_score = 0.0;
    for (size_t i = 0; i < questions.size(); ++i) {
      FdQuestion& q = questions[i];
      if (q.asked || q.cost > remaining || !eligible(q)) continue;
      if (cache_epoch[i] != covered_epoch) {
        uncovered_cache[i] = CountUncovered(q, covered);
        cache_epoch[i] = covered_epoch;
      }
      const size_t uncovered = uncovered_cache[i];
      if (uncovered == 0) continue;  // nothing new to gain
      const double s = score(q, uncovered);
      if (best < 0 || s > best_score) {
        best = static_cast<int>(i);
        best_score = s;
      }
    }
    if (best < 0) break;
    FdQuestion& q = questions[static_cast<size_t>(best)];
    q.asked = true;
    result.cost_spent += q.cost;
    ++result.questions_asked;
    const Answer answer = ctx.expert->IsFdValid(q.fd);
    if (answer == Answer::kYes) {
      result.accepted_fds.Add(q.fd);
      covered.insert(q.cells.begin(), q.cells.end());
      ++covered_epoch;
    }
    // "no" discards the FD (asked = true suffices); "I don't know" likewise
    // leaves the question unanswered -- merged/non-minimal variants of the
    // same FD remain in the pool and can recover the coverage at a higher
    // price (§7.2.6).
  }
  return result;
}

class FdQBudgetedMaxCoverage : public Strategy {
 public:
  explicit FdQBudgetedMaxCoverage(const FdStrategyOptions& options)
      : options_(options) {}

  std::string_view name() const override { return "FDQ-BMC"; }

  StrategyResult Run(const QuestionContext& ctx) override {
    std::vector<FdQuestion> questions = BuildQuestions(ctx, options_);
    const double n = std::max<double>(1.0, ctx.dirty->NumRows());
    // Budgeted max coverage: weight of uncovered violations, discounted by
    // an accuracy prior (AFDs whose g3 removal share approaches the
    // relaxation threshold are likelier to be false positives), normalized
    // by question cost.
    return RunFdLoop(
        ctx, questions, [](const FdQuestion&) { return true; },
        [&](const FdQuestion& q, size_t uncovered) {
          const double prior =
              1.0 - static_cast<double>(q.removal_count) / n;
          return prior * static_cast<double>(uncovered) / q.cost;
        });
  }

 private:
  FdStrategyOptions options_;
};

class FdQGreedy : public Strategy {
 public:
  explicit FdQGreedy(const FdStrategyOptions& options) : options_(options) {}

  std::string_view name() const override { return "FDQ-Greedy"; }

  StrategyResult Run(const QuestionContext& ctx) override {
    FdStrategyOptions minimal_only = options_;
    minimal_only.allow_non_minimal = false;
    std::vector<FdQuestion> questions = BuildQuestions(ctx, minimal_only);
    return RunFdLoop(
        ctx, questions, [](const FdQuestion&) { return true; },
        [](const FdQuestion&, size_t uncovered) {
          return static_cast<double>(uncovered);
        });
  }

 private:
  FdStrategyOptions options_;
};

class FdQOracle : public Strategy {
 public:
  explicit FdQOracle(const FdStrategyOptions& options) : options_(options) {}

  std::string_view name() const override { return "FDQ-Oracle"; }

  StrategyResult Run(const QuestionContext& ctx) override {
    UGUIDE_CHECK(ctx.true_fds != nullptr)
        << "FDQ-Oracle requires the true FD set";
    std::vector<FdQuestion> questions = BuildQuestions(ctx, options_);
    // The oracle pre-screens validity against the true FD set and never
    // spends budget on an invalid FD.
    ClosureEngine true_closure(*ctx.true_fds);
    std::vector<bool> valid(questions.size());
    for (size_t i = 0; i < questions.size(); ++i) {
      valid[i] = true_closure.Implies(questions[i].fd);
    }
    auto eligible = [&](const FdQuestion& q) {
      // Identify the question by address to avoid threading indices.
      return valid[static_cast<size_t>(&q - questions.data())];
    };
    return RunFdLoop(ctx, questions, eligible,
                     [](const FdQuestion& q, size_t uncovered) {
                       return static_cast<double>(uncovered) / q.cost;
                     });
  }

 private:
  FdStrategyOptions options_;
};

}  // namespace

std::unique_ptr<Strategy> MakeFdQBudgetedMaxCoverage(
    const FdStrategyOptions& options) {
  return std::make_unique<FdQBudgetedMaxCoverage>(options);
}

std::unique_ptr<Strategy> MakeFdQGreedy(const FdStrategyOptions& options) {
  return std::make_unique<FdQGreedy>(options);
}

std::unique_ptr<Strategy> MakeFdQOracle(const FdStrategyOptions& options) {
  return std::make_unique<FdQOracle>(options);
}

}  // namespace uguide
