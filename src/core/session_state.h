#ifndef UGUIDE_CORE_SESSION_STATE_H_
#define UGUIDE_CORE_SESSION_STATE_H_

#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "common/fiber.h"
#include "core/session.h"
#include "core/session_journal.h"
#include "core/strategy.h"

namespace uguide {

class ViolationGraph;

/// \brief One question surfaced by a stepped session.
///
/// The payload mirrors JournalRecord's question half; `index` is the
/// 0-based ordinal of the question within the session and doubles as the
/// wire sequence number of the serving protocol.
struct SessionQuestion {
  QuestionKind kind = QuestionKind::kCell;
  Cell cell;        ///< kCell: the cell asked about.
  TupleId row = 0;  ///< kTuple: the tuple asked about.
  Fd fd;            ///< kFd: the FD asked about.
  int index = 0;
  /// The answer to this question is already in the journal being resumed:
  /// the machine discards whatever the driver submits (after using the
  /// submission to keep the driver's own expert state advancing, exactly
  /// like JournalingExpert forwarded replayed questions to the live
  /// expert) and serves the recorded answer to the strategy instead.
  bool replayed = false;
  /// The question's nominal cost under the session's cost model.
  double nominal_cost = 0.0;
};

/// \brief What a driver hands back for one question.
///
/// `retry_cost` and `exhausted` carry the resilience surcharge of answering
/// this one question (RetryingExpert's per-question delta); the state
/// machine accumulates them into the report so budget gating stays
/// fault-invariant exactly as in the monolithic Session::Run.
struct AnswerSubmission {
  Answer answer = Answer::kIdk;
  double retry_cost = 0.0;
  bool exhausted = false;
};

/// Per-machine options: journaling, resume, and resource sharing.
struct SessionStepOptions {
  /// When non-empty, every live-answered question is durably appended here
  /// before the strategy sees the answer.
  std::string journal_path;
  /// Replay `journal_path` before surfacing live questions.
  bool resume = false;
  /// Durability policy of the journal writer (`--journal-fsync`).
  JournalFsyncMode journal_fsync = JournalFsyncMode::kEvery;
  /// Worker pool for the parallel violation-graph build. Null = a private
  /// single-thread pool sized from the session's candidate options. A
  /// serving daemon passes its process pool so N concurrent sessions share
  /// one set of workers.
  ThreadPool* pool = nullptr;
  /// Memory budget charged by the machine's violation engine. Null = the
  /// session's candidate_options.memory_budget (the daemon passes its
  /// process budget explicitly).
  MemoryBudget* memory_budget = nullptr;
  /// Shared read-only violation engine (a DatasetRegistry artifact with
  /// warmed partitions). Null = the machine owns a private engine, as the
  /// CLI and standalone tests do. The engine is internally locked, so any
  /// number of machines may share one.
  ViolationEngine* engine = nullptr;
  /// Shared prebuilt violation graph for the same candidate set. Cell
  /// strategies copy it instead of rebuilding (bit-identical: the artifact
  /// was built by the same ViolationGraph::Build). Null = build per run.
  const ViolationGraph* graph = nullptr;
  /// Identity of the data this run executes against, pinned into the
  /// journal header (v2 `dhash=`/`dver=`) and stamped onto the report so
  /// every answer is attributable to one live-data epoch. Zero for
  /// immutable-dataset runs (the pre-live behavior, byte-identical).
  uint64_t content_hash = 0;
  uint64_t data_version = 0;
};

/// \brief A Session run inverted into an explicit step API.
///
/// The strategies of §5–§6 are written as blocking loops that *call* an
/// Expert; a served session needs the opposite shape — the caller *asks
/// for* the next question, ships it to a remote answerer, and submits the
/// answer whenever it arrives. SessionStateMachine inverts the control
/// flow without rewriting any strategy: the strategy runs on a Fiber
/// against a channel-backed Expert, and each expert call parks the fiber
/// until the driver moves the machine forward.
///
///   auto machine = SessionStateMachine::Start(session, strategy, budget);
///   while (auto q = machine->NextQuestion()) {
///     machine->SubmitAnswer({AskSomeone(*q)});
///   }
///   SessionReport report = machine->Finish().ValueOrDie();
///
/// There is no pump thread: a parked session is a parked stack, and the
/// strategy advances *inline* on whatever thread calls NextQuestion /
/// SubmitAnswer / Abandon. That is what lets the serving reactor execute
/// session steps as ordinary pool tasks — 10k concurrent sessions are 10k
/// fibers, not 10k threads — while the blocking CLI driver simply runs the
/// strategy on its own thread between questions.
///
/// Journaling, crash-safe resume, and the retry-surcharge accounting live
/// *inside* the machine (not in the driver), so a served session that
/// crashes and resumes is bit-identical to an uninterrupted one under the
/// same driver — the same contract the monolithic Session::Run had, now
/// independent of where the answers come from. Session::Run itself is a
/// thin driver over this class (see DriveSession).
///
/// Thread safety: NextQuestion/SubmitAnswer/Finish must be called from one
/// driver thread at a time (the serving daemon serializes per session) but
/// successive calls may come from different threads — the machine's mutex
/// hands the fiber over with the necessary happens-before edge. Distinct
/// machines are fully independent and may share a ThreadPool, MemoryBudget,
/// ViolationEngine and prebuilt graph.
class SessionStateMachine {
 public:
  /// Validates options (loading and checking the journal on resume) and
  /// readies the strategy fiber. `session`, `strategy` and any shared
  /// resources in `options` must outlive the machine.
  static Result<std::unique_ptr<SessionStateMachine>> Start(
      const Session& session, Strategy& strategy, double budget,
      SessionStepOptions options = {});

  /// Abandons the run if it is still in flight (see Abandon).
  ~SessionStateMachine();

  SessionStateMachine(const SessionStateMachine&) = delete;
  SessionStateMachine& operator=(const SessionStateMachine&) = delete;

  /// Advances the strategy to its next question (running it inline on the
  /// calling thread), or returns nullopt once the strategy has finished.
  /// Idempotent while a question is outstanding (re-delivers the same
  /// question — the serving daemon resends after a reconnect).
  std::optional<SessionQuestion> NextQuestion();

  /// Delivers the answer for the outstanding question and advances the
  /// strategy inline until it surfaces the next question (retrievable with
  /// NextQuestion) or completes. Fails if no question is outstanding. The
  /// answered record is durably journaled before the strategy observes the
  /// answer, so by the time the *next* question is visible, the previous
  /// answer has been persisted.
  Status SubmitAnswer(const AnswerSubmission& submission);

  /// Evaluates detections and returns the report. Fails if a question is
  /// still outstanding (answer or Abandon first) or if a journal write
  /// failed during the run.
  Result<SessionReport> Finish();

  /// Cancels an in-flight run: the outstanding question (if any) and every
  /// later one are answered kIdk internally until the strategy winds down,
  /// the journal is synced and closed, and the machine becomes terminal.
  /// The journal is preserved, so an abandoned served session is resumable
  /// with `resume = true`. Idempotent.
  void Abandon();

  /// True once the strategy has returned (Finish will not run any steps).
  bool done() const;

  /// Questions served from the journal so far (resume bookkeeping).
  int questions_replayed() const;

  /// The sticky first journal write/fsync failure, if any. Once non-OK,
  /// answers are no longer durable: the serving layer must stop advancing
  /// the session outward (structured `storage_failed` refusal) even though
  /// the in-memory machine itself is still consistent and answerable.
  Status write_status() const;

 private:
  class ChannelExpert;

  SessionStateMachine(const Session& session, Strategy& strategy,
                      double budget, SessionStepOptions options);

  void PumpMain();
  /// Runs the fiber until it publishes a question or the strategy returns.
  /// Caller holds mu_.
  void StepLocked();

  const Session& session_;
  Strategy& strategy_;
  const double budget_;
  const SessionStepOptions options_;

  // Machine-owned resources mirroring the monolithic Session::Run, unless
  // the caller shared them (a serving daemon passes its process pool and
  // the registry's warmed engine).
  std::unique_ptr<ViolationEngine> owned_engine_;
  ViolationEngine* engine_ = nullptr;
  std::unique_ptr<ThreadPool> owned_pool_;
  ThreadPool* pool_ = nullptr;

  std::unique_ptr<ChannelExpert> channel_;
  std::optional<JournalWriter> writer_;

  std::unique_ptr<Fiber> fiber_;
  StrategyResult result_;  // written by the fiber before done_

  // mu_ serializes the driver API and carries the fiber between threads
  // (every Resume happens under it, so step N+1 sees step N's writes even
  // when a different pool thread runs it).
  mutable std::mutex mu_;
  bool done_ = false;
  bool abandoned_ = false;
  bool finished_ = false;  // Finish already consumed the run

  // The single-question channel between the fiber and the driver.
  std::optional<SessionQuestion> pending_question_;
  bool pending_answered_ = false;
  /// NextQuestion returned the pending question to the driver; only then
  /// may SubmitAnswer accept an answer for it.
  bool pending_delivered_ = false;
  AnswerSubmission submission_;
  int next_index_ = 0;

  // Report accounting, accumulated as submissions arrive (all under mu_).
  double retry_cost_total_ = 0.0;
  int exhausted_total_ = 0;
  int served_replays_ = 0;
  Status write_status_ = Status::OK();
};

/// \brief The canonical in-process driver: pumps `machine` with `expert`.
///
/// Every question is put to `expert`; when `retrying` is non-null its
/// per-question retry-cost delta and exhaustion increment ride along on the
/// submission (resilient runs). Returns the finished report. Session::Run
/// is implemented with this, and tests drive custom expert stacks through
/// it.
Result<SessionReport> DriveSession(SessionStateMachine& machine,
                                   Expert& expert,
                                   RetryingExpert* retrying = nullptr);

/// \brief Instantiates one of the 11 strategies by its reporting name
/// (e.g. "FDQ-BMC", "CellQ-SUMS", "Sampling-Uniform"); the registry the
/// serving daemon and load generator resolve wire requests against.
/// Returns NotFound for unknown names.
Result<std::unique_ptr<Strategy>> MakeStrategyByName(const std::string& name);

/// The names MakeStrategyByName accepts, in a stable order.
std::vector<std::string> KnownStrategyNames();

}  // namespace uguide

#endif  // UGUIDE_CORE_SESSION_STATE_H_
