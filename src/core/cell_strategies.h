#ifndef UGUIDE_CORE_CELL_STRATEGIES_H_
#define UGUIDE_CORE_CELL_STRATEGIES_H_

#include <memory>

#include "core/strategy.h"

namespace uguide {

/// Tuning knobs shared by the cell-based strategies (§4).
struct CellStrategyOptions {
  /// Starting confidence of every candidate FD ("minimum confidence",
  /// Alg. 2 line 2, calibrated to [0, 1]).
  double initial_confidence = 0.5;

  /// Confidence bump applied to every FD flagging a confirmed violation
  /// (the delta of Algorithm 2, default 0.1). Confidence caps at 1.
  double delta = 0.1;

  /// Absolute acceptance cut (§7.2.1's "confidence above a certain
  /// threshold, say 90%"): an FD is accepted when its confidence reached
  /// accept_threshold and it was never invalidated. With the defaults an FD
  /// needs four confirmed violations. Setting 0 accepts every surviving FD
  /// (Algorithm 2's literal `return Sigma`).
  double accept_threshold = 0.9;

  /// SUMS (Algorithm 3/4): Estimate-Confidence iteration cap, convergence
  /// tolerance, and how many answers are batched between recomputations
  /// (the fixpoint moves little per answer; batching keeps the interactive
  /// loop fast).
  int sums_max_iterations = 20;
  double sums_tolerance = 1e-3;
  int sums_recompute_interval = 20;

  /// SUMS acceptance cut on the evidence confidence (same mechanism as
  /// accept_threshold; the truth-discovery fixpoint steers question
  /// *selection*, while acceptance follows confirmed violations).
  double sums_accept_threshold = 0.9;

  /// Incremental question selection: lazy-invalidation score heaps for
  /// CellQ-HS / CellQ-Greedy and a change-propagating Estimate-Confidence
  /// fixpoint for CellQ-SUMS, replacing the per-question full rescans.
  /// Selections and results are byte-identical either way (DESIGN.md §9);
  /// `false` runs the original rescan code, retained as the behavioral
  /// reference for the equivalence suite.
  bool incremental = true;
};

/// Cell-Q-Hitting-Set (Algorithm 2): asks the violation minimizing
/// weight/degree, bumping FD confidences on "yes" and discarding all
/// flagging FDs on "no".
std::unique_ptr<Strategy> MakeCellQHittingSet(
    const CellStrategyOptions& options = {});

/// Cell-Q-SUMS (Algorithms 3-4): truth-discovery confidence propagation
/// between FDs and violations; asks the highest-information (uncertain,
/// high-degree) violation each round.
std::unique_ptr<Strategy> MakeCellQSums(
    const CellStrategyOptions& options = {});

/// CellQ-Greedy baseline (§7.1): asks the violation flagged by the most
/// candidate FDs.
std::unique_ptr<Strategy> MakeCellQGreedy(
    const CellStrategyOptions& options = {});

/// CellQ-Oracle baseline (§7.1): peeks at the ground truth and, each round,
/// asks the question with the best payoff -- a clean cell invalidating the
/// most false FDs, or a true violation confirming the most not-yet-accepted
/// true FDs. Requires QuestionContext::true_violations and ::true_fds.
std::unique_ptr<Strategy> MakeCellQOracle(
    const CellStrategyOptions& options = {});

}  // namespace uguide

#endif  // UGUIDE_CORE_CELL_STRATEGIES_H_
