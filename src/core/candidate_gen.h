#ifndef UGUIDE_CORE_CANDIDATE_GEN_H_
#define UGUIDE_CORE_CANDIDATE_GEN_H_

#include "common/result.h"
#include "discovery/relaxation.h"
#include "discovery/tane.h"
#include "fd/fd.h"
#include "relation/relation.h"

namespace uguide {

/// Options for the candidate-FD generation pipeline (§3.1).
struct CandidateGenOptions {
  /// g3 threshold used when relaxing exact FDs (the paper's "say 10% of the
  /// tuples").
  double relax_threshold = 0.10;

  /// Bound on LHS size during exact discovery; keeps the lattice walk
  /// tractable on wide schemas without affecting the paper's datasets.
  int max_lhs_size = 6;

  /// Worker threads for the two discovery passes (see TaneOptions); the
  /// candidate set is identical for every thread count.
  int num_threads = 1;

  /// Soft deadline forwarded to each discovery pass (see
  /// TaneOptions::deadline_ms); 0 = none. A pass cut short yields a sound
  /// but incomplete candidate set, flagged via CandidateSet::truncated.
  double discovery_deadline_ms = 0.0;

  /// Memory budget forwarded to both discovery passes (see
  /// TaneOptions::memory_budget); null = ungoverned. The two passes charge
  /// the same budget, so the reported peak covers the whole pipeline. A
  /// pass stopped by the hard limit yields a sound but incomplete candidate
  /// set, flagged via CandidateSet::memory_truncated.
  MemoryBudget* memory_budget = nullptr;
};

/// Output of candidate generation: the exact FDs of the dirty table and
/// their relaxations (the candidate set Sigma_cand the strategies question).
struct CandidateSet {
  FdSet exact;       ///< Sigma_T: minimal exact FDs of the dirty table.
  FdSet candidates;  ///< Sigma_cand: maximally relaxed AFDs.
  /// True iff either discovery pass hit the deadline; the sets above then
  /// under-approximate the full candidate frontier.
  bool truncated = false;
  /// True iff either discovery pass hit its memory budget's hard limit;
  /// same under-approximation contract as `truncated`.
  bool memory_truncated = false;
  /// Peak bytes charged across both passes (0 when ungoverned).
  size_t peak_memory_bytes = 0;
};

/// \brief Runs the paper's §3.1 pipeline on a dirty table: exact discovery,
/// then LHS relaxation under the g3 threshold.
///
/// By the §3.1 argument, every FD of the (unknown) clean table either holds
/// on the dirty table or is a relaxation of an FD that does, so - with a
/// threshold at or above the true violation rate - Sigma_cand contains all
/// true FDs alongside false positives the strategies must weed out.
Result<CandidateSet> GenerateCandidates(const Relation& dirty,
                                        const CandidateGenOptions& options =
                                            {});

}  // namespace uguide

#endif  // UGUIDE_CORE_CANDIDATE_GEN_H_
