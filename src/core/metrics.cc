#include "core/metrics.h"

#include <algorithm>
#include <unordered_set>

#include "violations/violation_engine.h"

namespace uguide {

std::vector<Cell> AllDetections(ViolationEngine& engine,
                                const FdSet& accepted) {
  std::unordered_set<Cell, CellHash> seen;
  for (const Fd& fd : accepted) {
    for (const Cell& cell : engine.ViolatingCells(fd)) {
      seen.insert(cell);
    }
  }
  std::vector<Cell> out(seen.begin(), seen.end());
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<Cell> AllDetections(const Relation& dirty,
                                const FdSet& accepted) {
  ViolationEngine engine(&dirty);
  return AllDetections(engine, accepted);
}

DetectionMetrics EvaluateDetections(const Relation& dirty,
                                    const FdSet& accepted,
                                    const TrueViolationSet& true_violations,
                                    const GroundTruth* injected) {
  ViolationEngine engine(&dirty);
  return EvaluateDetections(engine, accepted, true_violations, injected);
}

DetectionMetrics EvaluateDetections(ViolationEngine& engine,
                                    const FdSet& accepted,
                                    const TrueViolationSet& true_violations,
                                    const GroundTruth* injected) {
  DetectionMetrics metrics;
  metrics.total_true_errors = true_violations.Size();
  if (injected != nullptr) metrics.total_injected = injected->NumChanged();

  const std::vector<Cell> detections = AllDetections(engine, accepted);
  metrics.detections = detections.size();
  for (const Cell& cell : detections) {
    if (true_violations.Contains(cell)) {
      ++metrics.true_positives;
    } else {
      ++metrics.false_positives;
    }
    if (injected != nullptr && injected->IsChanged(cell)) {
      ++metrics.injected_detected;
    }
  }
  metrics.false_negatives = metrics.total_true_errors - metrics.true_positives;
  return metrics;
}

std::string DetectionMetrics::ToString() const {
  std::string out = "detections=" + std::to_string(detections);
  out += " TP=" + std::to_string(true_positives);
  out += " FP=" + std::to_string(false_positives);
  out += " FN=" + std::to_string(false_negatives);
  out += " true%=" + std::to_string(TrueViolationPct());
  out += " false%=" + std::to_string(FalseViolationPct());
  return out;
}

}  // namespace uguide
