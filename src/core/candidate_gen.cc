#include "core/candidate_gen.h"

#include <algorithm>

namespace uguide {

Result<CandidateSet> GenerateCandidates(const Relation& dirty,
                                        const CandidateGenOptions& options) {
  TaneOptions tane;
  tane.max_error = 0.0;
  tane.max_lhs_size = options.max_lhs_size;
  tane.num_threads = options.num_threads;
  tane.deadline_ms = options.discovery_deadline_ms;
  tane.memory_budget = options.memory_budget;
  UGUIDE_ASSIGN_OR_RETURN(DiscoveryOutcome exact,
                          DiscoverFdsDetailed(dirty, tane));

  // Candidate AFDs: all minimal FDs with g3 error within the relaxation
  // threshold. This is the complete frontier the paper's §3.1 relaxation
  // walk aims for; walking down from Sigma_T alone (RelaxFds) can miss true
  // FDs whose exact specializations are shadowed by key-based minimal FDs
  // (e.g. id -> city hides {zip,id} -> city, so zip -> city is never
  // reached). Approximate discovery returns every minimal element of the
  // g3-passing region and therefore provably covers the relaxation output.
  TaneOptions approx = tane;
  approx.max_error = options.relax_threshold;
  UGUIDE_ASSIGN_OR_RETURN(DiscoveryOutcome candidates,
                          DiscoverFdsDetailed(dirty, approx));

  return CandidateSet{
      std::move(exact.fds), std::move(candidates.fds),
      exact.truncated || candidates.truncated,
      exact.memory_truncated || candidates.memory_truncated,
      std::max(exact.peak_memory_bytes, candidates.peak_memory_bytes)};
}

}  // namespace uguide
