#include "server/dataset_registry.h"

#include <algorithm>
#include <string>
#include <utility>

#include "common/fault_injection.h"
#include "common/memory_budget.h"
#include "common/thread_pool.h"

namespace uguide {
namespace {

/// Payload bytes of the session's dirty table: column code vectors plus
/// the dictionary strings (same convention as Partition::ApproxBytes —
/// container payloads, not allocator metadata).
size_t ApproxRelationBytes(const Relation& relation) {
  size_t bytes = static_cast<size_t>(relation.NumRows()) *
                 static_cast<size_t>(relation.NumAttributes()) *
                 sizeof(ValueCode);
  const ValueCode pool_size = static_cast<ValueCode>(relation.pool().Size());
  for (ValueCode code = 0; code < pool_size; ++code) {
    bytes += sizeof(std::string) + relation.pool().Lookup(code).size();
  }
  return bytes;
}

}  // namespace

DatasetArtifacts::DatasetArtifacts(ServedDatasetOptions opts, DatasetKey k,
                                   Session s, ThreadPool* pool,
                                   MemoryBudget* budget)
    : options(opts),
      key(k),
      session(std::move(s)),
      engine(std::make_unique<ViolationEngine>(&session.dirty(), budget)),
      graph(ViolationGraph::Build(*engine, session.candidates(), pool)),
      charged_bytes(graph.ApproxMemoryBytes() +
                    ApproxRelationBytes(session.dirty())),
      budget_(budget) {
  // ForceCharge: shared artifacts must materialize; the soft limit answers
  // with eviction rather than refusal.
  if (budget_ != nullptr) budget_->ForceCharge(charged_bytes);
}

DatasetArtifacts::~DatasetArtifacts() {
  if (budget_ != nullptr) budget_->Release(charged_bytes);
}

DatasetRegistry::DatasetRegistry(DatasetRegistryOptions options)
    : options_(options) {}

Result<std::shared_ptr<const DatasetArtifacts>> DatasetRegistry::Open(
    const ServedDatasetOptions& options) {
  const uint64_t signature = ServedDatasetSignature(options);
  bool is_probe = false;
  {
    std::unique_lock<std::mutex> lock(mu_);
    for (;;) {
      auto memo = recipe_to_key_.find(signature);
      if (memo != recipe_to_key_.end()) {
        auto it = entries_.find(memo->second);
        if (it != entries_.end() && it->second.artifacts != nullptr) {
          ++stats_.hits;
          it->second.last_used = ++tick_;
          return it->second.artifacts;
        }
      }
      // Circuit breaker: a quarantined recipe refuses instantly — no
      // build, no singleflight wait — until its backoff elapses, when
      // exactly one probe build is let through.
      auto breaker = breakers_.find(signature);
      if (breaker != breakers_.end() && breaker->second.quarantined &&
          building_.count(signature) == 0) {
        const auto now = FaultRegistry::Global().Now();
        if (now < breaker->second.open_until) {
          ++stats_.quarantined_opens;
          const int wait_ms = static_cast<int>(
              std::chrono::duration<double, std::milli>(
                  breaker->second.open_until - now)
                  .count()) +
              1;
          return Status::Unavailable(
              "dataset recipe quarantined after repeated build failures; "
              "retry in " +
              std::to_string(wait_ms) + "ms");
        }
        is_probe = true;
        ++stats_.probes;
      }
      if (building_.count(signature) == 0) break;
      // Singleflight: somebody is already building this recipe. Wait for
      // them and re-check the cache rather than building a duplicate.
      ++stats_.shared_waits;
      build_done_.wait(lock);
    }
    building_.insert(signature);
  }

  // The expensive part runs unlocked so distinct recipes build in
  // parallel and cache hits never stall behind a build.
  Result<std::shared_ptr<const DatasetArtifacts>> built =
      BuildArtifacts(options);

  std::unique_lock<std::mutex> lock(mu_);
  building_.erase(signature);
  build_done_.notify_all();
  if (!built.ok()) {
    RecordBuildFailureLocked(signature, is_probe);
    return built.status();
  }
  breakers_.erase(signature);  // A good build closes the breaker outright.
  std::shared_ptr<const DatasetArtifacts> artifacts =
      std::move(built).ValueOrDie();

  recipe_to_key_[signature] = artifacts->key;
  Entry& entry = entries_[artifacts->key];
  if (entry.artifacts != nullptr) {
    // The content key is already resident (another recipe raced to the
    // same bytes); keep the incumbent so every consumer shares one copy.
    ++stats_.hits;
    artifacts = entry.artifacts;
  } else {
    entry.artifacts = artifacts;
    ++stats_.builds;
  }
  entry.last_used = ++tick_;
  EvictLocked();
  return artifacts;
}

void DatasetRegistry::RecordBuildFailureLocked(uint64_t signature,
                                               bool was_probe) {
  if (options_.breaker_failures <= 0) return;
  const auto now = FaultRegistry::Global().Now();
  Breaker& breaker = breakers_[signature];
  if (was_probe && breaker.quarantined) {
    // Failed half-open probe: straight back to quarantine, backoff
    // doubled (capped) — no need to re-accumulate a window of failures.
    breaker.trips = std::min(breaker.trips + 1, 5);
    const double backoff_ms =
        options_.breaker_backoff_ms * static_cast<double>(1 << (breaker.trips - 1));
    breaker.open_until =
        now + std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                  std::chrono::duration<double, std::milli>(backoff_ms));
    return;
  }
  breaker.failures.push_back(now);
  const auto window_start =
      now - std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                std::chrono::duration<double, std::milli>(
                    options_.breaker_window_ms));
  while (!breaker.failures.empty() && breaker.failures.front() < window_start) {
    breaker.failures.pop_front();
  }
  if (static_cast<int>(breaker.failures.size()) >= options_.breaker_failures) {
    breaker.quarantined = true;
    breaker.trips = 1;
    breaker.failures.clear();
    breaker.open_until =
        now + std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                  std::chrono::duration<double, std::milli>(
                      options_.breaker_backoff_ms));
    ++stats_.breaker_trips;
  }
}

Result<std::shared_ptr<const DatasetArtifacts>> DatasetRegistry::BuildArtifacts(
    const ServedDatasetOptions& options) const {
  // Deterministic failure injection for breaker tests and chaos soaks.
  UGUIDE_FAULT_POINT("registry.build");
  UGUIDE_ASSIGN_OR_RETURN(Session session, MakeServedDataset(options));
  const DatasetKey key{RelationContentHash(session.dirty()),
                       ServedDatasetSignature(options)};
  return std::shared_ptr<const DatasetArtifacts>(
      std::make_shared<DatasetArtifacts>(options, key, std::move(session),
                                         options_.pool,
                                         options_.memory_budget));
}

int DatasetRegistry::EvictIdle() {
  std::lock_guard<std::mutex> lock(mu_);
  return EvictLocked();
}

int DatasetRegistry::EvictLocked() {
  MemoryBudget* budget = options_.memory_budget;
  if (budget == nullptr) return 0;
  int evicted = 0;
  while (budget->OverSoftLimit()) {
    // LRU victim among unreferenced entries. use_count() == 1 is reliable
    // here: new references are only handed out under mu_, so a count of 1
    // cannot concurrently grow.
    auto victim = entries_.end();
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
      if (it->second.artifacts.use_count() > 1) continue;
      if (victim == entries_.end() ||
          it->second.last_used < victim->second.last_used) {
        victim = it;
      }
    }
    if (victim == entries_.end()) break;  // everything resident is pinned
    for (auto it = recipe_to_key_.begin(); it != recipe_to_key_.end();) {
      it = it->second == victim->first ? recipe_to_key_.erase(it)
                                       : std::next(it);
    }
    entries_.erase(victim);
    ++evicted;
    ++stats_.evicted;
  }
  return evicted;
}

int DatasetRegistry::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int>(entries_.size());
}

DatasetRegistryStats DatasetRegistry::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace uguide
