#ifndef UGUIDE_SERVER_REACTOR_H_
#define UGUIDE_SERVER_REACTOR_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/result.h"

namespace uguide {

class ThreadPool;

/// \brief Incremental newline framing over a byte stream.
///
/// Accumulates arbitrarily-chunked input (down to one byte per Append) and
/// yields complete lines with the trailing '\n' (and optional '\r')
/// stripped. Enforces a maximum line length so a connection cannot grow an
/// unbounded buffer by never sending a newline. Factored out of the
/// reactor so the partial-read framing logic is unit-testable without
/// sockets.
class LineBuffer {
 public:
  explicit LineBuffer(size_t max_line_bytes)
      : max_line_bytes_(max_line_bytes) {}

  /// Appends raw bytes. Returns false when the unextracted bytes exceed
  /// the line bound — the caller should drop the connection. Callers must
  /// drain NextLine between appends so pipelined small lines are not
  /// mistaken for one oversized line.
  bool Append(const char* data, size_t size);

  /// Pops the next complete non-empty line, or nullopt when no full line
  /// is buffered. Empty lines (bare "\n" or "\r\n") are skipped, matching
  /// the keep-alive convention of the wire protocol.
  std::optional<std::string> NextLine();

  /// Bytes buffered but not yet returned (diagnostics/tests).
  size_t pending_bytes() const { return buffer_.size() - start_; }

 private:
  const size_t max_line_bytes_;
  std::string buffer_;
  size_t start_ = 0;  ///< Consumed prefix; compacted once it grows.
};

struct ReactorOptions {
  /// TCP port on 127.0.0.1; 0 binds an ephemeral port (see port()).
  int port = 0;
  int backlog = 64;
  /// Concurrent connections; further accepts are closed immediately
  /// (counted in stats().refused). 0 = unlimited.
  int max_connections = 0;
  /// A connection feeding a line longer than this is dropped.
  size_t max_line_bytes = 1 << 20;
  /// Reply bytes a connection may leave unread before it is hard-dropped
  /// as a slow reader (counted in stats().dropped_slow_reader). Without
  /// the cap a client that opens a session and stops reading grows the
  /// output buffer without bound. 0 = unlimited.
  size_t max_pending_out_bytes = 0;
  /// A connection with no complete line framed within this window is
  /// reaped on the tick (slow-loris defense; counted in
  /// stats().reaped_idle). Connections with queued or in-flight work are
  /// never reaped. 0 = off. Uses the fault-aware clock.
  double read_idle_ms = 0.0;
  /// Period of the maintenance tick (timerfd). 0 derives one from
  /// read_idle_ms (a quarter, floored at 10ms) or stays off when neither
  /// read_idle_ms nor on_tick needs it.
  double tick_interval_ms = 0.0;
  /// Runs on the reactor thread every tick, after idle reaping — the
  /// daemon drives SessionManager::EvictIdle here.
  std::function<void()> on_tick;
  /// Executes handler steps. Null (or a single-thread pool) runs them
  /// inline on the reactor thread — the graceful serial fallback.
  ThreadPool* pool = nullptr;
  /// The protocol: one request line in, reply frames out (newlines are
  /// appended by the reactor). The time_point is when the reactor framed
  /// the line (fault-aware clock) — admission control sheds lines that
  /// waited in queue past the deadline. Must be thread-safe: steps for
  /// distinct connections run concurrently on the pool. Steps for one
  /// connection never overlap and run in arrival order.
  std::function<std::vector<std::string>(
      std::string_view, std::chrono::steady_clock::time_point)>
      handler;
};

struct ReactorStats {
  int64_t accepted = 0;
  int64_t refused = 0;  ///< Closed at accept: over max_connections.
  int64_t dropped = 0;  ///< Connections dropped mid-stream (fault, oversize
                        ///< line, write failure, peer reset, cap, reap).
  /// Of `dropped`: exceeded max_pending_out_bytes (slow reader).
  int64_t dropped_slow_reader = 0;
  /// Of `dropped`: no complete line within read_idle_ms (slow loris).
  int64_t reaped_idle = 0;
  int64_t ticks = 0;  ///< Maintenance ticks run.
};

/// \brief Epoll front end executing protocol steps on a shared pool.
///
/// One reactor thread owns every socket: it accepts, reads, frames lines,
/// and flushes replies over nonblocking fds. Handler execution is the only
/// work that leaves that thread — each connection's parsed lines are
/// drained by at most one pool task at a time (FIFO per connection, so a
/// pipelined client observes strict request order), and the task hands its
/// replies back to the reactor through the connection's output buffer plus
/// an eventfd wakeup. 10k idle connections therefore cost 10k parked
/// buffers, not 10k threads; the thread count is the pool's, bounded and
/// fixed.
///
/// Thread-bound guarantees, relied on throughout:
///  - accept/read/close/epoll_ctl/send happen only on the reactor thread;
///  - a connection's handler steps never run concurrently with each other
///    (`dispatching` flag under the connection mutex);
///  - pool tasks touch only the connection's mutex-guarded queues, never
///    its fd.
///
/// Fault sites mirror the thread-per-connection daemon this replaces:
/// "server.accept" fires per accepted connection, "server.read" per recv
/// on the reactor thread, "server.write" per reply frame on the handler's
/// pool thread (so injected write latency stalls one session's turnaround,
/// not the whole event loop). A failed site drops the connection, never a
/// session.
class Reactor {
 public:
  /// Binds, listens, and starts the reactor thread.
  static Result<std::unique_ptr<Reactor>> Start(ReactorOptions options);

  /// Calls Shutdown() if it has not run yet.
  ~Reactor();

  Reactor(const Reactor&) = delete;
  Reactor& operator=(const Reactor&) = delete;

  /// The bound port (resolved when options.port was 0).
  int port() const { return port_; }

  /// Stops accepting, joins the reactor thread, waits for in-flight
  /// handler steps, and closes every connection. Idempotent; called from
  /// the owner's thread (the daemon's SIGTERM drain).
  void Shutdown();

  int active_connections() const;
  ReactorStats stats() const;

 private:
  /// Why a connection was hard-dropped; picks the stats counter.
  enum class DropReason { kNone, kSlowReader, kIdleReap };

  /// One framed request plus the instant the reactor framed it.
  struct PendingLine {
    std::string text;
    std::chrono::steady_clock::time_point enqueued;
  };

  struct Connection {
    explicit Connection(int fd_in, size_t max_line_bytes)
        : fd(fd_in), in(max_line_bytes) {}

    const int fd;
    /// Reactor thread only.
    LineBuffer in;
    /// When the last complete line was framed (accept time initially).
    /// Reactor thread only — read by the tick's idle reaper.
    std::chrono::steady_clock::time_point last_line_at;

    /// Guards everything below (the reactor <-> pool-task channel).
    std::mutex mu;
    std::deque<PendingLine> lines;  ///< Framed requests awaiting a step.
    bool dispatching = false;       ///< A pool task is draining `lines`.
    std::string out;                ///< Reply bytes not yet flushed.
    size_t out_offset = 0;
    uint32_t armed_events = 0;  ///< Event mask currently registered.
    bool read_done = false;     ///< EOF/read fault: flush, then close.
    bool closing = false;       ///< Hard drop (write failure/oversize line).
    DropReason drop_reason = DropReason::kNone;
  };

  Reactor() = default;

  void Loop();
  void HandleAccept();
  /// Timerfd maintenance: reap read-idle connections, then on_tick.
  /// Reactor thread only.
  void HandleTick();
  void HandleReadable(const std::shared_ptr<Connection>& conn);
  void HandleWritable(const std::shared_ptr<Connection>& conn);
  /// Flushes pending output and closes the connection once it is both
  /// drained and finished (or marked for hard drop). Reactor thread only.
  void FlushAndMaybeClose(const std::shared_ptr<Connection>& conn);
  void CloseConnection(const std::shared_ptr<Connection>& conn);
  /// Claims the drain slot and enqueues a pool task if none is running.
  /// Caller holds conn->mu. Returns true when the caller must run
  /// DrainLines itself *after releasing the lock* — the inline fallback
  /// for a null or single-threaded pool, whose Submit runs synchronously
  /// and would self-deadlock on conn->mu.
  bool ScheduleDrainLocked(const std::shared_ptr<Connection>& conn);
  /// Pool task: pops lines FIFO, runs the handler, queues replies.
  void DrainLines(std::shared_ptr<Connection> conn);
  /// Marks `fd` as needing reactor attention and wakes the epoll wait.
  void NotifyDirty(int fd);

  ReactorOptions options_;
  int epoll_fd_ = -1;
  int listen_fd_ = -1;
  int wake_fd_ = -1;   ///< eventfd
  int timer_fd_ = -1;  ///< timerfd driving HandleTick; -1 = no tick.
  int port_ = 0;

  std::thread reactor_thread_;
  std::thread::id reactor_tid_;
  std::atomic<bool> stopping_{false};
  bool shut_down_ = false;  // Shutdown() already ran (owner thread only).

  /// Reactor thread only (and Shutdown, after the join).
  std::unordered_map<int, std::shared_ptr<Connection>> conns_;

  /// Connections pool tasks flagged for flush/close attention.
  std::mutex dirty_mu_;
  std::vector<int> dirty_;

  /// Outstanding DrainLines tasks; Shutdown waits for zero.
  std::mutex in_flight_mu_;
  std::condition_variable in_flight_cv_;
  int in_flight_ = 0;

  mutable std::mutex stats_mu_;
  ReactorStats stats_;
  int active_ = 0;
};

}  // namespace uguide

#endif  // UGUIDE_SERVER_REACTOR_H_
