#include "server/admission.h"

#include <algorithm>
#include <cmath>

#include "common/fault_injection.h"
#include "common/memory_budget.h"

namespace uguide {

namespace {

/// Bucket maps larger than this get pruned of idle (full) buckets on the
/// next refusal-free pass; see PruneBucketsLocked.
constexpr size_t kMaxBuckets = 4096;

double MsBetween(std::chrono::steady_clock::time_point from,
                 std::chrono::steady_clock::time_point to) {
  return std::chrono::duration<double, std::milli>(to - from).count();
}

}  // namespace

AdmissionController::AdmissionController(AdmissionOptions options,
                                         const MemoryBudget* budget)
    : options_(options), budget_(budget) {}

BrownoutLevel AdmissionController::brownout() const {
  if (budget_ == nullptr) return BrownoutLevel::kNormal;
  const size_t hard = budget_->hard_limit();
  if (hard != 0 && static_cast<double>(budget_->charged()) >
                       options_.hard_fraction * static_cast<double>(hard)) {
    return BrownoutLevel::kShedding;
  }
  if (budget_->OverSoftLimit()) return BrownoutLevel::kBrownout;
  return BrownoutLevel::kNormal;
}

AdmissionVerdict AdmissionController::Admit(
    ClientOp op, const std::string& id,
    std::chrono::steady_clock::time_point enqueued) {
  const auto now = FaultRegistry::Global().Now();
  AdmissionVerdict verdict;

  // 1. Queue deadline: work that waited too long is stale — the client has
  // timed out or resent it; executing it only digs the backlog deeper.
  if (options_.queue_deadline_ms > 0.0) {
    const double waited_ms = MsBetween(enqueued, now);
    if (waited_ms > options_.queue_deadline_ms) {
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.deadline_shed;
      verdict.status = Status::Unavailable(
          "queue deadline exceeded; re-sync with op=next");
      verdict.code = error_code::kOverloaded;
      verdict.retry_after_ms = options_.retry_after_ms;
      return verdict;
    }
  }

  // 2. Brownout ladder: memory pressure refuses opens first, then sheds
  // every non-answer op. `answer` always lands (served expert attention
  // must never be lost), `close` always lands (it frees memory), and
  // `mutate` lands answer-style: the data keeps moving regardless of how
  // loaded the question-serving side is, and dropping a mutation would
  // silently fork the client's view of the relation.
  const BrownoutLevel level = brownout();
  if (level >= BrownoutLevel::kBrownout && op == ClientOp::kOpen) {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.brownout_refused;
    verdict.status =
        Status::ResourceExhausted("memory brownout: refusing new sessions");
    verdict.code = error_code::kOverloaded;
    verdict.retry_after_ms = options_.retry_after_ms;
    return verdict;
  }
  if (level >= BrownoutLevel::kShedding && op != ClientOp::kAnswer &&
      op != ClientOp::kClose && op != ClientOp::kMutate) {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.brownout_shed;
    verdict.status =
        Status::ResourceExhausted("memory brownout: shedding non-answer ops");
    verdict.code = error_code::kOverloaded;
    verdict.retry_after_ms = options_.retry_after_ms;
    return verdict;
  }

  // 3. Per-client token bucket — last, so refused ops cost no tokens.
  // `close` is exempt: throttling the op that releases resources would
  // work against the ladder above.
  if (options_.rate_limit_per_sec > 0.0 && !id.empty() &&
      op != ClientOp::kClose) {
    std::lock_guard<std::mutex> lock(mu_);
    int retry_after_ms = 0;
    if (!SpendTokenLocked(id, now, &retry_after_ms)) {
      ++stats_.rate_limited;
      verdict.status = Status::ResourceExhausted("client rate limit");
      verdict.code = error_code::kRateLimited;
      verdict.retry_after_ms = retry_after_ms;
      return verdict;
    }
  }

  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.admitted;
  return verdict;
}

bool AdmissionController::SpendTokenLocked(
    const std::string& id, std::chrono::steady_clock::time_point now,
    int* retry_after_ms) {
  const double rate = options_.rate_limit_per_sec;
  const double burst = std::max(1.0, options_.rate_burst);
  PruneBucketsLocked(now);
  auto [it, inserted] = buckets_.try_emplace(id);
  Bucket& bucket = it->second;
  if (inserted) {
    bucket.tokens = burst;
    bucket.refilled = now;
  } else {
    const double elapsed_s =
        std::max(0.0, MsBetween(bucket.refilled, now) / 1000.0);
    bucket.tokens = std::min(burst, bucket.tokens + elapsed_s * rate);
    bucket.refilled = now;
  }
  if (bucket.tokens >= 1.0) {
    bucket.tokens -= 1.0;
    return true;
  }
  *retry_after_ms = std::max(
      1, static_cast<int>(std::ceil((1.0 - bucket.tokens) / rate * 1000.0)));
  return false;
}

void AdmissionController::PruneBucketsLocked(
    std::chrono::steady_clock::time_point now) {
  if (buckets_.size() <= kMaxBuckets) return;
  const double rate = options_.rate_limit_per_sec;
  const double burst = std::max(1.0, options_.rate_burst);
  for (auto it = buckets_.begin(); it != buckets_.end();) {
    const double refill = MsBetween(it->second.refilled, now) / 1000.0 * rate;
    const bool idle = it->second.tokens + refill >= burst;
    it = idle ? buckets_.erase(it) : std::next(it);
  }
}

AdmissionStats AdmissionController::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace uguide
