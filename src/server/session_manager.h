#ifndef UGUIDE_SERVER_SESSION_MANAGER_H_
#define UGUIDE_SERVER_SESSION_MANAGER_H_

#include <chrono>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/session.h"
#include "core/session_state.h"
#include "live/live_dataset.h"
#include "server/admission.h"
#include "server/protocol.h"

namespace uguide {

/// Resource and policy knobs of a SessionManager.
struct SessionManagerOptions {
  /// Concurrent served sessions; opens beyond this are refused with
  /// kResourceExhausted (the client retries elsewhere/later).
  int max_sessions = 64;

  /// Sessions idle longer than this (fault-aware clock) are abandoned by
  /// EvictIdle — their journals survive, so an evicted session is exactly
  /// a crashed one: reopen with resume. 0 disables eviction.
  double idle_timeout_ms = 0.0;

  /// Directory for per-session journals (`<dir>/<id>.journal`). Empty
  /// disables journaling — sessions are then served memory-only.
  std::string journal_dir;

  /// Durability policy of every served journal.
  JournalFsyncMode journal_fsync = JournalFsyncMode::kEvery;

  /// Retention for *finished* journals (`--journal-retain-s`): the startup
  /// recovery scan deletes any journal whose durable end marker is older
  /// than this many seconds (by file mtime). 0 = keep forever. Resumable
  /// and quarantined journals are never GC'd — one holds live work, the
  /// other is evidence.
  double journal_retain_s = 0.0;

  /// Shared process pool for the violation-graph builds of all sessions;
  /// null gives every session a private single-thread pool.
  ThreadPool* pool = nullptr;

  /// Shared process memory budget; null falls back to the session config.
  MemoryBudget* memory_budget = nullptr;

  /// Shared warmed violation engine over the served dataset (a
  /// DatasetRegistry artifact). Null = each machine builds a private one.
  ViolationEngine* engine = nullptr;

  /// Shared prebuilt violation graph over the served candidate set; cell
  /// strategies copy it per run instead of rebuilding. Null = build per
  /// run.
  const ViolationGraph* graph = nullptr;

  /// Live mutation subsystem. When set, `op=mutate` applies batches here,
  /// and every open resolves its epoch (rebased session, patched engine,
  /// delta-maintained graph, version pins) from the live dataset instead
  /// of the static `engine`/`graph` above. Null = static data; op=mutate
  /// is refused. Must outlive the manager.
  LiveDataset* live = nullptr;

  /// Overload-protection knobs, all off by default. The brownout ladder
  /// additionally needs `memory_budget` to be set.
  AdmissionOptions admission;
};

/// Counters exposed for the daemon's exit summary and tests.
struct SessionManagerStats {
  int opened = 0;
  int finished = 0;
  int evicted = 0;
  int refused = 0;
  /// Sessions whose journal writer became poisoned (failed write/fsync)
  /// and were converted to structured `storage_failed` refusals.
  int storage_failed = 0;
};

/// What the startup recovery scan found in journal_dir (plus runtime
/// quarantines). Reported via op=health and the daemon exit summary: the
/// crash-restart gate checks that no admitted session is missing from
/// resumable + finished + quarantined.
struct JournalRecoveryStats {
  int resumable = 0;    ///< intact, unfinished: a resume will replay these
  int finished = 0;     ///< durable end marker present (retained)
  int quarantined = 0;  ///< damaged files moved to *.quarantined
  int gced = 0;         ///< finished journals deleted past journal_retain_s
};

/// \brief Owns the N concurrent served sessions of a daemon.
///
/// Each session is a journal-backed SessionStateMachine plus the strategy
/// instance it runs, keyed by a client-chosen id. HandleLine is the entire
/// server-side protocol: parse one client frame, advance the addressed
/// session, and return the reply frames. It is safe to call concurrently
/// from many connection threads — the session map has its own lock, and a
/// per-session mutex serializes the machine so two connections (e.g. a
/// stale one and its reconnect) cannot interleave a step.
///
/// Lifecycle: a session leaves the map when its report is delivered, when
/// the client closes it, or when EvictIdle times it out. The last two
/// abandon the machine but keep the journal, so the session can be
/// reopened with `resume` — eviction is deliberately indistinguishable
/// from a daemon crash.
class SessionManager {
 public:
  /// `session` (the dataset/config) must outlive the manager, as must the
  /// pool and memory budget in `options`.
  SessionManager(const Session* session, SessionManagerOptions options);
  ~SessionManager();

  SessionManager(const SessionManager&) = delete;
  SessionManager& operator=(const SessionManager&) = delete;

  /// Handles one protocol line, returning the frames to write back (each
  /// without trailing newline). Malformed input yields an error frame,
  /// never a crash. `enqueued` is when the reactor framed the line — the
  /// admission queue deadline sheds lines that waited too long. The 1-arg
  /// form stamps "now" (no queue, nothing to shed).
  std::vector<std::string> HandleLine(std::string_view line);
  std::vector<std::string> HandleLine(
      std::string_view line, std::chrono::steady_clock::time_point enqueued);

  /// Refuses new opens from now on and abandons every in-flight session
  /// (journals synced and preserved). Idempotent; part of SIGTERM drain.
  void BeginDrain();

  /// Abandons sessions idle past the timeout. Returns how many.
  int EvictIdle();

  int active_sessions() const;
  bool draining() const;
  SessionManagerStats stats() const;
  /// The recovery index built at construction, plus quarantines since.
  JournalRecoveryStats recovery_stats() const;
  AdmissionStats admission_stats() const { return admission_.stats(); }
  BrownoutLevel brownout() const { return admission_.brownout(); }

  /// Installed by the daemon to add reactor/connection fields to op=health
  /// replies; called (outside the manager lock) with the frame the manager
  /// already filled from its own counters.
  void SetHealthAugmenter(std::function<void(HealthInfo*)> augmenter);

 private:
  struct Served {
    std::string id;
    std::unique_ptr<Strategy> strategy;
    std::unique_ptr<SessionStateMachine> machine;
    /// The question currently out with the client (answer seq validation
    /// and op=next re-delivery).
    std::optional<SessionQuestion> last_question;
    std::chrono::steady_clock::time_point last_active;
    /// Serializes machine access across connection threads.
    std::mutex step_mu;
    /// The storage_failed counter ticked once for this session.
    bool storage_failed_counted = false;
    /// Pins the live epoch this session was opened against, so the ring
    /// moving on cannot invalidate the engine/graph/session the machine
    /// holds pointers into. Null when serving static data.
    std::shared_ptr<const LiveEpoch> epoch;
  };

  std::vector<std::string> HandleOpen(const ClientFrame& frame);
  std::vector<std::string> HandleStep(const ClientFrame& frame);
  std::vector<std::string> HandleClose(const ClientFrame& frame);
  std::vector<std::string> HandleMutate(const ClientFrame& frame);
  std::vector<std::string> HandleHealth();

  /// Pulls the next question (or the final report) out of `served`.
  /// Caller holds served->step_mu.
  std::vector<std::string> Advance(const std::shared_ptr<Served>& served);

  std::shared_ptr<Served> Find(const std::string& id);
  void Erase(const std::string& id);
  std::string JournalPathFor(const std::string& id) const;

  /// Startup scan over journal_dir: classify every journal as resumable /
  /// finished / quarantined, move damaged files aside, and GC finished
  /// journals past the retention window. Runs once, from the constructor,
  /// before any connection exists.
  void RecoverJournals();

  const Session* session_;
  const SessionManagerOptions options_;
  AdmissionController admission_;

  mutable std::mutex mu_;
  std::map<std::string, std::shared_ptr<Served>> sessions_;
  bool draining_ = false;
  SessionManagerStats stats_;
  JournalRecoveryStats recovery_;
  std::function<void(HealthInfo*)> health_augmenter_;
};

}  // namespace uguide

#endif  // UGUIDE_SERVER_SESSION_MANAGER_H_
