#include "server/dataset.h"

#include <utility>

#include "datagen/generators.h"
#include "discovery/tane.h"
#include "errorgen/error_generator.h"

namespace uguide {

Result<Session> MakeServedDataset(const ServedDatasetOptions& options) {
  if (options.rows <= 0) {
    return Status::InvalidArgument("dataset rows must be positive");
  }
  DataGenOptions data;
  data.rows = options.rows;
  data.seed = options.seed;
  Relation clean = GenerateHospital(data);

  TaneOptions tane;
  tane.max_lhs_size = options.max_lhs;
  UGUIDE_ASSIGN_OR_RETURN(FdSet true_fds, DiscoverFds(clean, tane));

  ErrorGenOptions errors;
  errors.model = ErrorModel::kSystematic;
  errors.error_rate = options.error_rate;
  errors.seed = options.seed + 1;
  UGUIDE_ASSIGN_OR_RETURN(DirtyDataset dataset,
                          InjectErrors(clean, true_fds, errors));

  SessionConfig config;
  config.candidate_options.max_lhs_size = options.max_lhs;
  config.candidate_options.num_threads = options.num_threads;
  config.budget = options.budget;
  config.idk_rate = options.idk_rate;
  config.wrong_rate = options.wrong_rate;
  config.expert_seed = options.expert_seed;
  config.expert_votes = options.expert_votes;
  return Session::Create(clean, std::move(dataset), config);
}

}  // namespace uguide
