#include "server/dataset.h"

#include <utility>

#include "datagen/generators.h"
#include "discovery/tane.h"
#include "errorgen/error_generator.h"

namespace uguide {

Result<Session> MakeServedDataset(const ServedDatasetOptions& options) {
  if (options.rows <= 0) {
    return Status::InvalidArgument("dataset rows must be positive");
  }
  DataGenOptions data;
  data.rows = options.rows;
  data.seed = options.seed;
  Relation clean = GenerateHospital(data);

  TaneOptions tane;
  tane.max_lhs_size = options.max_lhs;
  UGUIDE_ASSIGN_OR_RETURN(FdSet true_fds, DiscoverFds(clean, tane));

  ErrorGenOptions errors;
  errors.model = ErrorModel::kSystematic;
  errors.error_rate = options.error_rate;
  errors.seed = options.seed + 1;
  UGUIDE_ASSIGN_OR_RETURN(DirtyDataset dataset,
                          InjectErrors(clean, true_fds, errors));

  SessionConfig config;
  config.candidate_options.max_lhs_size = options.max_lhs;
  config.candidate_options.num_threads = options.num_threads;
  config.budget = options.budget;
  config.idk_rate = options.idk_rate;
  config.wrong_rate = options.wrong_rate;
  config.expert_seed = options.expert_seed;
  config.expert_votes = options.expert_votes;
  return Session::Create(clean, std::move(dataset), config);
}

uint64_t RelationContentHash(const Relation& relation) {
  uint64_t hash = 0xcbf29ce484222325ULL;  // FNV-1a 64-bit offset basis.
  auto mix_bytes = [&hash](const void* data, size_t size) {
    const auto* bytes = static_cast<const unsigned char*>(data);
    for (size_t i = 0; i < size; ++i) {
      hash ^= bytes[i];
      hash *= 0x100000001b3ULL;
    }
  };
  auto mix_string = [&mix_bytes](const std::string& value) {
    // Length-prefixed so ("ab","c") and ("a","bc") cannot collide.
    const uint64_t length = value.size();
    mix_bytes(&length, sizeof(length));
    mix_bytes(value.data(), value.size());
  };
  for (const std::string& name : relation.schema().Names()) mix_string(name);
  const TupleId rows = relation.NumRows();
  const int cols = relation.NumAttributes();
  for (TupleId row = 0; row < rows; ++row) {
    for (int col = 0; col < cols; ++col) mix_string(relation.Value(row, col));
  }
  return hash;
}

uint64_t ServedDatasetSignature(const ServedDatasetOptions& options) {
  size_t hash = 0;
  HashCombine(hash, options.rows);
  HashCombine(hash, options.error_rate);
  HashCombine(hash, options.seed);
  HashCombine(hash, options.idk_rate);
  HashCombine(hash, options.wrong_rate);
  HashCombine(hash, options.expert_seed);
  HashCombine(hash, options.expert_votes);
  HashCombine(hash, options.budget);
  HashCombine(hash, options.max_lhs);
  return hash;
}

}  // namespace uguide
