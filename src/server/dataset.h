#ifndef UGUIDE_SERVER_DATASET_H_
#define UGUIDE_SERVER_DATASET_H_

#include <cstdint>

#include "core/session.h"

namespace uguide {

/// \brief The dataset recipe a serving deployment is pinned to.
///
/// uguided serves sessions over one dataset built at startup; the load
/// generator (and the serving tests) rebuild the *same* dataset from the
/// same flags to compute reference reports in-process. Byte-equality of
/// served and local reports therefore hinges on both sides sharing this
/// recipe — which is why it lives in the library, not in either tool.
struct ServedDatasetOptions {
  int rows = 1200;
  double error_rate = 0.15;
  uint64_t seed = 5;
  double idk_rate = 0.0;
  double wrong_rate = 0.0;
  uint64_t expert_seed = 11;
  int expert_votes = 1;
  /// Default per-session question budget (an open may override it).
  double budget = 64.0;
  int max_lhs = 3;
  /// Worker threads for candidate generation (results thread-invariant).
  int num_threads = 1;
};

/// Generates the hospital benchmark table, injects systematic errors, and
/// builds the Session (offline phase) — the deterministic twin of the
/// recipe the tests use.
Result<Session> MakeServedDataset(const ServedDatasetOptions& options);

/// Hash of what the relation *contains*: schema attribute names plus every
/// cell value, in row-major order (FNV-1a over length-prefixed strings).
/// Deliberately independent of dictionary-code assignment order, so two
/// loads of the same table hash equal however they were built. This is the
/// DatasetRegistry's cache key for shared artifacts.
uint64_t RelationContentHash(const Relation& relation);

/// Hash of every artifact-affecting field of the recipe — everything
/// except `num_threads`, whose outputs are thread-invariant by the
/// determinism discipline. Two recipes with equal signatures build
/// byte-identical sessions, engines, and graphs.
uint64_t ServedDatasetSignature(const ServedDatasetOptions& options);

}  // namespace uguide

#endif  // UGUIDE_SERVER_DATASET_H_
