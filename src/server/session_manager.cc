#include "server/session_manager.h"

#include <dirent.h>
#include <sys/stat.h>
#include <unistd.h>

#include <ctime>
#include <utility>

#include "common/fault_injection.h"
#include "core/session_journal.h"

namespace uguide {

namespace {

/// Session ids become journal file names; confine them to a charset that
/// cannot traverse paths or hide control bytes.
bool ValidSessionId(const std::string& id) {
  if (id.empty() || id.size() > 128) return false;
  if (id.front() == '.') return false;
  for (const char c : id) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '-' || c == '_' || c == '.';
    if (!ok) return false;
  }
  return true;
}

bool EndsWith(const std::string& name, std::string_view suffix) {
  return name.size() >= suffix.size() &&
         name.compare(name.size() - suffix.size(), suffix.size(), suffix) == 0;
}

}  // namespace

SessionManager::SessionManager(const Session* session,
                               SessionManagerOptions options)
    : session_(session),
      options_(std::move(options)),
      admission_(options_.admission, options_.memory_budget) {
  RecoverJournals();
}

void SessionManager::RecoverJournals() {
  if (options_.journal_dir.empty()) return;
  DIR* dir = ::opendir(options_.journal_dir.c_str());
  if (dir == nullptr) return;  // nothing durable yet: a fresh deployment
  std::vector<std::string> journals;
  while (const dirent* entry = ::readdir(dir)) {
    const std::string name = entry->d_name;
    if (EndsWith(name, ".journal.quarantined")) {
      // A quarantine backlog from earlier incarnations: still surfaced —
      // every damaged session stays visible until an operator triages it.
      ++recovery_.quarantined;
    } else if (EndsWith(name, ".journal")) {
      journals.push_back(name);
    }
  }
  ::closedir(dir);

  bool unlinked = false;
  const std::time_t now = std::time(nullptr);
  for (const std::string& name : journals) {
    const std::string path = options_.journal_dir + "/" + name;
    Result<LoadedJournal> loaded = LoadJournal(path);
    if (!loaded.ok()) {
      // Checksum failure, torn header, unreadable: no resume can ever
      // succeed, so move the evidence aside where it cannot be mistaken
      // for live state. (kDataLoss and structurally-unreadable files get
      // the same treatment; they differ only in the error text.)
      if (QuarantineJournal(path).ok()) ++recovery_.quarantined;
      continue;
    }
    if (!loaded->finished) {
      ++recovery_.resumable;
      continue;
    }
    if (options_.journal_retain_s > 0.0) {
      struct stat st;
      if (::stat(path.c_str(), &st) == 0 &&
          static_cast<double>(now - st.st_mtime) > options_.journal_retain_s &&
          ::unlink(path.c_str()) == 0) {
        ++recovery_.gced;
        unlinked = true;
        continue;
      }
    }
    ++recovery_.finished;
  }
  // One directory fsync covers every unlink: recovery itself must not be
  // undone by a crash right after it runs.
  if (unlinked) FsyncDir(options_.journal_dir).IgnoreError();
}

void SessionManager::SetHealthAugmenter(
    std::function<void(HealthInfo*)> augmenter) {
  std::lock_guard<std::mutex> lock(mu_);
  health_augmenter_ = std::move(augmenter);
}

SessionManager::~SessionManager() { BeginDrain(); }

std::string SessionManager::JournalPathFor(const std::string& id) const {
  if (options_.journal_dir.empty()) return std::string();
  return options_.journal_dir + "/" + id + ".journal";
}

std::shared_ptr<SessionManager::Served> SessionManager::Find(
    const std::string& id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sessions_.find(id);
  return it == sessions_.end() ? nullptr : it->second;
}

void SessionManager::Erase(const std::string& id) {
  std::lock_guard<std::mutex> lock(mu_);
  sessions_.erase(id);
}

std::vector<std::string> SessionManager::HandleLine(std::string_view line) {
  return HandleLine(line, FaultRegistry::Global().Now());
}

std::vector<std::string> SessionManager::HandleLine(
    std::string_view line, std::chrono::steady_clock::time_point enqueued) {
  Result<ClientFrame> parsed = ParseClientFrame(line);
  if (!parsed.ok()) {
    return {FormatErrorFrame("", parsed.status(), error_code::kBadFrame, -1)};
  }
  const ClientFrame& frame = *parsed;

  // Ping and health bypass admission: both are the probes an operator (or
  // a backing-off client) uses to see whether the daemon is alive and why
  // it is refusing — shedding them would blind exactly the tooling that
  // responds to overload.
  if (frame.op == ClientOp::kPing) return {FormatPongFrame()};
  if (frame.op == ClientOp::kHealth) return HandleHealth();

  const AdmissionVerdict verdict =
      admission_.Admit(frame.op, frame.id, enqueued);
  if (!verdict.admitted()) {
    return {FormatErrorFrame(frame.id, verdict.status, verdict.code,
                             verdict.retry_after_ms)};
  }

  switch (frame.op) {
    case ClientOp::kOpen:
      return HandleOpen(frame);
    case ClientOp::kNext:
    case ClientOp::kAnswer:
      return HandleStep(frame);
    case ClientOp::kClose:
      return HandleClose(frame);
    case ClientOp::kMutate:
      return HandleMutate(frame);
    case ClientOp::kPing:
    case ClientOp::kHealth:
      break;  // handled above
  }
  return {FormatErrorFrame(frame.id, Status::Internal("unreachable"))};
}

std::vector<std::string> SessionManager::HandleHealth() {
  HealthInfo health;
  health.brownout = static_cast<int>(admission_.brownout());
  const AdmissionStats admission = admission_.stats();
  health.rate_limited = admission.rate_limited;
  health.deadline_shed = admission.deadline_shed;
  health.brownout_refused = admission.brownout_refused;
  health.brownout_shed = admission.brownout_shed;
  std::function<void(HealthInfo*)> augmenter;
  {
    std::lock_guard<std::mutex> lock(mu_);
    health.active_sessions = static_cast<int>(sessions_.size());
    health.opened = stats_.opened;
    health.finished = stats_.finished;
    health.evicted = stats_.evicted;
    health.refused = stats_.refused;
    health.storage_failed = stats_.storage_failed;
    health.journals_resumable = recovery_.resumable;
    health.journals_finished = recovery_.finished;
    health.journals_quarantined = recovery_.quarantined;
    health.journals_gced = recovery_.gced;
    augmenter = health_augmenter_;
  }
  if (augmenter) augmenter(&health);
  return {FormatHealthFrame(health)};
}

std::vector<std::string> SessionManager::HandleOpen(const ClientFrame& frame) {
  if (!ValidSessionId(frame.id)) {
    return {FormatErrorFrame(frame.id,
                             Status::InvalidArgument("bad session id"))};
  }

  const std::string journal_path = JournalPathFor(frame.id);
  if (frame.resume && !journal_path.empty()) {
    // A journal that was moved aside is a terminal verdict, not a missing
    // file: tell the client exactly that so it stops retrying the resume.
    struct stat st;
    if (::stat(journal_path.c_str(), &st) != 0 &&
        ::stat((journal_path + ".quarantined").c_str(), &st) == 0) {
      return {FormatErrorFrame(
          frame.id,
          Status::DataLoss("journal for session '" + frame.id +
                           "' was quarantined (checksum failure); the "
                           "session cannot be resumed"),
          error_code::kJournalCorrupt, -1)};
    }
  }

  Result<std::unique_ptr<Strategy>> strategy =
      MakeStrategyByName(frame.strategy);
  if (!strategy.ok()) return {FormatErrorFrame(frame.id, strategy.status())};

  // Resolve which epoch of the data this session runs against. A fresh
  // open pins the current one; a resume re-pins exactly the epoch its
  // journal recorded — replaying journaled answers onto different data
  // would be silently wrong, so a version the ring no longer holds (or a
  // changed base content) is a terminal, structured refusal.
  std::shared_ptr<const LiveEpoch> epoch;
  uint64_t pin_hash = 0;
  uint64_t pin_version = 0;
  if (options_.live != nullptr) {
    epoch = options_.live->Current();
    pin_hash = epoch->content_hash;
    pin_version = epoch->version;
    struct stat st;
    if (frame.resume && !journal_path.empty() &&
        ::stat(journal_path.c_str(), &st) == 0) {
      Result<JournalHeader> header = PeekJournalHeader(journal_path);
      if (header.ok()) {
        std::shared_ptr<const LiveEpoch> pinned =
            options_.live->AtVersion(header->data_version);
        if (pinned == nullptr ||
            (header->content_hash != 0 &&
             header->content_hash != pinned->content_hash)) {
          return {FormatErrorFrame(
              frame.id,
              Status::FailedPrecondition(
                  "journal pins data version " +
                  std::to_string(header->data_version) +
                  " which this daemon no longer serves; open a fresh "
                  "session instead"),
              error_code::kVersionMismatch, -1)};
        }
        epoch = std::move(pinned);
        // Echo the journal's own pins (pre-live journals pin 0/0) so the
        // resumed header validates against what was written.
        pin_hash = header->content_hash;
        pin_version = header->data_version;
      }
      // A header that fails to peek falls through: the machine's own load
      // produces the established corrupt-journal handling below.
    }
  }

  auto served = std::make_shared<Served>();
  served->id = frame.id;
  served->strategy = std::move(*strategy);
  served->last_active = FaultRegistry::Global().Now();
  served->epoch = epoch;

  {
    std::lock_guard<std::mutex> lock(mu_);
    if (draining_) {
      ++stats_.refused;
      return {FormatErrorFrame(frame.id,
                               Status::Unavailable("daemon is draining"),
                               error_code::kDraining, -1)};
    }
    if (static_cast<int>(sessions_.size()) >= options_.max_sessions) {
      ++stats_.refused;
      return {FormatErrorFrame(
          frame.id, Status::ResourceExhausted("session limit reached"),
          error_code::kOverloaded, options_.admission.retry_after_ms)};
    }
    if (sessions_.count(frame.id) != 0) {
      return {FormatErrorFrame(
          frame.id, Status::AlreadyExists("session id already open"))};
    }
    // Reserve the id before the (possibly slow) machine start so a racing
    // duplicate open fails fast.
    sessions_.emplace(frame.id, served);
  }

  SessionStepOptions step;
  step.journal_path = JournalPathFor(frame.id);
  step.resume = frame.resume;
  step.journal_fsync = options_.journal_fsync;
  step.pool = options_.pool;
  step.memory_budget = options_.memory_budget;
  step.engine = epoch != nullptr ? epoch->engine.get() : options_.engine;
  step.graph = epoch != nullptr ? &epoch->graph() : options_.graph;
  step.content_hash = pin_hash;
  step.data_version = pin_version;
  const Session* target =
      epoch != nullptr ? epoch->session.get() : session_;
  const double budget =
      frame.has_budget ? frame.budget : session_->config().budget;

  Result<std::unique_ptr<SessionStateMachine>> machine =
      SessionStateMachine::Start(*target, *served->strategy, budget,
                                 std::move(step));
  if (!machine.ok()) {
    Erase(frame.id);
    if (machine.status().code() == StatusCode::kDataLoss &&
        !journal_path.empty()) {
      // The load proved mid-file corruption. Quarantine now so the state
      // is consistent with the refusal and later resumes hit the marker.
      if (QuarantineJournal(journal_path).ok()) {
        std::lock_guard<std::mutex> lock(mu_);
        ++recovery_.quarantined;
      }
    }
    return {FormatErrorFrame(frame.id, machine.status())};
  }

  std::lock_guard<std::mutex> step_lock(served->step_mu);
  served->machine = std::move(*machine);
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.opened;
  }
  return Advance(served);
}

std::vector<std::string> SessionManager::HandleStep(const ClientFrame& frame) {
  std::shared_ptr<Served> served = Find(frame.id);
  if (served == nullptr) {
    return {FormatErrorFrame(frame.id, Status::NotFound("no such session"))};
  }
  std::lock_guard<std::mutex> step_lock(served->step_mu);
  if (served->machine == nullptr) {
    return {FormatErrorFrame(frame.id,
                             Status::Unavailable("session still opening"))};
  }
  served->last_active = FaultRegistry::Global().Now();

  if (frame.op == ClientOp::kNext) return Advance(served);

  if (!served->last_question.has_value()) {
    return {FormatErrorFrame(
        frame.id, Status::FailedPrecondition("no question outstanding"))};
  }
  if (frame.seq != served->last_question->index) {
    return {FormatErrorFrame(
        frame.id,
        Status::InvalidArgument(
            "stale answer seq (re-sync with op=next)"))};
  }

  AnswerSubmission submission;
  submission.answer = frame.answer;
  submission.retry_cost = frame.retry_cost;
  submission.exhausted = frame.exhausted;
  Status submitted = served->machine->SubmitAnswer(submission);
  if (!submitted.ok()) return {FormatErrorFrame(frame.id, submitted)};
  served->last_question.reset();
  return Advance(served);
}

std::vector<std::string> SessionManager::HandleMutate(
    const ClientFrame& frame) {
  if (options_.live == nullptr) {
    return {FormatErrorFrame(
        frame.id,
        Status::NotImplemented("live mutations are not enabled here"))};
  }
  MutationBatch batch;
  batch.ops = frame.mutations;
  const MutationReceipt receipt = options_.live->Apply(batch);
  return {FormatMutatedFrame(frame.id, receipt.version, receipt.applied,
                             receipt.refused)};
}

std::vector<std::string> SessionManager::HandleClose(const ClientFrame& frame) {
  std::shared_ptr<Served> served = Find(frame.id);
  if (served == nullptr) {
    return {FormatErrorFrame(frame.id, Status::NotFound("no such session"))};
  }
  {
    std::lock_guard<std::mutex> step_lock(served->step_mu);
    if (served->machine != nullptr) served->machine->Abandon();
  }
  Erase(frame.id);
  return {FormatClosedFrame(frame.id)};
}

std::vector<std::string> SessionManager::Advance(
    const std::shared_ptr<Served>& served) {
  // A poisoned journal writer means the last acknowledged answer may not
  // be durable: stop advancing the session outward. The machine itself is
  // consistent (the session stays in the map, close still works, health
  // still counts it) — the refusal is about durability, not state.
  const Status write_status = served->machine->write_status();
  if (!write_status.ok()) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (!served->storage_failed_counted) {
        served->storage_failed_counted = true;
        ++stats_.storage_failed;
      }
    }
    return {FormatErrorFrame(served->id, write_status,
                             error_code::kStorageFailed, -1)};
  }
  std::optional<SessionQuestion> question = served->machine->NextQuestion();
  if (question.has_value()) {
    served->last_question = question;
    return {FormatQuestionFrame(served->id, *question)};
  }
  Result<SessionReport> report = served->machine->Finish();
  Erase(served->id);
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.finished;
  }
  if (!report.ok()) return {FormatErrorFrame(served->id, report.status())};
  return {FormatReportFrame(served->id, *report)};
}

void SessionManager::BeginDrain() {
  std::vector<std::shared_ptr<Served>> live;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (draining_) return;
    draining_ = true;
    for (auto& [id, served] : sessions_) live.push_back(served);
    sessions_.clear();
  }
  // Abandon outside the map lock: each abandon waits for its strategy to
  // wind down and syncs/closes its journal.
  for (auto& served : live) {
    std::lock_guard<std::mutex> step_lock(served->step_mu);
    if (served->machine != nullptr) served->machine->Abandon();
  }
}

int SessionManager::EvictIdle() {
  if (options_.idle_timeout_ms <= 0.0) return 0;
  // Under memory pressure an idle session holds exactly the resource the
  // brownout ladder is protecting, so the timeout tightens to a quarter.
  const double timeout_ms =
      admission_.brownout() >= BrownoutLevel::kBrownout
          ? options_.idle_timeout_ms / 4.0
          : options_.idle_timeout_ms;
  const auto now = FaultRegistry::Global().Now();
  std::vector<std::shared_ptr<Served>> idle;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto it = sessions_.begin(); it != sessions_.end();) {
      const double idle_ms = std::chrono::duration<double, std::milli>(
                                 now - it->second->last_active)
                                 .count();
      if (idle_ms > timeout_ms) {
        idle.push_back(it->second);
        it = sessions_.erase(it);
      } else {
        ++it;
      }
    }
    stats_.evicted += static_cast<int>(idle.size());
  }
  for (auto& served : idle) {
    std::lock_guard<std::mutex> step_lock(served->step_mu);
    if (served->machine != nullptr) served->machine->Abandon();
  }
  return static_cast<int>(idle.size());
}

int SessionManager::active_sessions() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int>(sessions_.size());
}

bool SessionManager::draining() const {
  std::lock_guard<std::mutex> lock(mu_);
  return draining_;
}

SessionManagerStats SessionManager::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

JournalRecoveryStats SessionManager::recovery_stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return recovery_;
}

}  // namespace uguide
