#include "server/session_manager.h"

#include <utility>

#include "common/fault_injection.h"

namespace uguide {

namespace {

/// Session ids become journal file names; confine them to a charset that
/// cannot traverse paths or hide control bytes.
bool ValidSessionId(const std::string& id) {
  if (id.empty() || id.size() > 128) return false;
  if (id.front() == '.') return false;
  for (const char c : id) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '-' || c == '_' || c == '.';
    if (!ok) return false;
  }
  return true;
}

}  // namespace

SessionManager::SessionManager(const Session* session,
                               SessionManagerOptions options)
    : session_(session),
      options_(std::move(options)),
      admission_(options_.admission, options_.memory_budget) {}

void SessionManager::SetHealthAugmenter(
    std::function<void(HealthInfo*)> augmenter) {
  std::lock_guard<std::mutex> lock(mu_);
  health_augmenter_ = std::move(augmenter);
}

SessionManager::~SessionManager() { BeginDrain(); }

std::string SessionManager::JournalPathFor(const std::string& id) const {
  if (options_.journal_dir.empty()) return std::string();
  return options_.journal_dir + "/" + id + ".journal";
}

std::shared_ptr<SessionManager::Served> SessionManager::Find(
    const std::string& id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sessions_.find(id);
  return it == sessions_.end() ? nullptr : it->second;
}

void SessionManager::Erase(const std::string& id) {
  std::lock_guard<std::mutex> lock(mu_);
  sessions_.erase(id);
}

std::vector<std::string> SessionManager::HandleLine(std::string_view line) {
  return HandleLine(line, FaultRegistry::Global().Now());
}

std::vector<std::string> SessionManager::HandleLine(
    std::string_view line, std::chrono::steady_clock::time_point enqueued) {
  Result<ClientFrame> parsed = ParseClientFrame(line);
  if (!parsed.ok()) {
    return {FormatErrorFrame("", parsed.status(), error_code::kBadFrame, -1)};
  }
  const ClientFrame& frame = *parsed;

  // Ping and health bypass admission: both are the probes an operator (or
  // a backing-off client) uses to see whether the daemon is alive and why
  // it is refusing — shedding them would blind exactly the tooling that
  // responds to overload.
  if (frame.op == ClientOp::kPing) return {FormatPongFrame()};
  if (frame.op == ClientOp::kHealth) return HandleHealth();

  const AdmissionVerdict verdict =
      admission_.Admit(frame.op, frame.id, enqueued);
  if (!verdict.admitted()) {
    return {FormatErrorFrame(frame.id, verdict.status, verdict.code,
                             verdict.retry_after_ms)};
  }

  switch (frame.op) {
    case ClientOp::kOpen:
      return HandleOpen(frame);
    case ClientOp::kNext:
    case ClientOp::kAnswer:
      return HandleStep(frame);
    case ClientOp::kClose:
      return HandleClose(frame);
    case ClientOp::kPing:
    case ClientOp::kHealth:
      break;  // handled above
  }
  return {FormatErrorFrame(frame.id, Status::Internal("unreachable"))};
}

std::vector<std::string> SessionManager::HandleHealth() {
  HealthInfo health;
  health.brownout = static_cast<int>(admission_.brownout());
  const AdmissionStats admission = admission_.stats();
  health.rate_limited = admission.rate_limited;
  health.deadline_shed = admission.deadline_shed;
  health.brownout_refused = admission.brownout_refused;
  health.brownout_shed = admission.brownout_shed;
  std::function<void(HealthInfo*)> augmenter;
  {
    std::lock_guard<std::mutex> lock(mu_);
    health.active_sessions = static_cast<int>(sessions_.size());
    health.opened = stats_.opened;
    health.finished = stats_.finished;
    health.evicted = stats_.evicted;
    health.refused = stats_.refused;
    augmenter = health_augmenter_;
  }
  if (augmenter) augmenter(&health);
  return {FormatHealthFrame(health)};
}

std::vector<std::string> SessionManager::HandleOpen(const ClientFrame& frame) {
  if (!ValidSessionId(frame.id)) {
    return {FormatErrorFrame(frame.id,
                             Status::InvalidArgument("bad session id"))};
  }

  Result<std::unique_ptr<Strategy>> strategy =
      MakeStrategyByName(frame.strategy);
  if (!strategy.ok()) return {FormatErrorFrame(frame.id, strategy.status())};

  auto served = std::make_shared<Served>();
  served->id = frame.id;
  served->strategy = std::move(*strategy);
  served->last_active = FaultRegistry::Global().Now();

  {
    std::lock_guard<std::mutex> lock(mu_);
    if (draining_) {
      ++stats_.refused;
      return {FormatErrorFrame(frame.id,
                               Status::Unavailable("daemon is draining"),
                               error_code::kDraining, -1)};
    }
    if (static_cast<int>(sessions_.size()) >= options_.max_sessions) {
      ++stats_.refused;
      return {FormatErrorFrame(
          frame.id, Status::ResourceExhausted("session limit reached"),
          error_code::kOverloaded, options_.admission.retry_after_ms)};
    }
    if (sessions_.count(frame.id) != 0) {
      return {FormatErrorFrame(
          frame.id, Status::AlreadyExists("session id already open"))};
    }
    // Reserve the id before the (possibly slow) machine start so a racing
    // duplicate open fails fast.
    sessions_.emplace(frame.id, served);
  }

  SessionStepOptions step;
  step.journal_path = JournalPathFor(frame.id);
  step.resume = frame.resume;
  step.journal_fsync = options_.journal_fsync;
  step.pool = options_.pool;
  step.memory_budget = options_.memory_budget;
  step.engine = options_.engine;
  step.graph = options_.graph;
  const double budget =
      frame.has_budget ? frame.budget : session_->config().budget;

  Result<std::unique_ptr<SessionStateMachine>> machine =
      SessionStateMachine::Start(*session_, *served->strategy, budget,
                                 std::move(step));
  if (!machine.ok()) {
    Erase(frame.id);
    return {FormatErrorFrame(frame.id, machine.status())};
  }

  std::lock_guard<std::mutex> step_lock(served->step_mu);
  served->machine = std::move(*machine);
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.opened;
  }
  return Advance(served);
}

std::vector<std::string> SessionManager::HandleStep(const ClientFrame& frame) {
  std::shared_ptr<Served> served = Find(frame.id);
  if (served == nullptr) {
    return {FormatErrorFrame(frame.id, Status::NotFound("no such session"))};
  }
  std::lock_guard<std::mutex> step_lock(served->step_mu);
  if (served->machine == nullptr) {
    return {FormatErrorFrame(frame.id,
                             Status::Unavailable("session still opening"))};
  }
  served->last_active = FaultRegistry::Global().Now();

  if (frame.op == ClientOp::kNext) return Advance(served);

  if (!served->last_question.has_value()) {
    return {FormatErrorFrame(
        frame.id, Status::FailedPrecondition("no question outstanding"))};
  }
  if (frame.seq != served->last_question->index) {
    return {FormatErrorFrame(
        frame.id,
        Status::InvalidArgument(
            "stale answer seq (re-sync with op=next)"))};
  }

  AnswerSubmission submission;
  submission.answer = frame.answer;
  submission.retry_cost = frame.retry_cost;
  submission.exhausted = frame.exhausted;
  Status submitted = served->machine->SubmitAnswer(submission);
  if (!submitted.ok()) return {FormatErrorFrame(frame.id, submitted)};
  served->last_question.reset();
  return Advance(served);
}

std::vector<std::string> SessionManager::HandleClose(const ClientFrame& frame) {
  std::shared_ptr<Served> served = Find(frame.id);
  if (served == nullptr) {
    return {FormatErrorFrame(frame.id, Status::NotFound("no such session"))};
  }
  {
    std::lock_guard<std::mutex> step_lock(served->step_mu);
    if (served->machine != nullptr) served->machine->Abandon();
  }
  Erase(frame.id);
  return {FormatClosedFrame(frame.id)};
}

std::vector<std::string> SessionManager::Advance(
    const std::shared_ptr<Served>& served) {
  std::optional<SessionQuestion> question = served->machine->NextQuestion();
  if (question.has_value()) {
    served->last_question = question;
    return {FormatQuestionFrame(served->id, *question)};
  }
  Result<SessionReport> report = served->machine->Finish();
  Erase(served->id);
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.finished;
  }
  if (!report.ok()) return {FormatErrorFrame(served->id, report.status())};
  return {FormatReportFrame(served->id, *report)};
}

void SessionManager::BeginDrain() {
  std::vector<std::shared_ptr<Served>> live;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (draining_) return;
    draining_ = true;
    for (auto& [id, served] : sessions_) live.push_back(served);
    sessions_.clear();
  }
  // Abandon outside the map lock: each abandon waits for its strategy to
  // wind down and syncs/closes its journal.
  for (auto& served : live) {
    std::lock_guard<std::mutex> step_lock(served->step_mu);
    if (served->machine != nullptr) served->machine->Abandon();
  }
}

int SessionManager::EvictIdle() {
  if (options_.idle_timeout_ms <= 0.0) return 0;
  // Under memory pressure an idle session holds exactly the resource the
  // brownout ladder is protecting, so the timeout tightens to a quarter.
  const double timeout_ms =
      admission_.brownout() >= BrownoutLevel::kBrownout
          ? options_.idle_timeout_ms / 4.0
          : options_.idle_timeout_ms;
  const auto now = FaultRegistry::Global().Now();
  std::vector<std::shared_ptr<Served>> idle;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto it = sessions_.begin(); it != sessions_.end();) {
      const double idle_ms = std::chrono::duration<double, std::milli>(
                                 now - it->second->last_active)
                                 .count();
      if (idle_ms > timeout_ms) {
        idle.push_back(it->second);
        it = sessions_.erase(it);
      } else {
        ++it;
      }
    }
    stats_.evicted += static_cast<int>(idle.size());
  }
  for (auto& served : idle) {
    std::lock_guard<std::mutex> step_lock(served->step_mu);
    if (served->machine != nullptr) served->machine->Abandon();
  }
  return static_cast<int>(idle.size());
}

int SessionManager::active_sessions() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int>(sessions_.size());
}

bool SessionManager::draining() const {
  std::lock_guard<std::mutex> lock(mu_);
  return draining_;
}

SessionManagerStats SessionManager::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace uguide
