#include "server/reactor.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <signal.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <sys/timerfd.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <utility>

#include "common/fault_injection.h"
#include "common/thread_pool.h"

namespace uguide {

namespace {

Status Errno(const std::string& action) {
  return Status::IoError(action + ": " + std::strerror(errno));
}

}  // namespace

bool LineBuffer::Append(const char* data, size_t size) {
  buffer_.append(data, size);
  return pending_bytes() <= max_line_bytes_;
}

std::optional<std::string> LineBuffer::NextLine() {
  while (true) {
    const size_t nl = buffer_.find('\n', start_);
    if (nl == std::string::npos) {
      // Compact once the consumed prefix dominates the buffer.
      if (start_ > 0 && start_ >= buffer_.size() / 2) {
        buffer_.erase(0, start_);
        start_ = 0;
      }
      return std::nullopt;
    }
    size_t end = nl;
    if (end > start_ && buffer_[end - 1] == '\r') --end;
    std::string line = buffer_.substr(start_, end - start_);
    start_ = nl + 1;
    if (!line.empty()) return line;
    // Bare keep-alive newline: skip and keep scanning.
  }
}

Result<std::unique_ptr<Reactor>> Reactor::Start(ReactorOptions options) {
  // A half-closed client must surface as a write error, not process death.
  ::signal(SIGPIPE, SIG_IGN);

  std::unique_ptr<Reactor> reactor(new Reactor());
  reactor->options_ = std::move(options);

  reactor->listen_fd_ =
      ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (reactor->listen_fd_ < 0) return Errno("socket");
  const int one = 1;
  ::setsockopt(reactor->listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one,
               sizeof(one));

  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(reactor->options_.port));
  if (::bind(reactor->listen_fd_, reinterpret_cast<sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    return Errno("bind");
  }
  if (::listen(reactor->listen_fd_, reactor->options_.backlog) != 0) {
    return Errno("listen");
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(reactor->listen_fd_, reinterpret_cast<sockaddr*>(&addr),
                    &len) != 0) {
    return Errno("getsockname");
  }
  reactor->port_ = ntohs(addr.sin_port);

  reactor->epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  if (reactor->epoll_fd_ < 0) return Errno("epoll_create1");
  reactor->wake_fd_ = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  if (reactor->wake_fd_ < 0) return Errno("eventfd");

  epoll_event ev;
  std::memset(&ev, 0, sizeof(ev));
  ev.events = EPOLLIN;
  ev.data.fd = reactor->listen_fd_;
  if (::epoll_ctl(reactor->epoll_fd_, EPOLL_CTL_ADD, reactor->listen_fd_,
                  &ev) != 0) {
    return Errno("epoll_ctl(listen)");
  }
  ev.data.fd = reactor->wake_fd_;
  if (::epoll_ctl(reactor->epoll_fd_, EPOLL_CTL_ADD, reactor->wake_fd_, &ev) !=
      0) {
    return Errno("epoll_ctl(wake)");
  }

  // Maintenance tick: explicit period, or a quarter of the read-idle
  // window (a reap can then be at most 25% late), or none at all.
  double tick_ms = reactor->options_.tick_interval_ms;
  if (tick_ms <= 0.0 && reactor->options_.read_idle_ms > 0.0) {
    tick_ms = std::max(10.0, reactor->options_.read_idle_ms / 4.0);
  }
  if (tick_ms <= 0.0 && reactor->options_.on_tick) tick_ms = 250.0;
  if (tick_ms > 0.0) {
    reactor->timer_fd_ =
        ::timerfd_create(CLOCK_MONOTONIC, TFD_NONBLOCK | TFD_CLOEXEC);
    if (reactor->timer_fd_ < 0) return Errno("timerfd_create");
    itimerspec spec;
    std::memset(&spec, 0, sizeof(spec));
    const long ns = static_cast<long>(tick_ms * 1e6);
    spec.it_interval.tv_sec = ns / 1000000000L;
    spec.it_interval.tv_nsec = ns % 1000000000L;
    spec.it_value = spec.it_interval;
    if (::timerfd_settime(reactor->timer_fd_, 0, &spec, nullptr) != 0) {
      return Errno("timerfd_settime");
    }
    ev.data.fd = reactor->timer_fd_;
    if (::epoll_ctl(reactor->epoll_fd_, EPOLL_CTL_ADD, reactor->timer_fd_,
                    &ev) != 0) {
      return Errno("epoll_ctl(timer)");
    }
  }

  reactor->reactor_thread_ = std::thread(&Reactor::Loop, reactor.get());
  return reactor;
}

Reactor::~Reactor() { Shutdown(); }

void Reactor::Shutdown() {
  if (shut_down_) return;
  shut_down_ = true;
  stopping_.store(true);
  NotifyDirty(-1);
  if (reactor_thread_.joinable()) reactor_thread_.join();

  // The reactor thread is gone, so no new drain tasks can start; wait for
  // the in-flight ones (they only touch connection queues and the eventfd,
  // both still valid here).
  {
    std::unique_lock<std::mutex> lock(in_flight_mu_);
    in_flight_cv_.wait(lock, [this] { return in_flight_ == 0; });
  }

  for (auto& [fd, conn] : conns_) {
    ::shutdown(fd, SHUT_RDWR);
    ::close(fd);
  }
  conns_.clear();
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    active_ = 0;
  }
  if (listen_fd_ >= 0) ::close(listen_fd_);
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
  if (wake_fd_ >= 0) ::close(wake_fd_);
  if (timer_fd_ >= 0) ::close(timer_fd_);
  listen_fd_ = epoll_fd_ = wake_fd_ = timer_fd_ = -1;
}

void Reactor::NotifyDirty(int fd) {
  if (fd >= 0) {
    std::lock_guard<std::mutex> lock(dirty_mu_);
    dirty_.push_back(fd);
  }
  const uint64_t one = 1;
  [[maybe_unused]] ssize_t n = ::write(wake_fd_, &one, sizeof(one));
}

void Reactor::Loop() {
  // Published before any drain task can exist: pool tasks are scheduled
  // only from this thread, so they observe the assignment through the
  // pool queue's lock.
  reactor_tid_ = std::this_thread::get_id();
  constexpr int kMaxEvents = 128;
  epoll_event events[kMaxEvents];
  while (!stopping_.load()) {
    const int ready = ::epoll_wait(epoll_fd_, events, kMaxEvents, -1);
    if (ready < 0) {
      if (errno == EINTR) continue;
      break;
    }
    for (int i = 0; i < ready && !stopping_.load(); ++i) {
      const int fd = events[i].data.fd;
      if (fd == wake_fd_) {
        uint64_t drained;
        while (::read(wake_fd_, &drained, sizeof(drained)) > 0) {
        }
        continue;
      }
      if (fd == timer_fd_) {
        uint64_t expirations;
        while (::read(timer_fd_, &expirations, sizeof(expirations)) > 0) {
        }
        HandleTick();
        continue;
      }
      if (fd == listen_fd_) {
        HandleAccept();
        continue;
      }
      auto it = conns_.find(fd);
      if (it == conns_.end()) continue;
      std::shared_ptr<Connection> conn = it->second;
      if ((events[i].events & (EPOLLERR | EPOLLHUP)) != 0) {
        std::lock_guard<std::mutex> lock(conn->mu);
        conn->closing = true;
      }
      if ((events[i].events & EPOLLIN) != 0) HandleReadable(conn);
      if ((events[i].events & EPOLLOUT) != 0) HandleWritable(conn);
      FlushAndMaybeClose(conn);
    }
    // Connections whose drain task queued replies (or flagged a close).
    std::vector<int> dirty;
    {
      std::lock_guard<std::mutex> lock(dirty_mu_);
      dirty.swap(dirty_);
    }
    for (const int fd : dirty) {
      auto it = conns_.find(fd);
      if (it != conns_.end()) FlushAndMaybeClose(it->second);
    }
  }
}

void Reactor::HandleAccept() {
  while (true) {
    const int fd =
        ::accept4(listen_fd_, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // EAGAIN or a transient error: back to epoll.
    }

    // Injected accept failure: the connection is dropped before any frame
    // is read — to the client it looks like a refused/reset connection.
    FaultRegistry& registry = FaultRegistry::Global();
    if (registry.enabled() && !registry.OnPoint("server.accept").ok()) {
      ::close(fd);
      continue;
    }
    if (options_.max_connections > 0 &&
        static_cast<int>(conns_.size()) >= options_.max_connections) {
      // Count before close(): a peer that just observed EOF may already
      // be reading stats().
      {
        std::lock_guard<std::mutex> lock(stats_mu_);
        ++stats_.refused;
      }
      ::close(fd);
      continue;
    }

    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

    auto conn = std::make_shared<Connection>(fd, options_.max_line_bytes);
    conn->last_line_at = FaultRegistry::Global().Now();
    conn->armed_events = EPOLLIN;
    epoll_event ev;
    std::memset(&ev, 0, sizeof(ev));
    ev.events = EPOLLIN;
    ev.data.fd = fd;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
      ::close(fd);
      continue;
    }
    conns_.emplace(fd, std::move(conn));
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.accepted;
    ++active_;
  }
}

void Reactor::HandleTick() {
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.ticks;
  }
  if (options_.read_idle_ms > 0.0) {
    const auto now = FaultRegistry::Global().Now();
    std::vector<std::shared_ptr<Connection>> reap;
    for (auto& [fd, conn] : conns_) {
      const double idle_ms =
          std::chrono::duration<double, std::milli>(now - conn->last_line_at)
              .count();
      if (idle_ms <= options_.read_idle_ms) continue;
      std::lock_guard<std::mutex> lock(conn->mu);
      // A connection with framed, in-flight, or unflushed work is slow to
      // *read or compute*, not a loris; the write cap polices those.
      if (conn->dispatching || !conn->lines.empty() ||
          conn->out_offset < conn->out.size()) {
        continue;
      }
      conn->closing = true;
      conn->drop_reason = DropReason::kIdleReap;
      reap.push_back(conn);
    }
    for (const auto& conn : reap) CloseConnection(conn);
  }
  if (options_.on_tick) options_.on_tick();
}

void Reactor::HandleReadable(const std::shared_ptr<Connection>& conn) {
  char chunk[4096];
  bool got_lines = false;
  while (true) {
    {
      std::lock_guard<std::mutex> lock(conn->mu);
      if (conn->read_done || conn->closing) break;
    }
    FaultRegistry& registry = FaultRegistry::Global();
    if (registry.enabled() && !registry.OnPoint("server.read").ok()) {
      std::lock_guard<std::mutex> lock(conn->mu);
      conn->read_done = true;
      break;
    }
    const ssize_t n = ::recv(conn->fd, chunk, sizeof(chunk), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      std::lock_guard<std::mutex> lock(conn->mu);
      conn->closing = true;
      break;
    }
    if (n == 0) {
      // EOF: serve what was already framed, flush, then close.
      std::lock_guard<std::mutex> lock(conn->mu);
      conn->read_done = true;
      break;
    }
    if (!conn->in.Append(chunk, static_cast<size_t>(n))) {
      std::lock_guard<std::mutex> lock(conn->mu);
      conn->closing = true;
      break;
    }
    if (std::optional<std::string> line = conn->in.NextLine()) {
      const auto now = FaultRegistry::Global().Now();
      conn->last_line_at = now;
      do {
        std::lock_guard<std::mutex> lock(conn->mu);
        conn->lines.push_back(PendingLine{std::move(*line), now});
        got_lines = true;
      } while ((line = conn->in.NextLine()));
    }
    // A short read means the socket buffer is (almost certainly) drained;
    // skip the recv that would just return EAGAIN. Level-triggered epoll
    // re-reports the fd if more bytes raced in.
    if (static_cast<size_t>(n) < sizeof(chunk)) break;
  }
  if (got_lines) {
    bool run_inline = false;
    {
      std::lock_guard<std::mutex> lock(conn->mu);
      run_inline = ScheduleDrainLocked(conn);
    }
    if (run_inline) DrainLines(conn);
  }
}

bool Reactor::ScheduleDrainLocked(const std::shared_ptr<Connection>& conn) {
  if (conn->dispatching || conn->lines.empty() || conn->closing ||
      stopping_.load()) {
    return false;
  }
  conn->dispatching = true;
  {
    std::lock_guard<std::mutex> lock(in_flight_mu_);
    ++in_flight_;
  }
  if (options_.pool != nullptr && options_.pool->num_threads() > 1) {
    std::shared_ptr<Connection> shared = conn;
    options_.pool->Submit([this, shared] { DrainLines(shared); });
    return false;
  }
  return true;
}

void Reactor::DrainLines(std::shared_ptr<Connection> conn) {
  while (true) {
    PendingLine line;
    {
      std::lock_guard<std::mutex> lock(conn->mu);
      if (conn->lines.empty() || conn->closing) {
        conn->dispatching = false;
        break;
      }
      line = std::move(conn->lines.front());
      conn->lines.pop_front();
    }
    // The step itself runs without the connection lock: replies for other
    // connections must not stall behind this session's strategy.
    std::vector<std::string> replies =
        options_.handler(line.text, line.enqueued);
    std::lock_guard<std::mutex> lock(conn->mu);
    FaultRegistry& registry = FaultRegistry::Global();
    for (const std::string& reply : replies) {
      // Injected write failure: a per-connection error. The session and
      // its journal are untouched; the client reconnects and resyncs with
      // op=next.
      if (registry.enabled() && !registry.OnPoint("server.write").ok()) {
        conn->closing = true;
        break;
      }
      conn->out.append(reply);
      conn->out.push_back('\n');
    }
    // Slow-reader cap: a client that stops reading must not grow `out`
    // without bound. Hard drop — half a reply stream is useless anyway;
    // the journal survives and a reconnect resumes the session.
    if (options_.max_pending_out_bytes > 0 && !conn->closing &&
        conn->out.size() - conn->out_offset > options_.max_pending_out_bytes) {
      conn->closing = true;
      conn->drop_reason = DropReason::kSlowReader;
    }
  }
  // Inline drains (single-threaded pool) run inside the reactor loop,
  // which flushes this connection right after — the eventfd wake would be
  // a wasted syscall and a spurious epoll wakeup.
  if (std::this_thread::get_id() != reactor_tid_) NotifyDirty(conn->fd);
  {
    std::lock_guard<std::mutex> lock(in_flight_mu_);
    --in_flight_;
  }
  in_flight_cv_.notify_all();
}

void Reactor::HandleWritable(const std::shared_ptr<Connection>& conn) {
  // Level-triggered EPOLLOUT is disarmed by FlushAndMaybeClose once the
  // buffer empties; nothing extra to do here.
  FlushAndMaybeClose(conn);
}

void Reactor::FlushAndMaybeClose(const std::shared_ptr<Connection>& conn) {
  bool close_now = false;
  {
    std::lock_guard<std::mutex> lock(conn->mu);
    while (conn->out_offset < conn->out.size()) {
      const ssize_t n =
          ::send(conn->fd, conn->out.data() + conn->out_offset,
                 conn->out.size() - conn->out_offset, MSG_NOSIGNAL);
      if (n < 0) {
        if (errno == EINTR) continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK) break;
        conn->closing = true;
        break;
      }
      conn->out_offset += static_cast<size_t>(n);
    }
    if (conn->out_offset >= conn->out.size()) {
      conn->out.clear();
      conn->out_offset = 0;
    } else if (options_.max_pending_out_bytes > 0 &&
               conn->out.size() - conn->out_offset >
                   options_.max_pending_out_bytes) {
      // The kernel refused everything and the backlog is over the cap:
      // the peer has stopped reading.
      conn->closing = true;
      conn->drop_reason = DropReason::kSlowReader;
    }
    const bool pending = !conn->out.empty();
    // A finished connection closes once everything it was owed is flushed
    // and no step is still producing replies for it.
    close_now = conn->closing ||
                (conn->read_done && !pending && !conn->dispatching &&
                 conn->lines.empty());
    if (!close_now) {
      // Re-arm interest: reads until EOF, writes only while the buffer is
      // nonempty (level-triggered EPOLLOUT would otherwise spin).
      const uint32_t desired =
          (conn->read_done ? 0u : EPOLLIN) | (pending ? EPOLLOUT : 0u);
      if (desired != conn->armed_events) {
        epoll_event ev;
        std::memset(&ev, 0, sizeof(ev));
        ev.events = desired;
        ev.data.fd = conn->fd;
        if (::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn->fd, &ev) == 0) {
          conn->armed_events = desired;
        }
      }
    }
  }
  if (close_now) CloseConnection(conn);
}

void Reactor::CloseConnection(const std::shared_ptr<Connection>& conn) {
  if (conns_.erase(conn->fd) == 0) return;  // already closed
  // Stats update first: once close() lands, the peer can observe EOF and
  // immediately read stats(), which must already reflect the drop.
  bool clean;
  DropReason reason;
  {
    std::lock_guard<std::mutex> conn_lock(conn->mu);
    clean = !conn->closing;
    reason = conn->drop_reason;
  }
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    --active_;
    if (!clean) {
      ++stats_.dropped;
      if (reason == DropReason::kSlowReader) ++stats_.dropped_slow_reader;
      if (reason == DropReason::kIdleReap) ++stats_.reaped_idle;
    }
  }
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, conn->fd, nullptr);
  ::shutdown(conn->fd, SHUT_RDWR);
  ::close(conn->fd);
}

int Reactor::active_connections() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  return active_;
}

ReactorStats Reactor::stats() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  return stats_;
}

}  // namespace uguide
