#include "server/protocol.h"

#include <cerrno>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <sstream>
#include <utility>

namespace uguide {

namespace {

constexpr size_t kMaxFrameBytes = 1 << 20;  // 1 MiB: no legitimate frame
                                            // comes close; bounds hostile
                                            // allocations during parse.

Status Malformed(const std::string& what) {
  return Status::InvalidArgument("protocol: " + what);
}

}  // namespace

/// Recursive-descent JSON parser over a cursor. Depth-limited; every
/// failure is a Status.
class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  Result<JsonValue> Parse() {
    UGUIDE_ASSIGN_OR_RETURN(JsonValue value, ParseValue(0));
    SkipSpace();
    if (pos_ != text_.size()) return Malformed("trailing bytes after value");
    return value;
  }

 private:
  void SkipSpace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\r' ||
            text_[pos_] == '\n')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeWord(std::string_view word) {
    if (text_.substr(pos_, word.size()) == word) {
      pos_ += word.size();
      return true;
    }
    return false;
  }

  Result<JsonValue> ParseValue(int depth) {
    if (depth > JsonValue::kMaxDepth) return Malformed("nesting too deep");
    SkipSpace();
    if (pos_ >= text_.size()) return Malformed("unexpected end of input");
    const char c = text_[pos_];
    if (c == '{') return ParseObject(depth);
    if (c == '[') return ParseArray(depth);
    if (c == '"') return ParseString();
    if (ConsumeWord("null")) return JsonValue();
    if (ConsumeWord("true")) return MakeBool(true);
    if (ConsumeWord("false")) return MakeBool(false);
    return ParseNumber();
  }

  static JsonValue MakeBool(bool value) {
    JsonValue v;
    v.kind_ = JsonValue::Kind::kBool;
    v.bool_ = value;
    return v;
  }

  Result<JsonValue> ParseObject(int depth) {
    ++pos_;  // '{'
    JsonValue v;
    v.kind_ = JsonValue::Kind::kObject;
    SkipSpace();
    if (Consume('}')) return v;
    while (true) {
      SkipSpace();
      UGUIDE_ASSIGN_OR_RETURN(JsonValue key, ParseString());
      SkipSpace();
      if (!Consume(':')) return Malformed("expected ':' in object");
      UGUIDE_ASSIGN_OR_RETURN(JsonValue value, ParseValue(depth + 1));
      v.object_.emplace_back(std::move(key.string_), std::move(value));
      SkipSpace();
      if (Consume(',')) continue;
      if (Consume('}')) return v;
      return Malformed("expected ',' or '}' in object");
    }
  }

  Result<JsonValue> ParseArray(int depth) {
    ++pos_;  // '['
    JsonValue v;
    v.kind_ = JsonValue::Kind::kArray;
    SkipSpace();
    if (Consume(']')) return v;
    while (true) {
      UGUIDE_ASSIGN_OR_RETURN(JsonValue item, ParseValue(depth + 1));
      v.array_.push_back(std::move(item));
      SkipSpace();
      if (Consume(',')) continue;
      if (Consume(']')) return v;
      return Malformed("expected ',' or ']' in array");
    }
  }

  Result<JsonValue> ParseString() {
    if (!Consume('"')) return Malformed("expected string");
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) return Malformed("unterminated string");
      const unsigned char c = static_cast<unsigned char>(text_[pos_++]);
      if (c == '"') break;
      if (c < 0x20) return Malformed("raw control character in string");
      if (c != '\\') {
        out.push_back(static_cast<char>(c));
        continue;
      }
      if (pos_ >= text_.size()) return Malformed("unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          UGUIDE_ASSIGN_OR_RETURN(uint32_t code, ParseHex4());
          // Surrogate pairs: a high surrogate must be followed by \uDC00..
          if (code >= 0xD800 && code <= 0xDBFF) {
            if (!ConsumeWord("\\u")) return Malformed("lone high surrogate");
            UGUIDE_ASSIGN_OR_RETURN(uint32_t low, ParseHex4());
            if (low < 0xDC00 || low > 0xDFFF) {
              return Malformed("invalid low surrogate");
            }
            code = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
          } else if (code >= 0xDC00 && code <= 0xDFFF) {
            return Malformed("lone low surrogate");
          }
          AppendUtf8(code, &out);
          break;
        }
        default:
          return Malformed("unknown escape");
      }
      if (out.size() > kMaxFrameBytes) return Malformed("string too long");
    }
    JsonValue v;
    v.kind_ = JsonValue::Kind::kString;
    v.string_ = std::move(out);
    return v;
  }

  Result<uint32_t> ParseHex4() {
    if (pos_ + 4 > text_.size()) return Malformed("truncated \\u escape");
    uint32_t code = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_++];
      code <<= 4;
      if (c >= '0' && c <= '9') {
        code |= static_cast<uint32_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        code |= static_cast<uint32_t>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        code |= static_cast<uint32_t>(c - 'A' + 10);
      } else {
        return Malformed("bad \\u escape digit");
      }
    }
    return code;
  }

  static void AppendUtf8(uint32_t code, std::string* out) {
    if (code < 0x80) {
      out->push_back(static_cast<char>(code));
    } else if (code < 0x800) {
      out->push_back(static_cast<char>(0xC0 | (code >> 6)));
      out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else if (code < 0x10000) {
      out->push_back(static_cast<char>(0xE0 | (code >> 12)));
      out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else {
      out->push_back(static_cast<char>(0xF0 | (code >> 18)));
      out->push_back(static_cast<char>(0x80 | ((code >> 12) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
    }
  }

  Result<JsonValue> ParseNumber() {
    const size_t start = pos_;
    if (Consume('-')) {
    }
    while (pos_ < text_.size() &&
           ((text_[pos_] >= '0' && text_[pos_] <= '9') || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E' || text_[pos_] == '+' ||
            text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return Malformed("expected a value");
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    errno = 0;
    const double value = std::strtod(token.c_str(), &end);
    if (errno == ERANGE || end != token.c_str() + token.size()) {
      return Malformed("bad number");
    }
    JsonValue v;
    v.kind_ = JsonValue::Kind::kNumber;
    v.number_ = value;
    return v;
  }

  std::string_view text_;
  size_t pos_ = 0;
};

namespace {

Result<Answer> ParseAnswerToken(std::string_view token) {
  if (token == "yes") return Answer::kYes;
  if (token == "no") return Answer::kNo;
  if (token == "idk") return Answer::kIdk;
  return Malformed("bad answer token");
}

const char* KindToken(QuestionKind kind) {
  switch (kind) {
    case QuestionKind::kCell:
      return "cell";
    case QuestionKind::kTuple:
      return "tuple";
    case QuestionKind::kFd:
      return "fd";
  }
  return "?";
}

Result<QuestionKind> ParseKindToken(std::string_view token) {
  if (token == "cell") return QuestionKind::kCell;
  if (token == "tuple") return QuestionKind::kTuple;
  if (token == "fd") return QuestionKind::kFd;
  return Malformed("bad question kind");
}

}  // namespace

Result<JsonValue> JsonValue::Parse(std::string_view text) {
  if (text.size() > kMaxFrameBytes) return Malformed("frame too large");
  return JsonParser(text).Parse();
}

const JsonValue* JsonValue::Get(std::string_view key) const {
  if (kind_ != Kind::kObject) return nullptr;
  for (const auto& [name, value] : object_) {
    if (name == key) return &value;
  }
  return nullptr;
}

Result<int> JsonValue::GetInt(std::string_view key, int fallback) const {
  const JsonValue* v = Get(key);
  if (v == nullptr) return fallback;
  if (!v->is_number()) return Malformed(std::string(key) + " must be a number");
  const double d = v->number_value();
  if (d < static_cast<double>(std::numeric_limits<int>::min()) ||
      d > static_cast<double>(std::numeric_limits<int>::max()) ||
      d != static_cast<double>(static_cast<int64_t>(d))) {
    return Malformed(std::string(key) + " out of integer range");
  }
  return static_cast<int>(d);
}

Result<bool> JsonValue::GetBool(std::string_view key, bool fallback) const {
  const JsonValue* v = Get(key);
  if (v == nullptr) return fallback;
  if (!v->is_bool()) return Malformed(std::string(key) + " must be a bool");
  return v->bool_value();
}

Result<std::string> JsonValue::GetString(std::string_view key,
                                         bool required) const {
  const JsonValue* v = Get(key);
  if (v == nullptr) {
    if (required) return Malformed("missing field: " + std::string(key));
    return std::string();
  }
  if (!v->is_string()) return Malformed(std::string(key) + " must be a string");
  return v->string_value();
}

std::string JsonQuote(std::string_view text) {
  std::string out;
  out.reserve(text.size() + 2);
  out.push_back('"');
  for (const char raw : text) {
    const unsigned char c = static_cast<unsigned char>(raw);
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20 || c >= 0x7F) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(raw);
        }
    }
  }
  out.push_back('"');
  return out;
}

std::string HexFloat(double value) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%a", value);
  return buf;
}

Result<double> ParseHexFloat(std::string_view token) {
  if (token.empty() || token.size() > 64) return Malformed("bad float token");
  const std::string owned(token);
  char* end = nullptr;
  errno = 0;
  const double value = std::strtod(owned.c_str(), &end);
  if (errno != 0 || end != owned.c_str() + owned.size()) {
    return Malformed("bad float token");
  }
  return value;
}

Result<ClientFrame> ParseClientFrame(std::string_view line) {
  UGUIDE_ASSIGN_OR_RETURN(JsonValue root, JsonValue::Parse(line));
  if (!root.is_object()) return Malformed("frame must be an object");
  UGUIDE_ASSIGN_OR_RETURN(std::string op, root.GetString("op", true));

  ClientFrame frame;
  UGUIDE_ASSIGN_OR_RETURN(frame.id, root.GetString("id", false));
  if (op == "ping") {
    frame.op = ClientOp::kPing;
    return frame;
  }
  if (op == "health") {
    frame.op = ClientOp::kHealth;
    return frame;
  }
  if (frame.id.empty()) return Malformed("missing field: id");
  if (frame.id.size() > 128) return Malformed("id too long");

  if (op == "open") {
    frame.op = ClientOp::kOpen;
    UGUIDE_ASSIGN_OR_RETURN(frame.strategy, root.GetString("strategy", true));
    const JsonValue* budget = root.Get("budget");
    if (budget != nullptr) {
      if (budget->is_number()) {
        frame.budget = budget->number_value();
      } else if (budget->is_string()) {
        UGUIDE_ASSIGN_OR_RETURN(frame.budget,
                                ParseHexFloat(budget->string_value()));
      } else {
        return Malformed("budget must be a number or hexfloat string");
      }
      frame.has_budget = true;
    }
    UGUIDE_ASSIGN_OR_RETURN(frame.resume, root.GetBool("resume", false));
    return frame;
  }
  if (op == "next") {
    frame.op = ClientOp::kNext;
    return frame;
  }
  if (op == "answer") {
    frame.op = ClientOp::kAnswer;
    UGUIDE_ASSIGN_OR_RETURN(frame.seq, root.GetInt("seq", -1));
    if (frame.seq < 0) return Malformed("missing field: seq");
    UGUIDE_ASSIGN_OR_RETURN(std::string answer,
                            root.GetString("answer", true));
    UGUIDE_ASSIGN_OR_RETURN(frame.answer, ParseAnswerToken(answer));
    const JsonValue* retry = root.Get("retry_cost");
    if (retry != nullptr) {
      if (!retry->is_string()) {
        return Malformed("retry_cost must be a hexfloat string");
      }
      UGUIDE_ASSIGN_OR_RETURN(frame.retry_cost,
                              ParseHexFloat(retry->string_value()));
    }
    UGUIDE_ASSIGN_OR_RETURN(frame.exhausted, root.GetBool("exhausted", false));
    return frame;
  }
  if (op == "close") {
    frame.op = ClientOp::kClose;
    return frame;
  }
  if (op == "mutate") {
    frame.op = ClientOp::kMutate;
    const JsonValue* ops = root.Get("ops");
    if (ops == nullptr || ops->kind() != JsonValue::Kind::kArray) {
      return Malformed("missing field: ops");
    }
    const std::vector<JsonValue>& items = ops->array_items();
    if (items.empty()) return Malformed("ops must be non-empty");
    if (items.size() > 1024) return Malformed("too many ops");
    for (const JsonValue& item : items) {
      if (!item.is_object()) return Malformed("op must be an object");
      UGUIDE_ASSIGN_OR_RETURN(std::string kind, item.GetString("kind", true));
      Mutation m;
      if (kind == "append") {
        m.kind = MutationKind::kAppend;
        const JsonValue* values = item.Get("values");
        if (values == nullptr || values->kind() != JsonValue::Kind::kArray) {
          return Malformed("append needs values");
        }
        for (const JsonValue& v : values->array_items()) {
          if (!v.is_string()) return Malformed("append values must be strings");
          m.values.push_back(v.string_value());
        }
        if (m.values.empty()) return Malformed("append needs values");
      } else if (kind == "update") {
        m.kind = MutationKind::kUpdate;
        UGUIDE_ASSIGN_OR_RETURN(int row, item.GetInt("row", -1));
        UGUIDE_ASSIGN_OR_RETURN(int col, item.GetInt("col", -1));
        if (row < 0 || col < 0) return Malformed("bad update target");
        m.row = row;
        m.col = col;
        UGUIDE_ASSIGN_OR_RETURN(m.value, item.GetString("value", true));
      } else if (kind == "delete") {
        m.kind = MutationKind::kDelete;
        UGUIDE_ASSIGN_OR_RETURN(int row, item.GetInt("row", -1));
        if (row < 0) return Malformed("bad delete target");
        m.row = row;
      } else {
        return Malformed("unknown mutation kind: " + kind);
      }
      frame.mutations.push_back(std::move(m));
    }
    return frame;
  }
  return Malformed("unknown op: " + op);
}

std::string FormatClientFrame(const ClientFrame& frame) {
  std::ostringstream out;
  switch (frame.op) {
    case ClientOp::kPing:
      return "{\"op\":\"ping\"}";
    case ClientOp::kHealth:
      return "{\"op\":\"health\"}";
    case ClientOp::kOpen:
      out << "{\"op\":\"open\",\"id\":" << JsonQuote(frame.id)
          << ",\"strategy\":" << JsonQuote(frame.strategy);
      if (frame.has_budget) {
        out << ",\"budget\":" << JsonQuote(HexFloat(frame.budget));
      }
      if (frame.resume) out << ",\"resume\":true";
      out << "}";
      return out.str();
    case ClientOp::kNext:
      out << "{\"op\":\"next\",\"id\":" << JsonQuote(frame.id) << "}";
      return out.str();
    case ClientOp::kAnswer:
      out << "{\"op\":\"answer\",\"id\":" << JsonQuote(frame.id)
          << ",\"seq\":" << frame.seq
          << ",\"answer\":\"" << AnswerName(frame.answer) << "\"";
      if (frame.retry_cost != 0.0) {
        out << ",\"retry_cost\":" << JsonQuote(HexFloat(frame.retry_cost));
      }
      if (frame.exhausted) out << ",\"exhausted\":true";
      out << "}";
      return out.str();
    case ClientOp::kClose:
      out << "{\"op\":\"close\",\"id\":" << JsonQuote(frame.id) << "}";
      return out.str();
    case ClientOp::kMutate: {
      out << "{\"op\":\"mutate\",\"id\":" << JsonQuote(frame.id)
          << ",\"ops\":[";
      for (size_t i = 0; i < frame.mutations.size(); ++i) {
        const Mutation& m = frame.mutations[i];
        if (i > 0) out << ",";
        switch (m.kind) {
          case MutationKind::kAppend:
            out << "{\"kind\":\"append\",\"values\":[";
            for (size_t j = 0; j < m.values.size(); ++j) {
              if (j > 0) out << ",";
              out << JsonQuote(m.values[j]);
            }
            out << "]}";
            break;
          case MutationKind::kUpdate:
            out << "{\"kind\":\"update\",\"row\":" << m.row
                << ",\"col\":" << m.col
                << ",\"value\":" << JsonQuote(m.value) << "}";
            break;
          case MutationKind::kDelete:
            out << "{\"kind\":\"delete\",\"row\":" << m.row << "}";
            break;
        }
      }
      out << "]}";
      return out.str();
    }
  }
  return "{}";
}

std::string FormatQuestionFrame(const std::string& id,
                                const SessionQuestion& question) {
  std::ostringstream out;
  out << "{\"type\":\"question\",\"id\":" << JsonQuote(id)
      << ",\"seq\":" << question.index << ",\"kind\":\""
      << KindToken(question.kind) << "\"";
  switch (question.kind) {
    case QuestionKind::kCell:
      out << ",\"row\":" << question.cell.row
          << ",\"col\":" << question.cell.col;
      break;
    case QuestionKind::kTuple:
      out << ",\"row\":" << question.row;
      break;
    case QuestionKind::kFd: {
      char mask[24];
      std::snprintf(mask, sizeof(mask), "%" PRIx64, question.fd.lhs.mask());
      out << ",\"lhs\":\"" << mask << "\",\"rhs\":" << question.fd.rhs;
      break;
    }
  }
  out << ",\"cost\":" << JsonQuote(HexFloat(question.nominal_cost));
  if (question.replayed) out << ",\"replayed\":true";
  out << "}";
  return out.str();
}

std::string FormatReportFrame(const std::string& id,
                              const SessionReport& report) {
  return "{\"type\":\"report\",\"id\":" + JsonQuote(id) +
         ",\"report\":" + JsonQuote(SerializeSessionReport(report)) + "}";
}

const char* DefaultErrorCode(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "ok";
    case StatusCode::kInvalidArgument:
    case StatusCode::kOutOfRange:
      return "bad_request";
    case StatusCode::kNotFound:
      return "not_found";
    case StatusCode::kAlreadyExists:
      return "already_exists";
    case StatusCode::kIoError:
      return "io_error";
    case StatusCode::kFailedPrecondition:
      return "failed_precondition";
    case StatusCode::kInternal:
      return "internal";
    case StatusCode::kNotImplemented:
      return "not_implemented";
    case StatusCode::kResourceExhausted:
      return error_code::kOverloaded;
    case StatusCode::kUnavailable:
      return "unavailable";
    case StatusCode::kDataLoss:
      return error_code::kJournalCorrupt;
  }
  return "error";
}

std::string FormatErrorFrame(const std::string& id, const Status& status,
                             const std::string& code, int retry_after_ms) {
  std::ostringstream out;
  out << "{\"type\":\"error\",";
  if (!id.empty()) out << "\"id\":" << JsonQuote(id) << ",";
  out << "\"code\":" << JsonQuote(code)
      << ",\"status\":" << static_cast<int>(status.code());
  if (retry_after_ms >= 0) out << ",\"retry_after_ms\":" << retry_after_ms;
  out << ",\"message\":" << JsonQuote(status.message()) << "}";
  return out.str();
}

std::string FormatErrorFrame(const std::string& id, const Status& status) {
  return FormatErrorFrame(id, status, DefaultErrorCode(status.code()),
                          /*retry_after_ms=*/-1);
}

std::string FormatClosedFrame(const std::string& id) {
  return "{\"type\":\"closed\",\"id\":" + JsonQuote(id) + "}";
}

std::string FormatPongFrame() { return "{\"type\":\"pong\"}"; }

std::string FormatMutatedFrame(const std::string& id, DataVersion version,
                               int applied, int refused) {
  std::ostringstream out;
  out << "{\"type\":\"mutated\",\"id\":" << JsonQuote(id)
      << ",\"version\":" << version << ",\"applied\":" << applied
      << ",\"refused\":" << refused << "}";
  return out.str();
}

std::string FormatHealthFrame(const HealthInfo& health) {
  std::ostringstream out;
  out << "{\"type\":\"health\",\"brownout\":" << health.brownout
      << ",\"active_sessions\":" << health.active_sessions
      << ",\"active_connections\":" << health.active_connections
      << ",\"opened\":" << health.opened << ",\"finished\":" << health.finished
      << ",\"evicted\":" << health.evicted << ",\"refused\":" << health.refused
      << ",\"rate_limited\":" << health.rate_limited
      << ",\"deadline_shed\":" << health.deadline_shed
      << ",\"brownout_refused\":" << health.brownout_refused
      << ",\"brownout_shed\":" << health.brownout_shed
      << ",\"accepted\":" << health.accepted
      << ",\"dropped\":" << health.dropped
      << ",\"dropped_slow_reader\":" << health.dropped_slow_reader
      << ",\"reaped_idle\":" << health.reaped_idle
      << ",\"journals_resumable\":" << health.journals_resumable
      << ",\"journals_finished\":" << health.journals_finished
      << ",\"journals_quarantined\":" << health.journals_quarantined
      << ",\"journals_gced\":" << health.journals_gced
      << ",\"storage_failed\":" << health.storage_failed << "}";
  return out.str();
}

Result<ServerFrame> ParseServerFrame(std::string_view line) {
  UGUIDE_ASSIGN_OR_RETURN(JsonValue root, JsonValue::Parse(line));
  if (!root.is_object()) return Malformed("frame must be an object");
  UGUIDE_ASSIGN_OR_RETURN(std::string type, root.GetString("type", true));

  ServerFrame frame;
  UGUIDE_ASSIGN_OR_RETURN(frame.id, root.GetString("id", false));
  if (type == "pong") {
    frame.type = ServerFrameType::kPong;
    return frame;
  }
  if (type == "closed") {
    frame.type = ServerFrameType::kClosed;
    return frame;
  }
  if (type == "error") {
    frame.type = ServerFrameType::kError;
    // `code` is the machine-readable slug; numbers are accepted too (the
    // pre-slug wire form carried the numeric status there).
    const JsonValue* code = root.Get("code");
    if (code != nullptr) {
      if (code->is_string()) {
        frame.error_code = code->string_value();
      } else if (code->is_number()) {
        UGUIDE_ASSIGN_OR_RETURN(frame.code, root.GetInt("code", 0));
      } else {
        return Malformed("code must be a string or number");
      }
    }
    UGUIDE_ASSIGN_OR_RETURN(frame.code, root.GetInt("status", frame.code));
    UGUIDE_ASSIGN_OR_RETURN(frame.retry_after_ms,
                            root.GetInt("retry_after_ms", -1));
    UGUIDE_ASSIGN_OR_RETURN(frame.message, root.GetString("message", false));
    return frame;
  }
  if (type == "health") {
    frame.type = ServerFrameType::kHealth;
    HealthInfo& h = frame.health;
    UGUIDE_ASSIGN_OR_RETURN(h.brownout, root.GetInt("brownout", 0));
    UGUIDE_ASSIGN_OR_RETURN(h.active_sessions,
                            root.GetInt("active_sessions", 0));
    UGUIDE_ASSIGN_OR_RETURN(h.active_connections,
                            root.GetInt("active_connections", 0));
    const std::pair<std::string_view, int64_t*> counters[] = {
        {"opened", &h.opened},
        {"finished", &h.finished},
        {"evicted", &h.evicted},
        {"refused", &h.refused},
        {"rate_limited", &h.rate_limited},
        {"deadline_shed", &h.deadline_shed},
        {"brownout_refused", &h.brownout_refused},
        {"brownout_shed", &h.brownout_shed},
        {"accepted", &h.accepted},
        {"dropped", &h.dropped},
        {"dropped_slow_reader", &h.dropped_slow_reader},
        {"reaped_idle", &h.reaped_idle},
        {"journals_resumable", &h.journals_resumable},
        {"journals_finished", &h.journals_finished},
        {"journals_quarantined", &h.journals_quarantined},
        {"journals_gced", &h.journals_gced},
        {"storage_failed", &h.storage_failed}};
    for (const auto& [key, target] : counters) {
      UGUIDE_ASSIGN_OR_RETURN(const int value, root.GetInt(key, 0));
      *target = value;
    }
    return frame;
  }
  if (type == "report") {
    frame.type = ServerFrameType::kReport;
    UGUIDE_ASSIGN_OR_RETURN(frame.report, root.GetString("report", true));
    return frame;
  }
  if (type == "mutated") {
    frame.type = ServerFrameType::kMutated;
    UGUIDE_ASSIGN_OR_RETURN(const int version, root.GetInt("version", 0));
    if (version < 0) return Malformed("bad version");
    frame.version = static_cast<DataVersion>(version);
    UGUIDE_ASSIGN_OR_RETURN(frame.applied, root.GetInt("applied", 0));
    UGUIDE_ASSIGN_OR_RETURN(frame.refused, root.GetInt("refused", 0));
    return frame;
  }
  if (type == "question") {
    frame.type = ServerFrameType::kQuestion;
    UGUIDE_ASSIGN_OR_RETURN(frame.question.index, root.GetInt("seq", -1));
    if (frame.question.index < 0) return Malformed("missing field: seq");
    UGUIDE_ASSIGN_OR_RETURN(std::string kind, root.GetString("kind", true));
    UGUIDE_ASSIGN_OR_RETURN(frame.question.kind, ParseKindToken(kind));
    switch (frame.question.kind) {
      case QuestionKind::kCell: {
        UGUIDE_ASSIGN_OR_RETURN(int row, root.GetInt("row", -1));
        UGUIDE_ASSIGN_OR_RETURN(int col, root.GetInt("col", -1));
        if (row < 0 || col < 0) return Malformed("bad cell question");
        frame.question.cell = Cell{row, col};
        break;
      }
      case QuestionKind::kTuple: {
        UGUIDE_ASSIGN_OR_RETURN(int row, root.GetInt("row", -1));
        if (row < 0) return Malformed("bad tuple question");
        frame.question.row = row;
        break;
      }
      case QuestionKind::kFd: {
        UGUIDE_ASSIGN_OR_RETURN(std::string lhs, root.GetString("lhs", true));
        if (lhs.empty() || lhs.size() > 16) return Malformed("bad lhs mask");
        char* end = nullptr;
        errno = 0;
        const uint64_t mask = std::strtoull(lhs.c_str(), &end, 16);
        if (errno != 0 || end != lhs.c_str() + lhs.size()) {
          return Malformed("bad lhs mask");
        }
        UGUIDE_ASSIGN_OR_RETURN(int rhs, root.GetInt("rhs", -1));
        if (rhs < 0 || rhs >= 64) return Malformed("bad rhs attribute");
        frame.question.fd = Fd(AttributeSet(mask), rhs);
        break;
      }
    }
    UGUIDE_ASSIGN_OR_RETURN(std::string cost, root.GetString("cost", true));
    UGUIDE_ASSIGN_OR_RETURN(frame.question.nominal_cost, ParseHexFloat(cost));
    UGUIDE_ASSIGN_OR_RETURN(frame.question.replayed,
                            root.GetBool("replayed", false));
    return frame;
  }
  return Malformed("unknown frame type: " + type);
}

std::string SerializeSessionReport(const SessionReport& report) {
  std::ostringstream out;
  out << "strategy=" << report.strategy_name << "\n";
  out << "cost_spent=" << HexFloat(report.result.cost_spent) << "\n";
  out << "questions_asked=" << report.result.questions_asked << "\n";
  out << "retry_cost=" << HexFloat(report.retry_cost) << "\n";
  out << "questions_exhausted=" << report.questions_exhausted << "\n";
  out << "questions_replayed=" << report.questions_replayed << "\n";
  out << "data_version=" << report.data_version << "\n";
  out << "accepted_fds=";
  for (size_t i = 0; i < report.result.accepted_fds.Size(); ++i) {
    const Fd& fd = report.result.accepted_fds[i];
    char mask[24];
    std::snprintf(mask, sizeof(mask), "%" PRIx64, fd.lhs.mask());
    if (i > 0) out << ",";
    out << mask << ">" << fd.rhs;
  }
  out << "\n";
  const DetectionMetrics& m = report.metrics;
  out << "metrics=" << m.detections << " " << m.true_positives << " "
      << m.false_positives << " " << m.false_negatives << " "
      << m.total_true_errors << " " << m.injected_detected << " "
      << m.total_injected << "\n";
  return out.str();
}

}  // namespace uguide
