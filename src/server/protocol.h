#ifndef UGUIDE_SERVER_PROTOCOL_H_
#define UGUIDE_SERVER_PROTOCOL_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "core/session.h"
#include "core/session_state.h"
#include "live/mutation.h"
#include "oracle/expert.h"

namespace uguide {

/// \file
/// \brief The uguided wire protocol: newline-delimited JSON, one frame per
/// line, hand-rolled on both sides (the daemon must stay dependency-free).
///
/// Client frames (`op` discriminates):
///   {"op":"open","id":"s1","strategy":"FDQ-BMC","budget":64.0,
///    "resume":false}
///   {"op":"next","id":"s1"}                       // re-deliver (reconnect)
///   {"op":"answer","id":"s1","seq":3,"answer":"yes",
///    "retry_cost":"0x0p+0","exhausted":false}     // last two optional
///   {"op":"close","id":"s1"}                      // abandon, journal kept
///   {"op":"ping"}
///   {"op":"health"}                               // overload introspection
///   {"op":"mutate","id":"m1","ops":[              // live-data mutations
///    {"kind":"append","values":["v0","v1",...]},
///    {"kind":"update","row":7,"col":2,"value":"x"},
///    {"kind":"delete","row":4}]}
///
/// Server frames (`type` discriminates):
///   {"type":"question","id":"s1","seq":3,"kind":"cell","row":7,"col":2,
///    "cost":"0x1p+0","replayed":false}            // fd adds "lhs"/"rhs"
///   {"type":"report","id":"s1","report":"strategy=...\n..."}
///   {"type":"error","id":"s1","code":"overloaded","status":9,
///    "retry_after_ms":200,"message":"..."}        // retry_after_ms optional
///   {"type":"closed","id":"s1"}
///   {"type":"pong"}
///   {"type":"health","brownout":0,"active_sessions":3,...}
///   {"type":"mutated","id":"m1","version":4,"applied":3,"refused":0}
///
/// Error frames carry two machine-readable fields: `code`, a stable slug a
/// client can branch on ("overloaded", "rate_limited", "quarantined",
/// "bad_frame", ...), and `status`, the numeric StatusCode. Refusals the
/// client should retry additionally carry `retry_after_ms`. The parser
/// also accepts the pre-slug wire form where `code` was the numeric
/// status, so old peers and the checked-in fuzz corpus stay parseable.
///
/// Doubles that must survive the round trip bit-exactly (costs, budgets,
/// report fields) travel as C hexfloat *strings*, the same convention the
/// session journal uses; plain JSON numbers are only used for integers.

/// \brief A parsed JSON value — the minimal subset the protocol needs.
///
/// The parser is the tolerant half of the robustness principle: it accepts
/// any standards-shaped input (arbitrary whitespace, nested containers,
/// \uXXXX escapes) but never crashes, never recurses past kMaxDepth, and
/// rejects trailing garbage. Numbers are kept as doubles plus the raw
/// token, so integer fields can be range-checked exactly and hexfloat
/// strings pass through untouched (they are JSON strings, not numbers).
class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  /// Containers deeper than this fail to parse (stack safety under fuzz).
  static constexpr int kMaxDepth = 32;

  /// Parses exactly one JSON value spanning the whole input.
  static Result<JsonValue> Parse(std::string_view text);

  Kind kind() const { return kind_; }
  bool is_object() const { return kind_ == Kind::kObject; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_bool() const { return kind_ == Kind::kBool; }

  bool bool_value() const { return bool_; }
  double number_value() const { return number_; }
  const std::string& string_value() const { return string_; }
  const std::vector<JsonValue>& array_items() const { return array_; }

  /// Object member lookup; null when absent (or not an object).
  const JsonValue* Get(std::string_view key) const;

  /// The member as an int, range-checked; `fallback` when absent.
  Result<int> GetInt(std::string_view key, int fallback) const;
  /// The member as a bool; `fallback` when absent.
  Result<bool> GetBool(std::string_view key, bool fallback) const;
  /// The member as a string; error when absent unless `required` is false
  /// (then empty).
  Result<std::string> GetString(std::string_view key, bool required) const;

 private:
  friend class JsonParser;

  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> array_;
  std::vector<std::pair<std::string, JsonValue>> object_;
};

/// Serializes `text` as a JSON string literal (quotes included). Control
/// characters and non-ASCII bytes are \u-escaped, so the output line never
/// contains a raw newline.
std::string JsonQuote(std::string_view text);

/// Formats a double as a C hexfloat string (exact round trip).
std::string HexFloat(double value);

/// Parses a hexfloat (or any strtod-accepted) string, whole-token strict.
Result<double> ParseHexFloat(std::string_view token);

/// The client→server operations.
enum class ClientOp { kOpen, kNext, kAnswer, kClose, kPing, kHealth, kMutate };

/// One parsed client frame; fields beyond `op`/`id` are op-specific.
struct ClientFrame {
  ClientOp op = ClientOp::kPing;
  std::string id;
  // open
  std::string strategy;
  double budget = 0.0;
  bool has_budget = false;
  bool resume = false;
  // answer
  int seq = -1;
  Answer answer = Answer::kIdk;
  double retry_cost = 0.0;
  bool exhausted = false;
  // mutate
  std::vector<Mutation> mutations;
};

/// Parses one client line. Any malformed input yields a Status (never a
/// crash) — this is the daemon's attack surface and the fuzz target's
/// entry point.
Result<ClientFrame> ParseClientFrame(std::string_view line);

/// Serializes a client frame (no trailing newline) — the load generator's
/// writer, kept next to the parser so the two cannot drift.
std::string FormatClientFrame(const ClientFrame& frame);

/// The server→client frame types.
enum class ServerFrameType {
  kQuestion,
  kReport,
  kError,
  kClosed,
  kPong,
  kHealth,
  kMutated
};

/// Machine-readable error slugs carried in error frames' `code`. Kept as
/// named constants so the daemon, loadgen, and tests cannot drift.
namespace error_code {
inline constexpr char kOverloaded[] = "overloaded";
inline constexpr char kRateLimited[] = "rate_limited";
inline constexpr char kQuarantined[] = "quarantined";
inline constexpr char kBadFrame[] = "bad_frame";
inline constexpr char kDraining[] = "draining";
/// The session's journal can no longer persist answers (failed write or
/// fsync). The in-memory session is consistent but must not advance; the
/// client should close and re-open elsewhere.
inline constexpr char kStorageFailed[] = "storage_failed";
/// The journal failed its checksum (bit-rot / mid-file corruption) and was
/// quarantined; a resume can never succeed. Terminal, do not retry.
inline constexpr char kJournalCorrupt[] = "journal_corrupt";
/// A resume pinned to a data version the live dataset no longer serves
/// (the epoch ring moved on, or the base content changed). Replaying the
/// journaled answers onto different data would be silently wrong, so the
/// refusal is terminal — open a fresh session instead.
inline constexpr char kVersionMismatch[] = "version_mismatch";
}  // namespace error_code

/// The default slug for a status with no call-site-specific code (e.g.
/// kNotFound → "not_found", kResourceExhausted → "overloaded").
const char* DefaultErrorCode(StatusCode code);

/// The op=health reply: the daemon's overload posture in one frame. The
/// session/admission fields come from the SessionManager; the connection
/// fields are filled by the daemon's reactor (zero when the manager is
/// driven without one, as in unit tests).
struct HealthInfo {
  int brownout = 0;  ///< 0 normal, 1 over soft limit, 2 near hard limit.
  int active_sessions = 0;
  int active_connections = 0;
  // SessionManager counters.
  int64_t opened = 0;
  int64_t finished = 0;
  int64_t evicted = 0;
  int64_t refused = 0;
  // AdmissionController counters.
  int64_t rate_limited = 0;
  int64_t deadline_shed = 0;
  int64_t brownout_refused = 0;
  int64_t brownout_shed = 0;
  // Reactor counters.
  int64_t accepted = 0;
  int64_t dropped = 0;
  int64_t dropped_slow_reader = 0;
  int64_t reaped_idle = 0;
  // Durable-state counters: the startup recovery scan's index plus the
  // running quarantine/storage-failure tallies.
  int64_t journals_resumable = 0;
  int64_t journals_finished = 0;
  int64_t journals_quarantined = 0;
  int64_t journals_gced = 0;
  int64_t storage_failed = 0;
};

/// One parsed server frame (the load generator's read side).
struct ServerFrame {
  ServerFrameType type = ServerFrameType::kPong;
  std::string id;
  SessionQuestion question;  // kQuestion
  std::string report;        // kReport: canonical SerializeSessionReport text
  int code = 0;              // kError: StatusCode as int (wire: "status")
  std::string error_code;    // kError: machine-readable slug (wire: "code")
  int retry_after_ms = -1;   // kError: retry hint; negative = absent
  std::string message;       // kError
  HealthInfo health;         // kHealth
  // kMutated
  DataVersion version = 0;
  int applied = 0;
  int refused = 0;
};

/// Parses one server line; tolerant, never crashes.
Result<ServerFrame> ParseServerFrame(std::string_view line);

std::string FormatQuestionFrame(const std::string& id,
                                const SessionQuestion& question);
std::string FormatReportFrame(const std::string& id,
                              const SessionReport& report);
/// Error with the status's default slug and no retry hint.
std::string FormatErrorFrame(const std::string& id, const Status& status);
/// Error with an explicit slug and (when `retry_after_ms` >= 0) a retry
/// hint — the structured-refusal form every admission shed uses.
std::string FormatErrorFrame(const std::string& id, const Status& status,
                             const std::string& code, int retry_after_ms);
std::string FormatClosedFrame(const std::string& id);
std::string FormatPongFrame();
std::string FormatHealthFrame(const HealthInfo& health);
/// The op=mutate acknowledgement: the data version after the batch plus
/// how many ops applied / were refused.
std::string FormatMutatedFrame(const std::string& id, DataVersion version,
                               int applied, int refused);

/// \brief Canonical, byte-comparable text form of a SessionReport.
///
/// Every double is a hexfloat, every collection is emitted in its stored
/// (deterministic) order — two reports serialize identically iff the runs
/// were bit-identical, which is exactly the check the load generator
/// performs against its in-process reference run.
std::string SerializeSessionReport(const SessionReport& report);

}  // namespace uguide

#endif  // UGUIDE_SERVER_PROTOCOL_H_
