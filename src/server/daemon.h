#ifndef UGUIDE_SERVER_DAEMON_H_
#define UGUIDE_SERVER_DAEMON_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/session.h"
#include "server/session_manager.h"

namespace uguide {

/// Options of a ServingDaemon beyond the manager's.
struct DaemonOptions {
  /// TCP port on 127.0.0.1; 0 binds an ephemeral port (see port()).
  int port = 0;
  /// Listen backlog.
  int backlog = 64;
  SessionManagerOptions manager;
};

/// \brief The uguided network front end: a loopback TCP listener speaking
/// the newline-delimited JSON protocol, one thread per connection.
///
/// The daemon is a thin I/O shell — every byte of session logic lives in
/// SessionManager, which is why the serving tests can exercise the manager
/// without sockets and the daemon with them. Connections are stateless:
/// any connection may address any session id, so a client that lost its
/// connection reconnects and continues with `op=next` (NextQuestion is
/// idempotent). A dead client therefore never kills a session — at worst
/// the idle deadline evicts it, journal intact.
///
/// Robustness decisions, all covered by tests:
///  - SIGPIPE is ignored process-wide (plus MSG_NOSIGNAL on every send):
///    writing to a closed socket is a per-connection error, not death.
///  - The fault sites "server.accept", "server.read" and "server.write"
///    fire on the corresponding syscall paths, so `--fault-plan` drives
///    connection failures as deterministically as expert failures.
///  - Shutdown() is the graceful SIGTERM path: stop accepting, shut down
///    live connections, join their threads, then drain the manager
///    (abandoning sessions, syncing journals).
class ServingDaemon {
 public:
  /// Binds, listens, and starts the accept thread. `session` must outlive
  /// the daemon.
  static Result<std::unique_ptr<ServingDaemon>> Start(const Session* session,
                                                      DaemonOptions options);

  /// Calls Shutdown() if it has not run yet.
  ~ServingDaemon();

  ServingDaemon(const ServingDaemon&) = delete;
  ServingDaemon& operator=(const ServingDaemon&) = delete;

  /// The bound port (resolved when options.port was 0).
  int port() const { return port_; }

  SessionManager& manager() { return *manager_; }

  /// Graceful drain; idempotent, safe to call from a signal-watching
  /// thread (not from the handler itself).
  void Shutdown();

 private:
  ServingDaemon(const Session* session, DaemonOptions options);

  void AcceptLoop();
  void ServeConnection(int fd);
  /// Writes `line` + '\n' fully, firing "server.write"; returns false on
  /// any failure (the caller drops the connection, never the session).
  bool WriteLine(int fd, const std::string& line);

  DaemonOptions options_;
  std::unique_ptr<SessionManager> manager_;

  int listen_fd_ = -1;
  int port_ = 0;
  int wake_pipe_[2] = {-1, -1};

  std::thread accept_thread_;
  std::atomic<bool> stopping_{false};
  bool shut_down_ = false;  // Shutdown() already ran (main thread only)

  std::mutex conn_mu_;
  std::vector<int> conn_fds_;
  std::vector<std::thread> conn_threads_;
};

}  // namespace uguide

#endif  // UGUIDE_SERVER_DAEMON_H_
