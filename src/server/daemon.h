#ifndef UGUIDE_SERVER_DAEMON_H_
#define UGUIDE_SERVER_DAEMON_H_

#include <functional>
#include <memory>

#include "core/session.h"
#include "server/dataset_registry.h"
#include "server/reactor.h"
#include "server/session_manager.h"

namespace uguide {

/// Options of a ServingDaemon beyond the manager's.
struct DaemonOptions {
  /// TCP port on 127.0.0.1; 0 binds an ephemeral port (see port()).
  int port = 0;
  /// Listen backlog.
  int backlog = 64;
  /// Concurrent client connections; accepts beyond this are closed
  /// immediately (`--max-connections`). 0 = unlimited. Distinct from
  /// manager.max_sessions: connections are cheap reactor state, sessions
  /// are fibers with journals.
  int max_connections = 0;
  /// Maintenance tick period (`--tick-ms`): drives reactor idle reaping
  /// and SessionManager::EvictIdle. 0 disables the tick (and with it all
  /// periodic eviction).
  double tick_interval_ms = 250.0;
  /// Reap connections with no complete line within this window
  /// (`--read-idle-ms`, slow-loris defense). 0 = off.
  double read_idle_ms = 0.0;
  /// Per-connection unread-reply cap before a slow reader is dropped
  /// (`--max-pending-out-kb`). 0 = unlimited.
  size_t max_pending_out_bytes = 4u << 20;
  /// Extra per-tick work (after eviction), e.g. registry maintenance.
  std::function<void()> on_tick;
  SessionManagerOptions manager;
};

/// \brief The uguided network front end: a loopback TCP listener speaking
/// the newline-delimited JSON protocol on an epoll reactor.
///
/// The daemon is a thin composition shell — every byte of session logic
/// lives in SessionManager, and every byte of socket handling in Reactor,
/// which is why the serving tests can exercise the manager without sockets
/// and the reactor without sessions. Each parsed request line becomes a
/// pool task running SessionManager::HandleLine; sessions are fibers, so
/// thousands of concurrent sessions execute on the pool's bounded threads.
///
/// Connections are stateless: any connection may address any session id,
/// so a client that lost its connection reconnects and continues with
/// `op=next` (NextQuestion is idempotent). A dead client therefore never
/// kills a session — at worst the idle deadline evicts it, journal intact.
///
/// Robustness decisions, all covered by tests:
///  - SIGPIPE is ignored process-wide (plus MSG_NOSIGNAL on every send):
///    writing to a closed socket is a per-connection error, not death.
///  - The fault sites "server.accept", "server.read" and "server.write"
///    fire on the corresponding paths (see Reactor), so `--fault-plan`
///    drives connection failures as deterministically as expert failures.
///  - Shutdown() is the graceful SIGTERM path: stop accepting, drain
///    in-flight steps, close connections, then drain the manager
///    (abandoning sessions, syncing journals).
class ServingDaemon {
 public:
  /// Binds, listens, and starts the reactor. `session` must outlive the
  /// daemon. Sessions build private engines/graphs (no shared artifacts).
  static Result<std::unique_ptr<ServingDaemon>> Start(const Session* session,
                                                      DaemonOptions options);

  /// As above, serving a DatasetRegistry artifact bundle: every session
  /// shares the bundle's warmed engine and prebuilt graph, and the daemon
  /// pins the bundle against eviction for its lifetime.
  static Result<std::unique_ptr<ServingDaemon>> Start(
      std::shared_ptr<const DatasetArtifacts> artifacts, DaemonOptions options);

  /// Calls Shutdown() if it has not run yet.
  ~ServingDaemon();

  ServingDaemon(const ServingDaemon&) = delete;
  ServingDaemon& operator=(const ServingDaemon&) = delete;

  /// The bound port (resolved when options.port was 0).
  int port() const { return reactor_->port(); }

  SessionManager& manager() { return *manager_; }

  const Reactor& reactor() const { return *reactor_; }

  /// Graceful drain; idempotent, safe to call from a signal-watching
  /// thread (not from the handler itself).
  void Shutdown();

 private:
  ServingDaemon() = default;

  static Result<std::unique_ptr<ServingDaemon>> StartImpl(
      const Session* session, std::shared_ptr<const DatasetArtifacts> artifacts,
      DaemonOptions options);

  DaemonOptions options_;
  /// Pins the shared artifact bundle (null when serving a bare Session).
  std::shared_ptr<const DatasetArtifacts> artifacts_;
  std::unique_ptr<SessionManager> manager_;
  std::unique_ptr<Reactor> reactor_;
  bool shut_down_ = false;  // Shutdown() already ran (owner thread only).
};

}  // namespace uguide

#endif  // UGUIDE_SERVER_DAEMON_H_
