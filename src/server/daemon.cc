#include "server/daemon.h"

#include <utility>

namespace uguide {

Result<std::unique_ptr<ServingDaemon>> ServingDaemon::Start(
    const Session* session, DaemonOptions options) {
  return StartImpl(session, nullptr, std::move(options));
}

Result<std::unique_ptr<ServingDaemon>> ServingDaemon::Start(
    std::shared_ptr<const DatasetArtifacts> artifacts, DaemonOptions options) {
  // Wire the shared bundle into every session the manager opens: the
  // warmed engine and the prebuilt graph. The manager options may already
  // carry a pool/budget from the caller; the artifacts do not override
  // those.
  options.manager.engine = artifacts->engine.get();
  options.manager.graph = &artifacts->graph;
  const Session* session = &artifacts->session;
  return StartImpl(session, std::move(artifacts), std::move(options));
}

Result<std::unique_ptr<ServingDaemon>> ServingDaemon::StartImpl(
    const Session* session, std::shared_ptr<const DatasetArtifacts> artifacts,
    DaemonOptions options) {
  std::unique_ptr<ServingDaemon> daemon(new ServingDaemon());
  daemon->options_ = std::move(options);
  daemon->artifacts_ = std::move(artifacts);
  daemon->manager_ =
      std::make_unique<SessionManager>(session, daemon->options_.manager);

  ReactorOptions reactor;
  reactor.port = daemon->options_.port;
  reactor.backlog = daemon->options_.backlog;
  reactor.max_connections = daemon->options_.max_connections;
  reactor.tick_interval_ms = daemon->options_.tick_interval_ms;
  reactor.read_idle_ms = daemon->options_.read_idle_ms;
  reactor.max_pending_out_bytes = daemon->options_.max_pending_out_bytes;
  reactor.pool = daemon->options_.manager.pool;
  // The tick is the daemon's only periodic driver: idle sessions are
  // evicted here even when no client traffic arrives.
  reactor.on_tick = [manager = daemon->manager_.get(),
                     extra = daemon->options_.on_tick] {
    manager->EvictIdle();
    if (extra) extra();
  };
  reactor.handler = [manager = daemon->manager_.get()](
                        std::string_view line,
                        std::chrono::steady_clock::time_point enqueued) {
    return manager->HandleLine(line, enqueued);
  };
  UGUIDE_ASSIGN_OR_RETURN(daemon->reactor_, Reactor::Start(std::move(reactor)));

  // op=health replies get the connection-level view only the reactor has.
  daemon->manager_->SetHealthAugmenter(
      [reactor = daemon->reactor_.get()](HealthInfo* health) {
        health->active_connections = reactor->active_connections();
        const ReactorStats stats = reactor->stats();
        health->accepted = stats.accepted;
        health->dropped = stats.dropped;
        health->dropped_slow_reader = stats.dropped_slow_reader;
        health->reaped_idle = stats.reaped_idle;
      });
  return daemon;
}

ServingDaemon::~ServingDaemon() { Shutdown(); }

void ServingDaemon::Shutdown() {
  if (shut_down_) return;
  shut_down_ = true;
  // Stop the network first (joins the reactor and every in-flight step),
  // then abandon sessions; their journals are synced and preserved. Either
  // member may be null when StartImpl bailed out part-way (e.g. the bind
  // raced a dying incarnation of the same daemon on restart).
  if (reactor_ != nullptr) reactor_->Shutdown();
  if (manager_ != nullptr) manager_->BeginDrain();
}

}  // namespace uguide
