#include "server/daemon.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <utility>

#include "common/fault_injection.h"
#include "server/protocol.h"

namespace uguide {

namespace {

/// A connection feeding lines longer than this is dropped (the protocol
/// parser enforces the same bound on well-formed frames).
constexpr size_t kMaxLineBytes = 1 << 20;

Status Errno(const std::string& action) {
  return Status::IoError(action + ": " + std::strerror(errno));
}

}  // namespace

ServingDaemon::ServingDaemon(const Session* session, DaemonOptions options)
    : options_(std::move(options)),
      manager_(std::make_unique<SessionManager>(session, options_.manager)) {}

Result<std::unique_ptr<ServingDaemon>> ServingDaemon::Start(
    const Session* session, DaemonOptions options) {
  // A half-closed client must surface as a write error, not process death.
  // MSG_NOSIGNAL guards every send; this guards any path that slips by.
  ::signal(SIGPIPE, SIG_IGN);

  std::unique_ptr<ServingDaemon> daemon(
      new ServingDaemon(session, std::move(options)));

  daemon->listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (daemon->listen_fd_ < 0) return Errno("socket");
  const int one = 1;
  ::setsockopt(daemon->listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one,
               sizeof(one));

  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(daemon->options_.port));
  if (::bind(daemon->listen_fd_, reinterpret_cast<sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    return Errno("bind");
  }
  if (::listen(daemon->listen_fd_, daemon->options_.backlog) != 0) {
    return Errno("listen");
  }

  socklen_t len = sizeof(addr);
  if (::getsockname(daemon->listen_fd_, reinterpret_cast<sockaddr*>(&addr),
                    &len) != 0) {
    return Errno("getsockname");
  }
  daemon->port_ = ntohs(addr.sin_port);

  if (::pipe(daemon->wake_pipe_) != 0) return Errno("pipe");

  daemon->accept_thread_ = std::thread(&ServingDaemon::AcceptLoop,
                                       daemon.get());
  return daemon;
}

ServingDaemon::~ServingDaemon() { Shutdown(); }

void ServingDaemon::Shutdown() {
  if (shut_down_) return;
  shut_down_ = true;
  stopping_.store(true);

  // Wake the accept poll, then join it.
  if (wake_pipe_[1] >= 0) {
    const char byte = 'x';
    [[maybe_unused]] ssize_t n = ::write(wake_pipe_[1], &byte, 1);
  }
  if (accept_thread_.joinable()) accept_thread_.join();

  // Unblock connection reads and join their threads. shutdown() (not
  // close) so a thread mid-write sees an orderly error, not a reused fd.
  std::vector<std::thread> threads;
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    for (const int fd : conn_fds_) ::shutdown(fd, SHUT_RDWR);
    threads.swap(conn_threads_);
  }
  for (std::thread& t : threads) {
    if (t.joinable()) t.join();
  }
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    for (const int fd : conn_fds_) ::close(fd);
    conn_fds_.clear();
  }

  // Abandon in-flight sessions; their journals are synced and preserved.
  manager_->BeginDrain();

  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  for (int& fd : wake_pipe_) {
    if (fd >= 0) {
      ::close(fd);
      fd = -1;
    }
  }
}

void ServingDaemon::AcceptLoop() {
  while (!stopping_.load()) {
    pollfd fds[2];
    fds[0] = {listen_fd_, POLLIN, 0};
    fds[1] = {wake_pipe_[0], POLLIN, 0};
    const int ready = ::poll(fds, 2, -1);
    if (ready < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (stopping_.load()) break;
    if ((fds[0].revents & POLLIN) == 0) continue;

    const int conn = ::accept(listen_fd_, nullptr, nullptr);
    if (conn < 0) continue;

    // Injected accept failure: the connection is dropped before any frame
    // is read — to the client it looks like a refused/reset connection.
    FaultRegistry& registry = FaultRegistry::Global();
    if (registry.enabled() && !registry.OnPoint("server.accept").ok()) {
      ::close(conn);
      continue;
    }

    const int one = 1;
    ::setsockopt(conn, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

    std::lock_guard<std::mutex> lock(conn_mu_);
    if (stopping_.load()) {
      ::close(conn);
      break;
    }
    conn_fds_.push_back(conn);
    conn_threads_.emplace_back(&ServingDaemon::ServeConnection, this, conn);
  }
}

bool ServingDaemon::WriteLine(int fd, const std::string& line) {
  FaultRegistry& registry = FaultRegistry::Global();
  if (registry.enabled() && !registry.OnPoint("server.write").ok()) {
    return false;
  }
  std::string framed = line;
  framed.push_back('\n');
  size_t sent = 0;
  while (sent < framed.size()) {
    const ssize_t n = ::send(fd, framed.data() + sent, framed.size() - sent,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<size_t>(n);
  }
  return true;
}

void ServingDaemon::ServeConnection(int fd) {
  std::string buffer;
  char chunk[4096];
  bool alive = true;
  while (alive && !stopping_.load()) {
    FaultRegistry& registry = FaultRegistry::Global();
    if (registry.enabled() && !registry.OnPoint("server.read").ok()) break;

    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;  // EOF or error: the sessions outlive the connection.
    buffer.append(chunk, static_cast<size_t>(n));
    if (buffer.size() > kMaxLineBytes) break;

    size_t start = 0;
    for (size_t nl = buffer.find('\n', start); nl != std::string::npos;
         nl = buffer.find('\n', start)) {
      std::string_view line(buffer.data() + start, nl - start);
      if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
      start = nl + 1;
      if (line.empty()) continue;
      for (const std::string& reply : manager_->HandleLine(line)) {
        if (!WriteLine(fd, reply)) {
          // Write-to-closed-socket: a per-connection failure. The session
          // and its journal are untouched; the client reconnects and
          // resyncs with op=next.
          alive = false;
          break;
        }
      }
      if (!alive) break;
    }
    buffer.erase(0, start);
  }
  ::shutdown(fd, SHUT_RDWR);
}

}  // namespace uguide
