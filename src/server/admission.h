#ifndef UGUIDE_SERVER_ADMISSION_H_
#define UGUIDE_SERVER_ADMISSION_H_

#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>

#include "common/status.h"
#include "server/protocol.h"

namespace uguide {

class MemoryBudget;

/// Knobs of the AdmissionController. All limits default to off so a
/// manager embedded in tests behaves exactly as before PR 7 unless a knob
/// is turned.
struct AdmissionOptions {
  /// Token-bucket refill rate per client id, in ops/second; ops beyond the
  /// bucket are refused with `rate_limited` + retry_after_ms. 0 = off.
  double rate_limit_per_sec = 0.0;
  /// Bucket capacity: the burst a quiet client may spend at once.
  double rate_burst = 8.0;
  /// Steps that waited in the reactor queue longer than this are shed
  /// before execution with `overloaded` + retry_after_ms (the work they
  /// would do is stale: the client has likely timed out or resent). 0 =
  /// off.
  double queue_deadline_ms = 0.0;
  /// The retry hint attached to overload refusals (session limit,
  /// brownout); rate-limit refusals compute their own from the bucket
  /// deficit.
  int retry_after_ms = 200;
  /// Fraction of the memory budget's hard limit at which the brownout
  /// ladder reaches level 2 (shed non-answer ops).
  double hard_fraction = 0.9375;
};

/// The memory-pressure brownout ladder, driven by the shared MemoryBudget:
///  - kNormal: admit everything.
///  - kBrownout (over the soft limit): refuse new opens, tighten idle
///    eviction; existing sessions keep stepping.
///  - kShedding (past hard_fraction of the hard limit): additionally shed
///    non-`answer` ops. `answer` still lands (expert work is the scarce
///    resource) and `close` still lands (it releases memory).
enum class BrownoutLevel { kNormal = 0, kBrownout = 1, kShedding = 2 };

/// The outcome of one admission check. When refused, `code` is the
/// machine-readable error slug and `retry_after_ms` the hint both destined
/// for the error frame.
struct AdmissionVerdict {
  Status status;  ///< OK = admitted.
  std::string code;
  int retry_after_ms = -1;

  bool admitted() const { return status.ok(); }
};

struct AdmissionStats {
  int64_t admitted = 0;
  int64_t rate_limited = 0;
  int64_t deadline_shed = 0;
  /// Opens refused at brownout level >= 1.
  int64_t brownout_refused = 0;
  /// Non-answer ops shed at brownout level 2.
  int64_t brownout_shed = 0;
};

/// \brief The overload gate in front of every SessionManager step.
///
/// Consulted by SessionManager::HandleLine before an op touches a session:
/// first the queue deadline (stale work is shed, not executed), then the
/// brownout ladder (memory pressure degrades predictably: opens first,
/// then non-answer ops), then the per-client token bucket. Checks run in
/// that order so a refused op never consumes rate-limit tokens.
///
/// Every clock read is FaultRegistry::Global().Now(), so latency fault
/// plans drive deadline and refill arithmetic deterministically in tests.
///
/// Thread safety: all methods are safe to call concurrently.
class AdmissionController {
 public:
  /// `budget` may be null (brownout ladder off); it must outlive the
  /// controller.
  AdmissionController(AdmissionOptions options, const MemoryBudget* budget);

  /// Checks one op for client `id`, framed by the reactor at `enqueued`.
  AdmissionVerdict Admit(ClientOp op, const std::string& id,
                         std::chrono::steady_clock::time_point enqueued);

  /// The current rung of the brownout ladder.
  BrownoutLevel brownout() const;

  AdmissionStats stats() const;

 private:
  struct Bucket {
    double tokens = 0.0;
    std::chrono::steady_clock::time_point refilled;
  };

  /// Refills and spends one token for `id`; on failure returns the ms
  /// until a token is available. Caller holds mu_.
  bool SpendTokenLocked(const std::string& id,
                        std::chrono::steady_clock::time_point now,
                        int* retry_after_ms);
  /// Drops buckets that have refilled to full (idle clients) once the map
  /// grows past the cap — a hostile client inventing ids must not grow
  /// controller memory without bound. Caller holds mu_.
  void PruneBucketsLocked(std::chrono::steady_clock::time_point now);

  const AdmissionOptions options_;
  const MemoryBudget* const budget_;

  mutable std::mutex mu_;
  std::unordered_map<std::string, Bucket> buckets_;
  AdmissionStats stats_;
};

}  // namespace uguide

#endif  // UGUIDE_SERVER_ADMISSION_H_
