#ifndef UGUIDE_SERVER_DATASET_REGISTRY_H_
#define UGUIDE_SERVER_DATASET_REGISTRY_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <set>

#include "server/dataset.h"
#include "violations/bipartite_graph.h"
#include "violations/violation_engine.h"

namespace uguide {

class MemoryBudget;
class ThreadPool;

/// Cache key of a shared dataset entry: what the relation *contains*
/// (RelationContentHash of the dirty table) plus the signature of every
/// session-affecting option. Two deployments whose recipes load the same
/// bytes under the same expert/budget configuration share one entry; the
/// same bytes under a different configuration do not, because the Session
/// they need differs.
struct DatasetKey {
  uint64_t content_hash = 0;
  uint64_t config_signature = 0;
  /// Live-data epoch the entry was built at. Registry builds are always
  /// version 0 (the base relation as loaded); the live subsystem derives
  /// later epochs from the base bundle, and the version keeps their
  /// identity distinct from the base's without rehashing the mutated
  /// relation per epoch.
  uint64_t data_version = 0;

  bool operator<(const DatasetKey& other) const {
    if (content_hash != other.content_hash) {
      return content_hash < other.content_hash;
    }
    if (config_signature != other.config_signature) {
      return config_signature < other.config_signature;
    }
    return data_version < other.data_version;
  }
  bool operator==(const DatasetKey& other) const {
    return content_hash == other.content_hash &&
           config_signature == other.config_signature &&
           data_version == other.data_version;
  }
};

/// \brief The immutable artifact bundle every session over one dataset
/// shares: the built Session (dirty table, candidate AFDs, discovery
/// outcome, expert configuration), a violation engine whose PartitionStore
/// was warmed by the graph build, and the violation graph itself.
///
/// Immutability contract: nothing here changes after construction.
/// The engine is internally locked and its cached partitions are
/// recomputable, so concurrent readers are safe; the graph's mutable
/// active-flags are never touched on the shared copy — cell strategies
/// copy the graph per run (QuestionContext::graph) and mutate the copy.
/// Consumers hold `shared_ptr<const DatasetArtifacts>`, keeping the bundle
/// alive for as long as any session uses it; the registry drops its own
/// reference under memory pressure (EvictIdle) and rebuilds on the next
/// Open — byte-identically, because the whole build is deterministic.
struct DatasetArtifacts {
  /// Moves the built session in, then constructs the engine and the graph
  /// against the *member* session (members initialize in declaration
  /// order), so the engine's relation pointer is valid for the bundle's
  /// whole life. Building the graph warms the engine's partition store
  /// with every candidate LHS. Charges the graph + relation payload bytes
  /// against `budget`.
  DatasetArtifacts(ServedDatasetOptions opts, DatasetKey k, Session s,
                   ThreadPool* pool, MemoryBudget* budget);
  /// Releases `charged_bytes` back to the budget (the engine's partitions
  /// release their own charges when the store dies).
  ~DatasetArtifacts();

  DatasetArtifacts(const DatasetArtifacts&) = delete;
  DatasetArtifacts& operator=(const DatasetArtifacts&) = delete;

  const ServedDatasetOptions options;  ///< The recipe that built the entry.
  const DatasetKey key;
  const Session session;
  /// Shared across sessions; thread-safe, partitions pre-warmed for every
  /// candidate LHS by the graph build below.
  const std::unique_ptr<ViolationEngine> engine;
  /// Prebuilt over `session.candidates()`. Read-only here; copy to mutate.
  const ViolationGraph graph;
  /// Bytes ForceCharged at build (graph + relation payloads).
  const size_t charged_bytes;

 private:
  MemoryBudget* const budget_;
};

struct DatasetRegistryOptions {
  /// Worker pool for artifact builds (parallel graph construction).
  /// Null = serial. Results are bit-identical at any thread count.
  ThreadPool* pool = nullptr;
  /// Budget charged for shared artifacts and the engines' partition
  /// stores; its soft limit drives eviction. Null = ungoverned.
  MemoryBudget* memory_budget = nullptr;
  /// Circuit breaker: a recipe whose build fails this many times inside
  /// `breaker_window_ms` is quarantined — further Opens are refused
  /// immediately (kUnavailable, no build attempted) until the backoff
  /// elapses, when one half-open probe build is allowed through. 0
  /// disables the breaker.
  int breaker_failures = 3;
  double breaker_window_ms = 60000.0;
  /// Base refusal window after a trip; doubles per consecutive failed
  /// probe (capped at 16x).
  double breaker_backoff_ms = 5000.0;
};

struct DatasetRegistryStats {
  int64_t builds = 0;        ///< Full artifact builds.
  int64_t hits = 0;          ///< Opens served from cache.
  int64_t shared_waits = 0;  ///< Opens that waited behind an in-flight build.
  int64_t evicted = 0;       ///< Artifacts dropped under memory pressure.
  int64_t breaker_trips = 0;     ///< Recipes newly quarantined.
  int64_t quarantined_opens = 0; ///< Opens refused by an open breaker.
  int64_t probes = 0;            ///< Half-open probe builds allowed through.
};

/// \brief Process-wide cache of shared dataset artifacts, built once per
/// content under a singleflight guard.
///
/// A serving process may field thousands of session opens against a
/// handful of datasets. Everything expensive about an open — generating
/// or loading the table, discovery, candidate generation, warming the
/// partition store, building the violation graph — depends only on the
/// dataset recipe, not on the session, so the registry computes it once
/// and hands every session the same immutable DatasetArtifacts. Sessions
/// keep only per-strategy mutable state (their fiber, journal, and — for
/// cell strategies — a private copy of the graph).
///
/// Singleflight: N concurrent Opens of the same recipe perform exactly one
/// build; the rest block until it completes and share the result. Distinct
/// recipes build concurrently.
///
/// Eviction: Open and EvictIdle drop least-recently-used entries no
/// session references (use_count() == 1) while the budget sits over its
/// soft limit. A dropped entry costs nothing but recompute time: the next
/// Open rebuilds it and, the build being deterministic, every later
/// session report is byte-identical to one served before the eviction.
///
/// Circuit breaker: a recipe that keeps failing to build (bad generator
/// config, injected faults, exhausted budget) is quarantined after
/// breaker_failures failures inside breaker_window_ms — Opens then refuse
/// instantly instead of burning the build path, until a backoff elapses
/// and a single half-open probe retries the build. Success closes the
/// breaker; failure re-opens it with doubled backoff. One poisoned
/// dataset thus cannot starve builds of healthy ones.
///
/// Thread safety: all methods are safe to call concurrently.
class DatasetRegistry {
 public:
  explicit DatasetRegistry(DatasetRegistryOptions options = {});

  /// Returns the shared artifacts for `options`, building them if no
  /// entry matches (singleflight per recipe signature). The returned
  /// pointer pins the artifacts against eviction until released.
  Result<std::shared_ptr<const DatasetArtifacts>> Open(
      const ServedDatasetOptions& options);

  /// Evicts unreferenced entries (LRU first) while the budget is over its
  /// soft limit; returns how many were dropped. The daemon calls this from
  /// its maintenance tick, next to session idle eviction.
  int EvictIdle();

  /// Entries currently resident.
  int size() const;

  DatasetRegistryStats stats() const;

 private:
  struct Entry {
    std::shared_ptr<const DatasetArtifacts> artifacts;
    uint64_t last_used = 0;  ///< Registry tick, for LRU ordering.
  };

  /// Per-recipe circuit-breaker state (fault-aware clock throughout).
  struct Breaker {
    /// Recent build-failure instants, pruned to the window.
    std::deque<std::chrono::steady_clock::time_point> failures;
    bool quarantined = false;
    std::chrono::steady_clock::time_point open_until;
    int trips = 0;  ///< Consecutive trips; scales the backoff.
  };

  /// The expensive path: stage 1 (generate + discover + inject) and
  /// stage 2 (Session::Create, engine, graph build, budget charge).
  /// Runs without the registry lock held.
  Result<std::shared_ptr<const DatasetArtifacts>> BuildArtifacts(
      const ServedDatasetOptions& options) const;

  /// Caller holds mu_. Returns entries dropped.
  int EvictLocked();

  /// Records one build failure for `signature`; trips or re-opens the
  /// breaker as warranted. Caller holds mu_.
  void RecordBuildFailureLocked(uint64_t signature, bool was_probe);

  const DatasetRegistryOptions options_;

  mutable std::mutex mu_;
  std::condition_variable build_done_;
  std::map<DatasetKey, Entry> entries_;
  /// Recipe signature -> content key, so repeat opens skip regenerating
  /// the table just to recompute its hash.
  std::map<uint64_t, DatasetKey> recipe_to_key_;
  /// Recipe signatures with an in-flight build (the singleflight guard).
  std::set<uint64_t> building_;
  /// Recipe signatures with recorded build failures; erased on success.
  std::map<uint64_t, Breaker> breakers_;
  uint64_t tick_ = 0;
  DatasetRegistryStats stats_;
};

}  // namespace uguide

#endif  // UGUIDE_SERVER_DATASET_REGISTRY_H_
