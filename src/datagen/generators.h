#ifndef UGUIDE_DATAGEN_GENERATORS_H_
#define UGUIDE_DATAGEN_GENERATORS_H_

#include <cstdint>

#include "fd/fd.h"
#include "relation/relation.h"

namespace uguide {

/// \brief Options shared by all dataset generators.
///
/// Every generator is deterministic from the seed. Row counts default to a
/// bench-friendly size; pass the paper's 100K+ to reproduce at full scale.
struct DataGenOptions {
  int rows = 10000;
  uint64_t seed = 42;
};

/// \brief Generates a clean synthetic taxpayer table (substitute for the
/// Tax generator of Bohannon et al. used in §7.1).
///
/// Schema (15 attributes): fname, lname, gender, areacode, phone, city,
/// state, zip, marital, has_child, salary, rate, single_exemp,
/// married_exemp, child_exemp.
///
/// Embedded dependencies include: zip -> city, zip -> state,
/// areacode -> state, fname -> gender, state -> single/married/child_exemp,
/// and {state, salary} -> rate. Additional incidental FDs arise from value
/// correlations, as in the real generator.
Relation GenerateTax(const DataGenOptions& options = {});

/// \brief Generates a clean synthetic health-care provider table
/// (substitute for the Medicare Hospital dataset of §7.1).
///
/// Schema (13 attributes): provider_number, hospital_name, address, city,
/// state, zip, county, phone, hospital_type, owner, emergency,
/// measure_code, measure_name.
///
/// Rows are (provider, measure) observations, so provider_number determines
/// all provider attributes, measure_code determines measure_name, and
/// zip -> city/state, city -> county hold.
Relation GenerateHospital(const DataGenOptions& options = {});

/// \brief Generates a clean synthetic S&P-style stock history table
/// (substitute for the SP Stock dataset of §7.1).
///
/// Schema (10 attributes): date, ticker, open, high, low, close, volume,
/// company, sector, exchange. ticker determines company/sector/exchange and
/// {date, ticker} is a key.
Relation GenerateStock(const DataGenOptions& options = {});

/// \brief The dependencies each generator embeds by construction, for
/// verification in tests (exact discovery must imply each of these).
FdSet TaxEmbeddedFds(const Schema& schema);
FdSet HospitalEmbeddedFds(const Schema& schema);
FdSet StockEmbeddedFds(const Schema& schema);

}  // namespace uguide

#endif  // UGUIDE_DATAGEN_GENERATORS_H_
